// The extended LMI passivity test for descriptor systems (Freund & Jarre;
// Sec. 2.2, Eq. 4 of the paper): G(s) is positive real if the LMIs
//     A^T X + X^T A   X^T B - C^T
//   [ B^T X - C      -(D + D^T) ]  <= 0,      E^T X = X^T E >= 0
// admit a solution X (n x n, not necessarily symmetric). This is the
// O(n^5)-O(n^6) baseline of Table 1.
#pragma once

#include "ds/descriptor.hpp"
#include "linalg/svd.hpp"
#include "lmi/sdp_solver.hpp"

namespace shhpass::lmi {

/// Result of the LMI passivity test.
struct LmiPassivityResult {
  bool passive = false;
  double tStar = 0.0;          ///< Phase-I margin (>= -tol: feasible).
  std::size_t variables = 0;   ///< Dimension of the reduced X subspace.
  int newtonIterations = 0;
  /// Health of the SVD rank decisions (shared policy, svd.hpp): the
  /// symmetry-constraint kernel and the Im(E^T) compression basis.
  linalg::RankReport rankReport;
};

/// Run the extended LMI test. The symmetry constraint E^T X = X^T E is
/// eliminated exactly by restricting X to the kernel of the skew-part
/// operator (computed once by SVD), after which the two LMI blocks are
/// handed to the interior-point feasibility solver. The E^T X >= 0 block is
/// compressed to the range of E^T, where it can be strictly definite.
LmiPassivityResult testPassivityLmi(const ds::DescriptorSystem& g,
                                    const SdpOptions& opt = {});

}  // namespace shhpass::lmi
