#include "lmi/lmi_passivity.hpp"

#include <stdexcept>

#include "ds/balance.hpp"
#include "linalg/blas.hpp"
#include "linalg/svd.hpp"

namespace shhpass::lmi {

using linalg::Matrix;

LmiPassivityResult testPassivityLmi(const ds::DescriptorSystem& gIn,
                                    const SdpOptions& opt) {
  gIn.validate();
  if (!gIn.isSquareSystem())
    throw std::invalid_argument("testPassivityLmi: system must be square");
  // Balancing is an exact r.s.e. and leaves LMI feasibility invariant
  // (substitute X -> scaled X); it keeps the barrier well conditioned.
  ds::DescriptorSystem g = ds::balanceDescriptor(gIn).sys;

  // Epsilon-regularize the feedthrough: ideal (lossless-at-infinity) ports
  // make the LMI only boundary-feasible (t* = 0 exactly), which interior
  // point methods approach at the barrier rate. Testing G + eps*I instead
  // turns a passive G into a strictly feasible problem, reached quickly and
  // certified by early exit; a non-passive G keeps a margin below -2*eps
  // and is still rejected.
  const double epsReg =
      1e-5 * (1.0 + g.c.maxAbs() + g.b.maxAbs() + g.d.maxAbs());
  for (std::size_t i = 0; i < g.d.rows(); ++i) g.d(i, i) += epsReg;

  const std::size_t n = g.order();
  const std::size_t m = g.numInputs();

  // --- Eliminate the symmetry constraint E^T X = X^T E. ---------------
  // skew(E^T X) = 0 gives n(n-1)/2 linear equations in the n^2 entries of
  // X (column-major vec): for i < j,
  //   sum_k E(k,i) X(k,j) - E(k,j) X(k,i) = 0.
  const std::size_t nEq = n * (n - 1) / 2;
  Matrix constraint(nEq, n * n);
  {
    std::size_t row = 0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j, ++row)
        for (std::size_t k = 0; k < n; ++k) {
          constraint(row, j * n + k) += g.e(k, i);
          constraint(row, i * n + k) -= g.e(k, j);
        }
  }
  LmiPassivityResult res;
  Matrix xBasis = Matrix::identity(n * n);
  if (nEq != 0) {
    linalg::SVD csvd(constraint);
    csvd.rank(-1.0, &res.rankReport);
    xBasis = csvd.nullspace();
  }
  const std::size_t p = xBasis.cols();

  // --- Assemble the two LMI blocks over the reduced variables. --------
  // Block 1 (size n+m): [-A^T X - X^T A, -X^T B + C^T; -B^T X + C, D+D^T].
  // Block 2 (size r): R^T (E^T X) R with R = orth(Im E^T); symmetric by
  // construction of the subspace, and can be strictly definite there.
  linalg::SVD etsvd(g.e.transposed());
  etsvd.rank(-1.0, &res.rankReport);
  Matrix r = etsvd.range();
  const std::size_t rr = r.cols();

  std::vector<SdpBlock> blocks(2);
  blocks[0].a0 = Matrix(n + m, n + m);
  blocks[0].a0.setBlock(0, n, g.c.transposed());
  blocks[0].a0.setBlock(n, 0, g.c);
  blocks[0].a0.setBlock(n, n, g.d + g.d.transposed());
  blocks[1].a0 = Matrix(rr, rr);

  blocks[0].basis.reserve(p);
  blocks[1].basis.reserve(p);
  for (std::size_t k = 0; k < p; ++k) {
    Matrix x(n, n);
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t i = 0; i < n; ++i) x(i, j) = xBasis(j * n + i, k);
    Matrix atx = linalg::atb(g.a, x);   // A^T X
    Matrix xtb = linalg::atb(x, g.b);   // X^T B
    Matrix f(n + m, n + m);
    f.setBlock(0, 0, -1.0 * (atx + atx.transposed()));
    f.setBlock(0, n, -1.0 * xtb);
    f.setBlock(n, 0, -1.0 * xtb.transposed());
    blocks[0].basis.push_back(std::move(f));
    Matrix etx = linalg::atb(g.e, x);   // E^T X (symmetric on the subspace)
    Matrix gblk = linalg::multiply(linalg::atb(r, etx), false, r, false);
    linalg::symmetrize(gblk);
    blocks[1].basis.push_back(std::move(gblk));
  }

  SdpOptions optAdj = opt;
  if (optAdj.earlyExitMargin < 0.0) optAdj.earlyExitMargin = 0.25 * epsReg;
  SdpResult sdp = solveSdpFeasibility(blocks, optAdj);
  res.passive = sdp.feasible;
  res.tStar = sdp.tStar;
  res.variables = p;
  res.newtonIterations = sdp.newtonIterations;
  return res;
}

}  // namespace shhpass::lmi
