// A small dense semidefinite-programming feasibility solver, built from
// scratch for the Freund-Jarre LMI baseline (Sec. 2.2 of the paper).
//
// Problem: find x in R^p such that, for every block b,
//     S_b(x) = A0_b + sum_k x_k A_bk  is positive semidefinite.
// Solved by the phase-I "max t" program
//     max t   s.t.   S_b(x) - t I >= 0  for all b,
// with a log-det barrier and damped Newton steps over (x, t). The variable
// count for the passivity LMI is Theta(n^2) and the Newton system is dense,
// so the overall cost is O(n^5)-O(n^6) per solve — the complexity class the
// paper attributes to the LMI test.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace shhpass::lmi {

/// One LMI block: A0 + sum_k x_k basis[k] >= 0 (all matrices symmetric and
/// of identical size within the block).
struct SdpBlock {
  linalg::Matrix a0;
  std::vector<linalg::Matrix> basis;
};

/// Solver options.
struct SdpOptions {
  double muInitial = 1.0;      ///< Initial barrier weight.
  double muFactor = 0.1;       ///< Barrier reduction per outer stage.
  double muFinal = 1e-10;      ///< Terminal barrier weight.
  int maxNewtonPerStage = 40;  ///< Newton iteration cap per stage.
  double gradTol = 1e-9;       ///< Newton stationarity tolerance.
  double feasTol = 1e-5;       ///< Declare feasible when t* >= -feasTol *
                               ///< (1 + |A0| scale). Boundary-feasible
                               ///< problems (D + D^T singular, as for
                               ///< ideal RLC ports) converge to t* = 0^-
                               ///< at a rate limited by the final barrier
                               ///< weight, so this cannot be too sharp.
  double earlyExitMargin = -1.0;  ///< If >= 0: stop as soon as t exceeds
                                  ///< this value (strict feasibility is
                                  ///< then already certified).
};

/// Result of a feasibility solve.
struct SdpResult {
  bool feasible = false;
  double tStar = 0.0;          ///< Final max-t value (>= 0 - tol: feasible).
  std::vector<double> x;       ///< Certifying variable values.
  int newtonIterations = 0;    ///< Total Newton steps (cost diagnostic).
};

/// Solve the feasibility problem over the given blocks. All blocks must
/// have a consistent variable dimension p (basis sizes equal). Throws
/// std::invalid_argument on inconsistent inputs.
SdpResult solveSdpFeasibility(const std::vector<SdpBlock>& blocks,
                              const SdpOptions& opt = {});

}  // namespace shhpass::lmi
