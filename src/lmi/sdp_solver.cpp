#include "lmi/sdp_solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "linalg/symmetric_eig.hpp"

namespace shhpass::lmi {

using linalg::Matrix;

namespace {

// S(x, t) for one block.
Matrix evalBlock(const SdpBlock& b, const std::vector<double>& x, double t) {
  Matrix s = b.a0;
  for (std::size_t k = 0; k < b.basis.size(); ++k) {
    if (x[k] == 0.0) continue;
    s += x[k] * b.basis[k];
  }
  for (std::size_t i = 0; i < s.rows(); ++i) s(i, i) -= t;
  return s;
}

double minEig(const Matrix& s) {
  linalg::SymmetricEig eig(s, /*wantVectors=*/false);
  return eig.eigenvalues().empty() ? 0.0 : eig.eigenvalues().front();
}

}  // namespace

SdpResult solveSdpFeasibility(const std::vector<SdpBlock>& blocks,
                              const SdpOptions& opt) {
  if (blocks.empty())
    throw std::invalid_argument("solveSdpFeasibility: no blocks");
  const std::size_t p = blocks.front().basis.size();
  for (const auto& b : blocks) {
    if (b.basis.size() != p)
      throw std::invalid_argument("solveSdpFeasibility: basis size mismatch");
    for (const auto& m : b.basis)
      if (m.rows() != b.a0.rows() || !m.isSquare())
        throw std::invalid_argument("solveSdpFeasibility: block shape");
  }

  SdpResult res;
  res.x.assign(p, 0.0);
  double scale = 1.0;
  for (const auto& b : blocks) scale = std::max(scale, b.a0.maxAbs());

  // Strictly feasible start: t below the smallest eigenvalue of any A0.
  double t = 0.0;
  for (const auto& b : blocks) t = std::min(t, minEig(b.a0));
  t -= 0.1 * scale + 1.0;

  const std::size_t dim = p + 1;  // variables (x, t)
  std::vector<Matrix> w(p);       // per-block W_k = S^{-1} A_k workspaces

  double mu = opt.muInitial * scale;
  while (mu > opt.muFinal * scale) {
    if (opt.earlyExitMargin >= 0.0 && t > opt.earlyExitMargin) break;
    for (int iter = 0; iter < opt.maxNewtonPerStage; ++iter) {
      // Assemble gradient and (negated) Hessian of
      //   phi(x, t) = t + mu * sum_b logdet(S_b(x) - t I).
      Matrix h(dim, dim);
      std::vector<double> grad(dim, 0.0);
      grad[p] = 1.0;
      bool singular = false;
      for (const auto& b : blocks) {
        Matrix s = evalBlock(b, res.x, t);
        linalg::Cholesky chol(s);
        if (!chol.success()) {
          singular = true;
          break;
        }
        const std::size_t nb = s.rows();
        Matrix sinv = chol.solve(Matrix::identity(nb));
        // W_k = S^{-1} A_k; W_t = -S^{-1}.
        for (std::size_t k = 0; k < p; ++k) w[k] = sinv * b.basis[k];
        // Gradient.
        for (std::size_t k = 0; k < p; ++k) grad[k] += mu * w[k].trace();
        grad[p] -= mu * sinv.trace();
        // Hessian of -phi (positive definite): H_kl = mu tr(W_k W_l).
        for (std::size_t k = 0; k < p; ++k) {
          for (std::size_t l = k; l < p; ++l) {
            double tr = 0.0;
            for (std::size_t i = 0; i < nb; ++i)
              for (std::size_t j = 0; j < nb; ++j)
                tr += w[k](i, j) * w[l](j, i);
            h(k, l) += mu * tr;
            if (l != k) h(l, k) = h(k, l);
          }
          // Cross terms with t: H_kt = -mu tr(S^{-1} A_k S^{-1}).
          double trc = 0.0;
          for (std::size_t i = 0; i < nb; ++i)
            for (std::size_t j = 0; j < nb; ++j)
              trc += w[k](i, j) * sinv(j, i);
          h(k, p) -= mu * trc;
          h(p, k) = h(k, p);
        }
        double tr2 = 0.0;
        for (std::size_t i = 0; i < nb; ++i)
          for (std::size_t j = 0; j < nb; ++j)
            tr2 += sinv(i, j) * sinv(j, i);
        h(p, p) += mu * tr2;
      }
      if (singular)
        throw std::runtime_error("solveSdpFeasibility: lost interiority");

      // Newton direction: H d = grad (maximization; H is -Hessian > 0).
      // Adaptive ridge keeps the solve well posed when mu is tiny and the
      // barrier Hessian underflows toward singularity.
      Matrix g(dim, 1);
      for (std::size_t k = 0; k < dim; ++k) g(k, 0) = grad[k];
      Matrix d;
      double ridge = 1e-14 * (1.0 + h.maxAbs());
      bool solved = false;
      while (ridge < 1e12) {
        Matrix hr = h;
        for (std::size_t k = 0; k < dim; ++k) hr(k, k) += ridge;
        linalg::Cholesky ch(hr);
        if (ch.success()) {
          d = ch.solve(g);
          solved = true;
          break;
        }
        ridge *= 1e3;
      }
      if (!solved) break;

      double gdotd = 0.0;
      for (std::size_t k = 0; k < dim; ++k) gdotd += grad[k] * d(k, 0);
      if (gdotd <= 0.0) break;  // stationary (numerically)

      // Fraction-to-the-boundary step: the largest sigma keeping every
      // block S + sigma * DeltaS > 0 is -1 / lambda_min(S^{-1} DeltaS)
      // when that eigenvalue is negative; take 95% of it (capped at 1).
      double step = 1.0;
      for (const auto& b : blocks) {
        Matrix s = evalBlock(b, res.x, t);
        Matrix ds(s.rows(), s.cols());
        for (std::size_t k = 0; k < p; ++k)
          if (d(k, 0) != 0.0) ds += d(k, 0) * b.basis[k];
        for (std::size_t i = 0; i < ds.rows(); ++i) ds(i, i) -= d(p, 0);
        linalg::Cholesky chol(s);
        if (!chol.success()) continue;  // defensive; outer loop re-checks
        // Exact boundary: lambda_min(S^{-1} DS) = lambda_min(L^{-1} DS L^{-T})
        // computed on the symmetric congruence (two triangular solves).
        Matrix y = chol.lowerSolve(ds);                      // L^{-1} DS
        Matrix msym = chol.lowerSolve(y.transposed());       // L^{-1} DS L^{-T}
        linalg::symmetrize(msym);
        linalg::SymmetricEig eig(msym, false);
        const double lmin = eig.eigenvalues().front();
        if (lmin < 0.0) step = std::min(step, -0.95 / lmin);
      }

      std::vector<double> xTrial(p);
      double tTrial = 0.0;
      bool accepted = false;
      for (int ls = 0; ls < 60; ++ls) {
        for (std::size_t k = 0; k < p; ++k)
          xTrial[k] = res.x[k] + step * d(k, 0);
        tTrial = t + step * d(p, 0);
        bool interior = true;
        for (const auto& b : blocks) {
          if (!linalg::Cholesky(evalBlock(b, xTrial, tTrial)).success()) {
            interior = false;
            break;
          }
        }
        if (interior) {
          accepted = true;
          break;
        }
        step *= 0.5;
      }
      if (!accepted) break;
      res.x = xTrial;
      t = tTrial;
      ++res.newtonIterations;
      // Stationarity: scaled Newton decrement.
      if (gdotd * step < opt.gradTol * (1.0 + std::abs(t))) break;
    }
    mu *= opt.muFactor;
  }

  res.tStar = t;
  res.feasible = t >= -opt.feasTol * (1.0 + scale);
  return res;
}

}  // namespace shhpass::lmi
