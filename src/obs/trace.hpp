// Span tracer: per-thread lock-free event buffers behind RAII scopes,
// exported as Chrome trace-event JSON (chrome://tracing / Perfetto).
//
// ## Design
//
//   * Recording is gated on one process-wide relaxed atomic flag; when
//     tracing is off an ObsSpan construction is a relaxed load and a
//     branch — the near-zero-overhead-when-off contract the analyzer
//     bench enforces (<3% full-telemetry overhead, BENCH_pipeline.json
//     `observerOverhead` row).
//   * Each thread appends completed spans ("X" phase: start + duration)
//     to its own fixed-capacity buffer and publishes them with one
//     release store of the element count; no locks, no cross-thread
//     writes. Readers (snapshotTrace) acquire the count and copy only
//     published slots, which the writer never touches again — the
//     buffer never wraps; when full, further events are dropped and
//     counted (traceDroppedEvents). This is what keeps the tracer
//     bit-transparent AND ThreadSanitizer-clean with tracing forced on
//     (the tsan CI preset sets SHHPASS_TRACE).
//   * Buffers are owned by a process-wide registry and recycled through
//     a free list when threads exit (every event carries its thread id,
//     so a recycled buffer may hold events of several threads).
//   * Timestamps come from obs/clock.hpp — the single sanctioned
//     monotonic-clock site (lint rule `no-raw-clock`).
//
// ## Determinism contract
//
// The tracer only observes: no span, flag, or export call may change a
// decision anywhere in the library. tests/test_obs.cpp pins
// decisionEquals parity between tracing-on and tracing-off runs across
// scheduler worker counts; the tsan CI job runs the whole suite with
// tracing forced on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace shhpass::obs {

/// One completed span. `cat` and `argName` must be string literals (the
/// event stores the pointer, not a copy); `name` is copied.
struct TraceEvent {
  static constexpr std::size_t kNameCapacity = 40;
  char name[kNameCapacity] = {0};  ///< NUL-terminated, truncated copy.
  const char* cat = "";            ///< Static category literal.
  std::uint64_t startNs = 0;       ///< obs::monotonicNowNs() stamp.
  std::uint64_t durNs = 0;
  std::uint32_t tid = 0;           ///< Dense per-thread id (obs-assigned).
  const char* argName = nullptr;   ///< Optional static arg key.
  std::int64_t argValue = 0;
  bool discarded = false;  ///< Speculative work never committed (runGraph).
};

/// Tracing master switch (process-wide, relaxed; observation only).
bool traceEnabled();
void setTraceEnabled(bool enabled);

/// Dense id of the calling thread, assigned on first use. Stable for the
/// thread's lifetime; exported as `tid` in the trace JSON.
std::uint32_t currentThreadTid();

/// Append a completed span with explicit stamps/thread attribution (used
/// by Pipeline::runGraph, which defers stage-span emission to canonical
/// assembly so speculative spans can be marked `discarded`). No-op when
/// tracing is off.
void emitSpan(std::string_view name, const char* cat, std::uint64_t startNs,
              std::uint64_t endNs, std::uint32_t tid, bool discarded = false,
              const char* argName = nullptr, std::int64_t argValue = 0);

/// RAII span scope: stamps the start on construction, emits on
/// destruction. `sample` gates recording per call site (the linalg
/// kernels pass a size floor so tiny products stay span-free — the
/// sampling-friendly coarse granularity knob).
class ObsSpan {
 public:
  ObsSpan(std::string_view name, const char* cat, bool sample = true);
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;
  ~ObsSpan();

  /// Attach the single integer argument (static-literal key).
  void arg(const char* name, std::int64_t value);

  bool active() const { return active_; }

 private:
  char name_[TraceEvent::kNameCapacity] = {0};
  const char* cat_ = "";
  std::uint64_t startNs_ = 0;
  const char* argName_ = nullptr;
  std::int64_t argValue_ = 0;
  bool active_ = false;
};

/// Copy of every span published so far (all threads, in buffer order),
/// excluding spans retired by clearTrace().
std::vector<TraceEvent> snapshotTrace();

/// Retire all currently published spans: subsequent snapshots and JSON
/// exports only see spans emitted after this call. Buffers are not
/// reclaimed (the writer side stays lock-free); a buffer that filled up
/// keeps dropping until process exit.
void clearTrace();

/// Spans dropped because a thread buffer was full (process lifetime).
std::uint64_t traceDroppedEvents();

/// Chrome trace-event JSON of the current snapshot:
/// {"traceEvents":[{"name":...,"cat":...,"ph":"X","ts":us,"dur":us,
///   "pid":1,"tid":N,"args":{...}}, ...], "displayTimeUnit":"ms"}.
std::string traceJson();

/// Write traceJson() to `path`; false on I/O failure.
bool writeTraceJson(const std::string& path);

/// Register `path` to receive the trace JSON at process exit (idempotent
/// for the same path; the SHHPASS_TRACE env hookup in telemetry.hpp).
void setTraceExitPath(const std::string& path);

}  // namespace shhpass::obs
