// Counting allocator: a std::allocator shim that reports every
// allocate/deallocate to the obs memory accountant (obs/memory.hpp).
// linalg::Matrix storage and the kernel workspaces use it so per-stage
// peak bytes in AnalysisReport reflect actual numeric working sets.
#pragma once

#include <cstddef>
#include <memory>

#include "obs/memory.hpp"

namespace shhpass::obs {

template <class T>
class CountingAllocator {
 public:
  using value_type = T;

  CountingAllocator() noexcept = default;
  template <class U>
  CountingAllocator(const CountingAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    T* p = std::allocator<T>().allocate(n);
    memAcquire(n * sizeof(T));
    return p;
  }

  void deallocate(T* p, std::size_t n) noexcept {
    memRelease(n * sizeof(T));
    std::allocator<T>().deallocate(p, n);
  }

  friend bool operator==(const CountingAllocator&,
                         const CountingAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const CountingAllocator&,
                         const CountingAllocator&) noexcept {
    return false;
  }
};

}  // namespace shhpass::obs
