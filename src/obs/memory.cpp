#include "obs/memory.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <vector>

namespace shhpass::obs {
namespace {

std::atomic<bool> gMemoryEnabled{false};
std::atomic<long long> gLiveBytes{0};
std::atomic<long long> gPeakBytes{0};

}  // namespace

struct MemScopeNode {
  long long peak = 0;  ///< Guarded by the scope-registry mutex.
};

namespace {

/// Active high-water-mark windows. Walked under the mutex on every
/// allocation while accounting is enabled; stage-level windows mean the
/// list holds a handful of entries at most.
struct ScopeRegistry {
  std::mutex mu;
  std::vector<MemScopeNode*> active;
};

ScopeRegistry& scopes() {
  static ScopeRegistry* kScopes = new ScopeRegistry();  // never destroyed
  return *kScopes;
}

void recordHighWater(long long live) {
  long long peak = gPeakBytes.load(std::memory_order_relaxed);
  while (live > peak &&
         !gPeakBytes.compare_exchange_weak(peak, live,
                                           std::memory_order_relaxed)) {
  }
  ScopeRegistry& reg = scopes();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (MemScopeNode* node : reg.active)
    node->peak = std::max(node->peak, live);
}

}  // namespace

bool memoryEnabled() {
  return gMemoryEnabled.load(std::memory_order_relaxed);
}

void setMemoryEnabled(bool enabled) {
  gMemoryEnabled.store(enabled, std::memory_order_relaxed);
}

void memAcquire(std::size_t bytes) {
  const long long live =
      gLiveBytes.fetch_add(static_cast<long long>(bytes),
                           std::memory_order_relaxed) +
      static_cast<long long>(bytes);
  if (memoryEnabled()) recordHighWater(live);
}

void memRelease(std::size_t bytes) {
  gLiveBytes.fetch_sub(static_cast<long long>(bytes),
                       std::memory_order_relaxed);
}

std::size_t memLiveBytes() {
  const long long live = gLiveBytes.load(std::memory_order_relaxed);
  return live > 0 ? static_cast<std::size_t>(live) : 0;
}

std::size_t memPeakBytes() {
  const long long peak = gPeakBytes.load(std::memory_order_relaxed);
  return peak > 0 ? static_cast<std::size_t>(peak) : 0;
}

MemScope::MemScope() {
  if (!memoryEnabled()) return;
  node_ = new MemScopeNode();
  node_->peak = std::max(gLiveBytes.load(std::memory_order_relaxed), 0ll);
  ScopeRegistry& reg = scopes();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.active.push_back(node_);
}

MemScope::~MemScope() {
  if (node_ == nullptr) return;
  ScopeRegistry& reg = scopes();
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.active.erase(std::remove(reg.active.begin(), reg.active.end(), node_),
                     reg.active.end());
  }
  delete node_;
}

std::size_t MemScope::peakBytes() const {
  if (node_ == nullptr) return 0;
  ScopeRegistry& reg = scopes();
  std::lock_guard<std::mutex> lock(reg.mu);
  return node_->peak > 0 ? static_cast<std::size_t>(node_->peak) : 0;
}

}  // namespace shhpass::obs
