// Telemetry front door: one call that applies the process-wide env
// forces and a TelemetryOptions knob the analyzer threads through from
// AnalyzerOptions. Environment always wins over per-analyzer options so
// a deployment can force a trace out of an unmodified binary:
//
//   SHHPASS_TRACE=/tmp/run.trace.json   enable tracing; write Chrome
//                                       trace JSON to the path at exit
//   SHHPASS_METRICS=1                   enable the metrics registry and
//                                       the memory accountant ("0" or
//                                       unset leaves them off)
#pragma once

#include <string>

namespace shhpass::obs {

/// Per-analyzer telemetry knobs (api::AnalyzerOptions::telemetry).
struct TelemetryOptions {
  bool trace = false;      ///< Enable span tracing process-wide.
  std::string tracePath;   ///< If non-empty, write trace JSON at exit.
  bool metrics = false;    ///< Enable metrics + memory accounting.
};

/// Read SHHPASS_TRACE / SHHPASS_METRICS once (std::call_once) and apply
/// them. Safe to call from every PassivityAnalyzer construction.
void initTelemetryFromEnv();

/// Apply per-analyzer options on top of the env forces (a set flag turns
/// telemetry on; options never turn OFF what the environment forced).
void applyTelemetryOptions(const TelemetryOptions& options);

}  // namespace shhpass::obs
