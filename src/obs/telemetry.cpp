#include "obs/telemetry.hpp"

#include <cstdlib>
#include <cstring>
#include <mutex>

#include "obs/memory.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace shhpass::obs {

void initTelemetryFromEnv() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* tracePath = std::getenv("SHHPASS_TRACE");
    if (tracePath != nullptr && tracePath[0] != '\0') {
      setTraceEnabled(true);
      setTraceExitPath(tracePath);
    }
    const char* metrics = std::getenv("SHHPASS_METRICS");
    if (metrics != nullptr && metrics[0] != '\0' &&
        std::strcmp(metrics, "0") != 0) {
      setMetricsEnabled(true);
      setMemoryEnabled(true);
    }
  });
}

void applyTelemetryOptions(const TelemetryOptions& options) {
  if (options.trace || !options.tracePath.empty()) setTraceEnabled(true);
  if (!options.tracePath.empty()) setTraceExitPath(options.tracePath);
  if (options.metrics) {
    setMetricsEnabled(true);
    setMemoryEnabled(true);
  }
}

}  // namespace shhpass::obs
