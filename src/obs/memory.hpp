// Allocation accounting: a process-wide live-bytes counter fed by the
// Matrix / kernel-workspace allocators, with high-water-mark windows
// (MemScope) the pipeline opens around each stage to report per-stage
// peak bytes into StageTrace / AnalysisReport / BENCH_pipeline.json.
//
// ## Design
//
//   * The live-bytes counter is maintained UNCONDITIONALLY as one
//     relaxed atomic add per allocate/deallocate — always balanced, so
//     toggling the telemetry flags mid-flight can never skew it. The
//     cost is noise next to the allocation itself.
//   * Peak tracking (the process high-water mark and the per-stage
//     MemScope windows) is gated on memoryEnabled(): when off, an
//     allocation pays one relaxed load + branch beyond the live
//     counter. Scope windows are a mutex-guarded list walked per
//     allocation — Matrix allocations are thousands per analysis, not
//     millions, and the lock is uncontended in the common case.
//   * Under Pipeline::runGraph, stages overlap in time, so concurrent
//     stage windows see each other's allocations; peakBytes is "peak
//     live bytes while the stage ran", which is the capacity-planning
//     number a service wants (never compared by decisionEquals).
#pragma once

#include <cstddef>
#include <cstdint>

namespace shhpass::obs {

/// Peak/window accounting switch (the live counter always runs).
bool memoryEnabled();
void setMemoryEnabled(bool enabled);

/// Called by the counting allocators (linalg::Matrix storage, kernel
/// pack buffers). Balanced by construction.
void memAcquire(std::size_t bytes);
void memRelease(std::size_t bytes);

/// Live tracked bytes right now (clamped at 0: allocations made before
/// the process-lifetime counter existed cannot underflow it).
std::size_t memLiveBytes();

/// Process-lifetime high-water mark of the live counter (0 until
/// memory accounting is first enabled).
std::size_t memPeakBytes();

struct MemScopeNode;  // internal (memory.cpp)

/// High-water-mark window: records the peak live bytes observed between
/// construction and the peakBytes() call. Inert (always 0) when
/// memoryEnabled() is false at construction.
class MemScope {
 public:
  MemScope();
  MemScope(const MemScope&) = delete;
  MemScope& operator=(const MemScope&) = delete;
  ~MemScope();

  /// Peak live bytes observed while this scope was active (including
  /// the level at construction).
  std::size_t peakBytes() const;

 private:
  MemScopeNode* node_ = nullptr;  ///< Null when accounting was off.
};

}  // namespace shhpass::obs
