// The ONE sanctioned monotonic-clock call site of the library.
//
// Every wall-clock measurement in src/ — StageTrace seconds, TaskGraph
// node timing, span begin/end stamps — flows through monotonicNowNs()
// so all timelines share one epoch and one clock (std::chrono::
// steady_clock). Direct *_clock::now() calls anywhere else in src/ are
// banned by tools/lint_invariants.py rule `no-raw-clock`; bench/ and
// examples/ may still time things however they like.
//
// Timestamps are nanoseconds since the first call in the process (a
// process-local epoch keeps the values small enough that Chrome's
// trace viewer, which works in double-precision microseconds, never
// loses span pairing precision).
#pragma once

#include <chrono>
#include <cstdint>

namespace shhpass::obs {

namespace detail {
inline std::chrono::steady_clock::time_point processEpoch() {
  static const std::chrono::steady_clock::time_point kEpoch =
      std::chrono::steady_clock::now();
  return kEpoch;
}
}  // namespace detail

/// Monotonic nanoseconds since the process-local epoch.
inline std::uint64_t monotonicNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - detail::processEpoch())
          .count());
}

/// Seconds between two monotonicNowNs() stamps.
inline double nsToSeconds(std::uint64_t t0Ns, std::uint64_t t1Ns) {
  return static_cast<double>(t1Ns - t0Ns) * 1e-9;
}

}  // namespace shhpass::obs
