#include "obs/metrics.hpp"

#include <array>
#include <atomic>
#include <cstdio>
#include <map>
#include <mutex>

namespace shhpass::obs {
namespace {

std::atomic<bool> gMetricsEnabled{false};

std::array<std::atomic<std::uint64_t>,
           static_cast<std::size_t>(Counter::kCount)>
    gCounters{};
std::array<std::atomic<std::int64_t>, static_cast<std::size_t>(Gauge::kCount)>
    gGauges{};

constexpr const char* kCounterNames[] = {
    "analyses_started",        "analyses_completed",
    "analyses_failed",         "analyses_not_passive",
    "stages_executed",         "stages_discarded",
    "stage_graph_runs",        "batch_items",
    "shards_run",              "shard_steals",
    "gemm_calls",              "gemm_flops",
    "svd_calls",               "schur_calls",
    "staircase_compressions",  "rank_decisions",
    "reorder_rejected_swaps",
};
static_assert(sizeof(kCounterNames) / sizeof(kCounterNames[0]) ==
              static_cast<std::size_t>(Counter::kCount));

constexpr const char* kGaugeNames[] = {
    "analyses_in_flight",
};
static_assert(sizeof(kGaugeNames) / sizeof(kGaugeNames[0]) ==
              static_cast<std::size_t>(Gauge::kCount));

/// Mutex-guarded labeled histogram store. Stage-granularity only (a few
/// observations per analysis), so one lock is cheaper than per-bucket
/// atomics and keeps snapshots consistent.
struct Histogram {
  std::uint64_t count = 0;
  double sum = 0.0;
  std::array<std::uint64_t, kHistogramBuckets + 1> buckets{};  // last = +Inf
};

struct HistogramStore {
  std::mutex mu;
  std::map<std::string, Histogram> byStage;  // ordered => stable exposition
};

HistogramStore& histograms() {
  static HistogramStore* kStore = new HistogramStore();  // never destroyed
  return *kStore;
}

/// Bucket index for `seconds`: smallest i with seconds <= 1us * 2^i,
/// kHistogramBuckets when it exceeds every finite bound.
std::size_t bucketIndex(double seconds) {
  double bound = 1e-6;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i, bound *= 2.0)
    if (seconds <= bound) return i;
  return kHistogramBuckets;
}

void appendBucketBound(std::string& out, std::size_t i) {
  if (i >= kHistogramBuckets) {
    out += "+Inf";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", 1e-6 * static_cast<double>(1ull << i));
  out += buf;
}

}  // namespace

bool metricsEnabled() {
  return gMetricsEnabled.load(std::memory_order_relaxed);
}

void setMetricsEnabled(bool enabled) {
  gMetricsEnabled.store(enabled, std::memory_order_relaxed);
}

const char* counterName(Counter c) {
  return kCounterNames[static_cast<std::size_t>(c)];
}

void counterAdd(Counter c, std::uint64_t delta) {
  if (!metricsEnabled()) return;
  gCounters[static_cast<std::size_t>(c)].fetch_add(delta,
                                                   std::memory_order_relaxed);
}

std::uint64_t counterValue(Counter c) {
  return gCounters[static_cast<std::size_t>(c)].load(
      std::memory_order_relaxed);
}

const char* gaugeName(Gauge g) {
  return kGaugeNames[static_cast<std::size_t>(g)];
}

void gaugeAdd(Gauge g, std::int64_t delta) {
  if (!metricsEnabled()) return;
  gGauges[static_cast<std::size_t>(g)].fetch_add(delta,
                                                 std::memory_order_relaxed);
}

std::int64_t gaugeValue(Gauge g) {
  return gGauges[static_cast<std::size_t>(g)].load(std::memory_order_relaxed);
}

void observeStageSeconds(std::string_view stage, double seconds) {
  if (!metricsEnabled()) return;
  HistogramStore& store = histograms();
  std::lock_guard<std::mutex> lock(store.mu);
  Histogram& h = store.byStage[std::string(stage)];
  h.count += 1;
  h.sum += seconds;
  h.buckets[bucketIndex(seconds)] += 1;
}

std::vector<HistogramSnapshot> snapshotStageSeconds() {
  HistogramStore& store = histograms();
  std::vector<HistogramSnapshot> out;
  std::lock_guard<std::mutex> lock(store.mu);
  for (const auto& [label, h] : store.byStage) {
    HistogramSnapshot snap;
    snap.label = label;
    snap.count = h.count;
    snap.sum = h.sum;
    snap.buckets.resize(kHistogramBuckets + 1);
    // Expose cumulative counts (Prometheus `le` semantics).
    std::uint64_t running = 0;
    for (std::size_t i = 0; i <= kHistogramBuckets; ++i) {
      running += h.buckets[i];
      snap.buckets[i] = running;
    }
    out.push_back(std::move(snap));
  }
  return out;
}

void resetMetrics() {
  for (auto& c : gCounters) c.store(0, std::memory_order_relaxed);
  for (auto& g : gGauges) g.store(0, std::memory_order_relaxed);
  HistogramStore& store = histograms();
  std::lock_guard<std::mutex> lock(store.mu);
  store.byStage.clear();
}

std::string metricsJson() {
  std::string out = "{\"counters\":{";
  char buf[64];
  for (std::size_t i = 0; i < static_cast<std::size_t>(Counter::kCount);
       ++i) {
    if (i > 0) out.push_back(',');
    out.push_back('"');
    out += kCounterNames[i];
    std::snprintf(buf, sizeof(buf), "\":%llu",
                  static_cast<unsigned long long>(
                      gCounters[i].load(std::memory_order_relaxed)));
    out += buf;
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < static_cast<std::size_t>(Gauge::kCount); ++i) {
    if (i > 0) out.push_back(',');
    out.push_back('"');
    out += kGaugeNames[i];
    std::snprintf(buf, sizeof(buf), "\":%lld",
                  static_cast<long long>(
                      gGauges[i].load(std::memory_order_relaxed)));
    out += buf;
  }
  out += "},\"histograms\":{\"stage_seconds\":{";
  bool first = true;
  for (const HistogramSnapshot& h : snapshotStageSeconds()) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out += h.label;
    std::snprintf(buf, sizeof(buf), "\":{\"count\":%llu,\"sum\":%.9g",
                  static_cast<unsigned long long>(h.count), h.sum);
    out += buf;
    out += ",\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out.push_back(',');
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(h.buckets[i]));
      out += buf;
    }
    out += "]}";
  }
  out += "}}}";
  return out;
}

std::string metricsPrometheus() {
  std::string out;
  char buf[96];
  for (std::size_t i = 0; i < static_cast<std::size_t>(Counter::kCount);
       ++i) {
    out += "# TYPE shhpass_";
    out += kCounterNames[i];
    out += "_total counter\nshhpass_";
    out += kCounterNames[i];
    std::snprintf(buf, sizeof(buf), "_total %llu\n",
                  static_cast<unsigned long long>(
                      gCounters[i].load(std::memory_order_relaxed)));
    out += buf;
  }
  for (std::size_t i = 0; i < static_cast<std::size_t>(Gauge::kCount); ++i) {
    out += "# TYPE shhpass_";
    out += kGaugeNames[i];
    out += " gauge\nshhpass_";
    out += kGaugeNames[i];
    std::snprintf(buf, sizeof(buf), " %lld\n",
                  static_cast<long long>(
                      gGauges[i].load(std::memory_order_relaxed)));
    out += buf;
  }
  const std::vector<HistogramSnapshot> stageHists = snapshotStageSeconds();
  if (!stageHists.empty())
    out += "# TYPE shhpass_stage_seconds histogram\n";
  for (const HistogramSnapshot& h : stageHists) {
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      out += "shhpass_stage_seconds_bucket{stage=\"";
      out += h.label;
      out += "\",le=\"";
      appendBucketBound(out, i);
      std::snprintf(buf, sizeof(buf), "\"} %llu\n",
                    static_cast<unsigned long long>(h.buckets[i]));
      out += buf;
    }
    out += "shhpass_stage_seconds_sum{stage=\"";
    out += h.label;
    std::snprintf(buf, sizeof(buf), "\"} %.9g\n", h.sum);
    out += buf;
    out += "shhpass_stage_seconds_count{stage=\"";
    out += h.label;
    std::snprintf(buf, sizeof(buf), "\"} %llu\n",
                  static_cast<unsigned long long>(h.count));
    out += buf;
  }
  return out;
}

}  // namespace shhpass::obs
