// Metrics registry: process-wide counters, gauges, and wall-time
// histograms behind relaxed atomics, with JSON and Prometheus-text
// exposition. This is the scrape surface the future `shhpass-serve`
// daemon mounts; today the bench and the trace_analysis example print
// it, and tests/test_obs.cpp pins counter exactness under the
// work-stealing scheduler.
//
// ## Contract
//
//   * Observation only: no counter, gauge, or histogram call may change
//     a decision anywhere in the library (pinned by the tracing-on ==
//     tracing-off decisionEquals tests).
//   * When metrics are off (the default), every mutation is a relaxed
//     atomic load and a branch — near-zero overhead.
//   * Counter increments are relaxed atomics: totals are exact once the
//     writing threads have joined (the registry is a statistic, never a
//     synchronization point). Histograms serialize on one mutex; they
//     are touched once per stage, not per kernel call.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace shhpass::obs {

/// Metrics master switch (also gates the memory accountant's per-stage
/// scopes, obs/memory.hpp).
bool metricsEnabled();
void setMetricsEnabled(bool enabled);

/// The fixed counter set. Names (for exposition) in counterName().
enum class Counter : std::size_t {
  AnalysesStarted,          ///< analyzeImpl entered.
  AnalysesCompleted,        ///< Report produced (passive or verdict).
  AnalysesFailed,           ///< Operational error (no report).
  AnalysesNotPassive,       ///< Completed with a NOT-PASSIVE verdict.
  StagesExecuted,           ///< Pipeline stage runs (incl. speculative).
  StagesDiscarded,          ///< Speculative runGraph stages never committed.
  StageGraphRuns,           ///< Analyses through Pipeline::runGraph.
  BatchItems,               ///< Items executed by the shard scheduler.
  ShardsRun,                ///< Shards executed by the shard scheduler.
  ShardSteals,              ///< Shards run by a non-home worker.
  GemmCalls,                ///< linalg::gemm entries.
  GemmFlops,                ///< 2*m*n*k summed over gemm calls.
  SvdCalls,                 ///< linalg::SVD factorizations.
  SchurCalls,               ///< linalg::realSchur calls.
  StaircaseCompressions,    ///< linalg::staircase compress() calls.
  RankDecisions,            ///< rankFromSingularValues policy decisions.
  ReorderRejectedSwaps,     ///< Schur-reorder swaps rejected as unsafe.
  kCount
};

/// Stable snake_case exposition name (e.g. "analyses_started").
const char* counterName(Counter c);

/// Add `delta` to a counter; no-op when metrics are off.
void counterAdd(Counter c, std::uint64_t delta = 1);
std::uint64_t counterValue(Counter c);

/// The fixed gauge set (instantaneous levels; may go up and down).
enum class Gauge : std::size_t {
  AnalysesInFlight,
  kCount
};
const char* gaugeName(Gauge g);
void gaugeAdd(Gauge g, std::int64_t delta);
std::int64_t gaugeValue(Gauge g);

/// Log-2 bucketed wall-time histogram observation for the family
/// `stage_seconds`, labeled by stage name (created on first use). Bucket
/// upper bounds are 1us * 2^i; see kHistogramBuckets.
void observeStageSeconds(std::string_view stage, double seconds);

inline constexpr std::size_t kHistogramBuckets = 30;  ///< + overflow.

/// One labeled histogram snapshot (JSON/Prometheus source data).
struct HistogramSnapshot {
  std::string label;    ///< Stage name.
  std::uint64_t count = 0;
  double sum = 0.0;     ///< Total observed seconds.
  /// Cumulative counts: buckets[i] = observations <= 1us * 2^i; the
  /// final element (index kHistogramBuckets) is the +Inf bucket == count.
  std::vector<std::uint64_t> buckets;
};
std::vector<HistogramSnapshot> snapshotStageSeconds();

/// Zero every counter, gauge, and histogram. Test-only: callers must
/// ensure no instrumented work is in flight.
void resetMetrics();

/// Compact JSON exposition: {"counters":{...},"gauges":{...},
/// "histograms":{"stage_seconds":{"<stage>":{...}}}}.
std::string metricsJson();

/// Prometheus text exposition (type comments + shhpass_-prefixed
/// families; histogram in the standard _bucket/_sum/_count form).
std::string metricsPrometheus();

}  // namespace shhpass::obs
