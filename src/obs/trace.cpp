#include "obs/trace.hpp"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>

#include "obs/clock.hpp"

namespace shhpass::obs {
namespace {

std::atomic<bool> gTraceEnabled{false};
std::atomic<std::uint64_t> gDropped{0};
std::atomic<std::uint32_t> gNextTid{0};

/// Per-thread append-only span buffer. The owning thread fills
/// events_[count_] and publishes with a release store of count_; readers
/// acquire count_ and copy only published slots. Slots are never
/// rewritten (no wrap), so reader and writer never touch the same
/// memory unordered — lock-free and TSan-clean by construction.
struct ThreadBuffer {
  static constexpr std::size_t kCapacity = 1 << 16;
  std::unique_ptr<TraceEvent[]> events{new TraceEvent[kCapacity]};
  std::atomic<std::size_t> published{0};
  std::size_t retired = 0;  ///< Snapshot floor; guarded by gRegistryMu.
};

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;  // owns forever
  std::vector<ThreadBuffer*> freeList;                 // recycled on exit
};

Registry& registry() {
  static Registry* kRegistry = new Registry();  // never destroyed: spans
  return *kRegistry;  // may outlive static-destruction order
}

/// Returns a buffer to the free list when its thread exits; events stay
/// published (the registry owns the storage).
struct TlsSlot {
  ThreadBuffer* buffer = nullptr;
  ~TlsSlot() {
    if (buffer == nullptr) return;
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.freeList.push_back(buffer);
  }
};

ThreadBuffer& threadBuffer() {
  thread_local TlsSlot slot;
  if (slot.buffer == nullptr) {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    if (!reg.freeList.empty()) {
      slot.buffer = reg.freeList.back();
      reg.freeList.pop_back();
    } else {
      reg.buffers.push_back(std::make_unique<ThreadBuffer>());
      slot.buffer = reg.buffers.back().get();
    }
  }
  return *slot.buffer;
}

void copyName(char (&dst)[TraceEvent::kNameCapacity], std::string_view src) {
  const std::size_t n = std::min(src.size(), sizeof(dst) - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

void appendEvent(const TraceEvent& event) {
  ThreadBuffer& buf = threadBuffer();
  const std::size_t n = buf.published.load(std::memory_order_relaxed);
  if (n >= ThreadBuffer::kCapacity) {
    gDropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf.events[n] = event;
  buf.published.store(n + 1, std::memory_order_release);
}

void appendJsonEscaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char hex[8];
      std::snprintf(hex, sizeof(hex), "\\u%04x", c);
      out += hex;
    } else {
      out.push_back(c);
    }
  }
}

}  // namespace

bool traceEnabled() { return gTraceEnabled.load(std::memory_order_relaxed); }

void setTraceEnabled(bool enabled) {
  gTraceEnabled.store(enabled, std::memory_order_relaxed);
}

std::uint32_t currentThreadTid() {
  thread_local const std::uint32_t kTid =
      gNextTid.fetch_add(1, std::memory_order_relaxed);
  return kTid;
}

void emitSpan(std::string_view name, const char* cat, std::uint64_t startNs,
              std::uint64_t endNs, std::uint32_t tid, bool discarded,
              const char* argName, std::int64_t argValue) {
  if (!traceEnabled()) return;
  TraceEvent e;
  copyName(e.name, name);
  e.cat = cat;
  e.startNs = startNs;
  e.durNs = endNs >= startNs ? endNs - startNs : 0;
  e.tid = tid;
  e.discarded = discarded;
  e.argName = argName;
  e.argValue = argValue;
  appendEvent(e);
}

ObsSpan::ObsSpan(std::string_view name, const char* cat, bool sample) {
  if (!sample || !traceEnabled()) return;
  active_ = true;
  copyName(name_, name);
  cat_ = cat;
  startNs_ = monotonicNowNs();
}

void ObsSpan::arg(const char* name, std::int64_t value) {
  if (!active_) return;
  argName_ = name;
  argValue_ = value;
}

ObsSpan::~ObsSpan() {
  if (!active_) return;
  TraceEvent e;
  std::memcpy(e.name, name_, sizeof(e.name));
  e.cat = cat_;
  e.startNs = startNs_;
  e.durNs = monotonicNowNs() - startNs_;
  e.tid = currentThreadTid();
  e.argName = argName_;
  e.argValue = argValue_;
  appendEvent(e);
}

std::vector<TraceEvent> snapshotTrace() {
  Registry& reg = registry();
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const std::unique_ptr<ThreadBuffer>& buf : reg.buffers) {
    const std::size_t n = buf->published.load(std::memory_order_acquire);
    for (std::size_t i = buf->retired; i < n; ++i)
      out.push_back(buf->events[i]);
  }
  return out;
}

void clearTrace() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (const std::unique_ptr<ThreadBuffer>& buf : reg.buffers)
    buf->retired = buf->published.load(std::memory_order_acquire);
}

std::uint64_t traceDroppedEvents() {
  return gDropped.load(std::memory_order_relaxed);
}

std::string traceJson() {
  const std::vector<TraceEvent> events = snapshotTrace();
  std::string out;
  out.reserve(events.size() * 120 + 64);
  out += "{\"traceEvents\":[";
  bool first = true;
  char num[64];
  for (const TraceEvent& e : events) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":\"";
    appendJsonEscaped(out, e.name);
    out += "\",\"cat\":\"";
    appendJsonEscaped(out, e.cat);
    // Chrome's trace viewer consumes microseconds; fractional us keep
    // the full ns resolution.
    std::snprintf(num, sizeof(num),
                  "\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,"
                  "\"tid\":%u",
                  static_cast<double>(e.startNs) * 1e-3,
                  static_cast<double>(e.durNs) * 1e-3, e.tid);
    out += num;
    if (e.argName != nullptr || e.discarded) {
      out += ",\"args\":{";
      bool argFirst = true;
      if (e.argName != nullptr) {
        out += "\"";
        appendJsonEscaped(out, e.argName);
        std::snprintf(num, sizeof(num), "\":%lld",
                      static_cast<long long>(e.argValue));
        out += num;
        argFirst = false;
      }
      if (e.discarded) {
        if (!argFirst) out.push_back(',');
        out += "\"discarded\":true";
      }
      out.push_back('}');
    }
    out.push_back('}');
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool writeTraceJson(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = traceJson();
  const bool ok =
      std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
      std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

namespace {
std::mutex gExitPathMu;
std::string gExitPath;  // guarded by gExitPathMu

void writeTraceAtExit() {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(gExitPathMu);
    path = gExitPath;
  }
  if (!path.empty()) (void)writeTraceJson(path);
}
}  // namespace

void setTraceExitPath(const std::string& path) {
  bool registerHandler = false;
  {
    std::lock_guard<std::mutex> lock(gExitPathMu);
    registerHandler = gExitPath.empty() && !path.empty();
    gExitPath = path;
  }
  if (registerHandler) std::atexit(writeTraceAtExit);
}

}  // namespace shhpass::obs
