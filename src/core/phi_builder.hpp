// Stage 0 of the proposed test (Eq. 10): realize Phi(s) = G(s) + G~(s) as a
// skew-Hamiltonian/Hamiltonian pencil
//   E_phi = diag(E, E^T),  A_phi = diag(A, -A^T),
//   C_phi = [C  B^T],      B_phi = J C_phi^T,   D_phi = D + D^T.
#pragma once

#include "ds/descriptor.hpp"
#include "shh/shh_pencil.hpp"

namespace shhpass::core {

/// Build the SHH realization of Phi = G + G~. Requires a square system;
/// throws std::invalid_argument otherwise.
shh::ShhRealization buildPhi(const ds::DescriptorSystem& g);

}  // namespace shhpass::core
