// Stage 1 of the proposed test (Sec. 3.1, Eqs. 11-17): remove the
// impulse-unobservable and impulse-uncontrollable modes of Phi(s).
//
// Key structural facts used (proved from the SHH identities E^T J = J E and
// A^T J = -J A):
//   * the impulse-unobservable subspace of Phi is
//       V_o = { v : E v = 0, A v in Im E, C v = 0 },
//   * J V_o is exactly the impulse-uncontrollable (left) subspace
//       { w : E^T w = 0, A^T w in Im E^T, B^T w = 0 },
// so projecting with right basis V = complement(V_o) and left basis
// W = -J V removes both families at once and yields a skew-symmetric /
// symmetric reduced pencil (E1, A1) with input map -C1^T (Eq. 17).
//
// Two implementations (core/deflation_path.hpp): the staircase path
// compresses Phi's E once — exploiting its exact diag(E, E^T) block
// structure when present, so ONE half-size compression serves both
// blocks — then derives every kernel/range basis of the chain from that
// compression plus two tall QR-compressions, and truncates the chain as
// soon as the deflation subspace is empty. The legacy SVD chain is kept
// below the crossover and as the equivalence oracle.
#pragma once

#include "core/deflation_path.hpp"
#include "linalg/staircase.hpp"
#include "linalg/svd.hpp"
#include "shh/shh_pencil.hpp"

namespace shhpass::core {

/// Result of the stage-1 deflation.
struct ImpulseDeflationResult {
  shh::SkewSymRealization reduced;  ///< (E1, A1, C1, D) with B1 = -C1^T.
  std::size_t removed = 0;          ///< dim V_o = number of deflated
                                    ///< unobservable (= uncontrollable)
                                    ///< impulsive directions.
  linalg::Matrix vKeep;             ///< Right projection basis used.
  linalg::Matrix impulseUnobservable;  ///< Orthonormal basis of V_o.
  /// Health of the SVD rank decisions taken (shared policy, svd.hpp).
  linalg::RankReport rankReport;
  /// Staircase-path health (kernel mix, fallbacks, chain truncation).
  /// All-zero when the legacy SVD chain ran.
  linalg::StaircaseReport staircase;
  /// When the staircase path detected Phi's exact diag(E, E^T) block
  /// structure, the compression of the half-size E block (a compression
  /// of the balanced system's own E) is kept here so the m1-extraction
  /// stage can reuse it instead of recomputing four SVDs of E.
  bool hasHalfECompression = false;
  linalg::Compression halfECompression;
};

/// Compute the impulse-unobservable subspace V_o of an SHH realization.
/// Exposed for tests and diagnostics. When `report` is non-null, every
/// SVD rank decision on the way is recorded into it.
linalg::Matrix impulseUnobservableSubspace(const shh::ShhRealization& phi,
                                           double rankTol = -1.0,
                                           linalg::RankReport* report =
                                               nullptr);

/// One pass of the deflation (sufficient for minimal passive G, which has
/// generalized eigenvectors of grade at most 2). `path` selects the
/// staircase vs legacy implementation; Auto dispatches on phi.order().
ImpulseDeflationResult deflateImpulseModes(const shh::ShhRealization& phi,
                                           double rankTol = -1.0,
                                           DeflationPath path =
                                               DeflationPath::Auto);

}  // namespace shhpass::core
