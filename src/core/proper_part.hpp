// Stages 4-5 of the proposed test (Sec. 3.3, Eqs. 21-23): transform the
// impulse-free SHH realization (E3 nonsingular) into a *regular* system
// -sI + A4 with A4 Hamiltonian, then split off the stable proper part
//   Hp(s) = D/2 + C_1 (sI - Lambda)^{-1} B_1,
// so that Phi(s) = Hp(s) + Hp~(s). Hp is (up to the symmetrized
// feedthrough) the proper part of the original G — the paper's "sidetrack".
//
// The E3 normalization uses the structured factorization
//   Z^T E3 Z = K = K_L K_R,  K_L = [Ebar -X^T; 0 I],  K_R = [I X; 0 Ebar^T],
//   X = Ebar^{-1} Theta / 2,
// with Z orthogonal symplectic from the isotropic-Arnoldi reduction; then
// Z_L = K_L^{-1} Z^T and Z_R = Z K_R^{-1} satisfy Z_L E3 Z_R = I and keep
// A4 = Z_L A3 Z_R Hamiltonian and B4 = J C4^T.
#pragma once

#include "linalg/schur_multishift.hpp"
#include "linalg/schur_reorder.hpp"
#include "linalg/svd.hpp"
#include "shh/shh_pencil.hpp"

namespace shhpass::api {
class ThreadPool;
}

namespace shhpass::core {

/// The extracted stable proper half of Phi.
struct ProperPartResult {
  bool ok = false;          ///< False if A4 has imaginary-axis eigenvalues
                            ///< (finite lossless poles; the split fails).
  linalg::Matrix lambda;    ///< np x np stable state matrix.
  linalg::Matrix b1;        ///< np x m input map.
  linalg::Matrix c1;        ///< m x np output map.
  linalg::Matrix dHalf;     ///< m x m feedthrough D_phi / 2.
  linalg::Matrix a4;        ///< The intermediate Hamiltonian A4 (diagnostic).
  /// Condition number of Ebar, the triangular factor of the E3
  /// normalizer K = K_L K_R that the normalization solves against
  /// (every Z_L / Z_R solve goes through LU(Ebar), so this is the
  /// conditioning that bounds their error).
  double condNormalizer = 1.0;
  /// Health record of the Schur reordering behind the Eq.-(22) split.
  linalg::ReorderReport reorder;
  /// Health record of the real Schur eigensolver behind that split
  /// (multishift/unblocked path, sweep / AED / shift / iteration
  /// counters — linalg/schur_multishift.hpp).
  linalg::SchurReport schur;
  /// Health of the SVD rank decision on Ebar, the inverted factor of
  /// the E3 normalizer (shared policy, svd.hpp): full rank expected; a
  /// dropped value here means the upstream nonsingularity invariant is
  /// numerically marginal.
  linalg::RankReport rankReport;
};

/// Extract the stable proper part from an impulse-free SHH realization with
/// nonsingular skew-Hamiltonian E3. Throws std::runtime_error if E3 is
/// numerically singular (pipeline invariant violated upstream). `rankTol`
/// feeds the shared-policy rank decision on the normalizer (negative =
/// SVD default), matching the tolerance the deflation stages used.
///
/// `pool` (optional, >= 2 workers; the stage-graph runner passes the
/// analysis pool) overlaps independent internal work on borrowed
/// workers: the sigma(Ebar) conditioning/rank certificate runs
/// concurrently with the Z_L/Z_R assembly and the Hamiltonian
/// decoupling, and the decoupling overlaps its two final transform
/// products. Null (the default, and the sequential pipeline) runs
/// everything inline. The result is bit-identical either way: the
/// overlapped computations share no operands-in-progress, each kernel is
/// deterministic for every thread count, and the rank merge into
/// `rankReport` happens at a fixed join point on the calling thread.
ProperPartResult extractProperPart(const shh::ShhRealization& s3,
                                   double imagTol = 1e-8,
                                   double rankTol = -1.0,
                                   api::ThreadPool* pool = nullptr);

}  // namespace shhpass::core
