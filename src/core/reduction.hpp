// Extension (Sec. 4 remarks of the paper): descriptor-system model order
// reduction on top of the SHH framework.
//
// The pipeline already splits a passive DS exactly into
//     G(s) = D + Gsp(s) + s*M1,
// with the strictly proper stable part Gsp = C1 (sI - Lambda)^{-1} B1
// delivered in regular coordinates and M1 extracted from the grade-1/2
// chains. Reduction then amounts to square-root balanced truncation of
// the (small, regular) proper part, after which the reduced DS is
// reassembled with the ORIGINAL feedthrough D and the EXACT impulsive part
// s*M1 (realized as grade-2 nilpotent blocks). The infinite-frequency
// behavior — the hard part of DS MOR — is thus preserved exactly.
#pragma once

#include <vector>

#include "ds/descriptor.hpp"

namespace shhpass::core {

/// Result of the descriptor model order reduction.
struct ReducedModel {
  ds::DescriptorSystem sys;        ///< Reduced DS: r proper states plus
                                   ///< 2*rank(M1) impulsive states.
  std::vector<double> hankel;      ///< Hankel singular values of the
                                   ///< proper part (descending).
  std::size_t properOrder = 0;     ///< Retained proper states r.
  std::size_t impulsiveRank = 0;   ///< rank(M1).
  bool ok = false;                 ///< False if the input failed the
                                   ///< pipeline prerequisites (see
                                   ///< testPassivityShh diagnostics).
};

/// Reduce a (passive) descriptor system. `properOrder` caps the retained
/// proper states; `hsvTol` additionally drops states whose Hankel singular
/// value is below hsvTol * hsv_max. The reduction is performed on the
/// balanced copy and mapped back to the original frequency scale.
/// `rankTol` is threaded into every rank decision of the deflation chain
/// (impulse deflation, nondynamic removal, M1 extraction), matching the
/// analyzePassivity pipeline (negative = shared SVD default); it does NOT
/// affect the Gramian-factor cutoffs, which are eigenvalue tolerances
/// documented at psdFactor.
ReducedModel reduceDescriptor(const ds::DescriptorSystem& g,
                              std::size_t properOrder,
                              double hsvTol = 0.0,
                              double rankTol = -1.0);

}  // namespace shhpass::core
