// The proposed DS passivity test (Fig. 1 of the paper): an O(n^3)
// structure-preserving pipeline on the SHH realization of Phi = G + G~.
//
//   0. prerequisites: square, regular pencil, stable finite modes
//   1. build Phi (Eq. 10)
//   2. deflate impulse-unobservable/-uncontrollable modes (Eqs. 11-17)
//   3. check impulse-freeness; remove nondynamic modes (Eqs. 18-20)
//   4. higher-order impulse check + extract M1 and test M1 >= 0 (Eqs. 24-25)
//   5. normalize E and extract the stable proper part (Eqs. 21-23)
//   6. positive-realness test on the proper part (Sec. 2.2)
//
// Every stage reports diagnostics so the Fig.-1 decision path is auditable.
#pragma once

#include <string>

#include "core/proper_part.hpp"
#include "ds/descriptor.hpp"
#include "linalg/matrix.hpp"
#include "linalg/schur_reorder.hpp"
#include "linalg/staircase.hpp"

namespace shhpass::core {

/// Where (if anywhere) the Fig.-1 flow declared the system non-passive.
enum class FailureStage {
  None,               ///< Passive.
  NotSquare,          ///< u^T y power interpretation requires square G.
  SingularPencil,     ///< (E, A) not regular: G undefined.
  UnstableFiniteModes,///< Finite dynamic mode with Re >= 0.
  ResidualImpulses,   ///< Phi not impulse-free after the deflation pass.
  HigherOrderImpulse, ///< Grade >= 3 chains: some Mk != 0 for k >= 2.
  M1NotPsd,           ///< M1 not symmetric positive semidefinite.
  LosslessAxisModes,  ///< A4 spectrum touches the imaginary axis; the
                      ///< stable/antistable split (Eq. 22) fails.
  ProperPartNotPr     ///< Extracted proper part fails positive realness.
};

/// Human-readable name of a failure stage.
std::string failureStageName(FailureStage s);

/// Full result of the proposed passivity test.
struct PassivityResult {
  bool passive = false;
  FailureStage failure = FailureStage::None;

  // Stage diagnostics.
  std::size_t removedImpulsive = 0;   ///< Deflated directions in stage 1.
  std::size_t removedNondynamic = 0;  ///< Eliminated states in stage 2.
  linalg::Matrix m1;                  ///< Extracted first Markov parameter.
  std::size_t impulsiveChains = 0;    ///< Grade-2 chain count of G.
  ProperPartResult properPart;        ///< The decoupled stable proper part
                                      ///< (the paper's "sidetrack").
  /// Health of the Schur reordering behind the Eq.-(22) stable/antistable
  /// split (swap/reject counts, max residual, eigenvalue drift bound).
  /// A nonzero rejectedSwaps means some exchanges were numerically
  /// ill-posed and the ordering is incomplete — a LosslessAxisModes
  /// verdict is then conservative rather than certain.
  linalg::ReorderReport reorder;
  /// Health of the real Schur eigensolver behind that split (which
  /// kernel path ran, multishift sweep / AED / shift / iteration
  /// counters — linalg/schur_multishift.hpp).
  linalg::SchurReport schur;
  /// Health of every SVD rank decision the deflation chain took (shared
  /// policy, linalg/svd.hpp), merged across the impulse-deflation,
  /// nondynamic-removal, and proper-part stages. A kept margin near 1
  /// means some deflation decision was numerically sharp.
  linalg::RankReport rankPolicy;
  /// Health of the one-pass staircase deflation chain (kernel mix,
  /// compression reuse, chain truncation — linalg/staircase.hpp), merged
  /// across the impulse-deflation, nondynamic-removal, and m1-extraction
  /// stages. All-zero when every stage ran the legacy SVD chain (orders
  /// below linalg::kStaircaseCrossover).
  linalg::StaircaseReport staircase;
};

/// Options for the proposed test.
struct PassivityOptions {
  double rankTol = -1.0;   ///< Rank tolerance for all deflation SVDs.
  double imagTol = 1e-8;   ///< Imaginary-axis tolerance for spectra.
  bool skipPrerequisites = false;  ///< Skip regularity/stability screens
                                   ///< (when the caller already knows).
  bool balance = true;     ///< Balance the pencil first (frequency scaling
                           ///< + equilibration); strongly recommended for
                           ///< physical-unit models.
};

/// Run the proposed SHH passivity test on a descriptor system.
///
/// DEPRECATED entry point: this is a thin shim over the stage-pipeline
/// engine (api/pipeline.hpp). New code should use api::PassivityAnalyzer
/// through the api/shhpass.hpp umbrella header, which adds Status-based
/// error handling, per-stage timing, JSON reports, and batching. Unlike
/// the api layer, this wrapper rethrows operational failures as
/// std::invalid_argument / std::runtime_error (the historical contract).
PassivityResult testPassivityShh(const ds::DescriptorSystem& g,
                                 const PassivityOptions& opt = {});

}  // namespace shhpass::core
