// Extension (Sec. 4 remarks of the paper): passivity margin and the hook
// for passivity *enforcement* on top of the SHH framework.
//
// The frequency-domain violation of a stable DS is
//     v = min over w of lambda_min( G(jw) + G(jw)^* ),
// and the margin is v/2: the largest uniform series resistance that could
// be removed from every port while staying passive (or, if negative, the
// smallest that must be added to repair it). Because D-shifts do not touch
// the impulsive structure, the margin is computed on the extracted stable
// proper part Hp by bisection over the Hamiltonian imaginary-axis
// certificate — O(n^3 log(1/tol)), no frequency sweep.
#pragma once

#include "core/passivity_test.hpp"
#include "ds/descriptor.hpp"

namespace shhpass::core {

/// Result of a passivity-margin computation.
struct PassivityMargin {
  bool defined = false;   ///< False if the margin concept does not apply:
                          ///< unstable, singular pencil, or an impulsive
                          ///< defect (indefinite M1 / higher-order chains)
                          ///< that no feedthrough shift can repair.
  double margin = 0.0;    ///< min_w lambda_min(G + G^*)/2. Positive: the
                          ///< system is passive with that much headroom;
                          ///< negative: add -margin * I to D to enforce
                          ///< passivity.
  FailureStage structuralDefect = FailureStage::None;  ///< Why undefined.
};

/// Compute the passivity margin of a descriptor system. `tol` is the
/// absolute bisection tolerance on the margin value; `rankTol` is threaded
/// into every rank decision of the structural-defect screen (impulse
/// deflation, nondynamic removal, higher-order-chain and M1 checks),
/// matching the analyzePassivity pipeline (negative = shared SVD default).
PassivityMargin passivityMargin(const ds::DescriptorSystem& g,
                                double tol = 1e-6, double rankTol = -1.0);

/// Passivity enforcement by feedthrough augmentation: returns a copy of g
/// with D increased by (margin deficit + headroom) * I when the system has
/// a repairable (proper-part) violation; returns the input unchanged when
/// already passive. Throws std::invalid_argument when the defect is
/// impulsive/structural and cannot be repaired this way. `rankTol` as in
/// passivityMargin.
ds::DescriptorSystem enforcePassivity(const ds::DescriptorSystem& g,
                                      double headroom = 1e-9,
                                      double rankTol = -1.0);

}  // namespace shhpass::core
