// DEPRECATED SHIM. The Fig.-1 orchestration moved into the stage-pipeline
// engine (api/pipeline.hpp); testPassivityShh remains as a thin wrapper so
// existing callers keep working. New code should use
// api::PassivityAnalyzer via the api/shhpass.hpp umbrella header.
#include "core/passivity_test.hpp"

#include <stdexcept>

#include "api/pipeline.hpp"

namespace shhpass::core {

std::string failureStageName(FailureStage s) {
  switch (s) {
    case FailureStage::None: return "none (passive)";
    case FailureStage::NotSquare: return "system not square";
    case FailureStage::SingularPencil: return "singular pencil";
    case FailureStage::UnstableFiniteModes: return "unstable finite modes";
    case FailureStage::ResidualImpulses:
      return "residual impulsive modes in Phi";
    case FailureStage::HigherOrderImpulse:
      return "grade >= 3 impulsive structure (Mk != 0, k >= 2)";
    case FailureStage::M1NotPsd: return "M1 not symmetric PSD";
    case FailureStage::LosslessAxisModes:
      return "imaginary-axis modes in the proper-part Hamiltonian";
    case FailureStage::ProperPartNotPr:
      return "proper part not positive real";
  }
  return "unknown";
}

PassivityResult testPassivityShh(const ds::DescriptorSystem& g,
                                 const PassivityOptions& opt) {
  api::PipelineState state;
  state.input = &g;
  state.options = opt;
  const api::Status status = api::standardPipeline().run(state);
  // Preserve the historical contract: operational failures surfaced as
  // exceptions from this (pre-Status) entry point.
  if (!status.ok() && !api::isVerdictCode(status.code())) {
    if (status.code() == api::ErrorCode::InvalidArgument)
      throw std::invalid_argument(status.message());
    throw std::runtime_error(status.message());
  }
  return state.result;
}

}  // namespace shhpass::core
