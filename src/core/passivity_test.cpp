#include "core/passivity_test.hpp"

#include "control/pr_test.hpp"
#include "core/impulse_deflation.hpp"
#include "core/markov.hpp"
#include "core/nondynamic.hpp"
#include "core/phi_builder.hpp"
#include "ds/balance.hpp"

namespace shhpass::core {

std::string failureStageName(FailureStage s) {
  switch (s) {
    case FailureStage::None: return "none (passive)";
    case FailureStage::NotSquare: return "system not square";
    case FailureStage::SingularPencil: return "singular pencil";
    case FailureStage::UnstableFiniteModes: return "unstable finite modes";
    case FailureStage::ResidualImpulses:
      return "residual impulsive modes in Phi";
    case FailureStage::HigherOrderImpulse:
      return "grade >= 3 impulsive structure (Mk != 0, k >= 2)";
    case FailureStage::M1NotPsd: return "M1 not symmetric PSD";
    case FailureStage::LosslessAxisModes:
      return "imaginary-axis modes in the proper-part Hamiltonian";
    case FailureStage::ProperPartNotPr:
      return "proper part not positive real";
  }
  return "unknown";
}

PassivityResult testPassivityShh(const ds::DescriptorSystem& g,
                                 const PassivityOptions& opt) {
  PassivityResult res;
  g.validate();

  // Stage 0: prerequisites.
  if (!g.isSquareSystem()) {
    res.failure = FailureStage::NotSquare;
    return res;
  }
  // Balance the pencil: frequency scaling + equilibration. Exact r.s.e.
  // operations that shrink the dynamic range of (E, A); physical-unit
  // models (Farads vs Henries) are otherwise numerically hostile to the
  // structured decomposition. Passivity is invariant under both.
  ds::BalancedSystem bal =
      opt.balance ? ds::balanceDescriptor(g)
                  : ds::BalancedSystem{g, 1.0};
  const ds::DescriptorSystem& gb = bal.sys;

  if (!opt.skipPrerequisites) {
    if (!ds::isRegular(gb)) {
      res.failure = FailureStage::SingularPencil;
      return res;
    }
    if (!ds::hasStableFiniteModes(gb)) {
      res.failure = FailureStage::UnstableFiniteModes;
      return res;
    }
  }

  // Stage 1: Phi = G + G~ as an SHH pencil, deflate impulse-unobservable
  // and impulse-uncontrollable modes.
  shh::ShhRealization phi = buildPhi(gb);
  ImpulseDeflationResult s1 = deflateImpulseModes(phi, opt.rankTol);
  res.removedImpulsive = s1.removed;

  // Stage 2+3: impulse-freeness certificate and nondynamic elimination.
  NondynamicRemovalResult s2 = removeNondynamicModes(s1.reduced, opt.rankTol);
  res.removedNondynamic = s2.removed;
  if (!s2.impulseFree) {
    res.failure = FailureStage::ResidualImpulses;
    return res;
  }

  // Stage 4: impulsive-part admissibility of G itself. Grade >= 3 chains
  // mean Mk != 0 for some k >= 2; Eq. (3) then rules out passivity even
  // though skew-symmetric Mk cancel inside Phi.
  // (Cancellation in Phi implies stage 1 removed something, so this check
  // only needs to run when the deflation was non-trivial.)
  if (res.removedImpulsive > 0 && hasHigherOrderImpulses(gb, opt.rankTol)) {
    res.failure = FailureStage::HigherOrderImpulse;
    return res;
  }
  M1Extraction m1 = extractM1(gb, opt.rankTol);
  // The balanced system is G_b(s) = G(tau * s), whose residue at infinity
  // is tau * M1; undo the frequency scaling for reporting.
  res.m1 = (1.0 / bal.freqScale) * m1.m1;
  res.impulsiveChains = m1.chainCount;
  if (!m1.symmetric || !m1.psd) {
    res.failure = FailureStage::M1NotPsd;
    return res;
  }

  // Stage 5: normalize E3 and split off the stable proper part.
  res.properPart = extractProperPart(s2.shh, opt.imagTol);
  if (!res.properPart.ok) {
    res.failure = FailureStage::LosslessAxisModes;
    return res;
  }

  // Stage 6: standard positive-realness test on the extracted proper part
  // Hp; Phi_p(jw) = Hp(jw) + Hp(jw)^* = Gp(jw) + Gp(jw)^*, so positive
  // realness of Hp decides condition 2 for G.
  control::PrTestResult pr = control::testPositiveRealProper(
      res.properPart.lambda, res.properPart.b1, res.properPart.c1,
      res.properPart.dHalf, opt.imagTol);
  if (!pr.positiveReal) {
    res.failure = FailureStage::ProperPartNotPr;
    return res;
  }

  res.passive = true;
  return res;
}

}  // namespace shhpass::core
