#include "core/margin.hpp"

#include <cmath>
#include <stdexcept>

#include "control/pr_test.hpp"
#include "core/impulse_deflation.hpp"
#include "core/markov.hpp"
#include "core/nondynamic.hpp"
#include "core/phi_builder.hpp"
#include "core/proper_part.hpp"
#include "ds/balance.hpp"

namespace shhpass::core {

using linalg::Matrix;

namespace {

// Is Hp + delta*I positive real? (Hamiltonian certificate through the
// existing proper-part test; stability of lambda is known.)
bool shiftedPr(const ProperPartResult& pp, double delta, double imagTol) {
  Matrix d = pp.dHalf;
  for (std::size_t i = 0; i < d.rows(); ++i) d(i, i) += 0.5 * delta;
  control::PrTestResult pr = control::testPositiveRealProper(
      pp.lambda, pp.b1, pp.c1, d, imagTol);
  return pr.positiveReal;
}

}  // namespace

PassivityMargin passivityMargin(const ds::DescriptorSystem& g, double tol,
                                double rankTol) {
  PassivityMargin out;
  g.validate();
  if (!g.isSquareSystem() || !ds::isRegular(g)) {
    out.structuralDefect = g.isSquareSystem() ? FailureStage::SingularPencil
                                              : FailureStage::NotSquare;
    return out;
  }
  ds::BalancedSystem bal = ds::balanceDescriptor(g);
  if (!ds::hasStableFiniteModes(bal.sys)) {
    out.structuralDefect = FailureStage::UnstableFiniteModes;
    return out;
  }

  // Structural (impulsive) defects are not repairable by D-shifts.
  // `rankTol` is threaded into every stage (historically these calls took
  // the default, silently ignoring a caller-chosen tolerance).
  shh::ShhRealization phi = buildPhi(bal.sys);
  ImpulseDeflationResult s1 = deflateImpulseModes(phi, rankTol);
  NondynamicRemovalResult s2 = removeNondynamicModes(s1.reduced, rankTol);
  if (!s2.impulseFree) {
    out.structuralDefect = FailureStage::ResidualImpulses;
    return out;
  }
  if (s1.removed > 0 && hasHigherOrderImpulses(bal.sys, rankTol)) {
    out.structuralDefect = FailureStage::HigherOrderImpulse;
    return out;
  }
  M1Extraction m1 = extractM1(bal.sys, rankTol);
  if (!m1.symmetric || !m1.psd) {
    out.structuralDefect = FailureStage::M1NotPsd;
    return out;
  }
  ProperPartResult pp = extractProperPart(s2.shh);
  if (!pp.ok) {
    out.structuralDefect = FailureStage::LosslessAxisModes;
    return out;
  }

  // Bisect delta such that Hp + (delta/2) I turns positive real exactly at
  // delta = -2*margin. Bracket first.
  const double scale =
      1.0 + pp.dHalf.maxAbs() + pp.c1.maxAbs() * pp.b1.maxAbs();
  double lo, hi;  // invariant: PR(hi) true, PR(lo) false
  if (shiftedPr(pp, 0.0, 1e-8)) {
    hi = 0.0;
    lo = -scale;
    while (shiftedPr(pp, lo, 1e-8)) {
      hi = lo;
      lo *= 4.0;
      if (lo < -1e12 * scale) {
        // Margin effectively unbounded (e.g. zero transfer function).
        out.defined = true;
        out.margin = -0.5 * lo;
        return out;
      }
    }
  } else {
    lo = 0.0;
    hi = scale;
    while (!shiftedPr(pp, hi, 1e-8)) {
      lo = hi;
      hi *= 4.0;
      if (hi > 1e12 * scale) {
        out.structuralDefect = FailureStage::ProperPartNotPr;
        return out;  // cannot repair (should not happen for stable Hp)
      }
    }
  }
  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    if (shiftedPr(pp, mid, 1e-8))
      hi = mid;
    else
      lo = mid;
  }
  out.defined = true;
  out.margin = -0.5 * hi;  // delta* = -2 * margin
  return out;
}

ds::DescriptorSystem enforcePassivity(const ds::DescriptorSystem& g,
                                      double headroom, double rankTol) {
  PassivityMargin pm = passivityMargin(g, 1e-6, rankTol);
  if (!pm.defined)
    throw std::invalid_argument(
        "enforcePassivity: structural defect (" +
        failureStageName(pm.structuralDefect) +
        ") cannot be repaired by a feedthrough shift");
  if (pm.margin >= 0.0) return g;
  ds::DescriptorSystem fixed = g;
  const double shift = -pm.margin + headroom;
  for (std::size_t i = 0; i < fixed.d.rows(); ++i) fixed.d(i, i) += shift;
  return fixed;
}

}  // namespace shhpass::core
