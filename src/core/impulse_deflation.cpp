#include "core/impulse_deflation.hpp"

#include "linalg/blas.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"
#include "shh/symplectic.hpp"

namespace shhpass::core {

using linalg::Matrix;

Matrix impulseUnobservableSubspace(const shh::ShhRealization& phi,
                                   double rankTol,
                                   linalg::RankReport* report) {
  // V_o = { v in Ker E : A v in Im E, C v = 0 }.
  linalg::SVD esvd(phi.e);
  esvd.rank(rankTol, report);
  Matrix kerE = esvd.nullspace(rankTol);
  if (kerE.cols() == 0) return Matrix(phi.order(), 0);
  // Component of A * KerE outside Im E: (I - R R^T) A KerE, R = range(E).
  Matrix range = esvd.range(rankTol);
  Matrix ak = phi.a * kerE;
  Matrix proj = ak - range * linalg::atb(range, ak);
  Matrix stacked = linalg::vcat(proj, phi.c * kerE);
  linalg::SVD ssvd(stacked);
  ssvd.rank(rankTol, report);
  Matrix coeff = ssvd.nullspace(rankTol);
  if (coeff.cols() == 0) return Matrix(phi.order(), 0);
  return kerE * coeff;  // orthonormal: kerE orthonormal, coeff orthonormal
}

ImpulseDeflationResult deflateImpulseModes(const shh::ShhRealization& phi,
                                           double rankTol) {
  ImpulseDeflationResult out;
  out.impulseUnobservable =
      impulseUnobservableSubspace(phi, rankTol, &out.rankReport);

  // The deflated right subspace is span([V_o, J A V_o]): discarding V_o
  // alone would leave a coupling through the rows J V_o. Because
  // A v in Im E for v in V_o and E^T J = J E, the cross block
  // (J V_o)^T A V_o vanishes, which makes the truncation *exactly*
  // transfer-preserving (the discarded states satisfy x = 0 identically
  // or are unobservable). The dual left subspace is J * (right subspace),
  // so the left keep-basis can again be taken as -J V.
  Matrix rBad = out.impulseUnobservable;
  if (rBad.cols() > 0) {
    // Span basis via the shared SVD rank policy (historically a pivoted-QR
    // range at a hand-rolled 1e-10 cutoff; unified in the blocked-SVD PR —
    // the golden-set parity test pins the verdicts across that change).
    Matrix partners = shh::applyJ(phi.a * out.impulseUnobservable);
    linalg::SVD span(linalg::hcat(rBad, partners));
    span.rank(rankTol, &out.rankReport);
    rBad = span.range(rankTol);
  }
  out.removed = rBad.cols();

  // Right basis: orthogonal complement of the deflated subspace. Left
  // basis: W = -J V, automatically orthogonal to the uncontrollable family.
  Matrix v = linalg::orthonormalComplement(rBad);
  out.vKeep = v;
  Matrix w = -1.0 * shh::applyJ(v);

  out.reduced.e = linalg::multiply(linalg::atb(w, phi.e), false, v, false);
  out.reduced.a = linalg::multiply(linalg::atb(w, phi.a), false, v, false);
  out.reduced.c = phi.c * v;
  out.reduced.d = phi.d;
  // Scrub the structural symmetry (W^T E V = V^T J E V is skew because
  // J E is skew; likewise A1 is symmetric because J A is symmetric).
  linalg::skewSymmetrize(out.reduced.e);
  linalg::symmetrize(out.reduced.a);
  return out;
}

}  // namespace shhpass::core
