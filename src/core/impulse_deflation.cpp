#include "core/impulse_deflation.hpp"

#include "linalg/blas.hpp"
#include "linalg/qr.hpp"
#include "linalg/staircase.hpp"
#include "linalg/svd.hpp"
#include "shh/symplectic.hpp"

namespace shhpass::core {

using linalg::Matrix;

namespace {

using linalg::projectOutTwice;

// Is m exactly diag(M, sign * M^T) for some half-size block M? buildPhi
// produces E_phi = diag(E, E^T) (sign +1) and A_phi = diag(A, -A^T)
// (sign -1), both placed without arithmetic, so the structure survives
// bit-for-bit and exact zero/equality tests detect it.
bool hasPhiBlockStructure(const Matrix& m, double sign = 1.0) {
  const std::size_t n2 = m.rows();
  if (n2 == 0 || n2 % 2 != 0 || m.cols() != n2) return false;
  const std::size_t n = n2 / 2;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      if (m(i, n + j) != 0.0 || m(n + i, j) != 0.0) return false;
      if (m(n + i, n + j) != sign * m(j, i)) return false;
    }
  return true;
}

// Multiply diag(M, sign * M^T) * v without materializing the full
// operator: two half-size gemms instead of one double-size one. Each
// output element is the same ordered k-sum as the full product minus
// exactly-zero terms (and sign folds into the products exactly), so the
// result is bit-identical to the dense multiply.
Matrix blockDiagPhiMultiply(const Matrix& mHalf, const Matrix& v,
                            double sign = 1.0) {
  const std::size_t n = mHalf.rows();
  Matrix out(2 * n, v.cols());
  out.setBlock(0, 0, mHalf * v.block(0, 0, n, v.cols()));
  Matrix bot(n, v.cols());
  linalg::gemm(sign, mHalf, true, v.block(n, 0, n, v.cols()), false, 0.0,
               bot);
  out.setBlock(n, 0, bot);
  return out;
}

ImpulseDeflationResult deflateImpulseModesStaircase(
    const shh::ShhRealization& phi, double rankTol) {
  ImpulseDeflationResult out;
  linalg::StaircaseReport& sr = out.staircase;
  const std::size_t n2 = phi.order();
  // A_phi = diag(A, -A^T) from buildPhi: every A_phi * X below can run as
  // two half-size gemms (bit-identical values, half the flops).
  const bool aBlockDiag = hasPhiBlockStructure(phi.a, -1.0);
  const auto aMultiply = [&phi, aBlockDiag, n2](const Matrix& x) {
    return aBlockDiag
               ? blockDiagPhiMultiply(phi.a.block(0, 0, n2 / 2, n2 / 2), x,
                                      -1.0)
               : phi.a * x;
  };

  // Step 1: ONE compression of Phi's E. With the exact diag(E, E^T)
  // structure, a single half-size compression yields all four subspace
  // bases of the full operator:
  //   Ker diag(E, E^T) = diag(Ker E, Ker E^T),
  //   Im  diag(E, E^T) = diag(Im E,  Im E^T) = diag(range, corange).
  Matrix kerE, rangeE;
  linalg::CompressionOptions full;
  full.rankTol = rankTol;
  full.wantRange = full.wantCorange = true;
  full.wantNullspace = full.wantLeftNullspace = true;
  if (hasPhiBlockStructure(phi.e)) {
    const std::size_t n = n2 / 2;
    out.halfECompression = linalg::compress(
        phi.e.block(0, 0, n, n), full, &out.rankReport, &sr);
    out.hasHalfECompression = true;
    ++sr.reusedCompressions;  // one compression served both blocks
    const linalg::Compression& ce = out.halfECompression;
    kerE = Matrix(n2, ce.nullspace.cols() + ce.leftNullspace.cols());
    kerE.setBlock(0, 0, ce.nullspace);
    kerE.setBlock(n, ce.nullspace.cols(), ce.leftNullspace);
    rangeE = Matrix(n2, ce.range.cols() + ce.corange.cols());
    rangeE.setBlock(0, 0, ce.range);
    rangeE.setBlock(n, ce.range.cols(), ce.corange);
  } else {
    linalg::Compression ce =
        linalg::compress(phi.e, full, &out.rankReport, &sr);
    kerE = std::move(ce.nullspace);
    rangeE = std::move(ce.range);
  }
  ++sr.chainLength;

  // Step 2: V_o = { v in Ker E : A v in Im E, C v = 0 } as the nullspace
  // of the tall stacked matrix [(I - R R^T) A K; C K].
  Matrix vo(n2, 0);
  if (kerE.cols() > 0) {
    Matrix ak = aMultiply(kerE);
    Matrix proj = projectOutTwice(rangeE, ak);
    Matrix stacked = linalg::vcat(proj, phi.c * kerE);
    linalg::CompressionOptions nullOnly;
    nullOnly.rankTol = rankTol;
    nullOnly.wantNullspace = true;
    linalg::Compression cs =
        linalg::compress(stacked, nullOnly, &out.rankReport, &sr);
    ++sr.chainLength;
    if (cs.nullity() > 0) vo = kerE * cs.nullspace;
  }
  out.impulseUnobservable = vo;

  // Chain truncation: an empty deflation subspace means the projection
  // is the identity, so the reduction collapses to the exact structural
  // congruence E1 = J E, A1 = J A (W = -J, V = I) with no further
  // compressions or gemms.
  if (vo.cols() == 0) {
    ++sr.truncatedSteps;
    out.removed = 0;
    out.vKeep = Matrix::identity(n2);
    out.reduced.e = shh::applyJ(phi.e);
    out.reduced.a = shh::applyJ(phi.a);
    out.reduced.c = phi.c;
    out.reduced.d = phi.d;
    linalg::skewSymmetrize(out.reduced.e);
    linalg::symmetrize(out.reduced.a);
    return out;
  }

  // Step 3: the deflated right subspace is span([V_o, J A V_o]) (see the
  // legacy implementation for why the cross block vanishes); its
  // orthonormal complement is the keep basis. One tall QR-compression
  // provides the span rank AND the complement (left nullspace) at once —
  // the legacy chain pays a full SVD plus a separate full-Q QR here.
  Matrix partners = shh::applyJ(aMultiply(vo));
  linalg::CompressionOptions spanOpts;
  spanOpts.rankTol = rankTol;
  spanOpts.wantRange = false;
  spanOpts.wantLeftNullspace = true;
  linalg::Compression cspan = linalg::compress(
      linalg::hcat(vo, partners), spanOpts, &out.rankReport, &sr);
  ++sr.chainLength;
  out.removed = cspan.rank;

  Matrix v = std::move(cspan.leftNullspace);
  out.vKeep = v;
  Matrix w = -1.0 * shh::applyJ(v);

  Matrix ev = out.hasHalfECompression
                  ? blockDiagPhiMultiply(phi.e.block(0, 0, n2 / 2, n2 / 2), v)
                  : phi.e * v;
  out.reduced.e = linalg::atb(w, ev);
  out.reduced.a = linalg::atb(w, aMultiply(v));
  out.reduced.c = phi.c * v;
  out.reduced.d = phi.d;
  // Scrub the structural symmetry (W^T E V = V^T J E V is skew because
  // J E is skew; likewise A1 is symmetric because J A is symmetric).
  linalg::skewSymmetrize(out.reduced.e);
  linalg::symmetrize(out.reduced.a);
  return out;
}

}  // namespace

Matrix impulseUnobservableSubspace(const shh::ShhRealization& phi,
                                   double rankTol,
                                   linalg::RankReport* report) {
  // V_o = { v in Ker E : A v in Im E, C v = 0 }.
  linalg::SVD esvd(phi.e);
  esvd.rank(rankTol, report);
  Matrix kerE = esvd.nullspace(rankTol);
  if (kerE.cols() == 0) return Matrix(phi.order(), 0);
  // Component of A * KerE outside Im E: (I - R R^T) A KerE, R = range(E),
  // with one re-orthogonalization pass.
  Matrix range = esvd.range(rankTol);
  Matrix proj = projectOutTwice(range, phi.a * kerE);
  Matrix stacked = linalg::vcat(proj, phi.c * kerE);
  linalg::SVD ssvd(stacked);
  ssvd.rank(rankTol, report);
  Matrix coeff = ssvd.nullspace(rankTol);
  if (coeff.cols() == 0) return Matrix(phi.order(), 0);
  return kerE * coeff;  // orthonormal: kerE orthonormal, coeff orthonormal
}

ImpulseDeflationResult deflateImpulseModes(const shh::ShhRealization& phi,
                                           double rankTol,
                                           DeflationPath path) {
  if (resolveDeflationPath(path, phi.order()) == DeflationPath::Staircase)
    return deflateImpulseModesStaircase(phi, rankTol);

  ImpulseDeflationResult out;
  out.impulseUnobservable =
      impulseUnobservableSubspace(phi, rankTol, &out.rankReport);

  // The deflated right subspace is span([V_o, J A V_o]): discarding V_o
  // alone would leave a coupling through the rows J V_o. Because
  // A v in Im E for v in V_o and E^T J = J E, the cross block
  // (J V_o)^T A V_o vanishes, which makes the truncation *exactly*
  // transfer-preserving (the discarded states satisfy x = 0 identically
  // or are unobservable). The dual left subspace is J * (right subspace),
  // so the left keep-basis can again be taken as -J V.
  Matrix rBad = out.impulseUnobservable;
  if (rBad.cols() > 0) {
    // Span basis via the shared SVD rank policy (historically a pivoted-QR
    // range at a hand-rolled 1e-10 cutoff; unified in the blocked-SVD PR —
    // the golden-set parity test pins the verdicts across that change).
    Matrix partners = shh::applyJ(phi.a * out.impulseUnobservable);
    linalg::SVD span(linalg::hcat(rBad, partners));
    span.rank(rankTol, &out.rankReport);
    rBad = span.range(rankTol);
  }
  out.removed = rBad.cols();

  // Right basis: orthogonal complement of the deflated subspace. Left
  // basis: W = -J V, automatically orthogonal to the uncontrollable family.
  Matrix v = linalg::orthonormalComplement(rBad);
  out.vKeep = v;
  Matrix w = -1.0 * shh::applyJ(v);

  out.reduced.e = linalg::multiply(linalg::atb(w, phi.e), false, v, false);
  out.reduced.a = linalg::multiply(linalg::atb(w, phi.a), false, v, false);
  out.reduced.c = phi.c * v;
  out.reduced.d = phi.d;
  // Scrub the structural symmetry (W^T E V = V^T J E V is skew because
  // J E is skew; likewise A1 is symmetric because J A is symmetric).
  linalg::skewSymmetrize(out.reduced.e);
  linalg::symmetrize(out.reduced.a);
  return out;
}

}  // namespace shhpass::core
