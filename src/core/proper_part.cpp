#include "core/proper_part.hpp"

#include <future>
#include <limits>
#include <stdexcept>
#include <vector>

#include "api/thread_pool.hpp"
#include "linalg/blas.hpp"
#include "linalg/lu.hpp"
#include "linalg/svd.hpp"
#include "shh/isotropic_arnoldi.hpp"
#include "shh/stable_subspace.hpp"
#include "shh/symplectic.hpp"

namespace shhpass::core {

using linalg::Matrix;

ProperPartResult extractProperPart(const shh::ShhRealization& s3,
                                   double imagTol, double rankTol,
                                   api::ThreadPool* pool) {
  ProperPartResult out;
  const std::size_t n2 = s3.order();
  const std::size_t m = s3.ports();
  if (n2 == 0) {
    // Purely static Phi: proper part is just the feedthrough.
    out.ok = true;
    out.lambda = Matrix();
    out.b1 = Matrix(0, m);
    out.c1 = Matrix(m, 0);
    out.dHalf = 0.5 * s3.d;
    return out;
  }
  const std::size_t np = n2 / 2;

  // (Eq. 21) Block-triangularize E3 by the isotropic Arnoldi process and
  // normalize to the identity with the structured K_L K_R factorization.
  shh::SkewHamiltonianTriangularization tri =
      shh::skewHamiltonianBlockTriangularize(s3.e);
  Matrix ebar = tri.ebar();
  Matrix theta = tri.theta();
  linalg::LU elu(ebar);
  if (elu.isSingular(1e-12))
    throw std::runtime_error(
        "extractProperPart: E3 numerically singular (Ebar not invertible)");
  Matrix x = 0.5 * elu.solve(theta);  // X = Ebar^{-1} Theta / 2

  // Z_L = K_L^{-1} Z^T with K_L = [Ebar -X^T; 0 I]:
  //   K_L^{-1} = [Ebar^{-1}  Ebar^{-1} X^T; 0  I].
  Matrix zt = tri.z.transposed();
  Matrix ztTop = zt.block(0, 0, np, n2);
  Matrix ztBot = zt.block(np, 0, np, n2);
  Matrix zl(n2, n2);
  zl.setBlock(0, 0, elu.solve(ztTop + x.transposed() * ztBot));
  zl.setBlock(np, 0, ztBot);

  // Z_R = Z K_R^{-1} with K_R = [I X; 0 Ebar^T]:
  //   K_R^{-1} = [I  -X Ebar^{-T}; 0  Ebar^{-T}].
  Matrix zTop = tri.z.block(0, 0, n2, np);
  Matrix zBot = tri.z.block(0, np, n2, np);
  Matrix ebarInvT = elu.solveTransposed(Matrix::identity(np));
  Matrix zr(n2, n2);
  zr.setBlock(0, 0, zTop);
  zr.setBlock(0, np, (zBot - zTop * x) * ebarInvT);

  // Normalizer conditioning / rank certificate, on the factor the
  // normalization actually inverts: every solve above goes through
  // LU(Ebar), so sigma(Ebar) is the spectrum that bounds the error of
  // Z_L and Z_R (the historical check ran a full SVD of the whole
  // 2np x 2np block-triangular K for the same certificate, at 4x the
  // cost and with the bases discarded). singularValues() skips the
  // U/V accumulation entirely.
  //
  // The certificate reads only `ebar`, which is final here, so with a
  // pool it overlaps the A4 assembly and the decoupling below; the join
  // before the rank merge keeps the merge point (and so the rankReport
  // contents) identical to the inline path.
  const bool overlap = pool != nullptr && pool->size() >= 2;
  std::future<std::vector<double>> esvFuture;
  std::vector<double> esv;
  if (overlap) {
    std::shared_ptr<std::promise<std::vector<double>>> esvDone =
        std::make_shared<std::promise<std::vector<double>>>();
    esvFuture = esvDone->get_future();
    // Capture ebar BY VALUE: if the decoupling below throws, this frame
    // unwinds while the task may still be queued — it must not reference
    // stack locals (the np x np copy is noise next to the SVD).
    pool->submit([ebarCopy = ebar, esvDone] {
      try {
        esvDone->set_value(linalg::singularValues(ebarCopy));
      } catch (...) {
        esvDone->set_exception(std::current_exception());
      }
    });
  } else {
    esv = linalg::singularValues(ebar);
  }

  // A4 = Z_L A3 Z_R is Hamiltonian; C4 = C3 Z_R; B4 = J C4^T automatically.
  out.a4 = zl * s3.a * zr;
  Matrix c4 = s3.c * zr;

  // (Eqs. 22-23) Split the Hamiltonian spectrum and decouple.
  shh::HamiltonianDecoupling dec =
      shh::decoupleHamiltonian(out.a4, imagTol, pool);
  out.reorder = dec.reorder;
  out.schur = dec.schur;

  if (overlap) esv = esvFuture.get();
  const double esmin = esv.empty() ? 0.0 : esv.back();
  out.condNormalizer =
      esv.empty() ? 1.0
                  : (esmin == 0.0 ? std::numeric_limits<double>::infinity()
                                  : esv.front() / esmin);
  linalg::rankFromSingularValues(esv, ebar.rows(), ebar.cols(), rankTol,
                                 &out.rankReport);

  if (!dec.ok) return out;  // imaginary-axis eigenvalues: cannot split

  Matrix c5 = c4 * dec.z2;
  // B5 = J C5^T = [C52^T; -C51^T]: the stable part reads B1 = C52^T.
  Matrix c51 = c5.block(0, 0, m, np);
  Matrix c52 = c5.block(0, np, m, np);
  out.lambda = dec.lambda;
  out.c1 = c51;
  out.b1 = c52.transposed();
  out.dHalf = 0.5 * s3.d;
  out.ok = true;
  return out;
}

}  // namespace shhpass::core
