#include "core/phi_builder.hpp"

#include <stdexcept>

namespace shhpass::core {

using linalg::Matrix;

shh::ShhRealization buildPhi(const ds::DescriptorSystem& g) {
  g.validate();
  if (!g.isSquareSystem())
    throw std::invalid_argument("buildPhi: system must be square");
  const std::size_t n = g.order();
  shh::ShhRealization phi;
  phi.e = Matrix(2 * n, 2 * n);
  phi.e.setBlock(0, 0, g.e);
  phi.e.setBlock(n, n, g.e.transposed());
  phi.a = Matrix(2 * n, 2 * n);
  phi.a.setBlock(0, 0, g.a);
  phi.a.setBlock(n, n, -1.0 * g.a.transposed());
  phi.c = linalg::hcat(g.c, g.b.transposed());
  phi.d = g.d + g.d.transposed();
  return phi;
}

}  // namespace shhpass::core
