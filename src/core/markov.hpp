// Sec. 3.4 of the paper: extract the first Markov parameter M1 (residue of
// the pole at infinity) of G directly from grade-1/grade-2 generalized
// eigenvector chains (Eqs. 24-25), plus the detection of higher-order
// (grade >= 3) impulsive structure which Eq. (3) forbids for passive G.
#pragma once

#include "ds/descriptor.hpp"

namespace shhpass::core {

/// Result of the M1 extraction.
struct M1Extraction {
  linalg::Matrix m1;        ///< m x m first Markov parameter.
  std::size_t chainCount = 0;  ///< Number of grade-2 impulsive chains found.
  bool symmetric = false;   ///< M1 = M1^T within tolerance (required for
                            ///< positive realness of the pole at infinity).
  bool psd = false;         ///< M1 symmetric positive semidefinite.
};

/// Extract M1 via the deflating-subspace projections of Eq. (25):
/// right chains V1 = Ker E with A V1 in Im E, V2 = E^+ A V1; left chains
/// likewise on (E^T, A^T); then M1 = -Cinf Ainf^{-1} Einf Ainf^{-1} Binf
/// on the projected pencil. For an impulse-free system M1 = 0.
M1Extraction extractM1(const ds::DescriptorSystem& g, double rankTol = -1.0);

/// True iff the pencil (E, A) carries generalized eigenvector chains of
/// grade >= 3, i.e. the index of the pencil exceeds 2. For a minimal G this
/// is equivalent to some Markov parameter Mk, k >= 2, being nonzero —
/// forbidden by Eq. (3). (This replaces the paper's mode-counting
/// heuristic with a direct structural check; see DESIGN.md.)
bool hasHigherOrderImpulses(const ds::DescriptorSystem& g,
                            double rankTol = -1.0);

}  // namespace shhpass::core
