// Sec. 3.4 of the paper: extract the first Markov parameter M1 (residue of
// the pole at infinity) of G directly from grade-1/grade-2 generalized
// eigenvector chains (Eqs. 24-25), plus the detection of higher-order
// (grade >= 3) impulsive structure which Eq. (3) forbids for passive G.
//
// Two implementations (core/deflation_path.hpp): the staircase path makes
// ONE rank-revealing compression of E serve every consumer of the chain —
// Ker E / Im E for the right chains, Ker E^T / Im E^T for the left chains,
// and both pseudoinverse applications E^+ and (E^T)^+ for the grade-2
// partners — where the legacy path pays four full SVDs of E. When the
// impulse-deflation stage already compressed the (balanced) E, the
// pipeline hands that compression in and this stage recomputes nothing.
#pragma once

#include "core/deflation_path.hpp"
#include "ds/descriptor.hpp"
#include "linalg/staircase.hpp"
#include "linalg/svd.hpp"

namespace shhpass::core {

/// Result of the M1 extraction.
struct M1Extraction {
  linalg::Matrix m1;        ///< m x m first Markov parameter.
  std::size_t chainCount = 0;  ///< Number of grade-2 impulsive chains found.
  bool symmetric = false;   ///< M1 = M1^T within tolerance (required for
                            ///< positive realness of the pole at infinity).
  bool psd = false;         ///< M1 symmetric positive semidefinite.
  /// Rank decisions taken on the staircase path (shared policy). Empty
  /// when the legacy SVD chain ran (it predates the recording plumbing).
  linalg::RankReport rankReport;
  /// Staircase-path health; all-zero when the legacy SVD chain ran.
  linalg::StaircaseReport staircase;
};

/// Extract M1 via the deflating-subspace projections of Eq. (25):
/// right chains V1 = Ker E with A V1 in Im E, V2 = E^+ A V1; left chains
/// likewise on (E^T, A^T); then M1 = -Cinf Ainf^{-1} Einf Ainf^{-1} Binf
/// on the projected pencil. For an impulse-free system M1 = 0.
///
/// `path` selects the staircase vs legacy implementation (Auto dispatches
/// on g.order()). On the staircase path, a non-null `eCompression` (a
/// compression of g.e with range/corange/nullspace/leftNullspace bases)
/// is reused instead of recompressing E.
M1Extraction extractM1(const ds::DescriptorSystem& g, double rankTol = -1.0,
                       DeflationPath path = DeflationPath::Auto,
                       const linalg::Compression* eCompression = nullptr);

/// True iff the pencil (E, A) carries generalized eigenvector chains of
/// grade >= 3, i.e. the index of the pencil exceeds 2. For a minimal G this
/// is equivalent to some Markov parameter Mk, k >= 2, being nonzero —
/// forbidden by Eq. (3). (This replaces the paper's mode-counting
/// heuristic with a direct structural check; see DESIGN.md.)
/// Rank decisions are recorded into `report` / `stair` when non-null; a
/// non-null `eCompression` of g.e is reused for the grade-1 split.
bool hasHigherOrderImpulses(const ds::DescriptorSystem& g,
                            double rankTol = -1.0,
                            linalg::RankReport* report = nullptr,
                            linalg::StaircaseReport* stair = nullptr,
                            const linalg::Compression* eCompression = nullptr);

}  // namespace shhpass::core
