#include "core/nondynamic.hpp"

#include <stdexcept>

#include "linalg/blas.hpp"
#include "linalg/lu.hpp"
#include "linalg/staircase.hpp"
#include "linalg/svd.hpp"
#include "shh/symplectic.hpp"

namespace shhpass::core {

using linalg::Matrix;

namespace {

// Shared tail of both paths: given the split bases (U = [R K] orthogonal,
// U^T E1 U = diag(E11, 0)), run the A22 impulse-freeness certificate, the
// Schur-complement strong equivalence (Eq. 19), and the -J restoration
// (Eq. 20). `a22Rank` must already be the recorded rank decision on A22
// when removed > 0 (0 otherwise).
void finishRemoval(NondynamicRemovalResult& out,
                   const shh::SkewSymRealization& s1, const Matrix& e11,
                   const Matrix& a11, const Matrix& a12, const Matrix& a22,
                   const Matrix& c1, const Matrix& c2, std::size_t a22Rank) {
  if (out.removed > 0 && a22Rank < out.removed) {
    out.impulseFree = false;
    return;
  }
  out.impulseFree = true;

  // Schur-complement strong equivalence (Eq. 19):
  //   A2 = A11 - A12 A22^{-1} A12^T   (symmetric)
  //   C2' = C1 - C2 A22^{-1} A12^T
  //   D2 = D + C2 A22^{-1} C2^T       (input map is -C^T)
  Matrix a2 = a11, c2p = c1, d2 = s1.d;
  if (out.removed > 0) {
    linalg::LU lu(a22);
    Matrix a22InvA21 = lu.solve(a12.transposed());  // A22^{-1} A12^T
    Matrix a22InvC2t = lu.solve(c2.transposed());   // A22^{-1} C2^T
    a2 = a11 - a12 * a22InvA21;
    c2p = c1 - c2 * a22InvA21;
    d2 = s1.d + c2 * a22InvC2t;
    linalg::symmetrize(a2);
    linalg::symmetrize(d2);
  }

  // Stage 3 (Eq. 20): left-multiply the pencil by -J to restore the SHH
  // structure. E3 = -J E11 is skew-Hamiltonian because J E3 = E11 is skew;
  // A3 = -J A2 is Hamiltonian because J A3 = A2 is symmetric; and the input
  // map -C^T becomes -J(-C^T) = J C3^T, the structured B of ShhRealization.
  const std::size_t r = e11.rows();
  if (r % 2 != 0)
    throw std::logic_error("removeNondynamicModes: odd rank of skew E1");
  Matrix j = Matrix::symplecticJ(r / 2);
  out.shh.e = -1.0 * (j * e11);
  out.shh.a = -1.0 * (j * a2);
  out.shh.c = c2p;
  out.shh.d = d2;
}

NondynamicRemovalResult removeNondynamicModesStaircase(
    const shh::SkewSymRealization& s1, double rankTol) {
  NondynamicRemovalResult out;
  const std::size_t n = s1.order();
  linalg::StaircaseReport& sr = out.staircase;

  // Range/kernel split of the exactly-skew E1 through the
  // skew-tridiagonal compression kernel (Auto detects the structure and
  // falls back to a certified full SVD if a caller hands a non-skew E1).
  linalg::CompressionOptions opts;
  opts.rankTol = rankTol;
  opts.wantRange = true;
  opts.wantNullspace = true;  // for skew E1, Ker(E1) == Ker(E1^T)
  linalg::Compression ce = linalg::compress(s1.e, opts, &out.rankReport, &sr);
  ++sr.chainLength;
  const std::size_t r = ce.rank;
  out.removed = n - r;

  if (out.removed == 0) {
    // Chain truncation: E1 numerically nonsingular means there is nothing
    // to eliminate — stay in identity coordinates (U = I is as valid an
    // orthogonal split as the computed basis) and skip every gemm.
    ++sr.truncatedSteps;
    Matrix empty0(n, 0), emptyC(s1.c.rows(), 0), empty22(0, 0);
    finishRemoval(out, s1, s1.e, s1.a, Matrix(n, 0), empty22, s1.c, emptyC,
                  0);
    return out;
  }

  const Matrix& rBasis = ce.range;
  const Matrix& kBasis = ce.nullspace;

  Matrix e11 = linalg::multiply(linalg::atb(rBasis, s1.e), false, rBasis,
                                false);
  linalg::skewSymmetrize(e11);
  // One product A1 * [R K] feeds all three A blocks.
  Matrix u(n, n);
  u.setBlock(0, 0, rBasis);
  u.setBlock(0, r, kBasis);
  Matrix au = s1.a * u;
  Matrix uau = linalg::atb(u, au);
  Matrix a11 = uau.block(0, 0, r, r);
  Matrix a12 = uau.block(0, r, r, n - r);
  Matrix a22 = uau.block(r, r, n - r, n - r);
  linalg::symmetrize(a11);
  linalg::symmetrize(a22);
  Matrix cu = s1.c * u;
  Matrix c1 = cu.block(0, 0, s1.c.rows(), r);
  Matrix c2 = cu.block(0, r, s1.c.rows(), n - r);

  // Impulse-freeness certificate: rank(A22) == removed, through the same
  // compression entry point so the decision and kernel mix are recorded.
  linalg::CompressionOptions a22Opts;
  a22Opts.rankTol = rankTol;
  linalg::Compression ca22 =
      linalg::compress(a22, a22Opts, &out.rankReport, &sr);
  ++sr.chainLength;

  finishRemoval(out, s1, e11, a11, a12, a22, c1, c2, ca22.rank);
  return out;
}

}  // namespace

NondynamicRemovalResult removeNondynamicModes(
    const shh::SkewSymRealization& s1, double rankTol, DeflationPath path) {
  if (resolveDeflationPath(path, s1.order()) == DeflationPath::Staircase)
    return removeNondynamicModesStaircase(s1, rankTol);

  NondynamicRemovalResult out;
  const std::size_t n = s1.order();

  // U = [R K]: columns of R span Im(E1), columns of K span Ker(E1). For a
  // skew-symmetric E1 these are orthogonal complements, so U is orthogonal
  // and U^T E1 U = diag(E11, 0) with E11 skew nonsingular (rank of a skew
  // matrix is even).
  linalg::SVD esvd(s1.e);
  const std::size_t r = esvd.rank(rankTol, &out.rankReport);
  Matrix rBasis = esvd.range(rankTol);
  // For skew-symmetric E1, Ker(E1) = Ker(E1^T), so the left nullspace from
  // the same U factor is an exactly orthonormal completion of the range.
  Matrix kBasis = esvd.leftNullspace(rankTol);

  Matrix e11 = linalg::multiply(linalg::atb(rBasis, s1.e), false, rBasis,
                                false);
  linalg::skewSymmetrize(e11);
  Matrix a11 = linalg::multiply(linalg::atb(rBasis, s1.a), false, rBasis,
                                false);
  Matrix a12 = linalg::multiply(linalg::atb(rBasis, s1.a), false, kBasis,
                                false);
  Matrix a22 = linalg::multiply(linalg::atb(kBasis, s1.a), false, kBasis,
                                false);
  linalg::symmetrize(a11);
  linalg::symmetrize(a22);
  Matrix c1 = s1.c * rBasis;
  Matrix c2 = s1.c * kBasis;
  out.removed = n - r;

  // Impulse-freeness at this stage == A22 nonsingular (Sec. 2.5 item 5,
  // specialized to the already-deflated pencil). Empty A22 is trivially
  // nonsingular.
  std::size_t a22Rank = 0;
  if (out.removed > 0) {
    linalg::SVD asvd(a22);
    a22Rank = asvd.rank(rankTol, &out.rankReport);
  }
  finishRemoval(out, s1, e11, a11, a12, a22, c1, c2, a22Rank);
  return out;
}

}  // namespace shhpass::core
