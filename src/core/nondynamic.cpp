#include "core/nondynamic.hpp"

#include <stdexcept>

#include "linalg/blas.hpp"
#include "linalg/lu.hpp"
#include "linalg/svd.hpp"
#include "shh/symplectic.hpp"

namespace shhpass::core {

using linalg::Matrix;

NondynamicRemovalResult removeNondynamicModes(
    const shh::SkewSymRealization& s1, double rankTol) {
  NondynamicRemovalResult out;
  const std::size_t n = s1.order();

  // U = [R K]: columns of R span Im(E1), columns of K span Ker(E1). For a
  // skew-symmetric E1 these are orthogonal complements, so U is orthogonal
  // and U^T E1 U = diag(E11, 0) with E11 skew nonsingular (rank of a skew
  // matrix is even).
  linalg::SVD esvd(s1.e);
  const std::size_t r = esvd.rank(rankTol, &out.rankReport);
  Matrix rBasis = esvd.range(rankTol);
  // For skew-symmetric E1, Ker(E1) = Ker(E1^T), so the left nullspace from
  // the same U factor is an exactly orthonormal completion of the range.
  Matrix kBasis = esvd.leftNullspace(rankTol);

  Matrix e11 = linalg::multiply(linalg::atb(rBasis, s1.e), false, rBasis,
                                false);
  linalg::skewSymmetrize(e11);
  Matrix a11 = linalg::multiply(linalg::atb(rBasis, s1.a), false, rBasis,
                                false);
  Matrix a12 = linalg::multiply(linalg::atb(rBasis, s1.a), false, kBasis,
                                false);
  Matrix a22 = linalg::multiply(linalg::atb(kBasis, s1.a), false, kBasis,
                                false);
  linalg::symmetrize(a11);
  linalg::symmetrize(a22);
  Matrix c1 = s1.c * rBasis;
  Matrix c2 = s1.c * kBasis;
  out.removed = n - r;

  // Impulse-freeness at this stage == A22 nonsingular (Sec. 2.5 item 5,
  // specialized to the already-deflated pencil). Empty A22 is trivially
  // nonsingular.
  if (out.removed > 0) {
    linalg::SVD asvd(a22);
    if (asvd.rank(rankTol, &out.rankReport) < out.removed) {
      out.impulseFree = false;
      return out;
    }
  }
  out.impulseFree = true;

  // Schur-complement strong equivalence (Eq. 19):
  //   A2 = A11 - A12 A22^{-1} A12^T   (symmetric)
  //   C2' = C1 - C2 A22^{-1} A12^T
  //   D2 = D + C2 A22^{-1} C2^T       (input map is -C^T)
  Matrix a2 = a11, c2p = c1, d2 = s1.d;
  if (out.removed > 0) {
    linalg::LU lu(a22);
    Matrix a22InvA21 = lu.solve(a12.transposed());  // A22^{-1} A12^T
    Matrix a22InvC2t = lu.solve(c2.transposed());   // A22^{-1} C2^T
    a2 = a11 - a12 * a22InvA21;
    c2p = c1 - c2 * a22InvA21;
    d2 = s1.d + c2 * a22InvC2t;
    linalg::symmetrize(a2);
    linalg::symmetrize(d2);
  }

  // Stage 3 (Eq. 20): left-multiply the pencil by -J to restore the SHH
  // structure. E3 = -J E11 is skew-Hamiltonian because J E3 = E11 is skew;
  // A3 = -J A2 is Hamiltonian because J A3 = A2 is symmetric; and the input
  // map -C^T becomes -J(-C^T) = J C3^T, the structured B of ShhRealization.
  if (r % 2 != 0)
    throw std::logic_error("removeNondynamicModes: odd rank of skew E1");
  Matrix j = Matrix::symplecticJ(r / 2);
  out.shh.e = -1.0 * (j * e11);
  out.shh.a = -1.0 * (j * a2);
  out.shh.c = c2p;
  out.shh.d = d2;
  return out;
}

}  // namespace shhpass::core
