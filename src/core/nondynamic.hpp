// Stages 2-3 of the proposed test (Sec. 3.2, Eqs. 18-20): remove the
// nondynamic (grade-1 infinite) modes of the reduced skew-symmetric /
// symmetric realization, then restore the SHH pencil structure by the
// left multiplication with -J.
//
// E1 is skew-symmetric, so Ker(E1) is orthogonal to Im(E1): the orthogonal
// U = [range(E1) kernel(E1)] gives U^T E1 U = diag(E11, 0) with E11 skew
// nonsingular (Eq. 18). The system is impulse-free at this stage iff
// A22 = K^T A1 K is nonsingular; the Schur-complement strong equivalence
// (Eq. 19) then eliminates the nondynamic states. A failure of the A22
// invertibility check here certifies leftover (observable/controllable)
// impulsive modes, hence a non-passive G.
//
// Two implementations (core/deflation_path.hpp): the staircase path gets
// the E1 range/kernel split from the skew-tridiagonal compression kernel
// (one BLAS-3 Hessenberg + a half-size bidiagonal sweep instead of a
// full-size SVD) and truncates to identity coordinates when E1 is
// numerically nonsingular; the legacy SVD chain is kept below the
// crossover and as the equivalence oracle.
#pragma once

#include "core/deflation_path.hpp"
#include "linalg/staircase.hpp"
#include "linalg/svd.hpp"
#include "shh/shh_pencil.hpp"

namespace shhpass::core {

/// Result of the nondynamic elimination.
struct NondynamicRemovalResult {
  bool impulseFree = false;   ///< False iff A22 was singular: leftover
                              ///< impulsive modes, G cannot be passive.
  std::size_t removed = 0;    ///< Number of nondynamic modes eliminated.
  shh::ShhRealization shh;    ///< (E3, A3, C3, D3) with E3 nonsingular
                              ///< skew-Hamiltonian, A3 Hamiltonian
                              ///< (valid only when impulseFree).
  /// Health of the SVD rank decisions taken (shared policy, svd.hpp):
  /// the E1 rank split and the A22 impulse-freeness certificate.
  linalg::RankReport rankReport;
  /// Staircase-path health; all-zero when the legacy SVD chain ran.
  linalg::StaircaseReport staircase;
};

/// Eliminate nondynamic modes and restore SHH structure. `rankTol` controls
/// the rank decisions on E1 and A22 (negative = SVD default). `path`
/// selects the staircase vs legacy implementation; Auto dispatches on
/// s1.order().
NondynamicRemovalResult removeNondynamicModes(
    const shh::SkewSymRealization& s1, double rankTol = -1.0,
    DeflationPath path = DeflationPath::Auto);

}  // namespace shhpass::core
