// Path selector shared by the deflation-chain stages (impulse deflation,
// nondynamic removal, m1 extraction): the one-pass staircase reduction
// (linalg/staircase.hpp) vs the legacy full-SVD chain.
//
// Auto dispatches on the order of the pencil being deflated: at or above
// linalg::kStaircaseCrossover the staircase path runs (structure-
// exploiting compressions, reused across consecutive chain steps); below
// it the legacy SVD-chain implementation runs, which keeps the golden-set
// decision path on the historical kernel sequence and doubles as the
// oracle for the seeded staircase equivalence suite
// (tests/test_staircase_random.cpp).
#pragma once

#include <cstddef>

#include "linalg/staircase.hpp"

namespace shhpass::core {

/// Which deflation-chain implementation to run.
enum class DeflationPath { Auto, Staircase, SvdChain };

/// Resolve Auto against the order of the pencil being deflated.
inline DeflationPath resolveDeflationPath(DeflationPath p, std::size_t order) {
  if (p != DeflationPath::Auto) return p;
  return order >= linalg::kStaircaseCrossover ? DeflationPath::Staircase
                                              : DeflationPath::SvdChain;
}

}  // namespace shhpass::core
