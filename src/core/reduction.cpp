#include "core/reduction.hpp"

#include <algorithm>
#include <cmath>

#include "control/lyapunov.hpp"
#include "core/impulse_deflation.hpp"
#include "core/markov.hpp"
#include "core/nondynamic.hpp"
#include "core/phi_builder.hpp"
#include "core/proper_part.hpp"
#include "ds/balance.hpp"
#include "linalg/blas.hpp"
#include "linalg/svd.hpp"
#include "linalg/symmetric_eig.hpp"

namespace shhpass::core {

using linalg::Matrix;

namespace {

// Symmetric PSD square root factor: M = F^T F with F = sqrt(S) V^T from the
// eigen-decomposition, keeping only eigenvalues above tol.
//
// The callers' cutoffs (1e-14 * Gramian scale, 1e-12 * M1 scale) are
// EXEMPT from the shared rank policy on purpose: they threshold
// *eigenvalues* of PSD matrices that are themselves squared quantities
// (Gramians ~ factor^2, M1 from a product of two solves), so the policy's
// singular-value default would be quadratically too tight and resurrect
// noise states. Factor-rank decisions here are a reduction knob, not a
// pencil rank certificate, and stay out of RankReport.
Matrix psdFactor(const Matrix& m, double tol) {
  linalg::SymmetricEig eig(m);
  const auto& w = eig.eigenvalues();
  std::size_t rank = 0;
  for (double v : w)
    if (v > tol) ++rank;
  Matrix f(rank, m.rows());
  std::size_t row = 0;
  for (std::size_t k = 0; k < w.size(); ++k) {
    if (w[k] <= tol) continue;
    const double s = std::sqrt(w[k]);
    for (std::size_t i = 0; i < m.rows(); ++i)
      f(row, i) = s * eig.eigenvectors()(i, k);
    ++row;
  }
  return f;
}

}  // namespace

ReducedModel reduceDescriptor(const ds::DescriptorSystem& g,
                              std::size_t properOrder, double hsvTol,
                              double rankTol) {
  ReducedModel out;
  g.validate();

  // Run the pipeline on the balanced system, threading `rankTol` into
  // every stage (historically these calls took the default, silently
  // ignoring a caller-chosen tolerance).
  ds::BalancedSystem bal = ds::balanceDescriptor(g);
  shh::ShhRealization phi = buildPhi(bal.sys);
  ImpulseDeflationResult s1 = deflateImpulseModes(phi, rankTol);
  NondynamicRemovalResult s2 = removeNondynamicModes(s1.reduced, rankTol);
  if (!s2.impulseFree) return out;
  ProperPartResult pp = extractProperPart(s2.shh);
  if (!pp.ok) return out;
  M1Extraction m1e = extractM1(bal.sys, rankTol);
  if (!m1e.symmetric) return out;

  const std::size_t np = pp.lambda.rows();
  const std::size_t m = g.numInputs();

  // Square-root balanced truncation of (Lambda, B1, C1).
  Matrix p = control::solveLyapunov(pp.lambda, linalg::abt(pp.b1, pp.b1));
  Matrix q = control::solveLyapunov(pp.lambda.transposed(),
                                    linalg::atb(pp.c1, pp.c1));
  const double gramTol =
      1e-14 * std::max({1.0, p.maxAbs(), q.maxAbs()});
  Matrix lp = psdFactor(p, gramTol).transposed();  // P ~ lp lp^T
  Matrix lq = psdFactor(q, gramTol).transposed();  // Q ~ lq lq^T
  linalg::SVD bsvd(linalg::atb(lq, lp));
  out.hankel = bsvd.singularValues();
  const double hsvMax = out.hankel.empty() ? 0.0 : out.hankel.front();
  std::size_t r = std::min<std::size_t>(properOrder, out.hankel.size());
  while (r > 0 && out.hankel[r - 1] < hsvTol * hsvMax) --r;
  out.properOrder = r;

  // Projection: Tr = lp V_r S_r^{-1/2}, Lr = S_r^{-1/2} U_r^T lq^T.
  Matrix tr(np, r), lr(r, np);
  for (std::size_t k = 0; k < r; ++k) {
    const double is = 1.0 / std::sqrt(out.hankel[k]);
    for (std::size_t i = 0; i < np; ++i) {
      double tv = 0.0, lv = 0.0;
      for (std::size_t j = 0; j < lp.cols(); ++j)
        tv += lp(i, j) * bsvd.v()(j, k);
      for (std::size_t j = 0; j < lq.cols(); ++j)
        lv += lq(i, j) * bsvd.u()(j, k);
      tr(i, k) = tv * is;
      lr(k, i) = lv * is;
    }
  }
  Matrix ar = lr * pp.lambda * tr;
  Matrix br = lr * pp.b1;
  Matrix cr = pp.c1 * tr;

  // Impulsive part: M1 (in ORIGINAL frequency units) = M1_bal / tau.
  Matrix m1 = (1.0 / bal.freqScale) * m1e.m1;
  linalg::symmetrize(m1);
  Matrix f = psdFactor(m1, 1e-12 * std::max(1.0, m1.maxAbs()));
  const std::size_t pRank = f.rows();
  out.impulsiveRank = pRank;

  // Assemble the reduced DS in ORIGINAL frequency units:
  //   proper states: E = I / tau (undo s -> tau*s), A = ar;
  //   impulsive states (2*pRank): E = [0 I; 0 0], A = I,
  //   b = [0; F], c = [-F^T, 0]  =>  contribution s * F^T F = s * M1.
  const std::size_t nTot = r + 2 * pRank;
  ds::DescriptorSystem red;
  red.e = Matrix(nTot, nTot);
  red.a = Matrix(nTot, nTot);
  red.b = Matrix(nTot, m);
  red.c = Matrix(m, nTot);
  // Feedthrough: the pipeline's dHalf = (D + D^T + M0 + M0^T)/2 carries
  // the Hermitian part of the original D *and* of the constant Markov
  // parameter M0 (the infinite modes' DC contribution, Eq. 3). Adding back
  // the skew part of D yields D + Herm(M0): exact for reciprocal networks
  // (where M0 is symmetric), and exact in the Hermitian part — the part
  // passivity and port energy see — in general.
  red.d = pp.dHalf + 0.5 * (g.d - g.d.transposed());
  for (std::size_t i = 0; i < r; ++i) red.e(i, i) = 1.0 / bal.freqScale;
  red.a.setBlock(0, 0, ar);
  red.b.setBlock(0, 0, br);
  red.c.setBlock(0, 0, cr);
  for (std::size_t i = 0; i < pRank; ++i) {
    red.e(r + i, r + pRank + i) = 1.0;
    red.a(r + i, r + i) = 1.0;
    red.a(r + pRank + i, r + pRank + i) = 1.0;
  }
  if (pRank > 0) {
    red.b.setBlock(r + pRank, 0, f);
    red.c.setBlock(0, r, -1.0 * f.transposed());
  }
  out.sys = red;
  out.ok = true;
  return out;
}

}  // namespace shhpass::core
