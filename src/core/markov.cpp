#include "core/markov.hpp"

#include <algorithm>
#include <stdexcept>

#include "ds/impulse_tests.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "linalg/qr.hpp"
#include "linalg/svd.hpp"

namespace shhpass::core {

using linalg::Matrix;

namespace {

// Grade-1 chain heads with a grade-2 partner: { v in Ker E : A v in Im E }.
// Returns an orthonormal basis (n x p).
Matrix grade1WithPartners(const Matrix& e, const Matrix& a, double rankTol) {
  linalg::SVD esvd(e);
  Matrix ker = esvd.nullspace(rankTol);
  if (ker.cols() == 0) return Matrix(e.rows(), 0);
  Matrix range = esvd.range(rankTol);
  Matrix ak = a * ker;
  Matrix outside = ak - range * linalg::atb(range, ak);
  Matrix coeff = linalg::SVD(outside).nullspace(rankTol);
  if (coeff.cols() == 0) return Matrix(e.rows(), 0);
  return ker * coeff;
}

}  // namespace

M1Extraction extractM1(const ds::DescriptorSystem& g, double rankTol) {
  g.validate();
  M1Extraction out;
  const std::size_t m = g.numOutputs();
  out.m1 = Matrix(m, g.numInputs());

  // Right chains on (E, A).
  Matrix v1 = grade1WithPartners(g.e, g.a, rankTol);
  // Left chains on (E^T, A^T).
  Matrix w1 = grade1WithPartners(g.e.transposed(), g.a.transposed(), rankTol);
  const std::size_t p = v1.cols();
  out.chainCount = p;
  if (p == 0 || w1.cols() != p) {
    // No impulsive chains (or a left/right mismatch indicating a structure
    // beyond one grade-2 family, handled by the higher-order check).
    out.symmetric = true;
    out.psd = p == 0;
    if (p == 0) out.psd = true;
    return out;
  }

  // Grade-2 partners: E V2 = A V1 and E^T W2 = A^T W1 (any particular
  // solution works; the pseudoinverse picks the minimum-norm one, Eq. 25).
  linalg::SVD esvd(g.e);
  Matrix v2 = esvd.pseudoInverse(rankTol) * (g.a * v1);
  linalg::SVD etsvd(g.e.transposed());
  Matrix w2 = etsvd.pseudoInverse(rankTol) * (g.a.transposed() * w1);

  // Project onto the impulsive deflating subspaces (Eq. 25):
  // Z_R = [V1 V2], Z_L = [W1 W2].
  Matrix zr = linalg::hcat(v1, v2);
  Matrix zl = linalg::hcat(w1, w2);
  Matrix einf = linalg::multiply(linalg::atb(zl, g.e), false, zr, false);
  Matrix ainf = linalg::multiply(linalg::atb(zl, g.a), false, zr, false);
  Matrix binf = linalg::atb(zl, g.b);
  Matrix cinf = g.c * zr;

  linalg::LU alu(ainf);
  if (alu.isSingular(1e-12)) {
    // Invertibility of Ainf follows from the Weierstrass structure for
    // clean grade-2 families; failure indicates deeper structure.
    out.symmetric = false;
    out.psd = false;
    return out;
  }
  // M1 = -Cinf Ainf^{-1} Einf Ainf^{-1} Binf.
  Matrix t = alu.solve(binf);
  t = einf * t;
  t = alu.solve(t);
  out.m1 = -1.0 * (cinf * t);

  const double scale = std::max(1.0, out.m1.maxAbs());
  out.symmetric = out.m1.isSymmetric(1e-8 * scale);
  if (out.symmetric) {
    Matrix sym = out.m1;
    linalg::symmetrize(sym);
    out.psd = linalg::isPositiveSemidefinite(sym);
  }
  return out;
}

bool hasHigherOrderImpulses(const ds::DescriptorSystem& g, double rankTol) {
  return ds::hasGradeThreeChains(g, rankTol);
}

}  // namespace shhpass::core
