#include "core/markov.hpp"

#include <algorithm>
#include <stdexcept>

#include "ds/impulse_tests.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "linalg/qr.hpp"
#include "linalg/staircase.hpp"
#include "linalg/svd.hpp"

namespace shhpass::core {

using linalg::Matrix;

namespace {

// Grade-1 chain heads with a grade-2 partner: { v in Ker E : A v in Im E }.
// Returns an orthonormal basis (n x p). Legacy (SVD-chain) variant.
Matrix grade1WithPartners(const Matrix& e, const Matrix& a, double rankTol) {
  linalg::SVD esvd(e);
  Matrix ker = esvd.nullspace(rankTol);
  if (ker.cols() == 0) return Matrix(e.rows(), 0);
  Matrix range = esvd.range(rankTol);
  Matrix ak = a * ker;
  Matrix outside = ak - range * linalg::atb(range, ak);
  Matrix coeff = linalg::SVD(outside).nullspace(rankTol);
  if (coeff.cols() == 0) return Matrix(e.rows(), 0);
  return ker * coeff;
}

// Shared tail of both paths: project onto the impulsive deflating
// subspaces Z_R = [V1 V2], Z_L = [W1 W2] (Eq. 25) and evaluate
// M1 = -Cinf Ainf^{-1} Einf Ainf^{-1} Binf.
void finishExtraction(M1Extraction& out, const ds::DescriptorSystem& g,
                      const Matrix& v1, const Matrix& v2, const Matrix& w1,
                      const Matrix& w2) {
  Matrix zr = linalg::hcat(v1, v2);
  Matrix zl = linalg::hcat(w1, w2);
  Matrix einf = linalg::multiply(linalg::atb(zl, g.e), false, zr, false);
  Matrix ainf = linalg::multiply(linalg::atb(zl, g.a), false, zr, false);
  Matrix binf = linalg::atb(zl, g.b);
  Matrix cinf = g.c * zr;

  linalg::LU alu(ainf);
  if (alu.isSingular(1e-12)) {
    // Invertibility of Ainf follows from the Weierstrass structure for
    // clean grade-2 families; failure indicates deeper structure.
    out.symmetric = false;
    out.psd = false;
    return;
  }
  Matrix t = alu.solve(binf);
  t = einf * t;
  t = alu.solve(t);
  out.m1 = -1.0 * (cinf * t);

  const double scale = std::max(1.0, out.m1.maxAbs());
  out.symmetric = out.m1.isSymmetric(1e-8 * scale);
  if (out.symmetric) {
    Matrix sym = out.m1;
    linalg::symmetrize(sym);
    out.psd = linalg::isPositiveSemidefinite(sym);
  }
}

M1Extraction extractM1Staircase(const ds::DescriptorSystem& g,
                                double rankTol,
                                const linalg::Compression* eCompression) {
  M1Extraction out;
  const std::size_t n = g.order();
  out.m1 = Matrix(g.numOutputs(), g.numInputs());
  linalg::StaircaseReport& sr = out.staircase;

  // ONE compression of E serves the whole stage: Ker E / Im E for the
  // right chains, Ker E^T / Im E^T for the left chains, and E^+ / (E^T)^+
  // for the grade-2 partners. Reuse the caller's compression (typically
  // the impulse-deflation stage's half-E compression of the same matrix)
  // when it carries all four bases.
  linalg::Compression local;
  const linalg::Compression* ce = nullptr;
  if (eCompression != nullptr && eCompression->rows == n &&
      eCompression->cols == n &&
      eCompression->range.cols() == eCompression->rank &&
      eCompression->corange.cols() == eCompression->rank &&
      eCompression->nullspace.cols() == eCompression->nullity() &&
      eCompression->leftNullspace.cols() == n - eCompression->rank) {
    ce = eCompression;
    ++sr.reusedCompressions;
  } else {
    linalg::CompressionOptions full;
    full.rankTol = rankTol;
    full.wantRange = full.wantCorange = true;
    full.wantNullspace = full.wantLeftNullspace = true;
    local = linalg::compress(g.e, full, &out.rankReport, &sr);
    ce = &local;
  }
  ++sr.chainLength;

  // Chain heads on (E, A) and, with `transposed`, on (E^T, A^T) — both
  // from the same compression.
  auto chainHeads = [&](const Matrix& ker, const Matrix& range,
                        bool transposed) {
    if (ker.cols() == 0) return Matrix(n, 0);
    Matrix ak = transposed ? linalg::atb(g.a, ker) : g.a * ker;
    Matrix outside = linalg::projectOutTwice(range, ak);
    linalg::CompressionOptions nullOnly;
    nullOnly.rankTol = rankTol;
    nullOnly.wantNullspace = true;
    linalg::Compression cc =
        linalg::compress(outside, nullOnly, &out.rankReport, &sr);
    ++sr.chainLength;
    if (cc.nullity() == 0) return Matrix(n, 0);
    return ker * cc.nullspace;
  };
  Matrix v1 = chainHeads(ce->nullspace, ce->range, false);
  Matrix w1 = chainHeads(ce->leftNullspace, ce->corange, true);

  const std::size_t p = v1.cols();
  out.chainCount = p;
  if (p == 0 || w1.cols() != p) {
    // No impulsive chains (or a left/right mismatch indicating structure
    // beyond one grade-2 family, handled by the higher-order check). The
    // rest of the chain is not needed: truncate.
    ++sr.truncatedSteps;
    out.symmetric = true;
    out.psd = p == 0;
    return out;
  }

  // Grade-2 partners through the SAME compression: V2 = E^+ (A V1),
  // W2 = (E^T)^+ (A^T W1) — minimum-norm solutions, Eq. 25.
  Matrix v2 = ce->applyPinv(g.a * v1);
  Matrix w2 = ce->applyPinvTranspose(linalg::atb(g.a, w1));
  sr.reusedCompressions += 2;

  finishExtraction(out, g, v1, v2, w1, w2);
  return out;
}

}  // namespace

M1Extraction extractM1(const ds::DescriptorSystem& g, double rankTol,
                       DeflationPath path,
                       const linalg::Compression* eCompression) {
  g.validate();
  if (resolveDeflationPath(path, g.order()) == DeflationPath::Staircase)
    return extractM1Staircase(g, rankTol, eCompression);

  M1Extraction out;
  const std::size_t m = g.numOutputs();
  out.m1 = Matrix(m, g.numInputs());

  // Right chains on (E, A).
  Matrix v1 = grade1WithPartners(g.e, g.a, rankTol);
  // Left chains on (E^T, A^T).
  Matrix w1 = grade1WithPartners(g.e.transposed(), g.a.transposed(), rankTol);
  const std::size_t p = v1.cols();
  out.chainCount = p;
  if (p == 0 || w1.cols() != p) {
    // No impulsive chains (or a left/right mismatch indicating a structure
    // beyond one grade-2 family, handled by the higher-order check).
    out.symmetric = true;
    out.psd = p == 0;
    return out;
  }

  // Grade-2 partners: E V2 = A V1 and E^T W2 = A^T W1 (any particular
  // solution works; the pseudoinverse picks the minimum-norm one, Eq. 25).
  linalg::SVD esvd(g.e);
  Matrix v2 = esvd.pseudoInverse(rankTol) * (g.a * v1);
  linalg::SVD etsvd(g.e.transposed());
  Matrix w2 = etsvd.pseudoInverse(rankTol) * (g.a.transposed() * w1);

  finishExtraction(out, g, v1, v2, w1, w2);
  return out;
}

bool hasHigherOrderImpulses(const ds::DescriptorSystem& g, double rankTol,
                            linalg::RankReport* report,
                            linalg::StaircaseReport* stair,
                            const linalg::Compression* eCompression) {
  return ds::hasGradeThreeChains(g, rankTol, report, stair, eCompression);
}

}  // namespace shhpass::core
