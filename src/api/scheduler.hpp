// Level-2 scheduling for PassivityAnalyzer::runBatch: a deterministic
// shard plan executed by a work-stealing worker crew, with per-shard gemm
// kernel-thread budgets (ElKabbany-&-Aslan-style two-level decomposition:
// this layer schedules ACROSS analyses, the stage graph in
// api/pipeline.hpp schedules INSIDE one).
//
// ## Determinism contract
//
// The shard PLAN — which items group into which shard, which shards are
// "large", and each shard's kernel budget — is a pure function of the
// item orders and the options (planShards below), independent of worker
// count and steal timing. Work stealing only changes WHICH WORKER runs a
// shard and WHEN; results are written to caller-owned, item-indexed
// slots, so batch output ordering is deterministic regardless of steal
// order. Kernel budgets cannot change numerics either (the gemm
// determinism contract: bit-identical for every thread count), so
// serial == any worker count == any steal schedule, bit for bit.
// Steal COUNTS and per-item stolen flags are execution records —
// deterministic only in forced cases (packFirstWorker with one worker
// steals nothing) — and are excluded from decision comparisons.
//
// ## Budget policy
//
// Large-order items (order >= largeOrderFloor) get singleton shards and a
// kernel-thread budget (gemm fans out inside the analysis); small items
// are grouped smallShardSize to a shard with budget 1 (gemm runs inline,
// keeping the kernel pool free for the large shards and the batch slots
// busy). This matches where the time goes: an order-300 analysis is
// gemm-bound, an order-40 analysis is overhead-bound.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace shhpass::api {

/// Tuning knobs for the batch shard scheduler.
struct SchedulerOptions {
  /// Worker threads for the batch crew; 0 = hardware concurrency. The
  /// analyzer clamps this to the batch size.
  std::size_t workers = 0;
  /// Small items per shard (grouping amortizes per-item scheduling).
  std::size_t smallShardSize = 4;
  /// Items with order >= this get a singleton shard and kernel threads.
  std::size_t largeOrderFloor = 192;
  /// Kernel-thread budget granted to large shards; 0 = whatever width
  /// setGemmThreads / SHHPASS_GEMM_THREADS configured (no extra cap).
  std::size_t gemmBudget = 0;
  /// Test hook: enqueue every shard on worker 0 so workers 1..W-1 must
  /// steal everything (forced steal-heavy skew for the determinism
  /// tests). Default round-robin spreads shards across workers.
  bool packFirstWorker = false;
};

/// Scheduling record threaded into AnalysisReport::scheduler. Split into
/// deterministic PLAN fields (pure function of orders + options) and
/// execution RECORDS (timing/steal dependent). None of it participates
/// in AnalysisReport::decisionEquals — like StageTrace::seconds it
/// describes how the work ran, never what was decided.
struct SchedulerReport {
  // -- plan fields (deterministic) --
  bool scheduled = false;       ///< Item ran under the shard scheduler.
  std::size_t shard = 0;        ///< Shard index of this item in the plan.
  std::size_t shardItems = 0;   ///< Items in that shard.
  bool large = false;           ///< Singleton large-order shard.
  std::size_t gemmThreadsGranted = 1;  ///< Kernel budget while running.
  std::size_t batchShards = 0;  ///< Total shards in the plan.
  std::size_t batchWorkers = 0;  ///< Crew size the batch ran with.
  // -- execution records (nondeterministic; excluded from decisions) --
  bool stolen = false;          ///< Shard ran on a non-home worker.
  std::size_t batchSteals = 0;  ///< Total steals across the batch.
  // -- level-1 stage-graph record (execution; set when the per-analysis
  // -- stage graph ran, see AnalyzerOptions::stageGraph) --
  bool stageGraph = false;
  std::size_t stageGraphExecuted = 0;
  std::size_t stageGraphSkipped = 0;
  double stageGraphCriticalPathSeconds = 0.0;
};

/// One unit of stealing: a run of item indices sharing a kernel budget.
struct Shard {
  std::vector<std::size_t> items;  ///< Item indices, ascending.
  bool large = false;
  /// Kernel-thread budget in force while the shard runs (1 = gemm
  /// inline; 0 = no cap, configured width applies).
  std::size_t gemmBudget = 1;
};

/// Deterministic shard plan over `orders` (orders[i] = state count of
/// item i): large items become singleton shards with a kernel budget;
/// small items group into budget-1 shards of smallShardSize, in index
/// order. Pure function of (orders, options) — never of worker count.
std::vector<Shard> planShards(const std::vector<std::size_t>& orders,
                              const SchedulerOptions& options);

/// Execute every shard of `plan` on `workers` threads with work
/// stealing. `body(item, shardIndex, stolen)` is invoked for every item,
/// shard by shard, with the shard's gemmBudget installed as the calling
/// thread's linalg::GemmThreadBudgetScope; `stolen` is true when the
/// shard ran on a worker other than its home worker. Items of one shard
/// run consecutively on one thread in ascending order; distinct shards
/// run concurrently. `body` may write only to item-indexed slots it owns
/// (that is what makes output ordering steal-independent).
///
/// `packFirstWorker` homes every shard on worker 0 (see
/// SchedulerOptions::packFirstWorker); the default homes shards
/// round-robin in plan order.
///
/// Exceptions: `body` should be exception-free (the analyzer's is, by
/// the Status contract). If it does throw, the first error (in worker
/// scan order) is rethrown after every worker joined; remaining shards
/// still run. Returns the total number of steals.
std::size_t runSharded(
    const std::vector<Shard>& plan, std::size_t workers,
    const std::function<void(std::size_t item, std::size_t shardIndex,
                             bool stolen)>& body,
    bool packFirstWorker = false);

}  // namespace shhpass::api
