#include "api/status.hpp"

#include <stdexcept>

#include "linalg/schur_multishift.hpp"

namespace shhpass::api {

const char* errorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::Ok: return "OK";
    case ErrorCode::NotSquare: return "NOT_SQUARE";
    case ErrorCode::SingularPencil: return "SINGULAR_PENCIL";
    case ErrorCode::UnstableFiniteModes: return "UNSTABLE_FINITE_MODES";
    case ErrorCode::ResidualImpulses: return "RESIDUAL_IMPULSES";
    case ErrorCode::HigherOrderImpulse: return "HIGHER_ORDER_IMPULSE";
    case ErrorCode::M1NotPsd: return "M1_NOT_PSD";
    case ErrorCode::LosslessAxisModes: return "LOSSLESS_AXIS_MODES";
    case ErrorCode::ProperPartNotPr: return "PROPER_PART_NOT_PR";
    case ErrorCode::InvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::NumericalFailure: return "NUMERICAL_FAILURE";
    case ErrorCode::SchurNoConvergence: return "SCHUR_NO_CONVERGENCE";
    case ErrorCode::NetlistParseError: return "NETLIST_PARSE_ERROR";
    case ErrorCode::Internal: return "INTERNAL";
  }
  return "UNKNOWN";
}

const char* warningName(Warning w) {
  switch (w) {
    case Warning::ReorderSwapRejected: return "REORDER_SWAP_REJECTED";
  }
  return "UNKNOWN";
}

bool isVerdictCode(ErrorCode code) {
  switch (code) {
    case ErrorCode::NotSquare:
    case ErrorCode::SingularPencil:
    case ErrorCode::UnstableFiniteModes:
    case ErrorCode::ResidualImpulses:
    case ErrorCode::HigherOrderImpulse:
    case ErrorCode::M1NotPsd:
    case ErrorCode::LosslessAxisModes:
    case ErrorCode::ProperPartNotPr:
      return true;
    default:
      return false;
  }
}

ErrorCode errorCodeFromFailureStage(core::FailureStage stage) {
  switch (stage) {
    case core::FailureStage::None: return ErrorCode::Ok;
    case core::FailureStage::NotSquare: return ErrorCode::NotSquare;
    case core::FailureStage::SingularPencil: return ErrorCode::SingularPencil;
    case core::FailureStage::UnstableFiniteModes:
      return ErrorCode::UnstableFiniteModes;
    case core::FailureStage::ResidualImpulses:
      return ErrorCode::ResidualImpulses;
    case core::FailureStage::HigherOrderImpulse:
      return ErrorCode::HigherOrderImpulse;
    case core::FailureStage::M1NotPsd: return ErrorCode::M1NotPsd;
    case core::FailureStage::LosslessAxisModes:
      return ErrorCode::LosslessAxisModes;
    case core::FailureStage::ProperPartNotPr:
      return ErrorCode::ProperPartNotPr;
  }
  return ErrorCode::Internal;
}

std::optional<core::FailureStage> failureStageFromErrorCode(ErrorCode code) {
  switch (code) {
    case ErrorCode::Ok: return core::FailureStage::None;
    case ErrorCode::NotSquare: return core::FailureStage::NotSquare;
    case ErrorCode::SingularPencil: return core::FailureStage::SingularPencil;
    case ErrorCode::UnstableFiniteModes:
      return core::FailureStage::UnstableFiniteModes;
    case ErrorCode::ResidualImpulses:
      return core::FailureStage::ResidualImpulses;
    case ErrorCode::HigherOrderImpulse:
      return core::FailureStage::HigherOrderImpulse;
    case ErrorCode::M1NotPsd: return core::FailureStage::M1NotPsd;
    case ErrorCode::LosslessAxisModes:
      return core::FailureStage::LosslessAxisModes;
    case ErrorCode::ProperPartNotPr:
      return core::FailureStage::ProperPartNotPr;
    default:
      return std::nullopt;
  }
}

std::string Status::toString() const {
  if (ok()) return "OK";
  std::string s = errorCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

// This function is the ONE sanctioned exception-handling site in
// src/api: everything else is Status/Result based, and `throw` anywhere
// else in src/api fails the no-throw-in-api rule of
// tools/lint_invariants.py (status.cpp is the rule's only exemption).
Status statusFromCurrentException() {
  try {
    throw;
  } catch (const std::invalid_argument& e) {
    return Status::error(ErrorCode::InvalidArgument, e.what());
  } catch (const linalg::SchurConvergenceError& e) {
    // More-derived first: the typed eigensolver failure would otherwise
    // be swallowed by the generic runtime_error -> NUMERICAL_FAILURE map.
    return Status::error(ErrorCode::SchurNoConvergence, e.what());
  } catch (const std::runtime_error& e) {
    return Status::error(ErrorCode::NumericalFailure, e.what());
  } catch (const std::exception& e) {
    return Status::error(ErrorCode::Internal, e.what());
  } catch (...) {
    return Status::error(ErrorCode::Internal, "unknown exception");
  }
}

}  // namespace shhpass::api
