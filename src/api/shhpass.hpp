// shhpass.hpp — the single public entry point of the library.
//
//   #include "api/shhpass.hpp"
//
//   shhpass::api::PassivityAnalyzer analyzer;
//   auto result = analyzer.analyze(system);
//   if (result.ok()) std::puts(result->toJson().c_str());
//
// Pulls in the engine facade (PassivityAnalyzer, AnalysisRequest/-Report,
// runBatch), the Status/Result error model, the stage-pipeline engine, and
// the modelling front ends (descriptor systems, netlists, MNA stamping,
// circuit generators) needed to build analysis inputs.
//
// The per-module free functions underneath (core::testPassivityShh and the
// stage helpers) remain available for advanced use but are deprecated as
// entry points; new code should go through this header.
#pragma once

// Engine facade and error model.
#include "api/analyzer.hpp"
#include "api/ingest.hpp"
#include "api/json.hpp"
#include "api/pipeline.hpp"
#include "api/status.hpp"

// Observability surface (span tracing, metrics registry, memory
// accounting — enabled per analyzer via AnalyzerOptions::telemetry or
// process-wide via SHHPASS_TRACE / SHHPASS_METRICS).
#include "obs/memory.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

// Modelling front ends.
#include "circuits/generators.hpp"
#include "circuits/mna.hpp"
#include "circuits/netlist.hpp"
#include "circuits/spice_parser.hpp"
#include "circuits/sweep.hpp"
#include "ds/descriptor.hpp"
#include "ds/impulse_tests.hpp"

// Legacy single-call test (deprecated shim over the pipeline engine).
#include "core/passivity_test.hpp"
