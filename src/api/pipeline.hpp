// Stage-pipeline engine for the Fig.-1 passivity test. Each box of the
// paper's flowchart is a Stage object with a uniform
//     run(PipelineState&) -> Status
// interface; the Pipeline runs them in order with per-stage wall-clock
// timing and an optional diagnostic observer (this subsumes the per-stage
// instrumentation the ablation bench used to hand-roll).
//
// Status semantics inside the pipeline:
//   * ok            -> continue to the next stage;
//   * verdict code  -> the Fig.-1 flow reached a NOT-PASSIVE exit: the run
//                      stops, the analysis itself SUCCEEDED;
//   * error code    -> the analysis failed (bad input / numerical
//                      breakdown); the run stops and the error propagates.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/status.hpp"
#include "core/impulse_deflation.hpp"
#include "core/nondynamic.hpp"
#include "core/passivity_test.hpp"
#include "ds/balance.hpp"
#include "shh/shh_pencil.hpp"

namespace shhpass::api {

/// Mutable state threaded through the stages: the input system, the
/// intermediate realizations, and the accumulated legacy-compatible
/// diagnostics (core::PassivityResult) from which reports are built.
struct PipelineState {
  const ds::DescriptorSystem* input = nullptr;  ///< Borrowed; must outlive.
  core::PassivityOptions options;

  ds::BalancedSystem balanced;                ///< Set by Prerequisites.
  shh::ShhRealization phi;                    ///< Set by BuildPhi.
  core::ImpulseDeflationResult deflation;     ///< Set by ImpulseDeflation.
  core::NondynamicRemovalResult nondynamic;   ///< Set by NondynamicRemoval.

  /// Verdict + diagnostics, identical in content to the legacy
  /// testPassivityShh result (the deprecated shim returns exactly this).
  core::PassivityResult result;
};

/// One box of the Fig.-1 flowchart.
class Stage {
 public:
  virtual ~Stage() = default;
  virtual const char* name() const = 0;
  virtual Status run(PipelineState& state) = 0;
};

/// Per-stage execution record: what ran, how long, and with what outcome.
struct StageTrace {
  std::string name;
  Status status;
  double seconds = 0.0;
};

/// An ordered sequence of stages with timing and diagnostic hooks.
class Pipeline {
 public:
  using Observer = std::function<void(const StageTrace&)>;

  Pipeline() = default;
  Pipeline(Pipeline&&) = default;
  Pipeline& operator=(Pipeline&&) = default;

  /// The seven-stage Fig.-1 pipeline of the paper: prerequisites, Phi
  /// build, impulse deflation, nondynamic removal, M1 extraction/PSD
  /// check, proper-part extraction, positive-realness test.
  static Pipeline standard();

  Pipeline& addStage(std::unique_ptr<Stage> stage);
  const std::vector<std::unique_ptr<Stage>>& stages() const {
    return stages_;
  }

  /// Run the stages on `state`. Exceptions escaping a stage are translated
  /// to operational-error Statuses (no exceptions cross this boundary).
  /// Each completed stage is appended to `traces` (if non-null) and handed
  /// to `observer` (if set).
  ///
  /// Observer threading contract: the observer is invoked synchronously on
  /// the thread calling run(), once per completed stage, never after run()
  /// returns. The analyzer snapshots its installed observer under a mutex
  /// before each analysis (see PassivityAnalyzer::setStageObserver), so
  /// swapping observers concurrently with a running analysis is safe; a
  /// callable shared across concurrent analyses must itself be
  /// thread-safe, because two run() calls may invoke it concurrently.
  /// Returns:
  ///   * ok       — all stages passed; state.result.passive == true;
  ///   * verdict  — a stage declared non-passivity; state.result.failure
  ///                names the stage;
  ///   * error    — the analysis failed; state.result is meaningless.
  Status run(PipelineState& state, std::vector<StageTrace>* traces = nullptr,
             const Observer& observer = nullptr) const;

 private:
  std::vector<std::unique_ptr<Stage>> stages_;
};

/// The shared immutable instance of Pipeline::standard() used by both the
/// analyzer facade and the deprecated core::testPassivityShh shim (one
/// construction site, so the two entry points cannot diverge).
const Pipeline& standardPipeline();

}  // namespace shhpass::api
