// Stage-pipeline engine for the Fig.-1 passivity test. Each box of the
// paper's flowchart is a Stage object with a uniform
//     run(PipelineState&) -> Status
// interface; the Pipeline runs them in order with per-stage wall-clock
// timing and an optional diagnostic observer (this subsumes the per-stage
// instrumentation the ablation bench used to hand-roll).
//
// Status semantics inside the pipeline:
//   * ok            -> continue to the next stage;
//   * verdict code  -> the Fig.-1 flow reached a NOT-PASSIVE exit: the run
//                      stops, the analysis itself SUCCEEDED;
//   * error code    -> the analysis failed (bad input / numerical
//                      breakdown); the run stops and the error propagates.
//
// ## Two execution modes (level-1 scheduling)
//
// run() executes the stages strictly in order on the calling thread — the
// sequential oracle. runGraph() executes the same stages as a dependency-
// ordered task DAG on a ThreadPool (api/thread_pool.hpp TaskGraph):
// stages whose declared dependencies are satisfied run concurrently
// (nondynamic-removal overlaps m1-extraction, m1-extraction overlaps
// proper-part — the independent branches of Fig. 1).
//
// Determinism is preserved by a run/commit split: Stage::run computes
// into PRIVATE PipelineState slots only (never the shared
// state.result), and Stage::commit merges those slots into state.result.
// runGraph applies commits in CANONICAL stage order with a cutoff at the
// first non-ok stage, so the assembled traces, diagnostics, and verdict
// are bit-identical to run() — speculative work past the sequential
// stopping point is computed and discarded, never observed. The only
// fields that may differ between the two modes are wall-clock timings
// (StageTrace::seconds), which decisionEquals already excludes.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/status.hpp"
#include "core/impulse_deflation.hpp"
#include "core/markov.hpp"
#include "core/nondynamic.hpp"
#include "core/passivity_test.hpp"
#include "core/proper_part.hpp"
#include "ds/balance.hpp"
#include "shh/shh_pencil.hpp"

namespace shhpass::api {

class ThreadPool;

/// Mutable state threaded through the stages: the input system, the
/// intermediate realizations, and the accumulated legacy-compatible
/// diagnostics (core::PassivityResult) from which reports are built.
///
/// Slot ownership contract (what makes runGraph race-free): every slot
/// below `result` is written by exactly ONE stage's run() and read only
/// by stages that declare that stage as a dependency; `result` itself is
/// written only by Stage::commit calls, which the runners invoke on one
/// thread in canonical order.
struct PipelineState {
  const ds::DescriptorSystem* input = nullptr;  ///< Borrowed; must outlive.
  core::PassivityOptions options;

  ds::BalancedSystem balanced;                ///< Set by Prerequisites.
  shh::ShhRealization phi;                    ///< Set by BuildPhi.
  core::ImpulseDeflationResult deflation;     ///< Set by ImpulseDeflation.
  core::NondynamicRemovalResult nondynamic;   ///< Set by NondynamicRemoval.

  // Private output slots of the m1-extraction stage (committed into
  // `result` by its commit()).
  core::M1Extraction m1;              ///< Set by M1Extraction.
  linalg::Matrix m1Scaled;            ///< M1 with frequency scaling undone.
  linalg::RankReport m1Rank;          ///< Rank decisions of this stage only.
  linalg::StaircaseReport m1Staircase;  ///< Staircase health, this stage.

  /// Private output slot of the proper-part stage; pr-test reads it (its
  /// declared dependency), commit() copies it into result.properPart.
  core::ProperPartResult properPart;

  /// Intra-stage overlap pool, set by runGraph when the pool has >= 2
  /// workers (a stage that submits a subtask and blocks needs a second
  /// worker to make progress). Null in sequential run(): stages fall back
  /// to their inline paths. Stages may borrow it for internal
  /// fork/join work (proper-part overlaps the Ebar SVD certificate with
  /// the Hamiltonian decoupling); at most one stage of the graph ever
  /// blocks on a subtask, so the pool cannot deadlock.
  ThreadPool* stagePool = nullptr;

  /// Verdict + diagnostics, identical in content to the legacy
  /// testPassivityShh result (the deprecated shim returns exactly this).
  core::PassivityResult result;
};

/// One box of the Fig.-1 flowchart, split into a compute half and a
/// commit half so runGraph can execute runs concurrently:
///   * run()    — reads its dependencies' slots, writes ONLY its own
///                private PipelineState slots; must not touch
///                state.result (thread-safety invariant of runGraph);
///   * commit() — merges the private slots into state.result; invoked by
///                the runners on one thread, in canonical stage order,
///                for every stage whose run() returned (ok or verdict)
///                without throwing, up to and including the first non-ok
///                stage.
class Stage {
 public:
  virtual ~Stage() = default;
  virtual const char* name() const = 0;
  virtual Status run(PipelineState& state) = 0;
  virtual void commit(PipelineState& state) { (void)state; }
};

/// Per-stage execution record: what ran, how long, and with what outcome.
struct StageTrace {
  std::string name;
  Status status;
  double seconds = 0.0;
  /// Peak live tracked bytes while the stage ran (obs/memory.hpp); 0
  /// unless the memory accountant is enabled. Execution record only —
  /// never part of decisionEquals.
  std::size_t peakBytes = 0;
  /// True for a speculative runGraph stage that executed past the
  /// canonical cutoff and was never committed. Discarded traces are
  /// appended AFTER the canonical (sequential-identical) trace list, in
  /// stage-index order; excluded from decisionEquals and from observer
  /// notifications.
  bool discarded = false;
};

/// Execution record of one runGraph call (level-1 diagnostics threaded
/// into AnalysisReport::scheduler). Everything here is an execution
/// record, not a decision: executed/skipped counts can exceed the
/// sequential stage count's view (speculative stages), and the critical
/// path is wall-clock. None of it participates in decisionEquals.
struct StageGraphReport {
  bool used = false;                 ///< runGraph ran (vs sequential run).
  std::size_t executedStages = 0;    ///< Nodes whose callable ran.
  std::size_t skippedStages = 0;     ///< Nodes skipped by a failed dep.
  double criticalPathSeconds = 0.0;  ///< Longest dependency chain.
};

/// An ordered sequence of stages with timing and diagnostic hooks.
class Pipeline {
 public:
  using Observer = std::function<void(const StageTrace&)>;

  Pipeline() = default;
  Pipeline(Pipeline&&) = default;
  Pipeline& operator=(Pipeline&&) = default;

  /// The seven-stage Fig.-1 pipeline of the paper: prerequisites, Phi
  /// build, impulse deflation, nondynamic removal, M1 extraction/PSD
  /// check, proper-part extraction, positive-realness test — with the
  /// paper's data-dependency edges declared (nondynamic-removal and
  /// m1-extraction are independent branches after impulse deflation).
  static Pipeline standard();

  /// Append a stage. `deps` lists indices of already-added stages whose
  /// run() outputs this stage reads; runGraph orders execution by these
  /// edges (run() ignores them — sequential order satisfies any valid
  /// edge set by construction). An empty list keeps the historical
  /// chain semantics for runGraph too: the stage then depends on its
  /// predecessor (index size()-1) unless it is the first stage.
  Pipeline& addStage(std::unique_ptr<Stage> stage,
                     std::vector<std::size_t> deps = {});
  const std::vector<std::unique_ptr<Stage>>& stages() const {
    return stages_;
  }
  /// Dependency edges per stage (same indexing as stages()).
  const std::vector<std::vector<std::size_t>>& dependencies() const {
    return deps_;
  }

  /// Run the stages on `state`. Exceptions escaping a stage are translated
  /// to operational-error Statuses (no exceptions cross this boundary).
  /// Each completed stage is appended to `traces` (if non-null) and handed
  /// to `observer` (if set).
  ///
  /// Observer threading contract: the observer is invoked synchronously on
  /// the thread calling run(), once per completed stage, never after run()
  /// returns. The analyzer snapshots its installed observer under a mutex
  /// before each analysis (see PassivityAnalyzer::setStageObserver), so
  /// swapping observers concurrently with a running analysis is safe; a
  /// callable shared across concurrent analyses must itself be
  /// thread-safe, because two run() calls may invoke it concurrently.
  /// Returns:
  ///   * ok       — all stages passed; state.result.passive == true;
  ///   * verdict  — a stage declared non-passivity; state.result.failure
  ///                names the stage;
  ///   * error    — the analysis failed; state.result is meaningless.
  Status run(PipelineState& state, std::vector<StageTrace>* traces = nullptr,
             const Observer& observer = nullptr) const;

  /// Dependency-ordered execution of the same stages on `pool` (level-1
  /// scheduling). Contract: decisions, diagnostics, traces (names and
  /// statuses), observer notification order, and the returned Status are
  /// bit-identical to run() for every pool size — only StageTrace::seconds
  /// and `graph` (if non-null) reflect the concurrent execution. The one
  /// deliberate trace addition: speculative stages that executed past the
  /// canonical cutoff are appended to `traces` with discarded == true (in
  /// stage-index order, after the canonical list) so telemetry accounts
  /// for every node the graph actually ran; decisionEquals ignores them. The
  /// observer is still invoked on the calling thread, in canonical stage
  /// order, before runGraph returns. `gemmBudget` (0 = none) is
  /// re-established as the per-thread kernel budget inside every stage
  /// task (linalg::GemmThreadBudgetScope is thread-local and would not
  /// otherwise propagate onto pool workers). Must not be called from a
  /// worker of `pool`.
  Status runGraph(PipelineState& state, std::vector<StageTrace>* traces,
                  ThreadPool& pool, StageGraphReport* graph = nullptr,
                  const Observer& observer = nullptr,
                  std::size_t gemmBudget = 0) const;

 private:
  std::vector<std::unique_ptr<Stage>> stages_;
  std::vector<std::vector<std::size_t>> deps_;
};

/// The shared immutable instance of Pipeline::standard() used by both the
/// analyzer facade and the deprecated core::testPassivityShh shim (one
/// construction site, so the two entry points cannot diverge).
const Pipeline& standardPipeline();

}  // namespace shhpass::api
