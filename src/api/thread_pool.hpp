// Fixed-size worker pool for batched analysis and the threaded gemm
// kernel. Deliberately small: a mutex-guarded FIFO of std::function jobs,
// workers joined on destruction, and a wait() barrier that lets a caller
// collect results while keeping the pool alive (runBatch sizes a fresh
// pool to each batch and tears it down afterwards; the create/join cost is
// noise next to one analysis).
//
// ## Threading contract (machine-checked by the `tsan` CI job and
// ## tests/test_thread_pool_stress.cpp)
//
//   * submit() and wait() may be called concurrently from any number of
//     threads; every shared field (queue_, inFlight_, stopping_,
//     firstError_) is guarded by mu_. The executed-jobs counter is a
//     relaxed atomic: it is a monotonic statistic, never a
//     synchronization point.
//   * A job MAY throw. The pool is never poisoned by a throwing job: the
//     worker catches the exception, records the FIRST one, and keeps
//     serving the queue. The recorded exception is rethrown by the next
//     wait() call (then cleared); exceptions still pending at destruction
//     are dropped (a destructor cannot throw). Regression history: the
//     pre-PR-6 pool let the exception escape workerLoop, which terminated
//     the whole process via std::terminate and left TSan/ASan unable to
//     report anything useful.
//   * Destruction DRAINS: jobs already queued at destruction time all run
//     before the workers join. This is deterministic — a caller that
//     submits N jobs and destroys the pool observes exactly N executions,
//     with no torn state (tests/test_thread_pool_stress.cpp pins it).
//   * A worker may submit() to its own pool (nested submission, used by
//     task-graph experiments); wait() accounts for jobs enqueued by other
//     jobs because the barrier predicate is queue-empty AND none in
//     flight. A worker must NOT call wait() on its own pool: its own job
//     counts as in flight, so the barrier could never open (deadlock by
//     construction, not a race).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace shhpass::api {

class ThreadPool {
 public:
  /// `threads == 0` means std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a job. Jobs may throw: a throwing job never poisons the
  /// pool; the first exception is rethrown from the next wait() (see the
  /// threading contract above).
  void submit(std::function<void()> job);

  /// Block until every submitted job (including jobs submitted by jobs)
  /// has finished. Rethrows the first exception any job threw since the
  /// last wait(); the pool itself stays fully usable afterwards. Must not
  /// be called from a worker of this pool.
  void wait();

  /// Total jobs that finished running (including ones that threw) over
  /// the pool's lifetime. Monotonic statistic; relaxed memory order.
  std::size_t jobsExecuted() const {
    return jobsExecuted_.load(std::memory_order_relaxed);
  }

 private:
  void workerLoop();

  std::mutex mu_;
  std::condition_variable jobReady_;
  std::condition_variable allDone_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t inFlight_ = 0;            // guarded by mu_
  bool stopping_ = false;               // guarded by mu_
  std::exception_ptr firstError_;       // guarded by mu_
  std::atomic<std::size_t> jobsExecuted_{0};
};

/// Dependency-ordered task DAG executed on a ThreadPool. This is the
/// level-1 scheduling primitive: the analyzer's Fig.-1 stage graph and the
/// batch scheduler's intra-analysis overlaps both run on it.
///
/// ## Contract (machine-checked by tests/test_thread_pool_stress.cpp and
/// ## the `tsan` CI job)
///
///   * Acyclic by construction: add() only accepts dependencies on nodes
///     that already exist (dep id < new id), so a cycle cannot be
///     expressed. Node ids are dense and ordered by insertion; that
///     insertion order is the graph's CANONICAL order, and every
///     deterministic guarantee below is stated against it.
///   * A node runs only after all its dependencies completed without
///     throwing. If any dependency failed (threw) or was itself skipped,
///     the node is SKIPPED — its callable is never invoked — and the skip
///     propagates to its dependents. Which nodes run vs skip is a pure
///     function of which nodes fail, never of thread timing.
///   * Errors: a node callable may throw. wait() rethrows the error of
///     the LOWEST-ID failed node (canonical, not temporal, order — two
///     racing failures always surface the same one) after every node has
///     reached a terminal state. The graph is single-shot: one run(),
///     one wait().
///   * run() with a null pool executes every node inline on the calling
///     thread in canonical order (the serial oracle the determinism tests
///     compare against); with a pool it submits ready nodes and returns
///     immediately. run() must not be called from a worker of the same
///     pool (its wait() would then deadlock by the ThreadPool contract).
///   * Destruction with an unfinished graph blocks until every node is
///     terminal (running nodes finish, skip cascades resolve); errors
///     never observed via wait() are dropped, mirroring ThreadPool.
class TaskGraph {
 public:
  using NodeId = std::size_t;

  /// `pool == nullptr` selects the inline serial mode (see contract).
  /// The pool is borrowed and must outlive the graph.
  explicit TaskGraph(ThreadPool* pool) : pool_(pool) {}
  ~TaskGraph();

  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Add a node. Every id in `deps` must name an existing node; the node
  /// runs only after all of them completed successfully.
  NodeId add(std::string name, std::function<void()> fn,
             const std::vector<NodeId>& deps = {});

  /// Launch the graph (see contract for pool vs inline semantics).
  void run();

  /// Block until every node is terminal; rethrow the lowest-id error.
  void wait();

  std::size_t size() const { return nodes_.size(); }
  /// Node ran to completion without throwing. Valid after wait().
  bool completed(NodeId id) const;
  /// Node was skipped because a dependency failed or was skipped.
  bool skipped(NodeId id) const;
  /// Wall-clock seconds of one node's callable (0 if skipped/failed
  /// before timing started). Valid after wait().
  double nodeSeconds(NodeId id) const;
  /// Longest dependency-chain wall-clock over the executed nodes: the
  /// lower bound on graph makespan with unlimited workers. Skipped nodes
  /// contribute zero but pass their predecessors' path through.
  double criticalPathSeconds() const;
  std::size_t executedCount() const;
  std::size_t skippedCount() const;

 private:
  enum class NodeState { Pending, Running, Done, Failed, Skipped };

  struct Node {
    std::string name;
    std::function<void()> fn;
    std::vector<NodeId> deps;
    std::vector<NodeId> dependents;
    std::size_t remainingDeps = 0;  // guarded by mu_
    NodeState state = NodeState::Pending;
    std::exception_ptr error;
    double seconds = 0.0;
  };

  void execute(NodeId id);                 // pool job body
  void finish(NodeId id, NodeState terminal, std::exception_ptr err,
              double seconds);             // transitions + cascade
  void skipDependentsLocked(NodeId id, std::vector<NodeId>* newlyReady);

  ThreadPool* pool_;
  mutable std::mutex mu_;
  std::condition_variable allTerminal_;
  std::vector<Node> nodes_;
  std::size_t terminal_ = 0;  // guarded by mu_
  bool launched_ = false;
};

}  // namespace shhpass::api
