// Fixed-size worker pool for batched analysis. Deliberately small: a
// mutex-guarded FIFO of std::function jobs, workers joined on destruction,
// and a wait() barrier that lets a caller collect results while keeping
// the pool alive (runBatch sizes a fresh pool to each batch and tears it
// down afterwards; the create/join cost is noise next to one analysis).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace shhpass::api {

class ThreadPool {
 public:
  /// `threads == 0` means std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a job. Jobs must not throw (wrap work in a Status-returning
  /// shell before submitting).
  void submit(std::function<void()> job);

  /// Block until every submitted job has finished.
  void wait();

 private:
  void workerLoop();

  std::mutex mu_;
  std::condition_variable jobReady_;
  std::condition_variable allDone_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t inFlight_ = 0;
  bool stopping_ = false;
};

}  // namespace shhpass::api
