// Fixed-size worker pool for batched analysis and the threaded gemm
// kernel. Deliberately small: a mutex-guarded FIFO of std::function jobs,
// workers joined on destruction, and a wait() barrier that lets a caller
// collect results while keeping the pool alive (runBatch sizes a fresh
// pool to each batch and tears it down afterwards; the create/join cost is
// noise next to one analysis).
//
// ## Threading contract (machine-checked by the `tsan` CI job and
// ## tests/test_thread_pool_stress.cpp)
//
//   * submit() and wait() may be called concurrently from any number of
//     threads; every shared field (queue_, inFlight_, stopping_,
//     firstError_) is guarded by mu_. The executed-jobs counter is a
//     relaxed atomic: it is a monotonic statistic, never a
//     synchronization point.
//   * A job MAY throw. The pool is never poisoned by a throwing job: the
//     worker catches the exception, records the FIRST one, and keeps
//     serving the queue. The recorded exception is rethrown by the next
//     wait() call (then cleared); exceptions still pending at destruction
//     are dropped (a destructor cannot throw). Regression history: the
//     pre-PR-6 pool let the exception escape workerLoop, which terminated
//     the whole process via std::terminate and left TSan/ASan unable to
//     report anything useful.
//   * Destruction DRAINS: jobs already queued at destruction time all run
//     before the workers join. This is deterministic — a caller that
//     submits N jobs and destroys the pool observes exactly N executions,
//     with no torn state (tests/test_thread_pool_stress.cpp pins it).
//   * A worker may submit() to its own pool (nested submission, used by
//     task-graph experiments); wait() accounts for jobs enqueued by other
//     jobs because the barrier predicate is queue-empty AND none in
//     flight. A worker must NOT call wait() on its own pool: its own job
//     counts as in flight, so the barrier could never open (deadlock by
//     construction, not a race).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace shhpass::api {

class ThreadPool {
 public:
  /// `threads == 0` means std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a job. Jobs may throw: a throwing job never poisons the
  /// pool; the first exception is rethrown from the next wait() (see the
  /// threading contract above).
  void submit(std::function<void()> job);

  /// Block until every submitted job (including jobs submitted by jobs)
  /// has finished. Rethrows the first exception any job threw since the
  /// last wait(); the pool itself stays fully usable afterwards. Must not
  /// be called from a worker of this pool.
  void wait();

  /// Total jobs that finished running (including ones that threw) over
  /// the pool's lifetime. Monotonic statistic; relaxed memory order.
  std::size_t jobsExecuted() const {
    return jobsExecuted_.load(std::memory_order_relaxed);
  }

 private:
  void workerLoop();

  std::mutex mu_;
  std::condition_variable jobReady_;
  std::condition_variable allDone_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t inFlight_ = 0;            // guarded by mu_
  bool stopping_ = false;               // guarded by mu_
  std::exception_ptr firstError_;       // guarded by mu_
  std::atomic<std::size_t> jobsExecuted_{0};
};

}  // namespace shhpass::api
