// Status-based error model for the public shhpass API. No exceptions cross
// the API boundary: the legacy std::invalid_argument / std::runtime_error
// throws of the inner layers and the Fig.-1 FailureStage verdicts both map
// onto one typed ErrorCode space with human-readable messages.
//
// Two families of codes share the space:
//   * verdict codes — the Fig.-1 stage that declared the system
//     non-passive. The analysis itself SUCCEEDED; the report carries the
//     verdict. `isVerdictCode` distinguishes them.
//   * operational errors — malformed input (InvalidArgument), numerical
//     breakdown inside a kernel (NumericalFailure), or anything unexpected
//     (Internal). These make the whole analysis fail.
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "core/passivity_test.hpp"

namespace shhpass::api {

/// Typed error codes of the public API.
enum class ErrorCode {
  Ok = 0,

  // Verdict codes: one per core::FailureStage (except None == Ok).
  NotSquare,            ///< FailureStage::NotSquare
  SingularPencil,       ///< FailureStage::SingularPencil
  UnstableFiniteModes,  ///< FailureStage::UnstableFiniteModes
  ResidualImpulses,     ///< FailureStage::ResidualImpulses
  HigherOrderImpulse,   ///< FailureStage::HigherOrderImpulse
  M1NotPsd,             ///< FailureStage::M1NotPsd
  LosslessAxisModes,    ///< FailureStage::LosslessAxisModes
  ProperPartNotPr,      ///< FailureStage::ProperPartNotPr

  // Operational errors.
  InvalidArgument,     ///< Malformed request (was std::invalid_argument).
  NumericalFailure,    ///< Kernel breakdown (was std::runtime_error).
  SchurNoConvergence,  ///< The real Schur QR iteration exhausted its
                       ///< iteration budget (linalg::SchurConvergenceError;
                       ///< historically an untyped std::runtime_error).
  NetlistParseError,   ///< A SPICE-subset netlist failed to parse; the
                       ///< message carries the line-numbered typed
                       ///< diagnostics (api/ingest.hpp).
  Internal,            ///< Unexpected failure (was any other exception).
};

/// Stable machine-readable name of a code (e.g. "M1_NOT_PSD").
const char* errorCodeName(ErrorCode code);

/// Non-fatal diagnostic conditions attached to an otherwise successful
/// analysis. Warnings never change the verdict; they flag reduced
/// confidence and are serialized into the AnalysisReport JSON.
enum class Warning {
  /// The Schur reordering behind the Eq.-(22) stable/antistable split
  /// rejected at least one numerically ill-posed adjacent-block exchange
  /// (nearly shared eigenvalues across the swap). The spectrum itself was
  /// left intact, but the requested ordering is incomplete, so a
  /// LOSSLESS_AXIS_MODES verdict reached this way is conservative rather
  /// than certain. See AnalysisReport::reorder for the counts.
  ReorderSwapRejected = 0,
};

/// Stable machine-readable name of a warning ("REORDER_SWAP_REJECTED").
const char* warningName(Warning w);

/// True for the Fig.-1 verdict codes (analysis succeeded, system is not
/// passive); false for Ok and the operational errors.
bool isVerdictCode(ErrorCode code);

/// FailureStage -> ErrorCode (None maps to Ok).
ErrorCode errorCodeFromFailureStage(core::FailureStage stage);

/// ErrorCode -> FailureStage for verdict codes and Ok; operational errors
/// have no stage and return std::nullopt.
std::optional<core::FailureStage> failureStageFromErrorCode(ErrorCode code);

/// An error code plus a human-readable message. Default-constructed and
/// `Status::ok()` both mean success.
class Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status okStatus() { return Status(); }
  static Status error(ErrorCode code, std::string message) {
    return Status(code, std::move(message));
  }

  bool ok() const { return code_ == ErrorCode::Ok; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK", or the code name followed by ": " and the message.
  std::string toString() const;

 private:
  ErrorCode code_ = ErrorCode::Ok;
  std::string message_;
};

/// Status produced by translating the exception currently in flight.
/// Call only from inside a catch block.
Status statusFromCurrentException();

/// A Status or a value of type T. `ok()` guarantees `value()` is present.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}       // NOLINT(implicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT(implicit)

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const { return *value_; }
  T& value() { return *value_; }
  const T& operator*() const { return *value_; }
  const T* operator->() const { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace shhpass::api
