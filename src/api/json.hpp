// Minimal dependency-free JSON writer for the service-facing report
// serialization. Emits compact (no-whitespace) RFC 8259 JSON; the writer
// tracks nesting so callers never manage commas by hand.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "linalg/matrix.hpp"

namespace shhpass::api::json {

/// Escape a string for embedding in a JSON document (no surrounding quotes).
std::string escape(std::string_view s);

/// Streaming JSON writer. Usage:
///   Writer w;
///   w.beginObject().key("passive").value(true).endObject();
///   std::string doc = w.str();
class Writer {
 public:
  Writer& beginObject();
  Writer& endObject();
  Writer& beginArray();
  Writer& endArray();

  /// Key of the next member (only inside an object).
  Writer& key(std::string_view k);

  Writer& value(std::string_view v);
  Writer& value(const char* v) { return value(std::string_view(v)); }
  Writer& value(bool v);
  Writer& value(double v);
  Writer& value(std::size_t v);
  Writer& value(int v) { return value(static_cast<double>(v)); }
  /// Matrix as a row-major array of arrays.
  Writer& value(const linalg::Matrix& m);

  const std::string& str() const { return out_; }

 private:
  void beforeValue();
  std::string out_;
  std::vector<bool> needComma_;  // one flag per open scope
  bool pendingKey_ = false;
};

}  // namespace shhpass::api::json
