#include "api/ingest.hpp"

#include <utility>

#include "circuits/mna.hpp"

namespace shhpass::api {

namespace {

/// Join the typed diagnostics of a failed parse into one Status message.
Status parseFailure(const std::vector<circuits::SpiceError>& errors) {
  std::string message;
  for (const circuits::SpiceError& e : errors) {
    if (!message.empty()) message += "; ";
    message += e.toString();
  }
  return Status::error(ErrorCode::NetlistParseError, std::move(message));
}

Result<LoadedNetlist> fromParsed(circuits::ParsedNetlist parsed) {
  if (!parsed.ok()) return parseFailure(parsed.errors);
  LoadedNetlist loaded;
  loaded.netlist = std::move(parsed.netlist);
  loaded.nodeNames = std::move(parsed.nodeNames);
  return loaded;
}

}  // namespace

Result<LoadedNetlist> parseNetlist(std::string_view text,
                                   const circuits::SpiceParseOptions& options) {
  return fromParsed(circuits::parseSpice(text, options));
}

Result<LoadedNetlist> loadNetlist(const std::string& path,
                                  const circuits::SpiceParseOptions& options) {
  return fromParsed(circuits::parseSpiceFile(path, options));
}

Result<ds::DescriptorSystem> stampNetlist(const circuits::Netlist& net) {
  try {
    return circuits::stampMna(net);
  } catch (...) {
    return statusFromCurrentException();
  }
}

Result<ds::DescriptorSystem> loadSystem(
    const std::string& path, const circuits::SpiceParseOptions& options) {
  Result<LoadedNetlist> loaded = loadNetlist(path, options);
  if (!loaded.ok()) return loaded.status();
  return stampNetlist(loaded->netlist);
}

Result<circuits::Netlist> buildNetlist(
    int numNodes, const std::function<void(circuits::Netlist&)>& build) {
  try {
    circuits::Netlist net(numNodes);
    if (build) build(net);
    return net;
  } catch (...) {
    return statusFromCurrentException();
  }
}

}  // namespace shhpass::api
