#include "api/analyzer.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>

#include "api/json.hpp"
#include "api/thread_pool.hpp"
#include "linalg/blas.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace shhpass::api {
namespace {

/// Canonical (non-discarded) stage subsequence — the decision path.
/// Speculative runGraph stages appended as discarded are execution
/// records, not decisions, so decisionEquals compares through this view.
std::vector<const StageTrace*> canonicalStages(
    const std::vector<StageTrace>& stages) {
  std::vector<const StageTrace*> out;
  out.reserve(stages.size());
  for (const StageTrace& t : stages)
    if (!t.discarded) out.push_back(&t);
  return out;
}

}  // namespace

bool AnalysisReport::decisionEquals(const AnalysisReport& other) const {
  if (id != other.id || passive != other.passive ||
      verdict != other.verdict || verdictMessage != other.verdictMessage ||
      failure != other.failure || order != other.order ||
      ports != other.ports || removedImpulsive != other.removedImpulsive ||
      removedNondynamic != other.removedNondynamic ||
      impulsiveChains != other.impulsiveChains ||
      properOrder != other.properOrder)
    return false;
  if (m1.rows() != other.m1.rows() || m1.cols() != other.m1.cols())
    return false;
  for (std::size_t i = 0; i < m1.rows(); ++i)
    for (std::size_t j = 0; j < m1.cols(); ++j)
      if (m1(i, j) != other.m1(i, j)) return false;
  if (reorder.swaps != other.reorder.swaps ||
      reorder.rejectedSwaps != other.reorder.rejectedSwaps ||
      reorder.maxResidual != other.reorder.maxResidual ||
      reorder.eigenvalueDrift != other.reorder.eigenvalueDrift ||
      reorder.standardizations != other.reorder.standardizations)
    return false;
  if (rankPolicy.decisions != other.rankPolicy.decisions ||
      rankPolicy.minKeptMargin != other.rankPolicy.minKeptMargin ||
      rankPolicy.maxDroppedMargin != other.rankPolicy.maxDroppedMargin)
    return false;
  if (staircase.compressions != other.staircase.compressions ||
      staircase.svdFallbacks != other.staircase.svdFallbacks ||
      staircase.diagonalFastPaths != other.staircase.diagonalFastPaths ||
      staircase.qrCompressions != other.staircase.qrCompressions ||
      staircase.skewTridiagonalizations !=
          other.staircase.skewTridiagonalizations ||
      staircase.reusedCompressions != other.staircase.reusedCompressions ||
      staircase.chainLength != other.staircase.chainLength ||
      staircase.truncatedSteps != other.staircase.truncatedSteps)
    return false;
  if (schur.multishift != other.schur.multishift ||
      schur.sweeps != other.schur.sweeps ||
      schur.aedWindows != other.schur.aedWindows ||
      schur.aedDeflations != other.schur.aedDeflations ||
      schur.shiftsApplied != other.schur.shiftsApplied ||
      schur.iterations != other.schur.iterations ||
      schur.structureRepairs != other.schur.structureRepairs)
    return false;
  if (warnings != other.warnings) return false;
  const std::vector<const StageTrace*> mine = canonicalStages(stages);
  const std::vector<const StageTrace*> theirs =
      canonicalStages(other.stages);
  if (mine.size() != theirs.size()) return false;
  for (std::size_t k = 0; k < mine.size(); ++k) {
    if (mine[k]->name != theirs[k]->name ||
        mine[k]->status.code() != theirs[k]->status.code() ||
        mine[k]->status.message() != theirs[k]->status.message())
      return false;
  }
  return true;
}

std::string AnalysisReport::toJson() const {
  json::Writer w;
  w.beginObject();
  w.key("id").value(id);
  w.key("passive").value(passive);
  w.key("verdict").value(errorCodeName(verdict));
  w.key("verdictMessage").value(verdictMessage);
  w.key("order").value(order);
  w.key("ports").value(ports);
  w.key("diagnostics").beginObject();
  w.key("removedImpulsive").value(removedImpulsive);
  w.key("removedNondynamic").value(removedNondynamic);
  w.key("impulsiveChains").value(impulsiveChains);
  w.key("properOrder").value(properOrder);
  {
    // Peak of the per-stage memory high-water marks (0 when the obs
    // memory accountant was off for the run).
    std::size_t peak = 0;
    for (const StageTrace& t : stages) peak = std::max(peak, t.peakBytes);
    w.key("peakBytes").value(peak);
  }
  w.key("m1").value(m1);
  w.key("reorder").beginObject();
  w.key("swaps").value(reorder.swaps);
  w.key("rejectedSwaps").value(reorder.rejectedSwaps);
  w.key("maxResidual").value(reorder.maxResidual);
  w.key("eigenvalueDrift").value(reorder.eigenvalueDrift);
  w.key("standardizations").value(reorder.standardizations);
  w.endObject();
  w.key("schur").beginObject();
  w.key("multishift").value(schur.multishift);
  w.key("sweeps").value(schur.sweeps);
  w.key("aedWindows").value(schur.aedWindows);
  w.key("aedDeflations").value(schur.aedDeflations);
  w.key("shiftsApplied").value(schur.shiftsApplied);
  w.key("iterations").value(schur.iterations);
  w.key("structureRepairs").value(schur.structureRepairs);
  w.endObject();
  w.key("rankPolicy").beginObject();
  w.key("decisions").value(rankPolicy.decisions);
  w.key("minKeptMargin").value(rankPolicy.minKeptMargin);
  w.key("maxDroppedMargin").value(rankPolicy.maxDroppedMargin);
  w.endObject();
  w.key("staircase").beginObject();
  w.key("compressions").value(staircase.compressions);
  w.key("svdFallbacks").value(staircase.svdFallbacks);
  w.key("diagonalFastPaths").value(staircase.diagonalFastPaths);
  w.key("qrCompressions").value(staircase.qrCompressions);
  w.key("skewTridiagonalizations").value(staircase.skewTridiagonalizations);
  w.key("reusedCompressions").value(staircase.reusedCompressions);
  w.key("chainLength").value(staircase.chainLength);
  w.key("truncatedSteps").value(staircase.truncatedSteps);
  w.endObject();
  w.key("scheduler").beginObject();
  w.key("scheduled").value(scheduler.scheduled);
  w.key("shard").value(scheduler.shard);
  w.key("shardItems").value(scheduler.shardItems);
  w.key("large").value(scheduler.large);
  w.key("gemmThreadsGranted").value(scheduler.gemmThreadsGranted);
  w.key("stolen").value(scheduler.stolen);
  w.key("batchShards").value(scheduler.batchShards);
  w.key("batchWorkers").value(scheduler.batchWorkers);
  w.key("batchSteals").value(scheduler.batchSteals);
  w.key("stageGraph").value(scheduler.stageGraph);
  w.key("stageGraphExecuted").value(scheduler.stageGraphExecuted);
  w.key("stageGraphSkipped").value(scheduler.stageGraphSkipped);
  w.key("stageGraphCriticalPathSeconds")
      .value(scheduler.stageGraphCriticalPathSeconds);
  w.endObject();
  w.endObject();
  w.key("warnings").beginArray();
  for (Warning warn : warnings) w.value(warningName(warn));
  w.endArray();
  w.key("stages").beginArray();
  for (const StageTrace& t : stages) {
    w.beginObject();
    w.key("name").value(t.name);
    w.key("status").value(errorCodeName(t.status.code()));
    if (!t.status.ok()) w.key("message").value(t.status.message());
    w.key("seconds").value(t.seconds);
    if (t.peakBytes > 0) w.key("peakBytes").value(t.peakBytes);
    if (t.discarded) w.key("discarded").value(true);
    w.endObject();
  }
  w.endArray();
  w.key("totalSeconds").value(totalSeconds);
  w.endObject();
  return w.str();
}

PassivityAnalyzer::PassivityAnalyzer(AnalyzerOptions options)
    : options_(std::move(options)) {
  // Process-wide override so CI (and users) can drive every analysis
  // through the level-1 stage graph without touching call sites; by the
  // runGraph contract the setting can never change decisions, only
  // scheduling — exactly like SHHPASS_GEMM_THREADS one layer down.
  const char* env = std::getenv("SHHPASS_STAGE_GRAPH");
  if (env != nullptr && std::strcmp(env, "0") != 0)
    options_.stageGraph = true;
  // Telemetry: environment forces first (SHHPASS_TRACE / SHHPASS_METRICS,
  // read once process-wide), then this analyzer's own switches on top.
  // Both only ever turn telemetry ON — pure observation either way.
  obs::initTelemetryFromEnv();
  obs::applyTelemetryOptions(options_.telemetry);
}

void PassivityAnalyzer::setStageObserver(Pipeline::Observer observer) {
  std::lock_guard<std::mutex> lock(observerMu_);
  observer_ = std::move(observer);
}

Result<AnalysisReport> PassivityAnalyzer::analyze(
    const ds::DescriptorSystem& system) const {
  return analyzeImpl(system, options_.passivity, std::string(),
                     /*notifyObserver=*/true, /*gemmBudget=*/0);
}

Result<AnalysisReport> PassivityAnalyzer::analyze(
    const AnalysisRequest& request) const {
  return analyzeImpl(request.system,
                     request.options ? *request.options : options_.passivity,
                     request.id, /*notifyObserver=*/true, /*gemmBudget=*/0);
}

std::vector<Result<AnalysisReport>> PassivityAnalyzer::runBatch(
    std::span<const AnalysisRequest> requests) const {
  std::vector<Result<AnalysisReport>> results(
      requests.size(),
      Result<AnalysisReport>(
          Status::error(ErrorCode::Internal, "not executed")));
  if (requests.empty()) return results;
  std::size_t threads = options_.threads;
  if (threads == 0)
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t workers = std::min(threads, requests.size());

  // Level 2: deterministic shard plan over the item orders (pure
  // function of orders + options, never of `workers` — the plan fields
  // in every report are identical for every worker count).
  std::vector<std::size_t> orders(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i)
    orders[i] = requests[i].system.order();
  SchedulerOptions sopts = options_.scheduler;
  sopts.workers = workers;
  const std::vector<Shard> plan = planShards(orders, sopts);

  // Per-item plan records, filled before execution so they are shared
  // read-only with the workers; `stolen` is the one field a worker
  // writes, and only for items of shards it runs (disjoint ownership).
  const std::size_t kernelWidth = std::max<std::size_t>(
      1, linalg::gemmThreads());
  std::vector<SchedulerReport> sched(requests.size());
  for (std::size_t s = 0; s < plan.size(); ++s) {
    for (std::size_t item : plan[s].items) {
      sched[item].scheduled = true;
      sched[item].shard = s;
      sched[item].shardItems = plan[s].items.size();
      sched[item].large = plan[s].large;
      sched[item].gemmThreadsGranted =
          plan[s].gemmBudget == 0 ? kernelWidth
                                  : std::min(plan[s].gemmBudget, kernelWidth);
      sched[item].batchShards = plan.size();
      sched[item].batchWorkers = workers;
    }
  }

  // analyzeImpl is exception-free (Status-based) by construction, so the
  // body cannot throw across the scheduler boundary. The observer is
  // skipped: per-stage traces land in the report instead. Each item
  // writes only results[item] / sched[item] — item-indexed slots are what
  // keep report and trace ordering deterministic under stealing.
  const std::size_t steals = runSharded(
      plan, workers,
      [this, &requests, &results, &sched, &plan](
          std::size_t item, std::size_t shardIndex, bool stolen) {
        sched[item].stolen = stolen;
        results[item] = analyzeImpl(
            requests[item].system,
            requests[item].options ? *requests[item].options
                                   : options_.passivity,
            requests[item].id, /*notifyObserver=*/false,
            plan[shardIndex].gemmBudget);
      },
      sopts.packFirstWorker);

  // Stamp the scheduling record into each successful report, preserving
  // the level-1 stage-graph fields analyzeImpl already recorded.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!results[i].ok()) continue;
    AnalysisReport& report = results[i].value();
    sched[i].batchSteals = steals;
    sched[i].stageGraph = report.scheduler.stageGraph;
    sched[i].stageGraphExecuted = report.scheduler.stageGraphExecuted;
    sched[i].stageGraphSkipped = report.scheduler.stageGraphSkipped;
    sched[i].stageGraphCriticalPathSeconds =
        report.scheduler.stageGraphCriticalPathSeconds;
    report.scheduler = sched[i];
  }
  return results;
}

Result<AnalysisReport> PassivityAnalyzer::analyzeImpl(
    const ds::DescriptorSystem& system, const core::PassivityOptions& opts,
    const std::string& id, bool notifyObserver,
    std::size_t gemmBudget) const {
  const Pipeline& pipeline = standardPipeline();
  obs::counterAdd(obs::Counter::AnalysesStarted);
  obs::gaugeAdd(obs::Gauge::AnalysesInFlight, 1);
  obs::ObsSpan span("analyze", "api");
  span.arg("order", static_cast<std::int64_t>(system.order()));

  PipelineState state;
  state.input = &system;
  state.options = opts;

  AnalysisReport report;
  report.id = id;

  // Snapshot the observer once per analysis under its lock; the copy
  // keeps notifying even if setStageObserver swaps the slot mid-run.
  Pipeline::Observer observer;
  if (notifyObserver) {
    std::lock_guard<std::mutex> lock(observerMu_);
    observer = observer_;
  }
  Status status;
  if (options_.stageGraph) {
    // Level 1: dependency-ordered stage execution. Bit-identical
    // decisions to the sequential path by the runGraph contract.
    ThreadPool graphPool(std::max<std::size_t>(1, options_.stageGraphThreads));
    StageGraphReport graph;
    status = pipeline.runGraph(state, &report.stages, graphPool, &graph,
                               observer, gemmBudget);
    report.scheduler.stageGraph = graph.used;
    report.scheduler.stageGraphExecuted = graph.executedStages;
    report.scheduler.stageGraphSkipped = graph.skippedStages;
    report.scheduler.stageGraphCriticalPathSeconds =
        graph.criticalPathSeconds;
  } else {
    status = pipeline.run(state, &report.stages, observer);
  }
  if (!status.ok() && !isVerdictCode(status.code())) {
    obs::counterAdd(obs::Counter::AnalysesFailed);
    obs::gaugeAdd(obs::Gauge::AnalysesInFlight, -1);
    return Result<AnalysisReport>(status);
  }

  report.passive = state.result.passive;
  report.verdict = status.code();
  report.verdictMessage =
      status.ok() ? core::failureStageName(core::FailureStage::None)
                  : status.message();
  report.failure = state.result.failure;
  report.order = system.order();
  report.ports = system.numInputs();
  report.removedImpulsive = state.result.removedImpulsive;
  report.removedNondynamic = state.result.removedNondynamic;
  report.impulsiveChains = state.result.impulsiveChains;
  report.m1 = state.result.m1;
  report.properOrder = state.result.properPart.lambda.rows();
  report.reorder = state.result.reorder;
  report.schur = state.result.schur;
  report.rankPolicy = state.result.rankPolicy;
  report.staircase = state.result.staircase;
  if (report.reorder.rejectedSwaps > 0)
    report.warnings.push_back(Warning::ReorderSwapRejected);
  // Discarded speculative stages are execution records, not part of the
  // canonical decision path's cost; keep totalSeconds mode-comparable.
  for (const StageTrace& t : report.stages)
    if (!t.discarded) report.totalSeconds += t.seconds;
  obs::counterAdd(obs::Counter::AnalysesCompleted);
  if (!report.passive) obs::counterAdd(obs::Counter::AnalysesNotPassive);
  obs::gaugeAdd(obs::Gauge::AnalysesInFlight, -1);
  return Result<AnalysisReport>(std::move(report));
}

}  // namespace shhpass::api
