#include "api/pipeline.hpp"

#include <chrono>

#include "control/pr_test.hpp"
#include "core/markov.hpp"
#include "core/phi_builder.hpp"
#include "core/proper_part.hpp"

namespace shhpass::api {
namespace {

/// Shorthand for a not-passive exit at `stage`.
Status verdict(core::FailureStage stage) {
  return Status::error(errorCodeFromFailureStage(stage),
                       core::failureStageName(stage));
}

// Stage 0 of Fig. 1: shape validation, squareness, pencil balancing, and
// (unless skipped) the regularity and finite-stability screens.
class PrerequisitesStage final : public Stage {
 public:
  const char* name() const override { return "prerequisites"; }
  Status run(PipelineState& s) override {
    s.input->validate();
    if (!s.input->isSquareSystem())
      return verdict(core::FailureStage::NotSquare);
    // Balance the pencil: frequency scaling + equilibration, both exact
    // r.s.e. operations under which passivity is invariant.
    s.balanced = s.options.balance ? ds::balanceDescriptor(*s.input)
                                   : ds::BalancedSystem{*s.input, 1.0};
    if (!s.options.skipPrerequisites) {
      if (!ds::isRegular(s.balanced.sys))
        return verdict(core::FailureStage::SingularPencil);
      if (!ds::hasStableFiniteModes(s.balanced.sys))
        return verdict(core::FailureStage::UnstableFiniteModes);
    }
    return Status::okStatus();
  }
};

// Stage 1: realize Phi = G + G~ as an SHH pencil (Eq. 10).
class BuildPhiStage final : public Stage {
 public:
  const char* name() const override { return "build-phi"; }
  Status run(PipelineState& s) override {
    s.phi = core::buildPhi(s.balanced.sys);
    return Status::okStatus();
  }
};

// Stage 2: deflate impulse-unobservable/-uncontrollable modes (Eqs. 11-17).
class ImpulseDeflationStage final : public Stage {
 public:
  const char* name() const override { return "impulse-deflation"; }
  Status run(PipelineState& s) override {
    s.deflation = core::deflateImpulseModes(s.phi, s.options.rankTol);
    s.result.removedImpulsive = s.deflation.removed;
    s.result.rankPolicy.merge(s.deflation.rankReport);
    s.result.staircase.merge(s.deflation.staircase);
    return Status::okStatus();
  }
};

// Stage 3: impulse-freeness certificate + nondynamic removal (Eqs. 18-20).
class NondynamicRemovalStage final : public Stage {
 public:
  const char* name() const override { return "nondynamic-removal"; }
  Status run(PipelineState& s) override {
    s.nondynamic =
        core::removeNondynamicModes(s.deflation.reduced, s.options.rankTol);
    s.result.removedNondynamic = s.nondynamic.removed;
    s.result.rankPolicy.merge(s.nondynamic.rankReport);
    s.result.staircase.merge(s.nondynamic.staircase);
    if (!s.nondynamic.impulseFree)
      return verdict(core::FailureStage::ResidualImpulses);
    return Status::okStatus();
  }
};

// Stage 4: impulsive-part admissibility of G itself — grade >= 3 screen
// plus M1 extraction and the M1 >= 0 check (Eqs. 24-25).
class M1ExtractionStage final : public Stage {
 public:
  const char* name() const override { return "m1-extraction"; }
  Status run(PipelineState& s) override {
    // The impulse-deflation stage's compression of the balanced E (the
    // half-size block of Phi's diag(E, E^T)) serves this whole stage too.
    const linalg::Compression* eComp =
        s.deflation.hasHalfECompression ? &s.deflation.halfECompression
                                        : nullptr;
    // Skew-symmetric Mk cancel inside Phi, so the grade >= 3 screen only
    // needs to run when the stage-2 deflation was non-trivial.
    if (s.result.removedImpulsive > 0 &&
        core::hasHigherOrderImpulses(s.balanced.sys, s.options.rankTol,
                                     &s.result.rankPolicy,
                                     &s.result.staircase, eComp))
      return verdict(core::FailureStage::HigherOrderImpulse);
    core::M1Extraction m1 = core::extractM1(
        s.balanced.sys, s.options.rankTol, core::DeflationPath::Auto, eComp);
    s.result.rankPolicy.merge(m1.rankReport);
    s.result.staircase.merge(m1.staircase);
    // The balanced system is G_b(s) = G(tau * s) with residue tau * M1 at
    // infinity; undo the frequency scaling for reporting.
    s.result.m1 = (1.0 / s.balanced.freqScale) * m1.m1;
    s.result.impulsiveChains = m1.chainCount;
    if (!m1.symmetric || !m1.psd)
      return verdict(core::FailureStage::M1NotPsd);
    return Status::okStatus();
  }
};

// Stage 5: normalize E3 and split off the stable proper part (Eqs. 21-23).
class ProperPartStage final : public Stage {
 public:
  const char* name() const override { return "proper-part"; }
  Status run(PipelineState& s) override {
    s.result.properPart = core::extractProperPart(
        s.nondynamic.shh, s.options.imagTol, s.options.rankTol);
    s.result.reorder = s.result.properPart.reorder;
    s.result.schur = s.result.properPart.schur;
    s.result.rankPolicy.merge(s.result.properPart.rankReport);
    if (!s.result.properPart.ok)
      return verdict(core::FailureStage::LosslessAxisModes);
    return Status::okStatus();
  }
};

// Stage 6: standard positive-realness test on the extracted proper part.
class PositiveRealnessStage final : public Stage {
 public:
  const char* name() const override { return "pr-test"; }
  Status run(PipelineState& s) override {
    const core::ProperPartResult& pp = s.result.properPart;
    control::PrTestResult pr = control::testPositiveRealProper(
        pp.lambda, pp.b1, pp.c1, pp.dHalf, s.options.imagTol);
    if (!pr.positiveReal)
      return verdict(core::FailureStage::ProperPartNotPr);
    return Status::okStatus();
  }
};

}  // namespace

Pipeline Pipeline::standard() {
  Pipeline p;
  p.addStage(std::make_unique<PrerequisitesStage>());
  p.addStage(std::make_unique<BuildPhiStage>());
  p.addStage(std::make_unique<ImpulseDeflationStage>());
  p.addStage(std::make_unique<NondynamicRemovalStage>());
  p.addStage(std::make_unique<M1ExtractionStage>());
  p.addStage(std::make_unique<ProperPartStage>());
  p.addStage(std::make_unique<PositiveRealnessStage>());
  return p;
}

Pipeline& Pipeline::addStage(std::unique_ptr<Stage> stage) {
  stages_.push_back(std::move(stage));
  return *this;
}

const Pipeline& standardPipeline() {
  static const Pipeline kPipeline = Pipeline::standard();
  return kPipeline;
}

Status Pipeline::run(PipelineState& state, std::vector<StageTrace>* traces,
                     const Observer& observer) const {
  using Clock = std::chrono::steady_clock;
  state.result = core::PassivityResult{};
  if (state.input == nullptr)
    return Status::error(ErrorCode::InvalidArgument,
                         "PipelineState::input is null");
  for (const std::unique_ptr<Stage>& stage : stages_) {
    StageTrace trace;
    trace.name = stage->name();
    const Clock::time_point t0 = Clock::now();
    try {
      trace.status = stage->run(state);
    } catch (...) {
      trace.status = statusFromCurrentException();
    }
    trace.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    if (traces) traces->push_back(trace);
    if (observer) {
      try {
        observer(trace);
      } catch (...) {
        // Diagnostic hooks must not break the no-exceptions-cross-the-API
        // contract; a throwing observer loses its own notification only.
      }
    }
    if (!trace.status.ok()) {
      if (isVerdictCode(trace.status.code())) {
        state.result.passive = false;
        state.result.failure =
            *failureStageFromErrorCode(trace.status.code());
      }
      return trace.status;
    }
  }
  state.result.passive = true;
  state.result.failure = core::FailureStage::None;
  return Status::okStatus();
}

}  // namespace shhpass::api
