#include "api/pipeline.hpp"

#include <utility>

#include "api/thread_pool.hpp"
#include "control/pr_test.hpp"
#include "core/phi_builder.hpp"
#include "linalg/blas.hpp"
#include "obs/clock.hpp"
#include "obs/memory.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace shhpass::api {
namespace {

/// Shorthand for a not-passive exit at `stage`.
Status verdict(core::FailureStage stage) {
  return Status::error(errorCodeFromFailureStage(stage),
                       core::failureStageName(stage));
}

/// Internal sentinel a stage node raises (via std::rethrow_exception; the
/// api layer is throw-keyword-free) when its stage returned a non-ok
/// Status, so the TaskGraph skip cascade stops dependents from running on
/// unset state. Never escapes runGraph.
struct StageNotOk {};

// Stage 0 of Fig. 1: shape validation, squareness, pencil balancing, and
// (unless skipped) the regularity and finite-stability screens.
class PrerequisitesStage final : public Stage {
 public:
  const char* name() const override { return "prerequisites"; }
  Status run(PipelineState& s) override {
    s.input->validate();
    if (!s.input->isSquareSystem())
      return verdict(core::FailureStage::NotSquare);
    // Balance the pencil: frequency scaling + equilibration, both exact
    // r.s.e. operations under which passivity is invariant.
    s.balanced = s.options.balance ? ds::balanceDescriptor(*s.input)
                                   : ds::BalancedSystem{*s.input, 1.0};
    if (!s.options.skipPrerequisites) {
      if (!ds::isRegular(s.balanced.sys))
        return verdict(core::FailureStage::SingularPencil);
      if (!ds::hasStableFiniteModes(s.balanced.sys))
        return verdict(core::FailureStage::UnstableFiniteModes);
    }
    return Status::okStatus();
  }
};

// Stage 1: realize Phi = G + G~ as an SHH pencil (Eq. 10).
class BuildPhiStage final : public Stage {
 public:
  const char* name() const override { return "build-phi"; }
  Status run(PipelineState& s) override {
    s.phi = core::buildPhi(s.balanced.sys);
    return Status::okStatus();
  }
};

// Stage 2: deflate impulse-unobservable/-uncontrollable modes (Eqs. 11-17).
class ImpulseDeflationStage final : public Stage {
 public:
  const char* name() const override { return "impulse-deflation"; }
  Status run(PipelineState& s) override {
    s.deflation = core::deflateImpulseModes(s.phi, s.options.rankTol);
    return Status::okStatus();
  }
  void commit(PipelineState& s) override {
    s.result.removedImpulsive = s.deflation.removed;
    s.result.rankPolicy.merge(s.deflation.rankReport);
    s.result.staircase.merge(s.deflation.staircase);
  }
};

// Stage 3: impulse-freeness certificate + nondynamic removal (Eqs. 18-20).
class NondynamicRemovalStage final : public Stage {
 public:
  const char* name() const override { return "nondynamic-removal"; }
  Status run(PipelineState& s) override {
    s.nondynamic =
        core::removeNondynamicModes(s.deflation.reduced, s.options.rankTol);
    if (!s.nondynamic.impulseFree)
      return verdict(core::FailureStage::ResidualImpulses);
    return Status::okStatus();
  }
  void commit(PipelineState& s) override {
    s.result.removedNondynamic = s.nondynamic.removed;
    s.result.rankPolicy.merge(s.nondynamic.rankReport);
    s.result.staircase.merge(s.nondynamic.staircase);
  }
};

// Stage 4: impulsive-part admissibility of G itself — grade >= 3 screen
// plus M1 extraction and the M1 >= 0 check (Eqs. 24-25). Reads only the
// prerequisites' balanced system and the impulse-deflation outputs, so in
// the graph it is a branch independent of nondynamic removal and the
// proper-part chain.
class M1ExtractionStage final : public Stage {
 public:
  const char* name() const override { return "m1-extraction"; }
  Status run(PipelineState& s) override {
    // The impulse-deflation stage's compression of the balanced E (the
    // half-size block of Phi's diag(E, E^T)) serves this whole stage too.
    const linalg::Compression* eComp =
        s.deflation.hasHalfECompression ? &s.deflation.halfECompression
                                        : nullptr;
    // Skew-symmetric Mk cancel inside Phi, so the grade >= 3 screen only
    // needs to run when the stage-2 deflation was non-trivial.
    if (s.deflation.removed > 0 &&
        core::hasHigherOrderImpulses(s.balanced.sys, s.options.rankTol,
                                     &s.m1Rank, &s.m1Staircase, eComp))
      return verdict(core::FailureStage::HigherOrderImpulse);
    s.m1 = core::extractM1(s.balanced.sys, s.options.rankTol,
                           core::DeflationPath::Auto, eComp);
    s.m1Rank.merge(s.m1.rankReport);
    s.m1Staircase.merge(s.m1.staircase);
    // The balanced system is G_b(s) = G(tau * s) with residue tau * M1 at
    // infinity; undo the frequency scaling for reporting.
    s.m1Scaled = (1.0 / s.balanced.freqScale) * s.m1.m1;
    if (!s.m1.symmetric || !s.m1.psd)
      return verdict(core::FailureStage::M1NotPsd);
    return Status::okStatus();
  }
  void commit(PipelineState& s) override {
    // RankReport/StaircaseReport merges are sums + min/max, so folding
    // the privately accumulated per-stage report in one merge is
    // bit-identical to the historical in-place merges.
    s.result.rankPolicy.merge(s.m1Rank);
    s.result.staircase.merge(s.m1Staircase);
    s.result.m1 = s.m1Scaled;
    s.result.impulsiveChains = s.m1.chainCount;
  }
};

// Stage 5: normalize E3 and split off the stable proper part (Eqs. 21-23).
class ProperPartStage final : public Stage {
 public:
  const char* name() const override { return "proper-part"; }
  Status run(PipelineState& s) override {
    s.properPart = core::extractProperPart(s.nondynamic.shh, s.options.imagTol,
                                           s.options.rankTol, s.stagePool);
    if (!s.properPart.ok)
      return verdict(core::FailureStage::LosslessAxisModes);
    return Status::okStatus();
  }
  void commit(PipelineState& s) override {
    s.result.properPart = s.properPart;
    s.result.reorder = s.properPart.reorder;
    s.result.schur = s.properPart.schur;
    s.result.rankPolicy.merge(s.properPart.rankReport);
  }
};

// Stage 6: standard positive-realness test on the extracted proper part.
class PositiveRealnessStage final : public Stage {
 public:
  const char* name() const override { return "pr-test"; }
  Status run(PipelineState& s) override {
    const core::ProperPartResult& pp = s.properPart;
    control::PrTestResult pr = control::testPositiveRealProper(
        pp.lambda, pp.b1, pp.c1, pp.dHalf, s.options.imagTol);
    if (!pr.positiveReal)
      return verdict(core::FailureStage::ProperPartNotPr);
    return Status::okStatus();
  }
};

}  // namespace

Pipeline Pipeline::standard() {
  // The Fig.-1 data-dependency DAG. After impulse deflation (2), the
  // nondynamic-removal chain (3 -> 5 -> 6) and the m1-extraction branch
  // (4) are independent: 4 reads only the balanced system (0) and the
  // deflation outputs (2).
  Pipeline p;
  p.addStage(std::make_unique<PrerequisitesStage>());            // 0
  p.addStage(std::make_unique<BuildPhiStage>(), {0});            // 1
  p.addStage(std::make_unique<ImpulseDeflationStage>(), {1});    // 2
  p.addStage(std::make_unique<NondynamicRemovalStage>(), {2});   // 3
  p.addStage(std::make_unique<M1ExtractionStage>(), {2});        // 4
  p.addStage(std::make_unique<ProperPartStage>(), {3});          // 5
  p.addStage(std::make_unique<PositiveRealnessStage>(), {5});    // 6
  return p;
}

Pipeline& Pipeline::addStage(std::unique_ptr<Stage> stage,
                             std::vector<std::size_t> deps) {
  if (deps.empty() && !stages_.empty()) deps.push_back(stages_.size() - 1);
  stages_.push_back(std::move(stage));
  deps_.push_back(std::move(deps));
  return *this;
}

const Pipeline& standardPipeline() {
  static const Pipeline kPipeline = Pipeline::standard();
  return kPipeline;
}

Status Pipeline::run(PipelineState& state, std::vector<StageTrace>* traces,
                     const Observer& observer) const {
  state.result = core::PassivityResult{};
  if (state.input == nullptr)
    return Status::error(ErrorCode::InvalidArgument,
                         "PipelineState::input is null");
  for (const std::unique_ptr<Stage>& stage : stages_) {
    StageTrace trace;
    trace.name = stage->name();
    bool threw = false;
    obs::MemScope mem;
    const std::uint64_t t0 = obs::monotonicNowNs();
    try {
      trace.status = stage->run(state);
    } catch (...) {
      trace.status = statusFromCurrentException();
      threw = true;
    }
    // Commit inside the timed region (the historical code merged
    // diagnostics inline in run, so per-stage seconds keep covering the
    // same work). A throwing stage never commits: its slots may be torn.
    if (!threw) stage->commit(state);
    const std::uint64_t t1 = obs::monotonicNowNs();
    trace.seconds = obs::nsToSeconds(t0, t1);
    trace.peakBytes = mem.peakBytes();
    obs::emitSpan(trace.name, "stage", t0, t1, obs::currentThreadTid());
    obs::observeStageSeconds(trace.name, trace.seconds);
    obs::counterAdd(obs::Counter::StagesExecuted);
    if (traces) traces->push_back(trace);
    if (observer) {
      try {
        observer(trace);
      } catch (...) {
        // Diagnostic hooks must not break the no-exceptions-cross-the-API
        // contract; a throwing observer loses its own notification only.
      }
    }
    if (!trace.status.ok()) {
      if (isVerdictCode(trace.status.code())) {
        state.result.passive = false;
        state.result.failure =
            *failureStageFromErrorCode(trace.status.code());
      }
      return trace.status;
    }
  }
  state.result.passive = true;
  state.result.failure = core::FailureStage::None;
  return Status::okStatus();
}

Status Pipeline::runGraph(PipelineState& state,
                          std::vector<StageTrace>* traces, ThreadPool& pool,
                          StageGraphReport* graph, const Observer& observer,
                          std::size_t gemmBudget) const {
  state.result = core::PassivityResult{};
  if (state.input == nullptr)
    return Status::error(ErrorCode::InvalidArgument,
                         "PipelineState::input is null");
  obs::counterAdd(obs::Counter::StageGraphRuns);
  // Intra-stage fork/join needs a second worker to guarantee progress
  // (the forking stage blocks on its subtask's future).
  state.stagePool = pool.size() >= 2 ? &pool : nullptr;

  const std::size_t n = stages_.size();
  // Per-stage result slots, index-addressed so no ordering between
  // concurrently finishing stages matters. Declared before the graph so
  // they outlive any in-flight node on early exit paths. startNs/tid
  // capture where/when each node ran: stage spans cannot be emitted from
  // the node itself (whether a stage is speculative-discarded is only
  // known at canonical assembly), so emission is deferred to the
  // assembly loop below with these recorded stamps. An executed node is
  // recognizable by a non-empty slot name (skipped nodes never run).
  std::vector<StageTrace> slot(n);
  std::vector<char> threw(n, 0);
  std::vector<std::uint64_t> startNs(n, 0);
  std::vector<std::uint64_t> endNs(n, 0);
  std::vector<std::uint32_t> tid(n, 0);
  {
    TaskGraph g(&pool);
    for (std::size_t i = 0; i < n; ++i) {
      g.add(stages_[i]->name(),
            [this, i, &state, &slot, &threw, &startNs, &endNs, &tid,
             gemmBudget] {
              // The kernel budget is thread-local; re-establish it on
              // this pool worker for the stage's gemm calls.
              linalg::GemmThreadBudgetScope budget(gemmBudget);
              StageTrace t;
              t.name = stages_[i]->name();
              obs::MemScope mem;
              const std::uint64_t t0 = obs::monotonicNowNs();
              try {
                t.status = stages_[i]->run(state);
              } catch (...) {
                t.status = statusFromCurrentException();
                threw[i] = 1;
              }
              const std::uint64_t t1 = obs::monotonicNowNs();
              t.seconds = obs::nsToSeconds(t0, t1);
              t.peakBytes = mem.peakBytes();
              startNs[i] = t0;
              endNs[i] = t1;
              tid[i] = obs::currentThreadTid();
              obs::observeStageSeconds(t.name, t.seconds);
              obs::counterAdd(obs::Counter::StagesExecuted);
              slot[i] = std::move(t);
              // Fail the node on any non-ok status so the TaskGraph skip
              // cascade keeps dependents off unset state.
              if (!slot[i].status.ok())
                std::rethrow_exception(std::make_exception_ptr(StageNotOk{}));
            },
            deps_[i]);
    }
    g.run();
    try {
      g.wait();
    } catch (...) {
      // StageNotOk (or the stage's own exception, already translated
      // into slot[i].status): handled below in canonical order.
    }
    if (graph) {
      graph->used = true;
      graph->executedStages = g.executedCount();
      graph->skippedStages = g.skippedCount();
      graph->criticalPathSeconds = g.criticalPathSeconds();
    }
  }
  state.stagePool = nullptr;

  // Canonical assembly: walk insertion order and stop at the first non-ok
  // stage — exactly the stage list sequential run() produces. Every stage
  // visited before the cutoff has executed: its dependencies are a subset
  // of earlier stages, all of which were ok. Commits are applied here, on
  // the calling thread, in canonical order, so result diagnostics merge
  // in the sequential order; speculative stages past the cutoff ran but
  // are never committed — they are accounted for afterwards as
  // explicitly-marked discarded traces and spans.
  Status final = Status::okStatus();
  std::size_t cutoff = n;
  for (std::size_t i = 0; i < n; ++i) {
    obs::emitSpan(slot[i].name, "stage", startNs[i], endNs[i], tid[i]);
    if (traces) traces->push_back(slot[i]);
    if (observer) {
      try {
        observer(slot[i]);
      } catch (...) {
        // Same contract as run(): a throwing observer loses its own
        // notification only.
      }
    }
    if (!threw[i]) stages_[i]->commit(state);
    if (!slot[i].status.ok()) {
      final = slot[i].status;
      cutoff = i + 1;
      break;
    }
  }
  // Account for speculative work past the cutoff: nodes that executed
  // (non-empty slot name; skipped nodes never ran their callable) but
  // were never committed. They are appended to `traces` marked
  // discarded, emitted as discarded spans, and counted — so a failing
  // mid-graph run still explains every node the graph executed. The
  // observer is NOT notified for them (its canonical notification order
  // is part of the run()-parity contract).
  for (std::size_t i = cutoff; i < n; ++i) {
    if (slot[i].name.empty()) continue;
    obs::emitSpan(slot[i].name, "stage", startNs[i], endNs[i], tid[i],
                  /*discarded=*/true);
    obs::counterAdd(obs::Counter::StagesDiscarded);
    if (traces) {
      slot[i].discarded = true;
      traces->push_back(slot[i]);
    }
  }
  if (final.ok()) {
    state.result.passive = true;
    state.result.failure = core::FailureStage::None;
  } else if (isVerdictCode(final.code())) {
    state.result.passive = false;
    state.result.failure = *failureStageFromErrorCode(final.code());
  }
  return final;
}

}  // namespace shhpass::api
