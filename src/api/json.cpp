#include "api/json.hpp"

#include <cmath>
#include <cstdio>

namespace shhpass::api::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Writer::beforeValue() {
  if (pendingKey_) {
    pendingKey_ = false;
    return;  // comma already emitted with the key
  }
  if (!needComma_.empty()) {
    if (needComma_.back()) out_ += ',';
    needComma_.back() = true;
  }
}

Writer& Writer::beginObject() {
  beforeValue();
  out_ += '{';
  needComma_.push_back(false);
  return *this;
}

Writer& Writer::endObject() {
  needComma_.pop_back();
  out_ += '}';
  return *this;
}

Writer& Writer::beginArray() {
  beforeValue();
  out_ += '[';
  needComma_.push_back(false);
  return *this;
}

Writer& Writer::endArray() {
  needComma_.pop_back();
  out_ += ']';
  return *this;
}

Writer& Writer::key(std::string_view k) {
  if (!needComma_.empty()) {
    if (needComma_.back()) out_ += ',';
    needComma_.back() = true;
  }
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  pendingKey_ = true;
  return *this;
}

Writer& Writer::value(std::string_view v) {
  beforeValue();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

Writer& Writer::value(bool v) {
  beforeValue();
  out_ += v ? "true" : "false";
  return *this;
}

Writer& Writer::value(double v) {
  beforeValue();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no Inf/NaN
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ += buf;
  return *this;
}

Writer& Writer::value(std::size_t v) {
  beforeValue();
  out_ += std::to_string(v);
  return *this;
}

Writer& Writer::value(const linalg::Matrix& m) {
  beginArray();
  for (std::size_t i = 0; i < m.rows(); ++i) {
    beginArray();
    for (std::size_t j = 0; j < m.cols(); ++j) value(m(i, j));
    endArray();
  }
  endArray();
  return *this;
}

}  // namespace shhpass::api::json
