#include "api/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace shhpass::api {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0)
    threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  jobReady_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  jobReady_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  allDone_.wait(lock, [this] { return queue_.empty() && inFlight_ == 0; });
  if (firstError_) {
    std::exception_ptr err = std::exchange(firstError_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      jobReady_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++inFlight_;
    }
    std::exception_ptr err;
    try {
      job();
    } catch (...) {
      err = std::current_exception();
    }
    jobsExecuted_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (err && !firstError_) firstError_ = err;
      --inFlight_;
      if (queue_.empty() && inFlight_ == 0) allDone_.notify_all();
    }
  }
}

}  // namespace shhpass::api
