#include "api/thread_pool.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "obs/clock.hpp"
#include "obs/trace.hpp"

namespace shhpass::api {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0)
    threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  jobReady_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  jobReady_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  allDone_.wait(lock, [this] { return queue_.empty() && inFlight_ == 0; });
  if (firstError_) {
    std::exception_ptr err = std::exchange(firstError_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      jobReady_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++inFlight_;
    }
    std::exception_ptr err;
    try {
      job();
    } catch (...) {
      err = std::current_exception();
    }
    jobsExecuted_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Release this thread's reference before the error is published:
      // once wait() can rethrow it, the last reference to the exception
      // object must not be dropped from a worker (the refcount lives in
      // uninstrumented libstdc++, so TSan would flag the late free).
      if (err) {
        if (!firstError_) firstError_ = std::move(err);
        err = nullptr;
      }
      --inFlight_;
      if (queue_.empty() && inFlight_ == 0) allDone_.notify_all();
    }
  }
}

// ------------------------------------------------------------- TaskGraph

TaskGraph::~TaskGraph() {
  // Block until every node is terminal: submitted jobs reference `this`,
  // so leaving early would be a use-after-free. Errors never observed via
  // wait() are dropped (a destructor cannot throw), mirroring ThreadPool.
  std::unique_lock<std::mutex> lock(mu_);
  if (!launched_) return;
  allTerminal_.wait(lock, [this] { return terminal_ == nodes_.size(); });
}

TaskGraph::NodeId TaskGraph::add(std::string name, std::function<void()> fn,
                                 const std::vector<NodeId>& deps) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(!launched_ && "TaskGraph::add after run()");
  const NodeId id = nodes_.size();
  Node node;
  node.name = std::move(name);
  node.fn = std::move(fn);
  for (NodeId dep : deps) {
    assert(dep < id && "TaskGraph dependency on a node not yet added");
    node.deps.push_back(dep);
  }
  node.remainingDeps = node.deps.size();
  nodes_.push_back(std::move(node));
  for (NodeId dep : nodes_[id].deps) nodes_[dep].dependents.push_back(id);
  return id;
}

void TaskGraph::run() {
  std::vector<NodeId> roots;
  {
    std::lock_guard<std::mutex> lock(mu_);
    assert(!launched_ && "TaskGraph::run called twice");
    launched_ = true;
    if (pool_ != nullptr) {
      for (NodeId id = 0; id < nodes_.size(); ++id)
        if (nodes_[id].remainingDeps == 0) roots.push_back(id);
    }
  }
  if (pool_ == nullptr) {
    // Inline serial mode: canonical insertion order IS a topological
    // order (deps < id by construction). This path is the determinism
    // oracle the pool mode is compared against.
    for (NodeId id = 0; id < nodes_.size(); ++id) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        // A failed node's finish() already cascaded skips to its
        // dependents; only still-Pending nodes need handling here.
        if (nodes_[id].state != NodeState::Pending) continue;
        bool ready = true;
        for (NodeId dep : nodes_[id].deps)
          if (nodes_[dep].state != NodeState::Done) ready = false;
        if (!ready) {
          nodes_[id].state = NodeState::Skipped;
          ++terminal_;
          continue;
        }
      }
      execute(id);
    }
    std::lock_guard<std::mutex> lock(mu_);
    allTerminal_.notify_all();
    return;
  }
  for (NodeId id : roots)
    pool_->submit([this, id] { execute(id); });
}

void TaskGraph::execute(NodeId id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    nodes_[id].state = NodeState::Running;
  }
  const std::uint64_t t0 = obs::monotonicNowNs();
  std::exception_ptr err;
  try {
    nodes_[id].fn();
  } catch (...) {
    err = std::current_exception();
  }
  const std::uint64_t t1 = obs::monotonicNowNs();
  // Node names are stable for the graph's lifetime; the span copies it.
  obs::emitSpan(nodes_[id].name, "graph", t0, t1, obs::currentThreadTid());
  // Hand the exception reference to finish() so this worker holds
  // nothing once the error is observable through wait().
  const NodeState terminal = err ? NodeState::Failed : NodeState::Done;
  finish(id, terminal, std::move(err), obs::nsToSeconds(t0, t1));
}

void TaskGraph::finish(NodeId id, NodeState terminal, std::exception_ptr err,
                       double seconds) {
  std::vector<NodeId> newlyReady;
  ThreadPool* pool = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Node& node = nodes_[id];
    node.state = terminal;
    node.error = std::move(err);
    node.seconds = seconds;
    ++terminal_;
    if (terminal == NodeState::Done) {
      for (NodeId dep : node.dependents) {
        Node& d = nodes_[dep];
        if (d.state != NodeState::Pending) continue;  // already skipped
        if (--d.remainingDeps == 0) newlyReady.push_back(dep);
      }
    } else {
      skipDependentsLocked(id, &newlyReady);
    }
    if (terminal_ == nodes_.size()) allTerminal_.notify_all();
    // Snapshot pool_ while the graph is pinned alive: once the notify
    // above publishes the final terminal_ count, the destructor may
    // return and `this` may be gone. If newlyReady is non-empty this
    // node was NOT the last terminal one, so the graph outlives the
    // submits below; only the member read itself must happen here.
    pool = pool_;
  }
  if (pool != nullptr)
    for (NodeId ready : newlyReady)
      pool->submit([this, ready] { execute(ready); });
}

// Pre: mu_ held. Marks every Pending dependent of a failed/skipped node
// Skipped and cascades. Which nodes end up skipped depends only on WHICH
// nodes failed, never on completion timing: a node is skipped iff some
// ancestor failed, and the cascade reaches exactly that set whatever
// order terminal events arrive in (the Pending guard makes marking
// idempotent).
void TaskGraph::skipDependentsLocked(NodeId id,
                                     std::vector<NodeId>* newlyReady) {
  (void)newlyReady;
  for (NodeId dep : nodes_[id].dependents) {
    Node& d = nodes_[dep];
    if (d.state != NodeState::Pending) continue;
    d.state = NodeState::Skipped;
    ++terminal_;
    skipDependentsLocked(dep, newlyReady);
  }
}

void TaskGraph::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  allTerminal_.wait(
      lock, [this] { return launched_ && terminal_ == nodes_.size(); });
  for (const Node& node : nodes_) {
    if (node.state == NodeState::Failed && node.error) {
      std::exception_ptr err = node.error;
      lock.unlock();
      std::rethrow_exception(err);
    }
  }
}

bool TaskGraph::completed(NodeId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return nodes_[id].state == NodeState::Done;
}

bool TaskGraph::skipped(NodeId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return nodes_[id].state == NodeState::Skipped;
}

double TaskGraph::nodeSeconds(NodeId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return nodes_[id].seconds;
}

double TaskGraph::criticalPathSeconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  // DP over canonical order (deps < id): path length to each node's end.
  std::vector<double> path(nodes_.size(), 0.0);
  double best = 0.0;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    double longestDep = 0.0;
    for (NodeId dep : nodes_[id].deps)
      longestDep = std::max(longestDep, path[dep]);
    const double own =
        nodes_[id].state == NodeState::Done || nodes_[id].state == NodeState::Failed
            ? nodes_[id].seconds
            : 0.0;
    path[id] = longestDep + own;
    best = std::max(best, path[id]);
  }
  return best;
}

std::size_t TaskGraph::executedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const Node& node : nodes_)
    if (node.state == NodeState::Done || node.state == NodeState::Failed) ++n;
  return n;
}

std::size_t TaskGraph::skippedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const Node& node : nodes_)
    if (node.state == NodeState::Skipped) ++n;
  return n;
}

}  // namespace shhpass::api
