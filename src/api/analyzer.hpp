// PassivityAnalyzer: the engine facade of the library. Setup (options),
// solve (analyze / runBatch), and reporting (AnalysisReport with JSON
// serialization of the full Fig.-1 decision path) live behind one object —
// the facade pattern of lgrtk's circuit module — instead of the historical
// scatter of per-module free functions.
#pragma once

#include <cstddef>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "api/pipeline.hpp"
#include "api/scheduler.hpp"
#include "api/status.hpp"
#include "ds/descriptor.hpp"
#include "linalg/schur_multishift.hpp"
#include "linalg/schur_reorder.hpp"
#include "obs/telemetry.hpp"

namespace shhpass::api {

/// One unit of service work: a system to analyze plus optional per-request
/// option overrides and a caller-chosen correlation id.
struct AnalysisRequest {
  std::string id;                 ///< Echoed into the report (may be empty).
  ds::DescriptorSystem system;
  std::optional<core::PassivityOptions> options;  ///< Overrides analyzer
                                                  ///< defaults when set.
};

/// Full decision-path record of one analysis.
struct AnalysisReport {
  std::string id;               ///< AnalysisRequest::id (empty for ad hoc).
  bool passive = false;
  ErrorCode verdict = ErrorCode::Ok;  ///< Ok when passive, else the Fig.-1
                                      ///< stage verdict code.
  std::string verdictMessage;   ///< Human-readable verdict.
  core::FailureStage failure = core::FailureStage::None;

  // Input shape.
  std::size_t order = 0;        ///< State count of the input system.
  std::size_t ports = 0;        ///< Input (= output) count.

  // Stage diagnostics (same content as the legacy PassivityResult).
  std::size_t removedImpulsive = 0;
  std::size_t removedNondynamic = 0;
  std::size_t impulsiveChains = 0;
  linalg::Matrix m1;            ///< First Markov parameter (residue at inf).
  std::size_t properOrder = 0;  ///< Order of the extracted proper part.

  /// Health of the Schur reordering behind the Eq.-(22) stable/antistable
  /// split (zeroed when the run never reached the proper-part stage).
  linalg::ReorderReport reorder;
  /// Health of the real Schur eigensolver behind that split: which
  /// kernel path ran (multishift vs unblocked oracle), sweep / AED /
  /// shift / iteration counters (linalg/schur_multishift.hpp; zeroed
  /// when the run never reached the proper-part stage). Serialized
  /// under diagnostics.schur.
  linalg::SchurReport schur;
  /// Health of the shared-policy SVD rank decisions behind every
  /// deflation step (decision count + worst kept/dropped margins,
  /// linalg/svd.hpp; empty when the run stopped before the deflation
  /// stages). Serialized under diagnostics.rankPolicy.
  linalg::RankReport rankPolicy;
  /// Health of the one-pass staircase deflation chain (kernel mix,
  /// compression reuse, chain truncation — linalg/staircase.hpp), merged
  /// across the impulse-deflation, nondynamic-removal, and m1-extraction
  /// stages; all-zero when every stage ran the legacy SVD chain.
  /// Serialized under diagnostics.staircase.
  linalg::StaircaseReport staircase;
  /// Non-fatal diagnostic flags (e.g. Warning::ReorderSwapRejected).
  std::vector<Warning> warnings;

  // Execution record.
  /// One trace per executed stage, in canonical order. Stage-graph runs
  /// that stopped early additionally append the speculative stages that
  /// executed past the cutoff, marked StageTrace::discarded (excluded
  /// from decisionEquals and totalSeconds).
  std::vector<StageTrace> stages;
  double totalSeconds = 0.0;
  /// How the two-level scheduler ran this analysis (shard plan slot,
  /// kernel budget, steal/stage-graph records — api/scheduler.hpp).
  /// Default-initialized for plain sequential analyze() calls. Like
  /// totalSeconds this is an EXECUTION record: decisionEquals ignores it
  /// entirely (steal counts and critical paths are timing-dependent; the
  /// plan fields are deterministic but describe scheduling, not the
  /// Fig.-1 decision path).
  SchedulerReport scheduler;

  /// Decision-path equality: every field that reflects WHAT was decided
  /// (verdict, diagnostics, M1, per-stage statuses) — everything except
  /// wall-clock timings and the scheduler execution record. Batch
  /// results must decisionEquals their sequential single-shot
  /// counterparts, for every worker count and steal schedule.
  bool decisionEquals(const AnalysisReport& other) const;

  /// Compact JSON serialization of the full decision path (service wire
  /// format; see README for the schema).
  std::string toJson() const;
};

/// Analyzer-wide configuration.
struct AnalyzerOptions {
  core::PassivityOptions passivity;  ///< Default per-analysis options.
  std::size_t threads = 0;  ///< Worker threads for runBatch; 0 = hardware
                            ///< concurrency.
  /// Level-2 shard scheduling knobs for runBatch (the `workers` field is
  /// overridden per batch from `threads` and the batch size).
  SchedulerOptions scheduler;
  /// Level-1: run each analysis's Fig.-1 stages as a dependency-ordered
  /// task graph (Pipeline::runGraph) instead of sequentially. Decisions
  /// are bit-identical either way (the runGraph contract); this trades
  /// stageGraphThreads extra threads per in-flight analysis for stage
  /// overlap. Also forced on process-wide by the environment variable
  /// SHHPASS_STAGE_GRAPH (any value but "0"), read once at analyzer
  /// construction — the tsan CI job drives the whole suite through the
  /// graph path this way.
  bool stageGraph = false;
  std::size_t stageGraphThreads = 2;  ///< Pool width per stage graph.
  /// Telemetry switches (span tracing, metrics registry, memory
  /// accounting — src/obs/). Applied process-wide at analyzer
  /// construction; the environment forces SHHPASS_TRACE=path and
  /// SHHPASS_METRICS=1 (read once, first analyzer wins) turn telemetry
  /// on regardless of these fields. Telemetry is observation only: it
  /// can never change a decision (pinned by tests/test_obs.cpp).
  obs::TelemetryOptions telemetry;
};

/// The engine facade. Thread-compatible: one analyzer may serve concurrent
/// analyze() calls; runBatch parallelizes internally.
class PassivityAnalyzer {
 public:
  PassivityAnalyzer() : PassivityAnalyzer(AnalyzerOptions{}) {}
  explicit PassivityAnalyzer(AnalyzerOptions options);

  const AnalyzerOptions& options() const { return options_; }

  /// Per-stage diagnostic hook, invoked after each stage of single-shot
  /// analyze() calls (NOT during runBatch, where reports carry the same
  /// traces without cross-thread observer reentrancy).
  ///
  /// Thread-safe: may be called while analyze() runs on other threads —
  /// the observer slot is mutex-guarded and each analysis snapshots it
  /// once at entry (in-flight analyses keep notifying the observer they
  /// started with). Regression note: before PR 6 the slot was a bare
  /// std::function read concurrently with the setter — a data race
  /// ThreadSanitizer flags on the test_thread_pool_stress observer test.
  void setStageObserver(Pipeline::Observer observer);

  /// Analyze one system with the analyzer-default options.
  Result<AnalysisReport> analyze(const ds::DescriptorSystem& system) const;

  /// Analyze one request (honoring its option overrides and id).
  Result<AnalysisReport> analyze(const AnalysisRequest& request) const;

  /// Analyze many systems on the work-stealing shard scheduler
  /// (api/scheduler.hpp): the batch is planned into shards (large-order
  /// items get kernel-thread budgets, small items share batch slots),
  /// workers steal across shards, and results land in request order —
  /// element i decisionEquals what analyze(requests[i]) returns, for
  /// every worker count and steal schedule. Per-item StageTraces are
  /// owned by item-indexed report slots (never shared across items), so
  /// trace ordering inside each report is the canonical stage order
  /// regardless of concurrency.
  std::vector<Result<AnalysisReport>> runBatch(
      std::span<const AnalysisRequest> requests) const;

 private:
  Result<AnalysisReport> analyzeImpl(const ds::DescriptorSystem& system,
                                     const core::PassivityOptions& opts,
                                     const std::string& id,
                                     bool notifyObserver,
                                     std::size_t gemmBudget) const;

  AnalyzerOptions options_;
  mutable std::mutex observerMu_;  ///< Guards observer_ (set vs snapshot).
  Pipeline::Observer observer_;
};

}  // namespace shhpass::api
