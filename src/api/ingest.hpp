// Typed, no-throw netlist ingestion for the public API: SPICE-subset
// text (circuits/spice_parser.hpp) in, Status/Result out. Parse failures
// map to ErrorCode::NetlistParseError with every line-numbered typed
// diagnostic joined into the message; builder/stamping failures map
// through statusFromCurrentException like the rest of the API boundary
// (the PR-6 no-throw-in-api contract).
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "api/status.hpp"
#include "circuits/netlist.hpp"
#include "circuits/spice_parser.hpp"
#include "ds/descriptor.hpp"

namespace shhpass::api {

/// A parsed netlist plus its node-name table (dense index -> source
/// name; see circuits::ParsedNetlist::nodeNames).
struct LoadedNetlist {
  circuits::Netlist netlist{0};
  std::vector<std::string> nodeNames;
};

/// Parse SPICE-subset netlist text. Never throws; a failed parse returns
/// ErrorCode::NetlistParseError with the typed line-numbered diagnostics
/// joined into the message ("line 3: [BAD_VALUE] ...; line 7: ...").
Result<LoadedNetlist> parseNetlist(
    std::string_view text, const circuits::SpiceParseOptions& options = {});

/// Read and parse a netlist file. An unreadable file also reports
/// NetlistParseError (with the FILE_ERROR diagnostic in the message).
Result<LoadedNetlist> loadNetlist(
    const std::string& path, const circuits::SpiceParseOptions& options = {});

/// Stamp a netlist into its MNA impedance-form descriptor, mapping the
/// builder/stamper throws (e.g. a portless netlist) onto Status.
Result<ds::DescriptorSystem> stampNetlist(const circuits::Netlist& net);

/// loadNetlist + stampNetlist in one step: netlist file -> analyzable
/// descriptor system.
Result<ds::DescriptorSystem> loadSystem(
    const std::string& path, const circuits::SpiceParseOptions& options = {});

/// Build a netlist programmatically behind the Status boundary: `build`
/// runs against a fresh Netlist(numNodes) and every builder validation
/// throw (shorted element, zero value, out-of-range node or port) comes
/// back as a typed Status instead of a raw std::invalid_argument.
Result<circuits::Netlist> buildNetlist(
    int numNodes, const std::function<void(circuits::Netlist&)>& build);

}  // namespace shhpass::api
