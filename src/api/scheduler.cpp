#include "api/scheduler.hpp"

#include <atomic>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "linalg/blas.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace shhpass::api {

std::vector<Shard> planShards(const std::vector<std::size_t>& orders,
                              const SchedulerOptions& options) {
  const std::size_t groupSize =
      options.smallShardSize == 0 ? 1 : options.smallShardSize;
  std::vector<Shard> plan;
  Shard small;
  for (std::size_t i = 0; i < orders.size(); ++i) {
    if (orders[i] >= options.largeOrderFloor) {
      Shard big;
      big.items.push_back(i);
      big.large = true;
      // 0 = configured kernel width applies uncapped; any positive value
      // caps it (linalg::GemmThreadBudgetScope semantics).
      big.gemmBudget = options.gemmBudget;
      plan.push_back(std::move(big));
      continue;
    }
    small.items.push_back(i);
    if (small.items.size() == groupSize) {
      plan.push_back(std::move(small));
      small = Shard{};
    }
  }
  if (!small.items.empty()) plan.push_back(std::move(small));
  return plan;
}

namespace {

/// Per-worker deque of shard indices. Owners pop the FRONT (preserving
/// plan order on their home run), thieves steal from the BACK (classic
/// Chase-Lev orientation, minimizing contention on the owner's end) —
/// but with a plain mutex per deque: batch shards are coarse (whole
/// analyses), so queue operations are noise and the simple locking keeps
/// the structure trivially TSan-clean.
struct WorkerQueue {
  std::mutex mu;
  std::deque<std::size_t> shards;
};

}  // namespace

std::size_t runSharded(
    const std::vector<Shard>& plan, std::size_t workers,
    const std::function<void(std::size_t item, std::size_t shardIndex,
                             bool stolen)>& body,
    bool packFirstWorker) {
  if (plan.empty()) return 0;
  if (workers == 0) workers = 1;

  std::vector<WorkerQueue> queues(workers);
  std::vector<std::size_t> home(plan.size());
  for (std::size_t s = 0; s < plan.size(); ++s) {
    home[s] = packFirstWorker ? 0 : s % workers;
    queues[home[s]].shards.push_back(s);
  }

  std::atomic<std::size_t> steals{0};
  std::mutex errorMu;
  std::exception_ptr firstError;

  // No shard is ever re-enqueued, so a worker may exit as soon as one
  // full scan (own queue + every victim) finds nothing: no new work can
  // appear after that point.
  auto workerLoop = [&](std::size_t self) {
    for (;;) {
      std::size_t shardIndex = plan.size();  // sentinel
      bool stolen = false;
      {
        std::lock_guard<std::mutex> lock(queues[self].mu);
        if (!queues[self].shards.empty()) {
          shardIndex = queues[self].shards.front();
          queues[self].shards.pop_front();
        }
      }
      if (shardIndex == plan.size()) {
        for (std::size_t k = 1; k < workers && shardIndex == plan.size();
             ++k) {
          const std::size_t victim = (self + k) % workers;
          std::lock_guard<std::mutex> lock(queues[victim].mu);
          if (!queues[victim].shards.empty()) {
            shardIndex = queues[victim].shards.back();
            queues[victim].shards.pop_back();
            stolen = true;
          }
        }
        if (shardIndex == plan.size()) return;  // drained everywhere
        steals.fetch_add(1, std::memory_order_relaxed);
        obs::counterAdd(obs::Counter::ShardSteals);
      }
      const Shard& shard = plan[shardIndex];
      // Stolen shards get their own span name so steal events are
      // visible directly on the trace timeline.
      obs::ObsSpan span(stolen          ? "shard:stolen"
                        : shard.large   ? "shard:large"
                                        : "shard:small",
                        "scheduler");
      span.arg("items", static_cast<std::int64_t>(shard.items.size()));
      obs::counterAdd(obs::Counter::ShardsRun);
      obs::counterAdd(obs::Counter::BatchItems, shard.items.size());
      // The shard's kernel budget is in force for every item it runs.
      linalg::GemmThreadBudgetScope budget(shard.gemmBudget);
      for (std::size_t item : shard.items) {
        try {
          body(item, shardIndex, stolen);
        } catch (...) {
          std::lock_guard<std::mutex> lock(errorMu);
          if (!firstError) firstError = std::current_exception();
        }
      }
    }
  };

  if (workers == 1) {
    // Inline serial mode: identical code path, no crew. This is the
    // oracle every worker count is compared against.
    workerLoop(0);
  } else {
    std::vector<std::thread> crew;
    crew.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w)
      crew.emplace_back([&workerLoop, w] { workerLoop(w); });
    for (std::thread& t : crew) t.join();
  }
  if (firstError) std::rethrow_exception(firstError);
  return steals.load(std::memory_order_relaxed);
}

}  // namespace shhpass::api
