// Structure-preserving block-triangularization of a skew-Hamiltonian
// matrix (the "isotropic Arnoldi process" of Sec. 3.3, after Mehrmann &
// Watkins): an orthogonal symplectic Z with
//     Z^T W Z = [ Ebar  Theta; 0  Ebar^T ],   Theta skew-symmetric,
// with Ebar upper Hessenberg. For dense matrices this is realized by the
// O(n^3) Paige/Van Loan-style sweep of symplectic Householder reflectors
// and symplectic Givens rotations.
#pragma once

#include "linalg/matrix.hpp"

namespace shhpass::shh {

/// Result of the skew-Hamiltonian block-triangularization.
struct SkewHamiltonianTriangularization {
  linalg::Matrix w;  ///< Z^T W Z = [Ebar Theta; 0 Ebar^T] (2n x 2n).
  linalg::Matrix z;  ///< Orthogonal symplectic accumulation.

  /// Half-size n.
  std::size_t half() const { return w.rows() / 2; }
  /// The n x n upper-Hessenberg block Ebar.
  linalg::Matrix ebar() const;
  /// The n x n skew-symmetric block Theta.
  linalg::Matrix theta() const;
};

/// Block-triangularize a skew-Hamiltonian matrix. Throws
/// std::invalid_argument if `w` is not square of even size.
SkewHamiltonianTriangularization skewHamiltonianBlockTriangularize(
    const linalg::Matrix& w);

}  // namespace shhpass::shh
