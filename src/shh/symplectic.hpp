// Symplectic structure helpers: the 2n x 2n unit J = [0 I; -I 0],
// orthogonal-symplectic predicates, and the construction of an orthogonal
// symplectic basis from a Lagrangian invariant subspace (Eq. 22-23).
#pragma once

#include "linalg/matrix.hpp"

namespace shhpass::shh {

/// y = J x for the canonical J of half-size n (x has 2n rows). Cheap
/// row permutation + sign flips, no matrix product.
linalg::Matrix applyJ(const linalg::Matrix& x);

/// y = J^T x = -J x.
linalg::Matrix applyJt(const linalg::Matrix& x);

/// True iff S^T S = I and S^T J S = J within tol (S square, even size).
bool isOrthogonalSymplectic(const linalg::Matrix& s, double tol = 1e-10);

/// True iff S^T J S = J within tol (symplectic, not necessarily orthogonal).
bool isSymplectic(const linalg::Matrix& s, double tol = 1e-10);

/// Given an orthonormal basis [X1; X2] (2n x n) of a Lagrangian subspace
/// (X1^T X2 symmetric), return the orthogonal symplectic completion
/// Z1 = [X1 -X2; X2 X1]. Throws std::invalid_argument on shape mismatch.
linalg::Matrix lagrangianCompletion(const linalg::Matrix& x1,
                                    const linalg::Matrix& x2);

}  // namespace shhpass::shh
