#include "shh/stable_subspace.hpp"

#include <future>

#include "api/thread_pool.hpp"
#include "control/hamiltonian.hpp"
#include "control/lyapunov.hpp"
#include "linalg/blas.hpp"
#include "shh/symplectic.hpp"

namespace shhpass::shh {

using linalg::Matrix;

HamiltonianDecoupling decoupleHamiltonian(const Matrix& h, double imagTol,
                                          api::ThreadPool* pool) {
  HamiltonianDecoupling out;
  control::StableSubspace ss = control::stableInvariantSubspace(h, imagTol);
  out.reorder = ss.reorder;
  out.schur = ss.schur;
  if (!ss.ok) return out;
  const std::size_t np = ss.x1.rows();
  if (np == 0) {
    out.ok = true;
    out.z2 = Matrix();
    out.z2inv = Matrix();
    return out;
  }
  // Z1 = [X1 -X2; X2 X1] is orthogonal symplectic because [X1; X2] is an
  // orthonormal Lagrangian basis (X1^T X2 symmetric, see the paper's
  // remark after Eq. 22). Then Z1^T H Z1 = [Lambda Ahat; 0 -Lambda^T].
  // Both (2np)^3 products here ride the blocked BLAS-3 gemm (blas.hpp), as
  // does the Z2 assembly below — this congruence is the dominant dense
  // cost of the decoupling.
  Matrix z1 = lagrangianCompletion(ss.x1, ss.x2);
  Matrix t1 = linalg::multiply(linalg::atb(z1, h), false, z1, false);
  out.lambda = t1.block(0, 0, np, np);
  // In exact arithmetic this block IS the reordered Schur factor
  // ss.lambda; the congruence product only adds roundoff below its
  // quasi-diagonal (the same roundoff the block extraction already
  // discards in the lower-left quarter of t1). Inherit the exact
  // sparsity pattern so downstream block logic — the Lyapunov solver's
  // quasi-triangular fast path, the PR test's block scans — sees a true
  // quasi-triangular matrix.
  for (std::size_t i = 0; i < np; ++i)
    for (std::size_t jj = 0; jj + 1 < i; ++jj) out.lambda(i, jj) = 0.0;
  for (std::size_t i = 0; i + 1 < np; ++i)
    if (ss.lambda(i + 1, i) == 0.0) out.lambda(i + 1, i) = 0.0;
  Matrix ahat = t1.block(0, np, np, np);
  // Decouple: Lambda Y + Y Lambda^T + Ahat = 0; Z2 = Z1 [I Y; 0 I].
  out.y = control::solveLyapunov(out.lambda, ahat);
  Matrix s = Matrix::identity(2 * np);
  s.setBlock(0, np, out.y);
  Matrix sInv = Matrix::identity(2 * np);
  sInv.setBlock(0, np, -1.0 * out.y);
  if (pool != nullptr && pool->size() >= 2) {
    // The two transform products are independent; overlap one on a
    // borrowed worker. Each gemm is bit-deterministic for every thread
    // count, so the overlap cannot change the result. The future join
    // makes every write to z2inv happen-before the read below.
    std::promise<Matrix> z2invDone;
    std::future<Matrix> z2invFuture = z2invDone.get_future();
    pool->submit([&sInv, &z1, &z2invDone] {
      try {
        z2invDone.set_value(linalg::multiply(sInv, false, z1, true));
      } catch (...) {
        z2invDone.set_exception(std::current_exception());
      }
    });
    try {
      out.z2 = z1 * s;
    } catch (...) {
      // The task references stack locals; never unwind past it.
      z2invFuture.wait();
      throw;
    }
    out.z2inv = z2invFuture.get();
  } else {
    out.z2 = z1 * s;
    out.z2inv = linalg::multiply(sInv, false, z1, true);
  }
  out.ok = true;
  return out;
}

}  // namespace shhpass::shh
