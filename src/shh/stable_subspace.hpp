// Stage (22)-(23) of the paper: block-diagonalize a Hamiltonian matrix
// with no imaginary-axis eigenvalues into diag(Lambda, -Lambda^T) via an
// orthogonal symplectic Lagrangian completion followed by a symplectic
// (Lyapunov-based) decoupling.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/schur_multishift.hpp"
#include "linalg/schur_reorder.hpp"

namespace shhpass::api {
class ThreadPool;
}

namespace shhpass::shh {

/// Result of the Hamiltonian stable/antistable decoupling.
struct HamiltonianDecoupling {
  bool ok = false;        ///< False if the spectrum touches the imaginary
                          ///< axis (no clean stable/antistable split).
  linalg::Matrix lambda;  ///< np x np stable block (quasi-triangular).
  linalg::Matrix z2;      ///< Symplectic transform: z2inv * H * z2 =
                          ///< diag(lambda, -lambda^T).
  linalg::Matrix z2inv;   ///< Explicit inverse of z2 ([I -Y; 0 I] Z1^T).
  linalg::Matrix y;       ///< Lyapunov solution used in the decoupling.
  /// Reordering health of the underlying Eq.-(22) Schur split.
  linalg::ReorderReport reorder;
  /// Health of the real Schur factorization behind that split.
  linalg::SchurReport schur;
};

/// Decouple a Hamiltonian matrix H (2np x 2np). `imagTol` is passed to the
/// stable-invariant-subspace computation.
///
/// `pool` (optional, >= 2 workers) overlaps the two independent final
/// transform products (Z2 = Z1 S and Z2inv = S^{-1} Z1^T) on one borrowed
/// worker; null runs them inline. By the gemm determinism contract the
/// overlap is bit-identical to the inline path — both products are
/// computed by the same kernels on the same operands, only concurrently.
HamiltonianDecoupling decoupleHamiltonian(const linalg::Matrix& h,
                                          double imagTol = 1e-8,
                                          api::ThreadPool* pool = nullptr);

}  // namespace shhpass::shh
