// Skew-Hamiltonian/Hamiltonian (SHH) realization of Phi(s) = G(s) + G~(s)
// (Eq. 10 of the paper) and its structure predicates.
//
// The realization is stored as (E, A, C, D) only: the input map is tied to
// the structure as B = J C^T, which every stage of the pipeline preserves.
#pragma once

#include "ds/descriptor.hpp"
#include "linalg/matrix.hpp"

namespace shhpass::shh {

/// SHH realization: Phi(s) = D + C (sE - A)^{-1} J C^T with E
/// skew-Hamiltonian, A Hamiltonian, and D symmetric.
struct ShhRealization {
  linalg::Matrix e;  ///< 2n x 2n skew-Hamiltonian.
  linalg::Matrix a;  ///< 2n x 2n Hamiltonian.
  linalg::Matrix c;  ///< m x 2n output map.
  linalg::Matrix d;  ///< m x m symmetric feedthrough.

  std::size_t order() const { return a.rows(); }
  std::size_t ports() const { return c.rows(); }

  /// The structured input map B = J C^T.
  linalg::Matrix b() const;

  /// View as a plain descriptor system (for transfer evaluation etc.).
  ds::DescriptorSystem toDescriptor() const;

  /// Verify the SHH structure within `tol` (relative).
  bool checkStructure(double tol = 1e-9) const;
};

/// Intermediate skew-symmetric/symmetric realization produced by the
/// stage-1 deflation (Eq. 17): Phi(s) = D + C (sE - A)^{-1} (-C^T) with E
/// skew-symmetric and A symmetric.
struct SkewSymRealization {
  linalg::Matrix e;  ///< skew-symmetric.
  linalg::Matrix a;  ///< symmetric.
  linalg::Matrix c;  ///< output map; input map is -C^T.
  linalg::Matrix d;  ///< symmetric feedthrough.

  std::size_t order() const { return a.rows(); }
  ds::DescriptorSystem toDescriptor() const;
  bool checkStructure(double tol = 1e-9) const;
};

}  // namespace shhpass::shh
