#include "shh/isotropic_arnoldi.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "linalg/blas.hpp"

namespace shhpass::shh {

using linalg::Matrix;

namespace {

// The reduction below exploits the structure the symplectic similarity
// preserves, cutting roughly a third of the dense work:
//
//   * W stays skew-Hamiltonian throughout, so its bottom-right block is
//     W22 = W11^T at every step. The kernels therefore never maintain
//     W22 in memory: the Householder passes skip its rows/columns
//     outright (nothing ever reads them), and the one transform that
//     genuinely couples the halves — the symplectic Givens — reads the
//     W22 values it needs through the invariant (snapshots of the
//     pre-rotation W11 row/column). The final scrub rebuilds W22 from
//     W11^T exactly as before.
//   * Z stays orthogonal symplectic, i.e. Z = [A B; -B A]: its bottom
//     half is an exact (bitwise — negation and mirrored updates commute
//     with rounding) mirror of the top half, so only rows 0..n-1 are
//     accumulated and the driver reconstructs the rest once at the end.

// Apply the symplectic Householder U = diag(P, P), P = I - beta v v^T
// acting on index range [k0, n) of each half, as a similarity
// W <- U^T W U, and accumulate the TOP HALF of Z <- Z U. v is indexed
// from k0 (v[0] corresponds to row k0). W22 rows/columns are skipped:
// diag(P, P) never mixes the halves, so the skipped entries feed nothing
// that is maintained. The accumulate/update loops run row-by-row so
// memory is streamed along the row-major rows; each s[j] still sums
// v[i] * w(row_i, j) over ascending i, bit-identical to a
// column-by-column formulation.
void applySymplecticHouseholder(Matrix& w, Matrix& z, std::size_t n,
                                std::size_t k0, const std::vector<double>& v,
                                double beta) {
  if (beta == 0.0) return;
  const std::size_t n2 = 2 * n;
  const std::size_t len = v.size();
  std::vector<double> s(n2);
  // Rows of the top half (full width: W11 and W12 are both maintained).
  {
    std::fill(s.begin(), s.end(), 0.0);
    for (std::size_t i = 0; i < len; ++i)
      linalg::axpy(v[i], &w(k0 + i, 0), n2, s.data());
    for (std::size_t j = 0; j < n2; ++j) s[j] *= beta;
    for (std::size_t i = 0; i < len; ++i)
      linalg::axpy(-v[i], s.data(), n2, &w(k0 + i, 0));
  }
  // Rows of the bottom half, left columns only (W21; the W22 part is not
  // maintained).
  {
    std::fill(s.begin(), s.begin() + n, 0.0);
    for (std::size_t i = 0; i < len; ++i)
      linalg::axpy(v[i], &w(n + k0 + i, 0), n, s.data());
    for (std::size_t j = 0; j < n; ++j) s[j] *= beta;
    for (std::size_t i = 0; i < len; ++i)
      linalg::axpy(-v[i], s.data(), n, &w(n + k0 + i, 0));
  }
  // Columns: left-half columns over all rows (W11 and W21), right-half
  // columns over the top rows only (W12; the W22 part is not maintained).
  // Each row dot goes through dotQuad (fixed four-accumulator reduction
  // order, per-machine AVX2 dispatch — deterministic, just not
  // bit-identical to a single-accumulator loop).
  const auto reflectRowSegment = [&v, beta, len](double* seg) {
    const double acc = linalg::dotQuad(v.data(), seg, len) * beta;
    linalg::axpy(-acc, v.data(), len, seg);
  };
  for (std::size_t i = 0; i < n2; ++i) reflectRowSegment(&w(i, k0));
  for (std::size_t i = 0; i < n; ++i) reflectRowSegment(&w(i, n + k0));
  // Z accumulation, top rows only (both half column ranges).
  for (std::size_t off : {std::size_t{0}, n}) {
    for (std::size_t i = 0; i < n; ++i) reflectRowSegment(&z(i, off + k0));
  }
}

// Apply the symplectic Givens rotation in the (i, n+i) plane as a
// similarity W <- G^T W G and accumulate the top half of Z <- Z G, where
// G mixes coordinates i and n+i: [c s; -s c]. This is the one transform
// that couples the halves, so the W22 values it consumes are read
// through the skew-Hamiltonian invariant W22 = W11^T (snapshots of the
// pre-rotation row/column i of W11).
void applySymplecticGivens(Matrix& w, Matrix& z, std::size_t n, std::size_t i,
                           double cc, double ss) {
  const std::size_t r1 = i, r2 = n + i;
  // Pre-rotation snapshots of W11 row i and column i (the W22 surrogate
  // values the two passes below need), and of the (i, i) corner pair.
  std::vector<double> w11RowI(n), w11ColI(n);
  for (std::size_t k = 0; k < n; ++k) w11RowI[k] = w(r1, k);
  for (std::size_t k = 0; k < n; ++k) w11ColI[k] = w(k, r1);
  const double w12ii = w(r1, r2);

  // Rows: G^T from the left. Left-half columns update both rows (W11 row
  // i and W21 row i); right-half columns update only the top row (W12;
  // the W22 row is not maintained), reading W22(i, c) = W11(c, i) from
  // the snapshot.
  for (std::size_t j = 0; j < n; ++j) {
    const double a = w(r1, j), b = w(r2, j);
    w(r1, j) = cc * a + ss * b;
    w(r2, j) = -ss * a + cc * b;
  }
  for (std::size_t j = 0; j < n; ++j) {
    const double a = w(r1, n + j), b = w11ColI[j];
    w(r1, n + j) = cc * a + ss * b;
  }

  // Columns: G from the right. Top rows update both columns (W11 col i
  // and W12 col i). Bottom rows update only the left column (W21; the
  // W22 column is not maintained), reading the post-row-pass
  // W22(k, i): untouched by the row pass for k != i, so it equals the
  // pre-rotation W11(i, k); for k == i it is the row-pass output
  // -ss * W12(i,i) + cc * W11(i,i).
  for (std::size_t k = 0; k < n; ++k) {
    const double a = w(k, r1), b = w(k, r2);
    w(k, r1) = cc * a + ss * b;
    w(k, r2) = -ss * a + cc * b;
  }
  for (std::size_t k = 0; k < n; ++k) {
    const double a = w(n + k, r1);
    const double b = (k == i) ? (-ss * w12ii + cc * w11RowI[i])
                              : w11RowI[k];
    w(n + k, r1) = cc * a + ss * b;
  }

  // Z accumulation, top rows only.
  for (std::size_t k = 0; k < n; ++k) {
    const double a = z(k, r1), b = z(k, r2);
    z(k, r1) = cc * a + ss * b;
    z(k, r2) = -ss * a + cc * b;
  }
}

// Householder vector for x (len >= 1): P x = alpha e1. Returns beta and v
// (v[0] = 1 convention folded into unnormalized v with explicit beta).
double householderVector(const std::vector<double>& x,
                         std::vector<double>& v) {
  const std::size_t len = x.size();
  v = x;
  double scale = 0.0;
  for (double t : x) scale = std::max(scale, std::abs(t));
  if (scale == 0.0) return 0.0;
  double sigma = 0.0;
  for (std::size_t i = 0; i < len; ++i) {
    v[i] /= scale;
    sigma += v[i] * v[i];
  }
  double alpha = std::sqrt(sigma);
  if (v[0] > 0) alpha = -alpha;
  v[0] -= alpha;
  double vv = 0.0;
  for (double t : v) vv += t * t;
  if (vv == 0.0) return 0.0;
  return 2.0 / vv;
}

}  // namespace

Matrix SkewHamiltonianTriangularization::ebar() const {
  const std::size_t n = half();
  return w.block(0, 0, n, n);
}

Matrix SkewHamiltonianTriangularization::theta() const {
  const std::size_t n = half();
  return w.block(0, n, n, n);
}

SkewHamiltonianTriangularization skewHamiltonianBlockTriangularize(
    const Matrix& wIn) {
  if (!wIn.isSquare() || wIn.rows() % 2 != 0)
    throw std::invalid_argument(
        "skewHamiltonianBlockTriangularize: need even square matrix");
  const std::size_t n = wIn.rows() / 2;
  SkewHamiltonianTriangularization out;
  out.w = wIn;
  out.z = Matrix::identity(2 * n);
  Matrix& w = out.w;
  Matrix& z = out.z;

  std::vector<double> x, v;
  for (std::size_t j = 0; j + 1 < n; ++j) {
    // (1) Householder on [j+1, n): compress W(n+j+1 .. 2n-1, j) onto its
    // first entry W(n+j+1, j).
    const std::size_t len = n - (j + 1);
    if (len > 1) {
      x.assign(len, 0.0);
      for (std::size_t i = 0; i < len; ++i) x[i] = w(n + j + 1 + i, j);
      const double beta = householderVector(x, v);
      applySymplecticHouseholder(w, z, n, j + 1, v, beta);
    }
    // (2) Symplectic Givens in plane (j+1, n+j+1): zero W(n+j+1, j)
    // against W(j+1, j).
    {
      const double a = w(j + 1, j), b = w(n + j + 1, j);
      const double r = std::hypot(a, b);
      if (r > 0.0 && std::abs(b) > 0.0)
        applySymplecticGivens(w, z, n, j + 1, a / r, b / r);
    }
    // (3) Householder on [j+1, n): compress W(j+1 .. n-1, j) onto W(j+1, j)
    // (makes the top-left block upper Hessenberg).
    if (len > 1) {
      x.assign(len, 0.0);
      for (std::size_t i = 0; i < len; ++i) x[i] = w(j + 1 + i, j);
      const double beta = householderVector(x, v);
      applySymplecticHouseholder(w, z, n, j + 1, v, beta);
    }
  }

  // Reconstruct the unmaintained halves. Z is orthogonal symplectic,
  // Z = [A B; -B A]: the bottom rows are exact mirrors of the top rows
  // (the accumulation above only ever touched rows 0..n-1).
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t jj = 0; jj < n; ++jj) {
      z(n + i, jj) = -z(i, n + jj);
      z(n + i, n + jj) = z(i, jj);
    }

  // Scrub structural zeros: lower-left block and sub-Hessenberg entries of
  // the top-left block; enforce W22 = W11^T and skew-symmetry of Theta.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t jj = 0; jj < n; ++jj) w(n + i, jj) = 0.0;
  for (std::size_t i = 2; i < n; ++i)
    for (std::size_t jj = 0; jj + 1 < i; ++jj) w(i, jj) = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t jj = 0; jj < n; ++jj) w(n + i, n + jj) = w(jj, i);
  for (std::size_t i = 0; i < n; ++i) {
    w(i, n + i) = 0.0;
    for (std::size_t jj = i + 1; jj < n; ++jj) {
      const double t = 0.5 * (w(i, n + jj) - w(jj, n + i));
      w(i, n + jj) = t;
      w(jj, n + i) = -t;
    }
  }
  return out;
}

}  // namespace shhpass::shh
