#include "shh/isotropic_arnoldi.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace shhpass::shh {

using linalg::Matrix;

namespace {

// Apply the symplectic Householder U = diag(P, P), P = I - beta v v^T acting
// on index range [k0, n) of each half, as a similarity W <- U^T W U, and
// accumulate Z <- Z U. v is indexed from k0 (v[0] corresponds to row k0).
void applySymplecticHouseholder(Matrix& w, Matrix& z, std::size_t n,
                                std::size_t k0, const std::vector<double>& v,
                                double beta) {
  if (beta == 0.0) return;
  const std::size_t n2 = 2 * n;
  const std::size_t len = v.size();
  // Rows: for each half offset in {0, n}, rows k0+off .. k0+len-1+off.
  for (std::size_t off : {std::size_t{0}, n}) {
    for (std::size_t j = 0; j < n2; ++j) {
      double s = 0.0;
      for (std::size_t i = 0; i < len; ++i) s += v[i] * w(off + k0 + i, j);
      s *= beta;
      for (std::size_t i = 0; i < len; ++i) w(off + k0 + i, j) -= s * v[i];
    }
  }
  // Columns of W and of Z.
  for (std::size_t off : {std::size_t{0}, n}) {
    for (std::size_t i = 0; i < n2; ++i) {
      double s = 0.0;
      for (std::size_t jj = 0; jj < len; ++jj) s += v[jj] * w(i, off + k0 + jj);
      s *= beta;
      for (std::size_t jj = 0; jj < len; ++jj) w(i, off + k0 + jj) -= s * v[jj];
    }
    for (std::size_t i = 0; i < n2; ++i) {
      double s = 0.0;
      for (std::size_t jj = 0; jj < len; ++jj) s += v[jj] * z(i, off + k0 + jj);
      s *= beta;
      for (std::size_t jj = 0; jj < len; ++jj) z(i, off + k0 + jj) -= s * v[jj];
    }
  }
}

// Apply the symplectic Givens rotation in the (i, n+i) plane as a
// similarity W <- G^T W G and accumulate Z <- Z G, where
// G mixes coordinates i and n+i: [c s; -s c].
void applySymplecticGivens(Matrix& w, Matrix& z, std::size_t n, std::size_t i,
                           double cc, double ss) {
  const std::size_t n2 = 2 * n;
  const std::size_t r1 = i, r2 = n + i;
  // Rows: G^T from the left.
  for (std::size_t j = 0; j < n2; ++j) {
    const double a = w(r1, j), b = w(r2, j);
    w(r1, j) = cc * a + ss * b;
    w(r2, j) = -ss * a + cc * b;
  }
  // Columns: G from the right.
  for (std::size_t k = 0; k < n2; ++k) {
    const double a = w(k, r1), b = w(k, r2);
    w(k, r1) = cc * a + ss * b;
    w(k, r2) = -ss * a + cc * b;
  }
  for (std::size_t k = 0; k < z.rows(); ++k) {
    const double a = z(k, r1), b = z(k, r2);
    z(k, r1) = cc * a + ss * b;
    z(k, r2) = -ss * a + cc * b;
  }
}

// Householder vector for x (len >= 1): P x = alpha e1. Returns beta and v
// (v[0] = 1 convention folded into unnormalized v with explicit beta).
double householderVector(const std::vector<double>& x,
                         std::vector<double>& v) {
  const std::size_t len = x.size();
  v = x;
  double scale = 0.0;
  for (double t : x) scale = std::max(scale, std::abs(t));
  if (scale == 0.0) return 0.0;
  double sigma = 0.0;
  for (std::size_t i = 0; i < len; ++i) {
    v[i] /= scale;
    sigma += v[i] * v[i];
  }
  double alpha = std::sqrt(sigma);
  if (v[0] > 0) alpha = -alpha;
  v[0] -= alpha;
  double vv = 0.0;
  for (double t : v) vv += t * t;
  if (vv == 0.0) return 0.0;
  return 2.0 / vv;
}

}  // namespace

Matrix SkewHamiltonianTriangularization::ebar() const {
  const std::size_t n = half();
  return w.block(0, 0, n, n);
}

Matrix SkewHamiltonianTriangularization::theta() const {
  const std::size_t n = half();
  return w.block(0, n, n, n);
}

SkewHamiltonianTriangularization skewHamiltonianBlockTriangularize(
    const Matrix& wIn) {
  if (!wIn.isSquare() || wIn.rows() % 2 != 0)
    throw std::invalid_argument(
        "skewHamiltonianBlockTriangularize: need even square matrix");
  const std::size_t n = wIn.rows() / 2;
  SkewHamiltonianTriangularization out;
  out.w = wIn;
  out.z = Matrix::identity(2 * n);
  Matrix& w = out.w;
  Matrix& z = out.z;

  std::vector<double> x, v;
  for (std::size_t j = 0; j + 1 < n; ++j) {
    // (1) Householder on [j+1, n): compress W(n+j+1 .. 2n-1, j) onto its
    // first entry W(n+j+1, j).
    const std::size_t len = n - (j + 1);
    if (len > 1) {
      x.assign(len, 0.0);
      for (std::size_t i = 0; i < len; ++i) x[i] = w(n + j + 1 + i, j);
      const double beta = householderVector(x, v);
      applySymplecticHouseholder(w, z, n, j + 1, v, beta);
    }
    // (2) Symplectic Givens in plane (j+1, n+j+1): zero W(n+j+1, j)
    // against W(j+1, j).
    {
      const double a = w(j + 1, j), b = w(n + j + 1, j);
      const double r = std::hypot(a, b);
      if (r > 0.0 && std::abs(b) > 0.0)
        applySymplecticGivens(w, z, n, j + 1, a / r, b / r);
    }
    // (3) Householder on [j+1, n): compress W(j+1 .. n-1, j) onto W(j+1, j)
    // (makes the top-left block upper Hessenberg).
    if (len > 1) {
      x.assign(len, 0.0);
      for (std::size_t i = 0; i < len; ++i) x[i] = w(j + 1 + i, j);
      const double beta = householderVector(x, v);
      applySymplecticHouseholder(w, z, n, j + 1, v, beta);
    }
  }

  // Scrub structural zeros: lower-left block and sub-Hessenberg entries of
  // the top-left block; enforce W22 = W11^T and skew-symmetry of Theta.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t jj = 0; jj < n; ++jj) w(n + i, jj) = 0.0;
  for (std::size_t i = 2; i < n; ++i)
    for (std::size_t jj = 0; jj + 1 < i; ++jj) w(i, jj) = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t jj = 0; jj < n; ++jj) w(n + i, n + jj) = w(jj, i);
  for (std::size_t i = 0; i < n; ++i) {
    w(i, n + i) = 0.0;
    for (std::size_t jj = i + 1; jj < n; ++jj) {
      const double t = 0.5 * (w(i, n + jj) - w(jj, n + i));
      w(i, n + jj) = t;
      w(jj, n + i) = -t;
    }
  }
  return out;
}

}  // namespace shhpass::shh
