#include "shh/shh_pencil.hpp"

#include <algorithm>

#include "control/hamiltonian.hpp"
#include "shh/symplectic.hpp"

namespace shhpass::shh {

using linalg::Matrix;

Matrix ShhRealization::b() const { return applyJ(c.transposed()); }

ds::DescriptorSystem ShhRealization::toDescriptor() const {
  ds::DescriptorSystem sys;
  sys.e = e;
  sys.a = a;
  sys.b = b();
  sys.c = c;
  sys.d = d;
  return sys;
}

bool ShhRealization::checkStructure(double tol) const {
  if (!e.isSquare() || e.rows() != a.rows() || e.rows() % 2 != 0) return false;
  if (!control::isSkewHamiltonian(e, tol)) return false;
  if (!control::isHamiltonian(a, tol)) return false;
  return d.isSymmetric(tol * std::max(1.0, d.maxAbs()));
}

ds::DescriptorSystem SkewSymRealization::toDescriptor() const {
  ds::DescriptorSystem sys;
  sys.e = e;
  sys.a = a;
  sys.b = -1.0 * c.transposed();
  sys.c = c;
  sys.d = d;
  return sys;
}

bool SkewSymRealization::checkStructure(double tol) const {
  if (!e.isSquare() || e.rows() != a.rows()) return false;
  const double se = tol * std::max(1.0, e.maxAbs());
  const double sa = tol * std::max(1.0, a.maxAbs());
  return e.isSkewSymmetric(se) && a.isSymmetric(sa) &&
         d.isSymmetric(tol * std::max(1.0, d.maxAbs()));
}

}  // namespace shhpass::shh
