#include "shh/symplectic.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/blas.hpp"

namespace shhpass::shh {

using linalg::Matrix;

Matrix applyJ(const Matrix& x) {
  if (x.rows() % 2 != 0) throw std::invalid_argument("applyJ: odd row count");
  const std::size_t n = x.rows() / 2;
  Matrix y(x.rows(), x.cols());
  for (std::size_t j = 0; j < x.cols(); ++j)
    for (std::size_t i = 0; i < n; ++i) {
      y(i, j) = x(n + i, j);    // top of J picks the bottom half
      y(n + i, j) = -x(i, j);   // bottom of J is -I on the top half
    }
  return y;
}

Matrix applyJt(const Matrix& x) { return -1.0 * applyJ(x); }

bool isOrthogonalSymplectic(const Matrix& s, double tol) {
  if (!s.isSquare() || s.rows() % 2 != 0) return false;
  const std::size_t n2 = s.rows();
  Matrix sts = linalg::atb(s, s);
  if (!sts.approxEqual(Matrix::identity(n2), tol)) return false;
  return isSymplectic(s, tol);
}

bool isSymplectic(const Matrix& s, double tol) {
  if (!s.isSquare() || s.rows() % 2 != 0) return false;
  Matrix j = Matrix::symplecticJ(s.rows() / 2);
  Matrix stjs = linalg::atb(s, j * s);
  return stjs.approxEqual(j, tol * std::max(1.0, s.maxAbs() * s.maxAbs()));
}

Matrix lagrangianCompletion(const Matrix& x1, const Matrix& x2) {
  const std::size_t n = x1.rows();
  if (x2.rows() != n || x1.cols() != n || x2.cols() != n)
    throw std::invalid_argument("lagrangianCompletion: need n x n blocks");
  Matrix z(2 * n, 2 * n);
  z.setBlock(0, 0, x1);
  z.setBlock(n, 0, x2);
  z.setBlock(0, n, -1.0 * x2);
  z.setBlock(n, n, x1);
  return z;
}

}  // namespace shhpass::shh
