#include "ds/descriptor.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/blas.hpp"
#include "linalg/lu.hpp"
#include "linalg/qz.hpp"
#include "linalg/symmetric_eig.hpp"

namespace shhpass::ds {

using linalg::Matrix;

void DescriptorSystem::validate() const {
  const std::size_t n = a.rows();
  if (!a.isSquare() || !e.isSquare() || e.rows() != n)
    throw std::invalid_argument("DescriptorSystem: E, A must be n x n");
  if (b.rows() != n)
    throw std::invalid_argument("DescriptorSystem: B row count != n");
  if (c.cols() != n)
    throw std::invalid_argument("DescriptorSystem: C column count != n");
  if (d.rows() != c.rows() || d.cols() != b.cols())
    throw std::invalid_argument("DescriptorSystem: D shape mismatch");
}

TransferValue evalTransfer(const DescriptorSystem& sys, double sRe,
                           double sIm) {
  sys.validate();
  const std::size_t n = sys.order();
  TransferValue out{sys.d, Matrix(sys.numOutputs(), sys.numInputs())};
  if (n == 0) return out;
  // (sE - A) (xr + j xi) = B  <=>  [Re -Im; Im Re] [xr; xi] = [B; 0]
  // with Re = sRe*E - A, Im = sIm*E.
  Matrix reBlk = sRe * sys.e - sys.a;
  Matrix imBlk = sIm * sys.e;
  Matrix sysm(2 * n, 2 * n);
  sysm.setBlock(0, 0, reBlk);
  sysm.setBlock(n, n, reBlk);
  sysm.setBlock(0, n, -1.0 * imBlk);
  sysm.setBlock(n, 0, imBlk);
  Matrix rhs(2 * n, sys.numInputs());
  rhs.setBlock(0, 0, sys.b);
  linalg::LU lu(sysm);
  // Only an exact pivot collapse counts as a pole: the doubled system
  // mixes scales (w*E rows vs algebraic A rows), so any relative
  // min/max-pivot threshold rejects legitimate high-frequency points.
  Matrix x;
  try {
    x = lu.solve(rhs);
  } catch (const std::runtime_error&) {
    throw std::runtime_error("evalTransfer: s is a pole of G(s)");
  }
  out.re += sys.c * x.block(0, 0, n, sys.numInputs());
  out.im = sys.c * x.block(n, 0, n, sys.numInputs());
  return out;
}

DescriptorSystem adjoint(const DescriptorSystem& sys) {
  sys.validate();
  DescriptorSystem adj;
  adj.e = sys.e.transposed();
  adj.a = -1.0 * sys.a.transposed();
  adj.b = -1.0 * sys.c.transposed();
  adj.c = sys.b.transposed();
  adj.d = sys.d.transposed();
  return adj;
}

DescriptorSystem add(const DescriptorSystem& g1, const DescriptorSystem& g2) {
  g1.validate();
  g2.validate();
  if (g1.numInputs() != g2.numInputs() ||
      g1.numOutputs() != g2.numOutputs())
    throw std::invalid_argument("add: port dimension mismatch");
  const std::size_t n1 = g1.order(), n2 = g2.order();
  DescriptorSystem s;
  s.e = Matrix(n1 + n2, n1 + n2);
  s.e.setBlock(0, 0, g1.e);
  s.e.setBlock(n1, n1, g2.e);
  s.a = Matrix(n1 + n2, n1 + n2);
  s.a.setBlock(0, 0, g1.a);
  s.a.setBlock(n1, n1, g2.a);
  s.b = linalg::vcat(g1.b, g2.b);
  s.c = linalg::hcat(g1.c, g2.c);
  s.d = g1.d + g2.d;
  return s;
}

bool isRegular(const DescriptorSystem& sys) {
  return linalg::isRegularPencil(sys.e, sys.a);
}

bool hasStableFiniteModes(const DescriptorSystem& sys) {
  linalg::GeneralizedEigenvalues ge =
      linalg::generalizedEigenvalues(sys.e, sys.a);
  for (const auto& l : ge.finite)
    if (l.real() >= 0.0) return false;
  return true;
}

double popovMinEigenvalueDs(const DescriptorSystem& sys, double omega) {
  TransferValue g = evalTransfer(sys, 0.0, omega);
  const std::size_t m = g.re.rows();
  Matrix s = g.re + g.re.transposed();
  Matrix k = g.im - g.im.transposed();
  Matrix emb(2 * m, 2 * m);
  emb.setBlock(0, 0, s);
  emb.setBlock(m, m, s);
  emb.setBlock(0, m, -1.0 * k);
  emb.setBlock(m, 0, k);
  linalg::SymmetricEig eig(emb, /*wantVectors=*/false);
  return eig.eigenvalues().front();
}

}  // namespace shhpass::ds
