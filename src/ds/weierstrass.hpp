// Weierstrass (Kronecker) decomposition of a regular descriptor system
// (Sec. 2.4, Eq. 8-9 of the paper) and the "conventional" passivity test
// built on it — the baseline the paper compares against.
//
// Implementation note (see DESIGN.md): the paper uses GUPTRI; here the
// separation of finite and infinite structure is computed by shift-and-invert
// onto an ordered real Schur problem followed by a Sylvester decoupling and
// block scalings. Like any Weierstrass reduction this involves NON-ORTHOGONAL
// transformations; their conditioning is reported in the diagnostics, which
// is exactly the ill-conditioning the paper's proposed method avoids.
#pragma once

#include <vector>

#include "ds/descriptor.hpp"

namespace shhpass::ds {

/// Weierstrass canonical form of a regular DS:
///   L E Z = diag(I_q, N),  L A Z = diag(Ap, I),  N nilpotent,
/// giving G(s) = D + Cp (sI - Ap)^{-1} Bp + Cinf (sN - I)^{-1} Binf.
struct WeierstrassForm {
  linalg::Matrix ap;          ///< q x q finite-dynamics block.
  linalg::Matrix n;           ///< Nilpotent block of the infinite part.
  linalg::Matrix bp, cp;      ///< Proper-part port maps.
  linalg::Matrix binf, cinf;  ///< Infinite-part port maps.
  linalg::Matrix d;           ///< Original feedthrough.
  double condLeft = 1.0;      ///< Condition estimate of the left transform.
  double condRight = 1.0;     ///< Condition estimate of the right transform.

  std::size_t numFinite() const { return ap.rows(); }
  std::size_t numInfinite() const { return n.rows(); }

  /// Markov parameters of Eq. (3)/(9): M0 = -Cinf Binf, Mk = -Cinf N^k Binf.
  /// Returns M0..Mkmax.
  std::vector<linalg::Matrix> markovParameters(std::size_t kmax) const;
};

/// Compute the Weierstrass form. `infTol` is the relative eigenvalue
/// threshold separating infinite from finite modes of the shifted-inverse
/// operator. Throws std::runtime_error on a singular pencil.
WeierstrassForm weierstrass(const DescriptorSystem& sys, double infTol = 1e-6);

/// Result of the Weierstrass-based (baseline) passivity test.
struct WeierstrassPassivityResult {
  bool passive = false;
  bool properPartPassive = false;
  bool m1Psd = false;           ///< First Markov parameter PSD.
  bool higherMarkovZero = false;///< Mk = 0 for k >= 2.
  WeierstrassForm form;         ///< The decomposition used (diagnostics).
};

/// Baseline DS passivity test: decompose via Weierstrass, then test the
/// proper part (Hamiltonian certificate) and the Markov parameters
/// separately. This is the "Weierstrass decomposition" column of Table 1.
WeierstrassPassivityResult testPassivityWeierstrass(
    const DescriptorSystem& sys);

}  // namespace shhpass::ds
