#include "ds/svd_coords.hpp"

#include "linalg/blas.hpp"
#include "linalg/svd.hpp"

namespace shhpass::ds {

using linalg::Matrix;

Matrix SvdCoordinates::a11() const {
  return sys.a.block(0, 0, rankE, rankE);
}
Matrix SvdCoordinates::a12() const {
  return sys.a.block(0, rankE, rankE, sys.order() - rankE);
}
Matrix SvdCoordinates::a21() const {
  return sys.a.block(rankE, 0, sys.order() - rankE, rankE);
}
Matrix SvdCoordinates::a22() const {
  const std::size_t k = sys.order() - rankE;
  return sys.a.block(rankE, rankE, k, k);
}
Matrix SvdCoordinates::b1() const {
  return sys.b.block(0, 0, rankE, sys.numInputs());
}
Matrix SvdCoordinates::b2() const {
  return sys.b.block(rankE, 0, sys.order() - rankE, sys.numInputs());
}
Matrix SvdCoordinates::c1() const {
  return sys.c.block(0, 0, sys.numOutputs(), rankE);
}
Matrix SvdCoordinates::c2() const {
  return sys.c.block(0, rankE, sys.numOutputs(), sys.order() - rankE);
}

SvdCoordinates toSvdCoordinates(const DescriptorSystem& sys, double rankTol) {
  sys.validate();
  SvdCoordinates out;
  linalg::SVD svd(sys.e);
  out.rankE = svd.rank(rankTol, &out.rankReport);
  const std::size_t n = sys.order();
  // Full orthogonal U: range columns first, left-nullspace completion after.
  Matrix uFull = linalg::hcat(svd.range(rankTol), svd.leftNullspace(rankTol));
  // Right factor: leading rank columns of V, then kernel completion.
  Matrix vHead = svd.v().block(0, 0, n, out.rankE);
  Matrix vFull = linalg::hcat(vHead, svd.nullspace(rankTol));
  out.u = uFull;
  out.v = vFull;
  out.sys.e = linalg::multiply(linalg::atb(uFull, sys.e), false, vFull, false);
  out.sys.a = linalg::multiply(linalg::atb(uFull, sys.a), false, vFull, false);
  out.sys.b = linalg::atb(uFull, sys.b);
  out.sys.c = sys.c * vFull;
  out.sys.d = sys.d;
  // Scrub the exact zero blocks of E' (round-off hygiene for later tests).
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (i >= out.rankE || j >= out.rankE) out.sys.e(i, j) = 0.0;
  return out;
}

}  // namespace shhpass::ds
