#include "ds/weierstrass.hpp"

#include "ds/balance.hpp"
#include "ds/impulse_tests.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "control/pr_test.hpp"
#include "control/sylvester.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "linalg/qz.hpp"
#include "linalg/schur.hpp"
#include "linalg/schur_reorder.hpp"
#include "linalg/svd.hpp"

namespace shhpass::ds {

using linalg::Matrix;

std::vector<Matrix> WeierstrassForm::markovParameters(std::size_t kmax) const {
  std::vector<Matrix> mk;
  mk.reserve(kmax + 1);
  // (sN - I)^{-1} = -(I + sN + s^2 N^2 + ...)  =>  Mk = -Cinf N^k Binf.
  Matrix power = Matrix::identity(n.rows());
  for (std::size_t k = 0; k <= kmax; ++k) {
    if (n.rows() == 0) {
      mk.emplace_back(cinf.rows(), binf.cols());
    } else {
      mk.push_back(-1.0 * (cinf * power * binf));
      power = power * n;
    }
  }
  return mk;
}

WeierstrassForm weierstrass(const DescriptorSystem& sys, double infTol) {
  sys.validate();
  const std::size_t n = sys.order();
  WeierstrassForm wf;
  wf.d = sys.d;
  if (n == 0) return wf;

  // Shift-and-invert: M = (A - sigma E)^{-1} E maps finite eigenvalues of
  // the pencil to mu = 1/(lambda - sigma) and infinite ones to mu = 0.
  linalg::GeneralizedEigenvalues ge =
      linalg::generalizedEigenvalues(sys.e, sys.a, infTol);
  const double sigma = ge.shiftUsed;
  Matrix w = sys.a - sigma * sys.e;
  linalg::LU wlu(w);
  Matrix m = wlu.solve(sys.e);

  // Ordered Schur: finite modes (|mu| above the cut) first. A borderline
  // eigenvalue sitting exactly on the cut makes the decoupling Sylvester
  // equation singular; retry with a coarser cut, absorbing it into the
  // infinite group (its contribution is then treated as nilpotent noise).
  linalg::RealSchurResult rsOrig = linalg::realSchur(m);
  double muMax = 0.0;
  for (const auto& l : rsOrig.eigenvalues)
    muMax = std::max(muMax, std::abs(l));

  linalg::RealSchurResult rs;
  std::size_t q = 0, k = 0;
  Matrix m11, m22, r;
  bool decoupled = false;
  for (double cutScale : {1.0, 10.0, 100.0, 1000.0}) {
    rs = rsOrig;
    const double cut = cutScale * infTol * std::max(muMax, 1e-300);
    linalg::ReorderReport rep;
    q = linalg::reorderSchur(
        rs.t, rs.q,
        [cut](std::complex<double> l) { return std::abs(l) > cut; }, &rep);
    // A rejected swap means a borderline eigenvalue pair straddles the
    // cut and could not be exchanged: the "infinite" trailing block may
    // still hold a finite mode. Treat the attempt as failed and retry
    // with a coarser cut, which absorbs the pair into one group.
    if (rep.rejectedSwaps > 0) continue;
    k = n - q;
    m11 = rs.t.block(0, 0, q, q);
    m22 = rs.t.block(q, q, k, k);
    r = Matrix(q, k);
    if (q == 0 || k == 0) {
      decoupled = true;
      break;
    }
    Matrix m12 = rs.t.block(0, q, q, k);
    try {
      r = control::solveSylvester(m11, -1.0 * m22, -1.0 * m12);
      decoupled = true;
      break;
    } catch (const std::runtime_error&) {
      // widen the cut and retry
    }
  }
  if (!decoupled)
    throw std::runtime_error(
        "weierstrass: finite/infinite spectra could not be separated");
  Matrix zright = rs.q;  // orthogonal Schur basis
  Matrix s = Matrix::identity(n);
  s.setBlock(0, q, r);
  Matrix z = zright * s;  // right transform Z = Q_schur * S

  // Left transform L = (W Z)^{-1}; then L E Z = diag(M11, M22) and
  // L A Z = I + sigma diag(M11, M22).
  Matrix wz = w * z;
  linalg::LU wzlu(wz);
  if (wzlu.isSingular(1e-13))
    throw std::runtime_error("weierstrass: left transform singular");
  Matrix lb = wzlu.solve(sys.b);   // L B
  Matrix cz = sys.c * z;           // C Z

  // Finite block scaling: M11^{-1} (I block) gives Ap = sigma I + M11^{-1}.
  if (q > 0) {
    linalg::LU m11lu(m11);
    if (m11lu.isSingular(1e-13))
      throw std::runtime_error("weierstrass: finite block singular");
    wf.ap = sigma * Matrix::identity(q) + m11lu.inverse();
    wf.bp = m11lu.solve(lb.block(0, 0, q, sys.numInputs()));
    wf.cp = cz.block(0, 0, sys.numOutputs(), q);
  } else {
    wf.ap = Matrix();
    wf.bp = Matrix(0, sys.numInputs());
    wf.cp = Matrix(sys.numOutputs(), 0);
  }

  // Infinite block: E-part M22 (nilpotent up to round-off), A-part
  // I + sigma M22 invertible; scale left by its inverse to reach (N, I).
  if (k > 0) {
    Matrix ainf = Matrix::identity(k) + sigma * m22;
    linalg::LU ainfLu(ainf);
    wf.n = ainfLu.solve(m22);
    // Scrub the (tiny) diagonal so N is exactly nilpotent-triangular.
    for (std::size_t i = 0; i < k; ++i)
      for (std::size_t j = 0; j <= i; ++j) wf.n(i, j) = 0.0;
    wf.binf = ainfLu.solve(lb.block(q, 0, k, sys.numInputs()));
    wf.cinf = cz.block(0, q, sys.numOutputs(), k);
  } else {
    wf.n = Matrix();
    wf.binf = Matrix(0, sys.numInputs());
    wf.cinf = Matrix(sys.numOutputs(), 0);
  }

  wf.condRight = linalg::SVD(z).cond();
  wf.condLeft = linalg::SVD(wz).cond();
  return wf;
}

WeierstrassPassivityResult testPassivityWeierstrass(
    const DescriptorSystem& sysIn) {
  if (!sysIn.isSquareSystem())
    throw std::invalid_argument(
        "testPassivityWeierstrass: system must be square");
  WeierstrassPassivityResult res;
  // Balance first (exact r.s.e. + frequency scaling): raw physical units
  // put fast finite modes below the finite/infinite classification cut of
  // the shift-and-invert separation. The PSD/zero verdicts on the Markov
  // parameters are invariant under the positive frequency scaling.
  DescriptorSystem sys = balanceDescriptor(sysIn).sys;
  res.form = weierstrass(sys);
  const WeierstrassForm& wf = res.form;

  // Markov parameters: need M1 >= 0 and Mk = 0 for k >= 2 (Eq. 3).
  //
  // The explicit products Mk = -Cinf N^k Binf for k >= 2 pass through the
  // NON-ORTHOGONAL Weierstrass transforms (and through the decoupling
  // Sylvester solution, whose norm grows like 1/separation), so their
  // numerical noise floor can reach 1e-4 on balanced physical models —
  // exactly the ill-conditioning the paper criticizes. The grade-structure
  // question "Mk = 0 for k >= 2" is therefore decided by the robust
  // first-order rank test on the original pencil instead.
  std::vector<Matrix> mk = wf.markovParameters(2);
  res.higherMarkovZero = !hasGradeThreeChains(sys);
  Matrix m1 = mk[1];
  // The residue matrix at infinity must be symmetric PSD: a significant
  // skew part already violates positive realness. Tolerance scaled by the
  // transform conditioning (see above).
  const double eps = std::numeric_limits<double>::epsilon();
  const double m1Floor =
      std::max(1e-8 * std::max(1.0, m1.maxAbs()),
               1e3 * eps * wf.condLeft * std::max(1.0, m1.maxAbs()));
  const bool m1Symmetric = m1.isSymmetric(m1Floor);
  linalg::symmetrize(m1);
  res.m1Psd = m1Symmetric && linalg::isPositiveSemidefinite(m1);

  // Proper part: Gp(s) = (D + M0) + Cp (sI - Ap)^{-1} Bp.
  Matrix d0 = wf.d + mk[0];
  control::PrTestResult pr =
      control::testPositiveRealProper(wf.ap, wf.bp, wf.cp, d0);
  res.properPartPassive = pr.positiveReal;

  res.passive = res.properPartPassive && res.m1Psd && res.higherMarkovZero;
  return res;
}

}  // namespace shhpass::ds
