// Impulse-freeness, impulse observability and impulse controllability tests
// for descriptor systems via the SVD-coordinate characterizations of
// Sec. 2.5 of the paper (items 5 of each equivalence list).
#pragma once

#include "ds/descriptor.hpp"
#include "ds/svd_coords.hpp"
#include "linalg/staircase.hpp"
#include "linalg/svd.hpp"

namespace shhpass::ds {

/// Mode-structure census of a regular pencil (E, A):
/// n = q finite dynamic + (n - r) nondynamic + (r - q) impulsive.
struct ModeCensus {
  std::size_t order = 0;       ///< n
  std::size_t rankE = 0;       ///< r
  std::size_t finite = 0;      ///< q = deg det(-sE + A)
  std::size_t nondynamic = 0;  ///< n - r (grade-1 infinite modes)
  std::size_t impulsive = 0;   ///< r - q (grade >= 2 infinite modes)
};

/// Count finite / nondynamic / impulsive modes of the system's pencil.
ModeCensus censusModes(const DescriptorSystem& sys, double rankTol = -1.0);

/// The pair (E, A) is impulse-free iff in SVD coordinates A22 vanishes or is
/// nonsingular (equivalently, no grade >= 2 infinite eigenvectors exist).
bool isImpulseFree(const DescriptorSystem& sys, double rankTol = -1.0);

/// (E, A, C) is impulse observable iff [A22; C2] vanishes or has full
/// column rank in SVD coordinates.
bool isImpulseObservable(const DescriptorSystem& sys, double rankTol = -1.0);

/// (E, A, B) is impulse controllable iff [A22 B2] vanishes or has full
/// row rank in SVD coordinates.
bool isImpulseControllable(const DescriptorSystem& sys, double rankTol = -1.0);

/// The index of the pencil: 0 if E nonsingular, 1 if impulse-free with
/// singular E, and k >= 2 when grade-k infinite eigenvectors exist.
/// Computed from the nilpotency degree of the infinite part.
std::size_t pencilIndex(const DescriptorSystem& sys, double rankTol = -1.0);

/// True iff the pencil carries generalized eigenvector chains of grade >= 3
/// (index > 2). For a minimal G this is equivalent to some Markov parameter
/// Mk, k >= 2, being nonzero — forbidden for passive systems by Eq. (3).
/// Decided by first-order rank tests (no powers of shifted inverses), so it
/// is robust on large balanced pencils. Every rank decision goes through
/// the shared compression policy (linalg/staircase.hpp) and is recorded
/// into `report` / `stair` when non-null; the final extendability decision
/// uses a derived amplification-aware cutoff (documented at the call).
/// A non-null `eCompression` of sys.e (with range/corange/nullspace bases)
/// is reused instead of recompressing E.
bool hasGradeThreeChains(const DescriptorSystem& sys, double rankTol = -1.0,
                         linalg::RankReport* report = nullptr,
                         linalg::StaircaseReport* stair = nullptr,
                         const linalg::Compression* eCompression = nullptr);

}  // namespace shhpass::ds
