#include "ds/balance.hpp"

#include <algorithm>
#include <cmath>

namespace shhpass::ds {

using linalg::Matrix;

BalancedSystem balanceDescriptor(const DescriptorSystem& g, int sweeps) {
  g.validate();
  BalancedSystem out;
  out.sys = g;
  const std::size_t n = g.order();
  if (n == 0) return out;

  // Frequency scaling: make |E| comparable to |A|.
  const double en = out.sys.e.normFrobenius();
  const double an = out.sys.a.normFrobenius();
  if (en > 0.0 && an > 0.0) {
    out.freqScale = an / en;
    out.sys.e *= out.freqScale;
  }

  // Row/column max-norm equilibration over the stacked pencil [E; A].
  // Row scalings multiply B; column scalings multiply C. Scale factors are
  // snapped to powers of two so the scaling itself is exact.
  Matrix& e = out.sys.e;
  Matrix& a = out.sys.a;
  Matrix& b = out.sys.b;
  Matrix& c = out.sys.c;
  for (int pass = 0; pass < sweeps; ++pass) {
    for (std::size_t i = 0; i < n; ++i) {
      double rmax = 0.0;
      for (std::size_t j = 0; j < n; ++j)
        rmax = std::max({rmax, std::abs(e(i, j)), std::abs(a(i, j))});
      if (rmax <= 0.0) continue;
      const double f = std::exp2(-std::round(std::log2(rmax)));
      if (f == 1.0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        e(i, j) *= f;
        a(i, j) *= f;
      }
      for (std::size_t j = 0; j < b.cols(); ++j) b(i, j) *= f;
    }
    for (std::size_t j = 0; j < n; ++j) {
      double cmax = 0.0;
      for (std::size_t i = 0; i < n; ++i)
        cmax = std::max({cmax, std::abs(e(i, j)), std::abs(a(i, j))});
      if (cmax <= 0.0) continue;
      const double f = std::exp2(-std::round(std::log2(cmax)));
      if (f == 1.0) continue;
      for (std::size_t i = 0; i < n; ++i) {
        e(i, j) *= f;
        a(i, j) *= f;
      }
      for (std::size_t i = 0; i < c.rows(); ++i) c(i, j) *= f;
    }
  }
  return out;
}

}  // namespace shhpass::ds
