// Pencil balancing for descriptor systems: frequency scaling plus row/column
// equilibration. Both are exact restricted-system-equivalence operations
// (the transfer function is reproduced exactly up to the frequency
// reparameterization s -> s/freqScale), but they shrink the dynamic range
// of (E, A) by orders of magnitude for physical-unit models (Farads vs
// Henries vs Ohms), which is essential for the numerical health of the
// structured SHH pipeline.
#pragma once

#include "ds/descriptor.hpp"

namespace shhpass::ds {

/// A balanced copy of a descriptor system.
struct BalancedSystem {
  DescriptorSystem sys;    ///< Balanced realization.
  double freqScale = 1.0;  ///< tau with E_bal = tau * (scaled E): the
                           ///< balanced system is G_bal(s) = G(s * tau),
                           ///< so Markov parameter M1 of the original is
                           ///< tau * M1_bal.
};

/// Balance (E, A, B, C): first scale E by tau = |A|_F / |E|_F so both
/// pencil coefficients have comparable norms, then run a few sweeps of
/// row/column max-norm equilibration on the stacked pencil, carrying the
/// row scalings into B and the column scalings into C. D is untouched.
BalancedSystem balanceDescriptor(const DescriptorSystem& g, int sweeps = 4);

}  // namespace shhpass::ds
