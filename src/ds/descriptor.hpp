// Linear time-invariant continuous-time descriptor system (DS)
//     E x' = A x + B u,   y = C x + D u
// with E generally singular (Eq. 1 of the paper), plus the elementary
// system operations the passivity pipeline needs: transfer-function
// evaluation, adjoint, sum, and regularity/stability queries.
#pragma once

#include <complex>
#include <cstddef>

#include "linalg/matrix.hpp"

namespace shhpass::ds {

/// A descriptor system (E, A, B, C, D). E, A are n x n; B is n x m;
/// C is m_out x n; D is m_out x m.
struct DescriptorSystem {
  linalg::Matrix e, a, b, c, d;

  std::size_t order() const { return a.rows(); }
  std::size_t numInputs() const { return b.cols(); }
  std::size_t numOutputs() const { return c.rows(); }

  /// Square systems (inputs == outputs) are required for passivity, where
  /// u^T y is the instantaneous power injected into the system.
  bool isSquareSystem() const { return numInputs() == numOutputs(); }

  /// Throws std::invalid_argument if the block dimensions are inconsistent.
  void validate() const;
};

/// Value of G(s) at a complex frequency point, split into real and
/// imaginary parts (the library is real-arithmetic throughout).
struct TransferValue {
  linalg::Matrix re, im;
};

/// Evaluate G(s) = D + C (sE - A)^{-1} B at s = sRe + j sIm via one real
/// 2n x 2n solve. Throws std::runtime_error if s is (numerically) a pole.
TransferValue evalTransfer(const DescriptorSystem& sys, double sRe,
                           double sIm);

/// The adjoint system G~(s) = G(-s)^T, realized without inversion as
/// (E', A', B', C', D') = (E^T, -A^T, -C^T, B^T, D^T). Note that
/// D' + C'(sE' - A')^{-1}B' = D^T - B^T (sE^T + A^T)^{-1} C^T = G(-s)^T.
DescriptorSystem adjoint(const DescriptorSystem& sys);

/// Parallel interconnection G1(s) + G2(s) via block-diagonal stacking.
/// Requires matching input/output counts.
DescriptorSystem add(const DescriptorSystem& g1, const DescriptorSystem& g2);

/// True if the pencil (E, A) is regular (det(A - sE) not identically zero).
bool isRegular(const DescriptorSystem& sys);

/// True if all finite dynamic modes have Re(lambda) < 0 ("stable" in the
/// paper's sense; says nothing about impulsive modes).
bool hasStableFiniteModes(const DescriptorSystem& sys);

/// lambda_min of the Hermitian matrix G(jw) + G(jw)^* at frequency w; the
/// frequency-domain passivity margin probe used in tests and diagnostics.
double popovMinEigenvalueDs(const DescriptorSystem& sys, double omega);

}  // namespace shhpass::ds
