// Transformation of a descriptor system to SVD coordinates (Sec. 2.4,
// Eq. 7 of the paper): an orthogonal r.s.e. that exposes the rank
// structure of E and enables the convenient impulse tests of Sec. 2.5.
#pragma once

#include "ds/descriptor.hpp"
#include "linalg/svd.hpp"

namespace shhpass::ds {

/// A descriptor system in SVD coordinates: E' = U^T E V = diag(E11, 0) with
/// E11 = Sigma_r nonsingular, A' = U^T A V partitioned conformally, etc.
struct SvdCoordinates {
  DescriptorSystem sys;  ///< Transformed system (same transfer function).
  linalg::Matrix u, v;   ///< Orthogonal transforms used.
  std::size_t rankE = 0; ///< r = rank(E).
  /// Health of the rank(E) decision (shared policy, svd.hpp).
  linalg::RankReport rankReport;

  /// Conformal blocks of the transformed system.
  linalg::Matrix a11() const;
  linalg::Matrix a12() const;
  linalg::Matrix a21() const;
  linalg::Matrix a22() const;
  linalg::Matrix b1() const;
  linalg::Matrix b2() const;
  linalg::Matrix c1() const;
  linalg::Matrix c2() const;
};

/// Compute the SVD-coordinate form of a descriptor system. `rankTol` is the
/// relative tolerance for rank(E) (negative = SVD default).
SvdCoordinates toSvdCoordinates(const DescriptorSystem& sys,
                                double rankTol = -1.0);

}  // namespace shhpass::ds
