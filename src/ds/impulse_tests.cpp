#include "ds/impulse_tests.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "linalg/blas.hpp"
#include "linalg/lu.hpp"
#include "linalg/qr.hpp"
#include "linalg/qz.hpp"
#include "linalg/staircase.hpp"
#include "linalg/svd.hpp"

namespace shhpass::ds {

using linalg::Matrix;

ModeCensus censusModes(const DescriptorSystem& sys, double rankTol) {
  sys.validate();
  ModeCensus mc;
  mc.order = sys.order();
  mc.rankE = linalg::SVD(sys.e).rank(rankTol);
  linalg::GeneralizedEigenvalues ge =
      linalg::generalizedEigenvalues(sys.e, sys.a);
  mc.finite = ge.finite.size();
  mc.nondynamic = mc.order - mc.rankE;
  mc.impulsive = mc.rankE - mc.finite;
  return mc;
}

bool isImpulseFree(const DescriptorSystem& sys, double rankTol) {
  SvdCoordinates sc = toSvdCoordinates(sys, rankTol);
  const std::size_t k = sys.order() - sc.rankE;
  if (k == 0) return true;  // E nonsingular ("A22 vanishes" = empty block)
  // A22 must be nonsingular for the system to be impulse-free.
  return linalg::SVD(sc.a22()).rank(rankTol) == k;
}

bool isImpulseObservable(const DescriptorSystem& sys, double rankTol) {
  SvdCoordinates sc = toSvdCoordinates(sys, rankTol);
  const std::size_t k = sys.order() - sc.rankE;
  if (k == 0) return true;
  Matrix stack = linalg::vcat(sc.a22(), sc.c2());
  return linalg::SVD(stack).rank(rankTol) == k;  // full column rank
}

bool isImpulseControllable(const DescriptorSystem& sys, double rankTol) {
  SvdCoordinates sc = toSvdCoordinates(sys, rankTol);
  const std::size_t k = sys.order() - sc.rankE;
  if (k == 0) return true;
  Matrix stack = linalg::hcat(sc.a22(), sc.b2());
  return linalg::SVD(stack).rank(rankTol) == k;  // full row rank
}

bool hasGradeThreeChains(const DescriptorSystem& sys, double rankTol,
                         linalg::RankReport* report,
                         linalg::StaircaseReport* stair,
                         const linalg::Compression* eCompression) {
  // A grade-3 chain exists iff some grade-2 starter v1 (v1 in Ker E with
  // A v1 in Im E) admits v2 with E v2 = A v1 and A v2 in Im E. The general
  // solution is v2 = E^+ A v1 + K alpha (K = Ker E), so extendability
  // reduces to P A E^+ A v1 in Im(P A K) with P = I - R R^T, R = range(E).
  //
  // One code path for every size: all rank decisions go through the
  // compression policy (structure-picked kernels, shared tolerance rule,
  // RankReport recording). Historically this function carried three
  // hand-rolled cutoffs (orthonormalRange at 1e-10, a 1e-10*|A| zero
  // guard, and a 1e-8-relative nullspace test); they are unified below
  // into compression calls plus ONE derived cutoff for the final test.
  sys.validate();
  const Matrix& a = sys.a;
  const std::size_t n = sys.order();

  // ONE compression of E serves Ker E, Im E and E^+ (reused from the
  // caller when it already compressed the same E).
  linalg::Compression local;
  const linalg::Compression* ce = nullptr;
  if (eCompression != nullptr && eCompression->rows == n &&
      eCompression->cols == n &&
      eCompression->range.cols() == eCompression->rank &&
      eCompression->corange.cols() == eCompression->rank &&
      eCompression->nullspace.cols() == eCompression->nullity()) {
    ce = eCompression;
    if (stair != nullptr) ++stair->reusedCompressions;
  } else {
    linalg::CompressionOptions full;
    full.rankTol = rankTol;
    full.wantRange = full.wantCorange = full.wantNullspace = true;
    local = linalg::compress(sys.e, full, report, stair);
    ce = &local;
  }
  if (ce->nullity() == 0) return false;  // index 0
  const Matrix& k = ce->nullspace;
  const Matrix& range = ce->range;

  // Grade-2 starters: Ker of P A K. The SAME compression of P A K also
  // provides the orthonormal basis of Im(P A K) needed for the final
  // containment test (the legacy chain recomputed it via a second
  // factorization at its own cutoff).
  Matrix ak = a * k;
  Matrix outside = linalg::projectOutTwice(range, ak);
  linalg::CompressionOptions both;
  both.rankTol = rankTol;
  both.wantRange = both.wantNullspace = true;
  linalg::Compression cc = linalg::compress(outside, both, report, stair);
  if (stair != nullptr) ++stair->reusedCompressions;
  if (cc.nullity() == 0) return false;  // index <= 1
  Matrix v2 = k * cc.nullspace;

  // Extendability: P A E^+ A v2 must lie in Im(P A K). t2 is the residual
  // outside that span; a grade-3 chain exists iff t2 is column-rank
  // deficient (some combination of starters has zero residual).
  Matrix t = linalg::projectOutTwice(range,
                                     a * ce->applyPinv(a * v2));
  Matrix t2 = linalg::projectOutTwice(cc.range, t);

  // Derived cutoff for the final rank decision: t2 is assembled from
  // A E^+ A products, so its entries carry roundoff amplified by up to
  // |A|^2 / sigma_minKept(E) on top of the usual dim * eps * |t2| term.
  // Columns below that amplification floor are numerically zero residuals
  // (the legacy 1e-10*|A| guard approximated exactly this floor).
  const double eps = std::numeric_limits<double>::epsilon();
  const double anorm = a.maxAbs();
  const double sigMin =
      ce->rank > 0 ? std::max(ce->sigma[ce->rank - 1], 1e-300) : 1.0;
  const double dim =
      static_cast<double>(std::max(t2.rows(), t2.cols()));
  double cut = dim * eps * (anorm * anorm / sigMin + t2.maxAbs());
  if (rankTol >= 0.0) cut = std::max(cut, rankTol);
  linalg::CompressionOptions tOpts;
  tOpts.rankTol = cut;
  linalg::Compression ct = linalg::compress(t2, tOpts, report, stair);
  return ct.rank < v2.cols();
}

std::size_t pencilIndex(const DescriptorSystem& sys, double rankTol) {
  sys.validate();
  const std::size_t n = sys.order();
  if (n == 0) return 0;
  const std::size_t r = linalg::SVD(sys.e).rank(rankTol);
  if (r == n) return 0;
  if (isImpulseFree(sys, rankTol)) return 1;
  // General case: nilpotency degree of the infinite structure equals the
  // first k at which rank(M^k) stabilizes, M = (A - sigma E)^{-1} E.
  linalg::GeneralizedEigenvalues ge =
      linalg::generalizedEigenvalues(sys.e, sys.a);
  Matrix shifted = sys.a - ge.shiftUsed * sys.e;
  Matrix m = linalg::LU(shifted).solve(sys.e);
  std::size_t prevRank = n;
  Matrix power = m;
  for (std::size_t k = 1; k <= n; ++k) {
    // Powers of the nilpotent part decay geometrically, so the rank
    // plateau is detected against the power's own scale rather than the
    // shared policy cutoff (which would track the decaying sigma_max and
    // never see the plateau).  lint-ok: rank-tol-literal
    const std::size_t rk = linalg::SVD(power).rank(1e-10 * power.maxAbs());
    if (rk == prevRank) return k - 1;
    prevRank = rk;
    power = power * m;
  }
  return n;
}

}  // namespace shhpass::ds
