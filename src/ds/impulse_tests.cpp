#include "ds/impulse_tests.hpp"

#include <algorithm>
#include <stdexcept>

#include "linalg/blas.hpp"
#include "linalg/lu.hpp"
#include "linalg/qr.hpp"
#include "linalg/qz.hpp"
#include "linalg/svd.hpp"

namespace shhpass::ds {

using linalg::Matrix;

ModeCensus censusModes(const DescriptorSystem& sys, double rankTol) {
  sys.validate();
  ModeCensus mc;
  mc.order = sys.order();
  mc.rankE = linalg::SVD(sys.e).rank(rankTol);
  linalg::GeneralizedEigenvalues ge =
      linalg::generalizedEigenvalues(sys.e, sys.a);
  mc.finite = ge.finite.size();
  mc.nondynamic = mc.order - mc.rankE;
  mc.impulsive = mc.rankE - mc.finite;
  return mc;
}

bool isImpulseFree(const DescriptorSystem& sys, double rankTol) {
  SvdCoordinates sc = toSvdCoordinates(sys, rankTol);
  const std::size_t k = sys.order() - sc.rankE;
  if (k == 0) return true;  // E nonsingular ("A22 vanishes" = empty block)
  // A22 must be nonsingular for the system to be impulse-free.
  return linalg::SVD(sc.a22()).rank(rankTol) == k;
}

bool isImpulseObservable(const DescriptorSystem& sys, double rankTol) {
  SvdCoordinates sc = toSvdCoordinates(sys, rankTol);
  const std::size_t k = sys.order() - sc.rankE;
  if (k == 0) return true;
  Matrix stack = linalg::vcat(sc.a22(), sc.c2());
  return linalg::SVD(stack).rank(rankTol) == k;  // full column rank
}

bool isImpulseControllable(const DescriptorSystem& sys, double rankTol) {
  SvdCoordinates sc = toSvdCoordinates(sys, rankTol);
  const std::size_t k = sys.order() - sc.rankE;
  if (k == 0) return true;
  Matrix stack = linalg::hcat(sc.a22(), sc.b2());
  return linalg::SVD(stack).rank(rankTol) == k;  // full row rank
}

bool hasGradeThreeChains(const DescriptorSystem& sys, double rankTol) {
  // A grade-3 chain exists iff some grade-2 starter v1 (v1 in Ker E with
  // A v1 in Im E) admits v2 with E v2 = A v1 and A v2 in Im E. The general
  // solution is v2 = E^+ A v1 + K alpha (K = Ker E), so extendability
  // reduces to P A E^+ A v1 in Im(P A K) with P = I - R R^T, R = range(E).
  sys.validate();
  const Matrix& e = sys.e;
  const Matrix& a = sys.a;
  linalg::SVD esvd(e);
  Matrix k = esvd.nullspace(rankTol);
  if (k.cols() == 0) return false;  // index 0
  Matrix range = esvd.range(rankTol);
  auto projOut = [&](const Matrix& m) {
    return m - range * linalg::atb(range, m);
  };
  // Grade-2 starters.
  Matrix ak = a * k;
  Matrix outside = projOut(ak);
  Matrix coeff = linalg::SVD(outside).nullspace(rankTol);
  if (coeff.cols() == 0) return false;  // index <= 1
  Matrix v2 = k * coeff;
  Matrix t = projOut(a * (esvd.pseudoInverse(rankTol) * (a * v2)));
  Matrix s = projOut(ak);
  Matrix qs = linalg::orthonormalRange(s, 1e-10);
  Matrix t2 = t;
  if (qs.cols() > 0) t2 = t - qs * linalg::atb(qs, t);
  const double scale = std::max(t2.maxAbs(), 1e-300);
  const double tnorm = std::max(1.0, a.maxAbs());
  if (scale <= 1e-10 * tnorm) return true;  // every chain extends
  return linalg::SVD(t2).nullspace(1e-8 * scale).cols() > 0;
}

std::size_t pencilIndex(const DescriptorSystem& sys, double rankTol) {
  sys.validate();
  const std::size_t n = sys.order();
  if (n == 0) return 0;
  const std::size_t r = linalg::SVD(sys.e).rank(rankTol);
  if (r == n) return 0;
  if (isImpulseFree(sys, rankTol)) return 1;
  // General case: nilpotency degree of the infinite structure equals the
  // first k at which rank(M^k) stabilizes, M = (A - sigma E)^{-1} E.
  linalg::GeneralizedEigenvalues ge =
      linalg::generalizedEigenvalues(sys.e, sys.a);
  Matrix shifted = sys.a - ge.shiftUsed * sys.e;
  Matrix m = linalg::LU(shifted).solve(sys.e);
  std::size_t prevRank = n;
  Matrix power = m;
  for (std::size_t k = 1; k <= n; ++k) {
    const std::size_t rk = linalg::SVD(power).rank(1e-10 * power.maxAbs());
    if (rk == prevRank) return k - 1;
    prevRank = rk;
    power = power * m;
  }
  return n;
}

}  // namespace shhpass::ds
