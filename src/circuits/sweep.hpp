// Parametric sweep workloads: vary selected R/L/C element values across
// decades, stamp the MNA descriptor ONCE, re-stamp only the perturbed
// entries per point (MnaWorkspace — bit-identical to a full stampMna of
// the modified netlist), and fan the resulting AnalysisRequest batch
// through PassivityAnalyzer::runBatch's work-stealing shard scheduler to
// produce a passivity-margin map.
//
// ## Re-stamp bit-identity contract
//
// stampMna accumulates each G/C matrix entry with += / -= contributions
// in component order. MnaWorkspace records, per stamped entry, the
// ordered contributor list; setComponentValue replays exactly that
// accumulation sequence for the affected entries (and only those), so
// workspace.system() after any sequence of value changes is bit-for-bit
// equal to stampMna(netlist-with-those-values). IEEE arithmetic makes
// the replay exact: the same ordered operations on the same operands
// produce the same bits. tests/test_sweep_random.cpp pins this.
//
// ## Scheduler hand-off
//
// runSweep builds one AnalysisRequest per sweep point (ids
// "sweep-000001", ... in point order) and submits the whole batch to
// runBatch; results land in request order and must decisionEquals a
// sequential per-point analyze() loop for every worker count (the
// scheduler determinism contract). verifySweepSequential runs that
// oracle loop and counts mismatches — examples/sweep_margin_map.cpp and
// the bench pin the count at zero.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "api/analyzer.hpp"
#include "circuits/netlist.hpp"
#include "core/margin.hpp"
#include "ds/descriptor.hpp"

namespace shhpass::circuits {

/// Incremental MNA re-stamping: stamp once, then update element values
/// with per-entry replay of the original accumulation order so the
/// descriptor stays bit-identical to a full re-stamp.
class MnaWorkspace {
 public:
  /// Stamps `net` (throws std::invalid_argument like stampMna when the
  /// netlist has no ports).
  explicit MnaWorkspace(const Netlist& net);

  /// The descriptor for the current element values.
  const ds::DescriptorSystem& system() const { return sys_; }
  /// The netlist with the current element values.
  const Netlist& netlist() const { return net_; }

  /// Change the value of components()[componentIndex] and re-stamp only
  /// the E/A entries that component touches. Throws
  /// std::invalid_argument for an out-of-range index or a zero value
  /// (degenerate in MNA; negative values are allowed, as in the
  /// builder, for non-passive mutants).
  void setComponentValue(std::size_t componentIndex, double value);

 private:
  struct EntryRef {
    bool conductance = false;  ///< G block (A) vs capacitance block (E).
    std::size_t row = 0, col = 0;  ///< Dense indices inside the block.
  };
  struct Contribution {
    std::size_t component = 0;  ///< Contributor index, ascending.
    bool subtract = false;      ///< -= (off-diagonal) vs += (diagonal).
  };

  void recomputeEntry(const EntryRef& ref);

  Netlist net_;
  ds::DescriptorSystem sys_;
  std::size_t nv_ = 0;  ///< Non-ground node count (G/C block size).
  /// Inductor slot of component k (only meaningful for inductors).
  std::vector<std::size_t> inductorSlot_;
  /// Entries component k touches (empty for inductors: diagonal direct).
  std::vector<std::vector<EntryRef>> touched_;
  /// Ordered contributor list per stamped entry, keyed by
  /// (conductance, row, col) flattened to conductance*nv*nv + row*nv+col.
  std::vector<std::vector<Contribution>> contributors_;
};

/// One swept element: log-spaced multipliers around the netlist's
/// nominal value, from nominal*10^-decadesDown to nominal*10^+decadesUp.
struct SweepParameter {
  std::size_t component = 0;  ///< Index into Netlist::components().
  double decadesDown = 1.0;
  double decadesUp = 1.0;
  std::size_t points = 5;  ///< Samples along this axis (>= 1; a single
                           ///< point sits at the nominal value).
};

struct SweepSpec {
  /// Swept axes; the full sweep is their row-major cross product (the
  /// LAST parameter varies fastest).
  std::vector<SweepParameter> parameters;
  bool computeMargin = true;  ///< Also compute core::passivityMargin per
                              ///< point (sequential, after the batch).
  double marginTol = 1e-6;    ///< Bisection tolerance for the margin.
};

/// Absolute component values for every sweep point, row-major over the
/// parameter axes. Throws std::invalid_argument for an empty spec, zero
/// points on an axis, an out-of-range component index, or a duplicate
/// component across parameters.
std::vector<std::vector<double>> expandSweep(const Netlist& net,
                                             const SweepSpec& spec);

/// One analyzed sweep point.
struct SweepPointResult {
  std::vector<double> values;  ///< Absolute value per swept parameter.
  bool ok = false;             ///< Analysis produced a report.
  api::AnalysisReport report;  ///< Meaningful when ok.
  std::string error;           ///< Status string when !ok.
  bool marginDefined = false;  ///< core::PassivityMargin::defined.
  double margin = 0.0;         ///< Meaningful when marginDefined.
};

struct SweepResult {
  std::vector<std::size_t> components;  ///< Swept component indices.
  std::vector<SweepPointResult> points;  ///< Row-major over the axes.
  std::size_t passiveCount = 0;
  /// Points whose scheduled report fails decisionEquals against the
  /// sequential oracle. Filled by verifySweepSequential (runSweep leaves
  /// it 0 without running the oracle — the library does not silently
  /// double the work).
  std::size_t decisionMismatches = 0;
};

/// Build the batch: one AnalysisRequest per sweep point (id
/// "sweep-NNNNNN", 1-based, point order), each carrying the MnaWorkspace
/// re-stamped descriptor for that point's values. Request options are
/// left unset so the analyzer defaults apply to both the batch and the
/// sequential oracle identically.
std::vector<api::AnalysisRequest> buildSweepRequests(const Netlist& net,
                                                     const SweepSpec& spec);

/// Run the sweep: expand, re-stamp, runBatch through the shard
/// scheduler, then (when spec.computeMargin) a sequential margin pass
/// with the analyzer's rank tolerance. Throws only for malformed specs
/// (expandSweep) or portless netlists (MnaWorkspace); per-point analysis
/// failures land in SweepPointResult::error.
SweepResult runSweep(const Netlist& net, const SweepSpec& spec,
                     const api::PassivityAnalyzer& analyzer);

/// Sequential oracle: analyze every point one at a time on the same
/// analyzer (no batch scheduler) and count points whose scheduled report
/// fails decisionEquals. Stores the count into result.decisionMismatches
/// and returns it (0 is the contract).
std::size_t verifySweepSequential(const Netlist& net, const SweepSpec& spec,
                                  const api::PassivityAnalyzer& analyzer,
                                  SweepResult& result);

/// Margin-map JSON artifact (schema "shhpass-margin-map" v1): netlist
/// shape, swept parameters, per-point values/verdict/margin, and the
/// passive / mismatch counters.
std::string sweepMarginMapJson(const Netlist& net, const SweepSpec& spec,
                               const SweepResult& result);

}  // namespace shhpass::circuits
