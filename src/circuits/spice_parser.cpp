#include "circuits/spice_parser.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace shhpass::circuits {

namespace {

// Highest node index a numeric node name may carry. Far above any real
// netlist; bounds memory for the dense node tables against typos like
// "R1 1 99999999999 5".
constexpr std::size_t kMaxNodeIndex = 1u << 20;

struct Token {
  std::string text;
};

/// One logical card: tokens joined across '+' continuations, tagged with
/// the physical line of its first segment.
struct Card {
  std::size_t line = 0;
  std::vector<std::string> tokens;
};

bool isAllDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s)
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  return true;
}

bool isNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string toLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

/// Engineering-suffix value parse. Returns false when the token is not a
/// finite number (optionally suffixed and unit-tagged).
bool parseValueToken(const std::string& token, double* out) {
  const char* begin = token.c_str();
  char* end = nullptr;
  const double base = std::strtod(begin, &end);
  if (end == begin || !std::isfinite(base)) return false;
  std::string rest = toLower(std::string_view(end));
  double scale = 1.0;
  if (!rest.empty()) {
    if (rest.rfind("meg", 0) == 0) {
      scale = 1e6;
      rest.erase(0, 3);
    } else {
      switch (rest[0]) {
        case 'f': scale = 1e-15; rest.erase(0, 1); break;
        case 'p': scale = 1e-12; rest.erase(0, 1); break;
        case 'n': scale = 1e-9; rest.erase(0, 1); break;
        case 'u': scale = 1e-6; rest.erase(0, 1); break;
        case 'm': scale = 1e-3; rest.erase(0, 1); break;
        case 'k': scale = 1e3; rest.erase(0, 1); break;
        case 'g': scale = 1e9; rest.erase(0, 1); break;
        case 't': scale = 1e12; rest.erase(0, 1); break;
        default: break;  // plain unit letters ("ohm")
      }
    }
    // Whatever remains must be a unit annotation: letters only.
    for (char c : rest)
      if (!std::isalpha(static_cast<unsigned char>(c))) return false;
  }
  const double value = base * scale;
  if (!std::isfinite(value)) return false;
  *out = value;
  return true;
}

/// Shortest decimal that round-trips the double exactly (std::to_chars
/// without precision), so writeSpice -> parseSpice -> writeSpice is
/// byte-stable.
std::string formatValue(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

struct ElementCard {
  std::size_t line = 0;
  Component::Kind kind = Component::Kind::Resistor;
  std::string node1, node2, valueToken;
};

struct PortCard {
  std::size_t line = 0;
  std::string node;
};

class Parser {
 public:
  explicit Parser(const SpiceParseOptions& options) : options_(options) {}

  ParsedNetlist run(std::string_view text) {
    splitCards(text);
    classifyCards();
    resolveNodes();
    checkValuesAndTopology();
    return build();
  }

 private:
  void error(std::size_t line, SpiceErrorKind kind, std::string message) {
    result_.errors.push_back({line, kind, std::move(message)});
  }

  // ---------------------------------------------------------- card split
  void splitCards(std::string_view text) {
    std::size_t lineNo = 0;
    bool ended = false;
    std::size_t pos = 0;
    while (pos <= text.size() && !ended) {
      const std::size_t eol = text.find('\n', pos);
      std::string_view line = text.substr(
          pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
      pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
      ++lineNo;
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      // Inline comment.
      const std::size_t semi = line.find(';');
      if (semi != std::string_view::npos) line = line.substr(0, semi);
      // Full-line comment / blank.
      std::size_t first = line.find_first_not_of(" \t");
      if (first == std::string_view::npos) continue;
      if (line[first] == '*') continue;
      const bool continuation = line[first] == '+';
      if (continuation) ++first;
      // Tokenize.
      std::vector<std::string> tokens;
      std::size_t i = first;
      while (i < line.size()) {
        while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
        const std::size_t start = i;
        while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
        if (i > start) tokens.emplace_back(line.substr(start, i - start));
      }
      if (continuation) {
        if (cards_.empty()) {
          error(lineNo, SpiceErrorKind::UnknownCard,
                "continuation line with no preceding card");
          continue;
        }
        for (auto& t : tokens) cards_.back().tokens.push_back(std::move(t));
        continue;
      }
      if (tokens.empty()) continue;
      if (toLower(tokens[0]) == ".end") {
        if (tokens.size() > 1)
          error(lineNo, SpiceErrorKind::TrailingField,
                ".end takes no arguments");
        ended = true;
        continue;
      }
      cards_.push_back({lineNo, std::move(tokens)});
    }
  }

  // ------------------------------------------------------ classification
  void classifyCards() {
    for (const Card& card : cards_) {
      const std::string& head = card.tokens[0];
      if (head[0] == '.') {
        const std::string directive = toLower(head);
        if (directive == ".port") {
          if (card.tokens.size() < 2) {
            error(card.line, SpiceErrorKind::TruncatedCard,
                  ".port needs a node argument");
          } else if (card.tokens.size() > 2) {
            error(card.line, SpiceErrorKind::TrailingField,
                  ".port takes exactly one node");
          } else {
            ports_.push_back({card.line, card.tokens[1]});
          }
        } else {
          error(card.line, SpiceErrorKind::UnknownCard,
                "unknown directive '" + head + "' (subset: .port, .end)");
        }
        continue;
      }
      Component::Kind kind;
      switch (std::toupper(static_cast<unsigned char>(head[0]))) {
        case 'R': kind = Component::Kind::Resistor; break;
        case 'L': kind = Component::Kind::Inductor; break;
        case 'C': kind = Component::Kind::Capacitor; break;
        default:
          error(card.line, SpiceErrorKind::UnknownCard,
                "unknown element '" + head + "' (subset: R, L, C)");
          continue;
      }
      if (card.tokens.size() < 4) {
        error(card.line, SpiceErrorKind::TruncatedCard,
              "element card '" + head + "' needs <node> <node> <value>");
        continue;
      }
      if (card.tokens.size() > 4) {
        error(card.line, SpiceErrorKind::TrailingField,
              "element card '" + head + "' has trailing fields");
        continue;
      }
      elements_.push_back(
          {card.line, kind, card.tokens[1], card.tokens[2], card.tokens[3]});
    }
    if (elements_.empty() && result_.errors.empty())
      error(0, SpiceErrorKind::EmptyNetlist, "netlist has no element cards");
  }

  // ------------------------------------------------------ node resolution
  // Returns -1 on error (already reported). Ground is 0.
  int classifyNode(std::size_t line, const std::string& token,
                   bool fromElement) {
    const std::string lower = toLower(token);
    if (lower == "0" || lower == "gnd") return 0;
    for (char c : token) {
      if (!isNameChar(c)) {
        error(line, SpiceErrorKind::BadNodeName,
              "malformed node name '" + token + "'");
        return -1;
      }
    }
    if (isAllDigits(token)) {
      char* end = nullptr;
      const unsigned long long idx = std::strtoull(token.c_str(), &end, 10);
      if (idx > kMaxNodeIndex) {
        error(line, SpiceErrorKind::BadNodeName,
              "node index '" + token + "' out of range");
        return -1;
      }
      if (idx == 0) return 0;  // "00", "000": still ground
      const int node = static_cast<int>(idx);
      if (fromElement && numericFirstLine_.find(node) ==
                             numericFirstLine_.end())
        numericFirstLine_[node] = line;
      return node;
    }
    // Symbolic: remember first appearance; dense index assigned after the
    // scan (above the highest numeric node) so numeric/symbolic mixes
    // cannot collide.
    if (fromElement && symbolicOrder_.find(lower) == symbolicOrder_.end())
      symbolicOrder_[lower] = symbolicNames_.size(),
      symbolicNames_.push_back(token);
    return -2;  // placeholder; resolved in resolveNodes
  }

  void resolveNodes() {
    // First scan: classify element nodes, recording numeric indices and
    // symbolic first-appearance order.
    for (ElementCard& e : elements_) {
      (void)classifyNode(e.line, e.node1, /*fromElement=*/true);
      (void)classifyNode(e.line, e.node2, /*fromElement=*/true);
    }
    int maxNumeric = 0;
    for (const auto& [node, line] : numericFirstLine_)
      maxNumeric = std::max(maxNumeric, node);
    // Dense table: numeric nodes keep their own index; symbolic nodes
    // stack above in first-appearance order.
    numNodes_ = static_cast<std::size_t>(maxNumeric) + symbolicNames_.size();
    for (const auto& [lower, order] : symbolicOrder_)
      symbolicIndex_[lower] = maxNumeric + 1 + static_cast<int>(order);
  }

  /// -1: malformed (reported). -2: well-formed symbolic name no element
  /// ever used (only reachable from .port cards — element symbolics are
  /// all in the table by construction; the caller reports DanglingPort).
  int resolveNode(std::size_t line, const std::string& token) {
    const std::string lower = toLower(token);
    if (lower == "0" || lower == "gnd") return 0;
    auto sym = symbolicIndex_.find(lower);
    if (sym != symbolicIndex_.end()) return sym->second;
    if (isAllDigits(token)) {
      char* end = nullptr;
      const unsigned long long idx = std::strtoull(token.c_str(), &end, 10);
      if (idx <= kMaxNodeIndex) return static_cast<int>(idx);
    } else {
      bool wellFormed = true;
      for (char c : token)
        if (!isNameChar(c)) wellFormed = false;
      if (wellFormed) return -2;
    }
    error(line, SpiceErrorKind::BadNodeName,
          "malformed node name '" + token + "'");
    return -1;
  }

  // ------------------------------------------- value + topology checking
  void checkValuesAndTopology() {
    std::set<int> connected;
    for (ElementCard& e : elements_) {
      const int n1 = resolveNode(e.line, e.node1);
      const int n2 = resolveNode(e.line, e.node2);
      if (n1 < 0 || n2 < 0) continue;
      if (n1 == n2) {
        error(e.line, SpiceErrorKind::ShortedElement,
              "element shorted: both terminals on node '" + e.node1 + "'");
        continue;
      }
      double value = 0.0;
      if (!parseValueToken(e.valueToken, &value)) {
        error(e.line, SpiceErrorKind::BadValue,
              "unparseable element value '" + e.valueToken + "'");
        continue;
      }
      if (value == 0.0 || (value < 0.0 && !options_.allowActiveElements)) {
        error(e.line, SpiceErrorKind::NonPositiveValue,
              value == 0.0
                  ? "zero-valued element"
                  : "negative element value '" + e.valueToken +
                        "' (active elements need allowActiveElements)");
        continue;
      }
      resolved_.push_back({e.line, e.kind, n1, n2, value});
      connected.insert(n1);
      connected.insert(n2);
    }
    // Numeric gaps: every dense index 1..numNodes must be connected.
    // A gap is reported at the line where the next connected node above
    // it first appeared (the card that implied the gap).
    for (int node = 1; node <= static_cast<int>(numNodes_); ++node) {
      if (connected.count(node)) continue;
      std::size_t line = 0;
      for (int above = node + 1; above <= static_cast<int>(numNodes_);
           ++above) {
        auto it = numericFirstLine_.find(above);
        if (it != numericFirstLine_.end() && connected.count(above)) {
          line = it->second;
          break;
        }
      }
      if (line == 0 && !elements_.empty()) line = elements_.back().line;
      error(line, SpiceErrorKind::UnconnectedNode,
            "node " + std::to_string(node) +
                " is never connected by an element (dead MNA row)");
    }
    for (const PortCard& p : ports_) {
      const int node = resolveNode(p.line, p.node);
      if (node == -1) continue;
      if (node == -2) {
        error(p.line, SpiceErrorKind::DanglingPort,
              ".port node '" + p.node + "' is not connected by any element");
        continue;
      }
      if (node == 0) {
        error(p.line, SpiceErrorKind::PortAtGround, ".port at ground");
        continue;
      }
      if (!connected.count(node)) {
        error(p.line, SpiceErrorKind::DanglingPort,
              ".port node '" + p.node + "' is not connected by any element");
        continue;
      }
      resolvedPorts_.push_back(node);
    }
  }

  // -------------------------------------------------------------- build
  ParsedNetlist build() {
    if (!result_.errors.empty()) return std::move(result_);
    // Every precondition of the Netlist builder was checked above, so
    // the builder cannot throw here.
    Netlist net(static_cast<int>(numNodes_));
    for (const Resolved& r : resolved_) {
      switch (r.kind) {
        case Component::Kind::Resistor: net.addResistor(r.n1, r.n2, r.value);
          break;
        case Component::Kind::Inductor: net.addInductor(r.n1, r.n2, r.value);
          break;
        case Component::Kind::Capacitor:
          net.addCapacitor(r.n1, r.n2, r.value);
          break;
      }
    }
    for (int port : resolvedPorts_) net.addPort(port);
    result_.netlist = std::move(net);
    result_.nodeNames.assign(numNodes_ + 1, std::string());
    for (std::size_t i = 0; i <= numNodes_; ++i)
      result_.nodeNames[i] = std::to_string(i);
    for (const auto& [lower, index] : symbolicIndex_) {
      const std::size_t order = symbolicOrder_.at(lower);
      result_.nodeNames[static_cast<std::size_t>(index)] =
          symbolicNames_[order];
    }
    return std::move(result_);
  }

  struct Resolved {
    std::size_t line;
    Component::Kind kind;
    int n1, n2;
    double value;
  };

  SpiceParseOptions options_;
  ParsedNetlist result_;
  std::vector<Card> cards_;
  std::vector<ElementCard> elements_;
  std::vector<PortCard> ports_;
  std::map<int, std::size_t> numericFirstLine_;
  std::map<std::string, std::size_t> symbolicOrder_;  // lower -> order
  std::vector<std::string> symbolicNames_;            // order -> spelling
  std::map<std::string, int> symbolicIndex_;          // lower -> dense index
  std::size_t numNodes_ = 0;
  std::vector<Resolved> resolved_;
  std::vector<int> resolvedPorts_;
};

}  // namespace

const char* spiceErrorKindName(SpiceErrorKind kind) {
  switch (kind) {
    case SpiceErrorKind::FileError: return "FILE_ERROR";
    case SpiceErrorKind::UnknownCard: return "UNKNOWN_CARD";
    case SpiceErrorKind::TruncatedCard: return "TRUNCATED_CARD";
    case SpiceErrorKind::TrailingField: return "TRAILING_FIELD";
    case SpiceErrorKind::BadNodeName: return "BAD_NODE_NAME";
    case SpiceErrorKind::BadValue: return "BAD_VALUE";
    case SpiceErrorKind::NonPositiveValue: return "NON_POSITIVE_VALUE";
    case SpiceErrorKind::ShortedElement: return "SHORTED_ELEMENT";
    case SpiceErrorKind::DanglingPort: return "DANGLING_PORT";
    case SpiceErrorKind::PortAtGround: return "PORT_AT_GROUND";
    case SpiceErrorKind::UnconnectedNode: return "UNCONNECTED_NODE";
    case SpiceErrorKind::EmptyNetlist: return "EMPTY_NETLIST";
  }
  return "UNKNOWN";
}

std::string SpiceError::toString() const {
  std::string s = line == 0 ? std::string("netlist")
                            : "line " + std::to_string(line);
  s += ": [";
  s += spiceErrorKindName(kind);
  s += "] ";
  s += message;
  return s;
}

ParsedNetlist parseSpice(std::string_view text,
                         const SpiceParseOptions& options) {
  return Parser(options).run(text);
}

ParsedNetlist parseSpiceFile(const std::string& path,
                             const SpiceParseOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ParsedNetlist failed;
    failed.errors.push_back({0, SpiceErrorKind::FileError,
                             "cannot read netlist file '" + path + "'"});
    return failed;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parseSpice(buf.str(), options);
}

std::string writeSpice(const Netlist& net, std::string_view comment) {
  std::string out;
  if (!comment.empty()) {
    out += "* ";
    out += comment;
    out += "\n";
  }
  std::size_t nR = 0, nL = 0, nC = 0;
  for (const Component& c : net.components()) {
    switch (c.kind) {
      case Component::Kind::Resistor: out += 'R';
        out += std::to_string(++nR);
        break;
      case Component::Kind::Inductor: out += 'L';
        out += std::to_string(++nL);
        break;
      case Component::Kind::Capacitor: out += 'C';
        out += std::to_string(++nC);
        break;
    }
    out += ' ';
    out += std::to_string(c.n1);
    out += ' ';
    out += std::to_string(c.n2);
    out += ' ';
    out += formatValue(c.value);
    out += '\n';
  }
  for (int port : net.ports()) {
    out += ".port ";
    out += std::to_string(port);
    out += '\n';
  }
  out += ".end\n";
  return out;
}

}  // namespace shhpass::circuits
