#include "circuits/mna.hpp"

#include <stdexcept>

namespace shhpass::circuits {

using linalg::Matrix;

ds::DescriptorSystem stampMna(const Netlist& net) {
  if (net.ports().empty())
    throw std::invalid_argument("stampMna: netlist has no ports");
  const std::size_t nv = static_cast<std::size_t>(net.numNodes());
  const std::size_t nl = net.numInductors();
  const std::size_t n = nv + nl;
  const std::size_t m = net.ports().size();

  Matrix cmat(nv, nv), gmat(nv, nv), lmat(nl, nl), al(nv, nl);
  std::size_t lIdx = 0;
  for (const auto& comp : net.components()) {
    // Ground (node 0) rows/columns are dropped; shift indices by one.
    const int i = comp.n1 - 1;
    const int j = comp.n2 - 1;
    switch (comp.kind) {
      case Component::Kind::Resistor: {
        const double g = 1.0 / comp.value;
        if (i >= 0) gmat(i, i) += g;
        if (j >= 0) gmat(j, j) += g;
        if (i >= 0 && j >= 0) {
          gmat(i, j) -= g;
          gmat(j, i) -= g;
        }
        break;
      }
      case Component::Kind::Capacitor: {
        const double cv = comp.value;
        if (i >= 0) cmat(i, i) += cv;
        if (j >= 0) cmat(j, j) += cv;
        if (i >= 0 && j >= 0) {
          cmat(i, j) -= cv;
          cmat(j, i) -= cv;
        }
        break;
      }
      case Component::Kind::Inductor: {
        lmat(lIdx, lIdx) = comp.value;
        if (i >= 0) al(i, lIdx) = 1.0;
        if (j >= 0) al(j, lIdx) = -1.0;
        ++lIdx;
        break;
      }
    }
  }

  ds::DescriptorSystem sys;
  sys.e = Matrix(n, n);
  sys.e.setBlock(0, 0, cmat);
  sys.e.setBlock(nv, nv, lmat);
  sys.a = Matrix(n, n);
  sys.a.setBlock(0, 0, -1.0 * gmat);
  sys.a.setBlock(0, nv, -1.0 * al);
  sys.a.setBlock(nv, 0, al.transposed());
  sys.b = Matrix(n, m);
  for (std::size_t p = 0; p < m; ++p) sys.b(net.ports()[p] - 1, p) = 1.0;
  sys.c = sys.b.transposed();
  sys.d = Matrix(m, m);
  return sys;
}

}  // namespace shhpass::circuits
