#include "circuits/generators.hpp"

#include <cstdint>
#include <random>
#include <stdexcept>

#include "circuits/mna.hpp"

namespace shhpass::circuits {

using linalg::Matrix;

namespace {

// Node numbering of the ladder: main nodes m(k) and section midnodes x(k).
int mainNode(std::size_t k) { return k == 0 ? 1 : static_cast<int>(2 * k + 1); }
int midNode(std::size_t k) { return static_cast<int>(2 * k); }

Netlist ladderNetlistWithTail(const LadderOptions& opt, std::size_t tailNodes) {
  if (opt.sections == 0)
    throw std::invalid_argument("makeRlcLadder: need at least one section");
  const std::size_t s = opt.sections;
  const int baseNodes = static_cast<int>(2 * s + 1);
  Netlist net(baseNodes + static_cast<int>(tailNodes));
  net.addPort(mainNode(0));
  if (opt.twoPort) net.addPort(mainNode(s));
  for (std::size_t k = 1; k <= s; ++k) {
    const bool ll =
        opt.impulsiveEvery > 0 && (k % opt.impulsiveEvery == 0) && k > 1;
    if (ll) {
      net.addInductor(mainNode(k - 1), midNode(k), opt.l);
      // Damping resistor in parallel with the whole L-L pair: it does not
      // touch the (purely inductive, impulsive) midnode but keeps the LC
      // resonance of the section strictly in the left half plane, as the
      // paper's stability assumption requires.
      net.addResistor(mainNode(k - 1), mainNode(k), 10.0 * opt.r);
    } else {
      net.addResistor(mainNode(k - 1), midNode(k), opt.r);
    }
    net.addInductor(midNode(k), mainNode(k), opt.l);
    net.addCapacitor(mainNode(k), 0, opt.c);
  }
  if (opt.capAtPort) net.addCapacitor(mainNode(0), 0, opt.c);
  net.addResistor(mainNode(s), 0, opt.shuntR);
  // RC tail off the last main node: each node adds exactly one state.
  int prev = mainNode(s);
  for (std::size_t t = 0; t < tailNodes; ++t) {
    const int node = baseNodes + static_cast<int>(t) + 1;
    net.addResistor(prev, node, opt.r);
    net.addCapacitor(node, 0, opt.c);
    prev = node;
  }
  return net;
}

std::size_t ladderOrder(const LadderOptions& opt) {
  // States = node voltages + inductor currents.
  const std::size_t s = opt.sections;
  std::size_t inductors = s;
  if (opt.impulsiveEvery > 0)
    for (std::size_t k = 2; k <= s; ++k)
      if (k % opt.impulsiveEvery == 0) ++inductors;
  return (2 * s + 1) + inductors;
}

}  // namespace

Netlist makeRlcLadderNetlist(const LadderOptions& opt) {
  return ladderNetlistWithTail(opt, 0);
}

ds::DescriptorSystem makeRlcLadder(const LadderOptions& opt) {
  return stampMna(makeRlcLadderNetlist(opt));
}

ds::DescriptorSystem makeBenchmarkModel(std::size_t order, bool impulsive) {
  if (order < 5)
    throw std::invalid_argument("makeBenchmarkModel: order must be >= 5");
  LadderOptions opt;
  opt.impulsiveEvery = impulsive ? 3 : 0;
  opt.capAtPort = !impulsive;
  // Largest section count whose ladder order does not exceed the target;
  // the remainder is made up with single-state RC tail nodes.
  std::size_t s = 1;
  while (true) {
    LadderOptions probe = opt;
    probe.sections = s + 1;
    if (ladderOrder(probe) > order) break;
    ++s;
  }
  opt.sections = s;
  const std::size_t base = ladderOrder(opt);
  const std::size_t tail = order - base;
  ds::DescriptorSystem sys = stampMna(ladderNetlistWithTail(opt, tail));
  if (sys.order() != order)
    throw std::logic_error("makeBenchmarkModel: order bookkeeping error");
  return sys;
}

ds::DescriptorSystem makeRandomRlcNetwork(std::size_t nodes, unsigned seed,
                                          bool sprinkleImpulsive) {
  if (nodes < 2)
    throw std::invalid_argument("makeRandomRlcNetwork: need >= 2 nodes");
  // The mt19937 stream is pinned by the C++ standard, but the standard
  // DISTRIBUTIONS are not (their mapping is implementation-defined), so
  // values are mapped by hand: same seed => bit-identical network on every
  // platform. Benchmarks and golden verdicts rely on this.
  std::mt19937 gen(seed);
  auto val = [&gen]() {
    return 0.5 + 1.5 * (static_cast<double>(gen()) * 0x1.0p-32);
  };
  auto pick = [&gen, nodes]() {
    return 1 + static_cast<int>(gen() % static_cast<std::uint32_t>(nodes));
  };
  Netlist net(static_cast<int>(nodes));
  net.addPort(1);
  // DC leak to ground keeps all finite poles strictly stable.
  net.addResistor(static_cast<int>(nodes), 0, val() * 10.0);
  // Spanning chain of resistors guarantees connectivity.
  for (std::size_t k = 1; k < nodes; ++k)
    net.addResistor(static_cast<int>(k), static_cast<int>(k + 1), val());
  // Shunt capacitors (skip every 5th node when sprinkling singular-E spots;
  // those nodes still touch resistors, so they become nondynamic modes).
  for (std::size_t k = 1; k <= nodes; ++k) {
    if (sprinkleImpulsive && k % 5 == 0) continue;
    net.addCapacitor(static_cast<int>(k), 0, val() * 1e-6);
  }
  // Random extra branches: resistive and damped inductive cross links.
  // Inductive links go through a dedicated midnode in series with a small
  // resistor, so no pure-inductor loop (which would carry an undamped
  // circulating-current mode at s = 0) can ever form.
  const std::size_t extras = nodes;
  std::vector<std::pair<int, int>> links;
  for (std::size_t k = 0; k < extras; ++k) {
    int a = pick(), b = pick();
    if (a == b) continue;
    links.emplace_back(a, b);
  }
  std::size_t lCount = 0;
  for (std::size_t k = 0; k < links.size(); ++k)
    if (k % 2 == 0) ++lCount;
  Netlist full(static_cast<int>(nodes + lCount));
  full.addPort(1);
  for (const auto& comp : net.components()) {
    switch (comp.kind) {
      case Component::Kind::Resistor:
        full.addResistor(comp.n1, comp.n2, comp.value);
        break;
      case Component::Kind::Inductor:
        full.addInductor(comp.n1, comp.n2, comp.value);
        break;
      case Component::Kind::Capacitor:
        full.addCapacitor(comp.n1, comp.n2, comp.value);
        break;
    }
  }
  int nextNode = static_cast<int>(nodes) + 1;
  for (std::size_t k = 0; k < links.size(); ++k) {
    const auto [a, b] = links[k];
    if (k % 2 == 0) {
      full.addResistor(a, nextNode, 0.1 * val());
      full.addInductor(nextNode, b, val() * 1e-3);
      ++nextNode;
    } else {
      full.addResistor(a, b, val());
    }
  }
  return stampMna(full);
}

ds::DescriptorSystem makeNonPassiveNegativeResistor(std::size_t sections) {
  LadderOptions opt;
  opt.sections = sections;
  opt.capAtPort = true;
  Netlist net = makeRlcLadderNetlist(opt);
  // Rebuild with the shunt leak resistor negated (an active element that
  // makes Re Z(0) < 0 at the port, since it dominates the series path).
  Netlist bad(net.numNodes());
  for (int p : net.ports()) bad.addPort(p);
  std::size_t rSeen = 0;
  std::size_t rCount = 0;
  for (const auto& comp : net.components())
    if (comp.kind == Component::Kind::Resistor) ++rCount;
  const std::size_t rFlip = rCount - 1;  // the leak resistor is stamped last
  for (const auto& comp : net.components()) {
    Component c = comp;
    if (c.kind == Component::Kind::Resistor && rSeen++ == rFlip)
      c.value = -c.value;
    switch (c.kind) {
      case Component::Kind::Resistor:
        bad.addResistor(c.n1, c.n2, c.value);
        break;
      case Component::Kind::Inductor:
        bad.addInductor(c.n1, c.n2, c.value);
        break;
      case Component::Kind::Capacitor:
        bad.addCapacitor(c.n1, c.n2, c.value);
        break;
    }
  }
  return stampMna(bad);
}

ds::DescriptorSystem makeNonPassiveNegativeFeedthrough(std::size_t sections) {
  LadderOptions opt;
  opt.sections = sections;
  opt.capAtPort = true;
  ds::DescriptorSystem sys = makeRlcLadder(opt);
  // A -20 mOhm series element at the port: poles untouched, but
  // Re Z(j inf) = -0.02 < 0 violates positive realness.
  sys.d = -0.02 * Matrix::identity(sys.numInputs());
  return sys;
}

ds::DescriptorSystem makeNonPassiveIndefiniteM1() {
  // Two ports. Proper part: G_p(s) = I2 + I2/(s+1) (passive). Impulsive
  // part: two nilpotent 2x2 blocks contributing s*M1 with M1 = diag(1, -1).
  // State layout: [proper(2) | block1(2) | block2(2)].
  const std::size_t n = 6;
  ds::DescriptorSystem sys;
  sys.e = Matrix::zeros(n, n);
  sys.a = Matrix::zeros(n, n);
  sys.b = Matrix::zeros(n, 2);
  sys.c = Matrix::zeros(2, n);
  sys.d = Matrix::identity(2);
  // Proper block: E = I, A = -I, B = I, C = I.
  sys.e.setBlock(0, 0, Matrix::identity(2));
  sys.a.setBlock(0, 0, -1.0 * Matrix::identity(2));
  sys.b(0, 0) = 1.0;
  sys.b(1, 1) = 1.0;
  sys.c(0, 0) = 1.0;
  sys.c(1, 1) = 1.0;
  // Impulsive blocks: E = N = [0 1; 0 0], A = I, contribution to G is
  // c (sN - I)^{-1} b = -(c.b) - s (c N b). Choose c N b = -m1 so the
  // s-coefficient is +m1.
  auto addNilpotentBlock = [&](std::size_t at, std::size_t port, double m1) {
    sys.e(at, at + 1) = 1.0;
    sys.a(at, at) = 1.0;
    sys.a(at + 1, at + 1) = 1.0;
    sys.b(at + 1, port) = 1.0;
    sys.c(port, at) = -m1;
  };
  addNilpotentBlock(2, 0, 1.0);
  addNilpotentBlock(4, 1, -1.0);
  return sys;
}

ds::DescriptorSystem makeNonPassiveHigherOrderImpulse() {
  // One port: G(s) = 1 + 1/(s+1) + s^2 (M2 = 1 != 0 violates Eq. (3)).
  // 3-chain nilpotent block: E = N with N e2 = e1, N e3 = e2; A = I;
  // c (sN - I)^{-1} b = -(c.b) - s (c N b) - s^2 (c N^2 b).
  const std::size_t n = 4;
  ds::DescriptorSystem sys;
  sys.e = Matrix::zeros(n, n);
  sys.a = Matrix::zeros(n, n);
  sys.b = Matrix::zeros(n, 1);
  sys.c = Matrix::zeros(1, n);
  sys.d = Matrix{{1.0}};
  // Proper scalar block.
  sys.e(0, 0) = 1.0;
  sys.a(0, 0) = -1.0;
  sys.b(0, 0) = 1.0;
  sys.c(0, 0) = 1.0;
  // Nilpotent 3-chain on states 1..3.
  sys.e(1, 2) = 1.0;
  sys.e(2, 3) = 1.0;
  for (std::size_t i = 1; i < 4; ++i) sys.a(i, i) = 1.0;
  sys.b(3, 0) = 1.0;   // b hits the chain tail
  sys.c(0, 1) = -1.0;  // c reads the chain head: c N^2 b = -1 -> M2 = +1
  return sys;
}

}  // namespace shhpass::circuits
