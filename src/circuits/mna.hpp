// Modified nodal analysis (MNA) stamping of an RLC netlist into descriptor
// form (the paper's motivating model source, Sec. 1):
//   E x' = A x + B u,  y = C x + D u,  x = [node voltages; inductor currents]
//   E = diag(Cmat, Lmat),  A = [-G  -AL; AL^T  0],  B = [AP; 0],  C = B^T,
//   D = 0,
// where u are injected port currents and y the port voltages, so G(s) is the
// port impedance matrix Z(s). E is singular whenever some node carries no
// capacitance; nodes touching only inductors/ports produce impulsive modes.
#pragma once

#include "circuits/netlist.hpp"
#include "ds/descriptor.hpp"

namespace shhpass::circuits {

/// Stamp the netlist into impedance-form descriptor realization.
/// Throws std::invalid_argument if the netlist declares no ports.
ds::DescriptorSystem stampMna(const Netlist& net);

}  // namespace shhpass::circuits
