#include "circuits/sweep.hpp"

#include <cmath>
#include <cstdio>
#include <set>
#include <stdexcept>
#include <utility>

#include "api/json.hpp"
#include "circuits/mna.hpp"

namespace shhpass::circuits {

// ------------------------------------------------------------ MnaWorkspace

MnaWorkspace::MnaWorkspace(const Netlist& net)
    : net_(net),
      // Seed from the reference stamper so the starting bits (including
      // the -0.0s that -1.0 * gmat leaves on untouched G entries) are
      // identical to a full stamp by construction.
      sys_(stampMna(net)),
      nv_(static_cast<std::size_t>(net.numNodes())) {
  const auto& comps = net_.components();
  inductorSlot_.assign(comps.size(), 0);
  touched_.assign(comps.size(), {});
  contributors_.assign(2 * nv_ * nv_, {});
  std::size_t lIdx = 0;
  for (std::size_t k = 0; k < comps.size(); ++k) {
    const Component& comp = comps[k];
    if (comp.kind == Component::Kind::Inductor) {
      inductorSlot_[k] = lIdx++;
      continue;
    }
    const bool cond = comp.kind == Component::Kind::Resistor;
    const int i = comp.n1 - 1;
    const int j = comp.n2 - 1;
    auto touch = [&](int r, int c, bool subtract) {
      const EntryRef ref{cond, static_cast<std::size_t>(r),
                         static_cast<std::size_t>(c)};
      touched_[k].push_back(ref);
      const std::size_t flat =
          (cond ? nv_ * nv_ : 0) + ref.row * nv_ + ref.col;
      contributors_[flat].push_back({k, subtract});
    };
    // Same entry set and order as stampMna's accumulation.
    if (i >= 0) touch(i, i, false);
    if (j >= 0) touch(j, j, false);
    if (i >= 0 && j >= 0) {
      touch(i, j, true);
      touch(j, i, true);
    }
  }
}

void MnaWorkspace::recomputeEntry(const EntryRef& ref) {
  const std::size_t flat =
      (ref.conductance ? nv_ * nv_ : 0) + ref.row * nv_ + ref.col;
  const auto& comps = net_.components();
  // Replay stampMna's accumulation for this entry: contributors in
  // component order, += / -= exactly as stamped.
  double acc = 0.0;
  for (const Contribution& c : contributors_[flat]) {
    const Component& comp = comps[c.component];
    const double g = comp.kind == Component::Kind::Resistor
                         ? 1.0 / comp.value
                         : comp.value;
    if (c.subtract)
      acc -= g;
    else
      acc += g;
  }
  if (ref.conductance)
    sys_.a(ref.row, ref.col) = acc * -1.0;  // matches -1.0 * gmat
  else
    sys_.e(ref.row, ref.col) = acc;
}

void MnaWorkspace::setComponentValue(std::size_t componentIndex,
                                     double value) {
  net_.setComponentValue(componentIndex, value);  // validates
  const Component& comp = net_.components()[componentIndex];
  if (comp.kind == Component::Kind::Inductor) {
    const std::size_t slot = nv_ + inductorSlot_[componentIndex];
    sys_.e(slot, slot) = value;  // direct overwrite, as stampMna
    return;
  }
  for (const EntryRef& ref : touched_[componentIndex]) recomputeEntry(ref);
}

// ------------------------------------------------------------ expansion

namespace {

/// Log-spaced absolute values for one axis around the nominal value.
std::vector<double> axisValues(double nominal, const SweepParameter& p) {
  std::vector<double> out;
  out.reserve(p.points);
  for (std::size_t i = 0; i < p.points; ++i) {
    const double exponent =
        p.points == 1
            ? 0.0
            : -p.decadesDown + static_cast<double>(i) *
                                   (p.decadesDown + p.decadesUp) /
                                   static_cast<double>(p.points - 1);
    out.push_back(nominal * std::pow(10.0, exponent));
  }
  return out;
}

std::string pointId(std::size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "sweep-%06zu", index + 1);
  return std::string(buf);
}

const char* kindLetter(Component::Kind kind) {
  switch (kind) {
    case Component::Kind::Resistor: return "R";
    case Component::Kind::Inductor: return "L";
    case Component::Kind::Capacitor: return "C";
  }
  return "?";
}

}  // namespace

std::vector<std::vector<double>> expandSweep(const Netlist& net,
                                             const SweepSpec& spec) {
  if (spec.parameters.empty())
    throw std::invalid_argument("expandSweep: no sweep parameters");
  std::set<std::size_t> seen;
  std::vector<std::vector<double>> axes;
  for (const SweepParameter& p : spec.parameters) {
    if (p.component >= net.components().size())
      throw std::invalid_argument(
          "expandSweep: component index out of range");
    if (!seen.insert(p.component).second)
      throw std::invalid_argument(
          "expandSweep: duplicate component across parameters");
    if (p.points == 0)
      throw std::invalid_argument("expandSweep: axis with zero points");
    axes.push_back(axisValues(net.components()[p.component].value, p));
  }
  std::size_t total = 1;
  for (const auto& axis : axes) total *= axis.size();
  std::vector<std::vector<double>> points;
  points.reserve(total);
  // Row-major cross product: the LAST parameter varies fastest.
  std::vector<std::size_t> idx(axes.size(), 0);
  for (std::size_t p = 0; p < total; ++p) {
    std::vector<double> values(axes.size());
    for (std::size_t k = 0; k < axes.size(); ++k) values[k] = axes[k][idx[k]];
    points.push_back(std::move(values));
    for (std::size_t k = axes.size(); k-- > 0;) {
      if (++idx[k] < axes[k].size()) break;
      idx[k] = 0;
    }
  }
  return points;
}

// ------------------------------------------------------------ batch build

namespace {

std::vector<api::AnalysisRequest> buildRequests(
    const Netlist& net, const SweepSpec& spec,
    const std::vector<std::vector<double>>& points) {
  MnaWorkspace ws(net);
  std::vector<api::AnalysisRequest> requests;
  requests.reserve(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    for (std::size_t k = 0; k < spec.parameters.size(); ++k)
      ws.setComponentValue(spec.parameters[k].component, points[p][k]);
    api::AnalysisRequest req;
    req.id = pointId(p);
    req.system = ws.system();
    requests.push_back(std::move(req));
  }
  return requests;
}

}  // namespace

std::vector<api::AnalysisRequest> buildSweepRequests(const Netlist& net,
                                                     const SweepSpec& spec) {
  return buildRequests(net, spec, expandSweep(net, spec));
}

SweepResult runSweep(const Netlist& net, const SweepSpec& spec,
                     const api::PassivityAnalyzer& analyzer) {
  const std::vector<std::vector<double>> points = expandSweep(net, spec);
  const std::vector<api::AnalysisRequest> requests =
      buildRequests(net, spec, points);
  const std::vector<api::Result<api::AnalysisReport>> batch =
      analyzer.runBatch(requests);

  SweepResult result;
  for (const SweepParameter& p : spec.parameters)
    result.components.push_back(p.component);
  result.points.resize(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    SweepPointResult& point = result.points[i];
    point.values = points[i];
    if (batch[i].ok()) {
      point.ok = true;
      point.report = batch[i].value();
      if (point.report.passive) ++result.passiveCount;
    } else {
      point.error = batch[i].status().toString();
    }
    if (spec.computeMargin && point.ok) {
      const core::PassivityMargin margin = core::passivityMargin(
          requests[i].system, spec.marginTol,
          analyzer.options().passivity.rankTol);
      point.marginDefined = margin.defined;
      point.margin = margin.margin;
    }
  }
  return result;
}

std::size_t verifySweepSequential(const Netlist& net, const SweepSpec& spec,
                                  const api::PassivityAnalyzer& analyzer,
                                  SweepResult& result) {
  const std::vector<api::AnalysisRequest> requests =
      buildSweepRequests(net, spec);
  if (requests.size() != result.points.size())
    throw std::invalid_argument(
        "verifySweepSequential: result does not match the spec");
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const api::Result<api::AnalysisReport> oracle =
        analyzer.analyze(requests[i]);
    const SweepPointResult& point = result.points[i];
    if (oracle.ok() != point.ok ||
        (oracle.ok() && !oracle.value().decisionEquals(point.report)))
      ++mismatches;
  }
  result.decisionMismatches = mismatches;
  return mismatches;
}

std::string sweepMarginMapJson(const Netlist& net, const SweepSpec& spec,
                               const SweepResult& result) {
  api::json::Writer w;
  w.beginObject();
  w.key("schema").value("shhpass-margin-map");
  w.key("schemaVersion").value(std::size_t{1});
  w.key("netlist").beginObject();
  w.key("numNodes").value(static_cast<std::size_t>(net.numNodes()));
  w.key("components").value(net.components().size());
  w.key("ports").value(net.ports().size());
  w.endObject();
  w.key("parameters").beginArray();
  for (const SweepParameter& p : spec.parameters) {
    w.beginObject();
    w.key("component").value(p.component);
    w.key("kind").value(kindLetter(net.components()[p.component].kind));
    w.key("nominal").value(net.components()[p.component].value);
    w.key("decadesDown").value(p.decadesDown);
    w.key("decadesUp").value(p.decadesUp);
    w.key("points").value(p.points);
    w.endObject();
  }
  w.endArray();
  w.key("points").beginArray();
  for (const SweepPointResult& point : result.points) {
    w.beginObject();
    w.key("values").beginArray();
    for (double v : point.values) w.value(v);
    w.endArray();
    w.key("ok").value(point.ok);
    if (point.ok) {
      w.key("id").value(point.report.id);
      w.key("passive").value(point.report.passive);
      w.key("verdict").value(api::errorCodeName(point.report.verdict));
    } else {
      w.key("error").value(point.error);
    }
    w.key("marginDefined").value(point.marginDefined);
    if (point.marginDefined) w.key("margin").value(point.margin);
    w.endObject();
  }
  w.endArray();
  w.key("passiveCount").value(result.passiveCount);
  w.key("decisionMismatches").value(result.decisionMismatches);
  w.endObject();
  return w.str();
}

}  // namespace shhpass::circuits
