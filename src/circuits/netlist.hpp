// Minimal RLC netlist representation. Node 0 is ground and is eliminated
// during MNA stamping. Ports are current-driven (current injected into a
// node, returned through ground), so the stamped descriptor system realizes
// the impedance matrix Z(s) — positive real for any physical RLC network.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace shhpass::circuits {

/// One two-terminal element.
struct Component {
  enum class Kind { Resistor, Inductor, Capacitor };
  Kind kind;
  int n1 = 0;     ///< First node (0 = ground).
  int n2 = 0;     ///< Second node (0 = ground).
  double value = 0.0;  ///< Ohms / Henries / Farads; must be > 0 for a
                       ///< passive element (negative values are allowed to
                       ///< build non-passive mutants for testing).
};

/// A flat netlist with numbered nodes 1..numNodes (0 is ground).
class Netlist {
 public:
  explicit Netlist(int numNodes) : numNodes_(numNodes) {
    if (numNodes < 0) throw std::invalid_argument("Netlist: negative nodes");
  }

  int numNodes() const { return numNodes_; }
  const std::vector<Component>& components() const { return comps_; }
  const std::vector<int>& ports() const { return ports_; }

  Netlist& addResistor(int n1, int n2, double ohms) {
    return addComponent({Component::Kind::Resistor, n1, n2, ohms});
  }
  Netlist& addInductor(int n1, int n2, double henries) {
    return addComponent({Component::Kind::Inductor, n1, n2, henries});
  }
  Netlist& addCapacitor(int n1, int n2, double farads) {
    return addComponent({Component::Kind::Capacitor, n1, n2, farads});
  }

  /// Declare a current-injection port at `node` (vs ground).
  Netlist& addPort(int node) {
    checkNode(node);
    if (node == 0) throw std::invalid_argument("Netlist: port at ground");
    ports_.push_back(node);
    return *this;
  }

  std::size_t numInductors() const {
    std::size_t k = 0;
    for (const auto& c : comps_)
      if (c.kind == Component::Kind::Inductor) ++k;
    return k;
  }

 private:
  Netlist& addComponent(Component c) {
    checkNode(c.n1);
    checkNode(c.n2);
    if (c.n1 == c.n2)
      throw std::invalid_argument("Netlist: element shorted to itself");
    if (c.value == 0.0)
      throw std::invalid_argument("Netlist: zero-valued element");
    comps_.push_back(c);
    return *this;
  }
  void checkNode(int n) const {
    if (n < 0 || n > numNodes_)
      throw std::invalid_argument("Netlist: node index out of range");
  }

  int numNodes_;
  std::vector<Component> comps_;
  std::vector<int> ports_;
};

}  // namespace shhpass::circuits
