// Minimal RLC netlist representation. Node 0 is ground and is eliminated
// during MNA stamping. Ports are current-driven (current injected into a
// node, returned through ground), so the stamped descriptor system realizes
// the impedance matrix Z(s) — positive real for any physical RLC network.
#pragma once

#include <cstddef>
#include <vector>

namespace shhpass::circuits {

/// One two-terminal element.
struct Component {
  enum class Kind { Resistor, Inductor, Capacitor };
  Kind kind;
  int n1 = 0;     ///< First node (0 = ground).
  int n2 = 0;     ///< Second node (0 = ground).
  double value = 0.0;  ///< Ohms / Henries / Farads; must be > 0 for a
                       ///< passive element (negative values are allowed to
                       ///< build non-passive mutants for testing).
};

/// A flat netlist with numbered nodes 1..numNodes (0 is ground).
class Netlist {
 public:
  /// Throws std::invalid_argument if `numNodes` is negative.
  explicit Netlist(int numNodes);

  int numNodes() const { return numNodes_; }
  const std::vector<Component>& components() const { return comps_; }
  const std::vector<int>& ports() const { return ports_; }

  Netlist& addResistor(int n1, int n2, double ohms) {
    return addComponent({Component::Kind::Resistor, n1, n2, ohms});
  }
  Netlist& addInductor(int n1, int n2, double henries) {
    return addComponent({Component::Kind::Inductor, n1, n2, henries});
  }
  Netlist& addCapacitor(int n1, int n2, double farads) {
    return addComponent({Component::Kind::Capacitor, n1, n2, farads});
  }

  /// Declare a current-injection port at `node` (vs ground). Throws
  /// std::invalid_argument for ground or an out-of-range node.
  Netlist& addPort(int node);

  /// Change the value of components()[index] in place (parametric
  /// sweeps). Throws std::invalid_argument for an out-of-range index or
  /// a zero value; negative values are allowed, as in addComponent, to
  /// build non-passive mutants.
  Netlist& setComponentValue(std::size_t index, double value);

  std::size_t numInductors() const;

 private:
  /// Validates node indices and rejects shorted or zero-valued elements
  /// (throws std::invalid_argument).
  Netlist& addComponent(Component c);
  void checkNode(int n) const;

  int numNodes_;
  std::vector<Component> comps_;
  std::vector<int> ports_;
};

}  // namespace shhpass::circuits
