#include "circuits/netlist.hpp"

#include <stdexcept>

namespace shhpass::circuits {

Netlist::Netlist(int numNodes) : numNodes_(numNodes) {
  if (numNodes < 0) throw std::invalid_argument("Netlist: negative nodes");
}

Netlist& Netlist::addPort(int node) {
  checkNode(node);
  if (node == 0) throw std::invalid_argument("Netlist: port at ground");
  ports_.push_back(node);
  return *this;
}

Netlist& Netlist::setComponentValue(std::size_t index, double value) {
  if (index >= comps_.size())
    throw std::invalid_argument("Netlist: component index out of range");
  if (value == 0.0)
    throw std::invalid_argument("Netlist: zero-valued element");
  comps_[index].value = value;
  return *this;
}

std::size_t Netlist::numInductors() const {
  std::size_t k = 0;
  for (const Component& c : comps_)
    if (c.kind == Component::Kind::Inductor) ++k;
  return k;
}

Netlist& Netlist::addComponent(Component c) {
  checkNode(c.n1);
  checkNode(c.n2);
  if (c.n1 == c.n2)
    throw std::invalid_argument("Netlist: element shorted to itself");
  if (c.value == 0.0)
    throw std::invalid_argument("Netlist: zero-valued element");
  comps_.push_back(c);
  return *this;
}

void Netlist::checkNode(int n) const {
  if (n < 0 || n > numNodes_)
    throw std::invalid_argument("Netlist: node index out of range");
}

}  // namespace shhpass::circuits
