// Netlist is header-only; this translation unit anchors the module.
#include "circuits/netlist.hpp"
