// Parameterized circuit-model generators for the experiments: RLC ladders
// and meshes of configurable order, with or without impulsive modes, plus
// non-passive mutants for negative testing.
#pragma once

#include "circuits/netlist.hpp"
#include "ds/descriptor.hpp"

namespace shhpass::circuits {

/// Options for the RLC interconnect ladder generator.
struct LadderOptions {
  std::size_t sections = 5;    ///< Number of RL-series / C-shunt sections.
  double r = 1.0;              ///< Series resistance per section (Ohm).
  double l = 1e-3;             ///< Series inductance per section (H).
  double c = 1e-6;             ///< Shunt capacitance per section (F).
  bool twoPort = false;        ///< Port at both ends instead of one.
  /// Every `impulsiveEvery`-th section replaces its series resistor by an
  /// inductor, leaving that section's midnode purely inductive. Each such
  /// node is an impulsive (grade-2 infinite) mode of the stamped DS. 0 =
  /// no extra impulsive sections.
  std::size_t impulsiveEvery = 0;
  /// Shunt capacitor at the port node. Without it the port sees the series
  /// inductor at infinite frequency, so Z(s) ~ s*l has a pole at infinity:
  /// the DS is impulsive with M1 = l >= 0. With it the DS is impulse-free
  /// (index 1, nondynamic modes only).
  bool capAtPort = false;
  /// Shunt (leak) resistance to ground at the far end of the ladder. This
  /// gives the network a DC path so all finite poles are strictly in the
  /// left half plane (the paper assumes lambda(E, A) in C_- union {inf}).
  double shuntR = 50.0;
};

/// Driving-point/transfer impedance ladder: port - (R-L) - node - C|| - ...
/// The result is passive by construction (physical RLC network).
ds::DescriptorSystem makeRlcLadder(const LadderOptions& opt);

/// The netlist behind makeRlcLadder (for inspection / reuse).
Netlist makeRlcLadderNetlist(const LadderOptions& opt);

/// A descriptor system of exact order `order` (state count) built from an
/// RLC ladder; `impulsive` switches the impulsive-node pattern on. Used by
/// the Table 1 / Fig. 2 benchmark sweep.
ds::DescriptorSystem makeBenchmarkModel(std::size_t order, bool impulsive);

/// Random connected RLC network with `nodes` nodes, seeded deterministically.
/// Each node gets a shunt capacitor unless `sprinkleImpulsive` removes some;
/// extra R and L branches are sprinkled across random node pairs.
ds::DescriptorSystem makeRandomRlcNetwork(std::size_t nodes, unsigned seed,
                                          bool sprinkleImpulsive = false);

/// Non-passive mutant: an RLC ladder whose shunt leak resistor is negated
/// (an active element). Depending on strength this makes the network
/// unstable or merely non-positive-real; either way it is not passive.
ds::DescriptorSystem makeNonPassiveNegativeResistor(std::size_t sections);

/// Non-passive but STABLE mutant: an impulse-free RLC ladder with a small
/// negative series resistance folded into the port feedthrough (D = -eps I),
/// so Re Z(j inf) < 0 while all poles stay in the left half plane. This is
/// caught by the proper-part positive-realness stage.
ds::DescriptorSystem makeNonPassiveNegativeFeedthrough(std::size_t sections);

/// Non-passive mutant: a descriptor system with an indefinite first Markov
/// parameter, i.e. M1 has a negative eigenvalue (impulsive energy source).
/// Built directly in Weierstrass-like coordinates: a 2x2 nilpotent block
/// with output map chosen so M1 = diag(+1, -1).
ds::DescriptorSystem makeNonPassiveIndefiniteM1();

/// Non-passive mutant: a system with a nonzero second Markov parameter
/// (M2 != 0, grade-3 infinite eigenvectors), which Eq. (3) forbids.
ds::DescriptorSystem makeNonPassiveHigherOrderImpulse();

}  // namespace shhpass::circuits
