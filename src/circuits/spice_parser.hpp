// SPICE-subset netlist text format: parser and canonical writer.
//
// Grammar (one card per logical line):
//   * comment                      full-line comment ('*' in column 1)
//   R<name> <node> <node> <value>  resistor  (Ohms)
//   L<name> <node> <node> <value>  inductor  (Henries)
//   C<name> <node> <node> <value>  capacitor (Farads)
//   .port <node>                   current-injection port (vs ground)
//   .end                           optional; everything after is ignored
// A line starting with '+' continues the previous card; everything after
// ';' on a line is a comment. Values accept the usual engineering
// suffixes (f p n u m k meg g t, case-insensitive) plus trailing unit
// letters ("2.2uF", "5kOhm").
//
// Node names: "0" and "gnd" (any case) are ground. Names that are all
// digits keep their numeric value as the dense node index (classic
// numbered SPICE netlists — and what writeSpice emits, so emit -> parse
// -> emit round-trips bit-stably); symbolic names are assigned dense
// indices above the highest numeric node in first-appearance order.
// Numeric gaps (a node index no element connects) are parse errors: the
// stamped MNA descriptor would carry an all-zero row.
//
// Error model: the parser NEVER throws and never silently accepts a
// malformed card — every defect is reported as a typed, line-numbered
// SpiceError and the partial netlist is withheld (ok() == false). The
// public API wraps this as api::loadNetlist -> Status with
// ErrorCode::NetlistParseError (src/api/ingest.hpp).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "circuits/netlist.hpp"

namespace shhpass::circuits {

/// What went wrong with one card (machine-readable; stable names from
/// spiceErrorKindName for messages and tests).
enum class SpiceErrorKind {
  FileError = 0,     ///< The netlist file could not be read (line 0).
  UnknownCard,       ///< Element letter or directive not in the subset.
  TruncatedCard,     ///< Too few fields on an element card / directive.
  TrailingField,     ///< Extra fields beyond the subset grammar.
  BadNodeName,       ///< Malformed node token (negative, oversized, ...).
  BadValue,          ///< Element value does not parse as a number.
  NonPositiveValue,  ///< Zero value, or a negative value without
                     ///< SpiceParseOptions::allowActiveElements.
  ShortedElement,    ///< Both terminals on the same node.
  DanglingPort,      ///< .port names a node no element connects.
  PortAtGround,      ///< .port on node 0 / gnd.
  UnconnectedNode,   ///< Numeric node indices leave a gap (dead MNA row).
  EmptyNetlist,      ///< No element cards at all (line 0).
};

/// Stable machine-readable name of a kind (e.g. "NON_POSITIVE_VALUE").
const char* spiceErrorKindName(SpiceErrorKind kind);

/// One typed, line-accurate parse diagnostic. `line` is 1-based in the
/// input text (the first physical line of a continued card); 0 means the
/// defect is file-level (FileError, EmptyNetlist).
struct SpiceError {
  std::size_t line = 0;
  SpiceErrorKind kind = SpiceErrorKind::UnknownCard;
  std::string message;

  /// "line 12: [NON_POSITIVE_VALUE] ..." (or "netlist: [...]" at line 0).
  std::string toString() const;
};

struct SpiceParseOptions {
  /// Permit negative element values (active elements, used to build
  /// non-passive mutants for testing). Zero is always rejected — a
  /// zero-valued element is degenerate in MNA regardless of sign
  /// conventions. Off by default: a physical RLC netlist is passive.
  bool allowActiveElements = false;
};

/// Parse outcome: a netlist plus the node-name table on success, a
/// non-empty typed error list otherwise. The netlist is only meaningful
/// when ok() — a failed parse withholds the partial build so a malformed
/// file can never be silently analyzed.
struct ParsedNetlist {
  Netlist netlist{0};
  /// nodeNames[i] is the source name of dense node i (nodeNames[0] is
  /// always "0"); empty when !ok().
  std::vector<std::string> nodeNames;
  std::vector<SpiceError> errors;

  bool ok() const { return errors.empty(); }
};

/// Parse SPICE-subset netlist text. Never throws; every defect lands in
/// ParsedNetlist::errors with its line number.
ParsedNetlist parseSpice(std::string_view text,
                         const SpiceParseOptions& options = {});

/// Read and parse a netlist file. An unreadable file reports one
/// FileError at line 0.
ParsedNetlist parseSpiceFile(const std::string& path,
                             const SpiceParseOptions& options = {});

/// Canonical SPICE-subset emission of a netlist: numeric node indices,
/// per-kind element names (R1, L1, C1, ...) in component order, values
/// in shortest round-trip decimal, ports in declaration order, ".end"
/// terminated. writeSpice(parseSpice(writeSpice(n)).netlist) ==
/// writeSpice(n), byte for byte, and the parsed netlist stamps a
/// bit-identical MNA descriptor (every node of `net` must be connected —
/// the parser's UnconnectedNode rule — which stampMna-able netlists
/// satisfy by construction).
std::string writeSpice(const Netlist& net,
                       std::string_view comment = "shhpass netlist");

}  // namespace shhpass::circuits
