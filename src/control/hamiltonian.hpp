// Hamiltonian / skew-Hamiltonian structure predicates and the stable
// invariant subspace computation used in Eq. (22) of the paper.
#pragma once

#include <complex>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/schur_multishift.hpp"
#include "linalg/schur_reorder.hpp"

namespace shhpass::control {

/// True iff (J H)^T = J H, i.e. H = [A R; Q -A^T] with R, Q symmetric.
bool isHamiltonian(const linalg::Matrix& h, double tol = 1e-10);

/// True iff (J W)^T = -J W, i.e. W = [A R; Q A^T] with R, Q skew-symmetric.
bool isSkewHamiltonian(const linalg::Matrix& w, double tol = 1e-10);

/// Build the 2n x 2n Hamiltonian matrix [a r; q -a^T] (r, q symmetric n x n).
linalg::Matrix makeHamiltonian(const linalg::Matrix& a, const linalg::Matrix& r,
                               const linalg::Matrix& q);

/// Result of a stable invariant subspace computation on a Hamiltonian
/// matrix H (size 2np): H [X1; X2] = [X1; X2] Lambda with spec(Lambda) in
/// the open left half plane.
struct StableSubspace {
  linalg::Matrix x1;      ///< Top block, np x np.
  linalg::Matrix x2;      ///< Bottom block, np x np.
  linalg::Matrix lambda;  ///< Quasi-triangular np x np stable block.
  bool ok = false;        ///< False if eigenvalues lie on/near the imaginary
                          ///< axis and the spectrum cannot be split in half.
  /// Health record of the Schur reordering that separated the spectrum
  /// (swap/reject counts, max residual, drift bound).
  linalg::ReorderReport reorder;
  /// Health record of the real Schur factorization underneath (which
  /// kernel path ran, sweep / AED / shift / iteration counters).
  linalg::SchurReport schur;
};

/// Compute the stable invariant subspace of a Hamiltonian matrix via ordered
/// real Schur. `imagTol` is the relative margin within which an eigenvalue is
/// treated as lying on the imaginary axis (making the split impossible).
StableSubspace stableInvariantSubspace(const linalg::Matrix& h,
                                       double imagTol = 1e-8);

/// True iff the matrix has an eigenvalue within `tol * max(1, |lambda|)` of
/// the imaginary axis (used as the core positive-realness certificate).
bool hasImaginaryAxisEigenvalue(const linalg::Matrix& h, double tol = 1e-8);

}  // namespace shhpass::control
