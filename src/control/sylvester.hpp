// Sylvester equation solver A X + X B = C via Bartels-Stewart
// (real Schur of both coefficients + back-substitution).
#pragma once

#include "linalg/matrix.hpp"

namespace shhpass::control {

/// Solve A X + X B = C for X (A n x n, B m x m, C n x m).
/// Requires spec(A) and spec(-B) disjoint; throws std::runtime_error if the
/// equation is (numerically) singular.
linalg::Matrix solveSylvester(const linalg::Matrix& a, const linalg::Matrix& b,
                              const linalg::Matrix& c);

/// Solve S Y + Y T = F where S and T are already quasi-upper-triangular
/// (real Schur forms). Exposed for reuse by the Lyapunov solver and tests.
linalg::Matrix solveSylvesterQuasiTriangular(const linalg::Matrix& s,
                                             const linalg::Matrix& t,
                                             const linalg::Matrix& f);

/// Solve the Lyapunov-shaped equation S Y + Y S^T = F where S is already
/// quasi-upper-triangular. Column blocks of Y are back-substituted right
/// to left (S^T is quasi-LOWER-triangular, so the dependency order is
/// mirrored), skipping both Schur factorizations of the general solver —
/// the fast path solveLyapunov takes when its coefficient is a Schur
/// factor to begin with (e.g. the reordered stable block in the Eq.-(23)
/// Hamiltonian decoupling).
linalg::Matrix solveSylvesterTransposedRight(const linalg::Matrix& s,
                                             const linalg::Matrix& f);

/// The mirrored orientation: solve S^T Y + Y S = F with S quasi-upper-
/// triangular (column blocks left to right, row blocks top to bottom).
/// This is the fast path for Lyapunov equations whose coefficient is the
/// TRANSPOSE of a Schur factor — e.g. the observability Gramian
/// solveLyapunov(Lambda^T, C^T C) of the balanced-truncation reduction.
linalg::Matrix solveSylvesterTransposedLeft(const linalg::Matrix& s,
                                            const linalg::Matrix& f);

/// True iff t is quasi-upper-triangular with a well-defined block
/// partition: zero below the first subdiagonal and no two consecutive
/// nonzero subdiagonal entries.
bool isQuasiTriangular(const linalg::Matrix& t);

}  // namespace shhpass::control
