// Sylvester equation solver A X + X B = C via Bartels-Stewart
// (real Schur of both coefficients + back-substitution).
#pragma once

#include "linalg/matrix.hpp"

namespace shhpass::control {

/// Solve A X + X B = C for X (A n x n, B m x m, C n x m).
/// Requires spec(A) and spec(-B) disjoint; throws std::runtime_error if the
/// equation is (numerically) singular.
linalg::Matrix solveSylvester(const linalg::Matrix& a, const linalg::Matrix& b,
                              const linalg::Matrix& c);

/// Solve S Y + Y T = F where S and T are already quasi-upper-triangular
/// (real Schur forms). Exposed for reuse by the Lyapunov solver and tests.
linalg::Matrix solveSylvesterQuasiTriangular(const linalg::Matrix& s,
                                             const linalg::Matrix& t,
                                             const linalg::Matrix& f);

}  // namespace shhpass::control
