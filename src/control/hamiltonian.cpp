#include "control/hamiltonian.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "linalg/blas.hpp"
#include "linalg/schur.hpp"
#include "linalg/schur_reorder.hpp"

namespace shhpass::control {

using linalg::Matrix;

namespace {

// J * H for the symplectic unit J = [0 I; -I 0] is a signed row swap,
// J [A B; C D] = [C D; -A -B] — formed directly in O(n^2) instead of the
// historical O(n^3) dense product with an explicit J.
Matrix symplecticJTimes(const Matrix& h) {
  const std::size_t n2 = h.rows(), n = n2 / 2;
  Matrix jh(n2, n2);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n2; ++j) {
      jh(i, j) = h(n + i, j);
      jh(n + i, j) = -h(i, j);
    }
  return jh;
}

}  // namespace

bool isHamiltonian(const Matrix& h, double tol) {
  if (!h.isSquare() || h.rows() % 2 != 0) return false;
  Matrix jh = symplecticJTimes(h);
  return jh.isSymmetric(tol * std::max(1.0, jh.maxAbs()));
}

bool isSkewHamiltonian(const Matrix& w, double tol) {
  if (!w.isSquare() || w.rows() % 2 != 0) return false;
  Matrix jw = symplecticJTimes(w);
  return jw.isSkewSymmetric(tol * std::max(1.0, jw.maxAbs()));
}

Matrix makeHamiltonian(const Matrix& a, const Matrix& r, const Matrix& q) {
  const std::size_t n = a.rows();
  if (!a.isSquare() || r.rows() != n || r.cols() != n || q.rows() != n ||
      q.cols() != n)
    throw std::invalid_argument("makeHamiltonian: shape mismatch");
  Matrix h(2 * n, 2 * n);
  h.setBlock(0, 0, a);
  h.setBlock(0, n, r);
  h.setBlock(n, 0, q);
  h.setBlock(n, n, -1.0 * a.transposed());
  return h;
}

StableSubspace stableInvariantSubspace(const Matrix& h, double imagTol) {
  StableSubspace out;
  if (!h.isSquare() || h.rows() % 2 != 0)
    throw std::invalid_argument("stableInvariantSubspace: need even size");
  const std::size_t np = h.rows() / 2;
  if (np == 0) {
    out.ok = true;
    return out;
  }
  linalg::RealSchurResult rs = linalg::realSchur(h);
  out.schur = rs.report;
  // A Hamiltonian spectrum splits evenly unless eigenvalues sit on the axis.
  const double floor_ =
      1e3 * std::numeric_limits<double>::epsilon() * h.normFrobenius();
  for (const auto& l : rs.eigenvalues) {
    const double cut = std::max(imagTol * std::max(1.0, std::abs(l)), floor_);
    if (std::abs(l.real()) <= cut) return out;  // ok = false
  }
  const std::size_t k = linalg::reorderSchur(
      rs.t, rs.q, [](std::complex<double> l) { return l.real() < 0.0; },
      &out.reorder);
  if (k != np) return out;  // uneven split: not a clean Hamiltonian spectrum
  out.x1 = rs.q.block(0, 0, np, np);
  out.x2 = rs.q.block(np, 0, np, np);
  out.lambda = rs.t.block(0, 0, np, np);
  out.ok = true;
  return out;
}

bool hasImaginaryAxisEigenvalue(const Matrix& h, double tol) {
  // Per-eigenvalue relative threshold with an eps-level absolute floor tied
  // to the matrix norm (the size of backward error in computed eigenvalues).
  // A norm-proportional *tolerance* would misclassify well-damped
  // eigenvalues of badly scaled systems as imaginary.
  const double floor_ =
      1e3 * std::numeric_limits<double>::epsilon() * h.normFrobenius();
  for (const auto& l : linalg::eigenvalues(h)) {
    const double cut = std::max(tol * std::max(1.0, std::abs(l)), floor_);
    if (std::abs(l.real()) <= cut) return true;
  }
  return false;
}

}  // namespace shhpass::control
