#include "control/are.hpp"

#include <stdexcept>

#include "control/hamiltonian.hpp"
#include "linalg/blas.hpp"
#include "linalg/lu.hpp"

namespace shhpass::control {

using linalg::Matrix;

AreResult solveCare(const Matrix& a, const Matrix& g, const Matrix& q) {
  const std::size_t n = a.rows();
  if (!a.isSquare() || g.rows() != n || q.rows() != n)
    throw std::invalid_argument("solveCare: shape mismatch");
  AreResult res;
  // Hamiltonian H = [A -G; -Q -A^T]; X = X2 X1^{-1} from the stable subspace.
  Matrix h = makeHamiltonian(a, -1.0 * g, -1.0 * q);
  StableSubspace ss = stableInvariantSubspace(h);
  if (!ss.ok) return res;
  linalg::LU lu(ss.x1);
  if (lu.isSingular(1e-12)) return res;
  res.x = lu.solveTransposed(ss.x2.transposed()).transposed();  // X2 X1^{-1}
  linalg::symmetrize(res.x);
  res.ok = true;
  return res;
}

AreResult solvePositiveRealAre(const Matrix& a, const Matrix& b,
                               const Matrix& c, const Matrix& d) {
  const std::size_t n = a.rows();
  Matrix r = d + d.transposed();
  linalg::LU rlu(r);
  if (rlu.isSingular(1e-12))
    throw std::invalid_argument("solvePositiveRealAre: D + D^T singular");
  // Rewrite Eq. (5) as a CARE in (A - B R^{-1} C, B R^{-1} B^T, C^T R^{-1} C):
  //   (A-BR^{-1}C)^T X + X (A-BR^{-1}C) + X BR^{-1}B^T X + C^T R^{-1} C = 0
  // which is solveCare with G = -B R^{-1} B^T ... sign bookkeeping below.
  Matrix rinvC = rlu.solve(c);
  Matrix rinvBt = rlu.solve(b.transposed());
  Matrix a0 = a - b * rinvC;
  Matrix g = -1.0 * (b * rinvBt);
  Matrix q = linalg::atb(c, rinvC);
  // Expanding Eq. (5): (A-BR^{-1}C)^T X + X (A-BR^{-1}C)
  //   + X (B R^{-1} B^T) X + C^T R^{-1} C = 0,
  // i.e. the CARE with G = -B R^{-1} B^T and Q = C^T R^{-1} C.
  AreResult res = solveCare(a0, g, q);
  if (!res.ok) return res;
  (void)n;
  return res;
}

}  // namespace shhpass::control
