#include "control/lyapunov.hpp"

#include <stdexcept>

#include "linalg/blas.hpp"
#include "control/sylvester.hpp"

namespace shhpass::control {

using linalg::Matrix;

Matrix solveLyapunov(const Matrix& a, const Matrix& q) {
  if (!a.isSquare() || !q.isSquare() || a.rows() != q.rows())
    throw std::invalid_argument("solveLyapunov: shape mismatch");
  Matrix y = solveSylvester(a, a.transposed(), -1.0 * q);
  if (q.isSymmetric(1e-12 * std::max(1.0, q.maxAbs()))) linalg::symmetrize(y);
  return y;
}

}  // namespace shhpass::control
