#include "control/lyapunov.hpp"

#include <stdexcept>

#include "linalg/blas.hpp"
#include "control/sylvester.hpp"

namespace shhpass::control {

using linalg::Matrix;

Matrix solveLyapunov(const Matrix& a, const Matrix& q) {
  if (!a.isSquare() || !q.isSquare() || a.rows() != q.rows())
    throw std::invalid_argument("solveLyapunov: shape mismatch");
  // Fast paths: a coefficient that is already a real Schur factor (the
  // Eq.-(23) decoupling hands us the reordered quasi-triangular stable
  // block) — or the transpose of one (the observability-Gramian solve of
  // the balanced-truncation reduction) — skips both Schur factorizations
  // of the general solver.
  Matrix y;
  if (isQuasiTriangular(a)) {
    y = solveSylvesterTransposedRight(a, -1.0 * q);
  } else {
    const Matrix at = a.transposed();
    y = isQuasiTriangular(at) ? solveSylvesterTransposedLeft(at, -1.0 * q)
                              : solveSylvester(a, at, -1.0 * q);
  }
  if (q.isSymmetric(1e-12 * std::max(1.0, q.maxAbs()))) linalg::symmetrize(y);
  return y;
}

}  // namespace shhpass::control
