#include "control/pr_test.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "control/hamiltonian.hpp"
#include "control/sylvester.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "linalg/schur.hpp"
#include "linalg/svd.hpp"
#include "linalg/symmetric_eig.hpp"

namespace shhpass::control {

using linalg::Matrix;

double popovMinEigenvalue(const Matrix& a, const Matrix& b, const Matrix& c,
                          const Matrix& d, double omega) {
  const std::size_t n = a.rows();
  const std::size_t m = d.rows();
  Matrix gre = d, gim(m, m);
  if (n > 0) {
    // Solve (jwI - A)(xr + j xi) = B via the doubled real system
    // [-A  -wI; wI  -A] [xr; xi] = [B; 0].
    Matrix sys(2 * n, 2 * n);
    sys.setBlock(0, 0, -1.0 * a);
    sys.setBlock(n, n, -1.0 * a);
    for (std::size_t i = 0; i < n; ++i) {
      sys(i, n + i) = -omega;
      sys(n + i, i) = omega;
    }
    Matrix rhs(2 * n, b.cols());
    rhs.setBlock(0, 0, b);
    Matrix x = linalg::solve(sys, rhs);
    Matrix xr = x.block(0, 0, n, b.cols());
    Matrix xi = x.block(n, 0, n, b.cols());
    gre += c * xr;
    gim = c * xi;
  }
  // H = G + G^* is Hermitian: real part S = Gre + Gre^T (symmetric),
  // imaginary part K = Gim - Gim^T (skew). Embed as [[S,-K],[K,S]]; its
  // (doubled) spectrum equals that of H.
  Matrix s = gre + gre.transposed();
  Matrix k = gim - gim.transposed();
  Matrix emb(2 * m, 2 * m);
  emb.setBlock(0, 0, s);
  emb.setBlock(m, m, s);
  emb.setBlock(0, m, -1.0 * k);
  emb.setBlock(m, 0, k);
  linalg::SymmetricEig eig(emb, /*wantVectors=*/false);
  return eig.eigenvalues().front();
}

PrTestResult testPositiveRealProper(const Matrix& a, const Matrix& b,
                                    const Matrix& c, const Matrix& d,
                                    double imagTol) {
  if (!d.isSquare())
    throw std::invalid_argument("testPositiveRealProper: D must be square");
  const std::size_t n = a.rows();
  PrTestResult res;

  // Stability prerequisite. The proper part handed in by the pipeline is
  // the reordered Schur factor itself — exactly quasi-triangular — so its
  // eigenvalues can be read off the diagonal blocks without paying for
  // another full Schur factorization of a matrix that already is one.
  res.stable = true;
  if (n > 0) {
    const std::vector<std::complex<double>> eigs =
        isQuasiTriangular(a) ? linalg::quasiTriangularEigenvalues(a)
                             : linalg::eigenvalues(a);
    for (const auto& l : eigs)
      if (l.real() >= -1e-12 * std::max(1.0, a.normFrobenius())) {
        res.stable = false;
        break;
      }
  }
  if (!res.stable) {
    res.positiveReal = false;
    return res;
  }

  Matrix r = d + d.transposed();
  // G(j inf) + G(j inf)^* = R must be PSD regardless of the certificate path.
  if (!linalg::isPositiveSemidefinite(r)) {
    res.positiveReal = false;
    return res;
  }
  if (n == 0) {
    res.positiveReal = true;  // static system, R >= 0 settles it
    return res;
  }

  // Decide singularity of R relative to the overall transfer-function
  // scale, not to R itself: a feedthrough of 1e-27 in a system whose
  // G(0) is O(1) is zero for all practical purposes, and inverting it
  // would poison the Hamiltonian certificate.
  Matrix g0 = d - c * linalg::solve(a, b);  // G(0) (A is Hurwitz here)
  const double gScale = std::max({1e-300, g0.maxAbs(), r.maxAbs()});
  linalg::SVD rsvd(r);
  const double sminR =
      rsvd.singularValues().empty() ? 0.0 : rsvd.singularValues().back();
  const bool rInvertible = sminR > 1e-10 * gScale;
  linalg::LU rlu(r);
  if (rInvertible) {
    // Hamiltonian certificate: M has an imaginary-axis eigenvalue iff
    // G(jw) + G(jw)^* is singular at some w. With no such eigenvalue, the
    // minimum eigenvalue never changes sign; R > 0 anchors the sign at
    // w = infinity.
    Matrix rinvBt = rlu.solve(b.transposed());   // R^{-1} B^T
    Matrix rinvC = rlu.solve(c);                 // R^{-1} C
    Matrix a11 = a - b * rinvC;
    Matrix a12 = -1.0 * (b * rinvBt);
    Matrix a21 = linalg::atb(c, rinvC);
    Matrix m = makeHamiltonian(a11, a12, a21);
    res.usedHamiltonian = true;
    res.positiveReal = !hasImaginaryAxisEigenvalue(m, imagTol);
    return res;
  }

  // R singular: fall back to a dense logarithmic frequency sweep.
  res.usedSampling = true;
  const double scale = std::max(1.0, a.normFrobenius());
  double worst = popovMinEigenvalue(a, b, c, d, 0.0);
  double worstW = 0.0;
  for (int k = -60; k <= 60; ++k) {
    const double w = scale * std::pow(10.0, k / 10.0);
    const double lmin = popovMinEigenvalue(a, b, c, d, w);
    if (lmin < worst) {
      worst = lmin;
      worstW = w;
    }
  }
  res.worstEigenvalue = worst;
  res.worstFrequency = worstW;
  const double tol = 1e-8 * std::max(1.0, d.maxAbs() + c.maxAbs());
  res.positiveReal = worst >= -tol;
  return res;
}

}  // namespace shhpass::control
