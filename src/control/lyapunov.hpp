// Continuous-time Lyapunov equation A Y + Y A^T + Q = 0, used by the
// proper-part extraction step (Eq. 23 of the paper) to block-diagonalize
// the Hamiltonian matrix A_phi4.
#pragma once

#include "linalg/matrix.hpp"

namespace shhpass::control {

/// Solve A Y + Y A^T + Q = 0 for Y. Requires spec(A) and spec(-A^T)
/// disjoint (e.g. A Hurwitz). If Q is symmetric the solution is symmetric;
/// this implementation symmetrizes the result when Q is symmetric to purge
/// round-off.
linalg::Matrix solveLyapunov(const linalg::Matrix& a, const linalg::Matrix& q);

}  // namespace shhpass::control
