// Positive-realness test for *proper, regular* state-space systems
// G(s) = D + C (sI - A)^{-1} B — the standard Hamiltonian-based check the
// paper applies to the extracted proper part (Sec. 2.2, refs [9, 10]).
#pragma once

#include "linalg/matrix.hpp"

namespace shhpass::control {

/// Outcome of a regular-system positive-realness test.
struct PrTestResult {
  bool positiveReal = false;
  bool stable = false;          ///< A Hurwitz (prerequisite).
  bool usedHamiltonian = false; ///< Certificate path: Hamiltonian spectrum.
  bool usedSampling = false;    ///< Fallback path: frequency sweep.
  double worstEigenvalue = 0.0; ///< min over omega of lambda_min(G+G^*)
                                ///< observed (sampling path only).
  double worstFrequency = 0.0;  ///< argmin frequency (sampling path only).
};

/// Test positive realness of the proper system (A, B, C, D).
///
/// When R = D + D^T is (numerically) nonsingular, the associated Hamiltonian
/// matrix having no purely imaginary eigenvalues certifies lambda_min(G(jw) +
/// G(jw)^*) never crosses zero; combined with positivity at one probe
/// frequency this decides positive realness. When R is singular the test
/// falls back to a dense logarithmic frequency sweep (documented heuristic).
PrTestResult testPositiveRealProper(const linalg::Matrix& a,
                                    const linalg::Matrix& b,
                                    const linalg::Matrix& c,
                                    const linalg::Matrix& d,
                                    double imagTol = 1e-8);

/// lambda_min of the Hermitian matrix G(jw) + G(jw)^* for the proper system
/// (A, B, C, D) at real frequency w. Exposed for diagnostics and tests.
double popovMinEigenvalue(const linalg::Matrix& a, const linalg::Matrix& b,
                          const linalg::Matrix& c, const linalg::Matrix& d,
                          double omega);

}  // namespace shhpass::control
