// Algebraic Riccati equation solver via the Hamiltonian stable invariant
// subspace (Sec. 2.2, Eq. (5) of the paper): the classical route for strict
// positive-realness checks on regular systems.
#pragma once

#include "linalg/matrix.hpp"

namespace shhpass::control {

/// Result of an ARE solve.
struct AreResult {
  linalg::Matrix x;  ///< Stabilizing solution (symmetric when it exists).
  bool ok = false;   ///< False if no stabilizing solution exists (e.g. the
                     ///< Hamiltonian has imaginary-axis eigenvalues).
};

/// Solve A^T X + X A + (X B - C^T) (D + D^T)^{-1} (B^T X - C) = 0, the
/// positive-real Riccati equation (Eq. 5). Requires D + D^T nonsingular.
AreResult solvePositiveRealAre(const linalg::Matrix& a,
                               const linalg::Matrix& b,
                               const linalg::Matrix& c,
                               const linalg::Matrix& d);

/// Solve the standard CARE A^T X + X A - X G X + Q = 0 (G, Q symmetric)
/// through the Hamiltonian matrix [A -G; -Q -A^T].
AreResult solveCare(const linalg::Matrix& a, const linalg::Matrix& g,
                    const linalg::Matrix& q);

}  // namespace shhpass::control
