#include "control/sylvester.hpp"

#include <stdexcept>
#include <vector>

#include "linalg/blas.hpp"
#include "linalg/lu.hpp"
#include "linalg/schur.hpp"

namespace shhpass::control {

using linalg::Matrix;

namespace {

// Diagonal block partition of a quasi-triangular matrix.
std::vector<std::pair<std::size_t, std::size_t>> blocks(const Matrix& t) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  std::size_t i = 0;
  while (i < t.rows()) {
    const std::size_t sz = (i + 1 < t.rows() && t(i + 1, i) != 0.0) ? 2 : 1;
    out.emplace_back(i, sz);
    i += sz;
  }
  return out;
}

// Solve the small system A X + X B = C with p, q <= 2 via the Kronecker
// linear system, on stack storage (linalg::solveSmallDense) — the
// quasi-triangular back-substitutions call this once per block pair,
// which is tens of thousands of times for the proper-part Lyapunov
// solve, so the historical Matrix/LU churn dominated their runtime.
Matrix smallBlockSolve(const Matrix& a, const Matrix& b, const Matrix& c) {
  const std::size_t p = a.rows(), q = b.rows();
  const std::size_t pq = p * q;
  double k[16] = {0.0};
  double rhs[4];
  for (std::size_t j = 0; j < q; ++j)
    for (std::size_t i = 0; i < p; ++i) {
      const std::size_t row = j * p + i;
      for (std::size_t l = 0; l < p; ++l) k[row * pq + j * p + l] += a(i, l);
      for (std::size_t l = 0; l < q; ++l) k[row * pq + l * p + i] += b(l, j);
      rhs[row] = c(i, j);
    }
  if (!linalg::solveSmallDense(k, rhs, pq, 1e-13))
    throw std::runtime_error(
        "solveSylvester: spectra of A and -B intersect; equation singular");
  Matrix x(p, q);
  for (std::size_t j = 0; j < q; ++j)
    for (std::size_t i = 0; i < p; ++i) x(i, j) = rhs[j * p + i];
  return x;
}

}  // namespace

Matrix solveSylvesterQuasiTriangular(const Matrix& s, const Matrix& t,
                                     const Matrix& f) {
  const std::size_t n = s.rows(), m = t.rows();
  if (f.rows() != n || f.cols() != m)
    throw std::invalid_argument("solveSylvesterQuasiTriangular: shape");
  Matrix y(n, m);
  const auto sBlocks = blocks(s);
  const auto tBlocks = blocks(t);

  // Process column blocks of Y left -> right (T upper triangular), and
  // within each, row blocks bottom -> top (S upper triangular).
  for (const auto& [kc, qc] : tBlocks) {
    // rhs_k = F(:,k) - Y(:,previous) * T(previous, k).
    Matrix rhsCol = f.block(0, kc, n, qc);
    if (kc > 0) {
      Matrix yPrev = y.block(0, 0, n, kc);
      Matrix tCol = t.block(0, kc, kc, qc);
      rhsCol -= yPrev * tCol;
    }
    Matrix tkk = t.block(kc, kc, qc, qc);
    for (auto it = sBlocks.rbegin(); it != sBlocks.rend(); ++it) {
      const auto [ir, pr] = *it;
      Matrix r = rhsCol.block(ir, 0, pr, qc);
      // Subtract S(i, below) * Y(below, k).
      const std::size_t below = ir + pr;
      if (below < n) {
        Matrix sRow = s.block(ir, below, pr, n - below);
        Matrix yBelow = y.block(below, kc, n - below, qc);
        r -= sRow * yBelow;
      }
      Matrix sii = s.block(ir, ir, pr, pr);
      Matrix yik = smallBlockSolve(sii, tkk, r);
      y.setBlock(ir, kc, yik);
    }
  }
  return y;
}

Matrix solveSylvesterTransposedRight(const Matrix& s, const Matrix& f) {
  const std::size_t n = s.rows();
  if (!s.isSquare() || f.rows() != n || f.cols() != n)
    throw std::invalid_argument("solveSylvesterTransposedRight: shape");
  Matrix y(n, n);
  const auto sBlocks = blocks(s);

  // (Y S^T)(:, k) involves Y columns j >= k, so column blocks go right ->
  // left; within each, row blocks bottom -> top as in the general solver.
  for (auto ct = sBlocks.rbegin(); ct != sBlocks.rend(); ++ct) {
    const auto [kc, qc] = *ct;
    Matrix rhsCol = f.block(0, kc, n, qc);
    const std::size_t after = kc + qc;
    if (after < n) {
      Matrix yLater = y.block(0, after, n, n - after);
      Matrix sRow = s.block(kc, after, qc, n - after);
      rhsCol -= linalg::abt(yLater, sRow);
    }
    Matrix tkk = s.block(kc, kc, qc, qc).transposed();
    for (auto it = sBlocks.rbegin(); it != sBlocks.rend(); ++it) {
      const auto [ir, pr] = *it;
      Matrix r = rhsCol.block(ir, 0, pr, qc);
      const std::size_t below = ir + pr;
      if (below < n) {
        Matrix sRow = s.block(ir, below, pr, n - below);
        Matrix yBelow = y.block(below, kc, n - below, qc);
        r -= sRow * yBelow;
      }
      Matrix sii = s.block(ir, ir, pr, pr);
      Matrix yik = smallBlockSolve(sii, tkk, r);
      y.setBlock(ir, kc, yik);
    }
  }
  return y;
}

Matrix solveSylvesterTransposedLeft(const Matrix& s, const Matrix& f) {
  const std::size_t n = s.rows();
  if (!s.isSquare() || f.rows() != n || f.cols() != n)
    throw std::invalid_argument("solveSylvesterTransposedLeft: shape");
  Matrix y(n, n);
  const auto sBlocks = blocks(s);

  // (Y S)(:, k) involves Y columns j <= k, so column blocks go left ->
  // right; (S^T Y)(i, :) involves Y rows j <= i, so row blocks go top ->
  // bottom.
  for (const auto& [kc, qc] : sBlocks) {
    Matrix rhsCol = f.block(0, kc, n, qc);
    if (kc > 0) {
      Matrix yPrev = y.block(0, 0, n, kc);
      Matrix sCol = s.block(0, kc, kc, qc);
      rhsCol -= yPrev * sCol;
    }
    Matrix tkk = s.block(kc, kc, qc, qc);
    for (const auto& [ir, pr] : sBlocks) {
      Matrix r = rhsCol.block(ir, 0, pr, qc);
      if (ir > 0) {
        Matrix sColI = s.block(0, ir, ir, pr);
        Matrix yAbove = y.block(0, kc, ir, qc);
        r -= linalg::atb(sColI, yAbove);
      }
      Matrix sii = s.block(ir, ir, pr, pr).transposed();
      Matrix yik = smallBlockSolve(sii, tkk, r);
      y.setBlock(ir, kc, yik);
    }
  }
  return y;
}

bool isQuasiTriangular(const Matrix& t) {
  if (!t.isSquare()) return false;
  const std::size_t n = t.rows();
  for (std::size_t i = 2; i < n; ++i)
    for (std::size_t j = 0; j + 1 < i; ++j)
      if (t(i, j) != 0.0) return false;
  for (std::size_t i = 0; i + 2 < n; ++i)
    if (t(i + 1, i) != 0.0 && t(i + 2, i + 1) != 0.0) return false;
  return true;
}

Matrix solveSylvester(const Matrix& a, const Matrix& b, const Matrix& c) {
  if (!a.isSquare() || !b.isSquare() || c.rows() != a.rows() ||
      c.cols() != b.rows())
    throw std::invalid_argument("solveSylvester: shape mismatch");
  if (a.rows() == 0 || b.rows() == 0) return Matrix(a.rows(), b.rows());
  // A = U S U^T, B = V T V^T; then S Y + Y T = U^T C V with X = U Y V^T.
  linalg::RealSchurResult sa = linalg::realSchur(a);
  linalg::RealSchurResult sb = linalg::realSchur(b);
  Matrix f = linalg::multiply(linalg::atb(sa.q, c), false, sb.q, false);
  Matrix y = solveSylvesterQuasiTriangular(sa.t, sb.t, f);
  return sa.q * linalg::abt(y, sb.q);
}

}  // namespace shhpass::control
