#include "linalg/schur_reorder.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "linalg/blas.hpp"
#include "linalg/householder.hpp"
#include "linalg/lu.hpp"
#include "linalg/schur.hpp"
#include "obs/metrics.hpp"

namespace shhpass::linalg {
namespace {

double sign1(double x) { return x >= 0.0 ? 1.0 : -1.0; }

// Plane rotation [cs sn; -sn cs] [f; g] = [r; 0] (dlartg).
void givens(double f, double g, double& cs, double& sn) {
  if (g == 0.0) {
    cs = 1.0;
    sn = 0.0;
  } else if (f == 0.0) {
    cs = 0.0;
    sn = 1.0;
  } else {
    const double r = std::hypot(f, g);
    cs = f / r;
    sn = g / r;
  }
}

// dlanv2: Schur factorization of a real 2x2 in standard form,
//   [a b; c d] = R [a' b'; c' d'] R^T,   R = [cs -sn; sn cs],
// where afterwards either c' = 0 (two real eigenvalues) or a' = d' and
// b'*c' < 0 (standardized complex-conjugate pair).
struct Lanv2 {
  double a, b, c, d;  // standardized entries
  double cs, sn;      // rotation
};

Lanv2 lanv2(double a, double b, double c, double d) {
  const double eps = std::numeric_limits<double>::epsilon();
  double cs, sn;
  if (c == 0.0) {
    cs = 1.0;
    sn = 0.0;
  } else if (b == 0.0) {
    // Swap rows and columns.
    cs = 0.0;
    sn = 1.0;
    std::swap(a, d);
    b = -c;
    c = 0.0;
  } else if (a - d == 0.0 && sign1(b) != sign1(c)) {
    cs = 1.0;
    sn = 0.0;
  } else {
    double temp = a - d;
    double p = 0.5 * temp;
    const double bcmax = std::max(std::abs(b), std::abs(c));
    const double bcmis = std::min(std::abs(b), std::abs(c)) * sign1(b) *
                         sign1(c);
    const double scale = std::max(std::abs(p), bcmax);
    double z = (p / scale) * p + (bcmax / scale) * bcmis;
    if (z >= 4.0 * eps) {
      // Real eigenvalues: compute a (rank-one modification).
      z = p + std::copysign(std::sqrt(scale) * std::sqrt(z), p);
      a = d + z;
      d -= (bcmax / z) * bcmis;
      const double tau = std::hypot(c, z);
      cs = z / tau;
      sn = c / tau;
      b -= c;
      c = 0.0;
    } else {
      // Complex eigenvalues, or real almost-equal eigenvalues: make the
      // diagonal entries equal first.
      const double sigma = b + c;
      double tau = std::hypot(sigma, temp);
      cs = std::sqrt(0.5 * (1.0 + std::abs(sigma) / tau));
      sn = -(p / (tau * cs)) * sign1(sigma);
      // [aa bb; cc dd] = [a b; c d] [cs -sn; sn cs]
      const double aa = a * cs + b * sn, bb = -a * sn + b * cs;
      const double cc = c * cs + d * sn, dd = -c * sn + d * cs;
      // [a b; c d] = [cs sn; -sn cs] [aa bb; cc dd]
      a = aa * cs + cc * sn;
      b = bb * cs + dd * sn;
      c = -aa * sn + cc * cs;
      d = -bb * sn + dd * cs;
      temp = 0.5 * (a + d);
      a = temp;
      d = temp;
      if (c != 0.0) {
        if (b != 0.0) {
          if (sign1(b) == sign1(c)) {
            // Real eigenvalues after all: reduce to upper triangular.
            const double sab = std::sqrt(std::abs(b));
            const double sac = std::sqrt(std::abs(c));
            p = std::copysign(sab * sac, c);
            tau = 1.0 / std::sqrt(std::abs(b + c));
            a = temp + p;
            d = temp - p;
            b -= c;
            c = 0.0;
            const double cs1 = sab * tau, sn1 = sac * tau;
            temp = cs * cs1 - sn * sn1;
            sn = cs * sn1 + sn * cs1;
            cs = temp;
          }
        } else {
          b = -c;
          c = 0.0;
          temp = cs;
          cs = -sn;
          sn = temp;
        }
      }
    }
  }
  return Lanv2{a, b, c, d, cs, sn};
}

// Apply the similarity T <- R^T T R, Q <- Q R with the plane rotation
// R = [cs -sn; sn cs] acting on coordinates j, j+1 of a QUASI-TRIANGULAR
// t: row updates start at column j (entries to the left are exact zeros
// that R cannot perturb) and column updates stop at row j+1 (entries
// below the block are exact zeros likewise) — the same values the
// full-range update would produce, at half the work. Q has no structure
// and gets full-height column updates.
// `qTransposed` selects how the accumulation matrix is stored: false
// means q IS Q (columns j, j+1 are rotated, a stride-n access pattern);
// true means q holds Q^T (rows j, j+1 are rotated, streaming through
// contiguous memory — what reorderSchur uses for its thousands of
// swaps). The per-element arithmetic is identical either way, so the
// two layouts produce bit-identical values.
void applyRotation(Matrix& t, Matrix& q, std::size_t j, double cs, double sn,
                   bool qTransposed = false) {
  const std::size_t n = t.rows();
  for (std::size_t col = j; col < n; ++col) {
    const double x = t(j, col), y = t(j + 1, col);
    t(j, col) = cs * x + sn * y;
    t(j + 1, col) = -sn * x + cs * y;
  }
  for (std::size_t row = 0; row < j + 2; ++row) {
    const double x = t(row, j), y = t(row, j + 1);
    t(row, j) = cs * x + sn * y;
    t(row, j + 1) = -sn * x + cs * y;
  }
  if (qTransposed) {
    planeRot(cs, sn, &q(j, 0), &q(j + 1, 0), q.cols());
  } else {
    for (std::size_t row = 0; row < q.rows(); ++row) {
      const double qx = q(row, j), qy = q(row, j + 1);
      q(row, j) = cs * qx + sn * qy;
      q(row, j + 1) = -sn * qx + cs * qy;
    }
  }
}

// Apply an accepted w x w window transform G (w <= 4) in place:
// T <- (G^T T G) restricted to the quasi-triangular profile, Q <- Q G.
// Left update first, then the column updates on the already-left-updated
// rows — the same sequencing the historical block-copy implementation
// used, so accepted swaps produce identical values without materializing
// any n-sized temporaries.
void applyWindowSimilarity(Matrix& t, Matrix& q, const Matrix& g,
                           std::size_t j, bool qTransposed = false) {
  const std::size_t w = g.rows(), n = t.rows();
  // Local row-major copy of G: every element is touched ~n times below,
  // and a flat stack array spares the operator() index math per read.
  double gl[16];
  for (std::size_t r = 0; r < w; ++r)
    for (std::size_t c = 0; c < w; ++c) gl[r * 4 + c] = g(r, c);
  double tmp[4], x[4];
  // Rows j..j+w-1 of T from column j rightward: T_rows <- G^T T_rows.
  // The w source rows are streamed through row pointers, each window
  // column read once into x; the k-ascending sum is unchanged.
  {
    double* tr[4];
    for (std::size_t k = 0; k < w; ++k) tr[k] = &t(j + k, 0);
    for (std::size_t c = j; c < n; ++c) {
      for (std::size_t k = 0; k < w; ++k) x[k] = tr[k][c];
      for (std::size_t r = 0; r < w; ++r) {
        double s = 0.0;
        for (std::size_t k = 0; k < w; ++k) s += gl[k * 4 + r] * x[k];
        tmp[r] = s;
      }
      for (std::size_t r = 0; r < w; ++r) tr[r][c] = tmp[r];
    }
  }
  // Columns j..j+w-1 of T down to row j+w-1: T_cols <- T_cols G. The w
  // window entries of row r are contiguous; read once, write in place.
  for (std::size_t r = 0; r < j + w; ++r) {
    double* pr = &t(r, j);
    for (std::size_t k = 0; k < w; ++k) x[k] = pr[k];
    for (std::size_t c = 0; c < w; ++c) {
      double s = 0.0;
      for (std::size_t k = 0; k < w; ++k) s += x[k] * gl[k * 4 + c];
      pr[c] = s;
    }
  }
  // Q columns j..j+w-1, full height (as rows of Q^T when transposed;
  // same multiply/add sequence per element, so bit-identical results).
  if (qTransposed) {
    const std::size_t qn = q.cols();
    double* qr[4];
    for (std::size_t k = 0; k < w; ++k) qr[k] = &q(j + k, 0);
    for (std::size_t i = 0; i < qn; ++i) {
      for (std::size_t k = 0; k < w; ++k) x[k] = qr[k][i];
      for (std::size_t c = 0; c < w; ++c) {
        double s = 0.0;
        for (std::size_t k = 0; k < w; ++k) s += x[k] * gl[k * 4 + c];
        qr[c][i] = s;
      }
    }
  } else {
    for (std::size_t r = 0; r < n; ++r) {
      double* pr = &q(r, j);
      for (std::size_t k = 0; k < w; ++k) x[k] = pr[k];
      for (std::size_t c = 0; c < w; ++c) {
        double s = 0.0;
        for (std::size_t k = 0; k < w; ++k) s += x[k] * gl[k * 4 + c];
        pr[c] = s;
      }
    }
  }
}

// Solve the small Sylvester equation A X - X B = C (A p x p, B q x q,
// p, q <= 2) by the Kronecker-product linear system, on stack storage
// (solveSmallDense — a reordering runs tens of thousands of these).
// Returns false when the system is numerically singular (the blocks share
// an eigenvalue and the exchange is ill-posed). All operands are w x w
// row-major scratch arrays of the window (w = p + q <= 4): a at offset
// (0,0), b at (p,p), c at (0,p) of `win`.
bool smallSylvester(const double* win, std::size_t w, std::size_t p,
                    std::size_t q, double* x) {
  double k[16] = {0.0};
  double rhs[4];
  const std::size_t pq = p * q;
  // vec is column-major: x_{i,j} -> index j*p + i.
  for (std::size_t j = 0; j < q; ++j)
    for (std::size_t i = 0; i < p; ++i) {
      const std::size_t row = j * p + i;
      for (std::size_t l = 0; l < p; ++l)
        k[row * pq + j * p + l] += win[i * w + l];
      for (std::size_t l = 0; l < q; ++l)
        k[row * pq + l * p + i] -= win[(p + l) * w + (p + j)];
      rhs[row] = win[i * w + (p + j)];
    }
  if (!solveSmallDense(k, rhs, pq, 1e-13)) return false;
  for (std::size_t j = 0; j < q; ++j)
    for (std::size_t i = 0; i < p; ++i) x[i * q + j] = rhs[j * p + i];
  return true;
}

// Full orthogonal factor of the Householder QR of the w x c stack
// (row-major in `st`, destroyed), written into the w x w row-major `qf`.
// Reuses the makeReflector convention of householder.hpp.
void smallFullQ(double* st, std::size_t w, std::size_t c, double* qf) {
  double vs[2][4], taus[2], xcol[4], beta;
  for (std::size_t col = 0; col < c; ++col) {
    const std::size_t len = w - col;
    for (std::size_t i = 0; i < len; ++i) xcol[i] = st[(col + i) * c + col];
    taus[col] = makeReflector(xcol, len, vs[col], beta);
    st[col * c + col] = beta;
    for (std::size_t i = 1; i < len; ++i) st[(col + i) * c + col] = 0.0;
    for (std::size_t j = col + 1; j < c; ++j) {
      double acc = 0.0;
      for (std::size_t i = 0; i < len; ++i)
        acc += vs[col][i] * st[(col + i) * c + j];
      acc *= taus[col];
      for (std::size_t i = 0; i < len; ++i)
        st[(col + i) * c + j] -= acc * vs[col][i];
    }
  }
  for (std::size_t i = 0; i < w * w; ++i) qf[i] = 0.0;
  for (std::size_t i = 0; i < w; ++i) qf[i * w + i] = 1.0;
  for (std::size_t col = c; col-- > 0;) {
    const std::size_t len = w - col;
    if (taus[col] == 0.0) continue;
    for (std::size_t j = 0; j < w; ++j) {
      double acc = 0.0;
      for (std::size_t i = 0; i < len; ++i)
        acc += vs[col][i] * qf[(col + i) * w + j];
      acc *= taus[col];
      for (std::size_t i = 0; i < len; ++i)
        qf[(col + i) * w + j] -= acc * vs[col][i];
    }
  }
}

// Block sizes of a quasi-triangular matrix starting at each block row.
std::vector<std::size_t> blockSizes(const Matrix& t) {
  std::vector<std::size_t> sizes;
  std::size_t i = 0;
  const std::size_t n = t.rows();
  while (i < n) {
    if (i + 1 < n && t(i + 1, i) != 0.0) {
      sizes.push_back(2);
      i += 2;
    } else {
      sizes.push_back(1);
      i += 1;
    }
  }
  return sizes;
}

std::complex<double> blockEigenvalue(const Matrix& t, std::size_t j,
                                     std::size_t sz) {
  if (sz == 1) return {t(j, j), 0.0};
  const double a11 = t(j, j), a12 = t(j, j + 1);
  const double a21 = t(j + 1, j), a22 = t(j + 1, j + 1);
  const double tr2 = (a11 + a22) / 2.0;
  const double det = a11 * a22 - a12 * a21;
  const double disc = tr2 * tr2 - det;
  if (disc >= 0.0) return {tr2 + std::sqrt(disc), 0.0};
  return {tr2, std::sqrt(-disc)};
}

// standardize2x2 with the qTransposed layout flag threaded through (the
// public standardize2x2 is a qTransposed = false wrapper).
bool standardize2x2Impl(Matrix& t, Matrix& q, std::size_t j,
                        bool qTransposed);

// Standardize the 2x2 block at (j, j) if one lives there, counting the
// operation in `report` when it changed the matrix. Returns true when the
// block was split into two real 1x1 blocks.
bool standardizeBlockAt(Matrix& t, Matrix& q, std::size_t j,
                        ReorderReport* report, bool qTransposed = false) {
  if (j + 1 >= t.rows() || t(j + 1, j) == 0.0) return false;
  const double a = t(j, j), b = t(j, j + 1);
  const double c = t(j + 1, j), d = t(j + 1, j + 1);
  const bool split = standardize2x2Impl(t, q, j, qTransposed);
  if (report &&
      (t(j, j) != a || t(j, j + 1) != b || t(j + 1, j) != c ||
       t(j + 1, j + 1) != d))
    ++report->standardizations;
  return split;
}

}  // namespace

void ReorderReport::absorb(const ReorderReport& other) {
  swaps += other.swaps;
  rejectedSwaps += other.rejectedSwaps;
  maxResidual = std::max(maxResidual, other.maxResidual);
  eigenvalueDrift += other.eigenvalueDrift;
  standardizations += other.standardizations;
}

namespace {
void standardizeQuasiTriangularImpl(Matrix& t, Matrix& q,
                                    ReorderReport* report,
                                    bool qTransposed) {
  const std::size_t n = t.rows();
  std::size_t i = 0;
  while (i + 1 < n) {
    if (t(i + 1, i) != 0.0) {
      standardizeBlockAt(t, q, i, report, qTransposed);
      i += (t(i + 1, i) != 0.0) ? 2 : 1;
    } else {
      ++i;
    }
  }
}
}  // namespace

void standardizeQuasiTriangular(Matrix& t, Matrix& q,
                                ReorderReport* report) {
  standardizeQuasiTriangularImpl(t, q, report, /*qTransposed=*/false);
}

namespace {
bool standardize2x2Impl(Matrix& t, Matrix& q, std::size_t j,
                        bool qTransposed) {
  const std::size_t n = t.rows();
  if (j + 2 > n) throw std::invalid_argument("standardize2x2: out of range");
  const Lanv2 st = lanv2(t(j, j), t(j, j + 1), t(j + 1, j), t(j + 1, j + 1));
  if (st.cs != 1.0 || st.sn != 0.0)
    applyRotation(t, q, j, st.cs, st.sn, qTransposed);
  // Overwrite the block with the exact dlanv2 outputs: the critical
  // entries (equal diagonals, exact zero on a split) must not carry the
  // round-off of the full-row/column update.
  t(j, j) = st.a;
  t(j, j + 1) = st.b;
  t(j + 1, j) = st.c;
  t(j + 1, j + 1) = st.d;
  return st.c == 0.0;
}
}  // namespace

bool standardize2x2(Matrix& t, Matrix& q, std::size_t j) {
  return standardize2x2Impl(t, q, j, /*qTransposed=*/false);
}

namespace {
bool swapAdjacentBlocksImpl(Matrix& t, Matrix& q, std::size_t j,
                            std::size_t p, std::size_t qsz,
                            ReorderReport* report, bool qTransposed) {
  const std::size_t n = t.rows();
  const std::size_t w = p + qsz;
  if (p == 0 || p > 2 || qsz == 0 || qsz > 2 || j + w > n)
    throw std::invalid_argument("swapAdjacentBlocks: out of range");
  const double eps = std::numeric_limits<double>::epsilon();

  const std::complex<double> l1 = blockEigenvalue(t, j, p);
  const std::complex<double> l2 = blockEigenvalue(t, j + p, qsz);

  if (p == 1 && qsz == 1) {
    // Direct exchange by one exact Givens rotation (dlaexc, N1 = N2 = 1):
    // [t12; t22 - t11] is the eigenvector of the window for t22; rotating
    // it onto e1 swaps the diagonal. Always backward stable, never
    // rejected, and the swapped diagonal entries are set exactly.
    const double t11 = t(j, j), t22 = t(j + 1, j + 1);
    double cs, sn;
    givens(t(j, j + 1), t22 - t11, cs, sn);
    applyRotation(t, q, j, cs, sn, qTransposed);
    t(j, j) = t22;
    t(j + 1, j + 1) = t11;
    t(j + 1, j) = 0.0;
    if (report) ++report->swaps;  // exact: residual 0, drift 0
    return true;
  }

  // General case (a 2x2 block involved): local Sylvester solve + QR, with
  // the transformation rehearsed on a window copy so a numerically bad
  // exchange can be rejected before touching t. Everything up to the
  // accept decision runs on stack scratch (w <= 4): a reordering
  // rehearses tens of thousands of windows, and the historical
  // Matrix/LU/QR small-object churn dominated its runtime.
  double win[16];
  for (std::size_t r = 0; r < w; ++r)
    for (std::size_t c = 0; c < w; ++c) win[r * w + c] = t(j + r, j + c);

  // Solve A11 X - X A22 = A12; then the columns of [-X; I] span the
  // invariant subspace of [A11 A12; 0 A22] belonging to A22's eigenvalues.
  double x[4];
  if (!smallSylvester(win, w, p, qsz, x)) {
    if (report) ++report->rejectedSwaps;
    obs::counterAdd(obs::Counter::ReorderRejectedSwaps);
    return false;
  }
  double stack[8];
  for (std::size_t r = 0; r < p; ++r)
    for (std::size_t c = 0; c < qsz; ++c) stack[r * qsz + c] = -x[r * qsz + c];
  for (std::size_t r = 0; r < qsz; ++r)
    for (std::size_t c = 0; c < qsz; ++c)
      stack[(p + r) * qsz + c] = (r == c) ? 1.0 : 0.0;
  double gf[16];  // w x w; leading qsz cols span the subspace
  smallFullQ(stack, w, qsz, gf);

  // Rehearse on the window: the lower-left qsz columns of G^T W G must
  // vanish; their largest survivor is the backward error the swap would
  // commit. Reject when it exceeds a small multiple of eps * ||window||
  // (dlaexc's acceptance threshold).
  double gw[16], reh[16];
  for (std::size_t r = 0; r < w; ++r)
    for (std::size_t c = 0; c < w; ++c) {
      double acc = 0.0;
      for (std::size_t kk = 0; kk < w; ++kk)
        acc += gf[kk * w + r] * win[kk * w + c];
      gw[r * w + c] = acc;
    }
  for (std::size_t r = 0; r < w; ++r)
    for (std::size_t c = 0; c < w; ++c) {
      double acc = 0.0;
      for (std::size_t kk = 0; kk < w; ++kk)
        acc += gw[r * w + kk] * gf[kk * w + c];
      reh[r * w + c] = acc;
    }
  double residual = 0.0;
  for (std::size_t r = qsz; r < w; ++r)
    for (std::size_t c = 0; c < qsz; ++c)
      residual = std::max(residual, std::abs(reh[r * w + c]));
  double winMax = 0.0;
  for (std::size_t i = 0; i < w * w; ++i)
    winMax = std::max(winMax, std::abs(win[i]));
  const double smlnum = std::numeric_limits<double>::min() / eps;
  const double thresh = std::max(10.0 * eps * winMax, smlnum);
  if (residual > thresh) {
    // The window-local threshold (dlaexc's choice) is too strict when the
    // window entries are small relative to the full matrix: upstream
    // orthogonal transforms already deposit round-off at the global scale,
    // so a residual at eps * ||T|| is as backward stable as the Schur
    // decomposition itself. Only reject a swap whose residual exceeds the
    // global-scale threshold too — that is the signature of a genuinely
    // ill-posed exchange (nearly shared eigenvalues), where force-zeroing
    // would visibly corrupt the spectrum.
    const double globalThresh = std::max(20.0 * eps * t.maxAbs(), smlnum);
    if (residual > globalThresh) {
      if (report) ++report->rejectedSwaps;
      obs::counterAdd(obs::Counter::ReorderRejectedSwaps);
      return false;
    }
  }

  // Accepted: apply the similarity in place, restricted to the
  // quasi-triangular profile (see applyWindowSimilarity), and accumulate
  // into q.
  Matrix g(w, w);
  for (std::size_t r = 0; r < w; ++r)
    for (std::size_t c = 0; c < w; ++c) g(r, c) = gf[r * w + c];
  applyWindowSimilarity(t, q, g, j, qTransposed);

  // Zero the decoupled lower-left block (its content — the residual — was
  // certified negligible above).
  for (std::size_t r = qsz; r < w; ++r)
    for (std::size_t c = 0; c < qsz; ++c) t(j + r, j + c) = 0.0;

  // Re-standardize the swapped blocks (a swap can leave a 2x2 block with
  // unequal diagonals, or push a near-degenerate pair onto the real axis,
  // in which case it is split into two 1x1 blocks).
  if (qsz == 2) standardizeBlockAt(t, q, j, report, qTransposed);
  if (p == 2) standardizeBlockAt(t, q, j + qsz, report, qTransposed);

  if (report) {
    ++report->swaps;
    report->maxResidual = std::max(report->maxResidual, residual);
    // Eigenvalue drift committed by this swap: blocks are exchanged, so
    // block2's pair now leads at j and block1's trails at j + qsz.
    const std::size_t s2 =
        (qsz == 2 && t(j + 1, j) == 0.0) ? 1 : qsz;  // split halves are 1x1
    const std::size_t s1 =
        (p == 2 && t(j + qsz + 1, j + qsz) == 0.0) ? 1 : p;
    double drift =
        std::abs(blockEigenvalue(t, j, s2) - l2) +
        std::abs(blockEigenvalue(t, j + qsz, s1) - l1);
    // A split block's eigenvalue pair collapsed onto the real axis: the
    // imaginary part it lost is drift too; blockEigenvalue already reports
    // the representative, so the |.| distance above covers it.
    report->eigenvalueDrift += drift;
  }
  return true;
}
}  // namespace

bool swapAdjacentBlocks(Matrix& t, Matrix& q, std::size_t j, std::size_t p,
                        std::size_t qsz, ReorderReport* report) {
  return swapAdjacentBlocksImpl(t, q, j, p, qsz, report,
                                /*qTransposed=*/false);
}

std::size_t reorderSchur(Matrix& t, Matrix& q,
                         const EigenvalueSelector& select,
                         ReorderReport* report) {
  const std::size_t n = t.rows();
  if (q.rows() != n || q.cols() != n)
    throw std::invalid_argument("reorderSchur: shape mismatch");
  ReorderReport local;
  ReorderReport& rep = report ? *report : local;
  rep = ReorderReport{};

  // Block scans assume a well-defined quasi-triangular structure; inputs
  // assembled outside realSchur may carry negligible deflation leftovers
  // that make adjacent 2x2 blocks overlap.
  repairQuasiTriangularStructure(t);

  // The whole reordering works on Q^T: thousands of swaps each rotate a
  // PAIR of Q columns, and in the transposed layout those become
  // contiguous row sweeps instead of stride-n column walks. Every update
  // performs the identical per-element arithmetic (see applyRotation), so
  // the result is bit-identical to the untransposed formulation; only the
  // two O(n^2) transposes here are extra.
  Matrix qt = q.transposed();

  // Standardization pass: every 2x2 block is brought to standard form, and
  // fused blocks whose eigenvalues are actually real are split into 1x1
  // blocks so the selector classifies each half independently.
  standardizeQuasiTriangularImpl(t, qt, &rep, /*qTransposed=*/true);

  // Bubble selected blocks to the top. `target` is the row where the next
  // selected block should land; everything above it is finalized. One scan
  // over the blocks, top to bottom, attempts to move each selected block
  // exactly once: every accepted swap updates the `starts`/`sizes`
  // bookkeeping of the two exchanged blocks, so the scan stays consistent
  // across completed and partial bubbles alike, and a rejected exchange
  // (tallied in the report) is simply left in place for the rest of the
  // scan — it is only ever re-attempted when a split forces a rescan, as
  // the split may have dissolved the offending block. Only a
  // SPLIT — a swap's internal standardization dissolving a 2x2 block into
  // two 1x1s whose halves may classify differently — invalidates the
  // structure and forces a rescan; splits are bounded by n, so this
  // terminates.
  std::size_t target = 0;
  bool rescan = true;
  while (rescan) {
    rescan = false;
    std::vector<std::size_t> sizes = blockSizes(t);
    std::vector<std::size_t> starts(sizes.size());
    std::size_t pos = 0;
    for (std::size_t b = 0; b < sizes.size(); ++b) {
      starts[b] = pos;
      pos += sizes[b];
    }
    for (std::size_t b = 0; b < sizes.size() && !rescan; ++b) {
      if (starts[b] < target) continue;
      if (!select(blockEigenvalue(t, starts[b], sizes[b]))) continue;
      // Bubble block b upward until it reaches `target`, a swap is
      // rejected, or a split forces a rescan.
      std::size_t cur = b;
      while (starts[cur] > target) {
        const std::size_t szAbove = sizes[cur - 1];
        const std::size_t szMove = sizes[cur];
        if (!swapAdjacentBlocksImpl(t, qt, starts[cur - 1], szAbove,
                                    szMove, &rep, /*qTransposed=*/true))
          break;
        const std::size_t newPos = starts[cur - 1];
        const bool movedSplit =
            szMove == 2 && t(newPos + 1, newPos) == 0.0;
        const bool aboveSplit =
            szAbove == 2 &&
            t(newPos + szMove + 1, newPos + szMove) == 0.0;
        sizes[cur - 1] = szMove;
        sizes[cur] = szAbove;
        starts[cur] = starts[cur - 1] + szMove;
        --cur;
        if (movedSplit || aboveSplit) {
          rescan = true;
          break;
        }
      }
      if (!rescan && starts[cur] == target) target += sizes[cur];
    }
  }
  q = qt.transposed();
  return target;
}

}  // namespace shhpass::linalg
