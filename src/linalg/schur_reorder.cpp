#include "linalg/schur_reorder.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "linalg/blas.hpp"
#include "linalg/lu.hpp"
#include "linalg/qr.hpp"
#include "linalg/schur.hpp"

namespace shhpass::linalg {
namespace {

// Solve the small Sylvester equation A X - X B = C (A p x p, B q x q,
// p, q <= 2) by the Kronecker-product linear system.
Matrix smallSylvester(const Matrix& a, const Matrix& b, const Matrix& c) {
  const std::size_t p = a.rows(), q = b.rows();
  Matrix k(p * q, p * q);
  // vec is column-major: x_{i,j} -> index j*p + i.
  for (std::size_t j = 0; j < q; ++j)
    for (std::size_t i = 0; i < p; ++i) {
      const std::size_t row = j * p + i;
      for (std::size_t l = 0; l < p; ++l) k(row, j * p + l) += a(i, l);
      for (std::size_t l = 0; l < q; ++l) k(row, l * p + i) -= b(l, j);
    }
  Matrix rhs(p * q, 1);
  for (std::size_t j = 0; j < q; ++j)
    for (std::size_t i = 0; i < p; ++i) rhs(j * p + i, 0) = c(i, j);
  LU lu(k);
  if (lu.isSingular(1e-13))
    throw std::runtime_error(
        "reorderSchur: adjacent blocks share an eigenvalue; swap ill-posed");
  Matrix xv = lu.solve(rhs);
  Matrix x(p, q);
  for (std::size_t j = 0; j < q; ++j)
    for (std::size_t i = 0; i < p; ++i) x(i, j) = xv(j * p + i, 0);
  return x;
}

// Block sizes of a quasi-triangular matrix starting at each block row.
std::vector<std::size_t> blockSizes(const Matrix& t) {
  std::vector<std::size_t> sizes;
  std::size_t i = 0;
  const std::size_t n = t.rows();
  while (i < n) {
    if (i + 1 < n && t(i + 1, i) != 0.0) {
      sizes.push_back(2);
      i += 2;
    } else {
      sizes.push_back(1);
      i += 1;
    }
  }
  return sizes;
}

std::complex<double> blockEigenvalue(const Matrix& t, std::size_t j,
                                     std::size_t sz) {
  if (sz == 1) return {t(j, j), 0.0};
  const double a11 = t(j, j), a12 = t(j, j + 1);
  const double a21 = t(j + 1, j), a22 = t(j + 1, j + 1);
  const double tr2 = (a11 + a22) / 2.0;
  const double det = a11 * a22 - a12 * a21;
  const double disc = tr2 * tr2 - det;
  if (disc >= 0.0) return {tr2 + std::sqrt(disc), 0.0};
  return {tr2, std::sqrt(-disc)};
}

// If the 2x2 block at (j, j) has REAL eigenvalues (blocks like this appear
// when swaps perturb a near-degenerate complex pair onto the real axis),
// rotate it to upper-triangular form so it becomes two 1x1 blocks, and
// return true. Leaving such a block fused would make the eigenvalue
// selection treat its two — possibly differently classified — real
// eigenvalues as a unit and miscount the reordered split.
bool splitRealBlock(Matrix& t, Matrix& q, std::size_t j) {
  const std::size_t n = t.rows();
  const double a11 = t(j, j), a12 = t(j, j + 1);
  const double a21 = t(j + 1, j), a22 = t(j + 1, j + 1);
  const double tr2 = (a11 + a22) / 2.0;
  const double det = a11 * a22 - a12 * a21;
  const double disc = tr2 * tr2 - det;
  if (disc < 0.0) return false;  // genuine complex pair: leave fused
  const double lambda = tr2 + (tr2 >= 0.0 ? 1.0 : -1.0) * std::sqrt(disc);
  // Eigenvector of [a11 a12; a21 a22] for `lambda`, taken from whichever
  // row gives the better-conditioned representation.
  double v1 = a12, v2 = lambda - a11;
  if (std::abs(lambda - a22) + std::abs(a21) >
      std::abs(v1) + std::abs(v2)) {
    v1 = lambda - a22;
    v2 = a21;
  }
  const double nrm = std::hypot(v1, v2);
  if (nrm == 0.0) return false;  // defective beyond help; leave it
  const double c = v1 / nrm, s = v2 / nrm;
  // Givens G = [c -s; s c] maps e1 onto the eigenvector: G^T B G is upper
  // triangular with `lambda` in the (0,0) slot. Apply the similarity to
  // the full T and accumulate into Q, as in swapSchurBlocks.
  for (std::size_t col = 0; col < n; ++col) {
    const double x = t(j, col), y = t(j + 1, col);
    t(j, col) = c * x + s * y;
    t(j + 1, col) = -s * x + c * y;
  }
  for (std::size_t row = 0; row < n; ++row) {
    const double x = t(row, j), y = t(row, j + 1);
    t(row, j) = c * x + s * y;
    t(row, j + 1) = -s * x + c * y;
    const double qx = q(row, j), qy = q(row, j + 1);
    q(row, j) = c * qx + s * qy;
    q(row, j + 1) = -s * qx + c * qy;
  }
  t(j + 1, j) = 0.0;
  return true;
}

}  // namespace

void swapSchurBlocks(Matrix& t, Matrix& q, std::size_t j, std::size_t p,
                     std::size_t qsz) {
  const std::size_t n = t.rows();
  const std::size_t w = p + qsz;
  if (j + w > n) throw std::invalid_argument("swapSchurBlocks: out of range");
  Matrix a11 = t.block(j, j, p, p);
  Matrix a12 = t.block(j, j + p, p, qsz);
  Matrix a22 = t.block(j + p, j + p, qsz, qsz);

  // Solve A11 X - X A22 = A12; then the columns of [-X; I] span the
  // invariant subspace of [A11 A12; 0 A22] belonging to A22's eigenvalues.
  Matrix x = smallSylvester(a11, a22, a12);
  Matrix stack(w, qsz);
  stack.setBlock(0, 0, -1.0 * x);
  stack.setBlock(p, 0, Matrix::identity(qsz));
  QR qr(stack);
  Matrix g = qr.fullQ();  // w x w orthogonal, leading qsz cols span subspace

  // Apply the similarity on the window: rows j..j+w-1 and cols j..j+w-1 of
  // the full matrix, plus the coupling rows/columns outside the window.
  // T <- G^T T G restricted appropriately; Q <- Q G.
  // Rows of the window across all columns j..n-1:
  Matrix rows = t.block(j, 0, w, n);
  Matrix newRows = multiply(g, true, rows, false);
  t.setBlock(j, 0, newRows);
  // Columns of the window across all rows 0..j+w-1:
  Matrix cols = t.block(0, j, n, w);
  Matrix newCols = cols * g;
  t.setBlock(0, j, newCols);
  // Accumulate into q.
  Matrix qcols = q.block(0, j, n, w);
  q.setBlock(0, j, qcols * g);

  // Zero the now-decoupled lower-left block of the window and any
  // round-off below it.
  for (std::size_t r = qsz; r < w; ++r)
    for (std::size_t c = 0; c < std::min(r, qsz); ++c) t(j + r, j + c) = 0.0;
  // Clean the interior subdiagonals of the swapped 1x1 blocks.
  if (qsz == 1 && p == 1) t(j + 1, j) = 0.0;
  // 2x2 blocks whose eigenvalues drifted onto the real axis are NOT
  // handled here: reorderSchur splits them (splitRealBlock) before each
  // selection pass, because a fused real pair straddling the selection
  // boundary would be misclassified as a unit.
}

std::size_t reorderSchur(Matrix& t, Matrix& q,
                         const EigenvalueSelector& select) {
  const std::size_t n = t.rows();
  if (q.rows() != n || q.cols() != n)
    throw std::invalid_argument("reorderSchur: shape mismatch");
  // Bubble selected blocks to the top, one adjacent swap at a time.
  // `target` is the row index where the next selected block should land.
  std::size_t target = 0;
  while (true) {
    // Re-scan block structure (swaps can perturb positions).
    std::vector<std::size_t> sizes = blockSizes(t);
    std::vector<std::size_t> starts(sizes.size());
    std::size_t pos = 0;
    for (std::size_t b = 0; b < sizes.size(); ++b) {
      starts[b] = pos;
      pos += sizes[b];
    }
    // Standardize: swaps can push a near-degenerate complex pair onto the
    // real axis, leaving a fused 2x2 block with two real eigenvalues that
    // the selector could classify differently. Split those into 1x1 blocks
    // and re-scan before selecting.
    bool didSplit = false;
    for (std::size_t b = 0; b < sizes.size(); ++b)
      if (sizes[b] == 2 && splitRealBlock(t, q, starts[b])) didSplit = true;
    if (didSplit) continue;
    // Find the first selected block at or after `target`.
    std::size_t bsel = sizes.size();
    for (std::size_t b = 0; b < sizes.size(); ++b) {
      if (starts[b] < target) continue;
      if (select(blockEigenvalue(t, starts[b], sizes[b]))) {
        bsel = b;
        break;
      }
    }
    if (bsel == sizes.size()) break;  // no more selected blocks below target
    // Bubble block bsel upward until it sits at `target`.
    std::size_t b = bsel;
    while (b > 0 && starts[b] > target) {
      swapSchurBlocks(t, q, starts[b - 1], sizes[b - 1], sizes[b]);
      std::swap(sizes[b - 1], sizes[b]);
      starts[b] = starts[b - 1] + sizes[b - 1];
      --b;
    }
    target += sizes[b];
  }
  return target;
}

}  // namespace shhpass::linalg
