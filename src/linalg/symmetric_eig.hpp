// Symmetric eigenvalue decomposition A = V diag(w) V^T via Householder
// tridiagonalization followed by the implicit-shift QL iteration.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace shhpass::linalg {

/// Eigen-decomposition of a real symmetric matrix.
///
/// Eigenvalues are returned sorted ascending; eigenvectors (when requested)
/// are the matching columns of `eigenvectors()` and form an orthonormal set.
class SymmetricEig {
 public:
  /// Decompose `a` (must be square; only the lower triangle is referenced
  /// after an internal symmetrization). Set wantVectors=false to skip the
  /// accumulation of V for a pure eigenvalue query.
  explicit SymmetricEig(const Matrix& a, bool wantVectors = true);

  const std::vector<double>& eigenvalues() const { return w_; }
  const Matrix& eigenvectors() const { return v_; }

 private:
  std::vector<double> w_;
  Matrix v_;
};

}  // namespace shhpass::linalg
