#include "linalg/cholesky.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/symmetric_eig.hpp"

namespace shhpass::linalg {

Cholesky::Cholesky(const Matrix& a) : l_(a.rows(), a.cols()) {
  if (!a.isSquare()) throw std::invalid_argument("Cholesky: not square");
  const std::size_t n = a.rows();
  ok_ = true;
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= l_(j, k) * l_(j, k);
    if (d <= 0.0) {
      ok_ = false;
      return;
    }
    l_(j, j) = std::sqrt(d);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l_(i, k) * l_(j, k);
      l_(i, j) = s / l_(j, j);
    }
  }
}

Matrix Cholesky::solve(const Matrix& b) const {
  if (!ok_) throw std::runtime_error("Cholesky::solve: matrix was not SPD");
  const std::size_t n = l_.rows();
  if (b.rows() != n)
    throw std::invalid_argument("Cholesky::solve: shape mismatch");
  Matrix x = b;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < i; ++k)
      for (std::size_t j = 0; j < b.cols(); ++j)
        x(i, j) -= l_(i, k) * x(k, j);
    for (std::size_t j = 0; j < b.cols(); ++j) x(i, j) /= l_(i, i);
  }
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t k = ii + 1; k < n; ++k)
      for (std::size_t j = 0; j < b.cols(); ++j)
        x(ii, j) -= l_(k, ii) * x(k, j);
    for (std::size_t j = 0; j < b.cols(); ++j) x(ii, j) /= l_(ii, ii);
  }
  return x;
}

Matrix Cholesky::lowerSolve(const Matrix& b) const {
  if (!ok_) throw std::runtime_error("Cholesky::lowerSolve: not SPD");
  const std::size_t n = l_.rows();
  if (b.rows() != n)
    throw std::invalid_argument("Cholesky::lowerSolve: shape mismatch");
  Matrix x = b;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < i; ++k)
      for (std::size_t j = 0; j < b.cols(); ++j)
        x(i, j) -= l_(i, k) * x(k, j);
    for (std::size_t j = 0; j < b.cols(); ++j) x(i, j) /= l_(i, i);
  }
  return x;
}

bool isPositiveSemidefinite(const Matrix& a, double tol) {
  if (!a.isSquare())
    throw std::invalid_argument("isPositiveSemidefinite: not square");
  if (a.rows() == 0) return true;
  const double scale = std::max(1.0, a.maxAbs());
  const double shift = tol * scale;
  // Fast sufficient test: Cholesky of the DOWN-shifted matrix succeeding
  // proves lambda_min(a) > shift >= -shift, the exact-path acceptance
  // condition, so accepting here returns the same verdict the eigenvalue
  // check would — at O(n^3/3) instead of a full tridiagonalization + QL.
  Matrix shifted = a;
  for (std::size_t i = 0; i < a.rows(); ++i) shifted(i, i) -= shift;
  if (Cholesky(shifted).success()) return true;
  // Marginal or indefinite: settle it with the exact smallest eigenvalue.
  SymmetricEig eig(a, /*wantVectors=*/false);
  return eig.eigenvalues().front() >= -shift;
}

}  // namespace shhpass::linalg
