// Dense real matrix type used throughout shhpass.
//
// Row-major storage of doubles. This is the foundation for the from-scratch
// linear-algebra substrate (LU/QR/SVD/Schur/QZ) that the SHH passivity test
// builds on; no external BLAS/LAPACK is used.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <vector>

#include "obs/alloc.hpp"

namespace shhpass::linalg {

/// Dense real (double) matrix, row-major.
///
/// Sizes are ordinary `std::size_t`; an empty matrix has rows()==cols()==0.
/// All arithmetic throws `std::invalid_argument` on dimension mismatch.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// r x c matrix with every entry set to `fill`.
  Matrix(std::size_t r, std::size_t c, double fill = 0.0);

  /// Build from nested initializer lists: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// n x n identity.
  static Matrix identity(std::size_t n);
  /// r x c all-zero matrix.
  static Matrix zeros(std::size_t r, std::size_t c);
  /// r x c all-one matrix.
  static Matrix ones(std::size_t r, std::size_t c);
  /// Square matrix with `d` on the diagonal.
  static Matrix diag(const std::vector<double>& d);
  /// The 2n x 2n symplectic unit J = [0 I; -I 0].
  static Matrix symplecticJ(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }
  bool isSquare() const { return rows_ == cols_; }

  double& operator()(std::size_t i, std::size_t j) {
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    return data_[i * cols_ + j];
  }

  /// Raw row-major storage (size rows()*cols()).
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  Matrix transposed() const;

  /// Copy of the p x q block with top-left corner (i, j).
  Matrix block(std::size_t i, std::size_t j, std::size_t p,
               std::size_t q) const;
  /// Overwrite the block with top-left corner (i, j) by `b`.
  void setBlock(std::size_t i, std::size_t j, const Matrix& b);

  /// Copy of column j as an n x 1 matrix.
  Matrix col(std::size_t j) const;
  /// Copy of row i as a 1 x n matrix.
  Matrix row(std::size_t i) const;

  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(double s);

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }
  friend Matrix operator-(Matrix a) { return a *= -1.0; }

  /// Matrix product (throws on inner-dimension mismatch).
  friend Matrix operator*(const Matrix& a, const Matrix& b);

  /// Frobenius norm.
  double normFrobenius() const;
  /// Largest absolute entry (max norm); 0 for empty matrices.
  double maxAbs() const;
  /// Induced 1-norm (max absolute column sum).
  double norm1() const;
  /// Induced infinity-norm (max absolute row sum).
  double normInf() const;
  /// Sum of diagonal entries (square only).
  double trace() const;

  /// Entrywise comparison: max |a_ij - b_ij| <= tol. Shapes must match.
  bool approxEqual(const Matrix& o, double tol) const;

  /// True iff ||A - A^T||_max <= tol (square only).
  bool isSymmetric(double tol = 0.0) const;
  /// True iff ||A + A^T||_max <= tol (square only).
  bool isSkewSymmetric(double tol = 0.0) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  /// Storage goes through the obs counting allocator so per-stage peak
  /// bytes in AnalysisReport reflect the numeric working set.
  std::vector<double, obs::CountingAllocator<double>> data_;
};

/// Horizontal concatenation [a b] (row counts must match; empty args allowed).
Matrix hcat(const Matrix& a, const Matrix& b);
/// Vertical concatenation [a; b] (column counts must match; empty args allowed).
Matrix vcat(const Matrix& a, const Matrix& b);

/// Pretty-print with aligned columns (for debugging / examples).
std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace shhpass::linalg
