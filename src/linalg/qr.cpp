#include "linalg/qr.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "linalg/blas.hpp"
#include "linalg/householder.hpp"

namespace shhpass::linalg {

QR::QR(const Matrix& a, bool columnPivoting)
    : qr_(a),
      tau_(std::min(a.rows(), a.cols()), 0.0),
      perm_(a.cols()),
      pivoted_(columnPivoting) {
  std::iota(perm_.begin(), perm_.end(), 0);
  blocked_ = !pivoted_ && a.rows() >= kQrWyMinRows;
  if (blocked_)
    factorBlocked();
  else
    factorUnblocked();
}

void QR::generateReflector(std::size_t k) {
  const std::size_t m = qr_.rows();
  double scale = 0.0;
  for (std::size_t i = k; i < m; ++i)
    scale = std::max(scale, std::abs(qr_(i, k)));
  if (scale == 0.0) {
    tau_[k] = 0.0;
    return;
  }
  double sigma = 0.0;
  for (std::size_t i = k; i < m; ++i) {
    const double v = qr_(i, k) / scale;
    sigma += v * v;
  }
  double alpha = scale * std::sqrt(sigma);
  if (qr_(k, k) > 0) alpha = -alpha;
  const double v0 = qr_(k, k) - alpha;
  // Reflector v normalized so v[k] = 1; tau = -v0/alpha gives H = I - tau vv^T.
  tau_[k] = -v0 / alpha;
  for (std::size_t i = k + 1; i < m; ++i) qr_(i, k) /= v0;
  qr_(k, k) = alpha;
}

void QR::factorUnblocked() {
  const std::size_t m = qr_.rows(), n = qr_.cols();
  std::vector<double> colNorms(n);
  if (pivoted_)
    for (std::size_t j = 0; j < n; ++j) colNorms[j] = colNorm(qr_, j);

  const std::size_t kmax = std::min(m, n);
  for (std::size_t k = 0; k < kmax; ++k) {
    if (pivoted_) {
      // Select the remaining column with the largest trailing norm.
      std::size_t best = k;
      double bestNorm = colNorms[k];
      for (std::size_t j = k + 1; j < n; ++j)
        if (colNorms[j] > bestNorm) {
          bestNorm = colNorms[j];
          best = j;
        }
      if (best != k) {
        for (std::size_t i = 0; i < m; ++i) std::swap(qr_(i, k), qr_(i, best));
        std::swap(perm_[k], perm_[best]);
        std::swap(colNorms[k], colNorms[best]);
      }
    }
    generateReflector(k);
    if (tau_[k] == 0.0) continue;
    // Apply H to the trailing columns.
    for (std::size_t j = k + 1; j < n; ++j) {
      double s = qr_(k, j);
      for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, k) * qr_(i, j);
      s *= tau_[k];
      qr_(k, j) -= s;
      for (std::size_t i = k + 1; i < m; ++i) qr_(i, j) -= s * qr_(i, k);
    }
    if (pivoted_) {
      // Downdate trailing column norms (recompute when cancellation bites).
      for (std::size_t j = k + 1; j < n; ++j) {
        if (colNorms[j] == 0.0) continue;
        const double t = std::abs(qr_(k, j)) / colNorms[j];
        const double f = std::max(0.0, (1.0 - t) * (1.0 + t));
        colNorms[j] *= std::sqrt(f);
        if (f < 1e-10) {
          // Recompute from scratch over rows k+1..m-1.
          double s = 0.0;
          for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, j) * qr_(i, j);
          colNorms[j] = std::sqrt(s);
        }
      }
    }
  }
}

Matrix QR::panelV(std::size_t k0, std::size_t kb) const {
  const std::size_t m = qr_.rows();
  Matrix v(m - k0, kb);
  for (std::size_t c = 0; c < kb; ++c) {
    v(c, c) = 1.0;
    for (std::size_t r = c + 1; r < m - k0; ++r)
      v(r, c) = qr_(k0 + r, k0 + c);
  }
  return v;
}

void QR::factorBlocked() {
  const std::size_t m = qr_.rows(), n = qr_.cols();
  const std::size_t kmax = std::min(m, n);
  for (std::size_t k0 = 0; k0 < kmax; k0 += kQrBlock) {
    const std::size_t kb = std::min(kQrBlock, kmax - k0);
    // Rank-1 factorization of the panel (trailing updates restricted to
    // the panel's own columns).
    for (std::size_t k = k0; k < k0 + kb; ++k) {
      generateReflector(k);
      if (tau_[k] == 0.0) continue;
      for (std::size_t j = k + 1; j < k0 + kb; ++j) {
        double s = qr_(k, j);
        for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, k) * qr_(i, j);
        s *= tau_[k];
        qr_(k, j) -= s;
        for (std::size_t i = k + 1; i < m; ++i) qr_(i, j) -= s * qr_(i, k);
      }
    }
    // Aggregate the panel into compact-WY form and update the trailing
    // columns with one block application (three gemms).
    const Matrix v = panelV(k0, kb);
    Matrix t = buildCompactWyT(
        v, std::vector<double>(tau_.begin() + k0, tau_.begin() + k0 + kb));
    if (k0 + kb < n) {
      Matrix c = qr_.block(k0, k0 + kb, m - k0, n - k0 - kb);
      applyBlockReflectorLeft(v, t, /*transpose=*/true, c);
      qr_.setBlock(k0, k0 + kb, c);
    }
    tFactors_.push_back(std::move(t));
  }
}

Matrix QR::applyQt(const Matrix& b) const {
  const std::size_t m = qr_.rows();
  if (b.rows() != m) throw std::invalid_argument("QR::applyQt: shape mismatch");
  Matrix x = b;
  if (blocked_) {
    // Q^T = (panel_last)^T ... (panel_0)^T applied in ascending order;
    // each panel touches rows k0.. only.
    for (std::size_t p = 0; p < tFactors_.size(); ++p) {
      const std::size_t k0 = p * kQrBlock;
      const std::size_t kb = tFactors_[p].rows();
      Matrix sub = x.block(k0, 0, m - k0, x.cols());
      applyBlockReflectorLeft(panelV(k0, kb), tFactors_[p],
                              /*transpose=*/true, sub);
      x.setBlock(k0, 0, sub);
    }
    return x;
  }
  for (std::size_t k = 0; k < tau_.size(); ++k) {
    if (tau_[k] == 0.0) continue;
    for (std::size_t j = 0; j < x.cols(); ++j) {
      double s = x(k, j);
      for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, k) * x(i, j);
      s *= tau_[k];
      x(k, j) -= s;
      for (std::size_t i = k + 1; i < m; ++i) x(i, j) -= s * qr_(i, k);
    }
  }
  return x;
}

Matrix QR::applyQ(const Matrix& b) const {
  const std::size_t m = qr_.rows();
  if (b.rows() != m) throw std::invalid_argument("QR::applyQ: shape mismatch");
  Matrix x = b;
  if (blocked_) {
    // Q = panel_0 panel_1 ... applied in descending order.
    for (std::size_t p = tFactors_.size(); p-- > 0;) {
      const std::size_t k0 = p * kQrBlock;
      const std::size_t kb = tFactors_[p].rows();
      Matrix sub = x.block(k0, 0, m - k0, x.cols());
      applyBlockReflectorLeft(panelV(k0, kb), tFactors_[p],
                              /*transpose=*/false, sub);
      x.setBlock(k0, 0, sub);
    }
    return x;
  }
  for (std::size_t kk = tau_.size(); kk-- > 0;) {
    const std::size_t k = kk;
    if (tau_[k] == 0.0) continue;
    for (std::size_t j = 0; j < x.cols(); ++j) {
      double s = x(k, j);
      for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, k) * x(i, j);
      s *= tau_[k];
      x(k, j) -= s;
      for (std::size_t i = k + 1; i < m; ++i) x(i, j) -= s * qr_(i, k);
    }
  }
  return x;
}

Matrix QR::thinQ() const {
  const std::size_t m = qr_.rows();
  const std::size_t k = std::min(m, qr_.cols());
  Matrix e(m, k);
  for (std::size_t i = 0; i < k; ++i) e(i, i) = 1.0;
  return applyQ(e);
}

Matrix QR::fullQ() const { return applyQ(Matrix::identity(qr_.rows())); }

Matrix QR::r() const {
  const std::size_t k = std::min(qr_.rows(), qr_.cols());
  Matrix rr(k, qr_.cols());
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = i; j < qr_.cols(); ++j) rr(i, j) = qr_(i, j);
  return rr;
}

std::size_t QR::rank(double tol) const {
  if (!pivoted_)
    throw std::logic_error("QR::rank requires column pivoting");
  const std::size_t k = std::min(qr_.rows(), qr_.cols());
  if (k == 0) return 0;
  const double r00 = std::abs(qr_(0, 0));
  if (r00 == 0.0) return 0;
  std::size_t rank = 0;
  for (std::size_t i = 0; i < k; ++i)
    if (std::abs(qr_(i, i)) > tol * r00) ++rank;
  return rank;
}

Matrix QR::solve(const Matrix& b) const {
  const std::size_t n = qr_.cols();
  const std::size_t k = std::min(qr_.rows(), n);
  if (k < n) throw std::runtime_error("QR::solve: underdetermined system");
  Matrix y = applyQt(b);
  Matrix x(n, b.cols());
  for (std::size_t ii = n; ii-- > 0;) {
    const double d = qr_(ii, ii);
    if (d == 0.0) throw std::runtime_error("QR::solve: rank deficient");
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double s = y(ii, j);
      for (std::size_t p = ii + 1; p < n; ++p) s -= qr_(ii, p) * x(p, j);
      x(ii, j) = s / d;
    }
  }
  // Undo pivoting: x_original(perm_[i]) = x(i).
  if (pivoted_) {
    Matrix xp(n, b.cols());
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < b.cols(); ++j) xp(perm_[i], j) = x(i, j);
    return xp;
  }
  return x;
}

Matrix orthonormalRange(const Matrix& a, double tol) {
  if (a.empty()) return Matrix(a.rows(), 0);
  QR qr(a, /*columnPivoting=*/true);
  const std::size_t r = qr.rank(tol);
  Matrix q = qr.thinQ();
  return q.block(0, 0, q.rows(), r);
}

Matrix orthonormalComplement(const Matrix& v) {
  const std::size_t m = v.rows();
  const std::size_t k = v.cols();
  if (k > m)
    throw std::invalid_argument("orthonormalComplement: more cols than rows");
  if (k == 0) return Matrix::identity(m);
  QR qr(v, /*columnPivoting=*/false);
  Matrix q = qr.fullQ();
  return q.block(0, k, m, m - k);
}

}  // namespace shhpass::linalg
