// LU factorization with partial pivoting and dense linear solves.
#pragma once

#include "linalg/matrix.hpp"

namespace shhpass::linalg {

/// Solve the tiny dense system A x = b in place on caller storage (a is
/// n x n row-major and is destroyed; the solution overwrites b), with
/// partial pivoting. Returns false — without solving — when the system is
/// numerically singular under the LU::isSingular criterion
/// (min pivot <= tol * max pivot). An allocation-free fast path for the
/// Kronecker systems (n <= 4) that the Schur-reorder swap rehearsals and
/// the quasi-triangular Sylvester back-substitution solve tens of
/// thousands of times per reordering.
bool solveSmallDense(double* a, double* b, std::size_t n, double tol);

/// PA = LU factorization with partial (row) pivoting.
class LU {
 public:
  /// Factor a square matrix. Singular (to working precision) matrices are
  /// detected lazily: `isSingular()` reports a zero pivot; `solve` throws.
  explicit LU(const Matrix& a);

  /// True if a pivot was exactly zero or below `tol * maxAbs`.
  bool isSingular(double tol = 0.0) const;

  /// Solve A X = B (B may have multiple right-hand sides).
  Matrix solve(const Matrix& b) const;

  /// Solve A^T X = B.
  Matrix solveTransposed(const Matrix& b) const;

  /// det(A) via product of pivots and permutation sign.
  double determinant() const;

  /// A^{-1} (throws if singular).
  Matrix inverse() const;

  /// Reciprocal condition estimate in the 1-norm (cheap Hager-style bound).
  double rcond(double anorm1) const;

 private:
  Matrix lu_;                    // packed L (unit lower) and U
  std::vector<std::size_t> p_;   // row permutation
  int permSign_ = 1;
  double minPivot_ = 0.0;
  double maxPivot_ = 0.0;
};

/// Convenience: solve A X = B with a fresh LU; throws on singular A.
Matrix solve(const Matrix& a, const Matrix& b);

/// Convenience: A^{-1}; throws on singular A.
Matrix inverse(const Matrix& a);

}  // namespace shhpass::linalg
