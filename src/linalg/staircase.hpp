// Rank-revealing row/column compression — the primitive under the one-pass
// staircase deflation chain (GUPTRI-style) that replaced the repeated
// full-SVD chains of the impulse-deflation, nondynamic-removal, and
// m1-extraction stages.
//
// A Compression is a certificate about ONE matrix M: the full list of its
// singular values (so every rank decision still goes through the shared
// resolveRankTol / rankFromSingularValues policy and lands in a
// RankReport), plus orthonormal bases of the requested fundamental
// subspaces. Four kernels produce that certificate at very different
// costs, picked by structure:
//
//   * Diagonal        — M square with exactly-zero off-diagonal (the
//                       balanced benchmark E): sigma = |d_i| sorted, bases
//                       are signed unit columns. O(n^2) detect, O(n*r)
//                       assembly.
//   * QrSvd           — tall (or, transposed internally, wide) M:
//                       blocked non-pivoted QR, then a full SVD of the
//                       small R factor. sigma(R) == sigma(M) exactly
//                       (orthogonal invariance), so the certificate is as
//                       strong as a full SVD at a fraction of the cost;
//                       range/left-null bases come from applyQ.
//   * SkewTridiagonal — M square and exactly skew-symmetric (E1 after
//                       skewSymmetrize): Hessenberg reduction of a skew
//                       matrix is a skew tridiagonalization; the odd/even
//                       permutation turns the tridiagonal into
//                       [[0, C], [-C^T, 0]] with C lower bidiagonal of
//                       half size, whose Givens-QR + bidiagonal sweep
//                       (the SVD kernel's own rotation engine) delivers
//                       every sigma of M (each sigma(C) twice, plus a
//                       structural zero when the order is odd) and exactly
//                       orthonormal range/kernel bases. One BLAS-3
//                       Hessenberg + half-size O(n^2) work instead of a
//                       full-size SVD.
//   * Svd             — certified fallback: a full SVD(M). Always valid;
//                       counted in StaircaseReport::svdFallbacks so the
//                       diagnostics show when the structured paths did
//                       not engage.
//
// Every kernel feeds the SAME rank policy with the SAME (full-accuracy)
// singular values; the kernels differ only in how the bases are
// assembled. Bit-determinism: all building blocks (gemm, blocked QR,
// blocked Hessenberg, blocked SVD, the bidiagonal sweep) are
// bit-deterministic for every setGemmThreads() setting, so a Compression
// — and the whole staircase chain above it — is too.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/svd.hpp"

namespace shhpass::linalg {

/// Smallest pencil order for which the deflation chains dispatch to the
/// staircase path. Below it the legacy SVD-chain implementations run (same
/// kernel sequence as the pre-staircase library, plus the "twice is
/// enough" re-orthogonalization bugfix), which keeps the golden-set
/// decision path on the historical kernels; the retained chains also
/// serve as the equivalence oracle for the seeded staircase suite.
inline constexpr std::size_t kStaircaseCrossover = 256;

/// Which compression kernel ran (or, in options, is requested).
enum class CompressionKernel { Auto, Svd, Diagonal, QrSvd, SkewTridiagonal };

/// Per-stage health record of the staircase path, threaded through the
/// stage results into AnalysisReport diagnostics (next to RankReport).
struct StaircaseReport {
  std::size_t compressions = 0;       ///< Compressions computed.
  std::size_t svdFallbacks = 0;       ///< ... that fell back to a full SVD.
  std::size_t diagonalFastPaths = 0;  ///< ... served by the diagonal kernel.
  std::size_t qrCompressions = 0;     ///< ... served by the QR+small-SVD kernel.
  std::size_t skewTridiagonalizations = 0;  ///< ... by the skew kernel.
  std::size_t reusedCompressions = 0; ///< Consumers served by a compression
                                      ///< computed earlier in the chain
                                      ///< (the legacy chains recompute).
  std::size_t chainLength = 0;        ///< Staircase steps executed.
  std::size_t truncatedSteps = 0;     ///< Steps skipped because the
                                      ///< deflation subspace stabilized.

  /// Accumulate another report (plain sums).
  void merge(const StaircaseReport& other);
};

/// What compress() should assemble. Singular values and the rank decision
/// are always produced; bases are opt-in because some are much more
/// expensive than others (e.g. the left nullspace of a tall matrix costs
/// a full-Q application).
struct CompressionOptions {
  double rankTol = -1.0;  ///< Shared rank policy tolerance (< 0: default).
  CompressionKernel kernel = CompressionKernel::Auto;
  bool wantRange = false;          ///< Orthonormal basis of Im(M), m x r.
  bool wantCorange = false;        ///< Basis of Im(M^T), n x r.
  bool wantNullspace = false;      ///< Basis of Ker(M), n x (n - r).
  bool wantLeftNullspace = false;  ///< Basis of Ker(M^T), m x (m - r).
};

/// A certified rank-revealing compression of one matrix. Bases that were
/// not requested are left empty (0 columns with the correct row count).
struct Compression {
  std::size_t rows = 0, cols = 0;
  CompressionKernel kernelUsed = CompressionKernel::Svd;
  std::vector<double> sigma;  ///< All min(m, n) singular values, descending.
  double resolvedTol = 0.0;   ///< The cutoff the rank decision used.
  std::size_t rank = 0;       ///< Shared-policy rank (recorded in reports).
  Matrix range;               ///< m x rank.
  Matrix corange;             ///< n x rank.
  Matrix nullspace;           ///< n x (n - rank).
  Matrix leftNullspace;       ///< m x (m - rank).

  std::size_t nullity() const { return cols - rank; }

  /// Minimum-norm pseudoinverse application M^+ b = corange * S_r^{-1} *
  /// range^T b. Requires wantRange and wantCorange.
  Matrix applyPinv(const Matrix& b) const;

  /// Pseudoinverse of the TRANSPOSE: (M^T)^+ b = range * S_r^{-1} *
  /// corange^T b. Lets one compression of E serve both E^+ and (E^T)^+
  /// consumers. Requires wantRange and wantCorange.
  Matrix applyPinvTranspose(const Matrix& b) const;
};

/// Compute a compression of `m`. The rank decision is recorded into
/// `rankReport` (when non-null) through rankFromSingularValues, exactly
/// like a direct SVD rank() call would; kernel/ fallback counters go into
/// `stairReport` (when non-null). Kernel Auto picks, in order: Diagonal
/// (exact structural test), SkewTridiagonal (square, exactly skew, order
/// >= 16), QrSvd (aspect ratio >= 2), else the Svd fallback. Requesting a
/// specific kernel whose structural precondition fails throws
/// std::invalid_argument.
Compression compress(const Matrix& m, const CompressionOptions& opts,
                     RankReport* rankReport = nullptr,
                     StaircaseReport* stairReport = nullptr);

/// True iff `m` is square with every off-diagonal entry exactly zero
/// (the structural precondition of the Diagonal kernel).
bool isExactlyDiagonal(const Matrix& m);

/// (I - B B^T) m for an orthonormal-column basis B, with one
/// re-orthogonalization pass ("twice is enough", Kahan/Parlett): a single
/// classical pass leaves a residual of order eps * kappa along the basis
/// when a column of m is nearly contained in span(B); the second pass
/// reduces it to order eps. Shared by every deflation-chain projection.
Matrix projectOutTwice(const Matrix& basis, const Matrix& m);

}  // namespace shhpass::linalg
