#include "linalg/blas.hpp"

#include <cmath>
#include <stdexcept>

namespace shhpass::linalg {

void gemm(double alpha, const Matrix& a, bool transA, const Matrix& b,
          bool transB, double beta, Matrix& c) {
  const std::size_t m = transA ? a.cols() : a.rows();
  const std::size_t k = transA ? a.rows() : a.cols();
  const std::size_t kb = transB ? b.cols() : b.rows();
  const std::size_t n = transB ? b.rows() : b.cols();
  if (k != kb) throw std::invalid_argument("gemm: inner dimension mismatch");
  if (c.rows() != m || c.cols() != n)
    throw std::invalid_argument("gemm: output shape mismatch");

  if (beta != 1.0) c *= beta;
  auto A = [&](std::size_t i, std::size_t p) {
    return transA ? a(p, i) : a(i, p);
  };
  auto B = [&](std::size_t p, std::size_t j) {
    return transB ? b(j, p) : b(p, j);
  };
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const double v = alpha * A(i, p);
      if (v == 0.0) continue;
      for (std::size_t j = 0; j < n; ++j) c(i, j) += v * B(p, j);
    }
  }
}

Matrix multiply(const Matrix& a, bool transA, const Matrix& b, bool transB) {
  const std::size_t m = transA ? a.cols() : a.rows();
  const std::size_t n = transB ? b.rows() : b.cols();
  Matrix c(m, n);
  gemm(1.0, a, transA, b, transB, 0.0, c);
  return c;
}

Matrix atb(const Matrix& a, const Matrix& b) {
  return multiply(a, true, b, false);
}

Matrix abt(const Matrix& a, const Matrix& b) {
  return multiply(a, false, b, true);
}

double colDot(const Matrix& a, std::size_t ja, const Matrix& b,
              std::size_t jb) {
  if (a.rows() != b.rows()) throw std::invalid_argument("colDot: row mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) s += a(i, ja) * b(i, jb);
  return s;
}

double colNorm(const Matrix& a, std::size_t j) {
  // Two-pass scaled norm to avoid overflow/underflow.
  double scale = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    scale = std::max(scale, std::abs(a(i, j)));
  if (scale == 0.0) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double v = a(i, j) / scale;
    s += v * v;
  }
  return scale * std::sqrt(s);
}

void symmetrize(Matrix& a) {
  if (!a.isSquare()) throw std::invalid_argument("symmetrize: not square");
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = i + 1; j < a.cols(); ++j) {
      const double v = 0.5 * (a(i, j) + a(j, i));
      a(i, j) = v;
      a(j, i) = v;
    }
}

void skewSymmetrize(Matrix& a) {
  if (!a.isSquare()) throw std::invalid_argument("skewSymmetrize: not square");
  for (std::size_t i = 0; i < a.rows(); ++i) {
    a(i, i) = 0.0;
    for (std::size_t j = i + 1; j < a.cols(); ++j) {
      const double v = 0.5 * (a(i, j) - a(j, i));
      a(i, j) = v;
      a(j, i) = -v;
    }
  }
}

}  // namespace shhpass::linalg
