#include "linalg/blas.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#endif

#include "api/thread_pool.hpp"

namespace shhpass::linalg {
namespace {

constexpr std::size_t MR = kGemmMr;
constexpr std::size_t NR = kGemmNr;
constexpr std::size_t MC = kGemmMc;
constexpr std::size_t KC = kGemmKc;
constexpr std::size_t NC = kGemmNc;

// ------------------------------------------------------------- thread pool
// The kernel pool is created lazily on the first setGemmThreads(t > 1) and
// torn down / resized on later calls. It is shared process-wide; see the
// threading contract in blas.hpp.
//
// The pool is held by shared_ptr so that setGemmThreads() concurrent with
// an in-flight threaded gemm is race-free: the gemm copies the pointer
// under gPoolMutex and keeps the old pool alive until its own panels have
// drained; the replacement pool's workers join when the last reference
// drops. Regression note: before PR 6 this was a unique_ptr whose reset
// could destroy (and join) a pool another thread was still submitting to —
// a use-after-free ThreadSanitizer flags in the setGemmThreads/gemm
// interleaving test of tests/test_thread_pool_stress.cpp.
std::mutex gPoolMutex;
std::shared_ptr<api::ThreadPool> gPool;
std::size_t gThreads = 1;
bool gThreadsConfigured = false;  // setGemmThreads() ran (beats the env)
std::once_flag gEnvInitFlag;

// Per-call budget installed by GemmThreadBudgetScope (blas.hpp): caps the
// fan-out of gemms issued from this thread without touching the
// process-wide pool configuration. Thread-local by design — concurrent
// batch shards each carry their own budget with no shared state.
thread_local std::size_t tGemmBudget = 0;

// Pre: gPoolMutex held. Installs a pool of t workers (t > 1) or removes
// the pool (t <= 1). Never joins under the mutex: an in-use old pool is
// kept alive by the shared_ptr copies the in-flight gemms hold.
void setGemmThreadsLocked(std::size_t t) {
  if (t <= 1) {
    gPool.reset();
    gThreads = 1;
    return;
  }
  if (gPool && gThreads == t) return;
  gPool.reset();
  gPool = std::make_shared<api::ThreadPool>(t);
  gThreads = t;
}

// One-shot SHHPASS_GEMM_THREADS environment default (the tsan CI job uses
// it to force the threaded kernel path under the full test suite). An
// explicit setGemmThreads() call — before or after — always wins;
// malformed values are ignored.
void ensureEnvThreadInit() {
  std::call_once(gEnvInitFlag, [] {
    const char* env = std::getenv("SHHPASS_GEMM_THREADS");
    if (env == nullptr || *env == '\0') return;
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end == env || *end != '\0' || v > 1024) return;
    std::size_t t = static_cast<std::size_t>(v);
    if (t == 0) t = std::max(1u, std::thread::hardware_concurrency());
    std::lock_guard<std::mutex> lock(gPoolMutex);
    if (gThreadsConfigured) return;
    setGemmThreadsLocked(t);
  });
}

// ---------------------------------------------------------------- packing
// Packed A block: op(A)(i0 : i0+mb, p0 : p0+kb) * alpha, laid out as
// ceil(mb/MR) row strips; within a strip the kb columns are k-major with
// MR contiguous values each (zero-padded past mb). The micro-kernel then
// reads A with unit stride whatever transA was.
void packA(const Matrix& a, bool transA, double alpha, std::size_t i0,
           std::size_t mb, std::size_t p0, std::size_t kb, double* buf) {
  const std::size_t strips = (mb + MR - 1) / MR;
  for (std::size_t s = 0; s < strips; ++s) {
    const std::size_t r0 = s * MR;
    const std::size_t rValid = std::min(MR, mb - r0);
    double* out = buf + s * kb * MR;
    for (std::size_t k = 0; k < kb; ++k) {
      for (std::size_t r = 0; r < rValid; ++r)
        out[k * MR + r] = alpha * (transA ? a(p0 + k, i0 + r0 + r)
                                          : a(i0 + r0 + r, p0 + k));
      for (std::size_t r = rValid; r < MR; ++r) out[k * MR + r] = 0.0;
    }
  }
}

// Packed B panel: op(B)(p0 : p0+kb, j0 : j0+nb), laid out as ceil(nb/NR)
// column strips; within a strip the kb rows are k-major with NR contiguous
// values each (zero-padded past nb).
void packB(const Matrix& b, bool transB, std::size_t p0, std::size_t kb,
           std::size_t j0, std::size_t nb, double* buf) {
  const std::size_t strips = (nb + NR - 1) / NR;
  for (std::size_t s = 0; s < strips; ++s) {
    const std::size_t c0 = s * NR;
    const std::size_t cValid = std::min(NR, nb - c0);
    double* out = buf + s * kb * NR;
    for (std::size_t k = 0; k < kb; ++k) {
      for (std::size_t c = 0; c < cValid; ++c)
        out[k * NR + c] = transB ? b(j0 + c0 + c, p0 + k)
                                 : b(p0 + k, j0 + c0 + c);
      for (std::size_t c = cValid; c < NR; ++c) out[k * NR + c] = 0.0;
    }
  }
}

// ----------------------------------------------------------- micro-kernel
// out(MR x NR) = sum_k ap[k] * bp[k]^T over one packed panel pair. The
// accumulators are function-local (provably alias-free), so the compiler
// keeps all MR*NR of them in vector registers across the K loop; `out` is
// written once at the end.
//
// The same body is compiled twice: a portable baseline, and (on x86-64
// GCC/Clang) an AVX2+FMA clone selected once at startup via
// __builtin_cpu_supports. Which clone runs affects rounding (FMA
// contraction) exactly as switching BLAS backends would; it does not
// affect the determinism contract, which holds per machine.
#define SHHPASS_GEMM_MICRO_BODY                                       \
  double acc[MR][NR] = {};                                            \
  for (std::size_t k = 0; k < kb; ++k, ap += MR, bp += NR) {          \
    for (std::size_t i = 0; i < MR; ++i) {                            \
      const double ai = ap[i];                                        \
      for (std::size_t j = 0; j < NR; ++j) acc[i][j] += ai * bp[j];   \
    }                                                                 \
  }                                                                   \
  for (std::size_t i = 0; i < MR; ++i)                                \
    for (std::size_t j = 0; j < NR; ++j) out[i * NR + j] = acc[i][j];

void microKernelGeneric(std::size_t kb, const double* ap, const double* bp,
                        double* out) {
  SHHPASS_GEMM_MICRO_BODY
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SHHPASS_GEMM_X86_DISPATCH 1
// Hand-scheduled AVX2+FMA micro-kernel: the 4x8 accumulator tile lives in
// eight ymm registers (row i split into columns 0-3 / 4-7), each k step
// is two B loads, four A broadcasts, and eight fmadds. Every C element
// receives exactly acc[i][j] += a_i * b_j per k in ascending k order —
// the same per-element accumulation sequence as the portable body under
// FMA contraction, just without the compiler spilling the tile.
__attribute__((target("avx2,fma"))) void microKernelAvx2(
    std::size_t kb, const double* ap, const double* bp, double* out) {
  static_assert(MR == 4 && NR == 8, "micro-kernel is tiled for 4x8");
  __m256d c00 = _mm256_setzero_pd(), c01 = _mm256_setzero_pd();
  __m256d c10 = _mm256_setzero_pd(), c11 = _mm256_setzero_pd();
  __m256d c20 = _mm256_setzero_pd(), c21 = _mm256_setzero_pd();
  __m256d c30 = _mm256_setzero_pd(), c31 = _mm256_setzero_pd();
  for (std::size_t k = 0; k < kb; ++k, ap += MR, bp += NR) {
    const __m256d b0 = _mm256_loadu_pd(bp);
    const __m256d b1 = _mm256_loadu_pd(bp + 4);
    __m256d a = _mm256_broadcast_sd(ap);
    c00 = _mm256_fmadd_pd(a, b0, c00);
    c01 = _mm256_fmadd_pd(a, b1, c01);
    a = _mm256_broadcast_sd(ap + 1);
    c10 = _mm256_fmadd_pd(a, b0, c10);
    c11 = _mm256_fmadd_pd(a, b1, c11);
    a = _mm256_broadcast_sd(ap + 2);
    c20 = _mm256_fmadd_pd(a, b0, c20);
    c21 = _mm256_fmadd_pd(a, b1, c21);
    a = _mm256_broadcast_sd(ap + 3);
    c30 = _mm256_fmadd_pd(a, b0, c30);
    c31 = _mm256_fmadd_pd(a, b1, c31);
  }
  _mm256_storeu_pd(out, c00);
  _mm256_storeu_pd(out + 4, c01);
  _mm256_storeu_pd(out + 8, c10);
  _mm256_storeu_pd(out + 12, c11);
  _mm256_storeu_pd(out + 16, c20);
  _mm256_storeu_pd(out + 20, c21);
  _mm256_storeu_pd(out + 24, c30);
  _mm256_storeu_pd(out + 28, c31);
}
#endif
#undef SHHPASS_GEMM_MICRO_BODY

// ------------------------------------------------- level-1 hot kernels
// dotQuad / axpy / planeRot follow the micro-kernel pattern exactly: one
// portable body, one AVX2+FMA clone, a per-process dispatch. The quad
// accumulator layout of dotQuad maps lane-for-lane onto one ymm register,
// so the vector clone performs the same four independent partial sums
// (with FMA rounding) and the identical (s0 + s1) + (s2 + s3) reduction.

#define SHHPASS_DOT_QUAD_BODY                                         \
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;                      \
  std::size_t i = 0;                                                  \
  for (; i + 4 <= len; i += 4) {                                      \
    s0 += x[i] * y[i];                                                \
    s1 += x[i + 1] * y[i + 1];                                        \
    s2 += x[i + 2] * y[i + 2];                                        \
    s3 += x[i + 3] * y[i + 3];                                        \
  }                                                                   \
  for (; i < len; ++i) s0 += x[i] * y[i];                             \
  return (s0 + s1) + (s2 + s3);

#define SHHPASS_AXPY_BODY                                             \
  for (std::size_t i = 0; i < len; ++i) y[i] += alpha * x[i];

#define SHHPASS_PLANE_ROT_BODY                                        \
  for (std::size_t i = 0; i < len; ++i) {                             \
    const double a = x[i], b = y[i];                                  \
    x[i] = cs * a + sn * b;                                           \
    y[i] = -sn * a + cs * b;                                          \
  }

double dotQuadGeneric(const double* x, const double* y, std::size_t len) {
  SHHPASS_DOT_QUAD_BODY
}

void axpyGeneric(double alpha, const double* x, std::size_t len, double* y) {
  SHHPASS_AXPY_BODY
}

void planeRotGeneric(double cs, double sn, double* x, double* y,
                     std::size_t len) {
  SHHPASS_PLANE_ROT_BODY
}

#ifdef SHHPASS_GEMM_X86_DISPATCH
__attribute__((target("avx2,fma"))) double dotQuadAvx2(const double* x,
                                                       const double* y,
                                                       std::size_t len) {
  SHHPASS_DOT_QUAD_BODY
}

__attribute__((target("avx2,fma"))) void axpyAvx2(double alpha,
                                                  const double* x,
                                                  std::size_t len,
                                                  double* y) {
  SHHPASS_AXPY_BODY
}

__attribute__((target("avx2,fma"))) void planeRotAvx2(double cs, double sn,
                                                      double* x, double* y,
                                                      std::size_t len) {
  SHHPASS_PLANE_ROT_BODY
}
#endif
#undef SHHPASS_DOT_QUAD_BODY
#undef SHHPASS_AXPY_BODY
#undef SHHPASS_PLANE_ROT_BODY

using DotQuadFn = double (*)(const double*, const double*, std::size_t);
using AxpyFn = void (*)(double, const double*, std::size_t, double*);
using PlaneRotFn = void (*)(double, double, double*, double*, std::size_t);

bool cpuHasAvx2Fma() {
#ifdef SHHPASS_GEMM_X86_DISPATCH
  __builtin_cpu_init();  // may run before main
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

using MicroKernelFn = void (*)(std::size_t, const double*, const double*,
                               double*);

// Function-local static: safe to call from any translation unit's static
// initializers (a namespace-scope pointer would be null until this TU's
// dynamic initialization ran).
MicroKernelFn microKernel() {
  static const MicroKernelFn fn = [] {
#ifdef SHHPASS_GEMM_X86_DISPATCH
    __builtin_cpu_init();  // may run before main
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
      return MicroKernelFn{microKernelAvx2};
#endif
    return MicroKernelFn{microKernelGeneric};
  }();
  return fn;
}

// ------------------------------------------------------------ macro-level
// Blocked gemm restricted to the C columns [j0, j0+nb): this is the unit
// of column-panel threading. Each element of C is accumulated over K in
// the same order regardless of [j0, nb), which is what makes the threaded
// kernel bit-deterministic.
void gemmBlockedCols(double alpha, const Matrix& a, bool transA,
                     const Matrix& b, bool transB, double beta, Matrix& c,
                     std::size_t m, std::size_t n, std::size_t k,
                     std::size_t j0, std::size_t nb) {
  (void)n;
  double* cdata = c.data();
  const std::size_t ldc = c.cols();

  if (beta != 1.0)
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = j0; j < j0 + nb; ++j) cdata[i * ldc + j] *= beta;
  if (k == 0 || alpha == 0.0) return;

  std::vector<double> apack(MC * KC);
  std::vector<double> bpack(KC * ((std::min(nb, NC) + NR - 1) / NR) * NR);
  double tile[MR * NR];
  const MicroKernelFn micro = microKernel();

  for (std::size_t jc = j0; jc < j0 + nb; jc += NC) {
    const std::size_t ncur = std::min(NC, j0 + nb - jc);
    for (std::size_t pc = 0; pc < k; pc += KC) {
      const std::size_t kcur = std::min(KC, k - pc);
      packB(b, transB, pc, kcur, jc, ncur, bpack.data());
      for (std::size_t ic = 0; ic < m; ic += MC) {
        const std::size_t mcur = std::min(MC, m - ic);
        packA(a, transA, alpha, ic, mcur, pc, kcur, apack.data());
        const std::size_t mStrips = (mcur + MR - 1) / MR;
        const std::size_t nStrips = (ncur + NR - 1) / NR;
        for (std::size_t jr = 0; jr < nStrips; ++jr) {
          const double* bp = bpack.data() + jr * kcur * NR;
          const std::size_t cValid = std::min(NR, ncur - jr * NR);
          for (std::size_t ir = 0; ir < mStrips; ++ir) {
            const double* ap = apack.data() + ir * kcur * MR;
            const std::size_t rValid = std::min(MR, mcur - ir * MR);
            micro(kcur, ap, bp, tile);
            double* ctile =
                cdata + (ic + ir * MR) * ldc + (jc + jr * NR);
            // Interior tiles take the unclipped fast path; edge tiles do
            // the same arithmetic with a clipped write-back.
            if (rValid == MR && cValid == NR) {
              for (std::size_t i = 0; i < MR; ++i)
                for (std::size_t j = 0; j < NR; ++j)
                  ctile[i * ldc + j] += tile[i * NR + j];
            } else {
              for (std::size_t i = 0; i < rValid; ++i)
                for (std::size_t j = 0; j < cValid; ++j)
                  ctile[i * ldc + j] += tile[i * NR + j];
            }
          }
        }
      }
    }
  }
}

void checkGemmShapes(const Matrix& a, bool transA, const Matrix& b,
                     bool transB, const Matrix& c, std::size_t& m,
                     std::size_t& n, std::size_t& k) {
  m = transA ? a.cols() : a.rows();
  k = transA ? a.rows() : a.cols();
  const std::size_t kb = transB ? b.cols() : b.rows();
  n = transB ? b.rows() : b.cols();
  if (k != kb) throw std::invalid_argument("gemm: inner dimension mismatch");
  if (c.rows() != m || c.cols() != n)
    throw std::invalid_argument("gemm: output shape mismatch");
}

// The reference gemm body, compiled once portable and once under the
// AVX2+FMA target (the i-k-j inner loop is a contiguous axpy into row i
// of C when op(B) = B, which the vectorizer handles directly).
#define SHHPASS_GEMM_REF_BODY                                         \
  auto A = [&](std::size_t i, std::size_t p) {                        \
    return transA ? a(p, i) : a(i, p);                                \
  };                                                                  \
  auto B = [&](std::size_t p, std::size_t j) {                        \
    return transB ? b(j, p) : b(p, j);                                \
  };                                                                  \
  for (std::size_t i = 0; i < m; ++i) {                               \
    for (std::size_t p = 0; p < k; ++p) {                             \
      const double v = alpha * A(i, p);                               \
      if (v == 0.0) continue;                                         \
      for (std::size_t j = 0; j < n; ++j) c(i, j) += v * B(p, j);     \
    }                                                                 \
  }

void gemmReferenceGeneric(double alpha, const Matrix& a, bool transA,
                          const Matrix& b, bool transB, Matrix& c,
                          std::size_t m, std::size_t n, std::size_t k) {
  SHHPASS_GEMM_REF_BODY
}

#ifdef SHHPASS_GEMM_X86_DISPATCH
__attribute__((target("avx2,fma"))) void gemmReferenceAvx2(
    double alpha, const Matrix& a, bool transA, const Matrix& b, bool transB,
    Matrix& c, std::size_t m, std::size_t n, std::size_t k) {
  SHHPASS_GEMM_REF_BODY
}
#endif
#undef SHHPASS_GEMM_REF_BODY

}  // namespace

double dotQuad(const double* x, const double* y, std::size_t len) {
#ifdef SHHPASS_GEMM_X86_DISPATCH
  static const DotQuadFn fn =
      cpuHasAvx2Fma() ? DotQuadFn{dotQuadAvx2} : DotQuadFn{dotQuadGeneric};
  return fn(x, y, len);
#else
  return dotQuadGeneric(x, y, len);
#endif
}

void axpy(double alpha, const double* x, std::size_t len, double* y) {
#ifdef SHHPASS_GEMM_X86_DISPATCH
  static const AxpyFn fn =
      cpuHasAvx2Fma() ? AxpyFn{axpyAvx2} : AxpyFn{axpyGeneric};
  fn(alpha, x, len, y);
#else
  axpyGeneric(alpha, x, len, y);
#endif
}

void planeRot(double cs, double sn, double* x, double* y, std::size_t len) {
#ifdef SHHPASS_GEMM_X86_DISPATCH
  static const PlaneRotFn fn = cpuHasAvx2Fma() ? PlaneRotFn{planeRotAvx2}
                                               : PlaneRotFn{planeRotGeneric};
  fn(cs, sn, x, y, len);
#else
  planeRotGeneric(cs, sn, x, y, len);
#endif
}

void gemmReference(double alpha, const Matrix& a, bool transA,
                   const Matrix& b, bool transB, double beta, Matrix& c) {
  std::size_t m, n, k;
  checkGemmShapes(a, transA, b, transB, c, m, n, k);

  if (beta != 1.0) c *= beta;
#ifdef SHHPASS_GEMM_X86_DISPATCH
  if (cpuHasAvx2Fma()) {
    gemmReferenceAvx2(alpha, a, transA, b, transB, c, m, n, k);
    return;
  }
#endif
  gemmReferenceGeneric(alpha, a, transA, b, transB, c, m, n, k);
}

void gemmBlocked(double alpha, const Matrix& a, bool transA, const Matrix& b,
                 bool transB, double beta, Matrix& c) {
  std::size_t m, n, k;
  checkGemmShapes(a, transA, b, transB, c, m, n, k);
  if (m == 0 || n == 0) return;

  std::size_t threads = 1;
  std::shared_ptr<api::ThreadPool> pool;
  // A per-call budget of 1 is a structural bypass: the call never touches
  // the shared pool (not even its mutex), so budget-1 shards contend with
  // nothing. Budgets b > 1 cap the fan-out at min(b, configured width).
  const std::size_t budget = tGemmBudget;
  if (budget != 1 && m * n * k >= kGemmThreadedFlopFloor) {
    ensureEnvThreadInit();
    std::lock_guard<std::mutex> lock(gPoolMutex);
    if (gThreads > 1 && gPool) {
      threads = budget > 0 ? std::min(gThreads, budget) : gThreads;
      pool = gPool;  // keeps the pool alive across a concurrent reconfigure
    }
  }
  // Fan out over disjoint column panels, at least one micro-tile wide, so
  // workers never share a cache line of C and per-element accumulation
  // order stays independent of the partition (bit-determinism).
  const std::size_t maxPanels = std::max<std::size_t>(1, n / NR);
  threads = std::min(threads, maxPanels);
  if (threads <= 1 || pool == nullptr) {
    gemmBlockedCols(alpha, a, transA, b, transB, beta, c, m, n, k, 0, n);
    return;
  }
  const std::size_t chunk = ((n + threads - 1) / threads + NR - 1) / NR * NR;
  for (std::size_t j0 = 0; j0 < n; j0 += chunk) {
    const std::size_t nb = std::min(chunk, n - j0);
    pool->submit([=, &a, &b, &c] {
      gemmBlockedCols(alpha, a, transA, b, transB, beta, c, m, n, k, j0, nb);
    });
  }
  pool->wait();
}

void gemm(double alpha, const Matrix& a, bool transA, const Matrix& b,
          bool transB, double beta, Matrix& c) {
  std::size_t m, n, k;
  checkGemmShapes(a, transA, b, transB, c, m, n, k);
  const std::size_t flopProducts = m * n * k;
  obs::counterAdd(obs::Counter::GemmCalls);
  obs::counterAdd(obs::Counter::GemmFlops, 2 * flopProducts);
  // Spans only for products big enough to thread: per-call tracing of the
  // thousands of tiny products would swamp the buffers and the timeline
  // (the sampling-friendly coarse-granularity contract of obs/trace.hpp).
  obs::ObsSpan span("gemm", "kernel",
                    flopProducts >= kGemmThreadedFlopFloor);
  span.arg("flops", static_cast<std::int64_t>(2 * flopProducts));
  // Thin or tiny products do not amortize the packing cost; the reference
  // kernel is also the better gemv/ger. The dispatch is performance-only:
  // both kernels implement the same contract.
  if (m < MR || n < NR || k < 4 || flopProducts < kGemmBlockedFlopFloor) {
    gemmReference(alpha, a, transA, b, transB, beta, c);
    return;
  }
  gemmBlocked(alpha, a, transA, b, transB, beta, c);
}

std::size_t gemmThreads() {
  ensureEnvThreadInit();
  std::lock_guard<std::mutex> lock(gPoolMutex);
  return gPool ? gThreads : 1;
}

void setGemmThreads(std::size_t t) {
  if (t == 0) t = std::max(1u, std::thread::hardware_concurrency());
  std::lock_guard<std::mutex> lock(gPoolMutex);
  gThreadsConfigured = true;
  setGemmThreadsLocked(t);
}

std::size_t gemmThreadBudget() { return tGemmBudget; }

GemmThreadBudgetScope::GemmThreadBudgetScope(std::size_t budget)
    : previous_(tGemmBudget) {
  tGemmBudget = budget;
}

GemmThreadBudgetScope::~GemmThreadBudgetScope() { tGemmBudget = previous_; }

Matrix multiply(const Matrix& a, bool transA, const Matrix& b, bool transB) {
  const std::size_t m = transA ? a.cols() : a.rows();
  const std::size_t n = transB ? b.rows() : b.cols();
  Matrix c(m, n);
  gemm(1.0, a, transA, b, transB, 0.0, c);
  return c;
}

Matrix atb(const Matrix& a, const Matrix& b) {
  return multiply(a, true, b, false);
}

Matrix abt(const Matrix& a, const Matrix& b) {
  return multiply(a, false, b, true);
}

double colDot(const Matrix& a, std::size_t ja, const Matrix& b,
              std::size_t jb) {
  if (a.rows() != b.rows()) throw std::invalid_argument("colDot: row mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) s += a(i, ja) * b(i, jb);
  return s;
}

double colNorm(const Matrix& a, std::size_t j) {
  // Two-pass scaled norm to avoid overflow/underflow.
  double scale = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    scale = std::max(scale, std::abs(a(i, j)));
  if (scale == 0.0) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double v = a(i, j) / scale;
    s += v * v;
  }
  return scale * std::sqrt(s);
}

void symmetrize(Matrix& a) {
  if (!a.isSquare()) throw std::invalid_argument("symmetrize: not square");
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = i + 1; j < a.cols(); ++j) {
      const double v = 0.5 * (a(i, j) + a(j, i));
      a(i, j) = v;
      a(j, i) = v;
    }
}

void skewSymmetrize(Matrix& a) {
  if (!a.isSquare()) throw std::invalid_argument("skewSymmetrize: not square");
  for (std::size_t i = 0; i < a.rows(); ++i) {
    a(i, i) = 0.0;
    for (std::size_t j = i + 1; j < a.cols(); ++j) {
      const double v = 0.5 * (a(i, j) - a(j, i));
      a(i, j) = v;
      a(j, i) = -v;
    }
  }
}

}  // namespace shhpass::linalg
