#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <stdexcept>

#include "linalg/blas.hpp"

namespace shhpass::linalg {

Matrix::Matrix(std::size_t r, std::size_t c, double fill)
    : rows_(r), cols_(c), data_(r * c, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_)
      throw std::invalid_argument("Matrix: ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::zeros(std::size_t r, std::size_t c) { return Matrix(r, c); }

Matrix Matrix::ones(std::size_t r, std::size_t c) { return Matrix(r, c, 1.0); }

Matrix Matrix::diag(const std::vector<double>& d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

Matrix Matrix::symplecticJ(std::size_t n) {
  Matrix j(2 * n, 2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    j(i, n + i) = 1.0;
    j(n + i, i) = -1.0;
  }
  return j;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  return t;
}

Matrix Matrix::block(std::size_t i, std::size_t j, std::size_t p,
                     std::size_t q) const {
  if (i + p > rows_ || j + q > cols_)
    throw std::invalid_argument("Matrix::block: out of range");
  Matrix b(p, q);
  for (std::size_t r = 0; r < p; ++r)
    for (std::size_t c = 0; c < q; ++c) b(r, c) = (*this)(i + r, j + c);
  return b;
}

void Matrix::setBlock(std::size_t i, std::size_t j, const Matrix& b) {
  if (i + b.rows() > rows_ || j + b.cols() > cols_)
    throw std::invalid_argument("Matrix::setBlock: out of range");
  for (std::size_t r = 0; r < b.rows(); ++r)
    for (std::size_t c = 0; c < b.cols(); ++c) (*this)(i + r, j + c) = b(r, c);
}

Matrix Matrix::col(std::size_t j) const { return block(0, j, rows_, 1); }
Matrix Matrix::row(std::size_t i) const { return block(i, 0, 1, cols_); }

Matrix& Matrix::operator+=(const Matrix& o) {
  if (rows_ != o.rows_ || cols_ != o.cols_)
    throw std::invalid_argument("Matrix+: shape mismatch");
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] += o.data_[k];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  if (rows_ != o.rows_ || cols_ != o.cols_)
    throw std::invalid_argument("Matrix-: shape mismatch");
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] -= o.data_[k];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows())
    throw std::invalid_argument("Matrix*: inner dimension mismatch");
  // Routed through the dispatching gemm so every product in the library
  // (including this operator) rides the blocked BLAS-3 kernel when large.
  Matrix c(a.rows(), b.cols());
  gemm(1.0, a, false, b, false, 0.0, c);
  return c;
}

double Matrix::normFrobenius() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::maxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

double Matrix::norm1() const {
  double m = 0.0;
  for (std::size_t j = 0; j < cols_; ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < rows_; ++i) s += std::abs((*this)(i, j));
    m = std::max(m, s);
  }
  return m;
}

double Matrix::normInf() const {
  double m = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) s += std::abs((*this)(i, j));
    m = std::max(m, s);
  }
  return m;
}

double Matrix::trace() const {
  if (!isSquare()) throw std::invalid_argument("Matrix::trace: not square");
  double s = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) s += (*this)(i, i);
  return s;
}

bool Matrix::approxEqual(const Matrix& o, double tol) const {
  if (rows_ != o.rows_ || cols_ != o.cols_) return false;
  for (std::size_t k = 0; k < data_.size(); ++k)
    if (std::abs(data_[k] - o.data_[k]) > tol) return false;
  return true;
}

bool Matrix::isSymmetric(double tol) const {
  if (!isSquare()) return false;
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = i + 1; j < cols_; ++j)
      if (std::abs((*this)(i, j) - (*this)(j, i)) > tol) return false;
  return true;
}

bool Matrix::isSkewSymmetric(double tol) const {
  if (!isSquare()) return false;
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = i; j < cols_; ++j)
      if (std::abs((*this)(i, j) + (*this)(j, i)) > tol) return false;
  return true;
}

Matrix hcat(const Matrix& a, const Matrix& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  if (a.rows() != b.rows())
    throw std::invalid_argument("hcat: row count mismatch");
  Matrix c(a.rows(), a.cols() + b.cols());
  c.setBlock(0, 0, a);
  c.setBlock(0, a.cols(), b);
  return c;
}

Matrix vcat(const Matrix& a, const Matrix& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  if (a.cols() != b.cols())
    throw std::invalid_argument("vcat: column count mismatch");
  Matrix c(a.rows() + b.rows(), a.cols());
  c.setBlock(0, 0, a);
  c.setBlock(a.rows(), 0, b);
  return c;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    os << (i == 0 ? "[" : " ");
    for (std::size_t j = 0; j < m.cols(); ++j)
      os << std::setw(12) << std::setprecision(5) << m(i, j)
         << (j + 1 < m.cols() ? " " : "");
    os << (i + 1 < m.rows() ? "\n" : "]\n");
  }
  return os;
}

}  // namespace shhpass::linalg
