// Householder QR factorization (optionally column-pivoted) and helpers for
// building orthonormal bases, used pervasively by the deflation steps of the
// SHH passivity pipeline.
//
// The non-pivoted factorization is blocked: panels of kQrBlock columns are
// factored with the classical rank-1 kernel, then the panel's reflectors
// are aggregated into a compact-WY factor (householder.hpp) and the
// trailing columns are updated with three gemm calls (BLAS-3). applyQ /
// applyQt use the same stored per-panel T factors. The pivoted path stays
// unblocked — greedy column selection needs every trailing norm after each
// reflector, which defeats update deferral — and small problems (rows
// below kQrWyMinRows) also take the unblocked path, where the rank-1
// kernel is both faster and bit-identical to the pre-blocking
// implementation.
//
// Accuracy: blocked and unblocked paths are both backward stable and
// agree to O(n * eps * ||A||) (different summation order, not bitwise);
// equivalence at 1e-13 (scaled) is enforced by tests/test_blas_blocked.cpp.
// Threading: inherits gemm's contract (blas.hpp) — bit-deterministic for
// every setGemmThreads() setting.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace shhpass::linalg {

/// Panel width of the blocked (non-pivoted) QR factorization.
inline constexpr std::size_t kQrBlock = 32;
/// Smallest row count for which the non-pivoted path blocks; below it the
/// factorization and applications are bit-identical to the historical
/// unblocked implementation.
inline constexpr std::size_t kQrWyMinRows = 48;

/// A P = Q R with Householder reflectors; P is identity unless pivoting is
/// requested. Works for any m x n shape.
class QR {
 public:
  /// Factor `a`. With `columnPivoting`, columns are greedily permuted by
  /// remaining norm, which makes the diagonal of R a rank-revealing sequence.
  explicit QR(const Matrix& a, bool columnPivoting = false);

  /// Thin orthogonal factor, m x min(m,n).
  Matrix thinQ() const;
  /// Full orthogonal factor, m x m.
  Matrix fullQ() const;
  /// Upper-trapezoidal R, min(m,n) x n (in permuted column order if pivoted).
  Matrix r() const;
  /// Column permutation p such that A(:, p[j]) is column j of the factored
  /// matrix; identity when pivoting was off.
  const std::vector<std::size_t>& permutation() const { return perm_; }

  /// Numerical rank from the pivoted R diagonal: number of |r_ii| above
  /// tol * |r_00| (requires columnPivoting; throws otherwise).
  std::size_t rank(double tol) const;

  /// Least-squares solve min ||A x - b||_2 for full-column-rank A.
  Matrix solve(const Matrix& b) const;

  /// Apply Q^T to a matrix without forming Q (m-row input).
  Matrix applyQt(const Matrix& b) const;
  /// Apply Q to a matrix without forming Q (m-row input).
  Matrix applyQ(const Matrix& b) const;

 private:
  void factorUnblocked();
  void factorBlocked();
  /// Generate the Householder reflector for column k (below row k) in
  /// place: v stored below the diagonal (unit leading entry implicit),
  /// R entry on the diagonal, scalar in tau_[k]. Shared verbatim by both
  /// factorization paths so their reflectors are bit-identical.
  void generateReflector(std::size_t k);
  /// Materialize panel [k0, k0+kb) reflectors as a dense V block
  /// (householder.hpp convention: explicit unit diagonal, zeros above).
  Matrix panelV(std::size_t k0, std::size_t kb) const;

  Matrix qr_;                   // reflectors below diagonal, R at/above
  std::vector<double> tau_;     // reflector scalars
  std::vector<std::size_t> perm_;
  bool pivoted_;
  bool blocked_ = false;        // WY path enabled (non-pivoted, large)
  std::vector<Matrix> tFactors_;  // one compact-WY T per panel
};

/// Orthonormal basis for the range (column space) of A, determined to
/// relative tolerance `tol` via column-pivoted QR. Returns m x rank.
/// The 1e-12 default predates the shared SVD rank policy and is kept for
/// the QR fallback path only; new callers should thread a resolved
/// tolerance through.  lint-ok: rank-tol-literal
Matrix orthonormalRange(const Matrix& a, double tol = 1e-12);

/// Orthonormal completion: given m x k V with orthonormal columns, returns
/// m x (m-k) W such that [V W] is orthogonal.
Matrix orthonormalComplement(const Matrix& v);

}  // namespace shhpass::linalg
