// Householder QR factorization (optionally column-pivoted) and helpers for
// building orthonormal bases, used pervasively by the deflation steps of the
// SHH passivity pipeline.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace shhpass::linalg {

/// A P = Q R with Householder reflectors; P is identity unless pivoting is
/// requested. Works for any m x n shape.
class QR {
 public:
  /// Factor `a`. With `columnPivoting`, columns are greedily permuted by
  /// remaining norm, which makes the diagonal of R a rank-revealing sequence.
  explicit QR(const Matrix& a, bool columnPivoting = false);

  /// Thin orthogonal factor, m x min(m,n).
  Matrix thinQ() const;
  /// Full orthogonal factor, m x m.
  Matrix fullQ() const;
  /// Upper-trapezoidal R, min(m,n) x n (in permuted column order if pivoted).
  Matrix r() const;
  /// Column permutation p such that A(:, p[j]) is column j of the factored
  /// matrix; identity when pivoting was off.
  const std::vector<std::size_t>& permutation() const { return perm_; }

  /// Numerical rank from the pivoted R diagonal: number of |r_ii| above
  /// tol * |r_00| (requires columnPivoting; throws otherwise).
  std::size_t rank(double tol) const;

  /// Least-squares solve min ||A x - b||_2 for full-column-rank A.
  Matrix solve(const Matrix& b) const;

  /// Apply Q^T to a matrix without forming Q (m-row input).
  Matrix applyQt(const Matrix& b) const;
  /// Apply Q to a matrix without forming Q (m-row input).
  Matrix applyQ(const Matrix& b) const;

 private:
  Matrix qr_;                   // reflectors below diagonal, R at/above
  std::vector<double> tau_;     // reflector scalars
  std::vector<std::size_t> perm_;
  bool pivoted_;
};

/// Orthonormal basis for the range (column space) of A, determined to
/// relative tolerance `tol` via column-pivoted QR. Returns m x rank.
Matrix orthonormalRange(const Matrix& a, double tol = 1e-12);

/// Orthonormal completion: given m x k V with orthonormal columns, returns
/// m x (m-k) W such that [V W] is orthogonal.
Matrix orthonormalComplement(const Matrix& v);

}  // namespace shhpass::linalg
