#include "linalg/svd.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "linalg/blas.hpp"
#include "linalg/householder.hpp"
#include "linalg/qr.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace shhpass::linalg {
namespace {

// Golub-Kahan-Reinsch SVD for m >= n (JAMA lineage). Computes thin U (m x n),
// singular values s (n), and full V (n x n), sorted descending. This is the
// unblocked reference kernel; it must stay bit-identical to the historical
// implementation (the dispatch below kSvdCrossover relies on that).
void gkSvd(const Matrix& aIn, std::vector<double>& sv, Matrix& u, Matrix& v) {
  Matrix a = aIn;
  const int m = static_cast<int>(a.rows());
  const int n = static_cast<int>(a.cols());
  const int nu = n;
  sv.assign(n, 0.0);
  double* s = sv.data();
  u = Matrix(m, nu);
  v = Matrix(n, n);
  std::vector<double> e(n, 0.0), work(m, 0.0);

  // Bidiagonalize, storing reflectors in `a`, diagonal in s, superdiag in e.
  const int nct = std::min(m - 1, n);
  const int nrt = std::max(0, std::min(n - 2, m));
  for (int k = 0; k < std::max(nct, nrt); ++k) {
    if (k < nct) {
      double nrm = 0.0;
      for (int i = k; i < m; ++i) nrm = std::hypot(nrm, a(i, k));
      s[k] = nrm;
      if (s[k] != 0.0) {
        if (a(k, k) < 0.0) s[k] = -s[k];
        for (int i = k; i < m; ++i) a(i, k) /= s[k];
        a(k, k) += 1.0;
      }
      s[k] = -s[k];
    }
    for (int j = k + 1; j < n; ++j) {
      if (k < nct && s[k] != 0.0) {
        double t = 0.0;
        for (int i = k; i < m; ++i) t += a(i, k) * a(i, j);
        t = -t / a(k, k);
        for (int i = k; i < m; ++i) a(i, j) += t * a(i, k);
      }
      e[j] = a(k, j);
    }
    if (k < nct)
      for (int i = k; i < m; ++i) u(i, k) = a(i, k);
    if (k < nrt) {
      double nrm = 0.0;
      for (int i = k + 1; i < n; ++i) nrm = std::hypot(nrm, e[i]);
      e[k] = nrm;
      if (e[k] != 0.0) {
        if (e[k + 1] < 0.0) e[k] = -e[k];
        for (int i = k + 1; i < n; ++i) e[i] /= e[k];
        e[k + 1] += 1.0;
      }
      e[k] = -e[k];
      if (k + 1 < m && e[k] != 0.0) {
        for (int i = k + 1; i < m; ++i) work[i] = 0.0;
        for (int j = k + 1; j < n; ++j)
          for (int i = k + 1; i < m; ++i) work[i] += e[j] * a(i, j);
        for (int j = k + 1; j < n; ++j) {
          const double t = -e[j] / e[k + 1];
          for (int i = k + 1; i < m; ++i) a(i, j) += t * work[i];
        }
      }
      for (int i = k + 1; i < n; ++i) v(i, k) = e[i];
    }
  }

  int p = n;
  if (nct < n) s[nct] = a(nct, nct);
  if (nrt + 1 < p) e[nrt] = a(nrt, p - 1);
  e[p - 1] = 0.0;

  // Generate U.
  for (int j = nct; j < nu; ++j) {
    for (int i = 0; i < m; ++i) u(i, j) = 0.0;
    u(j, j) = 1.0;
  }
  for (int k = nct - 1; k >= 0; --k) {
    if (s[k] != 0.0) {
      for (int j = k + 1; j < nu; ++j) {
        double t = 0.0;
        for (int i = k; i < m; ++i) t += u(i, k) * u(i, j);
        t = -t / u(k, k);
        for (int i = k; i < m; ++i) u(i, j) += t * u(i, k);
      }
      for (int i = k; i < m; ++i) u(i, k) = -u(i, k);
      u(k, k) = 1.0 + u(k, k);
      for (int i = 0; i < k - 1 + 1; ++i) u(i, k) = 0.0;
    } else {
      for (int i = 0; i < m; ++i) u(i, k) = 0.0;
      u(k, k) = 1.0;
    }
  }

  // Generate V.
  for (int k = n - 1; k >= 0; --k) {
    if (k < nrt && e[k] != 0.0) {
      for (int j = k + 1; j < n; ++j) {
        double t = 0.0;
        for (int i = k + 1; i < n; ++i) t += v(i, k) * v(i, j);
        t = -t / v(k + 1, k);
        for (int i = k + 1; i < n; ++i) v(i, j) += t * v(i, k);
      }
    }
    for (int i = 0; i < n; ++i) v(i, k) = 0.0;
    v(k, k) = 1.0;
  }

  // Main iteration: diagonalize the bidiagonal form.
  const int pp = p - 1;
  int iter = 0;
  const double eps = std::numeric_limits<double>::epsilon();
  const double tiny = std::numeric_limits<double>::min() / eps;
  while (p > 0) {
    int k, kase;
    for (k = p - 2; k >= -1; --k) {
      if (k == -1) break;
      if (std::abs(e[k]) <=
          tiny + eps * (std::abs(s[k]) + std::abs(s[k + 1]))) {
        e[k] = 0.0;
        break;
      }
    }
    if (k == p - 2) {
      kase = 4;
    } else {
      int ks;
      for (ks = p - 1; ks >= k; --ks) {
        if (ks == k) break;
        const double t = (ks != p ? std::abs(e[ks]) : 0.0) +
                         (ks != k + 1 ? std::abs(e[ks - 1]) : 0.0);
        if (std::abs(s[ks]) <= tiny + eps * t) {
          s[ks] = 0.0;
          break;
        }
      }
      if (ks == k) {
        kase = 3;
      } else if (ks == p - 1) {
        kase = 1;
      } else {
        kase = 2;
        k = ks;
      }
    }
    ++k;

    switch (kase) {
      case 1: {  // Deflate negligible s(p-1).
        double f = e[p - 2];
        e[p - 2] = 0.0;
        for (int j = p - 2; j >= k; --j) {
          double t = std::hypot(s[j], f);
          const double cs = s[j] / t;
          const double sn = f / t;
          s[j] = t;
          if (j != k) {
            f = -sn * e[j - 1];
            e[j - 1] = cs * e[j - 1];
          }
          for (int i = 0; i < n; ++i) {
            t = cs * v(i, j) + sn * v(i, p - 1);
            v(i, p - 1) = -sn * v(i, j) + cs * v(i, p - 1);
            v(i, j) = t;
          }
        }
        break;
      }
      case 2: {  // Split at negligible s(k).
        double f = e[k - 1];
        e[k - 1] = 0.0;
        for (int j = k; j < p; ++j) {
          double t = std::hypot(s[j], f);
          const double cs = s[j] / t;
          const double sn = f / t;
          s[j] = t;
          f = -sn * e[j];
          e[j] = cs * e[j];
          for (int i = 0; i < m; ++i) {
            t = cs * u(i, j) + sn * u(i, k - 1);
            u(i, k - 1) = -sn * u(i, j) + cs * u(i, k - 1);
            u(i, j) = t;
          }
        }
        break;
      }
      case 3: {  // One QR step with Wilkinson shift.
        const double scale = std::max(
            {std::abs(s[p - 1]), std::abs(s[p - 2]), std::abs(e[p - 2]),
             std::abs(s[k]), std::abs(e[k])});
        const double sp = s[p - 1] / scale;
        const double spm1 = s[p - 2] / scale;
        const double epm1 = e[p - 2] / scale;
        const double sk = s[k] / scale;
        const double ek = e[k] / scale;
        const double b = ((spm1 + sp) * (spm1 - sp) + epm1 * epm1) / 2.0;
        const double c = (sp * epm1) * (sp * epm1);
        double shift = 0.0;
        if (b != 0.0 || c != 0.0) {
          shift = std::sqrt(b * b + c);
          if (b < 0.0) shift = -shift;
          shift = c / (b + shift);
        }
        double f = (sk + sp) * (sk - sp) + shift;
        double g = sk * ek;
        for (int j = k; j < p - 1; ++j) {
          double t = std::hypot(f, g);
          double cs = f / t;
          double sn = g / t;
          if (j != k) e[j - 1] = t;
          f = cs * s[j] + sn * e[j];
          e[j] = cs * e[j] - sn * s[j];
          g = sn * s[j + 1];
          s[j + 1] = cs * s[j + 1];
          for (int i = 0; i < n; ++i) {
            t = cs * v(i, j) + sn * v(i, j + 1);
            v(i, j + 1) = -sn * v(i, j) + cs * v(i, j + 1);
            v(i, j) = t;
          }
          t = std::hypot(f, g);
          cs = f / t;
          sn = g / t;
          s[j] = t;
          f = cs * e[j] + sn * s[j + 1];
          s[j + 1] = -sn * e[j] + cs * s[j + 1];
          g = sn * e[j + 1];
          e[j + 1] = cs * e[j + 1];
          if (j < m - 1)
            for (int i = 0; i < m; ++i) {
              t = cs * u(i, j) + sn * u(i, j + 1);
              u(i, j + 1) = -sn * u(i, j) + cs * u(i, j + 1);
              u(i, j) = t;
            }
        }
        e[p - 2] = f;
        if (++iter > 500)
          throw std::runtime_error("SVD: QR iteration failed to converge");
        break;
      }
      case 4: {  // Convergence.
        if (s[k] <= 0.0) {
          s[k] = (s[k] < 0.0 ? -s[k] : 0.0);
          for (int i = 0; i <= pp; ++i) v(i, k) = -v(i, k);
        }
        while (k < pp) {
          if (s[k] >= s[k + 1]) break;
          std::swap(s[k], s[k + 1]);
          if (k < n - 1)
            for (int i = 0; i < n; ++i) std::swap(v(i, k), v(i, k + 1));
          if (k < m - 1)
            for (int i = 0; i < m; ++i) std::swap(u(i, k), u(i, k + 1));
          ++k;
        }
        iter = 0;
        --p;
        break;
      }
    }
  }
}

// ------------------------------------------------------------------------
// Blocked (dgebrd/dlabrd-style) kernel.
// ------------------------------------------------------------------------

// The gkSvd main iteration operating on TRANSPOSED factors: row j of `ut`
// is column j of U, row j of `vt` is column j of V. Every Givens rotation
// then updates two contiguous rows instead of two stride-n columns, which
// is what keeps the O(n^3) rotation stream cache-resident. The update
// sequence (shifts, deflation tests, rotation order) is the same as
// gkSvd's loop; only the factor indexing differs.
void diagonalizeBidiagonalTransposed(std::vector<double>& sv,
                                     std::vector<double>& e, Matrix& ut,
                                     Matrix& vt,
                                     bool withVectors = true) {
  double* s = sv.data();
  const int n = static_cast<int>(sv.size());
  const int m = static_cast<int>(ut.cols());
  int p = n;
  const int pp = p - 1;
  int iter = 0;
  const double eps = std::numeric_limits<double>::epsilon();
  const double tiny = std::numeric_limits<double>::min() / eps;
  while (p > 0) {
    int k, kase;
    for (k = p - 2; k >= -1; --k) {
      if (k == -1) break;
      if (std::abs(e[k]) <=
          tiny + eps * (std::abs(s[k]) + std::abs(s[k + 1]))) {
        e[k] = 0.0;
        break;
      }
    }
    if (k == p - 2) {
      kase = 4;
    } else {
      int ks;
      for (ks = p - 1; ks >= k; --ks) {
        if (ks == k) break;
        const double t = (ks != p ? std::abs(e[ks]) : 0.0) +
                         (ks != k + 1 ? std::abs(e[ks - 1]) : 0.0);
        if (std::abs(s[ks]) <= tiny + eps * t) {
          s[ks] = 0.0;
          break;
        }
      }
      if (ks == k) {
        kase = 3;
      } else if (ks == p - 1) {
        kase = 1;
      } else {
        kase = 2;
        k = ks;
      }
    }
    ++k;

    switch (kase) {
      case 1: {  // Deflate negligible s(p-1).
        double f = e[p - 2];
        e[p - 2] = 0.0;
        for (int j = p - 2; j >= k; --j) {
          double t = std::hypot(s[j], f);
          const double cs = s[j] / t;
          const double sn = f / t;
          s[j] = t;
          if (j != k) {
            f = -sn * e[j - 1];
            e[j - 1] = cs * e[j - 1];
          }
          if (withVectors) {
            double* vj = &vt(j, 0);
            double* vq = &vt(p - 1, 0);
            for (int i = 0; i < n; ++i) {
              t = cs * vj[i] + sn * vq[i];
              vq[i] = -sn * vj[i] + cs * vq[i];
              vj[i] = t;
            }
          }
        }
        break;
      }
      case 2: {  // Split at negligible s(k).
        double f = e[k - 1];
        e[k - 1] = 0.0;
        for (int j = k; j < p; ++j) {
          double t = std::hypot(s[j], f);
          const double cs = s[j] / t;
          const double sn = f / t;
          s[j] = t;
          f = -sn * e[j];
          e[j] = cs * e[j];
          if (withVectors) {
            double* uj = &ut(j, 0);
            double* uq = &ut(k - 1, 0);
            for (int i = 0; i < m; ++i) {
              t = cs * uj[i] + sn * uq[i];
              uq[i] = -sn * uj[i] + cs * uq[i];
              uj[i] = t;
            }
          }
        }
        break;
      }
      case 3: {  // One QR step with Wilkinson shift.
        const double scale = std::max(
            {std::abs(s[p - 1]), std::abs(s[p - 2]), std::abs(e[p - 2]),
             std::abs(s[k]), std::abs(e[k])});
        const double sp = s[p - 1] / scale;
        const double spm1 = s[p - 2] / scale;
        const double epm1 = e[p - 2] / scale;
        const double sk = s[k] / scale;
        const double ek = e[k] / scale;
        const double b = ((spm1 + sp) * (spm1 - sp) + epm1 * epm1) / 2.0;
        const double c = (sp * epm1) * (sp * epm1);
        double shift = 0.0;
        if (b != 0.0 || c != 0.0) {
          shift = std::sqrt(b * b + c);
          if (b < 0.0) shift = -shift;
          shift = c / (b + shift);
        }
        double f = (sk + sp) * (sk - sp) + shift;
        double g = sk * ek;
        for (int j = k; j < p - 1; ++j) {
          double t = std::hypot(f, g);
          double cs = f / t;
          double sn = g / t;
          if (j != k) e[j - 1] = t;
          f = cs * s[j] + sn * e[j];
          e[j] = cs * e[j] - sn * s[j];
          g = sn * s[j + 1];
          s[j + 1] = cs * s[j + 1];
          if (withVectors) {
            double* vj = &vt(j, 0);
            double* vq = &vt(j + 1, 0);
            for (int i = 0; i < n; ++i) {
              t = cs * vj[i] + sn * vq[i];
              vq[i] = -sn * vj[i] + cs * vq[i];
              vj[i] = t;
            }
          }
          t = std::hypot(f, g);
          cs = f / t;
          sn = g / t;
          s[j] = t;
          f = cs * e[j] + sn * s[j + 1];
          s[j + 1] = -sn * e[j] + cs * s[j + 1];
          g = sn * e[j + 1];
          e[j + 1] = cs * e[j + 1];
          if (withVectors && j < m - 1) {
            double* uj = &ut(j, 0);
            double* uq = &ut(j + 1, 0);
            for (int i = 0; i < m; ++i) {
              t = cs * uj[i] + sn * uq[i];
              uq[i] = -sn * uj[i] + cs * uq[i];
              uj[i] = t;
            }
          }
        }
        e[p - 2] = f;
        if (++iter > 500)
          throw std::runtime_error("SVD: QR iteration failed to converge");
        break;
      }
      case 4: {  // Convergence.
        if (s[k] <= 0.0) {
          s[k] = (s[k] < 0.0 ? -s[k] : 0.0);
          if (withVectors) {
            double* vk = &vt(k, 0);
            for (int i = 0; i <= pp; ++i) vk[i] = -vk[i];
          }
        }
        while (k < pp) {
          if (s[k] >= s[k + 1]) break;
          std::swap(s[k], s[k + 1]);
          if (withVectors && k < n - 1)
            std::swap_ranges(&vt(k, 0), &vt(k, 0) + n, &vt(k + 1, 0));
          if (withVectors && k < m - 1)
            std::swap_ranges(&ut(k, 0), &ut(k, 0) + m, &ut(k + 1, 0));
          ++k;
        }
        iter = 0;
        --p;
        break;
      }
    }
  }
}

// One dlabrd panel: bidiagonalizes rows/columns k .. k+nb-1 of `w` with
// lazily-applied updates. Instead of updating the trailing matrix after
// every reflector, the panel maintains
//
//   X = (fully updated A) * [right reflectors] * diag(taup)   (m x nb)
//   Y = (fully updated A)^T * [left reflectors] * diag(tauq)  (n x nb)
//
// so that the fully-updated entry of any panel row/column can be
// materialized on demand (the dlabrd recurrences below), and the whole
// trailing matrix is updated at once by the caller with two gemm calls:
//
//   A(k+nb:, k+nb:) -= V2 * Y2^T + X2 * U2,
//
// V2/U2 the below-/right-of-panel parts of the reflector blocks. The
// reflector vectors overwrite `w` LAPACK-style with their unit leading
// entries stored EXPLICITLY (at (i, i) and (i, i+1)), which is exactly
// what the trailing gemms and the compact-WY accumulation need; the
// bidiagonal itself lives in d/e (absolute indices), never in `w`.
void bidiagonalizePanel(Matrix& w, std::size_t k, std::size_t nb, Matrix& x,
                        Matrix& y, double* d, double* e, double* tauq,
                        double* taup) {
  const std::size_t m = w.rows();
  const std::size_t n = w.cols();
  std::vector<double> vcol(m), urow(n), gather(std::max(m, n)),
      acc(std::max(m, n)), t1(nb + 1), t2(nb);
  for (std::size_t t = 0; t < nb; ++t) {
    const std::size_t i = k + t;

    // Materialize the fully-updated column i:
    //   w(i:, i) -= w(i:, k:k+t) * Y(i, 0:t)^T + X(i:, 0:t) * w(k:k+t, i).
    if (t > 0) {
      const double* yi = &y(i, 0);
      for (std::size_t c = 0; c < t; ++c) t2[c] = w(k + c, i);
      for (std::size_t r = i; r < m; ++r) {
        const double* wr = &w(r, k);
        const double* xr = &x(r, 0);
        double a = w(r, i);
        for (std::size_t c = 0; c < t; ++c)
          a -= wr[c] * yi[c] + xr[c] * t2[c];
        w(r, i) = a;
      }
    }

    // Left reflector annihilating w(i+1:, i); unit entry stored at (i, i).
    for (std::size_t r = i; r < m; ++r) gather[r - i] = w(r, i);
    double beta;
    tauq[i] = makeReflector(gather.data(), m - i, vcol.data(), beta);
    d[i] = beta;
    for (std::size_t r = i; r < m; ++r) w(r, i) = vcol[r - i];

    if (i + 1 >= n) continue;  // last column: no row reflector, no X/Y

    // Y(i+1:, t) = tauq * (w(i:, i+1:)^T v - Y(:, 0:t) (w(i:, k:k+t)^T v)
    //                      - w(k:k+t, i+1:)^T (X(i:, 0:t)^T v)).
    std::fill(acc.begin() + i + 1, acc.begin() + n, 0.0);
    std::fill(t1.begin(), t1.begin() + t, 0.0);
    std::fill(t2.begin(), t2.begin() + t, 0.0);
    for (std::size_t r = i; r < m; ++r) {
      const double vr = vcol[r - i];
      if (vr == 0.0) continue;
      const double* wr = &w(r, 0);
      for (std::size_t j = i + 1; j < n; ++j) acc[j] += wr[j] * vr;
      const double* wk = &w(r, k);
      const double* xr = &x(r, 0);
      for (std::size_t c = 0; c < t; ++c) {
        t1[c] += wk[c] * vr;
        t2[c] += xr[c] * vr;
      }
    }
    for (std::size_t j = i + 1; j < n; ++j) {
      const double* yr = &y(j, 0);
      double a = 0.0;
      for (std::size_t c = 0; c < t; ++c) a += yr[c] * t1[c];
      acc[j] -= a;
    }
    for (std::size_t c = 0; c < t; ++c) {
      const double f = t2[c];
      if (f == 0.0) continue;
      const double* wc = &w(k + c, 0);
      for (std::size_t j = i + 1; j < n; ++j) acc[j] -= wc[j] * f;
    }
    for (std::size_t j = i + 1; j < n; ++j) y(j, t) = tauq[i] * acc[j];

    // Materialize the fully-updated row i:
    //   w(i, i+1:) -= Y(i+1:, 0:t+1) * w(i, k:k+t+1)^T
    //                 + w(k:k+t, i+1:)^T X(i, 0:t)^T.
    {
      const double* wik = &w(i, k);
      for (std::size_t c = 0; c <= t; ++c) t1[c] = wik[c];
      double* wr = &w(i, 0);
      for (std::size_t j = i + 1; j < n; ++j) {
        const double* yr = &y(j, 0);
        double a = 0.0;
        for (std::size_t c = 0; c <= t; ++c) a += yr[c] * t1[c];
        wr[j] -= a;
      }
      for (std::size_t c = 0; c < t; ++c) {
        const double f = x(i, c);
        if (f == 0.0) continue;
        const double* wc = &w(k + c, 0);
        for (std::size_t j = i + 1; j < n; ++j) wr[j] -= wc[j] * f;
      }
    }

    // Right reflector annihilating w(i, i+2:); unit stored at (i, i+1).
    taup[i] = makeReflector(&w(i, i + 1), n - i - 1, urow.data(), beta);
    e[i] = beta;
    {
      double* wr = &w(i, i + 1);
      for (std::size_t j = 0; j + i + 1 < n; ++j) wr[j] = urow[j];
    }

    // X(i+1:, t) = taup * (w(i+1:, i+1:) u - w(i+1:, k:k+t+1) (Y(i+1:, 0:t+1)^T u)
    //                      - X(i+1:, 0:t) (w(k:k+t, i+1:) u)).
    std::fill(t1.begin(), t1.begin() + t + 1, 0.0);
    for (std::size_t j = i + 1; j < n; ++j) {
      const double uj = urow[j - i - 1];
      if (uj == 0.0) continue;
      const double* yr = &y(j, 0);
      for (std::size_t c = 0; c <= t; ++c) t1[c] += yr[c] * uj;
    }
    for (std::size_t c = 0; c < t; ++c) {
      const double* wc = &w(k + c, 0);
      double a = 0.0;
      for (std::size_t j = i + 1; j < n; ++j) a += wc[j] * urow[j - i - 1];
      t2[c] = a;
    }
    for (std::size_t r = i + 1; r < m; ++r) {
      const double* wr = &w(r, 0);
      const double* wk = &w(r, k);
      const double* xr = &x(r, 0);
      double a = 0.0;
      for (std::size_t j = i + 1; j < n; ++j) a += wr[j] * urow[j - i - 1];
      for (std::size_t c = 0; c <= t; ++c) a -= wk[c] * t1[c];
      for (std::size_t c = 0; c < t; ++c) a -= xr[c] * t2[c];
      x(r, t) = taup[i] * a;
    }
  }
}

// Blocked Golub-Kahan SVD for m >= n >= 3: dlabrd panels + gemm trailing
// updates for the bidiagonalization, compact-WY panel application for the
// U/V accumulation, and the transposed-layout implicit-QR sweep on the
// bidiagonal core. Same output contract as gkSvd (thin U, full V, s
// descending); the two agree to backward-stable roundoff, not bitwise.
void gkSvdBlocked(const Matrix& aIn, std::vector<double>& sv, Matrix& u,
                  Matrix& v, bool wantVectors = true) {
  Matrix w = aIn;
  const std::size_t m = w.rows();
  const std::size_t n = w.cols();
  std::vector<double> d(n, 0.0), e(n, 0.0), tauq(n, 0.0), taup(n, 0.0);

  struct Panel {
    std::size_t start, width;
  };
  std::vector<Panel> panels;

  std::size_t k = 0;
  while (n - k > kSvdPanel) {
    const std::size_t nb = kSvdPanel;
    Matrix x(m, nb), y(n, nb);
    bidiagonalizePanel(w, k, nb, x, y, d.data(), e.data(), tauq.data(),
                       taup.data());
    // Trailing update (the BLAS-3 bulk): two gemms over the remainder.
    const std::size_t mt = m - k - nb, nt = n - k - nb;
    Matrix trail = w.block(k + nb, k + nb, mt, nt);
    gemm(-1.0, w.block(k + nb, k, mt, nb), false,
         y.block(k + nb, 0, nt, nb), true, 1.0, trail);
    gemm(-1.0, x.block(k + nb, 0, mt, nb), false,
         w.block(k, k + nb, nb, nt), false, 1.0, trail);
    w.setBlock(k + nb, k + nb, trail);
    panels.push_back({k, nb});
    k += nb;
  }
  {
    // Final (possibly narrow) panel: no trailing matrix left, so the
    // lazy recurrences alone finish the bidiagonalization.
    const std::size_t nb = n - k;
    Matrix x(m, nb), y(n, nb);
    bidiagonalizePanel(w, k, nb, x, y, d.data(), e.data(), tauq.data(),
                       taup.data());
    panels.push_back({k, nb});
  }

  if (!wantVectors) {
    // Values-only mode: skip the compact-WY factor accumulation and run
    // the rotation sweep without factor updates. The rotation sequence
    // (and therefore every singular value) is bit-identical to the
    // with-vectors run: the shifts and Givens coefficients only ever
    // read the bidiagonal s/e arrays.
    sv = d;
    e[n - 1] = 0.0;
    Matrix ut, vt;
    diagonalizeBidiagonalTransposed(sv, e, ut, vt, /*withVectors=*/false);
    return;
  }

  // Accumulate thin U = H_0 ... H_{nct-1} * I(m x n), panel by panel in
  // reverse order; panel p only touches rows/columns >= its start.
  u = Matrix(m, n);
  for (std::size_t j = 0; j < n; ++j) u(j, j) = 1.0;
  for (auto it = panels.rbegin(); it != panels.rend(); ++it) {
    const std::size_t kp = it->start, kb = it->width;
    Matrix vb(m - kp, kb);
    for (std::size_t c = 0; c < kb; ++c)
      for (std::size_t r = kp + c; r < m; ++r) vb(r - kp, c) = w(r, kp + c);
    const std::vector<double> tq(tauq.begin() + kp, tauq.begin() + kp + kb);
    const Matrix tf = buildCompactWyT(vb, tq);
    Matrix blk = u.block(kp, kp, m - kp, n - kp);
    applyBlockReflectorLeft(vb, tf, /*transpose=*/false, blk);
    u.setBlock(kp, kp, blk);
  }

  // Accumulate V = P_0 ... P_{n-3} * I(n); reflector of row i lives in
  // w(i, i+1:) with support starting at index i+1.
  v = Matrix::identity(n);
  for (auto it = panels.rbegin(); it != panels.rend(); ++it) {
    const std::size_t kp = it->start;
    const std::size_t last = std::min(kp + it->width, n - 1);
    if (last <= kp) continue;  // final 1-wide panel at the corner
    const std::size_t kb = last - kp;
    Matrix vb(n - kp - 1, kb);
    for (std::size_t c = 0; c < kb; ++c) {
      const std::size_t i = kp + c;
      for (std::size_t j = i + 1; j < n; ++j) vb(j - kp - 1, c) = w(i, j);
    }
    const std::vector<double> tp(taup.begin() + kp, taup.begin() + kp + kb);
    const Matrix tf = buildCompactWyT(vb, tp);
    Matrix blk = v.block(kp + 1, kp + 1, n - kp - 1, n - kp - 1);
    applyBlockReflectorLeft(vb, tf, /*transpose=*/false, blk);
    v.setBlock(kp + 1, kp + 1, blk);
  }

  // Diagonalize the bidiagonal core on transposed (row-contiguous)
  // factor layouts, then transpose back.
  sv = d;
  e[n - 1] = 0.0;
  Matrix ut = u.transposed();
  Matrix vt = v.transposed();
  diagonalizeBidiagonalTransposed(sv, e, ut, vt);
  u = ut.transposed();
  v = vt.transposed();
}

}  // namespace

namespace detail {

void bidiagonalQrSweepTransposed(std::vector<double>& sv,
                                 std::vector<double>& e, Matrix& ut,
                                 Matrix& vt, bool withVectors) {
  diagonalizeBidiagonalTransposed(sv, e, ut, vt, withVectors);
}

}  // namespace detail

RankReport::RankReport()
    : minKeptMargin(std::numeric_limits<double>::infinity()) {}

void RankReport::merge(const RankReport& other) {
  decisions += other.decisions;
  minKeptMargin = std::min(minKeptMargin, other.minKeptMargin);
  maxDroppedMargin = std::max(maxDroppedMargin, other.maxDroppedMargin);
}

double resolveRankTol(const std::vector<double>& s, std::size_t m,
                      std::size_t n, double tol) {
  if (tol >= 0.0) return tol;
  const double smax = s.empty() ? 0.0 : s.front();
  return static_cast<double>(std::max(m, n)) *
         std::numeric_limits<double>::epsilon() * std::max(smax, 1e-300);
}

std::size_t rankFromSingularValues(const std::vector<double>& s,
                                   std::size_t m, std::size_t n, double tol,
                                   RankReport* report) {
  const double cut = resolveRankTol(s, m, n, tol);
  obs::counterAdd(obs::Counter::RankDecisions);
  std::size_t r = 0;
  for (double sv : s)
    if (sv > cut) ++r;
  if (report) {
    ++report->decisions;
    if (r > 0)
      report->minKeptMargin = std::min(report->minKeptMargin, s[r - 1] / cut);
    if (r < s.size())
      report->maxDroppedMargin =
          std::max(report->maxDroppedMargin, s[r] / cut);
  }
  return r;
}

SVD::SVD(const Matrix& a, SvdKernel kernel) : m_(a.rows()), n_(a.cols()) {
  obs::counterAdd(obs::Counter::SvdCalls);
  // Span only at blocked-worthy sizes; the deflation chains factor many
  // tiny blocks that would otherwise flood the trace.
  obs::ObsSpan span("svd", "kernel", std::min(m_, n_) >= 64);
  span.arg("minDim", static_cast<std::int64_t>(std::min(m_, n_)));
  if (a.empty()) {
    u_ = Matrix::identity(m_);
    v_ = Matrix::identity(n_);
    return;
  }
  const std::size_t mn = std::min(m_, n_);
  bool blocked = false;
  switch (kernel) {
    case SvdKernel::Unblocked:
      break;
    case SvdKernel::Blocked:
      blocked = mn >= 3;  // below that the panel machinery degenerates
      break;
    case SvdKernel::Auto:
      blocked = mn >= kSvdCrossover;
      break;
  }
  const auto run = [blocked](const Matrix& in, std::vector<double>& sv,
                             Matrix& uu, Matrix& vv) {
    if (blocked)
      gkSvdBlocked(in, sv, uu, vv);
    else
      gkSvd(in, sv, uu, vv);
  };
  if (m_ >= n_) {
    run(a, s_, u_, v_);
  } else {
    transposed_ = true;
    Matrix ut, vt;
    run(a.transposed(), s_, vt, ut);  // A^T = vt S ut^T  =>  A = ut S vt^T
    u_ = ut;  // m x m (full V of the transposed problem)
    v_ = vt;  // n x m (thin U of the transposed problem)
  }
}

double SVD::defaultTol() const { return resolveRankTol(s_, m_, n_, -1.0); }

std::size_t SVD::rank(double tol, RankReport* report) const {
  return rankFromSingularValues(s_, m_, n_, tol, report);
}

Matrix SVD::range(double tol) const {
  const std::size_t r = rank(tol);
  return u_.block(0, 0, m_, r);
}

Matrix SVD::nullspace(double tol) const {
  const std::size_t r = rank(tol);
  const std::size_t nullity = n_ - r;
  if (nullity == 0) return Matrix(n_, 0);
  if (!transposed_) {
    // v_ is full n x n; kernel columns are r..n-1.
    return v_.block(0, r, n_, nullity);
  }
  // v_ is n x m (thin). Columns r..m-1 are kernel directions with sigma ~ 0;
  // the orthogonal complement of all of v_ supplies the remaining n - m.
  Matrix known = v_.block(0, r, n_, v_.cols() - r);
  Matrix comp = orthonormalComplement(v_);
  return hcat(known, comp);
}

Matrix SVD::leftNullspace(double tol) const {
  const std::size_t r = rank(tol);
  const std::size_t defect = m_ - r;
  if (defect == 0) return Matrix(m_, 0);
  if (transposed_) {
    // u_ is full m x m; left-null columns are r..m-1.
    return u_.block(0, r, m_, defect);
  }
  Matrix known = u_.block(0, r, m_, u_.cols() - r);
  Matrix comp = orthonormalComplement(u_);
  return hcat(known, comp);
}

Matrix SVD::pseudoInverse(double tol) const {
  if (tol < 0.0) tol = defaultTol();
  const std::size_t k = s_.size();
  Matrix x(n_, m_);
  // X = V diag(1/s) U^T restricted to sigma > tol.
  for (std::size_t p = 0; p < k; ++p) {
    if (s_[p] <= tol) continue;
    const double inv = 1.0 / s_[p];
    for (std::size_t i = 0; i < n_; ++i) {
      const double vi = v_(i, p) * inv;
      if (vi == 0.0) continue;
      for (std::size_t j = 0; j < m_; ++j) x(i, j) += vi * u_(j, p);
    }
  }
  return x;
}

double SVD::cond() const {
  if (s_.empty()) return 0.0;
  const std::size_t k = std::min(m_, n_);
  const double smin = s_[k - 1];
  if (smin == 0.0) return std::numeric_limits<double>::infinity();
  return s_.front() / smin;
}

std::vector<double> singularValues(const Matrix& a) {
  if (a.empty()) return {};
  const std::size_t mn = std::min(a.rows(), a.cols());
  if (mn < kSvdCrossover || mn < 3)
    return SVD(a).singularValues();  // small: factor cost is negligible
  std::vector<double> sv;
  Matrix u, v;
  if (a.rows() >= a.cols())
    gkSvdBlocked(a, sv, u, v, /*wantVectors=*/false);
  else
    gkSvdBlocked(a.transposed(), sv, u, v, /*wantVectors=*/false);
  return sv;
}

std::size_t rank(const Matrix& a, double tol) { return SVD(a).rank(tol); }

Matrix kernel(const Matrix& a, double tol) { return SVD(a).nullspace(tol); }

Matrix pseudoInverse(const Matrix& a, double tol) {
  return SVD(a).pseudoInverse(tol);
}

}  // namespace shhpass::linalg
