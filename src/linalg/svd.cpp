#include "linalg/svd.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "linalg/blas.hpp"
#include "linalg/qr.hpp"

namespace shhpass::linalg {
namespace {

// Golub-Kahan-Reinsch SVD for m >= n (JAMA lineage). Computes thin U (m x n),
// singular values s (n), and full V (n x n), sorted descending.
void gkSvd(Matrix a, std::vector<double>& sv, Matrix& u, Matrix& v) {
  const int m = static_cast<int>(a.rows());
  const int n = static_cast<int>(a.cols());
  const int nu = n;
  sv.assign(n, 0.0);
  double* s = sv.data();
  u = Matrix(m, nu);
  v = Matrix(n, n);
  std::vector<double> e(n, 0.0), work(m, 0.0);

  // Bidiagonalize, storing reflectors in `a`, diagonal in s, superdiag in e.
  const int nct = std::min(m - 1, n);
  const int nrt = std::max(0, std::min(n - 2, m));
  for (int k = 0; k < std::max(nct, nrt); ++k) {
    if (k < nct) {
      double nrm = 0.0;
      for (int i = k; i < m; ++i) nrm = std::hypot(nrm, a(i, k));
      s[k] = nrm;
      if (s[k] != 0.0) {
        if (a(k, k) < 0.0) s[k] = -s[k];
        for (int i = k; i < m; ++i) a(i, k) /= s[k];
        a(k, k) += 1.0;
      }
      s[k] = -s[k];
    }
    for (int j = k + 1; j < n; ++j) {
      if (k < nct && s[k] != 0.0) {
        double t = 0.0;
        for (int i = k; i < m; ++i) t += a(i, k) * a(i, j);
        t = -t / a(k, k);
        for (int i = k; i < m; ++i) a(i, j) += t * a(i, k);
      }
      e[j] = a(k, j);
    }
    if (k < nct)
      for (int i = k; i < m; ++i) u(i, k) = a(i, k);
    if (k < nrt) {
      double nrm = 0.0;
      for (int i = k + 1; i < n; ++i) nrm = std::hypot(nrm, e[i]);
      e[k] = nrm;
      if (e[k] != 0.0) {
        if (e[k + 1] < 0.0) e[k] = -e[k];
        for (int i = k + 1; i < n; ++i) e[i] /= e[k];
        e[k + 1] += 1.0;
      }
      e[k] = -e[k];
      if (k + 1 < m && e[k] != 0.0) {
        for (int i = k + 1; i < m; ++i) work[i] = 0.0;
        for (int j = k + 1; j < n; ++j)
          for (int i = k + 1; i < m; ++i) work[i] += e[j] * a(i, j);
        for (int j = k + 1; j < n; ++j) {
          const double t = -e[j] / e[k + 1];
          for (int i = k + 1; i < m; ++i) a(i, j) += t * work[i];
        }
      }
      for (int i = k + 1; i < n; ++i) v(i, k) = e[i];
    }
  }

  int p = n;
  if (nct < n) s[nct] = a(nct, nct);
  if (nrt + 1 < p) e[nrt] = a(nrt, p - 1);
  e[p - 1] = 0.0;

  // Generate U.
  for (int j = nct; j < nu; ++j) {
    for (int i = 0; i < m; ++i) u(i, j) = 0.0;
    u(j, j) = 1.0;
  }
  for (int k = nct - 1; k >= 0; --k) {
    if (s[k] != 0.0) {
      for (int j = k + 1; j < nu; ++j) {
        double t = 0.0;
        for (int i = k; i < m; ++i) t += u(i, k) * u(i, j);
        t = -t / u(k, k);
        for (int i = k; i < m; ++i) u(i, j) += t * u(i, k);
      }
      for (int i = k; i < m; ++i) u(i, k) = -u(i, k);
      u(k, k) = 1.0 + u(k, k);
      for (int i = 0; i < k - 1 + 1; ++i) u(i, k) = 0.0;
    } else {
      for (int i = 0; i < m; ++i) u(i, k) = 0.0;
      u(k, k) = 1.0;
    }
  }

  // Generate V.
  for (int k = n - 1; k >= 0; --k) {
    if (k < nrt && e[k] != 0.0) {
      for (int j = k + 1; j < n; ++j) {
        double t = 0.0;
        for (int i = k + 1; i < n; ++i) t += v(i, k) * v(i, j);
        t = -t / v(k + 1, k);
        for (int i = k + 1; i < n; ++i) v(i, j) += t * v(i, k);
      }
    }
    for (int i = 0; i < n; ++i) v(i, k) = 0.0;
    v(k, k) = 1.0;
  }

  // Main iteration: diagonalize the bidiagonal form.
  const int pp = p - 1;
  int iter = 0;
  const double eps = std::numeric_limits<double>::epsilon();
  const double tiny = std::numeric_limits<double>::min() / eps;
  while (p > 0) {
    int k, kase;
    for (k = p - 2; k >= -1; --k) {
      if (k == -1) break;
      if (std::abs(e[k]) <=
          tiny + eps * (std::abs(s[k]) + std::abs(s[k + 1]))) {
        e[k] = 0.0;
        break;
      }
    }
    if (k == p - 2) {
      kase = 4;
    } else {
      int ks;
      for (ks = p - 1; ks >= k; --ks) {
        if (ks == k) break;
        const double t = (ks != p ? std::abs(e[ks]) : 0.0) +
                         (ks != k + 1 ? std::abs(e[ks - 1]) : 0.0);
        if (std::abs(s[ks]) <= tiny + eps * t) {
          s[ks] = 0.0;
          break;
        }
      }
      if (ks == k) {
        kase = 3;
      } else if (ks == p - 1) {
        kase = 1;
      } else {
        kase = 2;
        k = ks;
      }
    }
    ++k;

    switch (kase) {
      case 1: {  // Deflate negligible s(p-1).
        double f = e[p - 2];
        e[p - 2] = 0.0;
        for (int j = p - 2; j >= k; --j) {
          double t = std::hypot(s[j], f);
          const double cs = s[j] / t;
          const double sn = f / t;
          s[j] = t;
          if (j != k) {
            f = -sn * e[j - 1];
            e[j - 1] = cs * e[j - 1];
          }
          for (int i = 0; i < n; ++i) {
            t = cs * v(i, j) + sn * v(i, p - 1);
            v(i, p - 1) = -sn * v(i, j) + cs * v(i, p - 1);
            v(i, j) = t;
          }
        }
        break;
      }
      case 2: {  // Split at negligible s(k).
        double f = e[k - 1];
        e[k - 1] = 0.0;
        for (int j = k; j < p; ++j) {
          double t = std::hypot(s[j], f);
          const double cs = s[j] / t;
          const double sn = f / t;
          s[j] = t;
          f = -sn * e[j];
          e[j] = cs * e[j];
          for (int i = 0; i < m; ++i) {
            t = cs * u(i, j) + sn * u(i, k - 1);
            u(i, k - 1) = -sn * u(i, j) + cs * u(i, k - 1);
            u(i, j) = t;
          }
        }
        break;
      }
      case 3: {  // One QR step with Wilkinson shift.
        const double scale = std::max(
            {std::abs(s[p - 1]), std::abs(s[p - 2]), std::abs(e[p - 2]),
             std::abs(s[k]), std::abs(e[k])});
        const double sp = s[p - 1] / scale;
        const double spm1 = s[p - 2] / scale;
        const double epm1 = e[p - 2] / scale;
        const double sk = s[k] / scale;
        const double ek = e[k] / scale;
        const double b = ((spm1 + sp) * (spm1 - sp) + epm1 * epm1) / 2.0;
        const double c = (sp * epm1) * (sp * epm1);
        double shift = 0.0;
        if (b != 0.0 || c != 0.0) {
          shift = std::sqrt(b * b + c);
          if (b < 0.0) shift = -shift;
          shift = c / (b + shift);
        }
        double f = (sk + sp) * (sk - sp) + shift;
        double g = sk * ek;
        for (int j = k; j < p - 1; ++j) {
          double t = std::hypot(f, g);
          double cs = f / t;
          double sn = g / t;
          if (j != k) e[j - 1] = t;
          f = cs * s[j] + sn * e[j];
          e[j] = cs * e[j] - sn * s[j];
          g = sn * s[j + 1];
          s[j + 1] = cs * s[j + 1];
          for (int i = 0; i < n; ++i) {
            t = cs * v(i, j) + sn * v(i, j + 1);
            v(i, j + 1) = -sn * v(i, j) + cs * v(i, j + 1);
            v(i, j) = t;
          }
          t = std::hypot(f, g);
          cs = f / t;
          sn = g / t;
          s[j] = t;
          f = cs * e[j] + sn * s[j + 1];
          s[j + 1] = -sn * e[j] + cs * s[j + 1];
          g = sn * e[j + 1];
          e[j + 1] = cs * e[j + 1];
          if (j < m - 1)
            for (int i = 0; i < m; ++i) {
              t = cs * u(i, j) + sn * u(i, j + 1);
              u(i, j + 1) = -sn * u(i, j) + cs * u(i, j + 1);
              u(i, j) = t;
            }
        }
        e[p - 2] = f;
        if (++iter > 500)
          throw std::runtime_error("SVD: QR iteration failed to converge");
        break;
      }
      case 4: {  // Convergence.
        if (s[k] <= 0.0) {
          s[k] = (s[k] < 0.0 ? -s[k] : 0.0);
          for (int i = 0; i <= pp; ++i) v(i, k) = -v(i, k);
        }
        while (k < pp) {
          if (s[k] >= s[k + 1]) break;
          std::swap(s[k], s[k + 1]);
          if (k < n - 1)
            for (int i = 0; i < n; ++i) std::swap(v(i, k), v(i, k + 1));
          if (k < m - 1)
            for (int i = 0; i < m; ++i) std::swap(u(i, k), u(i, k + 1));
          ++k;
        }
        iter = 0;
        --p;
        break;
      }
    }
  }
}

}  // namespace

SVD::SVD(const Matrix& a) : m_(a.rows()), n_(a.cols()) {
  if (a.empty()) {
    u_ = Matrix::identity(m_);
    v_ = Matrix::identity(n_);
    return;
  }
  if (m_ >= n_) {
    gkSvd(a, s_, u_, v_);
  } else {
    transposed_ = true;
    Matrix ut, vt;
    gkSvd(a.transposed(), s_, vt, ut);  // A^T = vt S ut^T  =>  A = ut S vt^T
    u_ = ut;  // m x m (full V of the transposed problem)
    v_ = vt;  // n x m (thin U of the transposed problem)
  }
}

double SVD::defaultTol() const {
  const double smax = s_.empty() ? 0.0 : s_.front();
  return static_cast<double>(std::max(m_, n_)) *
         std::numeric_limits<double>::epsilon() * std::max(smax, 1e-300);
}

std::size_t SVD::rank(double tol) const {
  if (tol < 0.0) tol = defaultTol();
  std::size_t r = 0;
  for (double sv : s_)
    if (sv > tol) ++r;
  return r;
}

Matrix SVD::range(double tol) const {
  const std::size_t r = rank(tol);
  return u_.block(0, 0, m_, r);
}

Matrix SVD::nullspace(double tol) const {
  const std::size_t r = rank(tol);
  const std::size_t nullity = n_ - r;
  if (nullity == 0) return Matrix(n_, 0);
  if (!transposed_) {
    // v_ is full n x n; kernel columns are r..n-1.
    return v_.block(0, r, n_, nullity);
  }
  // v_ is n x m (thin). Columns r..m-1 are kernel directions with sigma ~ 0;
  // the orthogonal complement of all of v_ supplies the remaining n - m.
  Matrix known = v_.block(0, r, n_, v_.cols() - r);
  Matrix comp = orthonormalComplement(v_);
  return hcat(known, comp);
}

Matrix SVD::leftNullspace(double tol) const {
  const std::size_t r = rank(tol);
  const std::size_t defect = m_ - r;
  if (defect == 0) return Matrix(m_, 0);
  if (transposed_) {
    // u_ is full m x m; left-null columns are r..m-1.
    return u_.block(0, r, m_, defect);
  }
  Matrix known = u_.block(0, r, m_, u_.cols() - r);
  Matrix comp = orthonormalComplement(u_);
  return hcat(known, comp);
}

Matrix SVD::pseudoInverse(double tol) const {
  if (tol < 0.0) tol = defaultTol();
  const std::size_t k = s_.size();
  Matrix x(n_, m_);
  // X = V diag(1/s) U^T restricted to sigma > tol.
  for (std::size_t p = 0; p < k; ++p) {
    if (s_[p] <= tol) continue;
    const double inv = 1.0 / s_[p];
    for (std::size_t i = 0; i < n_; ++i) {
      const double vi = v_(i, p) * inv;
      if (vi == 0.0) continue;
      for (std::size_t j = 0; j < m_; ++j) x(i, j) += vi * u_(j, p);
    }
  }
  return x;
}

double SVD::cond() const {
  if (s_.empty()) return 0.0;
  const std::size_t k = std::min(m_, n_);
  const double smin = s_[k - 1];
  if (smin == 0.0) return std::numeric_limits<double>::infinity();
  return s_.front() / smin;
}

std::size_t rank(const Matrix& a, double tol) { return SVD(a).rank(tol); }

Matrix kernel(const Matrix& a, double tol) { return SVD(a).nullspace(tol); }

Matrix pseudoInverse(const Matrix& a, double tol) {
  return SVD(a).pseudoInverse(tol);
}

}  // namespace shhpass::linalg
