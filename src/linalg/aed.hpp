// Aggressive early deflation (AED) for the multishift QR eigensolver
// (LAPACK dlaqr2 lineage).
//
// Given an unreduced active block [ilo, ihi] of an upper Hessenberg
// matrix, one AED step:
//
//   1. takes the trailing nw x nw window [kwtop, ihi] (kwtop =
//      ihi - nw + 1) and computes its real Schur form T = V^T W V with
//      the windowed Francis solver (francisSchurWindow on a copy, then
//      structure repair + dlanv2 standardization);
//   2. examines the "spike" s * V(0, :) — the image of the subdiagonal
//      entry s = H(kwtop, kwtop-1) under the window transform — block by
//      block from the bottom: an eigenvalue block whose spike feet are
//      negligible (LAPACK threshold: below eps times the block's
//      eigenvalue magnitude, with a safe-minimum floor) is DEFLATED in
//      place; an undeflatable block is moved to the top of the window by
//      the residual-checked swapAdjacentBlocks of schur_reorder.hpp (a
//      rejected swap conservatively ends the scan — fewer deflations,
//      never a corrupted spectrum);
//   3. reflects the surviving spike back to a single subdiagonal entry
//      and restores the undeflated part of the window to Hessenberg form
//      (an unblocked pass — the window is small);
//   4. commits the window transform to the full matrix: the off-window
//      row/column blocks and the Q accumulation are updated with one
//      gemm() call each, which is where the O(n * nw^2) bulk of the cost
//      goes;
//   5. harvests the eigenvalues of the undeflated part as shift
//      candidates for the next multishift sweep.
//
// The deflated eigenvalues are final converged Schur blocks; the caller
// shrinks its active range by `deflated` rows.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/schur_multishift.hpp"

namespace shhpass::linalg {

/// Outcome of one AED step.
struct AedResult {
  /// Eigenvalues deflated off the bottom of the active block (the
  /// caller's new active range is [ilo, ihi - deflated]).
  std::size_t deflated = 0;
  /// Eigenvalues of the undeflated window part, in diagonal order
  /// (complex conjugate pairs adjacent) — the next sweep's shift pool.
  std::vector<std::complex<double>> shifts;
};

/// Run one aggressive-early-deflation step on the trailing `nw` rows of
/// the unreduced active block [ilo, ihi] of the upper Hessenberg `h`
/// (2 <= nw <= ihi - ilo), accumulating the window transform into `q`.
/// Counters land in `report` (aedWindows, aedDeflations, iterations of
/// the inner windowed Francis solve). Throws SchurConvergenceError if
/// the window factorization itself fails to converge.
AedResult aggressiveEarlyDeflation(Matrix& h, Matrix& q, std::size_t ilo,
                                   std::size_t ihi, std::size_t nw,
                                   SchurReport& report);

}  // namespace shhpass::linalg
