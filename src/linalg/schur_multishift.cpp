#include "linalg/schur_multishift.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <limits>
#include <vector>

#include "linalg/aed.hpp"
#include "linalg/blas.hpp"

namespace shhpass::linalg {

void SchurReport::absorb(const SchurReport& other) {
  multishift = multishift || other.multishift;
  sweeps += other.sweeps;
  aedWindows += other.aedWindows;
  aedDeflations += other.aedDeflations;
  shiftsApplied += other.shiftsApplied;
  iterations += other.iterations;
  structureRepairs += other.structureRepairs;
}

std::size_t schurShiftCount(std::size_t active) {
  // IPARMQ-style ladder; always even (shifts are consumed in pairs).
  if (active < 150) return 12;
  if (active < 590) return 24;
  if (active < 1200) return 48;
  if (active < 3000) return 56;
  return 72;
}

std::size_t schurAedWindow(std::size_t active) {
  // Twice the shift count: a wide window deflates more eigenvalues per
  // visit (its Schur factorization is cheap relative to the sweeps it
  // saves) and still yields the sweep's full shift pool.
  return 2 * schurShiftCount(active) + 2;
}

void francisSchurWindow(Matrix& h, Matrix& z, std::size_t lo0, std::size_t hi0,
                        SchurReport* report) {
  const int nn = static_cast<int>(h.cols());
  const int zRows = static_cast<int>(z.rows());
  const int low = static_cast<int>(lo0);
  const int high = static_cast<int>(hi0);
  int n = high;
  const double eps = std::numeric_limits<double>::epsilon();
  double exshift = 0.0;
  double p = 0, q = 0, r = 0, s = 0, zz = 0, t, w, x, y;

  // Window norm: the fallback scale of the small-subdiagonal test.
  double norm = 0.0;
  for (int i = low; i <= high; ++i)
    for (int j = std::max(i - 1, low); j <= high; ++j)
      norm += std::abs(h(i, j));

  int iter = 0;
  long totalIter = 0;
  const long maxTotalIter = 60L * (high - low + 1) + 200;
  while (n >= low) {
    if (++totalIter > maxTotalIter) {
      if (report) report->iterations += totalIter;
      throw SchurConvergenceError(
          "francisSchurWindow: QR iteration failed to converge");
    }

    // Look for a single small subdiagonal element.
    int l = n;
    while (l > low) {
      s = std::abs(h(l - 1, l - 1)) + std::abs(h(l, l));
      if (s == 0.0) s = norm;
      if (std::abs(h(l, l - 1)) < eps * s) break;
      --l;
    }

    if (l == n) {
      // One root found.
      h(n, n) += exshift;
      if (l > low) h(n, n - 1) = 0.0;
      --n;
      iter = 0;
    } else if (l == n - 1) {
      // Two roots found.
      w = h(n, n - 1) * h(n - 1, n);
      p = (h(n - 1, n - 1) - h(n, n)) / 2.0;
      q = p * p + w;
      zz = std::sqrt(std::abs(q));
      h(n, n) += exshift;
      h(n - 1, n - 1) += exshift;
      x = h(n, n);

      if (q >= 0) {
        // Real pair: rotate the 2x2 block onto the diagonal.
        zz = (p >= 0) ? p + zz : p - zz;
        x = h(n, n - 1);
        s = std::abs(x) + std::abs(zz);
        p = x / s;
        q = zz / s;
        r = std::sqrt(p * p + q * q);
        p /= r;
        q /= r;
        for (int j = n - 1; j < nn; ++j) {
          zz = h(n - 1, j);
          h(n - 1, j) = q * zz + p * h(n, j);
          h(n, j) = q * h(n, j) - p * zz;
        }
        for (int i = 0; i <= n; ++i) {
          zz = h(i, n - 1);
          h(i, n - 1) = q * zz + p * h(i, n);
          h(i, n) = q * h(i, n) - p * zz;
        }
        for (int i = 0; i < zRows; ++i) {
          zz = z(i, n - 1);
          z(i, n - 1) = q * zz + p * z(i, n);
          z(i, n) = q * z(i, n) - p * zz;
        }
        h(n, n - 1) = 0.0;
      }
      // Either way the pair has converged: the subdiagonal entry the
      // deflation test judged negligible (under the shifted diagonals)
      // is zeroed NOW, so no eps-level leftover survives between this
      // block and the one that converges above it.
      if (l > low) h(l, l - 1) = 0.0;
      n -= 2;
      iter = 0;
    } else {
      // No convergence yet: form shift.
      x = h(n, n);
      y = 0.0;
      w = 0.0;
      if (l < n) {
        y = h(n - 1, n - 1);
        w = h(n, n - 1) * h(n - 1, n);
      }
      // Wilkinson's original ad hoc shift.
      if (iter == 10) {
        exshift += x;
        for (int i = low; i <= n; ++i) h(i, i) -= x;
        s = std::abs(h(n, n - 1)) + std::abs(h(n - 1, n - 2));
        x = y = 0.75 * s;
        w = -0.4375 * s * s;
      }
      // MATLAB's ad hoc shift.
      if (iter == 30) {
        s = (y - x) / 2.0;
        s = s * s + w;
        if (s > 0) {
          s = std::sqrt(s);
          if (y < x) s = -s;
          s = x - w / ((y - x) / 2.0 + s);
          for (int i = low; i <= n; ++i) h(i, i) -= s;
          exshift += s;
          x = y = w = 0.964;
        }
      }
      ++iter;

      // Look for two consecutive small subdiagonal elements.
      int m = n - 2;
      while (m >= l) {
        zz = h(m, m);
        r = x - zz;
        s = y - zz;
        p = (r * s - w) / h(m + 1, m) + h(m, m + 1);
        q = h(m + 1, m + 1) - zz - r - s;
        r = h(m + 2, m + 1);
        s = std::abs(p) + std::abs(q) + std::abs(r);
        p /= s;
        q /= s;
        r /= s;
        if (m == l) break;
        if (std::abs(h(m, m - 1)) * (std::abs(q) + std::abs(r)) <
            eps * (std::abs(p) * (std::abs(h(m - 1, m - 1)) + std::abs(zz) +
                                  std::abs(h(m + 1, m + 1)))))
          break;
        --m;
      }
      for (int i = m + 2; i <= n; ++i) {
        h(i, i - 2) = 0.0;
        if (i > m + 2) h(i, i - 3) = 0.0;
      }

      // Double QR step on rows l..n, columns m..n.
      for (int k = m; k <= n - 1; ++k) {
        const bool notlast = (k != n - 1);
        if (k != m) {
          p = h(k, k - 1);
          q = h(k + 1, k - 1);
          r = notlast ? h(k + 2, k - 1) : 0.0;
          x = std::abs(p) + std::abs(q) + std::abs(r);
          if (x == 0.0) continue;
          p /= x;
          q /= x;
          r /= x;
        }
        s = std::sqrt(p * p + q * q + r * r);
        if (p < 0) s = -s;
        if (s != 0) {
          if (k != m)
            h(k, k - 1) = -s * x;
          else if (l != m)
            h(k, k - 1) = -h(k, k - 1);
          p += s;
          x = p / s;
          y = q / s;
          zz = r / s;
          q /= p;
          r /= p;

          // Row modification (full width: trailing columns are live).
          for (int j = k; j < nn; ++j) {
            t = h(k, j) + q * h(k + 1, j);
            if (notlast) {
              t += r * h(k + 2, j);
              h(k + 2, j) -= t * zz;
            }
            h(k, j) -= t * x;
            h(k + 1, j) -= t * y;
          }
          // Column modification (from row 0: leading rows are live).
          for (int i = 0; i <= std::min(n, k + 3); ++i) {
            t = x * h(i, k) + y * h(i, k + 1);
            if (notlast) {
              t += zz * h(i, k + 2);
              h(i, k + 2) -= t * r;
            }
            h(i, k) -= t;
            h(i, k + 1) -= t * q;
          }
          // Accumulate transformations into every row of z.
          for (int i = 0; i < zRows; ++i) {
            t = x * z(i, k) + y * z(i, k + 1);
            if (notlast) {
              t += zz * z(i, k + 2);
              z(i, k + 2) -= t * r;
            }
            z(i, k) -= t;
            z(i, k + 1) -= t * q;
          }
        }
      }
    }
  }
  if (report) report->iterations += totalIter;
}

namespace {

/// One double-shift (sum = s1 + s2, prod = s1 * s2, both real — a
/// conjugate pair or two real shifts).
struct ShiftPair {
  double sum;
  double prod;
};

/// Pair the harvested AED eigenvalues into Francis double shifts and keep
/// the `maxPairs` of smallest magnitude (LAPACK sorts its shifts the same
/// way — small shifts target the eigenvalues deflating at the bottom).
std::vector<ShiftPair> pairShifts(
    const std::vector<std::complex<double>>& shifts, std::size_t maxPairs) {
  struct Unit {
    ShiftPair pair;
    double mag;
  };
  std::vector<Unit> units;
  std::vector<double> reals;
  for (std::size_t i = 0; i < shifts.size(); ++i) {
    if (shifts[i].imag() != 0.0) {
      // Standardized quasi-triangular input: the conjugate is adjacent.
      const double re = shifts[i].real(), im = shifts[i].imag();
      units.push_back({{2.0 * re, re * re + im * im}, std::abs(shifts[i])});
      ++i;
    } else {
      reals.push_back(shifts[i].real());
    }
  }
  std::size_t i = 0;
  for (; i + 1 < reals.size(); i += 2)
    units.push_back({{reals[i] + reals[i + 1], reals[i] * reals[i + 1]},
                     std::max(std::abs(reals[i]), std::abs(reals[i + 1]))});
  if (i < reals.size())  // odd leftover: a double real shift
    units.push_back(
        {{2.0 * reals[i], reals[i] * reals[i]}, std::abs(reals[i])});
  std::stable_sort(units.begin(), units.end(),
                   [](const Unit& a, const Unit& b) { return a.mag < b.mag; });
  if (units.size() > maxPairs) units.resize(maxPairs);
  std::vector<ShiftPair> out;
  out.reserve(units.size());
  for (const Unit& u : units) out.push_back(u.pair);
  return out;
}

/// A 3x3 bulge being chased down the diagonal. `pos` is the row of the
/// next pending reflector; the first application (at the introduction
/// row) builds the reflector from the shift polynomial instead of the
/// bulge column.
struct Bulge {
  ShiftPair shifts;
  long pos;
  bool introduced = false;
};

/// Apply the next reflector of bulge `b`, restricted to window
/// [w0, w1] of `h` and accumulated into `u` (the window transform).
/// Mirrors the double-QR-step body of the Francis iteration; the
/// annihilated bulge-column entries are written as exact zeros so the
/// matrix outside the live bulges stays exactly Hessenberg.
void applyBulgeStep(Matrix& h, Matrix& u, long w0, long w1, long ihi,
                    Bulge& b) {
  const long k = b.pos;
  const bool notlast = (k != ihi - 1);
  double p, q, r;
  if (!b.introduced) {
    // First column of (H - s1 I)(H - s2 I) e_1 at the introduction row,
    // scaled by 1 / H(k+1, k) (only the direction matters).
    const double d = h(k, k);
    p = (d * d - b.shifts.sum * d + b.shifts.prod) / h(k + 1, k) +
        h(k, k + 1);
    q = h(k + 1, k + 1) + d - b.shifts.sum;
    r = notlast ? h(k + 2, k + 1) : 0.0;
  } else {
    p = h(k, k - 1);
    q = h(k + 1, k - 1);
    r = notlast ? h(k + 2, k - 1) : 0.0;
  }
  const bool fromColumn = b.introduced;
  b.introduced = true;
  b.pos = k + 1;

  double x = std::abs(p) + std::abs(q) + std::abs(r);
  if (x == 0.0) return;  // bulge collapsed; nothing to chase this step
  p /= x;
  q /= x;
  r /= x;
  double s = std::sqrt(p * p + q * q + r * r);
  if (p < 0) s = -s;
  if (s == 0.0) return;

  if (fromColumn) {
    h(k, k - 1) = -s * x;
    // The reflector annihilates the rest of the bulge column exactly.
    h(k + 1, k - 1) = 0.0;
    if (notlast) h(k + 2, k - 1) = 0.0;
  }
  p += s;
  x = p / s;
  const double y = q / s;
  const double zz = r / s;
  q /= p;
  r /= p;

  // Row modification, window columns only (the rest is deferred to the
  // window-transform gemm flush).
  for (long j = k; j <= w1; ++j) {
    double t = h(k, j) + q * h(k + 1, j);
    if (notlast) {
      t += r * h(k + 2, j);
      h(k + 2, j) -= t * zz;
    }
    h(k, j) -= t * x;
    h(k + 1, j) -= t * y;
  }
  // Column modification, window rows only.
  const long iBot = std::min(ihi, k + 3);
  for (long i = w0; i <= iBot; ++i) {
    double t = x * h(i, k) + y * h(i, k + 1);
    if (notlast) {
      t += zz * h(i, k + 2);
      h(i, k + 2) -= t * r;
    }
    h(i, k) -= t;
    h(i, k + 1) -= t * q;
  }
  // Accumulate into the window transform.
  const long c = k - w0;
  const long uRows = static_cast<long>(u.rows());
  for (long i = 0; i < uRows; ++i) {
    double t = x * u(i, c) + y * u(i, c + 1);
    if (notlast) {
      t += zz * u(i, c + 2);
      u(i, c + 2) -= t * r;
    }
    u(i, c) -= t;
    u(i, c + 1) -= t * q;
  }
}

/// One small-bulge multishift sweep over the unreduced active block
/// [ilo, ihi]: chase a chain of 3x3 bulges (spaced three rows apart) down
/// the diagonal, accumulating each window pass into U and flushing the
/// off-window rows/columns of h and the q columns as gemm calls.
void multishiftSweep(Matrix& h, Matrix& z, long ilo, long ihi,
                     const std::vector<ShiftPair>& pairs, SchurReport& rep) {
  const long n = static_cast<long>(h.rows());
  std::vector<Bulge> bulges;  // front = bottom-most (oldest)
  std::size_t nextPair = 0;

  while (!bulges.empty() || nextPair < pairs.size()) {
    const long pTop = bulges.empty() ? ilo : bulges.back().pos;
    const long pBot = bulges.empty() ? ilo : bulges.front().pos;
    const long w0 =
        (nextPair < pairs.size()) ? ilo : std::max(ilo, pTop - 1);
    const long w1 =
        std::min(ihi, pBot + static_cast<long>(kSchurSweepChunk) + 3);
    const long nw = w1 - w0 + 1;
    Matrix u = Matrix::identity(static_cast<std::size_t>(nw));

    for (std::size_t step = 0; step < kSchurSweepChunk; ++step) {
      // Advance bottom-first; retire bulges that ran off the edge.
      for (Bulge& b : bulges) applyBulgeStep(h, u, w0, w1, ihi, b);
      while (!bulges.empty() && bulges.front().pos > ihi - 1)
        bulges.erase(bulges.begin());
      // Introduce the next bulge once the chain top has cleared the
      // four-row spacing (the bulge above must be pending at ilo + 4 or
      // lower so its bump column ilo + 3 stays outside the intro
      // reflector's column range ilo..ilo+2).
      if (nextPair < pairs.size() &&
          (bulges.empty() || bulges.back().pos >= ilo + 4)) {
        bulges.push_back({pairs[nextPair], ilo, false});
        ++nextPair;
        applyBulgeStep(h, u, w0, w1, ihi, bulges.back());
      }
      if (bulges.empty() && nextPair >= pairs.size()) break;
    }

    // Flush the accumulated window transform to the off-window parts.
    if (w1 + 1 < n) {
      Matrix right = h.block(w0, w1 + 1, nw, n - w1 - 1);
      Matrix tmp(nw, n - w1 - 1);
      gemm(1.0, u, true, right, false, 0.0, tmp);
      h.setBlock(w0, w1 + 1, tmp);
    }
    if (w0 > 0) {
      Matrix top = h.block(0, w0, w0, nw);
      Matrix tmp(w0, nw);
      gemm(1.0, top, false, u, false, 0.0, tmp);
      h.setBlock(0, w0, tmp);
    }
    if (z.rows() > 0) {
      Matrix zc = z.block(0, w0, z.rows(), nw);
      Matrix tmp(z.rows(), nw);
      gemm(1.0, zc, false, u, false, 0.0, tmp);
      z.setBlock(0, w0, tmp);
    }
  }
  ++rep.sweeps;
  rep.shiftsApplied += 2 * pairs.size();
}

}  // namespace

void multishiftSchurHessenberg(Matrix& h, Matrix& z, SchurReport* report) {
  const long n = static_cast<long>(h.rows());
  SchurReport local;
  local.multishift = true;
  const double eps = std::numeric_limits<double>::epsilon();

  // Global fallback scale of the small-subdiagonal test (matches the
  // hqr2 convention of substituting the matrix norm for a zero local
  // scale).
  double norm = 0.0;
  for (long i = 0; i < n; ++i)
    for (long j = std::max(i - 1, 0L); j < n; ++j) norm += std::abs(h(i, j));

  long ihi = n - 1;
  int stagnation = 0;
  long cycles = 0;
  const long maxCycles = 40L * n + 100;
  while (ihi >= 0) {
    if (++cycles > maxCycles) {
      if (report) report->absorb(local);
      throw SchurConvergenceError(
          "multishiftSchurHessenberg: QR iteration failed to converge");
    }

    // Find the unreduced block [ilo, ihi], zeroing the negligible
    // subdiagonal that bounds it.
    long ilo = ihi;
    while (ilo > 0) {
      const double sub = std::abs(h(ilo, ilo - 1));
      if (sub == 0.0) break;
      double s = std::abs(h(ilo - 1, ilo - 1)) + std::abs(h(ilo, ilo));
      if (s == 0.0) s = norm;
      if (sub < eps * s) {
        h(ilo, ilo - 1) = 0.0;
        break;
      }
      --ilo;
    }

    const long nh = ihi - ilo + 1;
    if (nh == 1) {
      ihi = ilo - 1;
      stagnation = 0;
      continue;
    }
    if (nh < static_cast<long>(kSchurMinActive)) {
      if (nh >= 8 && nh < n) {
        // Finish the block on a copy, like an AED window with no spike:
        // the windowed Francis then streams over nh-wide rows instead of
        // dragging every reflector across the full matrix, and the
        // off-window rows/columns and z are updated with one gemm each.
        const std::size_t lo = static_cast<std::size_t>(ilo);
        const std::size_t sz = static_cast<std::size_t>(nh);
        Matrix t = h.block(lo, lo, sz, sz);
        Matrix v = Matrix::identity(sz);
        francisSchurWindow(t, v, 0, sz - 1, &local);
        h.setBlock(lo, lo, t);
        if (lo > 0) {
          const Matrix top = h.block(0, lo, lo, sz);
          Matrix tmp(lo, sz);
          gemm(1.0, top, false, v, false, 0.0, tmp);
          h.setBlock(0, lo, tmp);
        }
        if (ihi + 1 < n) {
          const Matrix right =
              h.block(lo, ihi + 1, sz, static_cast<std::size_t>(n - ihi - 1));
          Matrix tmp(sz, static_cast<std::size_t>(n - ihi - 1));
          gemm(1.0, v, true, right, false, 0.0, tmp);
          h.setBlock(lo, ihi + 1, tmp);
        }
        if (z.rows() > 0) {
          const Matrix zc = z.block(0, lo, z.rows(), sz);
          Matrix tmp(z.rows(), sz);
          gemm(1.0, zc, false, v, false, 0.0, tmp);
          z.setBlock(0, lo, tmp);
        }
      } else {
        francisSchurWindow(h, z, static_cast<std::size_t>(ilo),
                           static_cast<std::size_t>(ihi), &local);
      }
      ihi = ilo - 1;
      stagnation = 0;
      continue;
    }

    // Aggressive early deflation on the trailing window.
    const std::size_t nw = std::min<std::size_t>(
        schurAedWindow(static_cast<std::size_t>(nh)),
        static_cast<std::size_t>(nh - 1));
    const AedResult aed =
        aggressiveEarlyDeflation(h, z, static_cast<std::size_t>(ilo),
                                 static_cast<std::size_t>(ihi), nw, local);
    if (aed.deflated > 0)
      stagnation = 0;
    else
      ++stagnation;
    ihi -= static_cast<long>(aed.deflated);
    if (aed.deflated * 100 >= kSchurAedNibble * nw) continue;
    if (ihi - ilo + 1 < static_cast<long>(kSchurMinActive)) continue;
    if (stagnation > 12) {
      // Exceptional fallback: let the windowed Francis iteration (with
      // its own exceptional-shift ladder) finish the stubborn block.
      francisSchurWindow(h, z, static_cast<std::size_t>(ilo),
                         static_cast<std::size_t>(ihi), &local);
      ihi = ilo - 1;
      stagnation = 0;
      continue;
    }

    // AED may have written exact zeros inside the restored window; let
    // the outer scan split the block rather than sweeping across one.
    bool split = false;
    for (long k = ilo + 1; k <= ihi; ++k)
      if (h(k, k - 1) == 0.0) {
        split = true;
        break;
      }
    if (split) continue;

    const std::size_t ns = schurShiftCount(static_cast<std::size_t>(nh));
    const std::vector<ShiftPair> pairs = pairShifts(aed.shifts, ns / 2);
    if (pairs.empty()) continue;
    multishiftSweep(h, z, ilo, ihi, pairs, local);
  }
  if (report) report->absorb(local);
}

}  // namespace shhpass::linalg
