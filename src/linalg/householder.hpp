// Compact-WY representation of products of Householder reflectors.
//
// A set of k elementary reflectors H_j = I - tau_j v_j v_j^T (v_j with a
// unit leading element) composes into the single rank-k form
//
//     Q = H_0 H_1 ... H_{k-1} = I - V T V^T,
//
// with V = [v_0 ... v_{k-1}] and T a k x k upper-triangular factor
// (LAPACK dlarft, forward columnwise). Applying Q (or Q^T) to a matrix
// then costs three gemm calls instead of k rank-1 updates — this is what
// turns the Hessenberg reduction and QR factorization into BLAS-3
// algorithms. Both hessenberg.cpp and qr.cpp share these kernels.
//
// Conventions:
//   * V is stored as a dense m x k matrix; column j is the full-length
//     reflector vector, with its leading 1 stored EXPLICITLY and exact
//     zeros above it. Callers that hold packed reflectors (below the
//     diagonal of a factored matrix) materialize V once per block.
//   * tau_j == 0 encodes H_j = I (a column that needed no reflection);
//     buildCompactWyT produces a zero column of T for it, so the block
//     form remains exact.
//
// Accuracy: the block application is backward stable like the unblocked
// one; blocked and per-reflector application agree to O(k * eps * ||C||)
// (the summation order differs), enforced at 1e-13 by
// tests/test_blas_blocked.cpp.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace shhpass::linalg {

/// Compute an elementary reflector H = I - tau v v^T annihilating x(1:):
/// H [x0; x(1:)] = [beta; 0]. On return v (length len) holds the reflector
/// with v[0] == 1, and beta the surviving entry. Returns tau; tau == 0
/// (with beta == x0) when x(1:) is already zero, in which case H == I.
/// Overflow-guarded like dlarfg (the norm is computed scaled).
double makeReflector(const double* x, std::size_t len, double* v,
                     double& beta);

/// Upper-triangular T with H_0 ... H_{k-1} = I - V T V^T (dlarft, forward
/// columnwise). V is m x k in the convention above; tau.size() == k.
Matrix buildCompactWyT(const Matrix& v, const std::vector<double>& tau);

/// C := (I - V T V^T) C, or (I - V T^T V^T) C when `transpose` — i.e.
/// Q C or Q^T C — via three gemm calls. C must have v.rows() rows.
void applyBlockReflectorLeft(const Matrix& v, const Matrix& t,
                             bool transpose, Matrix& c);

/// C := C (I - V T V^T) = C Q via three gemm calls. C must have v.rows()
/// columns.
void applyBlockReflectorRight(const Matrix& v, const Matrix& t, Matrix& c);

}  // namespace shhpass::linalg
