#include "linalg/schur.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "linalg/hessenberg.hpp"
#include "linalg/schur_multishift.hpp"
#include "linalg/schur_reorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace shhpass::linalg {
namespace {

// Francis double-shift QR on an upper Hessenberg matrix with accumulation
// (EISPACK hqr2 / JAMA lineage, eigenvector back-substitution omitted).
void hqr2(Matrix& h, Matrix& v, std::vector<double>& d,
          std::vector<double>& e, SchurReport* report = nullptr) {
  const int nn = static_cast<int>(h.rows());
  int n = nn - 1;
  const int low = 0, high = nn - 1;
  const double eps = std::numeric_limits<double>::epsilon();
  double exshift = 0.0;
  double p = 0, q = 0, r = 0, s = 0, z = 0, t, w, x, y;

  double norm = 0.0;
  for (int i = 0; i < nn; ++i)
    for (int j = std::max(i - 1, 0); j < nn; ++j) norm += std::abs(h(i, j));

  int iter = 0;
  long totalIter = 0;
  const long maxTotalIter = 60L * nn + 200;
  while (n >= low) {
    if (++totalIter > maxTotalIter) {
      if (report) report->iterations += totalIter;
      throw SchurConvergenceError(
          "schurUnblocked: QR iteration failed to converge");
    }

    // Look for a single small subdiagonal element.
    int l = n;
    while (l > low) {
      s = std::abs(h(l - 1, l - 1)) + std::abs(h(l, l));
      if (s == 0.0) s = norm;
      if (std::abs(h(l, l - 1)) < eps * s) break;
      --l;
    }

    if (l == n) {
      // One root found.
      h(n, n) += exshift;
      d[n] = h(n, n);
      e[n] = 0.0;
      if (l > low) h(n, n - 1) = 0.0;
      --n;
      iter = 0;
    } else if (l == n - 1) {
      // Two roots found.
      w = h(n, n - 1) * h(n - 1, n);
      p = (h(n - 1, n - 1) - h(n, n)) / 2.0;
      q = p * p + w;
      z = std::sqrt(std::abs(q));
      h(n, n) += exshift;
      h(n - 1, n - 1) += exshift;
      x = h(n, n);

      if (q >= 0) {
        // Real pair: rotate the 2x2 block onto the diagonal.
        z = (p >= 0) ? p + z : p - z;
        d[n - 1] = x + z;
        d[n] = d[n - 1];
        if (z != 0.0) d[n] = x - w / z;
        e[n - 1] = 0.0;
        e[n] = 0.0;
        x = h(n, n - 1);
        s = std::abs(x) + std::abs(z);
        p = x / s;
        q = z / s;
        r = std::sqrt(p * p + q * q);
        p /= r;
        q /= r;
        for (int j = n - 1; j < nn; ++j) {
          z = h(n - 1, j);
          h(n - 1, j) = q * z + p * h(n, j);
          h(n, j) = q * h(n, j) - p * z;
        }
        for (int i = 0; i <= n; ++i) {
          z = h(i, n - 1);
          h(i, n - 1) = q * z + p * h(i, n);
          h(i, n) = q * h(i, n) - p * z;
        }
        for (int i = low; i <= high; ++i) {
          z = v(i, n - 1);
          v(i, n - 1) = q * z + p * v(i, n);
          v(i, n) = q * v(i, n) - p * z;
        }
        h(n, n - 1) = 0.0;
      } else {
        // Complex pair: leave the (standardizable) 2x2 block in place.
        d[n - 1] = x + p;
        d[n] = x + p;
        e[n - 1] = z;
        e[n] = -z;
      }
      // Either way the pair has converged: the subdiagonal entry the
      // deflation test judged negligible (under the exshift-ed
      // diagonals) is zeroed NOW. Historically it was left behind,
      // which could leave an eps-level entry between two genuine 2x2
      // blocks — overlapping blocks that desynced every downstream
      // block scan until repairQuasiTriangularStructure patched them
      // post hoc.
      if (l > low) h(l, l - 1) = 0.0;
      n -= 2;
      iter = 0;
    } else {
      // No convergence yet: form shift.
      x = h(n, n);
      y = 0.0;
      w = 0.0;
      if (l < n) {
        y = h(n - 1, n - 1);
        w = h(n, n - 1) * h(n - 1, n);
      }
      // Wilkinson's original ad hoc shift.
      if (iter == 10) {
        exshift += x;
        for (int i = low; i <= n; ++i) h(i, i) -= x;
        s = std::abs(h(n, n - 1)) + std::abs(h(n - 1, n - 2));
        x = y = 0.75 * s;
        w = -0.4375 * s * s;
      }
      // MATLAB's ad hoc shift.
      if (iter == 30) {
        s = (y - x) / 2.0;
        s = s * s + w;
        if (s > 0) {
          s = std::sqrt(s);
          if (y < x) s = -s;
          s = x - w / ((y - x) / 2.0 + s);
          for (int i = low; i <= n; ++i) h(i, i) -= s;
          exshift += s;
          x = y = w = 0.964;
        }
      }
      ++iter;

      // Look for two consecutive small subdiagonal elements.
      int m = n - 2;
      while (m >= l) {
        z = h(m, m);
        r = x - z;
        s = y - z;
        p = (r * s - w) / h(m + 1, m) + h(m, m + 1);
        q = h(m + 1, m + 1) - z - r - s;
        r = h(m + 2, m + 1);
        s = std::abs(p) + std::abs(q) + std::abs(r);
        p /= s;
        q /= s;
        r /= s;
        if (m == l) break;
        if (std::abs(h(m, m - 1)) * (std::abs(q) + std::abs(r)) <
            eps * (std::abs(p) * (std::abs(h(m - 1, m - 1)) + std::abs(z) +
                                  std::abs(h(m + 1, m + 1)))))
          break;
        --m;
      }
      for (int i = m + 2; i <= n; ++i) {
        h(i, i - 2) = 0.0;
        if (i > m + 2) h(i, i - 3) = 0.0;
      }

      // Double QR step on rows l..n, columns m..n.
      for (int k = m; k <= n - 1; ++k) {
        const bool notlast = (k != n - 1);
        if (k != m) {
          p = h(k, k - 1);
          q = h(k + 1, k - 1);
          r = notlast ? h(k + 2, k - 1) : 0.0;
          x = std::abs(p) + std::abs(q) + std::abs(r);
          if (x == 0.0) continue;
          p /= x;
          q /= x;
          r /= x;
        }
        s = std::sqrt(p * p + q * q + r * r);
        if (p < 0) s = -s;
        if (s != 0) {
          if (k != m)
            h(k, k - 1) = -s * x;
          else if (l != m)
            h(k, k - 1) = -h(k, k - 1);
          p += s;
          x = p / s;
          y = q / s;
          z = r / s;
          q /= p;
          r /= p;

          // Row modification.
          for (int j = k; j < nn; ++j) {
            t = h(k, j) + q * h(k + 1, j);
            if (notlast) {
              t += r * h(k + 2, j);
              h(k + 2, j) -= t * z;
            }
            h(k, j) -= t * x;
            h(k + 1, j) -= t * y;
          }
          // Column modification.
          for (int i = 0; i <= std::min(n, k + 3); ++i) {
            t = x * h(i, k) + y * h(i, k + 1);
            if (notlast) {
              t += z * h(i, k + 2);
              h(i, k + 2) -= t * r;
            }
            h(i, k) -= t;
            h(i, k + 1) -= t * q;
          }
          // Accumulate transformations.
          for (int i = low; i <= high; ++i) {
            t = x * v(i, k) + y * v(i, k + 1);
            if (notlast) {
              t += z * v(i, k + 2);
              v(i, k + 2) -= t * r;
            }
            v(i, k) -= t;
            v(i, k + 1) -= t * q;
          }
        }
      }
    }
  }
  if (report) report->iterations += totalIter;
}

// Cleanup shared by both Schur paths: clean below-quasidiagonal entries
// left by deflation bookkeeping, zero the subdiagonal entries the
// iteration declared negligible so the result is exactly
// quasi-triangular, certify the block structure, and standardize every
// remaining 2x2 block (shared dlanv2 kernel): complex pairs get equal
// diagonals and opposite-sign off-diagonals; blocks whose eigenvalues
// turn out real are split into 1x1 blocks. Downstream block logic
// (reordering, invariant-subspace extraction) relies on this form.
void finalizeSchurForm(RealSchurResult& res) {
  const std::size_t n = res.t.rows();
  const double eps = std::numeric_limits<double>::epsilon();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j + 1 < i; ++j) res.t(i, j) = 0.0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double sub = std::abs(res.t(i + 1, i));
    if (sub != 0.0 &&
        sub <= eps * (std::abs(res.t(i, i)) + std::abs(res.t(i + 1, i + 1))))
      res.t(i + 1, i) = 0.0;
  }
  res.report.structureRepairs += repairQuasiTriangularStructure(res.t);
  standardizeQuasiTriangular(res.t, res.q);
  // Extract eigenvalues from the standardized quasi-triangular factor so
  // (t, eigenvalues) are exactly consistent.
  res.eigenvalues = quasiTriangularEigenvalues(res.t);
}

}  // namespace

RealSchurResult schurUnblocked(const Matrix& a) {
  if (!a.isSquare())
    throw std::invalid_argument("schurUnblocked: not square");
  const std::size_t n = a.rows();
  RealSchurResult res;
  if (n == 0) {
    res.t = Matrix();
    res.q = Matrix();
    return res;
  }
  HessenbergResult hes = hessenberg(a);
  res.t = std::move(hes.h);
  res.q = std::move(hes.q);
  std::vector<double> d(n, 0.0), e(n, 0.0);
  hqr2(res.t, res.q, d, e, &res.report);
  finalizeSchurForm(res);
  return res;
}

RealSchurResult realSchur(const Matrix& a) {
  if (!a.isSquare()) throw std::invalid_argument("realSchur: not square");
  const std::size_t n = a.rows();
  obs::counterAdd(obs::Counter::SchurCalls);
  obs::ObsSpan span("schur", "kernel", n >= 32);
  span.arg("n", static_cast<std::int64_t>(n));
  if (n < kSchurCrossover) return schurUnblocked(a);
  RealSchurResult res;
  HessenbergResult hes = hessenberg(a);
  res.t = std::move(hes.h);
  res.q = std::move(hes.q);
  multishiftSchurHessenberg(res.t, res.q, &res.report);
  finalizeSchurForm(res);
  return res;
}

std::vector<std::complex<double>> eigenvalues(const Matrix& a) {
  if (!a.isSquare()) throw std::invalid_argument("eigenvalues: not square");
  if (a.rows() < kSchurCrossover) return schurUnblocked(a).eigenvalues;
  // Values-only path: run the same Hessenberg + multishift iteration on
  // the same H factor, but never accumulate the orthogonal factor (a 0x0
  // q skips every accumulation loop and flush gemm). The T iterates are
  // bit-identical to realSchur's, so the eigenvalues agree exactly; only
  // the discarded Q work is saved.
  RealSchurResult res;
  HessenbergResult hes = hessenberg(a, /*wantQ=*/false);
  res.t = std::move(hes.h);
  multishiftSchurHessenberg(res.t, res.q, &res.report);
  finalizeSchurForm(res);
  return res.eigenvalues;
}

std::size_t repairQuasiTriangularStructure(Matrix& t) {
  const std::size_t n = t.rows();
  std::size_t repairs = 0;
  // Only entries negligible at the global scale may be zeroed: removing
  // one is a backward-stable perturbation of size <= tol. Overlapping
  // blocks whose subdiagonals are BOTH significant mean the input is not
  // a real Schur form at all — refuse rather than silently destroy an
  // O(1) entry (the certified-residual contract of the reordering layer
  // would otherwise report clean() on a corrupted spectrum).
  const double tol =
      16.0 * std::numeric_limits<double>::epsilon() * t.maxAbs();
  bool again = n >= 3;
  while (again) {
    again = false;
    for (std::size_t i = 0; i + 2 < n; ++i) {
      if (t(i + 1, i) != 0.0 && t(i + 2, i + 1) != 0.0) {
        const double lo =
            std::min(std::abs(t(i + 1, i)), std::abs(t(i + 2, i + 1)));
        if (lo > tol)
          throw std::invalid_argument(
              "repairQuasiTriangularStructure: overlapping 2x2 blocks with "
              "non-negligible subdiagonals (input is not quasi-triangular)");
        if (std::abs(t(i + 1, i)) <= std::abs(t(i + 2, i + 1)))
          t(i + 1, i) = 0.0;
        else
          t(i + 2, i + 1) = 0.0;
        ++repairs;
        again = true;
      }
    }
  }
  return repairs;
}

std::vector<std::complex<double>> quasiTriangularEigenvalues(const Matrix& t) {
  const std::size_t n = t.rows();
  std::vector<std::complex<double>> eig;
  eig.reserve(n);
  std::size_t i = 0;
  while (i < n) {
    if (i + 1 < n && t(i + 1, i) != 0.0) {
      const double a11 = t(i, i), a12 = t(i, i + 1);
      const double a21 = t(i + 1, i), a22 = t(i + 1, i + 1);
      const double tr = a11 + a22;
      const double det = a11 * a22 - a12 * a21;
      const double disc = tr * tr / 4.0 - det;
      if (disc >= 0.0) {
        const double sq = std::sqrt(disc);
        eig.emplace_back(tr / 2.0 + sq, 0.0);
        eig.emplace_back(tr / 2.0 - sq, 0.0);
      } else {
        const double sq = std::sqrt(-disc);
        eig.emplace_back(tr / 2.0, sq);
        eig.emplace_back(tr / 2.0, -sq);
      }
      i += 2;
    } else {
      eig.emplace_back(t(i, i), 0.0);
      i += 1;
    }
  }
  return eig;
}

}  // namespace shhpass::linalg
