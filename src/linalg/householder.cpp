#include "linalg/householder.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/blas.hpp"

namespace shhpass::linalg {

double makeReflector(const double* x, std::size_t len, double* v,
                     double& beta) {
  if (len == 0) {
    beta = 0.0;
    return 0.0;
  }
  v[0] = 1.0;
  // Scaled two-pass norm of the tail (overflow/underflow guard).
  double scale = 0.0;
  for (std::size_t i = 1; i < len; ++i)
    scale = std::max(scale, std::abs(x[i]));
  if (scale == 0.0) {
    beta = x[0];
    for (std::size_t i = 1; i < len; ++i) v[i] = 0.0;
    return 0.0;  // H = I
  }
  double sumsq = 0.0;
  for (std::size_t i = 1; i < len; ++i) {
    const double t = x[i] / scale;
    sumsq += t * t;
  }
  const double xnorm = scale * std::sqrt(sumsq);
  const double alpha = x[0];
  beta = -std::copysign(std::hypot(alpha, xnorm), alpha);
  const double tau = (beta - alpha) / beta;
  const double denom = alpha - beta;  // never 0: |beta| >= |alpha|, signs differ
  for (std::size_t i = 1; i < len; ++i) v[i] = x[i] / denom;
  return tau;
}

Matrix buildCompactWyT(const Matrix& v, const std::vector<double>& tau) {
  const std::size_t k = v.cols();
  if (tau.size() != k)
    throw std::invalid_argument("buildCompactWyT: tau size mismatch");
  Matrix t(k, k);
  if (k == 0) return t;
  // Gram matrix V^T V once (one BLAS-3 product), then the dlarft
  // recurrence T(0:j, j) = -tau_j * T(0:j, 0:j) * (V^T V)(0:j, j).
  const Matrix gram = atb(v, v);
  for (std::size_t j = 0; j < k; ++j) {
    t(j, j) = tau[j];
    if (tau[j] == 0.0) continue;  // H_j = I: zero column keeps Q exact
    for (std::size_t i = 0; i < j; ++i) {
      double s = 0.0;
      for (std::size_t l = i; l < j; ++l) s += t(i, l) * gram(l, j);
      t(i, j) = -tau[j] * s;
    }
  }
  return t;
}

void applyBlockReflectorLeft(const Matrix& v, const Matrix& t,
                             bool transpose, Matrix& c) {
  if (c.rows() != v.rows())
    throw std::invalid_argument("applyBlockReflectorLeft: shape mismatch");
  if (v.cols() == 0) return;
  // W = op(T) (V^T C); C -= V W.
  Matrix w = atb(v, c);
  w = multiply(t, transpose, w, false);
  gemm(-1.0, v, false, w, false, 1.0, c);
}

void applyBlockReflectorRight(const Matrix& v, const Matrix& t, Matrix& c) {
  if (c.cols() != v.rows())
    throw std::invalid_argument("applyBlockReflectorRight: shape mismatch");
  if (v.cols() == 0) return;
  // W = (C V) T; C -= W V^T.
  Matrix w = multiply(c * v, false, t, false);
  gemm(-1.0, w, false, v, true, 1.0, c);
}

}  // namespace shhpass::linalg
