// Real Schur decomposition A = Q T Q^T with T quasi-upper-triangular
// (1x1 blocks for real eigenvalues, standardized 2x2 blocks for complex
// conjugate pairs), via Hessenberg reduction + Francis double-shift QR.
#pragma once

#include <complex>
#include <vector>

#include "linalg/matrix.hpp"

namespace shhpass::linalg {

/// Result of a real Schur decomposition.
struct RealSchurResult {
  Matrix t;  ///< Quasi-upper-triangular Schur form.
  Matrix q;  ///< Orthogonal, A = q * t * q^T.
  /// Eigenvalues in diagonal order of t.
  std::vector<std::complex<double>> eigenvalues;
};

/// Compute the real Schur form of a square matrix.
/// Throws std::runtime_error if the QR iteration fails to converge.
RealSchurResult realSchur(const Matrix& a);

/// Eigenvalues only (convenience; same cost as realSchur).
std::vector<std::complex<double>> eigenvalues(const Matrix& a);

/// Extract the eigenvalues from an already quasi-triangular matrix
/// (1x1 and 2x2 diagonal blocks), without further factorization.
std::vector<std::complex<double>> quasiTriangularEigenvalues(const Matrix& t);

/// Repair an almost-quasi-triangular matrix so its diagonal block
/// structure is well defined: whenever two consecutive subdiagonal entries
/// are both nonzero (adjacent 2x2 blocks would overlap), zero the smaller
/// one. Such entries are deflation leftovers the QR iteration judged
/// negligible under its shifted diagonals; the final unshifted local
/// cleanup can miss them even though they are eps-level relative to the
/// matrix. Block-scanning code (reordering, eigenvalue extraction)
/// requires this invariant.
void repairQuasiTriangularStructure(Matrix& t);

}  // namespace shhpass::linalg
