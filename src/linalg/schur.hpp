// Real Schur decomposition A = Q T Q^T with T quasi-upper-triangular
// (1x1 blocks for real eigenvalues, standardized 2x2 blocks for complex
// conjugate pairs).
//
// Two implementations share the public entry point:
//
//   * schurUnblocked — Hessenberg reduction + the EISPACK hqr2 / JAMA
//     lineage Francis double-shift iteration. Kept as the reference
//     oracle (and used below the crossover, where its lower constant
//     wins).
//   * the multishift QR subsystem with aggressive early deflation
//     (schur_multishift.hpp, aed.hpp; LAPACK dlaqr0/dlaqr2/dlaqr5
//     lineage), which converts the bulk of the QR-iteration work into
//     blocked gemm() calls.
//
// realSchur() dispatches on kSchurCrossover (schur_multishift.hpp);
// below it the result is BIT-IDENTICAL to schurUnblocked (seeded
// downstream tests rely on that). Above it the two paths produce equally
// valid decompositions that agree on eigenvalues to backward-stable
// roundoff — equivalence is enforced by
// tests/test_schur_multishift_random.cpp.
#pragma once

#include <complex>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/schur_multishift.hpp"

namespace shhpass::linalg {

/// Result of a real Schur decomposition.
struct RealSchurResult {
  Matrix t;  ///< Quasi-upper-triangular Schur form.
  Matrix q;  ///< Orthogonal, A = q * t * q^T.
  /// Eigenvalues in diagonal order of t.
  std::vector<std::complex<double>> eigenvalues;
  /// Health record of the QR iteration (which path ran, sweep / AED /
  /// shift / iteration counters — schur_multishift.hpp).
  SchurReport report;
};

/// Compute the real Schur form of a square matrix. Dispatches between
/// the multishift (large) and the unblocked (small) implementation; see
/// the header comment. Throws SchurConvergenceError if the QR iteration
/// fails to converge (mapped to SCHUR_NO_CONVERGENCE by the public API).
RealSchurResult realSchur(const Matrix& a);

/// The unblocked EISPACK hqr2-lineage reference implementation. Exposed
/// for the multishift-vs-reference equivalence tests and kernel
/// benchmarks; production code should call realSchur().
RealSchurResult schurUnblocked(const Matrix& a);

/// Eigenvalues only. Above the crossover this runs the identical
/// Hessenberg + multishift iteration WITHOUT accumulating the orthogonal
/// factor (the Q-sized gemm flushes and accumulation loops are skipped
/// outright), so the values are exactly realSchur's at a fraction of the
/// cost; below the crossover it is plain schurUnblocked.
std::vector<std::complex<double>> eigenvalues(const Matrix& a);

/// Extract the eigenvalues from an already quasi-triangular matrix
/// (1x1 and 2x2 diagonal blocks), without further factorization.
std::vector<std::complex<double>> quasiTriangularEigenvalues(const Matrix& t);

/// Repair an almost-quasi-triangular matrix so its diagonal block
/// structure is well defined: whenever two consecutive subdiagonal entries
/// are both nonzero (adjacent 2x2 blocks would overlap), zero the smaller
/// one. The QR iterations now zero the subdiagonals they judge negligible
/// at deflation time, so this is a belt-and-braces pass: it throws if the
/// overlap it would have to remove is NOT negligible (input not a Schur
/// form). Block-scanning code (reordering, eigenvalue extraction)
/// requires the invariant it certifies. Returns the number of entries it
/// zeroed — 0 for any matrix the fixed QR iterations produce (the count
/// a realSchur run needed is recorded in SchurReport::structureRepairs,
/// and pinned to zero by the regression tests).
std::size_t repairQuasiTriangularStructure(Matrix& t);

}  // namespace shhpass::linalg
