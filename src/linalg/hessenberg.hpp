// Orthogonal reduction to upper Hessenberg form: A = Q H Q^T.
//
// Two implementations share the public entry point:
//
//   * hessenbergUnblocked — the EISPACK `orthes`/`ortran` lineage: one
//     Householder similarity per column, applied as rank-1 updates. Kept
//     as the reference implementation (and used for orders below the
//     crossover, where its lower constant wins).
//   * a blocked LAPACK dgehrd/dlahr2-style reduction (hessenberg.cpp):
//     panels of kHessenbergBlock columns are reduced with lazily-applied
//     updates, accumulating the compact-WY factors (V, T) and the product
//     Y = A V T; the trailing matrix and the Q accumulation are then
//     updated with a few large gemm calls (BLAS-3, ~80% of the flops).
//
// hessenberg() dispatches on kHessenbergCrossover. Both paths use the
// same reflector sign convention (leading entry's sign is flipped), so
// their H factors agree entrywise to O(n * eps * ||A||) — they are NOT
// bitwise identical; any valid Hessenberg form is equally acceptable to
// the Schur iteration downstream. Equivalence at 1e-11 (scaled) plus
// reconstruction/orthogonality bounds are enforced by
// tests/test_blas_blocked.cpp.
//
// Threading: the blocked path inherits whatever gemm does — enable
// setGemmThreads() to parallelize the trailing updates; the panel
// reduction itself is sequential either way, and results are
// bit-identical for every thread count (see blas.hpp).
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"

namespace shhpass::linalg {

/// Panel width of the blocked reduction (columns reduced per compact-WY
/// block; also the K extent of the trailing-update gemms).
inline constexpr std::size_t kHessenbergBlock = 32;
/// Smallest order for which hessenberg() takes the blocked path. Below
/// it the rank-1 EISPACK kernel is faster AND bit-identical to the
/// pre-blocking implementation (seeded downstream tests rely on that).
inline constexpr std::size_t kHessenbergCrossover = 128;

/// Result of a Hessenberg reduction.
struct HessenbergResult {
  Matrix h;  ///< Upper Hessenberg (zero below the first subdiagonal).
  Matrix q;  ///< Orthogonal accumulation, A = q * h * q^T (0x0 when the
             ///< reduction was requested with wantQ = false).
};

/// Reduce a square matrix to upper Hessenberg form with Householder
/// reflectors. Dispatches between the blocked (large) and the unblocked
/// (small) implementation; see the header comment. With wantQ = false
/// the orthogonal factor is never accumulated (result.q is 0x0) — the H
/// factor is bit-identical either way; eigenvalue-only callers skip the
/// accumulation cost entirely.
HessenbergResult hessenberg(const Matrix& a, bool wantQ = true);

/// The unblocked EISPACK `orthes`/`ortran` reference implementation.
/// Exposed for the blocked-vs-reference equivalence tests and kernel
/// benchmarks; production code should call hessenberg().
HessenbergResult hessenbergUnblocked(const Matrix& a, bool wantQ = true);

}  // namespace shhpass::linalg
