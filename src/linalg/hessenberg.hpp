// Orthogonal reduction to upper Hessenberg form: A = Q H Q^T.
#pragma once

#include "linalg/matrix.hpp"

namespace shhpass::linalg {

/// Result of a Hessenberg reduction.
struct HessenbergResult {
  Matrix h;  ///< Upper Hessenberg (zero below the first subdiagonal).
  Matrix q;  ///< Orthogonal accumulation, A = q * h * q^T.
};

/// Reduce a square matrix to upper Hessenberg form with Householder
/// reflectors (EISPACK `orthes`/`ortran` lineage).
HessenbergResult hessenberg(const Matrix& a);

}  // namespace shhpass::linalg
