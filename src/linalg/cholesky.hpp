// Cholesky factorization of symmetric positive-definite matrices, plus a
// semidefiniteness probe used by the passivity checks (M1 >= 0 tests).
#pragma once

#include "linalg/matrix.hpp"

namespace shhpass::linalg {

/// A = L L^T for symmetric positive definite A.
class Cholesky {
 public:
  /// Attempt the factorization; success() reports whether A was SPD.
  explicit Cholesky(const Matrix& a);

  bool success() const { return ok_; }

  /// Lower-triangular factor (valid only when success()).
  const Matrix& factor() const { return l_; }

  /// Solve A X = B via two triangular solves.
  Matrix solve(const Matrix& b) const;

  /// Solve L X = B (forward substitution with the lower factor only).
  /// Useful for forming symmetric congruences L^{-1} M L^{-T}.
  Matrix lowerSolve(const Matrix& b) const;

 private:
  Matrix l_;
  bool ok_ = false;
};

/// True iff the symmetric matrix A is positive semidefinite up to `tol`:
/// all eigenvalues >= -tol * max(1, ||A||_max). Implemented via a shifted
/// Cholesky probe with bisection fallback through the symmetric eigensolver.
bool isPositiveSemidefinite(const Matrix& a, double tol = 1e-9);

}  // namespace shhpass::linalg
