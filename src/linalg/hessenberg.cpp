#include "linalg/hessenberg.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "linalg/blas.hpp"
#include "linalg/householder.hpp"

namespace shhpass::linalg {
namespace {

// Blocked dgehrd/dlahr2-style reduction. Panel invariant (0-based; the
// panel starts at column k and reduces columns k .. k+nb-1):
//
//   after t reflectors, the fully updated matrix is
//       A_t = (I - V T^T V^T) (A0 - Y V^T),
//   with A0 the matrix frozen at panel start, V the n x t reflector
//   block (v_i supported on rows k+i+1 .. n-1, unit leading entry),
//   T the forward-columnwise compact-WY factor of H_0...H_{t-1}, and
//   Y = A0 V T (full height).
//
// Column k+t of A_t is materialized from that formula (two skinny
// products), the next reflector is computed from it, and V/T/Y are
// extended by one column each (dlahr2 recurrences). Only after the whole
// panel is reduced are the trailing columns updated, with three big gemm
// calls; Q is accumulated panel-by-panel at the end the same way. All
// O(n^3) work outside the skinny panel products is therefore BLAS-3.
HessenbergResult hessenbergBlocked(const Matrix& a, bool wantQ) {
  const std::size_t n = a.rows();
  HessenbergResult res{a, wantQ ? Matrix::identity(n) : Matrix()};
  Matrix& h = res.h;

  struct PanelFactors {
    std::size_t k;  // first reduced column
    Matrix v;       // n x nb reflectors
    Matrix t;       // nb x nb compact-WY factor
  };
  std::vector<PanelFactors> panels;

  std::vector<double> b(n), w(kHessenbergBlock), g(kHessenbergBlock),
      yv(n), vtail(n);

  for (std::size_t k = 0; k + 2 < n; k += kHessenbergBlock) {
    const std::size_t nb = std::min(kHessenbergBlock, n - 2 - k);
    // Frozen panel-start matrix; the recurrences only ever read columns
    // >= k, so only the trailing slab is copied. a0(i, c) below indexes
    // the FULL-matrix column c as a0(i, c - k).
    const Matrix a0 = h.block(0, k, n, n - k);
    Matrix v(n, nb), y(n, nb), tmat(nb, nb);
    std::vector<double> tau(nb, 0.0);

    for (std::size_t t = 0; t < nb; ++t) {
      const std::size_t j = k + t;

      // b := column j of A_t = (I - V T^T V^T)(A0 e_j - Y (V^T e_j)).
      for (std::size_t i = 0; i < n; ++i) b[i] = a0(i, j - k);
      if (t > 0) {
        // b -= Y(:, 0:t) * V(j, 0:t)^T (row j of V).
        for (std::size_t c = 0; c < t; ++c) {
          const double vj = v(j, c);
          if (vj == 0.0) continue;
          for (std::size_t i = 0; i < n; ++i) b[i] -= y(i, c) * vj;
        }
        // b -= V * (T^T (V^T b)).
        for (std::size_t c = 0; c < t; ++c) {
          double s = 0.0;
          for (std::size_t i = k + 1 + c; i < n; ++i) s += v(i, c) * b[i];
          w[c] = s;
        }
        for (std::size_t c = t; c-- > 0;) {
          double s = 0.0;
          for (std::size_t l = 0; l <= c; ++l) s += tmat(l, c) * w[l];
          g[c] = s;  // g = T^T w
        }
        for (std::size_t c = 0; c < t; ++c) {
          const double gc = g[c];
          if (gc == 0.0) continue;
          for (std::size_t i = k + 1 + c; i < n; ++i) b[i] -= v(i, c) * gc;
        }
      }

      // Reflector annihilating b(j+2 : n) (leading element b(j+1)).
      double beta;
      const double tauT =
          makeReflector(b.data() + j + 1, n - j - 1, vtail.data(), beta);
      tau[t] = tauT;
      for (std::size_t i = j + 1; i < n; ++i) v(i, t) = vtail[i - j - 1];

      // Column j of h is final: head from b, beta on the subdiagonal,
      // exact zeros below (later reflectors of this panel cannot touch
      // it — their support starts at row j+2 and meets only zeros).
      for (std::size_t i = 0; i <= j; ++i) h(i, j) = b[i];
      h(j + 1, j) = beta;
      for (std::size_t i = j + 2; i < n; ++i) h(i, j) = 0.0;

      // Extend T: T(0:t, t) = -tau * T * (V^T v_new); T(t, t) = tau.
      for (std::size_t c = 0; c < t; ++c) {
        double s = 0.0;
        for (std::size_t i = j + 1; i < n; ++i) s += v(i, c) * v(i, t);
        g[c] = s;  // g = V(:, 0:t)^T v_new, reused by the Y update
      }
      for (std::size_t i = 0; i < t; ++i) {
        double s = 0.0;
        for (std::size_t l = i; l < t; ++l) s += tmat(i, l) * g[l];
        tmat(i, t) = -tauT * s;
      }
      tmat(t, t) = tauT;

      // Extend Y: y_new = tau * (A0 v_new - Y (V^T v_new)). The dominant
      // dot of the whole panel: stream row i of a0 against the contiguous
      // reflector tail (vtail holds v(j+1 : n, t)) through dotQuad (fixed
      // four-accumulator reduction order — deterministic, per-machine
      // AVX2 dispatch).
      {
        const std::size_t len = n - j - 1;
        const std::size_t a0cols = a0.cols();
        const double* a0base = a0.data() + (j + 1 - k);
        for (std::size_t i = 0; i < n; ++i)
          yv[i] = dotQuad(a0base + i * a0cols, vtail.data(), len);
      }
      for (std::size_t c = 0; c < t; ++c) {
        const double gc = g[c];
        if (gc == 0.0) continue;
        for (std::size_t i = 0; i < n; ++i) yv[i] -= y(i, c) * gc;
      }
      for (std::size_t i = 0; i < n; ++i) y(i, t) = tauT * yv[i];
    }

    // Trailing update (the BLAS-3 bulk): columns k+nb .. n-1.
    const std::size_t trail = k + nb;
    if (trail < n) {
      // Right: H(:, trail:) -= Y * V(trail:, :)^T.
      Matrix cblk = h.block(0, trail, n, n - trail);
      gemm(-1.0, y, false, v.block(trail, 0, n - trail, nb), true, 1.0,
           cblk);
      // Left: H(k+1:, trail:) = (I - V2 T^T V2^T) * (right-updated block).
      Matrix top = cblk.block(0, 0, k + 1, n - trail);
      Matrix bot = cblk.block(k + 1, 0, n - k - 1, n - trail);
      applyBlockReflectorLeft(v.block(k + 1, 0, n - k - 1, nb), tmat,
                              /*transpose=*/true, bot);
      h.setBlock(0, trail, top);
      h.setBlock(k + 1, trail, bot);
    }
    panels.push_back({k, std::move(v), std::move(tmat)});
  }

  // Accumulate Q = (I - V_0 T_0 V_0^T)(I - V_1 T_1 V_1^T)...: each panel
  // touches only columns k+1 .. n-1 of Q (the reflector support).
  if (!wantQ) return res;
  for (const PanelFactors& p : panels) {
    const std::size_t first = p.k + 1;
    Matrix qcols = res.q.block(0, first, n, n - first);
    applyBlockReflectorRight(p.v.block(first, 0, n - first, p.v.cols()),
                             p.t, qcols);
    res.q.setBlock(0, first, qcols);
  }
  return res;
}

}  // namespace

HessenbergResult hessenberg(const Matrix& a, bool wantQ) {
  if (!a.isSquare()) throw std::invalid_argument("hessenberg: not square");
  if (a.rows() < kHessenbergCrossover) return hessenbergUnblocked(a, wantQ);
  return hessenbergBlocked(a, wantQ);
}

HessenbergResult hessenbergUnblocked(const Matrix& a, bool wantQ) {
  if (!a.isSquare()) throw std::invalid_argument("hessenberg: not square");
  const int n = static_cast<int>(a.rows());
  HessenbergResult res{a, wantQ ? Matrix::identity(a.rows()) : Matrix()};
  if (n < 3) return res;
  Matrix& h = res.h;
  std::vector<double> ort(n, 0.0);

  const int low = 0, high = n - 1;
  for (int m = low + 1; m <= high - 1; ++m) {
    // Scale column m-1 below row m.
    double scale = 0.0;
    for (int i = m; i <= high; ++i) scale += std::abs(h(i, m - 1));
    if (scale == 0.0) continue;

    double hsum = 0.0;
    for (int i = high; i >= m; --i) {
      ort[i] = h(i, m - 1) / scale;
      hsum += ort[i] * ort[i];
    }
    double g = std::sqrt(hsum);
    if (ort[m] > 0) g = -g;
    hsum -= ort[m] * g;
    ort[m] -= g;

    // Apply Householder similarity transformation H = (I - u u^T / h) H ...
    for (int j = m; j < n; ++j) {
      double f = 0.0;
      for (int i = high; i >= m; --i) f += ort[i] * h(i, j);
      f /= hsum;
      for (int i = m; i <= high; ++i) h(i, j) -= f * ort[i];
    }
    // ... (I - u u^T / h) from the right.
    for (int i = 0; i <= high; ++i) {
      double f = 0.0;
      for (int j = high; j >= m; --j) f += ort[j] * h(i, j);
      f /= hsum;
      for (int j = m; j <= high; ++j) h(i, j) -= f * ort[j];
    }
    ort[m] *= scale;
    h(m, m - 1) = scale * g;
  }

  // Accumulate transformations (ortran): requires the reflector vectors
  // still stored in the subdiagonal part of h plus ort[].
  if (wantQ) {
    Matrix& q = res.q;
    for (int m = high - 1; m >= low + 1; --m) {
      if (h(m, m - 1) != 0.0) {
        for (int i = m + 1; i <= high; ++i) ort[i] = h(i, m - 1);
        for (int j = m; j <= high; ++j) {
          double g = 0.0;
          for (int i = m; i <= high; ++i) g += ort[i] * q(i, j);
          // Double division avoids possible underflow (EISPACK comment).
          g = (g / ort[m]) / h(m, m - 1);
          for (int i = m; i <= high; ++i) q(i, j) += g * ort[i];
        }
      }
    }
  }
  // Zero out the sub-Hessenberg entries now that Q is accumulated.
  for (int i = 2; i < n; ++i)
    for (int j = 0; j < i - 1; ++j) h(i, j) = 0.0;
  return res;
}

}  // namespace shhpass::linalg
