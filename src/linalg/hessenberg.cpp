#include "linalg/hessenberg.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace shhpass::linalg {

HessenbergResult hessenberg(const Matrix& a) {
  if (!a.isSquare()) throw std::invalid_argument("hessenberg: not square");
  const int n = static_cast<int>(a.rows());
  HessenbergResult res{a, Matrix::identity(a.rows())};
  if (n < 3) return res;
  Matrix& h = res.h;
  std::vector<double> ort(n, 0.0);

  const int low = 0, high = n - 1;
  for (int m = low + 1; m <= high - 1; ++m) {
    // Scale column m-1 below row m.
    double scale = 0.0;
    for (int i = m; i <= high; ++i) scale += std::abs(h(i, m - 1));
    if (scale == 0.0) continue;

    double hsum = 0.0;
    for (int i = high; i >= m; --i) {
      ort[i] = h(i, m - 1) / scale;
      hsum += ort[i] * ort[i];
    }
    double g = std::sqrt(hsum);
    if (ort[m] > 0) g = -g;
    hsum -= ort[m] * g;
    ort[m] -= g;

    // Apply Householder similarity transformation H = (I - u u^T / h) H ...
    for (int j = m; j < n; ++j) {
      double f = 0.0;
      for (int i = high; i >= m; --i) f += ort[i] * h(i, j);
      f /= hsum;
      for (int i = m; i <= high; ++i) h(i, j) -= f * ort[i];
    }
    // ... (I - u u^T / h) from the right.
    for (int i = 0; i <= high; ++i) {
      double f = 0.0;
      for (int j = high; j >= m; --j) f += ort[j] * h(i, j);
      f /= hsum;
      for (int j = m; j <= high; ++j) h(i, j) -= f * ort[j];
    }
    ort[m] *= scale;
    h(m, m - 1) = scale * g;
  }

  // Accumulate transformations (ortran): requires the reflector vectors
  // still stored in the subdiagonal part of h plus ort[].
  Matrix& q = res.q;
  for (int m = high - 1; m >= low + 1; --m) {
    if (h(m, m - 1) != 0.0) {
      for (int i = m + 1; i <= high; ++i) ort[i] = h(i, m - 1);
      for (int j = m; j <= high; ++j) {
        double g = 0.0;
        for (int i = m; i <= high; ++i) g += ort[i] * q(i, j);
        // Double division avoids possible underflow (EISPACK comment).
        g = (g / ort[m]) / h(m, m - 1);
        for (int i = m; i <= high; ++i) q(i, j) += g * ort[i];
      }
    }
  }
  // Zero out the sub-Hessenberg entries now that Q is accumulated.
  for (int i = 2; i < n; ++i)
    for (int j = 0; j < i - 1; ++j) h(i, j) = 0.0;
  return res;
}

}  // namespace shhpass::linalg
