// Reordering of real Schur forms by orthogonal swaps of adjacent diagonal
// blocks (Bai-Demmel direct-swap method, LAPACK dtrexc/dlaexc lineage).
// Used to compute ordered invariant subspaces, e.g. the stable invariant
// subspace of the Hamiltonian matrix in Eq. (22) of the paper.
//
// Unlike a naive implementation that force-zeros the decoupled lower-left
// window block after every swap, each swap here is RESIDUAL-CHECKED
// (dlaexc-style): the orthogonal transformation is applied to a copy of
// the window first, and the swap is rejected — leaving the ordering merely
// suboptimal, never the spectrum corrupted — when the entries that should
// vanish exceed a backward-stability threshold. 2x2 diagonal blocks are
// kept in standard form (dlanv2-style): either split into two real 1x1
// eigenvalues or rotated to a complex-pair block with equal diagonals.
//
// ## Kernels, threading, accuracy
//
// An accepted swap applies its w x w window transform (w <= 4) in place,
// restricted to the quasi-triangular profile: the left update touches
// rows j..j+w-1 from column j rightward, the right update columns
// j..j+w-1 down to row j+w-1 — entries outside that profile are exact
// zeros and provably stay zero, so O(swaps * n) work and all temporary
// block copies are skipped (the historical implementation materialized
// three n-sized blocks per swap). The rehearsal product and the local
// Sylvester solve ride the shared gemm/LU kernels (blas.hpp); at window
// size <= 4 those always take the small-kernel path.
//
// Threading: reordering is inherently sequential (each swap depends on
// the previous one); nothing here uses the gemm thread pool, and results
// are bit-deterministic run-to-run by construction.
//
// Accuracy: each accepted swap commits a backward error of at most
// max(10 eps ||window||, 20 eps ||T||) (the acceptance thresholds below),
// so a full reorder of s swaps perturbs T by O(s * eps * ||T||) in the
// worst case; the per-swap residuals and a matched eigenvalue-drift bound
// are tallied in ReorderReport rather than assumed.
#pragma once

#include <complex>
#include <functional>

#include "linalg/matrix.hpp"

namespace shhpass::linalg {

/// Predicate on an eigenvalue deciding whether it should be moved to the
/// leading (top-left) part of the Schur form.
using EigenvalueSelector = std::function<bool(std::complex<double>)>;

/// Health record of one reordering pass: how many adjacent swaps ran, how
/// many were rejected by the residual check, the largest accepted-swap
/// residual, and an accumulated bound on eigenvalue drift. Serialized into
/// the api::AnalysisReport JSON so pipeline observers can audit reorder
/// accuracy.
struct ReorderReport {
  /// Accepted adjacent-block swaps.
  std::size_t swaps = 0;
  /// Swap ATTEMPTS rejected by the residual check. A nonzero count means
  /// the requested ordering could not be fully realized (some selected
  /// eigenvalues remain outside the leading block); the Schur form itself
  /// stays numerically intact. One ill-posed exchange may be re-attempted
  /// (and re-counted) when an interleaved block split forces a structural
  /// rescan, so this counts attempts, not distinct exchanges.
  std::size_t rejectedSwaps = 0;
  /// Max over accepted swaps of the largest entry of the decoupled
  /// lower-left window block before it is set to zero — the backward error
  /// ||Q^T T Q - T'|| introduced by that swap, in absolute terms.
  double maxResidual = 0.0;
  /// Sum over accepted swaps of the eigenvalue perturbation of the two
  /// swapped blocks (matched before/after). An upper bound on the total
  /// drift any single eigenvalue accumulated along its bubbling path.
  double eigenvalueDrift = 0.0;
  /// dlanv2 standardizations applied (splits + complex-pair rotations).
  std::size_t standardizations = 0;

  /// True when the requested ordering was realized exactly (no rejects).
  bool clean() const { return rejectedSwaps == 0; }

  /// Merge another pass's record (for callers that reorder repeatedly).
  void absorb(const ReorderReport& other);
};

/// Reorder a real Schur factorization (t, q) in place so that every
/// eigenvalue for which `select` is true appears in the leading diagonal
/// blocks of t. 2x2 blocks are moved atomically (a conjugate pair is either
/// fully selected or not, judged on its first eigenvalue); fused 2x2 blocks
/// whose eigenvalues are actually real are split first so both halves are
/// classified independently.
///
/// Returns the dimension of the leading invariant subspace actually
/// realized (the number of selected eigenvalues moved to the top). When no
/// swap is rejected this equals the total selected count; rejected swaps
/// (nearly identical eigenvalues across the swap, an ill-posed exchange)
/// leave the affected block in place and are tallied in `report`.
std::size_t reorderSchur(Matrix& t, Matrix& q, const EigenvalueSelector& select,
                         ReorderReport* report = nullptr);

/// Standardize every 2x2 diagonal block of the quasi-triangular t (see
/// standardize2x2), accumulating the rotations into q and counting the
/// blocks that changed in `report` (if non-null). Used by realSchur to
/// deliver standardized output and by reorderSchur's entry pass.
void standardizeQuasiTriangular(Matrix& t, Matrix& q,
                                ReorderReport* report = nullptr);

/// Standardize the 2x2 diagonal block at (j, j) of the quasi-triangular t
/// (dlanv2): apply an orthogonal rotation — to the full rows/columns of t,
/// accumulated into q — after which the block either
///   * is upper triangular (two real eigenvalues; the block is split and
///     the return value is true), or
///   * has equal diagonal entries and off-diagonal entries of opposite
///     sign (standardized complex-conjugate pair; returns false).
/// A block that is already standardized is left bit-identical.
bool standardize2x2(Matrix& t, Matrix& q, std::size_t j);

/// Swap the adjacent diagonal blocks of sizes p and qsz located at row/col
/// j (block1 at j..j+p-1, block2 at j+p..j+p+qsz-1) of the quasi-triangular
/// t using an orthogonal similarity, updating t and the accumulated q.
///
/// The 1x1/1x1 exchange is a single exact Givens rotation and always
/// succeeds. Exchanges involving a 2x2 block go through a local Sylvester
/// solve + QR; the transformation is rehearsed on a window copy and the
/// swap is REJECTED (t, q untouched, returns false) when the post-swap
/// residual exceeds a small multiple of machine epsilon times the window
/// norm. On success the swapped 2x2 blocks are re-standardized and the
/// accepted-swap residual/drift are recorded in `report`.
bool swapAdjacentBlocks(Matrix& t, Matrix& q, std::size_t j, std::size_t p,
                        std::size_t qsz, ReorderReport* report = nullptr);

}  // namespace shhpass::linalg
