// Reordering of real Schur forms by orthogonal swaps of adjacent diagonal
// blocks (Bai-Demmel direct-swap method). Used to compute ordered invariant
// subspaces, e.g. the stable invariant subspace of the Hamiltonian matrix in
// Eq. (22) of the paper.
#pragma once

#include <complex>
#include <functional>

#include "linalg/matrix.hpp"

namespace shhpass::linalg {

/// Predicate on an eigenvalue deciding whether it should be moved to the
/// leading (top-left) part of the Schur form.
using EigenvalueSelector = std::function<bool(std::complex<double>)>;

/// Reorder a real Schur factorization (t, q) in place so that every
/// eigenvalue for which `select` is true appears in the leading diagonal
/// blocks of t. 2x2 blocks are moved atomically (a conjugate pair is either
/// fully selected or not, judged on its first eigenvalue).
///
/// Returns the dimension of the leading invariant subspace (the number of
/// selected eigenvalues). The first k columns of q then span the invariant
/// subspace associated with the selected eigenvalues.
///
/// Throws std::runtime_error if an adjacent swap is numerically impossible
/// (nearly identical eigenvalues across the swap).
std::size_t reorderSchur(Matrix& t, Matrix& q, const EigenvalueSelector& select);

/// Swap the adjacent diagonal blocks of sizes p and q located at row/col j
/// (block1 at j..j+p-1, block2 at j+p..j+p+q-1) using an orthogonal
/// similarity, updating t and the accumulated q. Exposed for testing.
void swapSchurBlocks(Matrix& t, Matrix& q, std::size_t j, std::size_t p,
                     std::size_t qsz);

}  // namespace shhpass::linalg
