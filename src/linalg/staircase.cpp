#include "linalg/staircase.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "linalg/blas.hpp"
#include "linalg/householder.hpp"
#include "linalg/qr.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace shhpass::linalg {

namespace {

// Blocked Householder tridiagonalization of an EXACTLY skew matrix:
// M = Q T Q^T with T skew tridiagonal (only the subdiagonal is returned).
// For skew A the similarity H A H with H = I - tau u u^T collapses to the
// rank-2 skew update A <- A + u p^T - p u^T, p = tau A u (the symmetric
// case's correction term vanishes because u^T A u == 0 exactly), so a
// dsytrd-style panel factorization applies: within a panel the updates are
// deferred (columns read A + U P^T - P U^T on the fly), then the trailing
// block absorbs the whole panel as two gemm calls. This does ~2/3 n^3
// gemv-bound flops plus ~4/3 n^3 gemm flops, versus 10/3 n^3 for the
// general Hessenberg reduction the kernel previously rode on.
// Deterministic for any gemm thread count (inherits the blas contract;
// the scalar panel corrections are fixed-order loops).
struct SkewTridiagResult {
  Matrix q;                 // orthogonal; m = q * T * q^T
  std::vector<double> sub;  // subdiagonal of T: sub[i] = T(i+1, i)
};

SkewTridiagResult skewTridiagonalize(const Matrix& m) {
  const std::size_t n = m.rows();
  SkewTridiagResult out;
  out.sub.assign(n > 0 ? n - 1 : 0, 0.0);
  if (n <= 1) {
    out.q = Matrix::identity(n);
    return out;
  }
  if (n == 2) {
    out.q = Matrix::identity(n);
    out.sub[0] = m(1, 0);
    return out;
  }

  constexpr std::size_t kPanel = 48;
  Matrix vAll(n, n - 1);  // packed reflectors: column c has its leading 1
                          // at row c + 1 and exact zeros above
  std::vector<double> tauAll(n - 1, 0.0);
  std::vector<std::size_t> panelStarts;

  // `at` is the trailing block in local coordinates: local index 0 is
  // global index j0. It carries all updates from completed panels.
  Matrix at = m;
  std::size_t j0 = 0;
  while (j0 < n - 1) {
    panelStarts.push_back(j0);
    const std::size_t nt = n - j0;
    const std::size_t nb = std::min(kPanel, n - 1 - j0);
    // Panel vectors stored TRANSPOSED (row k = the k-th u / p vector in
    // local coordinates) so every dot/axpy below streams a contiguous
    // row; a gemm-with-one-column here would repack the whole trailing
    // block per column. All loops are fixed-order scalar code, so the
    // result is independent of the gemm thread count.
    Matrix uT(nb, nt), pT(nb, nt);
    std::vector<double> colBuf(nt), vbuf(nt), s1(nb), s2(nb);
    for (std::size_t jj = 0; jj < nb; ++jj) {
      const std::size_t len = nt - 1 - jj;
      // Effective column jj of (at + U P^T - P U^T), rows jj+1 .. nt-1.
      for (std::size_t i = jj + 1; i < nt; ++i) colBuf[i] = at(i, jj);
      for (std::size_t k = 0; k < jj; ++k) {
        const double pr = pT(k, jj), ur = uT(k, jj);
        if (pr == 0.0 && ur == 0.0) continue;
        const double* uk = uT.data() + k * nt;
        const double* pk = pT.data() + k * nt;
        for (std::size_t i = jj + 1; i < nt; ++i)
          colBuf[i] += uk[i] * pr - pk[i] * ur;
      }
      double beta = 0.0;
      const double tau =
          makeReflector(&colBuf[jj + 1], len, vbuf.data(), beta);
      out.sub[j0 + jj] = beta;
      tauAll[j0 + jj] = tau;
      double* uj = uT.data() + jj * nt;
      for (std::size_t i = 0; i < len; ++i) {
        uj[jj + 1 + i] = vbuf[i];
        vAll(j0 + jj + 1 + i, j0 + jj) = vbuf[i];
      }
      if (tau == 0.0) continue;
      // p = tau * (at u + U (P^T u) - P (U^T u)), restricted to rows > jj.
      for (std::size_t k = 0; k < jj; ++k) {
        const double* uk = uT.data() + k * nt;
        const double* pk = pT.data() + k * nt;
        double a1 = 0.0, a2 = 0.0;
        for (std::size_t i = jj + 1; i < nt; ++i) {
          a1 += pk[i] * uj[i];
          a2 += uk[i] * uj[i];
        }
        s1[k] = a1;
        s2[k] = a2;
      }
      // The dominant gemv of the panel (at u): each row dot goes through
      // dotQuad (fixed four-accumulator reduction order — deterministic,
      // per-machine AVX2 dispatch).
      double* pj = pT.data() + jj * nt;
      for (std::size_t i = jj + 1; i < nt; ++i)
        pj[i] = dotQuad(at.data() + i * nt + jj + 1, uj + jj + 1,
                        nt - jj - 1);
      for (std::size_t k = 0; k < jj; ++k) {
        const double a1 = s1[k], a2 = s2[k];
        if (a1 == 0.0 && a2 == 0.0) continue;
        const double* uk = uT.data() + k * nt;
        const double* pk = pT.data() + k * nt;
        for (std::size_t i = jj + 1; i < nt; ++i)
          pj[i] += uk[i] * a1 - pk[i] * a2;
      }
      for (std::size_t i = jj + 1; i < nt; ++i) pj[i] *= tau;
    }
    j0 += nb;
    const std::size_t rem = nt - nb;
    if (j0 >= n - 1 || rem == 0) break;
    // Absorb the panel into the next trailing block (two gemm calls).
    Matrix at22 = at.block(nb, nb, rem, rem);
    Matrix u22(rem, nb), p22(rem, nb);
    for (std::size_t k = 0; k < nb; ++k)
      for (std::size_t i = 0; i < rem; ++i) {
        u22(i, k) = uT(k, nb + i);
        p22(i, k) = pT(k, nb + i);
      }
    gemm(1.0, u22, false, p22, true, 1.0, at22);
    gemm(-1.0, p22, false, u22, true, 1.0, at22);
    at = std::move(at22);
  }

  // Q = H_0 ... H_{n-2}, accumulated backward panel-by-panel on the
  // growing trailing block (panel with first column j0 touches only rows
  // and columns >= j0 + 1; everything outside stays identity).
  Matrix qt;
  std::size_t qtBase = n;  // qt covers global rows/cols [qtBase, n)
  for (std::size_t p = panelStarts.size(); p-- > 0;) {
    const std::size_t pj0 = panelStarts[p];
    const std::size_t nb = std::min(kPanel, n - 1 - pj0);
    const std::size_t base = pj0 + 1, sz = n - base;
    Matrix grown = Matrix::identity(sz);
    if (qtBase < n) grown.setBlock(qtBase - base, qtBase - base, qt);
    qt = std::move(grown);
    qtBase = base;
    const Matrix v2 = vAll.block(base, pj0, sz, nb);
    const std::vector<double> tpan(tauAll.begin() + pj0,
                                   tauAll.begin() + pj0 + nb);
    applyBlockReflectorLeft(v2, buildCompactWyT(v2, tpan), false, qt);
  }
  out.q = Matrix::identity(n);
  if (qtBase < n) out.q.setBlock(qtBase, qtBase, qt);
  return out;
}

// Record the shared-policy rank decision for the assembled sigma list.
void decideRank(Compression& c, double rankTol, RankReport* rr) {
  c.resolvedTol = resolveRankTol(c.sigma, c.rows, c.cols, rankTol);
  c.rank = rankFromSingularValues(c.sigma, c.rows, c.cols, rankTol, rr);
}

// Trivial compression of a matrix with an empty dimension.
Compression compressEmpty(const Matrix& m, const CompressionOptions& o,
                          RankReport* rr) {
  Compression c;
  c.rows = m.rows();
  c.cols = m.cols();
  c.kernelUsed = CompressionKernel::Svd;
  decideRank(c, o.rankTol, rr);
  if (o.wantRange) c.range = Matrix(c.rows, 0);
  if (o.wantCorange) c.corange = Matrix(c.cols, 0);
  if (o.wantNullspace) c.nullspace = Matrix::identity(c.cols);
  if (o.wantLeftNullspace) c.leftNullspace = Matrix::identity(c.rows);
  return c;
}

Compression compressDiagonal(const Matrix& m, const CompressionOptions& o,
                             RankReport* rr) {
  const std::size_t n = m.rows();
  Compression c;
  c.rows = c.cols = n;
  c.kernelUsed = CompressionKernel::Diagonal;
  // Stable sort by descending |d| (ties keep index order: deterministic).
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::size_t a, std::size_t b) {
                     return std::abs(m(a, a)) > std::abs(m(b, b));
                   });
  c.sigma.resize(n);
  for (std::size_t j = 0; j < n; ++j) c.sigma[j] = std::abs(m(idx[j], idx[j]));
  decideRank(c, o.rankTol, rr);
  const std::size_t r = c.rank;
  // M = U S V^T with U column j = sign(d) * e_idx, V column j = e_idx:
  // the bases are signed unit columns and the U/V pairing is exact.
  if (o.wantRange) {
    c.range = Matrix(n, r);
    for (std::size_t j = 0; j < r; ++j)
      c.range(idx[j], j) = m(idx[j], idx[j]) < 0.0 ? -1.0 : 1.0;
  }
  if (o.wantCorange) {
    c.corange = Matrix(n, r);
    for (std::size_t j = 0; j < r; ++j) c.corange(idx[j], j) = 1.0;
  }
  if (o.wantNullspace) {
    c.nullspace = Matrix(n, n - r);
    for (std::size_t j = r; j < n; ++j) c.nullspace(idx[j], j - r) = 1.0;
  }
  if (o.wantLeftNullspace) {
    c.leftNullspace = Matrix(n, n - r);
    for (std::size_t j = r; j < n; ++j) c.leftNullspace(idx[j], j - r) = 1.0;
  }
  return c;
}

// Tall case of the QR+small-SVD kernel (rows >= cols).
Compression compressQrSvdTall(const Matrix& m, const CompressionOptions& o,
                              RankReport* rr) {
  const std::size_t rows = m.rows(), n = m.cols();
  QR qr(m);  // blocked, non-pivoted
  linalg::SVD rsvd(qr.r());  // n x n: sigma(R) == sigma(M) exactly
  Compression c;
  c.rows = rows;
  c.cols = n;
  c.kernelUsed = CompressionKernel::QrSvd;
  c.sigma = rsvd.singularValues();
  decideRank(c, o.rankTol, rr);
  const std::size_t k = c.rank;
  if (o.wantCorange) c.corange = rsvd.v().block(0, 0, n, k);
  if (o.wantNullspace) c.nullspace = rsvd.v().block(0, k, n, n - k);
  if (o.wantRange) {
    Matrix pu(rows, k);
    pu.setBlock(0, 0, rsvd.u().block(0, 0, n, k));
    c.range = qr.applyQ(pu);
  }
  if (o.wantLeftNullspace) {
    Matrix pl(rows, rows - k);
    pl.setBlock(0, 0, rsvd.u().block(0, k, n, n - k));
    for (std::size_t i = n; i < rows; ++i) pl(i, (n - k) + (i - n)) = 1.0;
    c.leftNullspace = qr.applyQ(pl);
  }
  return c;
}

Compression compressQrSvd(const Matrix& m, const CompressionOptions& o,
                          RankReport* rr) {
  if (m.rows() >= m.cols()) return compressQrSvdTall(m, o, rr);
  // Wide: compress the transpose with the subspace requests swapped.
  CompressionOptions ot = o;
  ot.wantRange = o.wantCorange;
  ot.wantCorange = o.wantRange;
  ot.wantNullspace = o.wantLeftNullspace;
  ot.wantLeftNullspace = o.wantNullspace;
  Compression ct = compressQrSvdTall(m.transposed(), ot, rr);
  Compression c;
  c.rows = m.rows();
  c.cols = m.cols();
  c.kernelUsed = CompressionKernel::QrSvd;
  c.sigma = std::move(ct.sigma);
  c.resolvedTol = ct.resolvedTol;
  c.rank = ct.rank;
  c.range = std::move(ct.corange);
  c.corange = std::move(ct.range);
  c.nullspace = std::move(ct.leftNullspace);
  c.leftNullspace = std::move(ct.nullspace);
  return c;
}

// Square, exactly skew-symmetric input. Hessenberg reduction of a skew
// matrix tridiagonalizes it: M = Q T Q^T with T skew tridiagonal,
// subdiagonal c_i (we take c_i from the computed H and treat T as exactly
// skew, which is a backward-stable O(eps ||M||) rewrite because M itself
// is exactly skew). Permuting to even-then-odd index blocks turns T into
// [[0, C], [-C^T, 0]] with C lower bidiagonal of size p x q,
// p = ceil(n/2), q = floor(n/2):
//   C(a, a) = -c_{2a},  C(a+1, a) = c_{2a+1}.
// A Givens-QR chain (rotating adjacent ROWS) makes C upper bidiagonal,
// and the SVD kernel's own bidiagonal sweep finishes: every sigma of M is
// a sigma of C twice (plus one structural zero when n is odd), and the
// singular vectors of C assemble — through the permutation and Q —
// exactly orthonormal range/kernel bases of M.
Compression compressSkewTridiagonal(const Matrix& m,
                                    const CompressionOptions& o,
                                    RankReport* rr) {
  const std::size_t n = m.rows();
  Compression c;
  c.rows = c.cols = n;
  c.kernelUsed = CompressionKernel::SkewTridiagonal;

  SkewTridiagResult st = skewTridiagonalize(m);
  const std::size_t p = (n + 1) / 2, q = n / 2;
  const std::vector<double>& sub = st.sub;

  // Lower-bidiagonal C: diag d, subdiagonal b (entry C(a+1, a)).
  std::vector<double> d(q), b(q, 0.0);
  for (std::size_t a = 0; a < q; ++a) d[a] = -sub[2 * a];
  for (std::size_t a = 0; a + 1 < p && 2 * a + 2 < n; ++a)
    b[a] = sub[2 * a + 1];

  // Givens QR of C: rotate rows (k, k+1) to zero C(k+1, k); the fill-in
  // lands on the superdiagonal, leaving R upper bidiagonal (q x q).
  struct Rot {
    double co = 1.0, si = 0.0;
  };
  std::vector<Rot> rots(q);
  std::vector<double> e(q, 0.0);
  for (std::size_t k = 0; k < q; ++k) {
    if (k + 1 >= p || b[k] == 0.0) continue;
    const double h = std::hypot(d[k], b[k]);
    const double co = d[k] / h, si = b[k] / h;
    rots[k] = {co, si};
    d[k] = h;
    if (k + 1 < q) {
      e[k] = si * d[k + 1];
      d[k + 1] = co * d[k + 1];
    }
  }

  // Bidiagonal SVD of R via the shared sweep: R = U S V^T.
  std::vector<double> sv = d;
  Matrix ut = Matrix::identity(q), vt = Matrix::identity(q);
  if (q > 0) detail::bidiagonalQrSweepTransposed(sv, e, ut, vt, true);

  // sigma(M): each sigma(C) twice, plus p - q structural zeros.
  c.sigma.resize(n);
  for (std::size_t i = 0; i < q; ++i) {
    c.sigma[2 * i] = sv[i];
    c.sigma[2 * i + 1] = sv[i];
  }
  for (std::size_t i = 2 * q; i < n; ++i) c.sigma[i] = 0.0;
  decideRank(c, o.rankTol, rr);
  const std::size_t r = c.rank;
  const std::size_t rh = r / 2;  // duplicates decide identically => r even

  const bool wantAnyKeep = o.wantRange || o.wantCorange;
  const bool wantAnyNull = o.wantNullspace || o.wantLeftNullspace;
  if (!wantAnyKeep && !wantAnyNull) return c;

  // U_C = G^T * blockdiag(U, I_{p-q}) (p x p), V_C = V (q x q).
  Matrix uc(p, p);
  for (std::size_t i = 0; i < q; ++i)
    for (std::size_t j = 0; j < q; ++j) uc(i, j) = ut(j, i);
  for (std::size_t j = q; j < p; ++j) uc(j, j) = 1.0;
  for (std::size_t kk = q; kk-- > 0;) {
    if (rots[kk].si == 0.0 && rots[kk].co == 1.0) continue;
    const double co = rots[kk].co, si = rots[kk].si;
    for (std::size_t j = 0; j < p; ++j) {
      const double x = uc(kk, j), y = uc(kk + 1, j);
      uc(kk, j) = co * x - si * y;
      uc(kk + 1, j) = si * x + co * y;
    }
  }

  // In the permuted coordinates the left/right singular vectors of
  // T_perm pair as: sigma_i -> left [u_i; 0] with right [0; v_i], and
  // left [0; v_i] with right [-u_i; 0]. Even block entries sit at the
  // original indices 2a, odd block entries at 2b + 1; multiplying by the
  // Hessenberg Q maps everything back to M's coordinates.
  if (wantAnyKeep) {
    Matrix pre(n, r);
    for (std::size_t i = 0; i < rh; ++i) {
      for (std::size_t a = 0; a < p; ++a) pre(2 * a, 2 * i) = uc(a, i);
      for (std::size_t bb = 0; bb < q; ++bb)
        pre(2 * bb + 1, 2 * i + 1) = vt(i, bb);
    }
    Matrix basis = st.q * pre;
    if (o.wantCorange) {
      Matrix cpre(n, r);
      for (std::size_t i = 0; i < rh; ++i) {
        for (std::size_t bb = 0; bb < q; ++bb)
          cpre(2 * bb + 1, 2 * i) = vt(i, bb);
        for (std::size_t a = 0; a < p; ++a)
          cpre(2 * a, 2 * i + 1) = -uc(a, i);
      }
      c.corange = st.q * cpre;
    }
    if (o.wantRange) c.range = std::move(basis);
  }
  if (wantAnyNull) {
    const std::size_t z = n - r;
    Matrix pre(n, z);
    std::size_t col = 0;
    for (std::size_t i = rh; i < q; ++i) {
      for (std::size_t a = 0; a < p; ++a) pre(2 * a, col) = uc(a, i);
      ++col;
      for (std::size_t bb = 0; bb < q; ++bb) pre(2 * bb + 1, col) = vt(i, bb);
      ++col;
    }
    for (std::size_t j = q; j < p; ++j) {
      for (std::size_t a = 0; a < p; ++a) pre(2 * a, col) = uc(a, j);
      ++col;
    }
    Matrix basis = st.q * pre;
    if (o.wantLeftNullspace) c.leftNullspace = basis;
    if (o.wantNullspace) c.nullspace = std::move(basis);
  }
  return c;
}

Compression compressSvd(const Matrix& m, const CompressionOptions& o,
                        RankReport* rr) {
  linalg::SVD svd(m);
  Compression c;
  c.rows = m.rows();
  c.cols = m.cols();
  c.kernelUsed = CompressionKernel::Svd;
  c.sigma = svd.singularValues();
  decideRank(c, o.rankTol, rr);
  if (o.wantRange) c.range = svd.range(o.rankTol);
  if (o.wantCorange) c.corange = svd.v().block(0, 0, m.cols(), c.rank);
  if (o.wantNullspace) c.nullspace = svd.nullspace(o.rankTol);
  if (o.wantLeftNullspace) c.leftNullspace = svd.leftNullspace(o.rankTol);
  return c;
}

}  // namespace

void StaircaseReport::merge(const StaircaseReport& other) {
  compressions += other.compressions;
  svdFallbacks += other.svdFallbacks;
  diagonalFastPaths += other.diagonalFastPaths;
  qrCompressions += other.qrCompressions;
  skewTridiagonalizations += other.skewTridiagonalizations;
  reusedCompressions += other.reusedCompressions;
  chainLength += other.chainLength;
  truncatedSteps += other.truncatedSteps;
}

Matrix projectOutTwice(const Matrix& basis, const Matrix& m) {
  if (basis.cols() == 0) return m;
  Matrix p = m - basis * atb(basis, m);
  p -= basis * atb(basis, p);
  return p;
}

bool isExactlyDiagonal(const Matrix& m) {
  if (!m.isSquare()) return false;
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j)
      if (i != j && m(i, j) != 0.0) return false;
  return true;
}

Matrix Compression::applyPinv(const Matrix& b) const {
  if (range.cols() != rank || corange.cols() != rank)
    throw std::logic_error(
        "Compression::applyPinv: range and corange bases required");
  Matrix t = atb(range, b);
  for (std::size_t i = 0; i < rank; ++i) {
    const double inv = 1.0 / sigma[i];
    for (std::size_t j = 0; j < t.cols(); ++j) t(i, j) *= inv;
  }
  return corange * t;
}

Matrix Compression::applyPinvTranspose(const Matrix& b) const {
  if (range.cols() != rank || corange.cols() != rank)
    throw std::logic_error(
        "Compression::applyPinvTranspose: range and corange bases required");
  Matrix t = atb(corange, b);
  for (std::size_t i = 0; i < rank; ++i) {
    const double inv = 1.0 / sigma[i];
    for (std::size_t j = 0; j < t.cols(); ++j) t(i, j) *= inv;
  }
  return range * t;
}

Compression compress(const Matrix& m, const CompressionOptions& opts,
                     RankReport* rankReport, StaircaseReport* stairReport) {
  CompressionKernel k = opts.kernel;
  const std::size_t rows = m.rows(), cols = m.cols();
  obs::counterAdd(obs::Counter::StaircaseCompressions);
  obs::ObsSpan span("staircase-compress", "kernel",
                    std::min(rows, cols) >= 64);
  span.arg("minDim",
           static_cast<std::int64_t>(std::min(rows, cols)));
  Compression c;
  if (rows == 0 || cols == 0) {
    c = compressEmpty(m, opts, rankReport);
  } else {
    if (k == CompressionKernel::Auto) {
      if (isExactlyDiagonal(m))
        k = CompressionKernel::Diagonal;
      else if (rows == cols && rows >= 16 && m.isSkewSymmetric(0.0))
        k = CompressionKernel::SkewTridiagonal;
      else if (rows >= 2 * cols || cols >= 2 * rows)
        k = CompressionKernel::QrSvd;
      else
        k = CompressionKernel::Svd;
    } else if (k == CompressionKernel::Diagonal) {
      if (!isExactlyDiagonal(m))
        throw std::invalid_argument("compress: matrix not exactly diagonal");
    } else if (k == CompressionKernel::SkewTridiagonal) {
      if (rows != cols || !m.isSkewSymmetric(0.0))
        throw std::invalid_argument("compress: matrix not exactly skew");
    }
    switch (k) {
      case CompressionKernel::Diagonal:
        c = compressDiagonal(m, opts, rankReport);
        break;
      case CompressionKernel::QrSvd:
        c = compressQrSvd(m, opts, rankReport);
        break;
      case CompressionKernel::SkewTridiagonal:
        c = compressSkewTridiagonal(m, opts, rankReport);
        break;
      default:
        c = compressSvd(m, opts, rankReport);
        break;
    }
  }
  if (stairReport) {
    ++stairReport->compressions;
    switch (c.kernelUsed) {
      case CompressionKernel::Diagonal:
        ++stairReport->diagonalFastPaths;
        break;
      case CompressionKernel::QrSvd:
        ++stairReport->qrCompressions;
        break;
      case CompressionKernel::SkewTridiagonal:
        ++stairReport->skewTridiagonalizations;
        break;
      default:
        ++stairReport->svdFallbacks;
        break;
    }
  }
  return c;
}

}  // namespace shhpass::linalg
