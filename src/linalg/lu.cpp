#include "linalg/lu.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace shhpass::linalg {

LU::LU(const Matrix& a) : lu_(a), p_(a.rows()) {
  if (!a.isSquare()) throw std::invalid_argument("LU: matrix must be square");
  const std::size_t n = a.rows();
  for (std::size_t i = 0; i < n; ++i) p_[i] = i;
  minPivot_ = std::numeric_limits<double>::infinity();
  maxPivot_ = 0.0;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: choose the largest entry in column k at/below row k.
    std::size_t piv = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(lu_(i, k));
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    if (piv != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(piv, j));
      std::swap(p_[k], p_[piv]);
      permSign_ = -permSign_;
    }
    const double pivot = lu_(k, k);
    minPivot_ = std::min(minPivot_, std::abs(pivot));
    maxPivot_ = std::max(maxPivot_, std::abs(pivot));
    if (pivot == 0.0) continue;  // singular; leave zero column
    for (std::size_t i = k + 1; i < n; ++i) {
      lu_(i, k) /= pivot;
      const double lik = lu_(i, k);
      if (lik == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) lu_(i, j) -= lik * lu_(k, j);
    }
  }
  if (n == 0) minPivot_ = 0.0;
}

bool solveSmallDense(double* a, double* b, std::size_t n, double tol) {
  double minPivot = std::numeric_limits<double>::infinity();
  double maxPivot = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t piv = k;
    for (std::size_t i = k + 1; i < n; ++i)
      if (std::abs(a[i * n + k]) > std::abs(a[piv * n + k])) piv = i;
    if (piv != k) {
      for (std::size_t j = k; j < n; ++j)
        std::swap(a[k * n + j], a[piv * n + j]);
      std::swap(b[k], b[piv]);
    }
    const double akk = a[k * n + k];
    minPivot = std::min(minPivot, std::abs(akk));
    maxPivot = std::max(maxPivot, std::abs(akk));
    if (akk == 0.0) continue;  // zero pivot: flagged singular below
    for (std::size_t i = k + 1; i < n; ++i) {
      const double l = a[i * n + k] / akk;
      if (l == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) a[i * n + j] -= l * a[k * n + j];
      b[i] -= l * b[k];
    }
  }
  if (minPivot <= tol * (maxPivot > 0.0 ? maxPivot : 1.0)) return false;
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t j = i + 1; j < n; ++j) acc -= a[i * n + j] * b[j];
    b[i] = acc / a[i * n + i];
  }
  return true;
}

bool LU::isSingular(double tol) const {
  return minPivot_ <= tol * (maxPivot_ > 0 ? maxPivot_ : 1.0);
}

Matrix LU::solve(const Matrix& b) const {
  const std::size_t n = lu_.rows();
  if (b.rows() != n) throw std::invalid_argument("LU::solve: shape mismatch");
  if (isSingular()) throw std::runtime_error("LU::solve: singular matrix");
  Matrix x(n, b.cols());
  // Apply permutation.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) x(i, j) = b(p_[i], j);
  // Forward substitution with unit lower triangle.
  for (std::size_t i = 1; i < n; ++i)
    for (std::size_t k = 0; k < i; ++k) {
      const double l = lu_(i, k);
      if (l == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) x(i, j) -= l * x(k, j);
    }
  // Back substitution with U.
  for (std::size_t ii = n; ii-- > 0;) {
    const double u = lu_(ii, ii);
    for (std::size_t j = 0; j < b.cols(); ++j) x(ii, j) /= u;
    for (std::size_t k = 0; k < ii; ++k) {
      const double v = lu_(k, ii);
      if (v == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) x(k, j) -= v * x(ii, j);
    }
  }
  return x;
}

Matrix LU::solveTransposed(const Matrix& b) const {
  const std::size_t n = lu_.rows();
  if (b.rows() != n)
    throw std::invalid_argument("LU::solveTransposed: shape mismatch");
  if (isSingular())
    throw std::runtime_error("LU::solveTransposed: singular matrix");
  // A^T = (P^T L U)^T = U^T L^T P. Solve U^T y = b, L^T z = y, x = P^T z.
  Matrix y = b;
  // Forward substitution with U^T (lower triangular with diag of U).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < i; ++k) {
      const double u = lu_(k, i);
      if (u == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) y(i, j) -= u * y(k, j);
    }
    const double d = lu_(i, i);
    for (std::size_t j = 0; j < b.cols(); ++j) y(i, j) /= d;
  }
  // Back substitution with L^T (unit upper triangular).
  for (std::size_t ii = n; ii-- > 0;)
    for (std::size_t k = ii + 1; k < n; ++k) {
      const double l = lu_(k, ii);
      if (l == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) y(ii, j) -= l * y(k, j);
    }
  // Undo permutation: x(p_[i]) = y(i).
  Matrix x(n, b.cols());
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) x(p_[i], j) = y(i, j);
  return x;
}

double LU::determinant() const {
  double d = permSign_;
  for (std::size_t i = 0; i < lu_.rows(); ++i) d *= lu_(i, i);
  return d;
}

Matrix LU::inverse() const { return solve(Matrix::identity(lu_.rows())); }

double LU::rcond(double anorm1) const {
  if (isSingular() || anorm1 == 0.0) return 0.0;
  // One-step Hager estimate of ||A^{-1}||_1 using the all-ones probe.
  const std::size_t n = lu_.rows();
  Matrix e(n, 1, 1.0 / static_cast<double>(n));
  Matrix x = solve(e);
  double xi = 0.0;
  for (std::size_t i = 0; i < n; ++i) xi = std::max(xi, std::abs(x(i, 0)));
  Matrix s(n, 1);
  for (std::size_t i = 0; i < n; ++i) s(i, 0) = x(i, 0) >= 0 ? 1.0 : -1.0;
  Matrix z = solveTransposed(s);
  double zn = 0.0;
  for (std::size_t i = 0; i < n; ++i) zn = std::max(zn, std::abs(z(i, 0)));
  const double ainv = std::max(zn, xi * static_cast<double>(n));
  return 1.0 / (anorm1 * ainv);
}

Matrix solve(const Matrix& a, const Matrix& b) { return LU(a).solve(b); }

Matrix inverse(const Matrix& a) { return LU(a).inverse(); }

}  // namespace shhpass::linalg
