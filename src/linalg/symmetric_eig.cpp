#include "linalg/symmetric_eig.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace shhpass::linalg {
namespace {

double hypot2(double a, double b) { return std::hypot(a, b); }

// Householder reduction of a symmetric matrix to tridiagonal form
// (EISPACK tred2 lineage). On exit `a` holds the accumulated orthogonal
// transform when wantVectors, `d` the diagonal, `e` the subdiagonal.
void tridiagonalize(Matrix& a, std::vector<double>& d, std::vector<double>& e,
                    bool wantVectors) {
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) d[j] = a(n - 1, j);

  for (std::size_t i = n - 1; i > 0; --i) {
    double scale = 0.0, h = 0.0;
    for (std::size_t k = 0; k < i; ++k) scale += std::abs(d[k]);
    if (scale == 0.0) {
      e[i] = d[i - 1];
      for (std::size_t j = 0; j < i; ++j) {
        d[j] = a(i - 1, j);
        a(i, j) = 0.0;
        a(j, i) = 0.0;
      }
    } else {
      for (std::size_t k = 0; k < i; ++k) {
        d[k] /= scale;
        h += d[k] * d[k];
      }
      double f = d[i - 1];
      double g = std::sqrt(h);
      if (f > 0) g = -g;
      e[i] = scale * g;
      h -= f * g;
      d[i - 1] = f - g;
      for (std::size_t j = 0; j < i; ++j) e[j] = 0.0;

      for (std::size_t j = 0; j < i; ++j) {
        f = d[j];
        a(j, i) = f;
        g = e[j] + a(j, j) * f;
        for (std::size_t k = j + 1; k < i; ++k) {
          g += a(k, j) * d[k];
          e[k] += a(k, j) * f;
        }
        e[j] = g;
      }
      f = 0.0;
      for (std::size_t j = 0; j < i; ++j) {
        e[j] /= h;
        f += e[j] * d[j];
      }
      const double hh = f / (h + h);
      for (std::size_t j = 0; j < i; ++j) e[j] -= hh * d[j];
      for (std::size_t j = 0; j < i; ++j) {
        f = d[j];
        g = e[j];
        for (std::size_t k = j; k < i; ++k)
          a(k, j) -= (f * e[k] + g * d[k]);
        d[j] = a(i - 1, j);
        a(i, j) = 0.0;
      }
    }
    d[i] = h;
  }

  // Accumulate transformations.
  for (std::size_t i = 0; i < n - 1; ++i) {
    a(n - 1, i) = a(i, i);
    a(i, i) = 1.0;
    const double h = d[i + 1];
    if (wantVectors && h != 0.0) {
      for (std::size_t k = 0; k <= i; ++k) d[k] = a(k, i + 1) / h;
      for (std::size_t j = 0; j <= i; ++j) {
        double g = 0.0;
        for (std::size_t k = 0; k <= i; ++k) g += a(k, i + 1) * a(k, j);
        for (std::size_t k = 0; k <= i; ++k) a(k, j) -= g * d[k];
      }
    }
    for (std::size_t k = 0; k <= i; ++k) a(k, i + 1) = 0.0;
  }
  for (std::size_t j = 0; j < n; ++j) {
    d[j] = a(n - 1, j);
    a(n - 1, j) = 0.0;
  }
  a(n - 1, n - 1) = 1.0;
  e[0] = 0.0;
}

// Implicit-shift QL iteration on the tridiagonal (d, e); accumulates
// rotations into `a` columns when wantVectors (EISPACK tql2 lineage).
void tql2(Matrix& a, std::vector<double>& d, std::vector<double>& e,
          bool wantVectors) {
  const std::size_t n = d.size();
  for (std::size_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  double f = 0.0, tst1 = 0.0;
  const double eps = std::numeric_limits<double>::epsilon();
  for (std::size_t l = 0; l < n; ++l) {
    tst1 = std::max(tst1, std::abs(d[l]) + std::abs(e[l]));
    std::size_t m = l;
    while (m < n) {
      if (std::abs(e[m]) <= eps * tst1) break;
      ++m;
    }
    if (m > l) {
      int iter = 0;
      do {
        if (++iter > 50)
          throw std::runtime_error("SymmetricEig: QL failed to converge");
        double g = d[l];
        double p = (d[l + 1] - g) / (2.0 * e[l]);
        double r = hypot2(p, 1.0);
        if (p < 0) r = -r;
        d[l] = e[l] / (p + r);
        d[l + 1] = e[l] * (p + r);
        const double dl1 = d[l + 1];
        double h = g - d[l];
        for (std::size_t i = l + 2; i < n; ++i) d[i] -= h;
        f += h;

        p = d[m];
        double c = 1.0, c2 = c, c3 = c;
        const double el1 = e[l + 1];
        double s = 0.0, s2 = 0.0;
        for (std::size_t ii = m; ii-- > l;) {
          const std::size_t i = ii;
          c3 = c2;
          c2 = c;
          s2 = s;
          g = c * e[i];
          h = c * p;
          r = hypot2(p, e[i]);
          e[i + 1] = s * r;
          s = e[i] / r;
          c = p / r;
          p = c * d[i] - s * g;
          d[i + 1] = h + s * (c * g + s * d[i]);
          if (wantVectors) {
            for (std::size_t k = 0; k < n; ++k) {
              h = a(k, i + 1);
              a(k, i + 1) = s * a(k, i) + c * h;
              a(k, i) = c * a(k, i) - s * h;
            }
          }
        }
        p = -s * s2 * c3 * el1 * e[l] / dl1;
        e[l] = s * p;
        d[l] = c * p;
      } while (std::abs(e[l]) > eps * tst1);
    }
    d[l] += f;
    e[l] = 0.0;
  }
}

}  // namespace

SymmetricEig::SymmetricEig(const Matrix& a, bool wantVectors) {
  if (!a.isSquare()) throw std::invalid_argument("SymmetricEig: not square");
  const std::size_t n = a.rows();
  w_.assign(n, 0.0);
  if (n == 0) return;
  Matrix work = a;
  // Enforce exact symmetry so round-off in the caller cannot leak in.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = 0.5 * (work(i, j) + work(j, i));
      work(i, j) = v;
      work(j, i) = v;
    }
  if (n == 1) {
    w_[0] = work(0, 0);
    v_ = Matrix::identity(1);
    return;
  }
  std::vector<double> e(n, 0.0);
  tridiagonalize(work, w_, e, wantVectors);
  tql2(work, w_, e, wantVectors);

  // Sort ascending, permuting eigenvector columns along.
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t i, std::size_t j) { return w_[i] < w_[j]; });
  std::vector<double> ws(n);
  Matrix vs;
  if (wantVectors) vs = Matrix(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    ws[k] = w_[idx[k]];
    if (wantVectors)
      for (std::size_t i = 0; i < n; ++i) vs(i, k) = work(i, idx[k]);
  }
  w_ = std::move(ws);
  if (wantVectors) v_ = std::move(vs);
}

}  // namespace shhpass::linalg
