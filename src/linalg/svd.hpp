// Singular value decomposition A = U diag(s) V^T, the rank oracle for
// every deflation decision in the SHH passivity pipeline (kernel bases,
// range bases, subspace subtraction).
//
// Two kernels share the public entry point:
//
//   * svdUnblocked — the historical Golub-Kahan-Reinsch implementation
//     (JAMA lineage): per-reflector bidiagonalization, rank-1 factor
//     generation, implicit-shift QR on the bidiagonal core. Kept as the
//     reference oracle and used below the crossover, where it is both
//     faster and bit-identical to the pre-blocking implementation
//     (seeded downstream tests rely on that).
//   * a blocked dgebrd/dlabrd-style path (svd.cpp): panels of kSvdPanel
//     columns/rows are bidiagonalized with lazily-applied updates (the
//     dlabrd X/Y recurrences), the trailing matrix is updated with two
//     large gemm calls per panel, and U/V are accumulated panel-by-panel
//     through the compact-WY kernels in householder.hpp — all O(n^3)
//     work outside the skinny panel products is BLAS-3. The implicit-QR
//     sweep then runs on transposed (row-contiguous) factor layouts so
//     the Givens updates stream through cache instead of striding.
//
// SVD() dispatches on kSvdCrossover (min(m, n)); below it the result is
// bit-identical to svdUnblocked. Above it the two kernels produce equally
// valid decompositions that agree only to backward-stable roundoff
// (different summation order) — equivalence, orthogonality, and
// reconstruction bounds are enforced by tests/test_svd_random.cpp.
//
// Threading: the blocked path inherits gemm's contract (blas.hpp) —
// enable setGemmThreads() to parallelize the trailing updates and the
// factor accumulation; results are bit-identical for every thread count.
//
// ## The shared rank policy
//
// Every consumer that turns singular values into a rank decision
// (impulse deflation, nondynamic removal, proper-part normalization,
// SVD coordinates, the LMI reduction) goes through ONE policy:
// rankFromSingularValues counts sigma > tol, where a negative tol
// resolves to the LAPACK-style default max(m, n) * eps * sigma_max.
// Decisions can be recorded into a RankReport (decision count plus the
// worst kept/dropped margins relative to the cutoff), which the analyzer
// threads into AnalysisReport JSON next to the reorder health record.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace shhpass::linalg {

/// Panel width of the blocked bidiagonalization (columns+rows reduced per
/// dlabrd panel; also the K extent of the trailing-update gemms).
inline constexpr std::size_t kSvdPanel = 32;
/// Smallest min(m, n) for which SVD() takes the blocked path. Below it
/// the unblocked kernel is faster AND bit-identical to the pre-blocking
/// implementation (consistent with kHessenbergCrossover).
inline constexpr std::size_t kSvdCrossover = 128;

/// Kernel selector for SVD: Auto dispatches on kSvdCrossover.
enum class SvdKernel { Auto, Unblocked, Blocked };

/// Health record of the rank decisions taken under the shared policy.
/// Margins are relative to the resolved cutoff: a kept margin near 1
/// means the smallest retained singular value barely cleared the
/// tolerance (the decision is numerically sharp); a dropped margin near
/// 1 means a discarded one barely missed it. Mirrors ReorderReport.
struct RankReport {
  std::size_t decisions = 0;     ///< Rank decisions recorded.
  /// min over decisions of sigma_r / tol (smallest kept vs cutoff);
  /// infinity until a decision keeps at least one singular value.
  double minKeptMargin;
  /// max over decisions of sigma_{r+1} / tol (largest dropped vs
  /// cutoff); 0 until a decision drops at least one singular value.
  double maxDroppedMargin = 0.0;

  RankReport();
  /// Accumulate another report (sum counts, widen margins).
  void merge(const RankReport& other);
};

/// Resolve a rank tolerance: returns `tol` unchanged when >= 0, else the
/// default policy max(m, n) * eps * max(sigma_max, 1e-300). `s` must be
/// sorted descending (sigma_max = s.front()).
double resolveRankTol(const std::vector<double>& s, std::size_t m,
                      std::size_t n, double tol);

/// THE shared rank policy: number of singular values strictly above the
/// resolved tolerance. `s` must be sorted descending (as produced by
/// SVD). When `report` is non-null the decision is recorded into it.
std::size_t rankFromSingularValues(const std::vector<double>& s,
                                   std::size_t m, std::size_t n,
                                   double tol = -1.0,
                                   RankReport* report = nullptr);

/// SVD of an arbitrary m x n real matrix.
///
/// Singular values are sorted descending. `u()` is m x min(m,n) (thin) and
/// `v()` is n x n when m >= n; for m < n the decomposition is computed on the
/// transpose and the factors swapped, so `u()` is m x m and `v()` is n x
/// min(m,n). Basis helpers (`range`, `nullspace`, `leftNullspace`) paper over
/// the difference and always return orthonormal bases of the right dimension.
class SVD {
 public:
  /// Decompose `a`. The default Auto kernel dispatches between the
  /// blocked and unblocked implementation on kSvdCrossover; see the
  /// header comment for the exact contract.
  explicit SVD(const Matrix& a, SvdKernel kernel = SvdKernel::Auto);

  const std::vector<double>& singularValues() const { return s_; }
  const Matrix& u() const { return u_; }
  const Matrix& v() const { return v_; }

  std::size_t rows() const { return m_; }
  std::size_t cols() const { return n_; }

  /// Default rank tolerance: max(m,n) * eps * sigma_max.
  double defaultTol() const;

  /// Numerical rank under the shared policy (rankFromSingularValues):
  /// number of singular values > tol (tol < 0 uses the default). When
  /// `report` is non-null the decision is recorded into it.
  std::size_t rank(double tol = -1.0, RankReport* report = nullptr) const;

  /// Orthonormal basis of the column space, m x rank.
  Matrix range(double tol = -1.0) const;

  /// Orthonormal basis of the (right) nullspace, n x (n - rank).
  Matrix nullspace(double tol = -1.0) const;

  /// Orthonormal basis of the left nullspace {y : y^T A = 0}, m x (m - rank).
  Matrix leftNullspace(double tol = -1.0) const;

  /// Moore-Penrose pseudoinverse with rank cutoff tol (default tolerance).
  Matrix pseudoInverse(double tol = -1.0) const;

  /// Condition number sigma_max / sigma_min (inf if rank-deficient).
  double cond() const;

 private:
  std::size_t m_ = 0, n_ = 0;
  std::vector<double> s_;
  Matrix u_, v_;
  bool transposed_ = false;
};

/// The historical unblocked Golub-Kahan-Reinsch kernel. Exposed for the
/// blocked-vs-reference equivalence tests and kernel benchmarks;
/// production code should construct SVD(), which dispatches per shape.
inline SVD svdUnblocked(const Matrix& a) {
  return SVD(a, SvdKernel::Unblocked);
}

/// The blocked kernel without the size dispatch (identical public
/// contract). Exposed for benchmarks and equivalence tests; production
/// code should construct SVD(). Requires min(m, n) >= 3 to block; below
/// that it falls back to the unblocked kernel.
inline SVD svdBlocked(const Matrix& a) { return SVD(a, SvdKernel::Blocked); }

/// Singular values only (sorted descending), without forming U or V.
/// Above the crossover this skips the compact-WY factor accumulation and
/// runs the rotation sweep without factor updates — roughly 4-5x cheaper
/// than a full SVD() — while producing BIT-IDENTICAL values (the shifts
/// and Givens coefficients never read the factors); below it the full
/// kernel runs and the factors are discarded. Use for condition-number /
/// rank queries on large matrices (e.g. the proper-part normalizer
/// check), where the bases are never consumed.
std::vector<double> singularValues(const Matrix& a);

/// Convenience: numerical rank of A at the SVD default tolerance.
std::size_t rank(const Matrix& a, double tol = -1.0);

/// Convenience: orthonormal kernel basis of A (n x nullity).
Matrix kernel(const Matrix& a, double tol = -1.0);

/// Convenience: Moore-Penrose pseudoinverse.
Matrix pseudoInverse(const Matrix& a, double tol = -1.0);

namespace detail {

/// Implicit-shift QR diagonalization of an upper-bidiagonal core:
/// `sv` holds the diagonal (length n), `e` the superdiagonal (length n,
/// with e[n-1] == 0 as the sentinel the sweep expects). Factors are
/// accumulated on TRANSPOSED layouts — row j of `ut` is column j of U,
/// row j of `vt` is column j of V — so the Givens stream touches
/// contiguous rows. On return `sv` is sorted descending with
/// nonnegative entries. This is the rotation engine of the blocked SVD
/// kernel, exposed for linalg/staircase.cpp, whose skew-tridiagonal
/// compression reduces E1 to a half-size bidiagonal core and reuses the
/// exact same sweep (one implementation, one set of deflation criteria).
void bidiagonalQrSweepTransposed(std::vector<double>& sv,
                                 std::vector<double>& e, Matrix& ut,
                                 Matrix& vt, bool withVectors = true);

}  // namespace detail

}  // namespace shhpass::linalg
