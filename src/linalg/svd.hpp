// Singular value decomposition A = U diag(s) V^T via Golub-Kahan-Reinsch
// bidiagonalization + implicit-shift QR. This is the rank oracle for every
// deflation decision in the SHH passivity pipeline (kernel bases, range
// bases, subspace subtraction).
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace shhpass::linalg {

/// SVD of an arbitrary m x n real matrix.
///
/// Singular values are sorted descending. `u()` is m x min(m,n) (thin) and
/// `v()` is n x n when m >= n; for m < n the decomposition is computed on the
/// transpose and the factors swapped, so `u()` is m x m and `v()` is n x
/// min(m,n). Basis helpers (`range`, `nullspace`, `leftNullspace`) paper over
/// the difference and always return orthonormal bases of the right dimension.
class SVD {
 public:
  explicit SVD(const Matrix& a);

  const std::vector<double>& singularValues() const { return s_; }
  const Matrix& u() const { return u_; }
  const Matrix& v() const { return v_; }

  std::size_t rows() const { return m_; }
  std::size_t cols() const { return n_; }

  /// Default rank tolerance: max(m,n) * eps * sigma_max.
  double defaultTol() const;

  /// Numerical rank: number of singular values > tol (tol < 0 uses default).
  std::size_t rank(double tol = -1.0) const;

  /// Orthonormal basis of the column space, m x rank.
  Matrix range(double tol = -1.0) const;

  /// Orthonormal basis of the (right) nullspace, n x (n - rank).
  Matrix nullspace(double tol = -1.0) const;

  /// Orthonormal basis of the left nullspace {y : y^T A = 0}, m x (m - rank).
  Matrix leftNullspace(double tol = -1.0) const;

  /// Moore-Penrose pseudoinverse with rank cutoff tol (default tolerance).
  Matrix pseudoInverse(double tol = -1.0) const;

  /// Condition number sigma_max / sigma_min (inf if rank-deficient).
  double cond() const;

 private:
  std::size_t m_ = 0, n_ = 0;
  std::vector<double> s_;
  Matrix u_, v_;
  bool transposed_ = false;
};

/// Convenience: numerical rank of A at the SVD default tolerance.
std::size_t rank(const Matrix& a, double tol = -1.0);

/// Convenience: orthonormal kernel basis of A (n x nullity).
Matrix kernel(const Matrix& a, double tol = -1.0);

/// Convenience: Moore-Penrose pseudoinverse.
Matrix pseudoInverse(const Matrix& a, double tol = -1.0);

}  // namespace shhpass::linalg
