#include "linalg/aed.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/blas.hpp"
#include "linalg/householder.hpp"
#include "linalg/schur.hpp"
#include "linalg/schur_reorder.hpp"

namespace shhpass::linalg {
namespace {

/// |lambda| of the diagonal block at (j, j) of a quasi-triangular matrix
/// (1x1: the entry; standardized 2x2: sqrt|det| = the pair's modulus).
double blockEigMagnitude(const Matrix& t, std::size_t j, std::size_t b) {
  if (b == 1) return std::abs(t(j, j));
  const double det =
      t(j, j) * t(j + 1, j + 1) - t(j, j + 1) * t(j + 1, j);
  return std::sqrt(std::abs(det));
}

}  // namespace

AedResult aggressiveEarlyDeflation(Matrix& h, Matrix& z, std::size_t ilo,
                                   std::size_t ihi, std::size_t nw,
                                   SchurReport& report) {
  AedResult out;
  const std::size_t n = h.rows();
  const std::size_t kwtop = ihi - nw + 1;
  const double eps = std::numeric_limits<double>::epsilon();
  const double smlnum = std::numeric_limits<double>::min() *
                        (static_cast<double>(nw) / eps);
  const double spike = (kwtop > ilo) ? h(kwtop, kwtop - 1) : 0.0;

  ++report.aedWindows;

  // 1. Schur-factor the window on a copy, with the same cleanup contract
  // realSchur uses (exact quasi-triangular structure, standardized 2x2
  // blocks) so the block scan and the swaps below are well defined.
  Matrix t = h.block(kwtop, kwtop, nw, nw);
  Matrix v = Matrix::identity(nw);
  francisSchurWindow(t, v, 0, nw - 1, &report);
  for (std::size_t i = 0; i < nw; ++i)
    for (std::size_t j = 0; j + 1 < i; ++j) t(i, j) = 0.0;
  for (std::size_t i = 0; i + 1 < nw; ++i) {
    const double sub = std::abs(t(i + 1, i));
    if (sub != 0.0 &&
        sub <= eps * (std::abs(t(i, i)) + std::abs(t(i + 1, i + 1))))
      t(i + 1, i) = 0.0;
  }
  report.structureRepairs += repairQuasiTriangularStructure(t);
  standardizeQuasiTriangular(t, v);

  // 2. Deflation scan. The window similarity turns the single
  // subdiagonal entry s = H(kwtop, kwtop-1) into the "spike" column
  // s * V(0, :)^T; an eigenvalue block at the bottom of the window whose
  // spike feet are negligible against its own magnitude is converged and
  // is locked into the tail [end, nw). An undeflatable block is bubbled
  // to the top region [0, keep) with the residual-checked swaps, so the
  // next candidate surfaces at the bottom. A rejected swap ends the scan
  // conservatively (fewer deflations, never a corrupted spectrum).
  std::size_t keep = 0;
  std::size_t end = nw;
  while (keep < end) {
    std::size_t b = 1;
    if (end - keep >= 2 && t(end - 1, end - 2) != 0.0) b = 2;
    const std::size_t j = end - b;
    double foot = 0.0;
    for (std::size_t c = j; c < end; ++c)
      foot = std::max(foot, std::abs(spike * v(0, c)));
    const double thresh = std::max(smlnum, eps * blockEigMagnitude(t, j, b));
    if (foot <= thresh) {
      end -= b;
      continue;
    }
    bool moved = true;
    std::size_t pos = j;
    while (pos > keep) {
      std::size_t pb = 1;
      if (pos >= 2 && t(pos - 1, pos - 2) != 0.0) pb = 2;
      if (!swapAdjacentBlocks(t, v, pos - pb, pb, b, nullptr)) {
        moved = false;
        break;
      }
      pos -= pb;
    }
    if (!moved) {
      keep = end;
      break;
    }
    keep += b;
  }

  const std::size_t js = end;  // undeflated leading part
  out.deflated = nw - js;
  report.aedDeflations += out.deflated;

  // 3. Harvest the undeflated eigenvalues as the next sweep's shifts.
  if (js > 0) {
    const Matrix lead = t.block(0, 0, js, js);
    out.shifts = quasiTriangularEigenvalues(lead);
  }

  // Nothing deflated and a live spike: discard the window transform —
  // the shifts are basis-independent and skipping the commit saves the
  // off-window gemms.
  if (out.deflated == 0 && spike != 0.0) return out;

  // 4. Reflect the spike back to a single subdiagonal entry and restore
  // the Hessenberg structure of the undeflated part (unblocked — the
  // window is small).
  double beta = 0.0;
  if (spike != 0.0 && js > 0) {
    if (js == 1) {
      beta = spike * v(0, 0);
    } else {
      std::vector<double> w(js), refl(js);
      for (std::size_t i = 0; i < js; ++i) w[i] = spike * v(0, i);
      const double tau = makeReflector(w.data(), js, refl.data(), beta);
      if (tau != 0.0) {
        // T := P T (rows 0..js-1, all window columns).
        for (std::size_t jj = 0; jj < nw; ++jj) {
          double s = 0.0;
          for (std::size_t i = 0; i < js; ++i) s += refl[i] * t(i, jj);
          s *= tau;
          for (std::size_t i = 0; i < js; ++i) t(i, jj) -= s * refl[i];
        }
        // T := T P (columns 0..js-1; rows below js hold exact zeros).
        for (std::size_t i = 0; i < js; ++i) {
          double s = 0.0;
          for (std::size_t jj = 0; jj < js; ++jj) s += t(i, jj) * refl[jj];
          s *= tau;
          for (std::size_t jj = 0; jj < js; ++jj) t(i, jj) -= s * refl[jj];
        }
        // V := V P (all window rows).
        for (std::size_t i = 0; i < nw; ++i) {
          double s = 0.0;
          for (std::size_t jj = 0; jj < js; ++jj) s += v(i, jj) * refl[jj];
          s *= tau;
          for (std::size_t jj = 0; jj < js; ++jj) v(i, jj) -= s * refl[jj];
        }
      }
      // Hessenberg-reduce the leading js x js part, applying each
      // reflector across the window and accumulating it into V.
      for (std::size_t col = 0; col + 2 < js; ++col) {
        const std::size_t len = js - col - 1;
        std::vector<double> x(len), hv(len);
        for (std::size_t i = 0; i < len; ++i) x[i] = t(col + 1 + i, col);
        double b1;
        const double tau2 = makeReflector(x.data(), len, hv.data(), b1);
        t(col + 1, col) = b1;
        for (std::size_t i = col + 2; i < js; ++i) t(i, col) = 0.0;
        if (tau2 == 0.0) continue;
        // Left: rows col+1..js-1, columns col+1..nw-1.
        for (std::size_t jj = col + 1; jj < nw; ++jj) {
          double s = 0.0;
          for (std::size_t i = 0; i < len; ++i)
            s += hv[i] * t(col + 1 + i, jj);
          s *= tau2;
          for (std::size_t i = 0; i < len; ++i) t(col + 1 + i, jj) -= s * hv[i];
        }
        // Right: columns col+1..js-1, rows 0..js-1.
        for (std::size_t i = 0; i < js; ++i) {
          double s = 0.0;
          for (std::size_t jj = 0; jj < len; ++jj)
            s += t(i, col + 1 + jj) * hv[jj];
          s *= tau2;
          for (std::size_t jj = 0; jj < len; ++jj)
            t(i, col + 1 + jj) -= s * hv[jj];
        }
        // V := V P (all window rows).
        for (std::size_t i = 0; i < nw; ++i) {
          double s = 0.0;
          for (std::size_t jj = 0; jj < len; ++jj)
            s += v(i, col + 1 + jj) * hv[jj];
          s *= tau2;
          for (std::size_t jj = 0; jj < len; ++jj)
            v(i, col + 1 + jj) -= s * hv[jj];
        }
      }
    }
  }

  // 5. Commit: window block, spike column, and the off-window gemms.
  h.setBlock(kwtop, kwtop, t);
  if (kwtop > ilo) {
    h(kwtop, kwtop - 1) = beta;
    for (std::size_t i = kwtop + 1; i <= ihi; ++i) h(i, kwtop - 1) = 0.0;
  }
  if (kwtop > 0) {
    const Matrix top = h.block(0, kwtop, kwtop, nw);
    Matrix tmp(kwtop, nw);
    gemm(1.0, top, false, v, false, 0.0, tmp);
    h.setBlock(0, kwtop, tmp);
  }
  if (ihi + 1 < n) {
    const Matrix right = h.block(kwtop, ihi + 1, nw, n - ihi - 1);
    Matrix tmp(nw, n - ihi - 1);
    gemm(1.0, v, true, right, false, 0.0, tmp);
    h.setBlock(kwtop, ihi + 1, tmp);
  }
  if (z.rows() > 0) {
    const Matrix zc = z.block(0, kwtop, z.rows(), nw);
    Matrix tmp(z.rows(), nw);
    gemm(1.0, zc, false, v, false, 0.0, tmp);
    z.setBlock(0, kwtop, tmp);
  }
  return out;
}

}  // namespace shhpass::linalg
