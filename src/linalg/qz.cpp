#include "linalg/qz.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/lu.hpp"
#include "linalg/schur.hpp"

namespace shhpass::linalg {
namespace {

// Deterministic trial shifts, scaled by the pencil magnitude. A regular
// pencil has det(A - sE) != 0 for all but finitely many s, so some trial
// succeeds; failure on all of them flags a (near-)singular pencil.
std::vector<double> trialShifts(const Matrix& e, const Matrix& a) {
  const double scale =
      std::max(1e-300, a.normFrobenius() / std::max(1.0, e.normFrobenius()));
  return {0.0,          scale,        -scale,       0.5 * scale,
          -0.5 * scale, 2.718 * scale, -3.141 * scale, 7.389 * scale};
}

}  // namespace

GeneralizedEigenvalues generalizedEigenvalues(const Matrix& e, const Matrix& a,
                                              double infTol) {
  if (!e.isSquare() || !a.isSquare() || e.rows() != a.rows())
    throw std::invalid_argument("generalizedEigenvalues: shape mismatch");
  const std::size_t n = e.rows();
  GeneralizedEigenvalues out;
  if (n == 0) return out;

  for (double sigma : trialShifts(e, a)) {
    Matrix shifted = a - sigma * e;
    LU lu(shifted);
    // Demand a comfortably nonsingular shift, not a barely invertible one.
    if (lu.isSingular(1e-10)) continue;
    Matrix m = lu.solve(e);
    std::vector<std::complex<double>> mu = eigenvalues(m);
    double muMax = 0.0;
    for (const auto& v : mu) muMax = std::max(muMax, std::abs(v));
    const double cut = infTol * std::max(muMax, 1e-300);
    out.shiftUsed = sigma;
    for (const auto& v : mu) {
      if (std::abs(v) <= cut) {
        ++out.infiniteCount;
      } else {
        out.finite.push_back(sigma + 1.0 / v);
      }
    }
    // Real pencil: force conjugate symmetry lost to round-off.
    for (auto& lam : out.finite)
      if (std::abs(lam.imag()) <
          1e-10 * std::max(1.0, std::abs(lam.real())))
        lam = {lam.real(), 0.0};
    return out;
  }
  throw std::runtime_error(
      "generalizedEigenvalues: pencil is singular (no regular shift found)");
}

bool isRegularPencil(const Matrix& e, const Matrix& a) {
  if (!e.isSquare() || !a.isSquare() || e.rows() != a.rows()) return false;
  if (e.rows() == 0) return true;
  for (double sigma : trialShifts(e, a)) {
    LU lu(a - sigma * e);
    if (!lu.isSingular(1e-10)) return true;
  }
  return false;
}

std::size_t finiteModeCount(const Matrix& e, const Matrix& a) {
  return generalizedEigenvalues(e, a).finite.size();
}

}  // namespace shhpass::linalg
