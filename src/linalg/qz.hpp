// Generalized eigenvalues of a matrix pencil (E, A): the values lambda
// (possibly infinite) with det(A - lambda E) = 0.
//
// Implementation note: computed by shift-and-invert onto an ordinary real
// Schur problem, M = (A - sigma E)^{-1} E with a pencil-adapted shift sigma,
// mapping eigenvalues mu of M to lambda = sigma + 1/mu (mu = 0 <-> lambda =
// infinity). This is an O(n^3) substitution for a full QZ iteration (see
// DESIGN.md); the shift is retried over a deterministic candidate list so a
// singular (A - sigma E) is never used.
#pragma once

#include <complex>
#include <vector>

#include "linalg/matrix.hpp"

namespace shhpass::linalg {

/// Result of a generalized eigenvalue computation on a regular pencil.
struct GeneralizedEigenvalues {
  /// Finite eigenvalues of (E, A): lambda with det(A - lambda E) = 0.
  std::vector<std::complex<double>> finite;
  /// Algebraic count of infinite eigenvalues (nondynamic + impulsive).
  std::size_t infiniteCount = 0;
  /// Shift sigma actually used (diagnostic).
  double shiftUsed = 0.0;
};

/// Compute the generalized eigenvalues of the pencil (E, A), i.e. the roots
/// of det(A - lambda E) including multiplicity, with infinite eigenvalues
/// counted separately. `infTol` is the relative threshold below which an
/// eigenvalue mu of the shifted-inverse operator is declared zero (lambda =
/// infinity). Throws std::runtime_error if the pencil appears singular
/// (det(A - s E) == 0 for all trial shifts).
GeneralizedEigenvalues generalizedEigenvalues(const Matrix& e, const Matrix& a,
                                              double infTol = 1e-6);

/// True if the pencil (E, A) is regular: det(A - s E) != 0 for some s.
bool isRegularPencil(const Matrix& e, const Matrix& a);

/// deg det(-s E + A): the number of finite dynamic modes (q in the paper).
std::size_t finiteModeCount(const Matrix& e, const Matrix& a);

}  // namespace shhpass::linalg
