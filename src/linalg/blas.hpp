// BLAS-level kernels on shhpass::linalg::Matrix.
//
// This is the dense hot-path layer of the library: every O(n^3) stage of
// the SHH passivity pipeline (Hessenberg reduction, Schur reordering
// window updates, stable-subspace products, Lyapunov/Sylvester solves)
// bottoms out in the routines declared here.
//
// Two gemm kernels live behind one entry point:
//
//   * gemmReference — the historical naive i-k-j triple loop. It is kept
//     as the correctness oracle for the blocked kernel (see
//     tests/test_blas_blocked.cpp) and as the micro-benchmark baseline.
//   * a packed, cache-blocked BLAS-3 kernel (see blas.cpp) that gemm()
//     dispatches to for large-enough products.
//
// ## Blocking parameters
//
// The blocked kernel follows the BLIS/GotoBLAS loop nest. Tile sizes are
// compile-time constants, chosen for ~32 KiB L1 / ~256 KiB-1 MiB L2
// caches on commodity x86-64 and AArch64 cores:
//
//   * kGemmMr x kGemmNr (4 x 8)  — the register micro-tile: a 4x8 block
//     of C is accumulated in registers over the full K extent of a panel;
//   * kGemmKc (256)              — K extent of one packed panel pair: a
//     kGemmKc x kGemmNr sliver of B stays L1-resident across a macro row;
//   * kGemmMc (128)              — M extent of one packed A block
//     (kGemmMc x kGemmKc doubles = 256 KiB, sized for L2);
//   * kGemmNc (512)              — N extent of one packed B panel
//     (kGemmKc x kGemmNc doubles = 1 MiB, sized for L3).
//
// Operands are packed (with the transpose resolved and alpha folded into
// the A pack) into contiguous micro-panel layouts, so the micro-kernel
// reads both inputs with unit stride regardless of op(A)/op(B).
//
// Products too small to amortize the packing cost — fewer than
// kGemmBlockedFlopFloor multiply-adds, or with a thin dimension below one
// micro-tile — are routed to gemmReference unchanged; the dispatch is a
// pure performance decision and is observationally identical apart from
// floating-point summation order.
//
// ## Threading contract
//
// setGemmThreads(t) with t > 1 parallelizes the blocked kernel over
// disjoint column panels of C on a lazily created, process-wide
// api::ThreadPool (the same pool type the batch analyzer uses). The
// contract is:
//
//   * determinism — each C element is accumulated in the same order
//     regardless of the thread count (threads partition columns; the
//     K-accumulation order per element never changes), so results are
//     bit-identical between serial and threaded runs, for every thread
//     count, across repeated runs;
//   * the pool is used only inside gemm() calls that dispatch to the
//     blocked kernel AND exceed kGemmThreadedFlopFloor; small products
//     never touch the pool;
//   * gemm() may be called concurrently from many threads (e.g. from
//     runBatch workers); the kernel pool is shared and its barrier is
//     global, so concurrent large gemms serialize their waits but never
//     deadlock (kernel-pool workers themselves never call gemm);
//   * the default is serial (threads == 1): callers who never call
//     setGemmThreads get no thread pool and no behavioral change;
//   * setGemmThreads may be called concurrently with in-flight gemm()
//     calls: the kernel pins the pool it started with (shared ownership),
//     so a concurrent reconfigure never tears a pool out from under a
//     running product (race-checked by the tsan CI job and
//     tests/test_thread_pool_stress.cpp);
//   * the environment variable SHHPASS_GEMM_THREADS, read once at the
//     first threaded-eligible gemm() (or gemmThreads()) call, supplies a
//     process-wide default thread count when setGemmThreads was never
//     called explicitly — the tsan CI job forces the threaded path under
//     the whole test suite this way. Explicit setGemmThreads always wins;
//     by the determinism contract the setting can never change results,
//     only scheduling.
//
// ## Numerical accuracy
//
// Both kernels satisfy the usual inner-product forward-error bound
// |fl(C) - C| <= k * eps * (|alpha| |op(A)| |op(B)| + |beta| |C|)
// entrywise (k the inner dimension). The blocked kernel sums each element
// in a different (panel-major) order than the reference kernel, so the
// two agree only to that bound — about 1e-13 relative for the k <= a few
// thousand used here — not bitwise. All other routines in this header are
// exact per-element transcriptions (no reassociation).
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"

namespace shhpass::linalg {

/// Register micro-tile rows of the blocked gemm kernel.
inline constexpr std::size_t kGemmMr = 4;
/// Register micro-tile columns of the blocked gemm kernel.
inline constexpr std::size_t kGemmNr = 8;
/// M extent of one packed A block (L2-sized).
inline constexpr std::size_t kGemmMc = 128;
/// K extent of one packed panel pair (L1-sized with kGemmNr).
inline constexpr std::size_t kGemmKc = 256;
/// N extent of one packed B panel (L3-sized).
inline constexpr std::size_t kGemmNc = 512;
/// Minimum m*n*k for which gemm() dispatches to the blocked kernel.
inline constexpr std::size_t kGemmBlockedFlopFloor = 64 * 64 * 64;
/// Minimum m*n*k for which a threaded gemm() actually fans out.
inline constexpr std::size_t kGemmThreadedFlopFloor = 192 * 192 * 192;

/// C = alpha * op(A) * op(B) + beta * C, where op is identity or transpose.
/// C must already have the correct shape and must not alias a or b (the
/// inputs may alias each other). Dispatches between the blocked and the
/// reference kernel; see the header comment for the exact contract.
void gemm(double alpha, const Matrix& a, bool transA, const Matrix& b,
          bool transB, double beta, Matrix& c);

/// The naive i-k-j reference kernel (identical semantics to gemm).
/// Exercised directly by the equivalence tests and the kernel benchmarks;
/// production code should call gemm().
void gemmReference(double alpha, const Matrix& a, bool transA,
                   const Matrix& b, bool transB, double beta, Matrix& c);

/// The blocked kernel without the size dispatch (identical semantics to
/// gemm). Exposed for benchmarks and equivalence tests; production code
/// should call gemm(), which picks the faster kernel per shape.
void gemmBlocked(double alpha, const Matrix& a, bool transA, const Matrix& b,
                 bool transB, double beta, Matrix& c);

/// Number of worker threads the blocked gemm kernel fans out to (1 when
/// the kernel pool has never been enabled).
std::size_t gemmThreads();

/// Enable (t > 1) or disable (t <= 1) column-panel threading of the
/// blocked kernel; t == 0 means std::thread::hardware_concurrency().
/// t == 1 (or 0 on a single-core host) structurally bypasses the pool —
/// no pool exists and gemm runs inline — and is bit-identical to every
/// threaded setting (see threading contract). Safe to call concurrently
/// with in-flight gemm() calls: running products keep the pool they
/// started with alive until their panels drain.
void setGemmThreads(std::size_t t);

/// The calling thread's per-call gemm thread budget: 0 when no
/// GemmThreadBudgetScope is active (the process-wide setGemmThreads
/// setting applies unchanged).
std::size_t gemmThreadBudget();

/// RAII per-call kernel-thread budget — the level-2 scheduler's plumbing
/// for per-shard thread budgeting (api/scheduler.hpp). While a scope with
/// budget b > 0 is active on a thread, every gemm() issued FROM THAT
/// THREAD fans out to at most min(b, setGemmThreads width) workers;
/// b == 1 bypasses the kernel pool entirely for those calls (the shard
/// keeps its batch slot and leaves the kernel threads to large-order
/// shards). b == 0 means "no override". Scopes nest; the previous budget
/// is restored on destruction.
///
/// The budget is thread-local, so it does NOT propagate into tasks the
/// scoped thread submits to a ThreadPool — consumers that fan work out
/// (the stage-graph runner) re-establish the budget inside each task.
/// By the gemm determinism contract the budget can never change results,
/// only scheduling; tests/test_scheduler_random.cpp pins this bitwise.
class GemmThreadBudgetScope {
 public:
  explicit GemmThreadBudgetScope(std::size_t budget);
  ~GemmThreadBudgetScope();
  GemmThreadBudgetScope(const GemmThreadBudgetScope&) = delete;
  GemmThreadBudgetScope& operator=(const GemmThreadBudgetScope&) = delete;

 private:
  std::size_t previous_;
};

/// Returns op(A) * op(B).
Matrix multiply(const Matrix& a, bool transA, const Matrix& b, bool transB);

/// Returns A^T * B without forming A^T.
Matrix atb(const Matrix& a, const Matrix& b);

/// Returns A * B^T without forming B^T.
Matrix abt(const Matrix& a, const Matrix& b);

/// Dot product sum_i x[i] * y[i] over contiguous arrays, accumulated in
/// FOUR independent partial sums combined as (s0 + s1) + (s2 + s3). The
/// fixed reduction order keeps the result deterministic and independent
/// of thread count; like the gemm micro-kernel, an AVX2+FMA clone is
/// selected once at startup, so rounding may differ between machines but
/// never between runs. This is the building block for the hot gemv-style
/// row dots of the Hessenberg panel, the skew tridiagonalization, and the
/// symplectic reflector passes.
double dotQuad(const double* x, const double* y, std::size_t len);

/// y[i] += alpha * x[i] over contiguous arrays — exact per-element update
/// (each y[i] receives exactly one fused or rounded multiply-add; no
/// reassociation), with the same per-machine AVX2 dispatch as dotQuad.
void axpy(double alpha, const double* x, std::size_t len, double* y);

/// Plane rotation on contiguous arrays:
/// (x[i], y[i]) <- (cs * x[i] + sn * y[i], -sn * x[i] + cs * y[i]).
/// Exact per-element transcription of the two-line scalar update, with
/// the same per-machine AVX2 dispatch as dotQuad.
void planeRot(double cs, double sn, double* x, double* y, std::size_t len);

/// Dot product of columns ja of A and jb of B (rows must match).
double colDot(const Matrix& a, std::size_t ja, const Matrix& b,
              std::size_t jb);

/// Euclidean norm of column j of A computed with overflow guarding.
double colNorm(const Matrix& a, std::size_t j);

/// Symmetrize in place: A <- (A + A^T)/2 (square only).
void symmetrize(Matrix& a);

/// Skew-symmetrize in place: A <- (A - A^T)/2 (square only).
void skewSymmetrize(Matrix& a);

}  // namespace shhpass::linalg
