// BLAS-level helper kernels on shhpass::linalg::Matrix.
//
// These avoid forming explicit transposes in hot paths and give the
// decomposition code a compact vocabulary.
#pragma once

#include "linalg/matrix.hpp"

namespace shhpass::linalg {

/// C = alpha * op(A) * op(B) + beta * C, where op is identity or transpose.
/// C must already have the correct shape.
void gemm(double alpha, const Matrix& a, bool transA, const Matrix& b,
          bool transB, double beta, Matrix& c);

/// Returns op(A) * op(B).
Matrix multiply(const Matrix& a, bool transA, const Matrix& b, bool transB);

/// Returns A^T * B without forming A^T.
Matrix atb(const Matrix& a, const Matrix& b);

/// Returns A * B^T without forming B^T.
Matrix abt(const Matrix& a, const Matrix& b);

/// Dot product of columns ja of A and jb of B (rows must match).
double colDot(const Matrix& a, std::size_t ja, const Matrix& b,
              std::size_t jb);

/// Euclidean norm of column j of A computed with overflow guarding.
double colNorm(const Matrix& a, std::size_t j);

/// Symmetrize in place: A <- (A + A^T)/2 (square only).
void symmetrize(Matrix& a);

/// Skew-symmetrize in place: A <- (A - A^T)/2 (square only).
void skewSymmetrize(Matrix& a);

}  // namespace shhpass::linalg
