// Multishift QR eigensolver with aggressive early deflation (AED) — the
// BLAS-3 production path behind realSchur() (LAPACK dlaqr0 / dlaqr2 /
// dlaqr5 lineage).
//
// The historical Francis double-shift iteration (`hqr2` in schur.cpp,
// EISPACK lineage) applies every 3x3 bulge reflector across the full
// matrix immediately: O(n) BLAS-1 work per reflector, O(n^3) total, none
// of it blockable. This subsystem converts the bulk of that work into
// calls to the blocked, bit-deterministic gemm() of blas.hpp:
//
//   * small-bulge multishift sweeps (dlaqr5 lineage) — ns shifts are
//     paired into ns/2 bulges chased down the Hessenberg matrix as a
//     chain spaced 3 rows apart. All reflector applications are
//     restricted to a sliding window and accumulated into a small
//     orthogonal factor U; the off-window rows/columns of H and the Q
//     accumulation are then updated with three large gemm() calls per
//     window pass — the O(n^2)-per-sweep bulk of the work.
//   * aggressive early deflation (dlaqr2 lineage, aed.hpp) — before each
//     sweep a trailing window is fully Schur-decomposed by the windowed
//     small-matrix solver below; eigenvalues whose "spike" feet are
//     negligible are deflated on the spot (often converging many
//     eigenvalues per sweep instead of one or two), and the undeflated
//     window eigenvalues are harvested as the next sweep's shifts. The
//     window transform is likewise applied off-window as gemms.
//
// realSchur() dispatches on kSchurCrossover (consistent with
// kHessenbergCrossover and kSvdCrossover): below it the EISPACK-lineage
// schurUnblocked() oracle runs and the result is BIT-IDENTICAL to it
// (enforced by tests; note schurUnblocked itself now zeroes negligible
// subdiagonals at deflation time, so it is equivalent to — not bitwise
// frozen at — the historical implementation).
// Above it this subsystem runs; its only nondeterminism-relevant
// dependency is gemm(), so results are bit-identical for every
// setGemmThreads() setting (the thread-pool contract of blas.hpp is
// inherited, enforced by tests/test_schur_multishift_random.cpp).
//
// Accuracy: every transformation is orthogonal; the computed (T, Q)
// satisfy Q^T A Q = T + E with ||E|| = O(n eps ||A||), the same backward
// bound as the unblocked iteration. Deflation thresholds follow LAPACK
// (entry negligible against eps times the local diagonal magnitude, with
// a safe-minimum floor), so the two paths agree on eigenvalues to the
// usual eigenvalue condition bounds — not bitwise.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

#include "linalg/matrix.hpp"

namespace shhpass::linalg {

/// Smallest order for which realSchur() takes the multishift path. Below
/// it the EISPACK-lineage unblocked iteration is faster AND the dispatch
/// is bit-identical to schurUnblocked (consistent with
/// kHessenbergCrossover and kSvdCrossover).
inline constexpr std::size_t kSchurCrossover = 128;

/// Active blocks smaller than this are finished by the windowed Francis
/// iteration (on a window copy, committed via gemm) instead of further
/// AED/sweep cycles — the dlahqr-style small-matrix threshold, set a
/// little above LAPACK's because the copy-out commit makes the tail
/// cheap.
inline constexpr std::size_t kSchurMinActive = 150;

/// Bulge-chain mini-steps accumulated per sweep window before the
/// window transform is flushed to the off-window parts as gemm calls.
inline constexpr std::size_t kSchurSweepChunk = 32;

/// AED is considered "enough progress to skip the sweep" when it
/// deflates at least this percentage of its window (LAPACK's NIBBLE).
inline constexpr std::size_t kSchurAedNibble = 14;

/// Typed non-convergence error of the QR eigeniteration (both the
/// unblocked hqr2 path and the multishift path). The public API maps it
/// onto api::ErrorCode::SchurNoConvergence ("SCHUR_NO_CONVERGENCE")
/// instead of the generic NUMERICAL_FAILURE of plain runtime errors.
class SchurConvergenceError : public std::runtime_error {
 public:
  explicit SchurConvergenceError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Health record of one real Schur computation, threaded (alongside
/// ReorderReport) through core::ProperPartResult -> core::PassivityResult
/// -> api::AnalysisReport and serialized under diagnostics.schur.
struct SchurReport {
  /// True when the multishift path ran (false: unblocked oracle below
  /// kSchurCrossover, which leaves the counters at their hqr2 values).
  bool multishift = false;
  /// Multishift bulge-chain sweeps performed.
  std::size_t sweeps = 0;
  /// Aggressive-early-deflation windows examined.
  std::size_t aedWindows = 0;
  /// Eigenvalues deflated by AED (the remainder converged inside the
  /// windowed Francis iteration).
  std::size_t aedDeflations = 0;
  /// Shifts consumed by the multishift sweeps (2 per bulge).
  std::size_t shiftsApplied = 0;
  /// Total implicit-QR iterations of the windowed Francis solver
  /// (small active blocks + AED window factorizations + hqr2 itself on
  /// the unblocked path).
  std::size_t iterations = 0;
  /// Entries the belt-and-braces repairQuasiTriangularStructure pass had
  /// to zero after the iteration (eps-level deflation leftovers between
  /// blocks). The iterations zero these at deflation time, so any
  /// nonzero count flags a structural regression; pinned to zero by
  /// tests/test_schur_multishift_random.cpp.
  std::size_t structureRepairs = 0;

  /// Accumulate another computation's record (sum counters, OR the
  /// path flag) — for callers that factor several matrices.
  void absorb(const SchurReport& other);
};

/// Number of simultaneous shifts the multishift sweep uses for an active
/// block of the given size (even; LAPACK IPARMQ-style schedule).
std::size_t schurShiftCount(std::size_t active);

/// AED window size for an active block of the given size (a little wider
/// than the shift count, so the sweep's shifts come out of one window).
std::size_t schurAedWindow(std::size_t active);

/// Windowed Francis double-shift QR iteration (EISPACK hqr2 / LAPACK
/// dlahqr lineage): reduce rows/columns [lo, hi] of the upper Hessenberg
/// `h` to quasi-triangular form by orthogonal similarity, applying every
/// transformation across the full matrix (rows of `h` to the right of the
/// window, columns above it) and accumulating it into all rows of `q`
/// (columns [lo, hi]). Used by the multishift driver for small active
/// blocks and by the AED step for the window factorization; the diagonal
/// blocks it leaves are NOT yet standardized (see
/// standardizeQuasiTriangular). Subdiagonal entries judged negligible at
/// deflation time are zeroed immediately, so no eps-level leftovers
/// remain between blocks. Throws SchurConvergenceError when a window
/// eigenvalue fails to converge within the iteration budget.
void francisSchurWindow(Matrix& h, Matrix& q, std::size_t lo, std::size_t hi,
                        SchurReport* report = nullptr);

/// Multishift QR with aggressive early deflation on an upper Hessenberg
/// matrix: reduce `h` (n x n, upper Hessenberg) to quasi-triangular form
/// in place, accumulating every transformation into `q` (n x n, typically
/// the Hessenberg Q on entry). The result is NOT yet standardized or
/// repaired — realSchur() runs the same cleanup pass as the unblocked
/// path afterwards. Throws SchurConvergenceError on iteration-budget
/// exhaustion.
void multishiftSchurHessenberg(Matrix& h, Matrix& q,
                               SchurReport* report = nullptr);

}  // namespace shhpass::linalg
