// VLSI-interconnect scenario (the paper's motivating workload): an MNA-
// stamped RLC ladder modelling an on-chip wire, checked for passivity with
// all three tests — the proposed SHH method, the Weierstrass baseline, and
// (for small orders) the LMI test — with timing, so this example doubles as
// a miniature Table 1 row.
//
//   $ ./rlc_interconnect [order]
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "circuits/generators.hpp"
#include "core/passivity_test.hpp"
#include "ds/weierstrass.hpp"
#include "lmi/lmi_passivity.hpp"

namespace {

template <typename F>
double seconds(F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace shhpass;
  std::size_t order = 40;
  if (argc > 1) order = static_cast<std::size_t>(std::atoi(argv[1]));

  std::printf("== RLC interconnect model, order %zu (impulsive) ==\n", order);
  ds::DescriptorSystem g = circuits::makeBenchmarkModel(order, true);

  core::PassivityResult shh;
  const double tShh = seconds([&] { shh = core::testPassivityShh(g); });
  std::printf("proposed SHH test:   %-12s (%.4f s)  [deflated %zu impulsive,"
              " %zu nondynamic]\n",
              shh.passive ? "PASSIVE" : "NOT PASSIVE", tShh,
              shh.removedImpulsive, shh.removedNondynamic);

  ds::WeierstrassPassivityResult wei;
  const double tWei = seconds([&] { wei = ds::testPassivityWeierstrass(g); });
  std::printf("weierstrass test:    %-12s (%.4f s)  [cond(L) = %.2e,"
              " cond(R) = %.2e]\n",
              wei.passive ? "PASSIVE" : "NOT PASSIVE", tWei,
              wei.form.condLeft, wei.form.condRight);

  if (order <= 40) {
    lmi::LmiPassivityResult lmi;
    const double tLmi = seconds([&] { lmi = lmi::testPassivityLmi(g); });
    std::printf("LMI test:            %-12s (%.4f s)  [%zu variables, %d"
                " Newton steps]\n",
                lmi.passive ? "PASSIVE" : "NOT PASSIVE", tLmi, lmi.variables,
                lmi.newtonIterations);
  } else {
    std::printf("LMI test:            skipped (O(n^5..6); order > 40)\n");
  }

  // A non-passive mutant for contrast: a -20 mOhm series defect at the port.
  ds::DescriptorSystem bad = circuits::makeNonPassiveNegativeFeedthrough(5);
  core::PassivityResult badRes = core::testPassivityShh(bad);
  std::printf("\nnegative-feedthrough mutant: %s (failure: %s)\n",
              badRes.passive ? "PASSIVE (?!)" : "not passive",
              core::failureStageName(badRes.failure).c_str());
  return shh.passive && !badRes.passive ? 0 : 1;
}
