// VLSI-interconnect scenario (the paper's motivating workload): an MNA-
// stamped RLC ladder modelling an on-chip wire, checked for passivity with
// all three tests — the proposed SHH method through the unified public API
// (with its built-in per-stage timing), the Weierstrass baseline, and (for
// small orders) the LMI test — so this example doubles as a miniature
// Table 1 row.
//
//   $ ./rlc_interconnect [order]
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "api/shhpass.hpp"
#include "ds/weierstrass.hpp"
#include "lmi/lmi_passivity.hpp"

namespace {

template <typename F>
double seconds(F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace shhpass;
  std::size_t order = 40;
  if (argc > 1) {
    const int parsed = std::atoi(argv[1]);
    if (parsed < 5) {
      std::fprintf(stderr, "usage: %s [order >= 5]\n", argv[0]);
      return 2;
    }
    order = static_cast<std::size_t>(parsed);
  }

  std::printf("== RLC interconnect model, order %zu (impulsive) ==\n", order);
  ds::DescriptorSystem g = circuits::makeBenchmarkModel(order, true);

  api::PassivityAnalyzer analyzer;
  api::Result<api::AnalysisReport> shh = analyzer.analyze(g);
  if (!shh.ok()) {
    std::printf("proposed SHH test failed: %s\n",
                shh.status().toString().c_str());
    return 1;
  }
  std::printf("proposed SHH test:   %-12s (%.4f s)  [deflated %zu impulsive,"
              " %zu nondynamic]\n",
              shh->passive ? "PASSIVE" : "NOT PASSIVE", shh->totalSeconds,
              shh->removedImpulsive, shh->removedNondynamic);
  for (const api::StageTrace& t : shh->stages)
    std::printf("    %-20s %.4f s\n", t.name.c_str(), t.seconds);

  ds::WeierstrassPassivityResult wei;
  const double tWei = seconds([&] { wei = ds::testPassivityWeierstrass(g); });
  std::printf("weierstrass test:    %-12s (%.4f s)  [cond(L) = %.2e,"
              " cond(R) = %.2e]\n",
              wei.passive ? "PASSIVE" : "NOT PASSIVE", tWei,
              wei.form.condLeft, wei.form.condRight);

  // The LMI baseline is O(n^5..6): ~5 s at order 20 and minutes beyond 30,
  // so the default order-40 run only times the two fast tests.
  if (order <= 20) {
    lmi::LmiPassivityResult lmi;
    const double tLmi = seconds([&] { lmi = lmi::testPassivityLmi(g); });
    std::printf("LMI test:            %-12s (%.4f s)  [%zu variables, %d"
                " Newton steps]\n",
                lmi.passive ? "PASSIVE" : "NOT PASSIVE", tLmi, lmi.variables,
                lmi.newtonIterations);
  } else {
    std::printf("LMI test:            skipped (O(n^5..6); order > 20)\n");
  }

  // A non-passive mutant for contrast: a -20 mOhm series defect at the port.
  api::Result<api::AnalysisReport> bad =
      analyzer.analyze(circuits::makeNonPassiveNegativeFeedthrough(5));
  if (!bad.ok()) {
    std::printf("mutant analysis failed: %s\n",
                bad.status().toString().c_str());
    return 1;
  }
  std::printf("\nnegative-feedthrough mutant: %s (verdict: %s)\n",
              bad->passive ? "PASSIVE (?!)" : "not passive",
              api::errorCodeName(bad->verdict));
  return shh->passive && !bad->passive ? 0 : 1;
}
