// Quickstart: stamp a tiny RLC one-port into descriptor form, run the
// proposed SHH passivity test, and read the verdict with its diagnostics.
//
//   $ ./quickstart
//
// Circuit: port --L-- node --(C || R)-- ground, i.e. the driving-point
// impedance Z(s) = s*L + R/(1 + s*R*C). The series inductor at the port
// makes the stamped descriptor system IMPULSIVE (Z has a pole at infinity)
// with residue M1 = L, which the test must extract and certify PSD.
#include <cstdio>

#include "circuits/mna.hpp"
#include "circuits/netlist.hpp"
#include "core/passivity_test.hpp"
#include "ds/impulse_tests.hpp"

int main() {
  using namespace shhpass;

  const double R = 2.0, L = 0.5, C = 0.25;
  circuits::Netlist net(2);
  net.addInductor(1, 2, L);
  net.addCapacitor(2, 0, C);
  net.addResistor(2, 0, R);
  net.addPort(1);
  ds::DescriptorSystem g = circuits::stampMna(net);

  ds::ModeCensus census = ds::censusModes(g);
  std::printf("descriptor system: order %zu = %zu finite + %zu nondynamic "
              "+ %zu impulsive modes\n",
              census.order, census.finite, census.nondynamic,
              census.impulsive);
  std::printf("impulse-free: %s\n", ds::isImpulseFree(g) ? "yes" : "no");

  core::PassivityResult r = core::testPassivityShh(g);
  std::printf("passive:             %s\n", r.passive ? "YES" : "NO");
  std::printf("failure stage:       %s\n",
              core::failureStageName(r.failure).c_str());
  std::printf("impulsive deflated:  %zu state(s) of Phi\n",
              r.removedImpulsive);
  std::printf("nondynamic removed:  %zu state(s) of Phi\n",
              r.removedNondynamic);
  std::printf("impulsive chains:    %zu\n", r.impulsiveChains);
  if (r.m1.rows() > 0)
    std::printf("M1 (residue at inf): %.6f   (expected L = %.6f)\n",
                r.m1(0, 0), L);
  return r.passive ? 0 : 1;
}
