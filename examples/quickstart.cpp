// Quickstart against the unified shhpass public API: stamp a tiny RLC
// one-port into descriptor form, run it through the PassivityAnalyzer
// engine, print the JSON decision path — then analyze a batch of generated
// RLC interconnects on the internal thread pool and check the batch
// reports agree with sequential single-shot runs.
//
//   $ ./quickstart
//
// Circuit: port --L-- node --(C || R)-- ground, i.e. the driving-point
// impedance Z(s) = s*L + R/(1 + s*R*C). The series inductor at the port
// makes the stamped descriptor system IMPULSIVE (Z has a pole at infinity)
// with residue M1 = L, which the test must extract and certify PSD.
//
// Everything below uses only the api/shhpass.hpp umbrella header.
#include <cstdio>
#include <vector>

#include "api/shhpass.hpp"

int main() {
  using namespace shhpass;

  // --- Single-shot analysis -----------------------------------------
  const double R = 2.0, L = 0.5, C = 0.25;
  circuits::Netlist net(2);
  net.addInductor(1, 2, L);
  net.addCapacitor(2, 0, C);
  net.addResistor(2, 0, R);
  net.addPort(1);
  ds::DescriptorSystem g = circuits::stampMna(net);

  api::PassivityAnalyzer analyzer;
  api::Result<api::AnalysisReport> result = analyzer.analyze(g);
  if (!result.ok()) {
    std::printf("analysis failed: %s\n", result.status().toString().c_str());
    return 1;
  }
  const api::AnalysisReport& report = *result;
  std::printf("passive:             %s\n", report.passive ? "YES" : "NO");
  std::printf("verdict:             %s (%s)\n",
              api::errorCodeName(report.verdict),
              report.verdictMessage.c_str());
  std::printf("impulsive deflated:  %zu state(s) of Phi\n",
              report.removedImpulsive);
  std::printf("nondynamic removed:  %zu state(s) of Phi\n",
              report.removedNondynamic);
  std::printf("impulsive chains:    %zu\n", report.impulsiveChains);
  if (report.m1.rows() > 0)
    std::printf("M1 (residue at inf): %.6f   (expected L = %.6f)\n",
                report.m1(0, 0), L);
  std::printf("\ndecision path (JSON):\n%s\n", report.toJson().c_str());

  // --- Batched analysis ---------------------------------------------
  // Eight RLC interconnect ladders of growing order, a mix of impulsive
  // and impulse-free models, analyzed in parallel on the analyzer's
  // thread pool. Each batch report must match its sequential single-shot
  // counterpart exactly (up to wall-clock timings).
  std::vector<api::AnalysisRequest> batch;
  for (std::size_t k = 0; k < 8; ++k) {
    circuits::LadderOptions opt;
    opt.sections = 3 + k;
    opt.capAtPort = (k % 2 == 0);  // alternate impulse-free / impulsive
    api::AnalysisRequest req;
    req.id = "ladder-" + std::to_string(k);
    req.system = circuits::makeRlcLadder(opt);
    batch.push_back(std::move(req));
  }

  std::vector<api::Result<api::AnalysisReport>> reports =
      analyzer.runBatch(batch);

  std::printf("\nbatch of %zu RLC interconnects:\n", batch.size());
  bool allMatch = true, allPassive = true;
  for (std::size_t k = 0; k < batch.size(); ++k) {
    if (!reports[k].ok()) {
      std::printf("  %-10s ERROR %s\n", batch[k].id.c_str(),
                  reports[k].status().toString().c_str());
      allMatch = allPassive = false;
      continue;
    }
    api::Result<api::AnalysisReport> single = analyzer.analyze(batch[k]);
    const bool match =
        single.ok() && reports[k]->decisionEquals(*single);
    allMatch = allMatch && match;
    allPassive = allPassive && reports[k]->passive;
    std::printf("  %-10s order %-3zu %-11s matches single-shot: %s\n",
                reports[k]->id.c_str(), reports[k]->order,
                reports[k]->passive ? "PASSIVE" : "NOT PASSIVE",
                match ? "yes" : "NO");
  }
  std::printf("batch == sequential: %s\n", allMatch ? "YES" : "NO");
  return (report.passive && allMatch && allPassive) ? 0 : 1;
}
