// Telemetry walkthrough: run a mixed batch through the PassivityAnalyzer
// with the full observability surface enabled (span tracing + metrics
// registry + memory accounting — src/obs/), then
//
//   * write the span timeline as Chrome trace-event JSON (load it at
//     chrome://tracing or https://ui.perfetto.dev, or validate it with
//     tools/validate_trace_json.py),
//   * print the metrics registry in both exposition formats (JSON and
//     Prometheus text), and
//   * print the per-stage memory high-water marks the accountant
//     recorded into each report's StageTraces.
//
//   $ ./trace_analysis [trace.json]
//
// Telemetry is observation only: the dark re-run at the bottom checks
// decisionEquals against every telemetry-on report. The same switches
// can be forced process-wide with SHHPASS_TRACE=path SHHPASS_METRICS=1
// on ANY binary linked against the library — no code changes needed.
#include <cstdio>
#include <string>
#include <vector>

#include "api/shhpass.hpp"

int main(int argc, char** argv) {
  using namespace shhpass;
  const std::string tracePath = argc > 1 ? argv[1] : "trace.json";

  // Mixed workload: passive RLC ladders of growing order plus one model
  // that fails the test at m1-extraction — under the stage graph the
  // failing item shows discarded speculative spans in the trace.
  std::vector<api::AnalysisRequest> batch;
  for (std::size_t k = 0; k < 6; ++k) {
    circuits::LadderOptions opt;
    opt.sections = 4 + 2 * k;
    opt.capAtPort = (k % 2 == 0);
    api::AnalysisRequest req;
    req.id = "ladder-" + std::to_string(k);
    req.system = circuits::makeRlcLadder(opt);
    batch.push_back(std::move(req));
  }

  api::AnalyzerOptions options;
  options.telemetry.trace = true;       // span tracer on
  options.telemetry.metrics = true;     // counters/gauges/histograms +
                                        // memory accounting on
  options.threads = 2;
  options.stageGraph = true;            // stage-level task graph
  const api::PassivityAnalyzer analyzer(options);

  std::vector<api::Result<api::AnalysisReport>> reports =
      analyzer.runBatch(batch);
  for (const auto& r : reports)
    if (!r.ok()) {
      std::printf("analysis failed: %s\n", r.status().toString().c_str());
      return 1;
    }

  // --- Span timeline -------------------------------------------------
  const std::vector<obs::TraceEvent> spans = obs::snapshotTrace();
  if (!obs::writeTraceJson(tracePath)) {
    std::printf("cannot write %s\n", tracePath.c_str());
    return 1;
  }
  std::printf("wrote %zu spans to %s (dropped: %llu)\n", spans.size(),
              tracePath.c_str(),
              static_cast<unsigned long long>(obs::traceDroppedEvents()));

  // --- Metrics registry ----------------------------------------------
  std::printf("\nselected counters:\n");
  for (obs::Counter c : {obs::Counter::AnalysesCompleted,
                         obs::Counter::StagesExecuted,
                         obs::Counter::ShardsRun, obs::Counter::ShardSteals,
                         obs::Counter::GemmCalls, obs::Counter::SvdCalls,
                         obs::Counter::RankDecisions})
    std::printf("  %-32s %llu\n", obs::counterName(c),
                static_cast<unsigned long long>(obs::counterValue(c)));
  std::printf("\nmetrics (JSON):\n%s\n", obs::metricsJson().c_str());
  std::printf("metrics (Prometheus exposition, first lines):\n");
  const std::string prom = obs::metricsPrometheus();
  std::size_t shown = 0, pos = 0;
  while (shown < 12 && pos < prom.size()) {
    const std::size_t nl = prom.find('\n', pos);
    std::printf("  %s\n", prom.substr(pos, nl - pos).c_str());
    pos = nl == std::string::npos ? prom.size() : nl + 1;
    ++shown;
  }

  // --- Memory high-water marks ---------------------------------------
  std::printf("\nper-stage peak live bytes (largest item, %s):\n",
              reports.back()->id.c_str());
  for (const api::StageTrace& t : reports.back()->stages)
    std::printf("  %-20s %9zu bytes%s\n", t.name.c_str(), t.peakBytes,
                t.discarded ? "  (discarded speculative stage)" : "");
  std::printf("process peak live bytes: %zu\n", obs::memPeakBytes());

  // --- Observation-only contract --------------------------------------
  // A dark analyzer (no telemetry fields set; note telemetry switches
  // only ever turn ON process-wide, so this re-run is only truly dark
  // when the process env didn't force them) must reach identical
  // decisions.
  const api::PassivityAnalyzer darkAnalyzer;
  bool allMatch = true;
  for (std::size_t k = 0; k < batch.size(); ++k) {
    api::Result<api::AnalysisReport> dark = darkAnalyzer.analyze(batch[k]);
    allMatch = allMatch && dark.ok() && dark->decisionEquals(*reports[k]);
  }
  std::printf("\ntelemetry-on decisions == dark decisions: %s\n",
              allMatch ? "YES" : "NO");
  return (allMatch && !spans.empty()) ? 0 : 1;
}
