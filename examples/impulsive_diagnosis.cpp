// Diagnosing impulsive (infinite-frequency) structure in descriptor
// models: mode census, impulse controllability/observability, pencil
// index, and how each kind of defect shows up in the passivity verdict.
// Walks through four models:
//   1. a healthy impulse-free ladder,
//   2. a passive impulsive ladder (PSD residue at infinity),
//   3. a mutant with an indefinite M1 (impulsive energy "source"),
//   4. a mutant with a grade-3 chain (s^2 term, double pole at infinity).
//
//   $ ./impulsive_diagnosis
#include <cstdio>

#include "circuits/generators.hpp"
#include "core/markov.hpp"
#include "core/passivity_test.hpp"
#include "ds/impulse_tests.hpp"

namespace {

using namespace shhpass;

void report(const char* name, const ds::DescriptorSystem& g) {
  ds::ModeCensus mc = ds::censusModes(g);
  std::printf("== %s ==\n", name);
  std::printf("   order %zu: %zu finite, %zu nondynamic, %zu impulsive;"
              " index %zu\n",
              mc.order, mc.finite, mc.nondynamic, mc.impulsive,
              ds::pencilIndex(g));
  std::printf("   impulse-free %s / i-observable %s / i-controllable %s\n",
              ds::isImpulseFree(g) ? "yes" : "no ",
              ds::isImpulseObservable(g) ? "yes" : "no ",
              ds::isImpulseControllable(g) ? "yes" : "no ");
  core::M1Extraction m1 = core::extractM1(g);
  std::printf("   M1: %zu chain(s), symmetric %s, PSD %s\n", m1.chainCount,
              m1.symmetric ? "yes" : "no ", m1.psd ? "yes" : "no ");
  core::PassivityResult r = core::testPassivityShh(g);
  std::printf("   => %s (%s)\n\n", r.passive ? "PASSIVE" : "NOT PASSIVE",
              core::failureStageName(r.failure).c_str());
}

}  // namespace

int main() {
  using namespace shhpass;

  circuits::LadderOptions healthy;
  healthy.sections = 3;
  healthy.capAtPort = true;
  report("impulse-free RLC ladder", circuits::makeRlcLadder(healthy));

  circuits::LadderOptions impulsive;
  impulsive.sections = 3;
  impulsive.capAtPort = false;
  report("impulsive RLC ladder (M1 = L at the port)",
         circuits::makeRlcLadder(impulsive));

  report("indefinite-M1 mutant (impulsive energy source)",
         circuits::makeNonPassiveIndefiniteM1());

  report("grade-3 chain mutant (s^2 Markov term)",
         circuits::makeNonPassiveHigherOrderImpulse());
  return 0;
}
