// Diagnosing impulsive (infinite-frequency) structure in descriptor
// models through the unified public API: mode census, impulse
// controllability/observability, pencil index, and how each kind of defect
// shows up in the analyzer's verdict and error code. Walks through four
// models:
//   1. a healthy impulse-free ladder,
//   2. a passive impulsive ladder (PSD residue at infinity),
//   3. a mutant with an indefinite M1 (impulsive energy "source"),
//   4. a mutant with a grade-3 chain (s^2 term, double pole at infinity).
//
//   $ ./impulsive_diagnosis
#include <cstdio>

#include "api/shhpass.hpp"
#include "core/markov.hpp"

namespace {

using namespace shhpass;

void report(const char* name, const ds::DescriptorSystem& g,
            const api::PassivityAnalyzer& analyzer) {
  ds::ModeCensus mc = ds::censusModes(g);
  std::printf("== %s ==\n", name);
  std::printf("   order %zu: %zu finite, %zu nondynamic, %zu impulsive;"
              " index %zu\n",
              mc.order, mc.finite, mc.nondynamic, mc.impulsive,
              ds::pencilIndex(g));
  std::printf("   impulse-free %s / i-observable %s / i-controllable %s\n",
              ds::isImpulseFree(g) ? "yes" : "no ",
              ds::isImpulseObservable(g) ? "yes" : "no ",
              ds::isImpulseControllable(g) ? "yes" : "no ");
  core::M1Extraction m1 = core::extractM1(g);
  std::printf("   M1: %zu chain(s), symmetric %s, PSD %s\n", m1.chainCount,
              m1.symmetric ? "yes" : "no ", m1.psd ? "yes" : "no ");
  api::Result<api::AnalysisReport> r = analyzer.analyze(g);
  if (!r.ok()) {
    std::printf("   => ANALYSIS ERROR (%s)\n\n",
                r.status().toString().c_str());
    return;
  }
  std::printf("   => %s (code %s: %s)\n\n",
              r->passive ? "PASSIVE" : "NOT PASSIVE",
              api::errorCodeName(r->verdict), r->verdictMessage.c_str());
}

}  // namespace

int main() {
  using namespace shhpass;
  api::PassivityAnalyzer analyzer;

  circuits::LadderOptions healthy;
  healthy.sections = 3;
  healthy.capAtPort = true;
  report("impulse-free RLC ladder", circuits::makeRlcLadder(healthy),
         analyzer);

  circuits::LadderOptions impulsive;
  impulsive.sections = 3;
  impulsive.capAtPort = false;
  report("impulsive RLC ladder (M1 = L at the port)",
         circuits::makeRlcLadder(impulsive), analyzer);

  report("indefinite-M1 mutant (impulsive energy source)",
         circuits::makeNonPassiveIndefiniteM1(), analyzer);

  report("grade-3 chain mutant (s^2 Markov term)",
         circuits::makeNonPassiveHigherOrderImpulse(), analyzer);
  return 0;
}
