// The paper's "sidetrack": the SHH pipeline conveniently decouples the
// stable proper part of a passive descriptor system along the way. This
// example runs the stage-pipeline engine directly — with a diagnostic
// observer printing each Fig.-1 stage as it completes — then reads the
// extracted proper part off the pipeline state and verifies pointwise that
//     Phi(jw) = Hp(jw) + Hp(jw)^*
// where Hp is the extracted regular (nonsingular-E) system — i.e. the
// infinite-frequency structure has been cleanly split off by orthogonal
// transformations. The extracted Hp is a drop-in proper model for, e.g.,
// passivity enforcement or model order reduction (Sec. 4 remarks).
//
//   $ ./proper_part_extraction
#include <cstdio>

#include "api/shhpass.hpp"
#include "linalg/schur.hpp"

int main() {
  using namespace shhpass;
  using linalg::Matrix;

  circuits::LadderOptions opt;
  opt.sections = 5;
  opt.capAtPort = false;  // impulsive at the port: M1 = l
  ds::DescriptorSystem g = circuits::makeRlcLadder(opt);
  std::printf("original descriptor order: %zu (singular E)\n", g.order());

  // Drive the Fig.-1 stage pipeline directly, watching stages go by.
  api::Pipeline pipeline = api::Pipeline::standard();
  api::PipelineState state;
  state.input = &g;
  api::Status status =
      pipeline.run(state, nullptr, [](const api::StageTrace& t) {
        std::printf("  stage %-20s %-8s (%.4f s)\n", t.name.c_str(),
                    api::errorCodeName(t.status.code()), t.seconds);
      });
  if (!status.ok()) {
    std::printf("unexpected: %s\n", status.toString().c_str());
    return 1;
  }

  const core::ProperPartResult& pp = state.result.properPart;
  std::printf("extracted stable proper part: order %zu (regular E = I)\n",
              pp.lambda.rows());
  std::printf("poles of the proper part:\n");
  for (const auto& l : linalg::eigenvalues(pp.lambda))
    std::printf("   %12.5e %+12.5ei\n", l.real(), l.imag());

  // Pointwise verification: Phi(jw) = 2 * Herm(Hp(jw)). The proper part
  // lives in the BALANCED frequency coordinates, so compare against the
  // balanced system the pipeline actually processed.
  ds::DescriptorSystem hp;
  hp.e = Matrix::identity(pp.lambda.rows());
  hp.a = pp.lambda;
  hp.b = pp.b1;
  hp.c = pp.c1;
  hp.d = pp.dHalf;
  const ds::DescriptorSystem& gb = state.balanced.sys;
  ds::DescriptorSystem phiRef = ds::add(gb, ds::adjoint(gb));
  std::printf("\n%-12s %-16s %-16s %-10s\n", "omega", "Phi(jw)",
              "Hp+Hp* (jw)", "rel.err");
  double worst = 0.0;
  for (double w : {0.01, 0.1, 1.0, 10.0, 100.0}) {
    ds::TransferValue hv = ds::evalTransfer(hp, 0.0, w);
    ds::TransferValue pv = ds::evalTransfer(phiRef, 0.0, w);
    const double sum = hv.re(0, 0) * 2.0;
    const double ref = pv.re(0, 0);
    const double err = std::abs(sum - ref) / std::max(1.0, std::abs(ref));
    worst = std::max(worst, err);
    std::printf("%-12.3g %-16.8e %-16.8e %-10.2e\n", w, ref, sum, err);
  }
  std::printf("\nworst relative error: %.2e  (%s)\n", worst,
              worst < 1e-6 ? "OK" : "TOO LARGE");
  return worst < 1e-6 ? 0 : 1;
}
