// Descriptor model order reduction on top of the SHH framework (the
// paper's Sec.-4 outlook): reduce an RLC interconnect model while
// preserving the impulsive (infinite-frequency) behavior EXACTLY and
// certifying the reduced model passive through the unified public API.
//
//   $ ./model_reduction [properOrder]
#include <cstdio>
#include <cstdlib>

#include "api/shhpass.hpp"
#include "core/reduction.hpp"

int main(int argc, char** argv) {
  using namespace shhpass;
  std::size_t keep = 8;
  if (argc > 1) keep = static_cast<std::size_t>(std::atoi(argv[1]));

  circuits::LadderOptions opt;
  opt.sections = 8;
  opt.capAtPort = false;  // impulsive: M1 = l at the port
  ds::DescriptorSystem g = circuits::makeRlcLadder(opt);
  std::printf("full model: order %zu (singular E, impulsive port)\n",
              g.order());

  core::ReducedModel rom = core::reduceDescriptor(g, keep);
  if (!rom.ok) {
    std::printf("reduction failed (input defective)\n");
    return 1;
  }
  std::printf("reduced model: %zu proper + %zu impulsive states "
              "(was %zu)\n",
              rom.properOrder, 2 * rom.impulsiveRank, g.order());
  std::printf("hankel singular values:");
  for (std::size_t k = 0; k < rom.hankel.size(); ++k)
    std::printf(" %.2e", rom.hankel[k]);
  std::printf("\n\n%-12s %-16s %-16s %-10s\n", "omega", "|Z_full|",
              "|Z_rom|", "rel.err");
  for (double w : {1e0, 1e2, 1e4, 1e6, 1e8}) {
    ds::TransferValue a = ds::evalTransfer(g, 0.0, w);
    ds::TransferValue b = ds::evalTransfer(rom.sys, 0.0, w);
    const double za = std::hypot(a.re(0, 0), a.im(0, 0));
    const double zb = std::hypot(b.re(0, 0), b.im(0, 0));
    std::printf("%-12.1e %-16.6e %-16.6e %-10.2e\n", w, za, zb,
                std::abs(za - zb) / std::max(1.0, za));
  }

  api::PassivityAnalyzer analyzer;
  api::Result<api::AnalysisReport> pr = analyzer.analyze(rom.sys);
  if (!pr.ok()) {
    std::printf("\nanalysis failed: %s\n", pr.status().toString().c_str());
    return 1;
  }
  std::printf("\nreduced model passive: %s (%s)\n",
              pr->passive ? "YES" : "NO",
              api::errorCodeName(pr->verdict));
  if (pr->m1.rows() > 0)
    std::printf("reduced-model M1 = %.6e (original l = %.6e)\n",
                pr->m1(0, 0), opt.l);
  return pr->passive ? 0 : 1;
}
