// Parametric sweep workload: parse a SPICE-subset netlist, sweep its
// first R, L, and C across decades (circuits::runSweep — MNA stamped
// once, only perturbed values re-stamped per point), fan the batch
// through the work-stealing shard scheduler, verify every point against
// the sequential oracle slot by slot, and write the passivity-margin map
// JSON artifact.
//
//   $ ./sweep_margin_map [netlist.cir] [pointsPerAxis] [out.json]
//
// With no netlist argument a built-in RLC one-port (the README
// quickstart circuit) is swept. Exits nonzero when any scheduled point
// fails decisionEquals against the sequential oracle — CI's bench-smoke
// job runs this on the golden cap-at-port ladder with >= 64 points and
// relies on that exit code.
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "api/shhpass.hpp"

namespace {

// The README quickstart netlist: port --L-- node --(C || R)-- ground.
constexpr const char* kDefaultNetlist =
    "* quickstart one-port\n"
    "L1 1 2 0.5\n"
    "C1 2 0 0.25\n"
    "R1 2 0 2\n"
    ".port 1\n"
    ".end\n";

}  // namespace

int main(int argc, char** argv) {
  using namespace shhpass;

  std::size_t pointsPerAxis = 4;
  if (argc > 2) {
    const int parsed = std::atoi(argv[2]);
    if (parsed < 1) {
      std::fprintf(stderr, "usage: %s [netlist.cir] [pointsPerAxis >= 1] "
                           "[out.json]\n", argv[0]);
      return 2;
    }
    pointsPerAxis = static_cast<std::size_t>(parsed);
  }
  const char* outPath = argc > 3 ? argv[3] : "margin_map.json";

  api::Result<api::LoadedNetlist> loaded =
      argc > 1 ? api::loadNetlist(argv[1]) : api::parseNetlist(kDefaultNetlist);
  if (!loaded.ok()) {
    std::fprintf(stderr, "netlist ingestion failed: %s\n",
                 loaded.status().toString().c_str());
    return 1;
  }
  const circuits::Netlist& net = loaded->netlist;
  std::printf("netlist: %d node(s), %zu component(s), %zu port(s)\n",
              net.numNodes(), net.components().size(), net.ports().size());

  // One sweep axis per element kind: the first R, L, and C in the file,
  // each varied one decade down to one decade up.
  circuits::SweepSpec spec;
  bool haveKind[3] = {false, false, false};
  for (std::size_t k = 0; k < net.components().size(); ++k) {
    const auto kind = static_cast<std::size_t>(net.components()[k].kind);
    if (haveKind[kind]) continue;
    haveKind[kind] = true;
    spec.parameters.push_back({k, 1.0, 1.0, pointsPerAxis});
  }
  if (spec.parameters.empty()) {
    std::fprintf(stderr, "netlist has no sweepable elements\n");
    return 1;
  }

  api::AnalyzerOptions options;
  options.stageGraph = true;  // two-level: stage graph x shard stealing
  api::PassivityAnalyzer analyzer(options);

  circuits::SweepResult result = circuits::runSweep(net, spec, analyzer);
  const std::size_t mismatches =
      circuits::verifySweepSequential(net, spec, analyzer, result);

  std::printf("sweep: %zu point(s) across %zu axis/axes, %zu passive\n",
              result.points.size(), spec.parameters.size(),
              result.passiveCount);
  std::printf("decision mismatches vs sequential oracle: %zu\n", mismatches);

  const std::string json = circuits::sweepMarginMapJson(net, spec, result);
  std::ofstream out(outPath, std::ios::binary);
  out << json << "\n";
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", outPath);
    return 1;
  }
  std::printf("margin map written to %s (%zu bytes)\n", outPath, json.size());

  return mismatches == 0 ? 0 : 1;
}
