#!/usr/bin/env python3
"""Validate a BENCH_pipeline.json file against the documented schema.

Schema: docs/BENCHMARKS.md (shhpass-bench-pipeline, version 7: version 6
— the staircase deflation-chain health/kernel rows with the >= 1.5x
SVD-chain speedup floor at order 256, the batchThroughput object from
the two-level scheduler (decisionMismatches exactly 0; speedup floor
2.0x when the recording machine had >= 8 hardware threads), and the
sweepThroughput object from the parametric-sweep workload
(decisionMismatches again exactly 0) — plus the telemetry surface: every
pipeline stage row carries 'peakBytes' from the memory accountant, and
the observerOverhead object times one analysis at the top ladder order
with all telemetry dark vs forced on; overheadPct must stay below 3% at
order >= 400 (the ISSUE-10 acceptance ceiling) with only a loose sanity
ceiling on short smoke runs). Stdlib only — CI runs this after the
bench smoke job with no pip installs.

Usage: validate_bench_json.py PATH [--expect-order N]...
Exit status 0 when the file conforms, 1 with a diagnostic otherwise.
"""

import argparse
import json
import sys

PIPELINE_STAGES = [
    "prerequisites",
    "build-phi",
    "impulse-deflation",
    "nondynamic-removal",
    "m1-extraction",
    "proper-part",
    "pr-test",
]


def fail(msg):
    print(f"validate_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def require(cond, msg):
    if not cond:
        fail(msg)


def check_number(obj, key, ctx, minimum=None):
    require(key in obj, f"{ctx}: missing key '{key}'")
    value = obj[key]
    require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        f"{ctx}: '{key}' must be a number, got {type(value).__name__}",
    )
    if minimum is not None:
        require(value >= minimum, f"{ctx}: '{key}' = {value} < {minimum}")
    return value


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("path")
    parser.add_argument(
        "--expect-order",
        type=int,
        action="append",
        default=[],
        help="require a pipeline row at this order (repeatable)",
    )
    args = parser.parse_args()

    with open(args.path, encoding="utf-8") as f:
        doc = json.load(f)

    require(doc.get("schema") == "shhpass-bench-pipeline",
            f"schema must be 'shhpass-bench-pipeline', got {doc.get('schema')!r}")
    require(doc.get("schemaVersion") == 7,
            f"unsupported schemaVersion {doc.get('schemaVersion')!r}")
    require(doc.get("timeUnit") == "seconds",
            f"timeUnit must be 'seconds', got {doc.get('timeUnit')!r}")
    check_number(doc, "gemmThreads", "root", minimum=1)
    check_number(doc, "reps", "root", minimum=1)

    pipeline = doc.get("pipeline")
    require(isinstance(pipeline, list) and pipeline,
            "pipeline must be a non-empty array")
    seen_orders = set()
    for i, row in enumerate(pipeline):
        ctx = f"pipeline[{i}]"
        require(isinstance(row, dict), f"{ctx}: must be an object")
        order = int(check_number(row, "order", ctx, minimum=1))
        seen_orders.add(order)
        check_number(row, "ports", ctx, minimum=1)
        require(isinstance(row.get("passive"), bool),
                f"{ctx}: 'passive' must be a bool")
        check_number(row, "properOrder", ctx, minimum=0)
        total = check_number(row, "totalSeconds", ctx, minimum=0.0)
        stages = row.get("stages")
        require(isinstance(stages, list) and stages,
                f"{ctx}: 'stages' must be a non-empty array")
        stage_sum = 0.0
        peak_max = 0
        names = []
        for j, stage in enumerate(stages):
            sctx = f"{ctx}.stages[{j}]"
            require(isinstance(stage, dict), f"{sctx}: must be an object")
            require(isinstance(stage.get("name"), str) and stage["name"],
                    f"{sctx}: 'name' must be a non-empty string")
            names.append(stage["name"])
            stage_sum += check_number(stage, "seconds", sctx, minimum=0.0)
            peak_max = max(peak_max,
                           check_number(stage, "peakBytes", sctx, minimum=0))
        require(names == PIPELINE_STAGES[: len(names)],
                f"{ctx}: stage names {names} do not follow the Fig.-1 "
                f"pipeline order {PIPELINE_STAGES}")
        # Memory accounting is on for the pipeline rows: at least one
        # stage of every row must have seen a live Matrix allocation.
        require(peak_max > 0,
                f"{ctx}: every stage has peakBytes == 0 — the memory "
                f"accountant was off during the pipeline rows")
        require(abs(stage_sum - total) <= 0.05 * max(total, 1e-9) + 1e-6,
                f"{ctx}: stage seconds sum {stage_sum} != totalSeconds {total}")
        reorder = row.get("reorder")
        require(isinstance(reorder, dict), f"{ctx}: missing 'reorder' object")
        for key in ("swaps", "rejectedSwaps", "maxResidual", "eigenvalueDrift"):
            check_number(reorder, key, f"{ctx}.reorder", minimum=0)
        schur = row.get("schur")
        require(isinstance(schur, dict), f"{ctx}: missing 'schur' object")
        require(isinstance(schur.get("multishift"), bool),
                f"{ctx}.schur: 'multishift' must be a bool")
        for key in ("sweeps", "aedWindows", "aedDeflations", "shiftsApplied",
                    "iterations"):
            check_number(schur, key, f"{ctx}.schur", minimum=0)
        staircase = row.get("staircase")
        require(isinstance(staircase, dict),
                f"{ctx}: missing 'staircase' object")
        for key in ("compressions", "svdFallbacks", "diagonalFastPaths",
                    "qrCompressions", "skewTridiagonalizations",
                    "reusedCompressions", "chainLength", "truncatedSteps"):
            check_number(staircase, key, f"{ctx}.staircase", minimum=0)

    for order in args.expect_order:
        require(order in seen_orders,
                f"pipeline has no row at order {order} (has {sorted(seen_orders)})")

    kernels = doc.get("kernels")
    require(isinstance(kernels, list) and kernels,
            "kernels must be a non-empty array")
    variants = {}
    for i, row in enumerate(kernels):
        ctx = f"kernels[{i}]"
        require(isinstance(row, dict), f"{ctx}: must be an object")
        require(isinstance(row.get("kernel"), str) and row["kernel"],
                f"{ctx}: 'kernel' must be a non-empty string")
        require(isinstance(row.get("variant"), str) and row["variant"],
                f"{ctx}: 'variant' must be a non-empty string")
        check_number(row, "n", ctx, minimum=1)
        check_number(row, "seconds", ctx, minimum=0.0)
        check_number(row, "gflops", ctx, minimum=0.0)
        variants.setdefault(row["kernel"], set()).add(row["variant"])
    require({"reference", "blocked"} <= variants.get("gemm", set()),
            f"kernels must cover gemm reference+blocked, got {variants}")
    require({"unblocked", "blocked"} <= variants.get("svd", set()),
            f"kernels must cover svd unblocked+blocked, got {variants}")
    require({"unblocked", "multishift"} <= variants.get("schur", set()),
            f"kernels must cover schur unblocked+multishift, got {variants}")
    require({"staircase", "svd-chain"} <= variants.get("deflation-chain",
                                                       set()),
            f"kernels must cover deflation-chain staircase+svd-chain, "
            f"got {variants}")

    # Bench-smoke performance floor: the one-pass staircase chain must
    # beat the legacy SVD chain by at least 1.5x at order 256 (the
    # smallest order the Auto dispatch routes to the staircase path).
    chain = {row["variant"]: row["seconds"]
             for row in kernels
             if row["kernel"] == "deflation-chain" and row["n"] == 256}
    require({"staircase", "svd-chain"} <= set(chain),
            "deflation-chain kernel rows at n=256 are required")
    require(chain["staircase"] * 1.5 <= chain["svd-chain"],
            f"staircase deflation chain ({chain['staircase']:.4f}s) is not "
            f">= 1.5x faster than the SVD chain ({chain['svd-chain']:.4f}s) "
            f"at order 256")

    # -------------------------------------------- batchThroughput (v5)
    bt = doc.get("batchThroughput")
    require(isinstance(bt, dict), "missing 'batchThroughput' object")
    items = check_number(bt, "items", "batchThroughput", minimum=1)
    orders = bt.get("orders")
    require(isinstance(orders, list) and len(orders) == items,
            "batchThroughput.orders must be an array of length 'items'")
    require(len(set(orders)) >= 2,
            "batchThroughput.orders must mix at least two distinct orders")
    hw = check_number(bt, "hardwareThreads", "batchThroughput", minimum=1)
    for leg in ("sequential", "scheduled"):
        sub = bt.get(leg)
        require(isinstance(sub, dict), f"batchThroughput.{leg} must be an "
                                       f"object")
        check_number(sub, "workers", f"batchThroughput.{leg}", minimum=1)
        check_number(sub, "seconds", f"batchThroughput.{leg}", minimum=0.0)
        check_number(sub, "analysesPerSecond", f"batchThroughput.{leg}",
                     minimum=0.0)
    require(bt["sequential"]["workers"] == 1,
            "batchThroughput.sequential must record exactly 1 worker")
    require(isinstance(bt["scheduled"].get("stageGraph"), bool),
            "batchThroughput.scheduled: 'stageGraph' must be a bool")
    check_number(bt["scheduled"], "batchShards", "batchThroughput.scheduled",
                 minimum=1)
    check_number(bt["scheduled"], "batchSteals", "batchThroughput.scheduled",
                 minimum=0)
    speedup = check_number(bt, "speedup", "batchThroughput", minimum=0.0)
    mismatches = check_number(bt, "decisionMismatches", "batchThroughput",
                              minimum=0)
    # Determinism is unconditional: scheduled results must decisionEquals
    # the sequential baseline on every machine, every worker count.
    require(mismatches == 0,
            f"batchThroughput.decisionMismatches = {mismatches} != 0 — "
            f"the two-level scheduler changed a decision")
    # The throughput floor is conditional on the recording machine: >= 2x
    # with >= 8 hardware threads (the acceptance gate), else only a
    # sanity floor that catches a pathological scheduler (overhead must
    # not halve throughput even on a single core).
    if hw >= 8:
        require(speedup >= 2.0,
                f"batchThroughput.speedup = {speedup:.2f} < 2.0 with "
                f"{int(hw)} hardware threads")
    else:
        require(speedup >= 0.5,
                f"batchThroughput.speedup = {speedup:.2f} < 0.5 — scheduler "
                f"overhead is pathological even for {int(hw)} thread(s)")

    # -------------------------------------------- sweepThroughput (v6)
    st = doc.get("sweepThroughput")
    require(isinstance(st, dict), "missing 'sweepThroughput' object")
    points = check_number(st, "points", "sweepThroughput", minimum=64)
    axes = check_number(st, "axes", "sweepThroughput", minimum=1)
    per_axis = check_number(st, "pointsPerAxis", "sweepThroughput", minimum=2)
    require(points == per_axis ** axes,
            f"sweepThroughput.points = {points} != pointsPerAxis^axes = "
            f"{per_axis} ** {axes}")
    check_number(st, "order", "sweepThroughput", minimum=1)
    check_number(st, "passiveCount", "sweepThroughput", minimum=0)
    sweep_hw = check_number(st, "hardwareThreads", "sweepThroughput",
                            minimum=1)
    for leg in ("sequential", "scheduled"):
        sub = st.get(leg)
        require(isinstance(sub, dict), f"sweepThroughput.{leg} must be an "
                                       f"object")
        check_number(sub, "seconds", f"sweepThroughput.{leg}", minimum=0.0)
        check_number(sub, "pointsPerSecond", f"sweepThroughput.{leg}",
                     minimum=0.0)
    require(st["sequential"].get("workers") == 1,
            "sweepThroughput.sequential must record exactly 1 worker")
    require(isinstance(st["scheduled"].get("stageGraph"), bool),
            "sweepThroughput.scheduled: 'stageGraph' must be a bool")
    sweep_speedup = check_number(st, "speedup", "sweepThroughput",
                                 minimum=0.0)
    sweep_mismatches = check_number(st, "decisionMismatches",
                                    "sweepThroughput", minimum=0)
    # Determinism is unconditional here too: every sweep point's verdict
    # through the shard scheduler must match the sequential baseline.
    require(sweep_mismatches == 0,
            f"sweepThroughput.decisionMismatches = {sweep_mismatches} != 0 "
            f"— the sweep changed a decision under the scheduler")
    # Same conditional throughput floor shape as batchThroughput: 1.5x
    # with >= 8 hardware threads (sweep points are smaller than the batch
    # mix, so scheduling overhead weighs more), else a sanity floor only.
    if sweep_hw >= 8:
        require(sweep_speedup >= 1.5,
                f"sweepThroughput.speedup = {sweep_speedup:.2f} < 1.5 with "
                f"{int(sweep_hw)} hardware threads")
    else:
        require(sweep_speedup >= 0.5,
                f"sweepThroughput.speedup = {sweep_speedup:.2f} < 0.5 — "
                f"sweep scheduling overhead is pathological even for "
                f"{int(sweep_hw)} thread(s)")

    # -------------------------------------------- observerOverhead (v7)
    oo = doc.get("observerOverhead")
    require(isinstance(oo, dict), "missing 'observerOverhead' object")
    oo_order = check_number(oo, "order", "observerOverhead", minimum=1)
    require(oo_order in seen_orders,
            f"observerOverhead.order = {int(oo_order)} has no pipeline row")
    check_number(oo, "darkSeconds", "observerOverhead", minimum=0.0)
    check_number(oo, "telemetrySeconds", "observerOverhead", minimum=0.0)
    require("overheadPct" in oo and isinstance(oo["overheadPct"],
                                               (int, float)),
            "observerOverhead: missing numeric 'overheadPct'")
    overhead = oo["overheadPct"]
    # The ISSUE-10 acceptance ceiling: full telemetry (span tracing +
    # metrics + memory accounting) must cost < 3% of an order-400+
    # analysis. Short smoke runs (order 100 takes ~10 ms) cannot resolve
    # a 3% delta above timer noise, so they only get a sanity ceiling
    # that still catches a pathological observer.
    ceiling = 3.0 if oo_order >= 400 else 25.0
    require(overhead <= ceiling,
            f"observerOverhead.overheadPct = {overhead:.2f} > {ceiling} "
            f"at order {int(oo_order)} — telemetry is not near-free")

    print(f"validate_bench_json: OK: {args.path} "
          f"({len(pipeline)} pipeline rows, {len(kernels)} kernel rows, "
          f"batch speedup {speedup:.2f}x, sweep {int(points)} points "
          f"{sweep_speedup:.2f}x @ {int(hw)} hw threads, observer "
          f"overhead {overhead:.2f}% @ order {int(oo_order)})")


if __name__ == "__main__":
    main()
