#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file emitted by src/obs/trace.cpp.

Checks the wire shape (traceEvents array of complete "X" duration
events; displayTimeUnit), the field invariants the tracer guarantees
(nonnegative microsecond timestamps and durations, pid pinned to 1,
small dense thread ids, short names, args.discarded only ever boolean
true), and the structural property that makes the file loadable in a
flame viewer: within each thread id, spans form a proper nesting — a
span either contains a later span entirely or ends before it starts,
never a partial overlap. CI runs this on the trace the bench-smoke
golden-ladder sweep writes via SHHPASS_TRACE (stdlib only, no pip
installs).

Usage: validate_trace_json.py PATH [--require-stages] [--min-events N]
  --require-stages  require every canonical Fig.-1 stage name to appear
                    among cat == "stage" spans (use on workloads known
                    to reach the PR test, e.g. passive golden ladders)
  --min-events N    require at least N trace events (default 1)
Exit status 0 when the file conforms, 1 with a diagnostic otherwise.
"""

import argparse
import json
import sys

PIPELINE_STAGES = [
    "prerequisites",
    "build-phi",
    "impulse-deflation",
    "nondynamic-removal",
    "m1-extraction",
    "proper-part",
    "pr-test",
]

# Sub-microsecond slack for boundary comparisons: timestamps are written
# with three decimals (nanosecond resolution), so 2e-3 us absorbs the
# rounding of both endpoints without masking any real overlap.
EPS = 2e-3


def fail(msg):
    print(f"validate_trace_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def require(cond, msg):
    if not cond:
        fail(msg)


def check_nesting(tid, events):
    """Spans on one thread must nest like a call stack."""
    # Parent-first order: by start time, widest span first on ties.
    order = sorted(events, key=lambda e: (e["ts"], -e["dur"]))
    stack = []  # (end, name)
    for e in order:
        start, end = e["ts"], e["ts"] + e["dur"]
        while stack and start >= stack[-1][0] - EPS:
            stack.pop()
        if stack:
            parent_end, parent_name = stack[-1]
            require(end <= parent_end + EPS,
                    f"tid {tid}: span '{e['name']}' [{start:.3f}, {end:.3f}] "
                    f"partially overlaps enclosing '{parent_name}' "
                    f"(ends {parent_end:.3f}) — spans must nest")
        stack.append((end, e["name"]))


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("path")
    parser.add_argument("--require-stages", action="store_true")
    parser.add_argument("--min-events", type=int, default=1)
    args = parser.parse_args()

    with open(args.path, encoding="utf-8") as f:
        doc = json.load(f)

    require(isinstance(doc, dict), "root must be an object")
    require(doc.get("displayTimeUnit") == "ms",
            f"displayTimeUnit must be 'ms', got {doc.get('displayTimeUnit')!r}")
    events = doc.get("traceEvents")
    require(isinstance(events, list), "traceEvents must be an array")
    require(len(events) >= args.min_events,
            f"only {len(events)} trace events, expected >= {args.min_events}")

    by_tid = {}
    stage_names = set()
    cats = set()
    discarded = 0
    for i, e in enumerate(events):
        ctx = f"traceEvents[{i}]"
        require(isinstance(e, dict), f"{ctx}: must be an object")
        require(isinstance(e.get("name"), str) and 0 < len(e["name"]) <= 64,
                f"{ctx}: 'name' must be a short non-empty string")
        require(isinstance(e.get("cat"), str) and e["cat"],
                f"{ctx}: 'cat' must be a non-empty string")
        require(e.get("ph") == "X",
                f"{ctx}: ph must be 'X' (complete event), got {e.get('ph')!r}")
        for key in ("ts", "dur"):
            require(isinstance(e.get(key), (int, float))
                    and not isinstance(e[key], bool) and e[key] >= 0,
                    f"{ctx}: '{key}' must be a nonnegative number")
        require(e.get("pid") == 1, f"{ctx}: pid must be 1, got {e.get('pid')!r}")
        require(isinstance(e.get("tid"), int) and 0 <= e["tid"] <= 100000,
                f"{ctx}: tid must be a small nonnegative int, "
                f"got {e.get('tid')!r}")
        argsv = e.get("args", {})
        require(isinstance(argsv, dict), f"{ctx}: 'args' must be an object")
        if "discarded" in argsv:
            require(argsv["discarded"] is True,
                    f"{ctx}: args.discarded may only be boolean true")
            discarded += 1
        cats.add(e["cat"])
        if e["cat"] == "stage":
            stage_names.add(e["name"])
        by_tid.setdefault(e["tid"], []).append(e)

    for tid, tid_events in sorted(by_tid.items()):
        check_nesting(tid, tid_events)

    unknown = stage_names - set(PIPELINE_STAGES)
    require(not unknown,
            f"stage spans with non-canonical names: {sorted(unknown)}")
    if args.require_stages:
        missing = [s for s in PIPELINE_STAGES if s not in stage_names]
        require(not missing,
                f"canonical stages missing from the trace: {missing}")

    print(f"validate_trace_json: OK: {args.path} ({len(events)} events, "
          f"{len(by_tid)} threads, cats {sorted(cats)}, "
          f"{len(stage_names)}/{len(PIPELINE_STAGES)} stages, "
          f"{discarded} discarded)")


if __name__ == "__main__":
    main()
