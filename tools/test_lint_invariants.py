#!/usr/bin/env python3
"""Unit tests for tools/lint_invariants.py (stdlib-only, plain asserts).

Builds a fixture tree that violates each rule EXACTLY ONCE, asserts each
rule fires exactly once and points at the planted line, asserts the
comment/string stripper and the waiver mechanism mask non-violations,
and finally asserts the real repository tree is clean. Wired into ctest
as `lint_invariants_selftest` and into the CI `lint` job.
"""

import collections
import os
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import lint_invariants  # noqa: E402


def write(root, rel, text):
    path = os.path.join(root, rel)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        f.write(text)
    return rel.replace(os.sep, "/")


def build_fixture_tree(root):
    """One violation per rule, plus decoys that must NOT fire."""
    planted = {}

    # no-unordered-iteration: one real use; a comment, a string, and a
    # waived line must all be ignored.
    planted["no-unordered-iteration"] = (write(root, "src/core/bad_map.cpp", """
#include <unordered_map>
// std::unordered_map in a comment is fine
const char* kDoc = "std::unordered_map in a string is fine";
std::unordered_map<int, int> gWaived;  // lint-ok: no-unordered-iteration
std::unordered_map<int, int> gBad;
"""), 6)

    # no-std-distribution: one use in tests/.
    planted["no-std-distribution"] = (write(root, "tests/bad_random.cpp", """
#include <random>
// std::uniform_real_distribution named in a comment is fine
std::uniform_real_distribution<double> gBadDist;
"""), 4)

    # no-throw-in-api: a throw outside status.cpp fires; the same
    # statement inside status.cpp (the translate boundary) is exempt, and
    # comment/string mentions are ignored.
    planted["no-throw-in-api"] = (write(root, "src/api/bad_api.cpp", """
#include <stdexcept>
// Jobs must not throw — this comment is fine.
const char* kMsg = "never throw here";  // string is fine
void f() { throw std::runtime_error("boundary violation"); }
"""), 5)
    write(root, "src/api/status.cpp", """
#include <stdexcept>
void translate() { throw; }  // the one legitimate rethrow boundary
""")

    # oracle-pairing: fooBlocked has no fooUnblocked/fooReference.
    # barBlocked IS paired with barUnblocked, so it must not fire — but
    # barUnblocked is never referenced under tests/, so
    # oracle-test-coverage fires exactly once instead. quxReference is
    # referenced by the fixture test file, so it stays clean. Indented
    # (class-member) declarations are out of scope.
    bad_kernel = write(root, "src/linalg/bad_kernel.hpp", """
#pragma once
void fooBlocked(int n);
void barBlocked(int n);
void barUnblocked(int n);
int quxReference(int n);
class Solver {
 public:
  void factorBlocked();    // member: ignored by the namespace-scope rule
  void factorUnblocked();  // member: ignored
};
""")
    planted["oracle-pairing"] = (bad_kernel, 3)
    planted["oracle-test-coverage"] = (bad_kernel, 5)
    write(root, "tests/test_kernels.cpp", """
int quxReference(int n);
int main() { return quxReference(3); }
""")

    # no-reinterpret-cast: one bare use fires; the vetted-SIMD waiver
    # masks the other.
    planted["no-reinterpret-cast"] = (write(root, "src/linalg/bad_cast.cpp", """
void f(void* q) {
  double* ok = reinterpret_cast<double*>(q);  // lint-ok: no-reinterpret-cast (simd-microkernel)
  double* bad = reinterpret_cast<double*>(q);
  (void)ok; (void)bad;
}
"""), 4)

    # rank-tol-literal: one bare literal tolerance fires; the -1.0 policy
    # sentinel, a named tolerance, same-line and previous-line waivers,
    # and the src/linalg/svd.cpp policy implementation are all exempt.
    planted["rank-tol-literal"] = (write(root, "src/core/bad_rank.cpp", """
struct S { int rank(double, void* = 0); int nullspace(double); };
int a = S().rank(-1.0);                   // policy sentinel: fine
int b = S().nullspace(gTol);              // named tolerance: fine
int c = S().rank(1e-8);  // lint-ok: rank-tol-literal
// tolerance documented here  lint-ok: rank-tol-literal
int d = S().nullspace(1e-9);
int bad = S().rank(3e-10);
"""), 8)
    write(root, "src/linalg/svd.cpp", """
std::size_t rank(const Matrix& a, double tol = -1.0);
std::size_t r = rank(a, 1e-12);  // policy implementation: exempt
""")

    # no-raw-clock: a direct clock read in src/ fires; the same call in
    # src/obs/ (the sanctioned site), in bench/, a comment mention, and a
    # waived line all stay clean.
    planted["no-raw-clock"] = (write(root, "src/core/bad_clock.cpp", """
#include <chrono>
// std::chrono::steady_clock::now() in a comment is fine
auto w = std::chrono::steady_clock::now();  // lint-ok: no-raw-clock
auto bad = std::chrono::high_resolution_clock::now();
"""), 5)
    write(root, "src/obs/clock.cpp", """
#include <chrono>
auto t = std::chrono::steady_clock::now();  // the sanctioned site
""")
    write(root, "bench/bench_timing.cpp", """
#include <chrono>
auto t0 = std::chrono::steady_clock::now();  // bench/ is out of scope
""")

    # tsan-supp-clean: a project-owned suppression fires; comments and a
    # third-party suppression do not.
    planted["tsan-supp-clean"] = (write(root, "tools/tsan.supp", """\
# comment mentioning src/ is fine
race:third_party_lib_frame
race:shhpass::api::ThreadPool::workerLoop
"""), 3)

    return planted


def test_fixture_tree():
    with tempfile.TemporaryDirectory() as root:
        planted = build_fixture_tree(root)
        findings = lint_invariants.run(root)

        by_rule = collections.Counter(f.rule for f in findings)
        for rule in lint_invariants.RULE_IDS:
            assert by_rule[rule] == 1, (
                f"rule {rule}: expected exactly 1 finding, got "
                f"{by_rule[rule]}:\n" +
                "\n".join(str(f) for f in findings if f.rule == rule))
        assert len(findings) == len(lint_invariants.RULE_IDS), (
            "unexpected extra findings:\n" + "\n".join(map(str, findings)))

        for rule, (path, line) in planted.items():
            match = [f for f in findings if f.rule == rule][0]
            assert match.path == path, f"{rule}: fired in {match.path}, planted in {path}"
            assert match.line == line, f"{rule}: fired at line {match.line}, planted at {line}"
    print("PASS: each rule fires exactly once, at the planted line")


def test_stripper():
    strip = lint_invariants.strip_comments_and_strings
    assert "throw" not in strip("// may throw\nint x;")
    assert "throw" not in strip("/* throw\n throw */ int x;")
    assert "throw" not in strip('const char* s = "throw";')
    assert "throw" in strip('int f() { throw 1; }')
    # Positions are preserved so line numbers stay meaningful.
    assert strip("abc // x\ndef").count("\n") == 1
    assert strip('a = "q\\"w"; throw;').endswith("throw;")
    print("PASS: comment/string stripper")


def test_clean_tree_has_no_findings():
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    findings = lint_invariants.run(repo)
    assert not findings, (
        "the real tree must lint clean:\n" + "\n".join(map(str, findings)))
    print("PASS: repository tree is invariant-clean")


def main():
    test_stripper()
    test_fixture_tree()
    test_clean_tree_has_no_findings()
    print("lint_invariants self-test: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
