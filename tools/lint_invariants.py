#!/usr/bin/env python3
"""Project-specific invariant linter for the shhpass tree.

Enforces the determinism and error-model contracts that no generic tool
(clang-tidy, compiler warnings) knows about. The rules live in prose in
docs/ARCHITECTURE.md; this linter is the machine-checked version. It is
stdlib-only, runs as a ctest suite and a required CI job, and is itself
unit-tested by tools/test_lint_invariants.py (one fixture per rule).

Rules
-----
no-unordered-iteration
    std::unordered_map / std::unordered_set are banned in src/. Their
    iteration order is implementation-defined, so any use can silently
    feed hash-order into numeric results or JSON serialization order and
    break the bit-determinism contract (serial == N-thread, bitwise).
    Use std::map / std::set / sorted vectors.

no-std-distribution
    std::uniform_*_distribution / std::normal_distribution (any
    std::*_distribution) are banned everywhere (src, tests, bench,
    examples). The standard pins the engines (mt19937) but NOT the
    distributions, so distribution-sampled streams differ across
    standard libraries. Seeded test cases and benchmark models must map
    raw engine output by hand (tests/test_support.hpp Xorshift, or the
    hand-mapped mt19937 stream in bench/bench_support.hpp).

no-throw-in-api
    No `throw` in src/api/ outside status.cpp. The public API is
    Status/Result based; the ONLY place exceptions are touched is the
    translate boundary (statusFromCurrentException in status.cpp, plus
    the catch sites in pipeline.cpp). A throw elsewhere in src/api would
    cross the no-exceptions API boundary.

oracle-pairing
    Every blocked kernel entry point declared at namespace scope in a
    src/linalg header (a symbol ending in `Blocked`) must be declared in
    the same header as a named unblocked oracle (`<base>Unblocked` or
    `<base>Reference`). The oracle is what the equivalence tests and the
    dispatch bit-identity contract are written against.

oracle-test-coverage
    Every oracle symbol (`*Unblocked` / `*Reference` at namespace scope
    in a src/linalg header) must be referenced by name in at least one
    tests/ file: an oracle nothing tests against is not an oracle.

no-reinterpret-cast
    reinterpret_cast is banned in src/linalg except on lines carrying
    the vetted-SIMD waiver comment `lint-ok: simd-microkernel` (the only
    legitimate use is pointer re-typing inside a SIMD micro-kernel).

rank-tol-literal
    A positive floating-point literal passed as a tolerance to a
    rank-decision call (`rank(`, `nullspace(`, `kernel(`,
    `orthonormalRange(`) is banned in src/ outside src/linalg/svd.cpp
    (the shared-policy implementation itself). Hard-coded cutoffs are
    how the three deflation stages historically drifted apart; every
    rank decision must flow through resolveRankTol (svd.hpp) — thread a
    rankTol parameter or pass the -1.0 policy sentinel. Waive with
    `lint-ok: rank-tol-literal` on the offending line or the line
    directly above (this rule only; the justification comment usually
    wants the room).

tsan-supp-clean
    tools/tsan.supp must stay empty of project-owned frames: a
    suppression matching src/, tests/, or a shhpass symbol hides a real
    race instead of a third-party false positive.

no-raw-clock
    Direct std::chrono::*_clock::now() calls are banned in src/ outside
    src/obs/ (the telemetry layer owns the clock). Scattered clock reads
    produce timelines with mismatched epochs that cannot be correlated
    with the span tracer; route every measurement through
    obs::monotonicNowNs() (src/obs/clock.hpp). bench/, tests/, and
    examples/ are out of scope. Waivable with `lint-ok: no-raw-clock`.

Waivers: append `lint-ok: <rule-id>` in a comment on the offending line
to waive a line-based rule (use sparingly; the waiver itself is visible
in review).

Exit status: 0 when the tree is clean, 1 when any rule fired, 2 on
usage errors.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Dict, List, NamedTuple, Tuple

CPP_EXTENSIONS = (".cpp", ".hpp", ".h", ".cc", ".cxx")

RULE_IDS = (
    "no-unordered-iteration",
    "no-std-distribution",
    "no-throw-in-api",
    "oracle-pairing",
    "oracle-test-coverage",
    "no-reinterpret-cast",
    "rank-tol-literal",
    "tsan-supp-clean",
    "no-raw-clock",
)


class Finding(NamedTuple):
    rule: str
    path: str  # repo-relative, forward slashes
    line: int  # 1-based
    message: str


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literal contents, preserving
    newlines and column positions, so regex rules only see code."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(quote)
            elif c == "\n":  # unterminated; be forgiving
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        return f.read()


def _waived(raw_line: str, rule: str) -> bool:
    return f"lint-ok: {rule}" in raw_line


def _cpp_files(root: str, subdirs: Tuple[str, ...]) -> List[str]:
    files: List[str] = []
    for sub in subdirs:
        base = os.path.join(root, sub)
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith(CPP_EXTENSIONS):
                    files.append(os.path.join(dirpath, name))
    return sorted(files)


def _rel(root: str, path: str) -> str:
    return os.path.relpath(path, root).replace(os.sep, "/")


def _line_findings(root: str, path: str, rule: str, pattern: re.Pattern,
                   message: str) -> List[Finding]:
    raw_lines = _read(path).splitlines()
    stripped_lines = strip_comments_and_strings(_read(path)).splitlines()
    findings = []
    for lineno, line in enumerate(stripped_lines, start=1):
        if pattern.search(line):
            raw = raw_lines[lineno - 1] if lineno <= len(raw_lines) else ""
            if _waived(raw, rule):
                continue
            findings.append(Finding(rule, _rel(root, path), lineno, message))
    return findings


# ------------------------------------------------------------------ rules

UNORDERED_RE = re.compile(r"\bstd\s*::\s*unordered_(map|set|multimap|multiset)\b")
DISTRIBUTION_RE = re.compile(r"\bstd\s*::\s*\w*_distribution\b")
THROW_RE = re.compile(r"\bthrow\b")
REINTERPRET_RE = re.compile(r"\breinterpret_cast\b")
# A rank-decision call whose argument list carries a positive floating
# literal (decimal point or exponent) before the closing paren. The -1.0
# policy sentinel is excluded by the leading-minus lookbehind; pure
# integer arguments (e.g. index accessors) never match.
RANK_TOL_LITERAL_RE = re.compile(
    r"\b(?:rank|nullspace|kernel|orthonormalRange)\s*\([^)]*?"
    r"(?<![\w.])(?<!-)(?:\d+\.\d*(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+|\.\d+)"
)
# Namespace-scope kernel declarations: an unindented declarator line whose
# function name carries one of the kernel suffixes. Class members are
# indented and therefore ignored.
RAW_CLOCK_RE = re.compile(
    r"\bstd\s*::\s*chrono\s*::\s*\w*_clock\s*::\s*now\s*\(")
KERNEL_DECL_RE = re.compile(
    r"^[A-Za-z_][\w:<>,&*\s]*?\b([A-Za-z_]\w*?)(Blocked|Unblocked|Reference)"
    r"\s*\(",
    re.MULTILINE,
)


def check_no_unordered_iteration(root: str) -> List[Finding]:
    findings = []
    for path in _cpp_files(root, ("src",)):
        findings += _line_findings(
            root, path, "no-unordered-iteration", UNORDERED_RE,
            "std::unordered_* banned in src/: implementation-defined "
            "iteration order can leak into numeric results or JSON key "
            "order and break bit-determinism; use std::map/std::set or a "
            "sorted vector")
    return findings


def check_no_std_distribution(root: str) -> List[Finding]:
    findings = []
    for path in _cpp_files(root, ("src", "tests", "bench", "examples")):
        findings += _line_findings(
            root, path, "no-std-distribution", DISTRIBUTION_RE,
            "std::*_distribution sampling is not pinned across standard "
            "libraries; map raw engine output by hand (Xorshift in "
            "tests/test_support.hpp, hand-mapped mt19937 in bench)")
    return findings


def check_no_throw_in_api(root: str) -> List[Finding]:
    findings = []
    for path in _cpp_files(root, (os.path.join("src", "api"),)):
        if os.path.basename(path) == "status.cpp":
            continue  # the translate-and-rethrow boundary itself
        findings += _line_findings(
            root, path, "no-throw-in-api", THROW_RE,
            "no `throw` in src/api outside status.cpp: the public API is "
            "Status/Result based and exceptions must not cross it")
    return findings


def check_no_reinterpret_cast(root: str) -> List[Finding]:
    findings = []
    for path in _cpp_files(root, (os.path.join("src", "linalg"),)):
        findings += _line_findings(
            root, path, "no-reinterpret-cast", REINTERPRET_RE,
            "reinterpret_cast banned in src/linalg outside vetted SIMD "
            "micro-kernels (waive with `lint-ok: no-reinterpret-cast` "
            "comment `lint-ok: simd-microkernel` only inside one)")
    return findings


def check_no_raw_clock(root: str) -> List[Finding]:
    findings = []
    for path in _cpp_files(root, ("src",)):
        rel = _rel(root, path)
        if rel.startswith("src/obs/"):
            continue  # the telemetry layer owns the sanctioned clock site
        findings += _line_findings(
            root, path, "no-raw-clock", RAW_CLOCK_RE,
            "direct std::chrono clock read in src/ outside src/obs/: "
            "mismatched epochs cannot be correlated with the span "
            "tracer; use obs::monotonicNowNs() (src/obs/clock.hpp)")
    return findings


def check_rank_tol_literal(root: str) -> List[Finding]:
    findings = []
    for path in _cpp_files(root, ("src",)):
        rel = _rel(root, path)
        if rel == "src/linalg/svd.cpp":
            continue  # the shared-policy implementation defines the default
        raw_lines = _read(path).splitlines()
        stripped_lines = strip_comments_and_strings(_read(path)).splitlines()
        for lineno, line in enumerate(stripped_lines, start=1):
            if not RANK_TOL_LITERAL_RE.search(line):
                continue
            here = raw_lines[lineno - 1] if lineno <= len(raw_lines) else ""
            above = raw_lines[lineno - 2] if lineno >= 2 else ""
            if (_waived(here, "rank-tol-literal")
                    or _waived(above, "rank-tol-literal")):
                continue
            findings.append(Finding(
                "rank-tol-literal", rel, lineno,
                "numeric-literal rank tolerance bypasses the shared "
                "resolveRankTol policy (svd.hpp); thread a rankTol "
                "parameter or pass the -1.0 policy sentinel (waive with "
                "`lint-ok: rank-tol-literal` on or directly above the "
                "line)"))
    return findings


def _kernel_decls(header_text: str) -> List[Tuple[str, str, int]]:
    """(base, suffix, line) for namespace-scope kernel declarations."""
    stripped = strip_comments_and_strings(header_text)
    decls = []
    for m in KERNEL_DECL_RE.finditer(stripped):
        line = stripped.count("\n", 0, m.start()) + 1
        decls.append((m.group(1), m.group(2), line))
    return decls


def check_oracle_rules(root: str) -> List[Finding]:
    linalg_dir = os.path.join(root, "src", "linalg")
    headers = [p for p in _cpp_files(root, (os.path.join("src", "linalg"),))
               if p.endswith((".hpp", ".h"))]
    if not os.path.isdir(linalg_dir):
        return []

    tests_text = ""
    for path in _cpp_files(root, ("tests",)):
        tests_text += _read(path)

    findings = []
    for path in headers:
        decls = _kernel_decls(_read(path))
        oracles = {base for base, suffix, _ in decls
                   if suffix in ("Unblocked", "Reference")}
        for base, suffix, line in decls:
            name = base + suffix
            if suffix == "Blocked":
                if base not in oracles:
                    findings.append(Finding(
                        "oracle-pairing", _rel(root, path), line,
                        f"blocked kernel `{name}` has no named unblocked "
                        f"oracle (`{base}Unblocked` or `{base}Reference`) "
                        "declared in the same header; every blocked kernel "
                        "needs an oracle for the equivalence tests"))
            else:
                if not re.search(r"\b" + re.escape(name) + r"\b", tests_text):
                    findings.append(Finding(
                        "oracle-test-coverage", _rel(root, path), line,
                        f"oracle `{name}` is never referenced in tests/; an "
                        "oracle nothing tests against guards nothing"))
    return findings


def check_tsan_supp_clean(root: str) -> List[Finding]:
    path = os.path.join(root, "tools", "tsan.supp")
    if not os.path.isfile(path):
        return []
    project_frame = re.compile(r"src/|tests/|shhpass", re.IGNORECASE)
    findings = []
    for lineno, line in enumerate(_read(path).splitlines(), start=1):
        body = line.strip()
        if not body or body.startswith("#"):
            continue
        if project_frame.search(body):
            findings.append(Finding(
                "tsan-supp-clean", _rel(root, path), lineno,
                "tsan.supp suppresses a project-owned frame; fix the race "
                "instead of suppressing it"))
    return findings


CHECKS = (
    check_no_unordered_iteration,
    check_no_std_distribution,
    check_no_throw_in_api,
    check_oracle_rules,
    check_no_reinterpret_cast,
    check_rank_tol_literal,
    check_tsan_supp_clean,
    check_no_raw_clock,
)


def run(root: str) -> List[Finding]:
    root = os.path.abspath(root)
    findings: List[Finding] = []
    for check in CHECKS:
        findings += check(root)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        description="shhpass project-invariant linter (see module docstring)")
    parser.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: parent of tools/)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule ids and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULE_IDS:
            print(rule)
        return 0

    if not os.path.isdir(os.path.join(args.root, "src")):
        print(f"lint_invariants: no src/ under {args.root}", file=sys.stderr)
        return 2

    findings = run(args.root)
    for f in findings:
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
    if findings:
        counts: Dict[str, int] = {}
        for f in findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        summary = ", ".join(f"{rule}: {n}" for rule, n in sorted(counts.items()))
        print(f"lint_invariants: FAILED ({len(findings)} finding(s) — {summary})")
        return 1
    print("lint_invariants: OK (all project invariants hold)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
