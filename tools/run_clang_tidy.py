#!/usr/bin/env python3
"""Baseline-diffing clang-tidy driver for the shhpass tree.

Runs clang-tidy (config: the repo-root .clang-tidy) over the project's
own translation units using the compile database exported by CMake
(CMAKE_EXPORT_COMPILE_COMMANDS is ON unconditionally), normalizes the
diagnostics to stable repo-relative `path:line: warning: ... [check]`
lines, and diffs them against the committed
tools/clang_tidy_baseline.txt. CI fails on ANY new diagnostic; fixing
warnings shrinks the baseline via --update-baseline.

Why diff-a-baseline instead of zero-warnings-absolute: clang-tidy output
drifts across LLVM releases (new checks, reworded messages). A committed
baseline keeps the gate "no NEW findings" regardless of which version a
contributor has, and normalization (paths relative, columns stripped)
keeps the diff stable.

Speed (<5 min CI budget): --changed-only lints just the TUs touched
since the merge base (PR builds); the weekly scheduled job and pushes to
main run the full sweep. Files are linted in parallel worker processes.

Exit status: 0 clean/skip, 1 findings diverge from baseline, 2 usage or
environment errors. When clang-tidy is not installed the script prints
SKIP and exits 0 (the dev container is gcc-only; the clang-tidy CI job
installs the real tool) unless --require is given.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import re
import shutil
import subprocess
import sys
from typing import List, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE = os.path.join(REPO_ROOT, "tools", "clang_tidy_baseline.txt")

# Own code only: dependencies fetched into the build tree (gtest,
# google-benchmark) are not ours to lint.
PROJECT_DIRS = ("src", "tests", "bench", "examples")

# Prefer an unsuffixed binary, else the newest versioned one on PATH.
CANDIDATE_NAMES = ["clang-tidy"] + [f"clang-tidy-{v}" for v in range(25, 11, -1)]

DIAG_RE = re.compile(
    r"^(?P<path>/[^:]+):(?P<line>\d+):(?P<col>\d+): "
    r"(?P<sev>warning|error): (?P<msg>.*)$")


def find_clang_tidy(explicit: Optional[str]) -> Optional[str]:
    if explicit:
        return explicit if shutil.which(explicit) else None
    for name in CANDIDATE_NAMES:
        path = shutil.which(name)
        if path:
            return path
    return None


def project_tus(build_dir: str) -> List[str]:
    """Project-owned translation units from the compile database."""
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(db_path):
        raise FileNotFoundError(
            f"{db_path} not found — configure the build tree first "
            "(cmake -B build -S . exports the compile database)")
    with open(db_path, "r", encoding="utf-8") as f:
        db = json.load(f)
    tus = []
    prefixes = tuple(os.path.join(REPO_ROOT, d) + os.sep for d in PROJECT_DIRS)
    for entry in db:
        src = os.path.abspath(os.path.join(entry["directory"], entry["file"]))
        if src.startswith(prefixes):
            tus.append(src)
    return sorted(set(tus))


def changed_files(base_ref: str) -> List[str]:
    """Absolute paths of files changed since merge-base with base_ref
    (plus uncommitted changes). Falls back to 'everything' on error."""
    try:
        merge_base = subprocess.run(
            ["git", "merge-base", "HEAD", base_ref], cwd=REPO_ROOT,
            capture_output=True, text=True, check=True).stdout.strip()
        out = subprocess.run(
            ["git", "diff", "--name-only", merge_base], cwd=REPO_ROOT,
            capture_output=True, text=True, check=True).stdout
    except (subprocess.CalledProcessError, FileNotFoundError):
        return []
    return [os.path.join(REPO_ROOT, line)
            for line in out.splitlines() if line.strip()]


def lint_one(args) -> str:
    tidy, build_dir, tu = args
    proc = subprocess.run(
        [tidy, "-p", build_dir, "--quiet", tu],
        capture_output=True, text=True, cwd=REPO_ROOT)
    return proc.stdout


def normalize(raw: str) -> List[str]:
    """Stable, sorted `path:line: sev: msg` lines, repo-relative, own
    files only, column numbers dropped (they churn across versions)."""
    lines = set()
    for line in raw.splitlines():
        m = DIAG_RE.match(line)
        if not m:
            continue
        rel = os.path.relpath(m.group("path"), REPO_ROOT).replace(os.sep, "/")
        if rel.startswith(".."):
            continue  # system/third-party header
        if not rel.startswith(tuple(d + "/" for d in PROJECT_DIRS)):
            continue
        lines.add(f"{rel}:{m.group('line')}: {m.group('sev')}: "
                  f"{m.group('msg')}")
    return sorted(lines)


def read_baseline() -> List[str]:
    if not os.path.isfile(BASELINE):
        return []
    with open(BASELINE, "r", encoding="utf-8") as f:
        return [ln.rstrip("\n") for ln in f
                if ln.strip() and not ln.startswith("#")]


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default=os.path.join(REPO_ROOT, "build"),
                        help="build tree containing compile_commands.json")
    parser.add_argument("--clang-tidy", default=None,
                        help="explicit clang-tidy binary")
    parser.add_argument("--changed-only", metavar="BASE_REF", default=None,
                        help="lint only TUs changed since merge-base with "
                             "BASE_REF (e.g. origin/main)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite tools/clang_tidy_baseline.txt from this "
                             "run (full sweep only)")
    parser.add_argument("--require", action="store_true",
                        help="fail (exit 2) instead of SKIP when clang-tidy "
                             "is not installed")
    parser.add_argument("-j", "--jobs", type=int,
                        default=max(1, multiprocessing.cpu_count() - 1))
    args = parser.parse_args(argv)

    tidy = find_clang_tidy(args.clang_tidy)
    if tidy is None:
        msg = "run_clang_tidy: SKIP — clang-tidy not found on PATH"
        if args.require:
            print(msg + " (--require given)", file=sys.stderr)
            return 2
        print(msg + " (install it, or rely on the clang-tidy CI job)")
        return 0

    try:
        tus = project_tus(args.build_dir)
    except FileNotFoundError as err:
        print(f"run_clang_tidy: {err}", file=sys.stderr)
        return 2

    if args.changed_only:
        if args.update_baseline:
            print("run_clang_tidy: --update-baseline needs a full sweep, "
                  "not --changed-only", file=sys.stderr)
            return 2
        changed = set(changed_files(args.changed_only))
        if changed:
            # Header edits are caught transitively: lint every TU when a
            # header changed, else just the changed TUs.
            if any(p.endswith((".hpp", ".h")) for p in changed):
                print("run_clang_tidy: header change detected — full sweep")
            else:
                tus = [t for t in tus if t in changed]
        if not tus:
            print("run_clang_tidy: OK — no project TUs changed")
            return 0

    print(f"run_clang_tidy: {tidy} over {len(tus)} TU(s), "
          f"{args.jobs} worker(s)")
    work = [(tidy, args.build_dir, tu) for tu in tus]
    if args.jobs > 1 and len(work) > 1:
        with multiprocessing.Pool(args.jobs) as pool:
            outputs = pool.map(lint_one, work)
    else:
        outputs = [lint_one(w) for w in work]
    current = normalize("\n".join(outputs))

    if args.update_baseline:
        with open(BASELINE, "w", encoding="utf-8") as f:
            f.write("# clang-tidy baseline for shhpass — managed by\n"
                    "# tools/run_clang_tidy.py --update-baseline.\n"
                    "# CI fails on any diagnostic not listed here; the goal\n"
                    "# is for this file to stay EMPTY of entries.\n")
            for line in current:
                f.write(line + "\n")
        print(f"run_clang_tidy: baseline rewritten ({len(current)} entries)")
        return 0

    baseline = set(read_baseline())
    new = [ln for ln in current if ln not in baseline]
    fixed = [ln for ln in baseline if ln not in set(current)]
    if new:
        print(f"run_clang_tidy: FAILED — {len(new)} diagnostic(s) not in "
              "baseline:")
        for line in new:
            print("  " + line)
        print("fix them (preferred) or, for a deliberate exception, rerun "
              "with --update-baseline and justify the entry in review")
        return 1
    if fixed and not args.changed_only:
        # Stale entries are only provable on a full sweep.
        print(f"run_clang_tidy: note — {len(fixed)} baseline entr(y/ies) no "
              "longer fire; shrink the baseline with --update-baseline")
    print(f"run_clang_tidy: OK ({len(current)} diagnostic(s), all baselined)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
