// Ablation A1 (Sec. 4 remarks): per-stage timing of the proposed pipeline.
// The paper states the bottleneck is the identification of the stable
// invariant subspace in Eq. (22); this bench verifies where the time goes.
//
// The per-stage numbers come straight from the stage-pipeline engine's
// StageTrace records (api/pipeline.hpp) — no hand-rolled stage
// re-orchestration. Two sub-probes re-run the Hamiltonian eigenstructure
// (Eq. 22, the claimed bottleneck) and the Lyapunov-based split on the
// intermediate A4 to break the proper-part stage down further.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "api/pipeline.hpp"
#include "control/hamiltonian.hpp"
#include "shh/stable_subspace.hpp"

int main(int argc, char** argv) {
  using namespace shhpass;
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--quick") quick = true;
  std::vector<std::size_t> orders = {50, 100, 200, 400};
  if (quick) orders = {50, 100};

  const api::Pipeline pipeline = api::Pipeline::standard();

  std::printf(
      "# Ablation: per-stage wall time (sec) of the proposed SHH test,\n"
      "# plus reorder health of the Eq.-(22) split (swap count, rejected\n"
      "# swaps, max accepted-swap residual) from the ReorderReport.\n");
  std::printf("%-8s %-10s %-10s %-10s %-10s %-12s %-10s %-7s %-5s %-10s\n",
              "order", "deflate", "nondyn", "proper", "eig22", "split",
              "pr-test", "swaps", "rej", "maxresid");
  for (std::size_t n : orders) {
    ds::DescriptorSystem g = circuits::makeBenchmarkModel(n, true);

    api::PipelineState state;
    state.input = &g;
    std::vector<api::StageTrace> traces;
    const api::Status status = pipeline.run(state, &traces);
    if (!status.ok()) {
      std::fprintf(stderr, "unexpected verdict/error at n=%zu: %s\n", n,
                   status.toString().c_str());
      continue;
    }
    std::map<std::string, double> t;
    for (const api::StageTrace& tr : traces) t[tr.name] = tr.seconds;

    // Sub-probes inside the proper-part stage: (a) the Hamiltonian
    // eigenstructure of Eq. (22) — the claimed bottleneck — and (b) the
    // stable/antistable Lyapunov split, both re-run on the intermediate A4.
    const linalg::Matrix& a4 = state.result.properPart.a4;
    const double tEig22 = bench::timeSeconds(
        [&] { control::stableInvariantSubspace(a4); });
    const double tSplit =
        bench::timeSeconds([&] { shh::decoupleHamiltonian(a4); });

    const linalg::ReorderReport& rr = state.result.reorder;
    std::printf(
        "%-8zu %-10.4f %-10.4f %-10.4f %-10.4f %-12.4f %-10.4f %-7zu "
        "%-5zu %-10.2e\n",
        n, t["impulse-deflation"], t["nondynamic-removal"], t["proper-part"],
        tEig22, tSplit, t["pr-test"], rr.swaps, rr.rejectedSwaps,
        rr.maxResidual);
    std::fflush(stdout);
  }
  return 0;
}
