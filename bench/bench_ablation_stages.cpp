// Ablation A1 (Sec. 4 remarks): per-stage timing of the proposed pipeline.
// The paper states the bottleneck is the identification of the stable
// invariant subspace in Eq. (22); this bench verifies where the time goes.
//
// Everything here rides the telemetry surface (src/obs/) instead of
// hand-rolled timing: the per-stage numbers come from the stage
// pipeline's StageTrace records, the two sub-probes that break the
// proper-part stage down further (the Eq.-22 Hamiltonian eigenstructure
// and the Lyapunov-based split, re-run on the intermediate A4) are ObsSpan
// scopes read back from the span tracer, kernel effort per order is the
// delta of the gemm/svd counters in the metrics registry, and the peak
// column is the per-order memory high-water mark from the accountant.
//
//   bench_ablation_stages [--quick] [--trace PATH]
//     --trace PATH  additionally dump the full span timeline (stages,
//                   kernels, sub-probes) as Chrome trace-event JSON.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "api/pipeline.hpp"
#include "control/hamiltonian.hpp"
#include "obs/memory.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "shh/stable_subspace.hpp"

namespace {

// Duration of the most recent published span with this name (seconds).
double spanSeconds(const char* name) {
  const std::vector<shhpass::obs::TraceEvent> spans =
      shhpass::obs::snapshotTrace();
  for (auto it = spans.rbegin(); it != spans.rend(); ++it)
    if (std::string(it->name) == name)
      return static_cast<double>(it->durNs) * 1e-9;
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace shhpass;
  bool quick = false;
  std::string tracePath;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") quick = true;
    else if (arg == "--trace" && i + 1 < argc) tracePath = argv[++i];
  }
  std::vector<std::size_t> orders = {50, 100, 200, 400};
  if (quick) orders = {50, 100};

  obs::setTraceEnabled(true);
  obs::setMetricsEnabled(true);
  obs::setMemoryEnabled(true);

  const api::Pipeline pipeline = api::Pipeline::standard();

  std::printf(
      "# Ablation: per-stage wall time (sec) of the proposed SHH test\n"
      "# (StageTrace records), reorder health of the Eq.-(22) split\n"
      "# (swap count, rejected swaps, max accepted-swap residual), kernel\n"
      "# effort per order (gemm/svd call deltas from the metrics\n"
      "# registry), and peak live Matrix bytes (memory accountant).\n");
  std::printf(
      "%-8s %-10s %-10s %-10s %-10s %-12s %-10s %-7s %-5s %-10s %-7s "
      "%-6s %-8s\n",
      "order", "deflate", "nondyn", "proper", "eig22", "split", "pr-test",
      "swaps", "rej", "maxresid", "gemm", "svd", "peakMB");
  for (std::size_t n : orders) {
    ds::DescriptorSystem g = circuits::makeBenchmarkModel(n, true);

    const std::uint64_t gemm0 = obs::counterValue(obs::Counter::GemmCalls);
    const std::uint64_t svd0 = obs::counterValue(obs::Counter::SvdCalls);

    api::PipelineState state;
    state.input = &g;
    std::vector<api::StageTrace> traces;
    const api::Status status = pipeline.run(state, &traces);
    if (!status.ok()) {
      std::fprintf(stderr, "unexpected verdict/error at n=%zu: %s\n", n,
                   status.toString().c_str());
      continue;
    }
    std::map<std::string, double> t;
    std::size_t peakBytes = 0;
    for (const api::StageTrace& tr : traces) {
      t[tr.name] = tr.seconds;
      peakBytes = std::max(peakBytes, tr.peakBytes);
    }

    // Sub-probes inside the proper-part stage: (a) the Hamiltonian
    // eigenstructure of Eq. (22) — the claimed bottleneck — and (b) the
    // stable/antistable Lyapunov split, both re-run on the intermediate
    // A4 as ObsSpan scopes and read back from the tracer, so they land
    // on the same timeline as the stage and kernel spans they contain.
    const linalg::Matrix& a4 = state.result.properPart.a4;
    {
      obs::ObsSpan span("eig22", "ablation");
      control::stableInvariantSubspace(a4);
    }
    {
      obs::ObsSpan span("lyapunov-split", "ablation");
      shh::decoupleHamiltonian(a4);
    }
    const double tEig22 = spanSeconds("eig22");
    const double tSplit = spanSeconds("lyapunov-split");

    const linalg::ReorderReport& rr = state.result.reorder;
    std::printf(
        "%-8zu %-10.4f %-10.4f %-10.4f %-10.4f %-12.4f %-10.4f %-7zu "
        "%-5zu %-10.2e %-7llu %-6llu %-8.2f\n",
        n, t["impulse-deflation"], t["nondynamic-removal"], t["proper-part"],
        tEig22, tSplit, t["pr-test"], rr.swaps, rr.rejectedSwaps,
        rr.maxResidual,
        static_cast<unsigned long long>(
            obs::counterValue(obs::Counter::GemmCalls) - gemm0),
        static_cast<unsigned long long>(
            obs::counterValue(obs::Counter::SvdCalls) - svd0),
        static_cast<double>(peakBytes) / (1024.0 * 1024.0));
    std::fflush(stdout);
  }
  if (!tracePath.empty()) {
    if (!obs::writeTraceJson(tracePath)) {
      std::fprintf(stderr, "cannot write %s\n", tracePath.c_str());
      return 1;
    }
    std::printf("# wrote span timeline to %s\n", tracePath.c_str());
  }
  return 0;
}
