// Ablation A1 (Sec. 4 remarks): per-stage timing of the proposed pipeline.
// The paper states the bottleneck is the identification of the stable
// invariant subspace in Eq. (22); this bench verifies where the time goes.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "core/impulse_deflation.hpp"
#include "core/markov.hpp"
#include "core/nondynamic.hpp"
#include "core/phi_builder.hpp"
#include "core/proper_part.hpp"
#include "control/hamiltonian.hpp"
#include "control/pr_test.hpp"
#include "ds/balance.hpp"
#include "shh/stable_subspace.hpp"

int main(int argc, char** argv) {
  using namespace shhpass;
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--quick") quick = true;
  std::vector<std::size_t> orders = {50, 100, 200, 400};
  if (quick) orders = {50, 100};

  std::printf(
      "# Ablation: per-stage wall time (sec) of the proposed SHH test\n");
  std::printf("%-8s %-10s %-10s %-10s %-10s %-12s %-10s\n", "order",
              "deflate", "nondyn", "normalize", "eig22", "lyap+split",
              "pr-test");
  for (std::size_t n : orders) {
    ds::DescriptorSystem g = circuits::makeBenchmarkModel(n, true);
    ds::BalancedSystem bal = ds::balanceDescriptor(g);
    shh::ShhRealization phi = core::buildPhi(bal.sys);

    core::ImpulseDeflationResult s1;
    const double tDeflate =
        bench::timeSeconds([&] { s1 = core::deflateImpulseModes(phi); });
    core::NondynamicRemovalResult s2;
    const double tNondyn = bench::timeSeconds(
        [&] { s2 = core::removeNondynamicModes(s1.reduced); });
    if (!s2.impulseFree) {
      std::fprintf(stderr, "unexpected: not impulse free at n=%zu\n", n);
      continue;
    }

    // Stage 4 split: (a) triangularize+normalize, (b) the Hamiltonian
    // eigenstructure (Eq. 22 — the claimed bottleneck), (c) Lyapunov.
    core::ProperPartResult pp;
    double tEig22 = 0.0, tSplit = 0.0;
    const double tNormalizeAll =
        bench::timeSeconds([&] { pp = core::extractProperPart(s2.shh); });
    if (pp.ok) {
      tEig22 = bench::timeSeconds(
          [&] { control::stableInvariantSubspace(pp.a4); });
      tSplit = bench::timeSeconds([&] { shh::decoupleHamiltonian(pp.a4); });
    }
    const double tNormalize = tNormalizeAll - tSplit;

    const double tPr = bench::timeSeconds([&] {
      control::testPositiveRealProper(pp.lambda, pp.b1, pp.c1, pp.dHalf);
    });

    std::printf("%-8zu %-10.4f %-10.4f %-10.4f %-10.4f %-12.4f %-10.4f\n",
                n, tDeflate, tNondyn, tNormalize, tEig22, tSplit, tPr);
    std::fflush(stdout);
  }
  return 0;
}
