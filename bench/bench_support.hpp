// Shared helpers for the benchmark binaries: wall-clock timing and the
// three passivity tests under measurement (proposed SHH, Weierstrass
// baseline, LMI baseline).
//
// Determinism contract: every model a benchmark row is computed on is a
// PURE function of its printed parameters, so rows (and golden verdicts
// derived from them) are reproducible bit-for-bit across runs and
// platforms. Concretely:
//   * circuits::makeBenchmarkModel(order, impulsive) uses no randomness at
//     all — the ladder topology and element values are derived from
//     `order` alone;
//   * circuits::makeRandomRlcNetwork(nodes, seed, ...) derives every
//     random choice from the explicit `seed` via a fixed mt19937 stream —
//     same seed, same network, bit-for-bit;
//   * the wall times are the only nondeterministic column.
// Enforced by Generators.ModelGeneratorsAreBitDeterministic in
// tests/test_circuits.cpp; extend that test when adding a generator here.
#pragma once

#include <chrono>
#include <cstdio>
#include <functional>

#include "api/shhpass.hpp"
#include "ds/weierstrass.hpp"
#include "lmi/lmi_passivity.hpp"

namespace shhpass::bench {

/// Wall-clock seconds for one invocation of `fn`.
inline double timeSeconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Median-of-k timing (k small; these are macro benchmarks).
inline double timeMedian(const std::function<void()>& fn, int reps = 3) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) best = std::min(best, timeSeconds(fn));
  return best;
}

/// The three tests of Table 1 on one model. The proposed test runs through
/// the public PassivityAnalyzer engine (the timed path of production use).
inline double timeProposed(const ds::DescriptorSystem& g) {
  static const api::PassivityAnalyzer analyzer;
  return timeSeconds([&] {
    api::Result<api::AnalysisReport> r = analyzer.analyze(g);
    if (!r.ok())
      std::fprintf(stderr, "WARN: proposed test failed: %s\n",
                   r.status().toString().c_str());
    else if (!r->passive)
      std::fprintf(stderr, "WARN: proposed test: not passive\n");
  });
}

inline double timeWeierstrass(const ds::DescriptorSystem& g) {
  // The Weierstrass baseline can fail outright on large ill-conditioned
  // pencils (the separation of finite/infinite spectra breaks down); a
  // benchmark row must survive that and report the wall time of the
  // attempt.
  return timeSeconds([&] {
    try {
      ds::WeierstrassPassivityResult r = ds::testPassivityWeierstrass(g);
      if (!r.passive)
        std::fprintf(stderr, "WARN: weierstrass test: not passive\n");
    } catch (const std::exception& e) {
      std::fprintf(stderr, "WARN: weierstrass test failed: %s\n", e.what());
    }
  });
}

/// LMI baseline timing at a given model order.
///
/// The Freund-Jarre LMI is a conclusive certificate only when the system is
/// strictly feasible: it needs D + D^T > M0 + M0^T (Sec. 2.2 necessity) and
/// an impulse-free pencil (impulsive chains pin the (1,1) block of Eq. 4 to
/// the semidefinite boundary, where barrier methods cannot discriminate).
/// The LMI column is therefore timed on the impulse-free sibling of the
/// benchmark model, port-augmented with a 2-Ohm series feedthrough — the
/// same order, sparsity, and interior-point cost. See EXPERIMENTS.md.
inline double timeLmi(std::size_t order) {
  ds::DescriptorSystem g =
      circuits::makeBenchmarkModel(order, /*impulsive=*/false);
  for (std::size_t i = 0; i < g.d.rows(); ++i) g.d(i, i) += 2.0;
  return timeSeconds([&] {
    lmi::LmiPassivityResult r = lmi::testPassivityLmi(g);
    if (!r.passive) std::fprintf(stderr, "WARN: lmi test: not passive\n");
  });
}

}  // namespace shhpass::bench
