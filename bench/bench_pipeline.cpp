// Persisted benchmark trajectory of the full analyzer pipeline.
//
// Runs the public PassivityAnalyzer on the Table-1 benchmark family at a
// fixed ladder of orders, records per-stage wall times from the stage
// pipeline's StageTrace records plus reorder, Schur-eigensolver, and
// staircase deflation-chain health, measures the dense kernels (naive vs
// blocked gemm, unblocked vs blocked Hessenberg, unblocked vs blocked
// SVD, unblocked vs multishift-AED Schur, staircase vs legacy SVD
// deflation chain) in GFLOP/s, records per-stage peak live bytes from
// the memory accountant plus the telemetry-on-vs-dark observer-overhead
// row (schema v7), and writes everything as BENCH_pipeline.json.
//
// The JSON schema is documented in docs/BENCHMARKS.md; the committed
// BENCH_pipeline.json at the repository root is one trajectory point per
// PR, so future speedups land as comparable rows, not anecdotes. CI runs
// the --quick variant and validates the emitted file against the schema
// (tools/validate_bench_json.py).
//
// Usage:
//   bench_pipeline [--quick] [--reps N] [--threads N] [--out PATH]
//     --quick      orders {100} (CI smoke); default orders {100,200,400,800}
//     --reps N     timed repetitions per order, best-of (default 3; the
//                  per-stage breakdown comes from the fastest rep)
//     --threads N  enable the gemm thread pool (default 1 = serial; the
//                  committed trajectory is recorded single-threaded so
//                  rows stay comparable across machines)
//     --out PATH   output file (default BENCH_pipeline.json in the cwd)
//
// Determinism contract (bench_support.hpp): every model is a pure
// function of its printed order; wall times are the only nondeterministic
// values in the file.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/analyzer.hpp"
#include "api/json.hpp"
#include "bench_support.hpp"
#include "circuits/generators.hpp"
#include "circuits/sweep.hpp"
#include "core/impulse_deflation.hpp"
#include "core/nondynamic.hpp"
#include "core/phi_builder.hpp"
#include "linalg/blas.hpp"
#include "linalg/hessenberg.hpp"
#include "linalg/schur.hpp"
#include "linalg/svd.hpp"
#include "obs/memory.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace shhpass;

struct KernelRow {
  const char* kernel;
  std::size_t n;
  const char* variant;
  double seconds;
  double gflops;
};

// Best-of-reps kernel timing in GFLOP/s (flops given by the caller).
KernelRow timeKernel(const char* kernel, std::size_t n, const char* variant,
                     double flops, int reps,
                     const std::function<void()>& fn) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) best = std::min(best, bench::timeSeconds(fn));
  return {kernel, n, variant, best, flops / best / 1e9};
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::size_t> orders = {100, 200, 400, 800};
  int reps = 3;
  std::size_t threads = 1;
  bool quick = false;
  std::string outPath = "BENCH_pipeline.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      orders = {100};
      quick = true;
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--out" && i + 1 < argc) {
      outPath = argv[++i];
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (reps < 1) reps = 1;
  linalg::setGemmThreads(threads);  // 0 = hardware concurrency

  api::json::Writer w;
  w.beginObject();
  w.key("schema").value("shhpass-bench-pipeline");
  w.key("schemaVersion").value(std::size_t{7});
  w.key("timeUnit").value("seconds");
  w.key("gemmThreads").value(linalg::gemmThreads());
  w.key("reps").value(static_cast<std::size_t>(reps));

  // ------------------------------------------------------------- pipeline
  // Memory accounting on for the pipeline rows so every StageTrace
  // carries its high-water peakBytes (schema v7). The accountant is one
  // relaxed atomic per Matrix allocation — its cost is covered by the
  // observerOverhead row below, which times the FULL telemetry stack
  // (trace + metrics + memory) against a fully-dark run.
  obs::setMemoryEnabled(true);
  const api::PassivityAnalyzer analyzer;
  // Warmup: one full analysis at the smallest order primes allocators and
  // the CPU frequency governor before anything is timed.
  (void)analyzer.analyze(circuits::makeBenchmarkModel(orders.front(), true));

  std::printf("# shhpass bench_pipeline (reps=%d, gemmThreads=%zu)\n", reps,
              linalg::gemmThreads());
  std::printf("%-8s %-10s %-14s %-8s %-5s %-10s\n", "order", "total",
              "bottleneck", "swaps", "rej", "maxresid");

  w.key("pipeline").beginArray();
  for (std::size_t order : orders) {
    const ds::DescriptorSystem g = circuits::makeBenchmarkModel(order, true);
    std::optional<api::AnalysisReport> best;
    for (int r0 = 0; r0 < reps; ++r0) {
      api::Result<api::AnalysisReport> r = analyzer.analyze(g);
      if (!r.ok()) {
        std::fprintf(stderr, "analysis failed at order %zu: %s\n", order,
                     r.status().toString().c_str());
        return 1;
      }
      if (!best || r->totalSeconds < best->totalSeconds)
        best = std::move(r.value());
    }
    const api::AnalysisReport& rep = *best;

    const api::StageTrace* slowest = nullptr;
    for (const api::StageTrace& t : rep.stages)
      if (!slowest || t.seconds > slowest->seconds) slowest = &t;
    std::printf("%-8zu %-10.4f %-14s %-8zu %-5zu %-10.2e\n", order,
                rep.totalSeconds, slowest ? slowest->name.c_str() : "-",
                rep.reorder.swaps, rep.reorder.rejectedSwaps,
                rep.reorder.maxResidual);
    std::fflush(stdout);

    w.beginObject();
    w.key("order").value(order);
    w.key("ports").value(rep.ports);
    w.key("passive").value(rep.passive);
    w.key("properOrder").value(rep.properOrder);
    w.key("totalSeconds").value(rep.totalSeconds);
    w.key("stages").beginArray();
    for (const api::StageTrace& t : rep.stages) {
      w.beginObject();
      w.key("name").value(t.name);
      w.key("seconds").value(t.seconds);
      w.key("peakBytes").value(t.peakBytes);
      w.endObject();
    }
    w.endArray();
    w.key("reorder").beginObject();
    w.key("swaps").value(rep.reorder.swaps);
    w.key("rejectedSwaps").value(rep.reorder.rejectedSwaps);
    w.key("maxResidual").value(rep.reorder.maxResidual);
    w.key("eigenvalueDrift").value(rep.reorder.eigenvalueDrift);
    w.endObject();
    w.key("schur").beginObject();
    w.key("multishift").value(rep.schur.multishift);
    w.key("sweeps").value(rep.schur.sweeps);
    w.key("aedWindows").value(rep.schur.aedWindows);
    w.key("aedDeflations").value(rep.schur.aedDeflations);
    w.key("shiftsApplied").value(rep.schur.shiftsApplied);
    w.key("iterations").value(rep.schur.iterations);
    w.endObject();
    w.key("staircase").beginObject();
    w.key("compressions").value(rep.staircase.compressions);
    w.key("svdFallbacks").value(rep.staircase.svdFallbacks);
    w.key("diagonalFastPaths").value(rep.staircase.diagonalFastPaths);
    w.key("qrCompressions").value(rep.staircase.qrCompressions);
    w.key("skewTridiagonalizations")
        .value(rep.staircase.skewTridiagonalizations);
    w.key("reusedCompressions").value(rep.staircase.reusedCompressions);
    w.key("chainLength").value(rep.staircase.chainLength);
    w.key("truncatedSteps").value(rep.staircase.truncatedSteps);
    w.endObject();
    w.endObject();
  }
  w.endArray();

  // -------------------------------------------------------------- kernels
  // Single-matrix sizes chosen so the largest matches the top pipeline
  // order and the acceptance gates (blocked gemm >= 3x naive, blocked
  // SVD >= 2x unblocked, both at n = 800 single-threaded).
  std::vector<std::size_t> kernelSizes = orders.size() == 1
                                             ? std::vector<std::size_t>{256}
                                             : std::vector<std::size_t>{
                                                   256, 400, 800};
  std::vector<KernelRow> rows;
  std::printf("\n%-10s %-6s %-10s %-10s %-10s\n", "kernel", "n", "variant",
              "seconds", "GFLOP/s");
  for (std::size_t n : kernelSizes) {
    const linalg::Matrix a = bench::seededMatrix(n, n, 2 * n + 1);
    const linalg::Matrix b = bench::seededMatrix(n, n, 3 * n + 7);
    linalg::Matrix c(n, n);
    const double gemmFlops = 2.0 * static_cast<double>(n) * n * n;
    rows.push_back(timeKernel("gemm", n, "reference", gemmFlops, reps, [&] {
      linalg::gemmReference(1.0, a, false, b, false, 0.0, c);
    }));
    rows.push_back(timeKernel("gemm", n, "blocked", gemmFlops, reps, [&] {
      linalg::gemmBlocked(1.0, a, false, b, false, 0.0, c);
    }));
    // 10/3 n^3 for the reduction + 4/3 n^3 for the Q accumulation.
    const double hessFlops = 14.0 / 3.0 * static_cast<double>(n) * n * n;
    rows.push_back(
        timeKernel("hessenberg", n, "unblocked", hessFlops, reps,
                   [&] { linalg::hessenbergUnblocked(a); }));
    rows.push_back(timeKernel("hessenberg", n, "blocked", hessFlops, reps,
                              [&] { linalg::hessenberg(a); }));
    const double svdFlops = bench::svdNominalFlops(n);
    rows.push_back(timeKernel("svd", n, "unblocked", svdFlops, reps,
                              [&] { linalg::svdUnblocked(a); }));
    rows.push_back(timeKernel("svd", n, "blocked", svdFlops, reps,
                              [&] { linalg::svdBlocked(a); }));
    const double schurFlops = bench::schurNominalFlops(n);
    rows.push_back(timeKernel("schur", n, "unblocked", schurFlops, reps,
                              [&] { linalg::schurUnblocked(a); }));
    rows.push_back(timeKernel("schur", n, "multishift", schurFlops, reps,
                              [&] { linalg::realSchur(a); }));
    if (n == 256) {
      // Deflation chain (impulse deflation + nondynamic removal) with
      // both implementations FORCED, on the Phi pencil of the order-256
      // benchmark model. The staircase-vs-SVD-chain speedup floor
      // (>= 1.5x at this order, enforced by validate_bench_json.py) rides
      // on these two rows. Flops are nominal (the legacy chain's SVD
      // count) so the gflops column stays a consistent inverse-seconds
      // scale for both variants.
      const ds::DescriptorSystem gChain =
          circuits::makeBenchmarkModel(n, true);
      const shh::ShhRealization phi = core::buildPhi(gChain);
      const double chainFlops = 2.0 * bench::svdNominalFlops(phi.order());
      const auto runChain = [&phi](core::DeflationPath path) {
        core::ImpulseDeflationResult s1 =
            core::deflateImpulseModes(phi, -1.0, path);
        (void)core::removeNondynamicModes(s1.reduced, -1.0, path);
      };
      rows.push_back(
          timeKernel("deflation-chain", n, "staircase", chainFlops, reps,
                     [&] { runChain(core::DeflationPath::Staircase); }));
      rows.push_back(
          timeKernel("deflation-chain", n, "svd-chain", chainFlops, reps,
                     [&] { runChain(core::DeflationPath::SvdChain); }));
    }
  }
  w.key("kernels").beginArray();
  for (const KernelRow& r : rows) {
    std::printf("%-10s %-6zu %-10s %-10.4f %-10.2f\n", r.kernel, r.n,
                r.variant, r.seconds, r.gflops);
    w.beginObject();
    w.key("kernel").value(r.kernel);
    w.key("n").value(r.n);
    w.key("variant").value(r.variant);
    w.key("seconds").value(r.seconds);
    w.key("gflops").value(r.gflops);
    w.endObject();
  }
  w.endArray();

  // ------------------------------------------------ batch throughput (v5)
  // Mixed-order batch through the two-level scheduler: level 2 shards the
  // batch across work-stealing workers with per-shard gemm budgets, and
  // level 1 runs each analysis's stages as a dependency-ordered graph.
  // The baseline is the same batch through runBatch with one worker and
  // the sequential stage pipeline. Both runs are best-of-reps; the
  // scheduled results must decisionEquals the sequential ones item by
  // item (decisionMismatches is committed and must be 0 — the
  // determinism contract measured, not assumed). validate_bench_json.py
  // enforces speedup >= 2.0 only when the recorded hardwareThreads >= 8,
  // so rows from small machines stay honest without failing the gate.
  {
    const std::vector<std::size_t> batchOrders =
        quick ? std::vector<std::size_t>{40, 40, 56, 56, 96, 120}
              : std::vector<std::size_t>{40,  40,  40,  40,  56,  56,
                                         56,  96,  96,  96,  120, 120,
                                         120, 224, 224, 300};
    std::vector<api::AnalysisRequest> requests;
    requests.reserve(batchOrders.size());
    for (std::size_t i = 0; i < batchOrders.size(); ++i) {
      api::AnalysisRequest rq;
      rq.id = "mix-" + std::to_string(i);
      rq.system = circuits::makeBenchmarkModel(batchOrders[i], i % 2 == 0);
      requests.push_back(std::move(rq));
    }

    api::AnalyzerOptions seqOpts;
    seqOpts.threads = 1;
    const api::PassivityAnalyzer seqAnalyzer(seqOpts);
    std::vector<api::Result<api::AnalysisReport>> seqResults;
    double seqBest = 1e300;
    for (int r0 = 0; r0 < reps; ++r0)
      seqBest = std::min(seqBest, bench::timeSeconds([&] {
                           seqResults = seqAnalyzer.runBatch(requests);
                         }));

    api::AnalyzerOptions schedOpts;
    schedOpts.threads = 0;  // hardware concurrency
    schedOpts.stageGraph = true;
    const api::PassivityAnalyzer schedAnalyzer(schedOpts);
    std::vector<api::Result<api::AnalysisReport>> schedResults;
    double schedBest = 1e300;
    for (int r0 = 0; r0 < reps; ++r0)
      schedBest = std::min(schedBest, bench::timeSeconds([&] {
                             schedResults = schedAnalyzer.runBatch(requests);
                           }));

    std::size_t mismatches = 0;
    std::size_t batchSteals = 0, batchShards = 0, batchWorkers = 1;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (!seqResults[i].ok() || !schedResults[i].ok() ||
          !seqResults[i]->decisionEquals(*schedResults[i]))
        ++mismatches;
      if (schedResults[i].ok()) {
        batchSteals = schedResults[i]->scheduler.batchSteals;
        batchShards = schedResults[i]->scheduler.batchShards;
        batchWorkers = schedResults[i]->scheduler.batchWorkers;
      }
    }
    const std::size_t items = requests.size();
    const double seqRate = static_cast<double>(items) / seqBest;
    const double schedRate = static_cast<double>(items) / schedBest;
    const std::size_t hw =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());

    std::printf(
        "\nbatch-throughput: %zu analyses, %zu workers (hw=%zu): "
        "%.2f/s sequential -> %.2f/s scheduled (%.2fx), "
        "%zu shards, %zu steals, %zu mismatches\n",
        items, batchWorkers, hw, seqRate, schedRate, seqBest / schedBest,
        batchShards, batchSteals, mismatches);

    w.key("batchThroughput").beginObject();
    w.key("items").value(items);
    w.key("orders").beginArray();
    for (std::size_t o : batchOrders) w.value(o);
    w.endArray();
    w.key("hardwareThreads").value(hw);
    w.key("sequential").beginObject();
    w.key("workers").value(std::size_t{1});
    w.key("seconds").value(seqBest);
    w.key("analysesPerSecond").value(seqRate);
    w.endObject();
    w.key("scheduled").beginObject();
    w.key("workers").value(batchWorkers);
    w.key("stageGraph").value(true);
    w.key("batchShards").value(batchShards);
    w.key("batchSteals").value(batchSteals);
    w.key("seconds").value(schedBest);
    w.key("analysesPerSecond").value(schedRate);
    w.endObject();
    w.key("speedup").value(seqBest / schedBest);
    w.key("decisionMismatches").value(mismatches);
    w.endObject();
  }

  // ------------------------------------------------ sweep throughput (v6)
  // Parametric-sweep workload (circuits/sweep.hpp): one RLC ladder
  // netlist, its first R/L/C varied a decade in each direction, MNA
  // stamped once with only the perturbed values re-stamped per point, and
  // the whole point batch fanned through the work-stealing shard
  // scheduler. The baseline is the identical sweep on a one-worker
  // analyzer with the sequential stage pipeline. decisionMismatches
  // compares the two runs slot by slot and is committed (must be 0).
  {
    circuits::LadderOptions ladder;
    ladder.sections = 12;
    ladder.capAtPort = true;
    const circuits::Netlist net = circuits::makeRlcLadderNetlist(ladder);

    circuits::SweepSpec spec;
    spec.computeMargin = false;  // throughput of the decision path itself
    const std::size_t pointsPerAxis = quick ? 4 : 6;
    bool haveKind[3] = {false, false, false};
    for (std::size_t k = 0; k < net.components().size(); ++k) {
      const auto kind = static_cast<std::size_t>(net.components()[k].kind);
      if (haveKind[kind]) continue;
      haveKind[kind] = true;
      spec.parameters.push_back({k, 1.0, 1.0, pointsPerAxis});
    }

    api::AnalyzerOptions seqOpts;
    seqOpts.threads = 1;
    const api::PassivityAnalyzer seqAnalyzer(seqOpts);
    circuits::SweepResult seqSweep;
    double seqBest = 1e300;
    for (int r0 = 0; r0 < reps; ++r0)
      seqBest = std::min(seqBest, bench::timeSeconds([&] {
                           seqSweep =
                               circuits::runSweep(net, spec, seqAnalyzer);
                         }));

    api::AnalyzerOptions schedOpts;
    schedOpts.threads = 0;  // hardware concurrency
    schedOpts.stageGraph = true;
    const api::PassivityAnalyzer schedAnalyzer(schedOpts);
    circuits::SweepResult schedSweep;
    double schedBest = 1e300;
    for (int r0 = 0; r0 < reps; ++r0)
      schedBest = std::min(schedBest, bench::timeSeconds([&] {
                             schedSweep =
                                 circuits::runSweep(net, spec, schedAnalyzer);
                           }));

    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < seqSweep.points.size(); ++i) {
      const circuits::SweepPointResult& a = seqSweep.points[i];
      const circuits::SweepPointResult& b = schedSweep.points[i];
      if (a.ok != b.ok || (a.ok && !a.report.decisionEquals(b.report)))
        ++mismatches;
    }
    const std::size_t points = seqSweep.points.size();
    const double seqRate = static_cast<double>(points) / seqBest;
    const double schedRate = static_cast<double>(points) / schedBest;
    const std::size_t hw =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    const std::size_t order =
        points > 0 && seqSweep.points[0].ok ? seqSweep.points[0].report.order
                                            : 0;

    std::printf(
        "sweep-throughput: %zu points (order %zu, %zu axes): "
        "%.2f/s sequential -> %.2f/s scheduled (%.2fx), %zu mismatches\n",
        points, order, spec.parameters.size(), seqRate, schedRate,
        seqBest / schedBest, mismatches);

    w.key("sweepThroughput").beginObject();
    w.key("points").value(points);
    w.key("axes").value(spec.parameters.size());
    w.key("pointsPerAxis").value(pointsPerAxis);
    w.key("order").value(order);
    w.key("passiveCount").value(seqSweep.passiveCount);
    w.key("hardwareThreads").value(hw);
    w.key("sequential").beginObject();
    w.key("workers").value(std::size_t{1});
    w.key("seconds").value(seqBest);
    w.key("pointsPerSecond").value(seqRate);
    w.endObject();
    w.key("scheduled").beginObject();
    w.key("stageGraph").value(true);
    w.key("seconds").value(schedBest);
    w.key("pointsPerSecond").value(schedRate);
    w.endObject();
    w.key("speedup").value(seqBest / schedBest);
    w.key("decisionMismatches").value(mismatches);
    w.endObject();
  }

  // ----------------------------------------------- observer overhead (v7)
  // The telemetry contract (src/obs/, docs/ARCHITECTURE.md) is "near-zero
  // when off, bounded when on": this row MEASURES the bound. One analysis
  // at the top ladder order, best-of-reps, first with every telemetry
  // surface dark (trace + metrics + memory accounting all off), then with
  // all of them forced on; validate_bench_json.py enforces
  // overheadPct < 3 at order >= 400 (looser sanity ceiling on the quick
  // smoke ladder, where the run is too short to time a 3% delta).
  {
    const std::size_t order = orders.back();
    const ds::DescriptorSystem g = circuits::makeBenchmarkModel(order, true);
    obs::setTraceEnabled(false);
    obs::setMetricsEnabled(false);
    obs::setMemoryEnabled(false);
    double offBest = 1e300;
    for (int r0 = 0; r0 < reps; ++r0)
      offBest = std::min(offBest,
                         bench::timeSeconds([&] { (void)analyzer.analyze(g); }));
    obs::setTraceEnabled(true);
    obs::setMetricsEnabled(true);
    obs::setMemoryEnabled(true);
    double onBest = 1e300;
    for (int r0 = 0; r0 < reps; ++r0) {
      // Fresh span buffers each rep: the overhead being measured is the
      // record path, not an artifact of earlier reps filling the
      // fixed-capacity per-thread buffers and flipping spans into drops.
      obs::clearTrace();
      onBest = std::min(onBest,
                        bench::timeSeconds([&] { (void)analyzer.analyze(g); }));
    }
    obs::setTraceEnabled(false);
    obs::setMetricsEnabled(false);
    const double overheadPct = (onBest - offBest) / offBest * 100.0;

    std::printf(
        "observer-overhead: order %zu: %.4fs dark -> %.4fs telemetry-on "
        "(%.2f%%)\n",
        order, offBest, onBest, overheadPct);

    w.key("observerOverhead").beginObject();
    w.key("order").value(order);
    w.key("darkSeconds").value(offBest);
    w.key("telemetrySeconds").value(onBest);
    w.key("overheadPct").value(overheadPct);
    w.endObject();
  }
  w.endObject();

  std::FILE* f = std::fopen(outPath.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s for writing\n", outPath.c_str());
    return 1;
  }
  std::fputs(w.str().c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("\nwrote %s\n", outPath.c_str());
  return 0;
}
