// Micro-benchmarks (google-benchmark) of the numerical kernels underneath
// the passivity tests: blocked vs reference gemm, blocked vs unblocked
// Hessenberg, blocked vs unblocked SVD, multishift-AED vs unblocked real
// Schur, reordering, the isotropic-Arnoldi reduction, and the stage-1
// deflation. Useful for tracking the O(n^3)
// scaling claims at the kernel level. (bench_pipeline is the
// dependency-free macro harness that persists BENCH_pipeline.json; this
// binary is for interactive kernel iteration.)
#include <benchmark/benchmark.h>

#include "bench_support.hpp"
#include "circuits/generators.hpp"
#include "core/impulse_deflation.hpp"
#include "core/phi_builder.hpp"
#include "linalg/blas.hpp"
#include "linalg/hessenberg.hpp"
#include "linalg/schur.hpp"
#include "linalg/schur_reorder.hpp"
#include "linalg/svd.hpp"
#include "shh/isotropic_arnoldi.hpp"

namespace {

using namespace shhpass;
using linalg::Matrix;

Matrix randomMatrix(std::size_t n, unsigned seed) {
  // The pinned xorshift64* stream of bench_support.hpp — std
  // distributions are banned tree-wide (tools/lint_invariants.py).
  return bench::seededMatrix(n, n, seed);
}

Matrix randomSkewHamiltonian(std::size_t half, unsigned seed) {
  Matrix a = randomMatrix(half, seed);
  Matrix g = randomMatrix(half, seed + 1);
  Matrix q = randomMatrix(half, seed + 2);
  Matrix w(2 * half, 2 * half);
  w.setBlock(0, 0, a);
  w.setBlock(0, half, g - g.transposed());
  w.setBlock(half, 0, q - q.transposed());
  w.setBlock(half, half, a.transposed());
  return w;
}

void BM_GemmReference(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Matrix a = randomMatrix(n, 40), b = randomMatrix(n, 41), c(n, n);
  for (auto _ : state) {
    linalg::gemmReference(1.0, a, false, b, false, 0.0, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetComplexityN(state.range(0));
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * n * n * n * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmReference)->RangeMultiplier(2)->Range(64, 512)->Complexity();

void BM_GemmBlocked(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Matrix a = randomMatrix(n, 40), b = randomMatrix(n, 41), c(n, n);
  for (auto _ : state) {
    linalg::gemmBlocked(1.0, a, false, b, false, 0.0, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetComplexityN(state.range(0));
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * n * n * n * state.iterations() / 1e9, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmBlocked)->RangeMultiplier(2)->Range(64, 512)->Complexity();

void BM_HessenbergUnblocked(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Matrix a = randomMatrix(n, 46);
  for (auto _ : state) {
    auto hr = linalg::hessenbergUnblocked(a);
    benchmark::DoNotOptimize(hr.h);
  }
  state.SetComplexityN(state.range(0));
}
// Ranges start at kHessenbergCrossover: below it hessenberg() dispatches
// to the unblocked kernel and the comparison would be self-vs-self.
BENCHMARK(BM_HessenbergUnblocked)
    ->RangeMultiplier(2)
    ->Range(128, 512)
    ->Complexity();

void BM_HessenbergBlocked(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Matrix a = randomMatrix(n, 46);
  for (auto _ : state) {
    auto hr = linalg::hessenberg(a);
    benchmark::DoNotOptimize(hr.h);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_HessenbergBlocked)
    ->RangeMultiplier(2)
    ->Range(128, 512)
    ->Complexity();

void BM_SvdUnblocked(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Matrix a = randomMatrix(n, 42);
  for (auto _ : state) {
    linalg::SVD svd = linalg::svdUnblocked(a);
    benchmark::DoNotOptimize(svd.singularValues());
  }
  state.SetComplexityN(state.range(0));
  state.counters["GFLOP/s"] =
      benchmark::Counter(bench::svdNominalFlops(n) * state.iterations() / 1e9,
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SvdUnblocked)->RangeMultiplier(2)->Range(128, 256)->Complexity();

void BM_SvdBlocked(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Matrix a = randomMatrix(n, 42);
  for (auto _ : state) {
    linalg::SVD svd = linalg::svdBlocked(a);
    benchmark::DoNotOptimize(svd.singularValues());
  }
  state.SetComplexityN(state.range(0));
  state.counters["GFLOP/s"] =
      benchmark::Counter(bench::svdNominalFlops(n) * state.iterations() / 1e9,
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SvdBlocked)->RangeMultiplier(2)->Range(128, 512)->Complexity();

void BM_SchurUnblocked(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Matrix a = randomMatrix(n, 43);
  for (auto _ : state) {
    auto rs = linalg::schurUnblocked(a);
    benchmark::DoNotOptimize(rs.t);
  }
  state.SetComplexityN(state.range(0));
  state.counters["GFLOP/s"] = benchmark::Counter(
      bench::schurNominalFlops(n) * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
// Ranges start at kSchurCrossover: below it realSchur() dispatches to the
// unblocked kernel and the comparison would be self-vs-self.
BENCHMARK(BM_SchurUnblocked)
    ->RangeMultiplier(2)
    ->Range(128, 512)
    ->Complexity();

void BM_SchurMultishift(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Matrix a = randomMatrix(n, 43);
  for (auto _ : state) {
    auto rs = linalg::realSchur(a);
    benchmark::DoNotOptimize(rs.t);
  }
  state.SetComplexityN(state.range(0));
  state.counters["GFLOP/s"] = benchmark::Counter(
      bench::schurNominalFlops(n) * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SchurMultishift)
    ->RangeMultiplier(2)
    ->Range(128, 512)
    ->Complexity();

void BM_RealSchur(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Matrix a = randomMatrix(n, 43);
  for (auto _ : state) {
    auto rs = linalg::realSchur(a);
    benchmark::DoNotOptimize(rs.t);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RealSchur)->RangeMultiplier(2)->Range(16, 128)->Complexity();

void BM_SchurReorder(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Matrix a = randomMatrix(n, 44);
  auto rs = linalg::realSchur(a);
  for (auto _ : state) {
    Matrix t = rs.t, q = rs.q;
    linalg::reorderSchur(t, q,
                         [](std::complex<double> l) { return l.real() < 0; });
    benchmark::DoNotOptimize(t);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SchurReorder)->RangeMultiplier(2)->Range(16, 128)->Complexity();

void BM_IsotropicArnoldi(benchmark::State& state) {
  const std::size_t half = static_cast<std::size_t>(state.range(0));
  Matrix w = randomSkewHamiltonian(half, 45);
  for (auto _ : state) {
    auto tri = shh::skewHamiltonianBlockTriangularize(w);
    benchmark::DoNotOptimize(tri.w);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_IsotropicArnoldi)
    ->RangeMultiplier(2)
    ->Range(16, 128)
    ->Complexity();

void BM_ImpulseDeflation(benchmark::State& state) {
  const std::size_t order = static_cast<std::size_t>(state.range(0));
  ds::DescriptorSystem g = circuits::makeBenchmarkModel(order, true);
  shh::ShhRealization phi = core::buildPhi(g);
  for (auto _ : state) {
    auto s1 = core::deflateImpulseModes(phi);
    benchmark::DoNotOptimize(s1.removed);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ImpulseDeflation)
    ->RangeMultiplier(2)
    ->Range(16, 64)
    ->Complexity();

}  // namespace

BENCHMARK_MAIN();
