// Table 1 of the paper: CPU times (seconds) of the three DS passivity
// tests on RLC circuit models of increasing order.
//
//   Model order | LMI test | Proposed method | Weierstrass decomposition
//   20, 40, 60, 80, 100, 200, 400
//
// The LMI test column reports NIL beyond a size cap, mirroring the paper
// (there the 2006 solver ran out of physical memory at order 70; here the
// O(n^5)-O(n^6) interior-point cost exceeds the benchmark's time budget —
// set SHHPASS_LMI_MAX to raise the cap and measure larger orders).
//
// Absolute numbers differ from the paper's 2.8 GHz PC + Matlab 7 setup;
// the shape to verify is: LMI >> both O(n^3) tests and infeasible early;
// proposed and Weierstrass comparable, proposed ahead at large order.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_support.hpp"

int main(int argc, char** argv) {
  using namespace shhpass;
  std::size_t lmiMax = 40;
  if (const char* env = std::getenv("SHHPASS_LMI_MAX"))
    lmiMax = static_cast<std::size_t>(std::atoi(env));
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--quick") quick = true;

  const std::size_t orders[] = {20, 40, 60, 80, 100, 200, 400};
  std::printf("# Table 1: CPU times (sec) for different passivity tests\n");
  std::printf("# RLC ladder models with impulsive modes (see DESIGN.md)\n");
  std::printf("%-12s %-12s %-14s %-14s\n", "order", "LMI", "Proposed",
              "Weierstrass");
  for (std::size_t n : orders) {
    if (quick && n > 100) break;
    ds::DescriptorSystem g = circuits::makeBenchmarkModel(n, /*impulsive=*/true);
    const double tProp = bench::timeProposed(g);
    const double tWei = bench::timeWeierstrass(g);
    if (n <= lmiMax) {
      const double tLmi = bench::timeLmi(n);
      std::printf("%-12zu %-12.4f %-14.4f %-14.4f\n", n, tLmi, tProp, tWei);
    } else {
      std::printf("%-12zu %-12s %-14.4f %-14.4f\n", n, "NIL", tProp, tWei);
    }
    std::fflush(stdout);
  }
  return 0;
}
