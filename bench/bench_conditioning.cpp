// Ablation A2 (Sec. 2.4 / Sec. 4 remarks): conditioning of the transforms.
// The paper argues that the Weierstrass route "generally involves
// ill-conditioned and non-orthogonal transformations" while the proposed
// test uses numerically well-conditioned orthogonal transformations
// wherever possible. This bench measures, per model order:
//   * condition numbers of the Weierstrass left/right transforms,
//   * condition number of the proposed pipeline's only non-orthogonal
//     factor (the skew-Hamiltonian normalizer K of Eq. 21),
//   * the transfer-function reproduction error of each decomposition.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "core/impulse_deflation.hpp"
#include "core/nondynamic.hpp"
#include "core/phi_builder.hpp"
#include "core/proper_part.hpp"
#include "ds/balance.hpp"

namespace {

using namespace shhpass;
using linalg::Matrix;

// Max relative deviation of Phi(jw) reproduced by the extracted stable
// proper part Hp: Phi = Hp + Hp~.
double properPartError(const ds::DescriptorSystem& gBal,
                       const core::ProperPartResult& pp) {
  ds::DescriptorSystem hp;
  hp.e = Matrix::identity(pp.lambda.rows());
  hp.a = pp.lambda;
  hp.b = pp.b1;
  hp.c = pp.c1;
  hp.d = pp.dHalf;
  ds::DescriptorSystem phi = ds::add(gBal, ds::adjoint(gBal));
  double worst = 0.0;
  for (double w : {0.1, 1.0, 10.0, 100.0}) {
    ds::TransferValue hv = ds::evalTransfer(hp, 0.0, w);
    ds::TransferValue pv = ds::evalTransfer(phi, 0.0, w);
    Matrix herm = hv.re + hv.re.transposed();
    const double scale = std::max(1.0, pv.re.maxAbs());
    worst = std::max(worst, (herm - pv.re).maxAbs() / scale);
  }
  return worst;
}

// Max relative deviation of G(jw) reproduced by the Weierstrass form.
double weierstrassError(const ds::DescriptorSystem& g,
                        const ds::WeierstrassForm& wf) {
  ds::DescriptorSystem proper;
  proper.e = Matrix::identity(wf.numFinite());
  proper.a = wf.ap;
  proper.b = wf.bp;
  proper.c = wf.cp;
  proper.d = wf.d;
  double worst = 0.0;
  for (double w : {0.1, 1.0, 10.0, 100.0}) {
    ds::TransferValue gv = ds::evalTransfer(g, 0.0, w);
    ds::TransferValue pv = ds::evalTransfer(proper, 0.0, w);
    // Add the polynomial part from the Markov parameters (index <= 2).
    auto mk = wf.markovParameters(2);
    Matrix re = pv.re + mk[0];
    Matrix im = pv.im + w * mk[1];
    const double scale = std::max(1.0, gv.re.maxAbs());
    worst = std::max(worst,
                     std::max((re - gv.re).maxAbs(), (im - gv.im).maxAbs()) /
                         scale);
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--quick") quick = true;
  std::vector<std::size_t> orders = {20, 40, 80, 120, 200};
  if (quick) orders = {20, 40, 80};

  std::printf("# Conditioning of transforms: Weierstrass vs proposed\n");
  std::printf("%-8s %-13s %-13s %-13s %-13s %-13s\n", "order", "cond(Wei-L)",
              "cond(Wei-R)", "cond(K-prop)", "err(Wei)", "err(proposed)");
  for (std::size_t n : orders) {
    ds::DescriptorSystem g = circuits::makeBenchmarkModel(n, true);
    ds::BalancedSystem bal = ds::balanceDescriptor(g);

    ds::WeierstrassForm wf = ds::weierstrass(bal.sys);
    const double errW = weierstrassError(bal.sys, wf);

    shh::ShhRealization phi = core::buildPhi(bal.sys);
    core::ImpulseDeflationResult s1 = core::deflateImpulseModes(phi);
    core::NondynamicRemovalResult s2 = core::removeNondynamicModes(s1.reduced);
    double condK = std::nan(""), errP = std::nan("");
    if (s2.impulseFree) {
      core::ProperPartResult pp = core::extractProperPart(s2.shh);
      if (pp.ok) {
        condK = pp.condNormalizer;
        errP = properPartError(bal.sys, pp);
      }
    }
    std::printf("%-8zu %-13.3e %-13.3e %-13.3e %-13.3e %-13.3e\n", n,
                wf.condLeft, wf.condRight, condK, errW, errP);
    std::fflush(stdout);
  }
  return 0;
}
