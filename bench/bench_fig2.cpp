// Fig. 2 of the paper: two data series.
//   (top)    log-scale CPU times of all three tests vs model order;
//   (bottom) linear-scale CPU times of the proposed test vs the
//            Weierstrass decomposition up to order 400.
// Emits both series as whitespace-separated columns ready for plotting.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_support.hpp"

int main(int argc, char** argv) {
  using namespace shhpass;
  std::size_t lmiMax = 20;
  if (const char* env = std::getenv("SHHPASS_LMI_MAX"))
    lmiMax = static_cast<std::size_t>(std::atoi(env));
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--quick") quick = true;

  std::vector<std::size_t> orders = {20, 40, 60, 80, 100, 150, 200, 300, 400};
  if (quick) orders = {20, 40, 60, 80, 100};

  std::printf("# Fig 2 (top): CPU times, all tests (log scale when plotted)\n");
  std::printf("%-10s %-12s %-14s %-14s\n", "order", "lmi", "proposed",
              "weierstrass");
  std::vector<double> tp(orders.size()), tw(orders.size());
  for (std::size_t i = 0; i < orders.size(); ++i) {
    const std::size_t n = orders[i];
    ds::DescriptorSystem g = circuits::makeBenchmarkModel(n, true);
    tp[i] = bench::timeProposed(g);
    tw[i] = bench::timeWeierstrass(g);
    if (n <= lmiMax)
      std::printf("%-10zu %-12.4f %-14.4f %-14.4f\n", n,
                  bench::timeLmi(n), tp[i], tw[i]);
    else
      std::printf("%-10zu %-12s %-14.4f %-14.4f\n", n, "nan", tp[i], tw[i]);
    std::fflush(stdout);
  }

  std::printf("\n# Fig 2 (bottom): proposed vs Weierstrass (linear scale)\n");
  std::printf("%-10s %-14s %-14s %-10s\n", "order", "proposed",
              "weierstrass", "ratio");
  for (std::size_t i = 0; i < orders.size(); ++i)
    std::printf("%-10zu %-14.4f %-14.4f %-10.3f\n", orders[i], tp[i], tw[i],
                tw[i] / std::max(tp[i], 1e-12));
  return 0;
}
