// Tests for the Bartels-Stewart Sylvester and Lyapunov solvers.
#include <gtest/gtest.h>

#include "control/lyapunov.hpp"
#include "control/sylvester.hpp"
#include "linalg/blas.hpp"
#include "linalg/schur.hpp"
#include "linalg/symmetric_eig.hpp"
#include "test_support.hpp"

namespace shhpass::control {
namespace {

using linalg::Matrix;
using testing::expectMatrixNear;
using testing::randomMatrix;
using testing::randomStable;
using testing::randomSymmetric;

TEST(Sylvester, SolvesKnownSmall) {
  Matrix a{{1, 0}, {0, 2}};
  Matrix b{{3, 0}, {0, 4}};
  // With diagonal coefficients, x_ij = c_ij / (a_ii + b_jj).
  Matrix c{{4, 5}, {5, 6}};
  Matrix x = solveSylvester(a, b, c);
  expectMatrixNear(x, Matrix{{1, 1}, {1, 1}}, 1e-12);
}

TEST(Sylvester, ResidualRandomSquare) {
  Matrix a = randomStable(8, 201);
  Matrix b = randomStable(8, 202);
  Matrix c = randomMatrix(8, 8, 203);
  Matrix x = solveSylvester(a, b, c);
  expectMatrixNear(a * x + x * b, c, 1e-8 * std::max(1.0, c.maxAbs()));
}

TEST(Sylvester, RectangularUnknown) {
  Matrix a = randomStable(6, 204);
  Matrix b = randomStable(3, 205);
  Matrix c = randomMatrix(6, 3, 206);
  Matrix x = solveSylvester(a, b, c);
  EXPECT_EQ(x.rows(), 6u);
  EXPECT_EQ(x.cols(), 3u);
  expectMatrixNear(a * x + x * b, c, 1e-9);
}

TEST(Sylvester, ComplexSpectraCoefficients) {
  // Rotation-heavy coefficients exercise the 2x2-block path.
  Matrix a{{-1, 5}, {-5, -1}};
  Matrix b{{-2, 7, 0}, {-7, -2, 0}, {0, 0, -3}};
  Matrix c = randomMatrix(2, 3, 207);
  Matrix x = solveSylvester(a, b, c);
  expectMatrixNear(a * x + x * b, c, 1e-10);
}

TEST(Sylvester, SingularWhenSpectraOverlap) {
  // spec(A) = {1}, spec(-B) = {1}: singular equation.
  Matrix a{{1.0}};
  Matrix b{{-1.0}};
  Matrix c{{1.0}};
  EXPECT_THROW(solveSylvester(a, b, c), std::runtime_error);
}

TEST(Sylvester, QuasiTriangularDirect) {
  Matrix s = linalg::realSchur(randomStable(7, 208)).t;
  Matrix t = linalg::realSchur(randomStable(5, 209)).t;
  Matrix f = randomMatrix(7, 5, 210);
  Matrix y = solveSylvesterQuasiTriangular(s, t, f);
  expectMatrixNear(s * y + y * t, f, 1e-9);
}

TEST(Sylvester, EmptyDimensions) {
  Matrix x = solveSylvester(Matrix{}, Matrix{}, Matrix{});
  EXPECT_TRUE(x.empty());
}

TEST(Lyapunov, QuasiTriangularFastPathsMatchGeneralSolver) {
  // Coefficients that are a real Schur factor (or the transpose of one)
  // take the back-substitution-only fast paths; the solutions must agree
  // with the general Bartels-Stewart path to solver accuracy.
  Matrix a = randomStable(12, 230);
  linalg::RealSchurResult rs = linalg::realSchur(a);
  Matrix q = randomSymmetric(12, 231);
  ASSERT_TRUE(isQuasiTriangular(rs.t));
  ASSERT_FALSE(isQuasiTriangular(Matrix(rs.t.transposed())));
  const double scale = std::max(1.0, q.maxAbs());
  // Upper orientation: S Y + Y S^T + Q = 0.
  Matrix yUpper = solveLyapunov(rs.t, q);
  expectMatrixNear(rs.t * yUpper + linalg::abt(yUpper, rs.t) + q,
                   Matrix(12, 12), 1e-9 * scale);
  // Lower orientation (the observability-Gramian shape):
  // S^T Y + Y S + Q = 0.
  Matrix st = rs.t.transposed();
  Matrix yLower = solveLyapunov(st, q);
  expectMatrixNear(st * yLower + yLower * rs.t + q, Matrix(12, 12),
                   1e-9 * scale);
  // Both agree with the general solver run on the same equations.
  expectMatrixNear(yUpper, solveSylvester(rs.t, st, -1.0 * q),
                   1e-8 * std::max(1.0, yUpper.maxAbs()));
  expectMatrixNear(yLower, solveSylvester(st, rs.t, -1.0 * q),
                   1e-8 * std::max(1.0, yLower.maxAbs()));
}

TEST(Lyapunov, ResidualAndSymmetry) {
  Matrix a = randomStable(9, 211);
  Matrix q = randomSymmetric(9, 212);
  Matrix y = solveLyapunov(a, q);
  EXPECT_TRUE(y.isSymmetric(1e-9 * std::max(1.0, y.maxAbs())));
  Matrix resid = a * y + y * a.transposed() + q;
  EXPECT_LT(resid.maxAbs(), 1e-8 * std::max(1.0, q.maxAbs()));
}

TEST(Lyapunov, GramianIsPsdForStableSystem) {
  // Controllability Gramian: A W + W A^T + B B^T = 0 with A stable => W >= 0.
  Matrix a = randomStable(6, 213);
  Matrix b = randomMatrix(6, 2, 214);
  Matrix w = solveLyapunov(a, linalg::abt(b, b));
  linalg::SymmetricEig eig(w, false);
  EXPECT_GE(eig.eigenvalues().front(), -1e-10);
}

TEST(Lyapunov, KnownScalar) {
  // a y + y a + q = 0 with a = -2, q = 8 -> y = 2.
  Matrix y = solveLyapunov(Matrix{{-2.0}}, Matrix{{8.0}});
  EXPECT_NEAR(y(0, 0), 2.0, 1e-12);
}

}  // namespace
}  // namespace shhpass::control
