// Tests for the SHH machinery: symplectic helpers, Phi construction,
// the isotropic-Arnoldi block-triangularization, and the Hamiltonian
// decoupling.
#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "control/hamiltonian.hpp"
#include "core/phi_builder.hpp"
#include "ds/descriptor.hpp"
#include "linalg/blas.hpp"
#include "linalg/schur.hpp"
#include "shh/isotropic_arnoldi.hpp"
#include "shh/stable_subspace.hpp"
#include "shh/symplectic.hpp"
#include "test_support.hpp"

namespace shhpass::shh {
namespace {

using linalg::Matrix;
using testing::expectMatrixNear;
using testing::randomMatrix;
using testing::randomStable;
using testing::randomSymmetric;

// Random skew-Hamiltonian matrix [A G; Q A^T], G, Q skew.
Matrix randomSkewHamiltonian(std::size_t n, unsigned seed) {
  Matrix a = randomMatrix(n, n, seed);
  Matrix g = randomMatrix(n, n, seed + 1);
  Matrix q = randomMatrix(n, n, seed + 2);
  Matrix w(2 * n, 2 * n);
  w.setBlock(0, 0, a);
  w.setBlock(0, n, g - g.transposed());
  w.setBlock(n, 0, q - q.transposed());
  w.setBlock(n, n, a.transposed());
  return w;
}

TEST(Symplectic, ApplyJMatchesMatrix) {
  Matrix x = randomMatrix(6, 2, 601);
  Matrix j = Matrix::symplecticJ(3);
  expectMatrixNear(applyJ(x), j * x, 1e-14);
  expectMatrixNear(applyJt(x), j.transposed() * x, 1e-14);
  expectMatrixNear(applyJ(applyJ(x)), -1.0 * x, 1e-14);
}

TEST(Symplectic, Predicates) {
  EXPECT_TRUE(isOrthogonalSymplectic(Matrix::identity(4)));
  EXPECT_TRUE(isOrthogonalSymplectic(Matrix::symplecticJ(2)));
  EXPECT_FALSE(isOrthogonalSymplectic(2.0 * Matrix::identity(4)));
  // [I Y; 0 I] with symmetric Y is symplectic but not orthogonal.
  Matrix s = Matrix::identity(6);
  s.setBlock(0, 3, randomSymmetric(3, 602));
  EXPECT_TRUE(isSymplectic(s));
  EXPECT_FALSE(isOrthogonalSymplectic(s));
  // Skew upper-right block is NOT symplectic.
  Matrix bad = Matrix::identity(6);
  Matrix k = randomMatrix(3, 3, 603);
  bad.setBlock(0, 3, k - k.transposed() + Matrix::identity(3) * 0.0);
  if (!bad.block(0, 3, 3, 3).isSymmetric(1e-12))
    EXPECT_FALSE(isSymplectic(bad));
}

TEST(PhiBuilder, StructureHolds) {
  circuits::LadderOptions opt;
  opt.sections = 3;
  ds::DescriptorSystem g = circuits::makeRlcLadder(opt);
  core::buildPhi(g);
  shh::ShhRealization phi = core::buildPhi(g);
  EXPECT_EQ(phi.order(), 2 * g.order());
  EXPECT_TRUE(phi.checkStructure());
}

TEST(PhiBuilder, TransferIsGPlusAdjoint) {
  circuits::LadderOptions opt;
  opt.sections = 2;
  opt.capAtPort = true;
  ds::DescriptorSystem g = circuits::makeRlcLadder(opt);
  shh::ShhRealization phi = core::buildPhi(g);
  ds::DescriptorSystem phiDs = phi.toDescriptor();
  ds::DescriptorSystem phiRef = ds::add(g, ds::adjoint(g));
  for (double w : {0.3, 2.0, 40.0}) {
    ds::TransferValue a = ds::evalTransfer(phiDs, 0.0, w);
    ds::TransferValue b = ds::evalTransfer(phiRef, 0.0, w);
    expectMatrixNear(a.re, b.re, 1e-9);
    expectMatrixNear(a.im, b.im, 1e-9);
  }
}

TEST(PhiBuilder, RejectsNonSquare) {
  ds::DescriptorSystem g;
  g.e = Matrix::identity(2);
  g.a = -1.0 * Matrix::identity(2);
  g.b = Matrix(2, 1, 1.0);
  g.c = Matrix(2, 2, 1.0);
  g.d = Matrix(2, 1);
  EXPECT_THROW(core::buildPhi(g), std::invalid_argument);
}

TEST(IsotropicArnoldi, BlockTriangularizesRandomSkewHamiltonian) {
  for (std::size_t n : {1u, 2u, 3u, 5u, 8u}) {
    Matrix w = randomSkewHamiltonian(n, 610 + static_cast<unsigned>(n));
    SkewHamiltonianTriangularization tri =
        skewHamiltonianBlockTriangularize(w);
    EXPECT_TRUE(isOrthogonalSymplectic(tri.z, 1e-9)) << "n=" << n;
    // Z^T W Z reproduces the stored block form.
    Matrix ztwz = linalg::multiply(linalg::atb(tri.z, w), false, tri.z,
                                   false);
    expectMatrixNear(ztwz, tri.w, 1e-8 * std::max(1.0, w.maxAbs()));
    // Lower-left block zero; W22 = W11^T; Theta skew; Ebar Hessenberg.
    Matrix ll = tri.w.block(n, 0, n, n);
    EXPECT_EQ(ll.maxAbs(), 0.0);
    expectMatrixNear(tri.w.block(n, n, n, n), tri.ebar().transposed(), 0.0);
    EXPECT_TRUE(tri.theta().isSkewSymmetric(0.0));
    for (std::size_t i = 2; i < n; ++i)
      for (std::size_t j = 0; j + 1 < i; ++j)
        EXPECT_EQ(tri.ebar()(i, j), 0.0);
  }
}

TEST(IsotropicArnoldi, PreservesSkewHamiltonianStructure) {
  Matrix w = randomSkewHamiltonian(6, 620);
  SkewHamiltonianTriangularization tri = skewHamiltonianBlockTriangularize(w);
  EXPECT_TRUE(control::isSkewHamiltonian(tri.w, 1e-9));
}

TEST(IsotropicArnoldi, RejectsOddSize) {
  EXPECT_THROW(skewHamiltonianBlockTriangularize(Matrix::identity(3)),
               std::invalid_argument);
}

TEST(HamiltonianDecouplingTest, BlockDiagonalizes) {
  const std::size_t np = 4;
  Matrix a = randomStable(np, 630);
  Matrix b = randomMatrix(np, 2, 631);
  Matrix c = randomMatrix(2, np, 632);
  Matrix h = control::makeHamiltonian(a, -1.0 * linalg::abt(b, b),
                                      -1.0 * linalg::atb(c, c));
  HamiltonianDecoupling dec = decoupleHamiltonian(h);
  ASSERT_TRUE(dec.ok);
  EXPECT_TRUE(isSymplectic(dec.z2, 1e-8));
  expectMatrixNear(dec.z2inv * dec.z2, Matrix::identity(2 * np), 1e-9);
  Matrix t = dec.z2inv * h * dec.z2;
  // Block diagonal diag(Lambda, -Lambda^T).
  expectMatrixNear(t.block(0, 0, np, np), dec.lambda, 1e-7);
  expectMatrixNear(t.block(np, np, np, np),
                   -1.0 * dec.lambda.transposed(), 1e-7);
  EXPECT_LT(t.block(0, np, np, np).maxAbs(), 1e-7 * std::max(1.0, h.maxAbs()));
  EXPECT_LT(t.block(np, 0, np, np).maxAbs(), 1e-7 * std::max(1.0, h.maxAbs()));
  // Lambda stable.
  for (const auto& l : linalg::eigenvalues(dec.lambda))
    EXPECT_LT(l.real(), 0.0);
}

TEST(HamiltonianDecouplingTest, FailsOnAxisSpectrum) {
  EXPECT_FALSE(decoupleHamiltonian(Matrix::symplecticJ(2)).ok);
}

}  // namespace
}  // namespace shhpass::shh
