// Tests for the Weierstrass decomposition and the baseline passivity test
// built on it.
#include <gtest/gtest.h>

#include <cmath>

#include "circuits/generators.hpp"
#include "ds/impulse_tests.hpp"
#include "ds/weierstrass.hpp"
#include "test_support.hpp"

namespace shhpass::ds {
namespace {

using linalg::Matrix;
using testing::expectMatrixNear;

// Reference: evaluate the Weierstrass form's transfer function explicitly
// at s = jw and compare with the original system.
void expectSameTransfer(const DescriptorSystem& sys, const WeierstrassForm& wf,
                        double w, double tol) {
  TransferValue gOrig = evalTransfer(sys, 0.0, w);
  // Proper part via a descriptor wrapper.
  DescriptorSystem proper;
  proper.e = Matrix::identity(wf.numFinite());
  proper.a = wf.ap;
  proper.b = wf.bp;
  proper.c = wf.cp;
  proper.d = wf.d;
  TransferValue g = evalTransfer(proper, 0.0, w);
  // Infinite part: Cinf (jw N - I)^{-1} Binf = -Cinf (sum (jw)^k N^k) Binf.
  const std::size_t k = wf.numInfinite();
  if (k > 0) {
    Matrix re = g.re, im = g.im;
    // Accumulate -Cinf N^p Binf * (jw)^p.
    Matrix power = Matrix::identity(k);
    double jwRe = 1.0, jwIm = 0.0;
    for (std::size_t p = 0; p <= k; ++p) {
      Matrix term = -1.0 * (wf.cinf * power * wf.binf);
      re += jwRe * term;
      im += jwIm * term;
      power = power * wf.n;
      const double nr = -jwIm * w, ni = jwRe * w;  // multiply by jw
      jwRe = nr;
      jwIm = ni;
    }
    g.re = re;
    g.im = im;
  }
  expectMatrixNear(gOrig.re, g.re, tol);
  expectMatrixNear(gOrig.im, g.im, tol);
}

TEST(Weierstrass, FirstOrderRegularSystem) {
  DescriptorSystem sys;
  sys.e = Matrix{{2.0}};
  sys.a = Matrix{{-4.0}};
  sys.b = Matrix{{1.0}};
  sys.c = Matrix{{1.0}};
  sys.d = Matrix{{0.0}};
  WeierstrassForm wf = weierstrass(sys);
  EXPECT_EQ(wf.numFinite(), 1u);
  EXPECT_EQ(wf.numInfinite(), 0u);
  // G(s) = 1/(2s+4) -> pole at -2.
  EXPECT_NEAR(wf.ap(0, 0), -2.0, 1e-9);
  expectSameTransfer(sys, wf, 0.7, 1e-9);
}

TEST(Weierstrass, PureDifferentiator) {
  DescriptorSystem sys;
  sys.e = Matrix{{0.0, 1.0}, {0.0, 0.0}};
  sys.a = Matrix::identity(2);
  sys.b = Matrix{{0.0}, {1.0}};
  sys.c = Matrix{{-1.0, 0.0}};
  sys.d = Matrix{{0.0}};
  WeierstrassForm wf = weierstrass(sys);
  EXPECT_EQ(wf.numFinite(), 0u);
  EXPECT_EQ(wf.numInfinite(), 2u);
  auto mk = wf.markovParameters(3);
  EXPECT_NEAR(mk[0](0, 0), 0.0, 1e-9);  // M0
  EXPECT_NEAR(mk[1](0, 0), 1.0, 1e-9);  // M1 = 1 (G = s)
  EXPECT_NEAR(mk[2](0, 0), 0.0, 1e-9);  // M2
}

TEST(Weierstrass, NilpotencyOfN) {
  circuits::LadderOptions opt;
  opt.sections = 4;
  DescriptorSystem sys = circuits::makeRlcLadder(opt);
  WeierstrassForm wf = weierstrass(sys);
  const std::size_t k = wf.numInfinite();
  ASSERT_GT(k, 0u);
  // N^k == 0 exactly (strictly upper triangular by construction).
  Matrix power = Matrix::identity(k);
  for (std::size_t p = 0; p < k; ++p) power = power * wf.n;
  EXPECT_EQ(power.maxAbs(), 0.0);
}

TEST(Weierstrass, TransferMatchOnLadder) {
  circuits::LadderOptions opt;
  opt.sections = 3;
  opt.capAtPort = true;
  DescriptorSystem sys = circuits::makeRlcLadder(opt);
  WeierstrassForm wf = weierstrass(sys);
  EXPECT_EQ(wf.numFinite() + wf.numInfinite(), sys.order());
  for (double w : {0.0, 0.3, 2.0, 50.0})
    expectSameTransfer(sys, wf, w, 1e-6 * (1.0 + w));
}

TEST(Weierstrass, ImpulsiveLadderM1IsInductance) {
  // Port without shunt cap: Z(s) ~ s*l at infinity, so M1 = l.
  circuits::LadderOptions opt;
  opt.sections = 3;
  opt.l = 2.5e-3;
  DescriptorSystem sys = circuits::makeRlcLadder(opt);
  WeierstrassForm wf = weierstrass(sys);
  auto mk = wf.markovParameters(2);
  EXPECT_NEAR(mk[1](0, 0), opt.l, 1e-9);
  EXPECT_NEAR(mk[2](0, 0), 0.0, 1e-9);
}

TEST(Weierstrass, SingularPencilThrows) {
  DescriptorSystem sys;
  sys.e = Matrix::zeros(2, 2);
  sys.a = Matrix::zeros(2, 2);
  sys.b = Matrix(2, 1);
  sys.c = Matrix(1, 2);
  sys.d = Matrix(1, 1);
  EXPECT_THROW(weierstrass(sys), std::runtime_error);
}

TEST(Weierstrass, ConditioningReported) {
  circuits::LadderOptions opt;
  opt.sections = 5;
  WeierstrassForm wf = weierstrass(circuits::makeRlcLadder(opt));
  EXPECT_GE(wf.condLeft, 1.0);
  EXPECT_GE(wf.condRight, 1.0);
}

TEST(WeierstrassPassivity, PassiveLaddersPass) {
  for (bool impulsive : {false, true}) {
    circuits::LadderOptions opt;
    opt.sections = 4;
    opt.capAtPort = !impulsive;
    if (impulsive) opt.impulsiveEvery = 2;
    DescriptorSystem sys = circuits::makeRlcLadder(opt);
    WeierstrassPassivityResult res = testPassivityWeierstrass(sys);
    EXPECT_TRUE(res.properPartPassive) << "impulsive=" << impulsive;
    EXPECT_TRUE(res.m1Psd) << "impulsive=" << impulsive;
    EXPECT_TRUE(res.higherMarkovZero) << "impulsive=" << impulsive;
    EXPECT_TRUE(res.passive) << "impulsive=" << impulsive;
  }
}

TEST(WeierstrassPassivity, NegativeResistorFails) {
  DescriptorSystem sys = circuits::makeNonPassiveNegativeResistor(4);
  WeierstrassPassivityResult res = testPassivityWeierstrass(sys);
  EXPECT_FALSE(res.passive);
}

TEST(WeierstrassPassivity, IndefiniteM1Fails) {
  WeierstrassPassivityResult res =
      testPassivityWeierstrass(circuits::makeNonPassiveIndefiniteM1());
  EXPECT_FALSE(res.m1Psd);
  EXPECT_FALSE(res.passive);
  EXPECT_TRUE(res.properPartPassive);  // only the impulsive part is bad
}

TEST(WeierstrassPassivity, HigherMarkovFails) {
  WeierstrassPassivityResult res =
      testPassivityWeierstrass(circuits::makeNonPassiveHigherOrderImpulse());
  EXPECT_FALSE(res.higherMarkovZero);
  EXPECT_FALSE(res.passive);
}

TEST(WeierstrassPassivity, TwoPortLadder) {
  circuits::LadderOptions opt;
  opt.sections = 4;
  opt.twoPort = true;
  opt.capAtPort = true;
  WeierstrassPassivityResult res =
      testPassivityWeierstrass(circuits::makeRlcLadder(opt));
  EXPECT_TRUE(res.passive);
}

}  // namespace
}  // namespace shhpass::ds
