// Tests of the telemetry subsystem (src/obs/): span well-formedness and
// per-thread monotonicity, metrics-counter exactness under the
// work-stealing batch scheduler, bit-parity of decisions with telemetry
// on vs off (the observation-only contract), exposition-format sanity,
// memory accounting, and the discarded-speculative-stage accounting of
// Pipeline::runGraph.
//
// Telemetry state is process-wide; every test begins by forcing the
// flags it needs and resetting the registries (gtest runs tests
// sequentially in one process, so there is no cross-test race — only
// cross-test residue, which the resets clear).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "api/shhpass.hpp"
#include "obs/clock.hpp"
#include "obs/memory.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "test_support.hpp"

namespace shhpass {
namespace {

using api::AnalysisReport;
using api::AnalysisRequest;
using api::AnalyzerOptions;
using api::PassivityAnalyzer;
using api::Result;

void telemetryAllOn() {
  obs::setTraceEnabled(true);
  obs::setMetricsEnabled(true);
  obs::setMemoryEnabled(true);
  obs::clearTrace();
  obs::resetMetrics();
}

void telemetryAllOff() {
  obs::setTraceEnabled(false);
  obs::setMetricsEnabled(false);
  obs::setMemoryEnabled(false);
}

ds::DescriptorSystem passiveLadder(std::size_t sections, bool capAtPort) {
  circuits::LadderOptions opt;
  opt.sections = sections;
  opt.capAtPort = capAtPort;
  return circuits::makeRlcLadder(opt);
}

/// Mixed golden batch: passive ladders of several sizes plus the two
/// non-passive fixtures (M1NotPsd and ProperPartNotPr exits).
std::vector<AnalysisRequest> goldenBatch() {
  std::vector<AnalysisRequest> reqs;
  for (std::size_t sections : {2, 3, 4, 5}) {
    AnalysisRequest r;
    r.id = "ladder-" + std::to_string(sections);
    r.system = passiveLadder(sections, sections % 2 == 0);
    reqs.push_back(std::move(r));
  }
  AnalysisRequest m1;
  m1.id = "indefinite-m1";
  m1.system = circuits::makeNonPassiveIndefiniteM1();
  reqs.push_back(std::move(m1));
  AnalysisRequest pr;
  pr.id = "negative-feedthrough";
  pr.system = circuits::makeNonPassiveNegativeFeedthrough(4);
  reqs.push_back(std::move(pr));
  return reqs;
}

// ------------------------------------------------------------ span tracer

TEST(ObsTrace, SpansAreWellFormedAndProperlyNestedPerThread) {
  telemetryAllOn();
  PassivityAnalyzer analyzer;
  Result<AnalysisReport> r = analyzer.analyze(passiveLadder(4, true));
  ASSERT_TRUE(r.ok()) << r.status().toString();

  const std::vector<obs::TraceEvent> events = obs::snapshotTrace();
  ASSERT_FALSE(events.empty());
  const std::uint64_t now = obs::monotonicNowNs();

  std::map<std::uint32_t, std::vector<const obs::TraceEvent*>> byTid;
  for (const obs::TraceEvent& e : events) {
    EXPECT_NE(e.name[0], '\0');
    EXPECT_NE(e.cat[0], '\0');
    EXPECT_LE(e.startNs + e.durNs, now);
    byTid[e.tid].push_back(&e);
  }

  // The sequential path puts the analyze root span, every stage span,
  // and any sampled kernel spans on one thread.
  bool sawAnalyze = false, sawStage = false;
  for (const obs::TraceEvent& e : events) {
    if (std::string(e.name) == "analyze") sawAnalyze = true;
    if (std::string(e.cat) == "stage") sawStage = true;
  }
  EXPECT_TRUE(sawAnalyze);
  EXPECT_TRUE(sawStage);

  // Within one thread, spans form a properly nested forest: sorted by
  // (start, widest-first), each interval either contains the next or is
  // disjoint from it — no partial overlap.
  for (auto& [tid, spans] : byTid) {
    std::sort(spans.begin(), spans.end(),
              [](const obs::TraceEvent* a, const obs::TraceEvent* b) {
                if (a->startNs != b->startNs) return a->startNs < b->startNs;
                return a->durNs > b->durNs;
              });
    std::vector<const obs::TraceEvent*> stack;
    for (const obs::TraceEvent* e : spans) {
      while (!stack.empty() &&
             e->startNs >= stack.back()->startNs + stack.back()->durNs)
        stack.pop_back();
      if (!stack.empty()) {
        // Partially overlapping spans on one thread would mean the
        // tracer recorded impossible interleavings.
        EXPECT_LE(e->startNs + e->durNs,
                  stack.back()->startNs + stack.back()->durNs)
            << "span " << e->name << " partially overlaps "
            << stack.back()->name << " on tid " << tid;
      }
      stack.push_back(e);
    }
    // Start stamps are monotone per thread by construction of the sort;
    // the raw emission order must also be monotone in END time for the
    // spans this thread itself emitted (completion order). That is
    // implied by proper nesting, so no separate assertion is needed.
  }
  telemetryAllOff();
}

TEST(ObsTrace, TraceJsonHasChromeTraceShape) {
  telemetryAllOn();
  PassivityAnalyzer analyzer;
  ASSERT_TRUE(analyzer.analyze(passiveLadder(3, true)).ok());
  const std::string json = obs::traceJson();
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"analyze\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"stage\""), std::string::npos);
  telemetryAllOff();
}

TEST(ObsTrace, ClearTraceRetiresPublishedSpans) {
  telemetryAllOn();
  PassivityAnalyzer analyzer;
  ASSERT_TRUE(analyzer.analyze(passiveLadder(2, true)).ok());
  ASSERT_FALSE(obs::snapshotTrace().empty());
  obs::clearTrace();
  EXPECT_TRUE(obs::snapshotTrace().empty());
  telemetryAllOff();
}

// ------------------------------------------------------- metrics registry

TEST(ObsMetrics, CountersAreExactUnderWorkStealingScheduler) {
  const std::vector<AnalysisRequest> reqs = goldenBatch();

  for (std::size_t workers : {1u, 2u, 7u}) {
    telemetryAllOn();
    AnalyzerOptions opts;
    opts.threads = workers;
    // NOTE: stageGraph left at its default so the test also exercises
    // the graph path when SHHPASS_STAGE_GRAPH forces it (tsan preset).
    PassivityAnalyzer analyzer(opts);
    std::vector<Result<AnalysisReport>> results = analyzer.runBatch(reqs);
    ASSERT_EQ(results.size(), reqs.size());
    for (const auto& r : results) ASSERT_TRUE(r.ok());

    // Expected stage totals come from the reports themselves: the trace
    // list accounts for every executed stage node (canonical entries
    // plus the explicitly-marked discarded speculative ones), so the
    // counters must match it exactly — that is the exactness claim.
    std::uint64_t expectStages = 0, expectDiscarded = 0;
    for (const auto& r : results) {
      expectStages += r->stages.size();
      for (const api::StageTrace& t : r->stages)
        if (t.discarded) ++expectDiscarded;
    }

    using obs::Counter;
    EXPECT_EQ(obs::counterValue(Counter::AnalysesStarted), reqs.size())
        << "workers=" << workers;
    EXPECT_EQ(obs::counterValue(Counter::AnalysesCompleted), reqs.size());
    EXPECT_EQ(obs::counterValue(Counter::AnalysesFailed), 0u);
    EXPECT_EQ(obs::counterValue(Counter::AnalysesNotPassive), 2u);
    EXPECT_EQ(obs::counterValue(Counter::BatchItems), reqs.size());
    EXPECT_EQ(obs::counterValue(Counter::StagesExecuted), expectStages)
        << "workers=" << workers;
    EXPECT_EQ(obs::counterValue(Counter::StagesDiscarded), expectDiscarded);
    EXPECT_EQ(obs::gaugeValue(obs::Gauge::AnalysesInFlight), 0);

    // Scheduler counters agree with the scheduler's own report.
    const AnalysisReport& first = results[0].value();
    EXPECT_EQ(obs::counterValue(Counter::ShardsRun),
              first.scheduler.batchShards);
    EXPECT_EQ(obs::counterValue(Counter::ShardSteals),
              first.scheduler.batchSteals);
    EXPECT_GT(obs::counterValue(Counter::GemmCalls), 0u);
    EXPECT_GT(obs::counterValue(Counter::GemmFlops),
              obs::counterValue(Counter::GemmCalls));
    EXPECT_GT(obs::counterValue(Counter::SvdCalls), 0u);
    EXPECT_GT(obs::counterValue(Counter::RankDecisions), 0u);
  }
  telemetryAllOff();
}

TEST(ObsMetrics, StageHistogramCoversEveryCanonicalStage) {
  telemetryAllOn();
  PassivityAnalyzer analyzer;
  ASSERT_TRUE(analyzer.analyze(passiveLadder(3, false)).ok());
  const std::vector<obs::HistogramSnapshot> hists =
      obs::snapshotStageSeconds();
  std::vector<std::string> labels;
  for (const obs::HistogramSnapshot& h : hists) {
    labels.push_back(h.label);
    EXPECT_EQ(h.count, 1u);
    EXPECT_GE(h.sum, 0.0);
    ASSERT_EQ(h.buckets.size(), obs::kHistogramBuckets + 1);
    // Cumulative buckets: non-decreasing, final == count.
    for (std::size_t i = 1; i < h.buckets.size(); ++i)
      EXPECT_GE(h.buckets[i], h.buckets[i - 1]);
    EXPECT_EQ(h.buckets.back(), h.count);
  }
  for (const char* stage :
       {"prerequisites", "build-phi", "impulse-deflation",
        "nondynamic-removal", "m1-extraction", "proper-part", "pr-test"}) {
    EXPECT_NE(std::find(labels.begin(), labels.end(), stage), labels.end())
        << "missing stage histogram: " << stage;
  }
  telemetryAllOff();
}

TEST(ObsMetrics, ExpositionFormatsAreSane) {
  telemetryAllOn();
  PassivityAnalyzer analyzer;
  ASSERT_TRUE(analyzer.analyze(passiveLadder(2, true)).ok());

  const std::string json = obs::metricsJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"analyses_started\":1"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{\"stage_seconds\":{"),
            std::string::npos);
  // Braces balance (cheap structural check; the CI validator does the
  // real parse via python).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));

  const std::string prom = obs::metricsPrometheus();
  EXPECT_NE(prom.find("# TYPE shhpass_analyses_started_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("shhpass_analyses_started_total 1\n"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE shhpass_analyses_in_flight gauge"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE shhpass_stage_seconds histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("shhpass_stage_seconds_bucket{stage=\"pr-test\",le=\""),
            std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
  telemetryAllOff();
}

// ------------------------------------------------------- memory accounting

TEST(ObsMemory, MemScopeSeesMatrixAllocations) {
  telemetryAllOn();
  const std::size_t before = obs::memLiveBytes();
  obs::MemScope scope;
  {
    linalg::Matrix a(64, 64, 1.0);
    EXPECT_GE(obs::memLiveBytes(), before + 64 * 64 * sizeof(double));
  }
  EXPECT_GE(scope.peakBytes(), before + 64 * 64 * sizeof(double));
  telemetryAllOff();
}

TEST(ObsMemory, StageTracesCarryPeakBytes) {
  telemetryAllOn();
  PassivityAnalyzer analyzer;
  Result<AnalysisReport> r = analyzer.analyze(passiveLadder(4, true));
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->stages.empty());
  std::size_t peak = 0;
  for (const api::StageTrace& t : r->stages)
    peak = std::max(peak, t.peakBytes);
  EXPECT_GT(peak, 0u);
  // The report JSON carries the per-stage peaks and the diagnostics max.
  const std::string json = r->toJson();
  EXPECT_NE(json.find("\"peakBytes\":"), std::string::npos);
  telemetryAllOff();
}

// --------------------------------- observation-only (bit-parity) contract

TEST(ObsParity, TelemetryNeverChangesDecisions) {
  const std::vector<AnalysisRequest> reqs = goldenBatch();

  // Reference: telemetry hard-off, sequential stages, single worker.
  telemetryAllOff();
  PassivityAnalyzer ref;
  std::vector<Result<AnalysisReport>> baseline;
  for (const AnalysisRequest& rq : reqs) baseline.push_back(ref.analyze(rq));
  for (const auto& r : baseline) ASSERT_TRUE(r.ok());

  for (std::size_t workers : {1u, 2u, 7u}) {
    for (bool stageGraph : {false, true}) {
      telemetryAllOn();
      AnalyzerOptions opts;
      opts.threads = workers;
      opts.stageGraph = stageGraph;
      PassivityAnalyzer analyzer(opts);
      std::vector<Result<AnalysisReport>> results = analyzer.runBatch(reqs);
      ASSERT_EQ(results.size(), baseline.size());
      for (std::size_t i = 0; i < results.size(); ++i) {
        ASSERT_TRUE(results[i].ok());
        EXPECT_TRUE(results[i]->decisionEquals(baseline[i].value()))
            << "telemetry-on decision drift: item " << reqs[i].id
            << " workers=" << workers << " stageGraph=" << stageGraph;
      }
    }
  }
  telemetryAllOff();
}

// --------------------------- discarded speculative stages (runGraph)

TEST(ObsDiscarded, FailingGraphRunAccountsForEveryExecutedNode) {
  telemetryAllOn();

  // Oracle: m1-extraction (stage 5 of 7) raises the M1NotPsd verdict,
  // so the canonical (non-discarded) trace list has 5 entries — whether
  // the reference ran sequentially or the environment forced the graph
  // path (tsan preset), since discarded entries are appended after the
  // canonical prefix.
  PassivityAnalyzer seq;
  const ds::DescriptorSystem g = circuits::makeNonPassiveIndefiniteM1();
  Result<AnalysisReport> sref = seq.analyze(g);
  ASSERT_TRUE(sref.ok());
  std::size_t srefCanonical = 0;
  for (const api::StageTrace& t : sref->stages)
    if (!t.discarded) ++srefCanonical;
  ASSERT_EQ(srefCanonical, 5u);

  obs::resetMetrics();
  AnalyzerOptions opts;
  opts.stageGraph = true;
  opts.stageGraphThreads = 2;
  PassivityAnalyzer analyzer(opts);
  Result<AnalysisReport> r = analyzer.analyze(g);
  ASSERT_TRUE(r.ok()) << r.status().toString();
  const AnalysisReport& rep = r.value();
  EXPECT_FALSE(rep.passive);
  EXPECT_EQ(rep.verdict, api::ErrorCode::M1NotPsd);
  ASSERT_TRUE(rep.scheduler.stageGraph);

  // Every node the graph executed is accounted for: canonical traces up
  // to the cutoff plus explicitly-marked discarded traces for the
  // speculative stages (proper-part and pr-test run concurrently with
  // the failing m1-extraction branch and are computed-then-discarded).
  EXPECT_EQ(rep.stages.size(), rep.scheduler.stageGraphExecuted);
  std::size_t canonical = 0, discarded = 0;
  for (const api::StageTrace& t : rep.stages) {
    if (t.discarded) {
      ++discarded;
      EXPECT_TRUE(t.name == "proper-part" || t.name == "pr-test")
          << "unexpected discarded stage: " << t.name;
    } else {
      ++canonical;
    }
  }
  EXPECT_EQ(canonical, 5u);
  EXPECT_EQ(discarded, rep.scheduler.stageGraphExecuted - 5u);
  EXPECT_GT(discarded, 0u);
  // Discarded entries come after the whole canonical prefix.
  for (std::size_t i = 0; i < 5u; ++i)
    EXPECT_FALSE(rep.stages[i].discarded);
  // The canonical prefix is the sequential trace list.
  for (std::size_t i = 0; i < 5u; ++i) {
    EXPECT_EQ(rep.stages[i].name, sref->stages[i].name);
    EXPECT_EQ(rep.stages[i].status.code(), sref->stages[i].status.code());
  }
  // decisionEquals ignores the discarded tail entirely.
  EXPECT_TRUE(rep.decisionEquals(sref.value()));
  EXPECT_FALSE(sref->decisionEquals(AnalysisReport{}));

  // Metrics agree: the discarded counter saw exactly those stages.
  EXPECT_EQ(obs::counterValue(obs::Counter::StagesDiscarded), discarded);

  // The report JSON marks them.
  const std::string json = rep.toJson();
  EXPECT_NE(json.find("\"discarded\":true"), std::string::npos);

  // Discarded spans are marked in the trace JSON too.
  const std::string trace = obs::traceJson();
  EXPECT_NE(trace.find("\"discarded\":true"), std::string::npos);
  telemetryAllOff();
}

}  // namespace
}  // namespace shhpass
