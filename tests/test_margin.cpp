// Tests for the passivity-margin extension and feedthrough enforcement.
#include <gtest/gtest.h>

#include <cmath>

#include "circuits/generators.hpp"
#include "core/margin.hpp"
#include "ds/descriptor.hpp"
#include "test_support.hpp"

namespace shhpass::core {
namespace {

using linalg::Matrix;

TEST(Margin, KnownFirstOrderSystem) {
  // G(s) = 0.5 + 1/(s+1): min_w Re G = 0.5 (at w = inf), margin = 0.5.
  ds::DescriptorSystem g;
  g.e = Matrix{{1.0}};
  g.a = Matrix{{-1.0}};
  g.b = Matrix{{1.0}};
  g.c = Matrix{{1.0}};
  g.d = Matrix{{0.5}};
  PassivityMargin pm = passivityMargin(g);
  ASSERT_TRUE(pm.defined);
  EXPECT_NEAR(pm.margin, 0.5, 1e-4);
}

TEST(Margin, NegativeForNonPassive) {
  // G(s) = -0.25 + 1/(s+1): Re G(j inf) = -0.25, margin = -0.25.
  ds::DescriptorSystem g;
  g.e = Matrix{{1.0}};
  g.a = Matrix{{-1.0}};
  g.b = Matrix{{1.0}};
  g.c = Matrix{{1.0}};
  g.d = Matrix{{-0.25}};
  PassivityMargin pm = passivityMargin(g);
  ASSERT_TRUE(pm.defined);
  EXPECT_NEAR(pm.margin, -0.25, 1e-4);
}

TEST(Margin, MatchesFrequencySweepOnLadder) {
  circuits::LadderOptions opt;
  opt.sections = 3;
  opt.capAtPort = true;
  ds::DescriptorSystem g = circuits::makeRlcLadder(opt);
  PassivityMargin pm = passivityMargin(g);
  ASSERT_TRUE(pm.defined);
  // Direct sweep reference (coarse).
  double sweep = ds::popovMinEigenvalueDs(g, 0.0);
  for (double w = 1e-2; w < 1e9; w *= 1.6)
    sweep = std::min(sweep, ds::popovMinEigenvalueDs(g, w));
  EXPECT_NEAR(pm.margin, sweep / 2.0, 1e-3 * (1.0 + std::abs(sweep)));
  EXPECT_GE(pm.margin, -1e-9);  // passive ladder
}

TEST(Margin, ImpulsiveLadderStillDefined) {
  circuits::LadderOptions opt;
  opt.sections = 3;
  ds::DescriptorSystem g = circuits::makeRlcLadder(opt);
  PassivityMargin pm = passivityMargin(g);
  EXPECT_TRUE(pm.defined);
  EXPECT_GE(pm.margin, -1e-9);
}

TEST(Margin, UndefinedForStructuralDefects) {
  PassivityMargin pm =
      passivityMargin(circuits::makeNonPassiveIndefiniteM1());
  EXPECT_FALSE(pm.defined);
  EXPECT_EQ(pm.structuralDefect, FailureStage::M1NotPsd);
}

TEST(Margin, UndefinedForUnstable) {
  ds::DescriptorSystem g;
  g.e = Matrix{{1.0}};
  g.a = Matrix{{1.0}};
  g.b = Matrix{{1.0}};
  g.c = Matrix{{1.0}};
  g.d = Matrix{{1.0}};
  PassivityMargin pm = passivityMargin(g);
  EXPECT_FALSE(pm.defined);
  EXPECT_EQ(pm.structuralDefect, FailureStage::UnstableFiniteModes);
}

TEST(Enforcement, RepairsNegativeFeedthrough) {
  ds::DescriptorSystem bad = circuits::makeNonPassiveNegativeFeedthrough(3);
  ASSERT_FALSE(testPassivityShh(bad).passive);
  ds::DescriptorSystem fixed = enforcePassivity(bad, 1e-6);
  EXPECT_TRUE(testPassivityShh(fixed).passive)
      << failureStageName(testPassivityShh(fixed).failure);
  // The repair is minimal-ish: the shift should be close to 0.02.
  EXPECT_NEAR(fixed.d(0, 0) - bad.d(0, 0), 0.02, 5e-3);
}

TEST(Enforcement, PassiveInputUnchanged) {
  circuits::LadderOptions opt;
  opt.sections = 2;
  opt.capAtPort = true;
  ds::DescriptorSystem g = circuits::makeRlcLadder(opt);
  ds::DescriptorSystem same = enforcePassivity(g);
  EXPECT_EQ(same.d.maxAbs(), g.d.maxAbs());
}

TEST(Enforcement, ThrowsOnStructuralDefect) {
  EXPECT_THROW(enforcePassivity(circuits::makeNonPassiveIndefiniteM1()),
               std::invalid_argument);
}

}  // namespace
}  // namespace shhpass::core
