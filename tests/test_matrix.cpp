// Unit tests for the dense matrix core and BLAS-level helpers.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "linalg/blas.hpp"
#include "linalg/matrix.hpp"
#include "test_support.hpp"

namespace shhpass::linalg {
namespace {

using testing::expectMatrixNear;
using testing::randomMatrix;

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, InitializerListAndAccess) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
  m(1, 2) = -7.0;
  EXPECT_DOUBLE_EQ(m(1, 2), -7.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityDiagZeros) {
  Matrix i3 = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i3(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i3(0, 1), 0.0);
  Matrix d = Matrix::diag({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(d(2, 2), 3.0);
  EXPECT_DOUBLE_EQ(d(0, 2), 0.0);
  EXPECT_EQ(Matrix::zeros(2, 5).maxAbs(), 0.0);
  EXPECT_DOUBLE_EQ(Matrix::ones(2, 2).normFrobenius(), 2.0);
}

TEST(Matrix, SymplecticJ) {
  Matrix j = Matrix::symplecticJ(2);
  ASSERT_EQ(j.rows(), 4u);
  // J^T = -J and J^2 = -I.
  EXPECT_TRUE(j.isSkewSymmetric(0.0));
  expectMatrixNear(j * j, -1.0 * Matrix::identity(4), 0.0);
}

TEST(Matrix, ArithmeticAndShapeChecks) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  expectMatrixNear(a + b, Matrix{{6, 8}, {10, 12}}, 0.0);
  expectMatrixNear(b - a, Matrix{{4, 4}, {4, 4}}, 0.0);
  expectMatrixNear(2.0 * a, Matrix{{2, 4}, {6, 8}}, 0.0);
  expectMatrixNear(-a, Matrix{{-1, -2}, {-3, -4}}, 0.0);
  Matrix c(3, 2);
  EXPECT_THROW(a + c, std::invalid_argument);
  EXPECT_THROW(a - c, std::invalid_argument);
}

TEST(Matrix, Product) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  Matrix b{{7, 8}, {9, 10}, {11, 12}};
  expectMatrixNear(a * b, Matrix{{58, 64}, {139, 154}}, 0.0);
  EXPECT_THROW(b.block(0, 0, 2, 2) * a.block(0, 0, 1, 3),
               std::invalid_argument);
}

TEST(Matrix, TransposeRoundTrip) {
  Matrix a = randomMatrix(4, 7, 11);
  expectMatrixNear(a.transposed().transposed(), a, 0.0);
}

TEST(Matrix, BlockGetSet) {
  Matrix a = Matrix::zeros(4, 4);
  Matrix b{{1, 2}, {3, 4}};
  a.setBlock(1, 2, b);
  expectMatrixNear(a.block(1, 2, 2, 2), b, 0.0);
  EXPECT_DOUBLE_EQ(a(0, 0), 0.0);
  EXPECT_THROW(a.block(3, 3, 2, 2), std::invalid_argument);
  EXPECT_THROW(a.setBlock(3, 3, b), std::invalid_argument);
}

TEST(Matrix, RowColExtraction) {
  Matrix a{{1, 2, 3}, {4, 5, 6}};
  expectMatrixNear(a.row(1), Matrix{{4, 5, 6}}, 0.0);
  expectMatrixNear(a.col(2), Matrix{{3}, {6}}, 0.0);
}

TEST(Matrix, Norms) {
  Matrix a{{1, -2}, {-3, 4}};
  EXPECT_DOUBLE_EQ(a.maxAbs(), 4.0);
  EXPECT_DOUBLE_EQ(a.norm1(), 6.0);   // max column sum |−2|+|4|
  EXPECT_DOUBLE_EQ(a.normInf(), 7.0); // max row sum |−3|+|4|
  EXPECT_DOUBLE_EQ(a.normFrobenius(), std::sqrt(30.0));
  EXPECT_DOUBLE_EQ(a.trace(), 5.0);
}

TEST(Matrix, SymmetryPredicates) {
  Matrix s{{1, 2}, {2, 1}};
  Matrix k{{0, 3}, {-3, 0}};
  EXPECT_TRUE(s.isSymmetric(0.0));
  EXPECT_FALSE(s.isSkewSymmetric(1e-12));
  EXPECT_TRUE(k.isSkewSymmetric(0.0));
  EXPECT_FALSE(k.isSymmetric(1e-12));
  EXPECT_FALSE(Matrix(2, 3).isSymmetric(1.0));
}

TEST(Matrix, ConcatenationAndEmptyEdges) {
  Matrix a{{1}, {2}};
  Matrix b{{3}, {4}};
  expectMatrixNear(hcat(a, b), Matrix{{1, 3}, {2, 4}}, 0.0);
  expectMatrixNear(vcat(a.transposed(), b.transposed()),
                   Matrix{{1, 2}, {3, 4}}, 0.0);
  Matrix empty(2, 0);
  expectMatrixNear(hcat(a, empty), a, 0.0);
  expectMatrixNear(hcat(empty, a), a, 0.0);
  EXPECT_THROW(hcat(a, Matrix(3, 1)), std::invalid_argument);
  EXPECT_THROW(vcat(a, Matrix(1, 2)), std::invalid_argument);
}

TEST(Matrix, StreamOutputDoesNotCrash) {
  std::ostringstream oss;
  oss << Matrix{{1.5, -2.25}, {0.0, 3.0}};
  EXPECT_NE(oss.str().find("1.5"), std::string::npos);
}

TEST(Blas, GemmMatchesOperator) {
  Matrix a = randomMatrix(3, 4, 1);
  Matrix b = randomMatrix(4, 5, 2);
  Matrix c(3, 5);
  gemm(1.0, a, false, b, false, 0.0, c);
  expectMatrixNear(c, a * b, 1e-14);
}

TEST(Blas, GemmTransposeFlags) {
  Matrix a = randomMatrix(4, 3, 3);
  Matrix b = randomMatrix(4, 5, 4);
  expectMatrixNear(atb(a, b), a.transposed() * b, 1e-14);
  Matrix d = randomMatrix(7, 5, 5);
  expectMatrixNear(abt(b, d), b * d.transposed(), 1e-14);
  Matrix f = randomMatrix(6, 4, 9);
  expectMatrixNear(multiply(a, true, f, true),
                   a.transposed() * f.transposed(), 1e-14);
}

TEST(Blas, GemmAccumulates) {
  Matrix a = randomMatrix(2, 2, 6);
  Matrix b = randomMatrix(2, 2, 7);
  Matrix c = randomMatrix(2, 2, 8);
  Matrix expected = 2.0 * (a * b) + 3.0 * c;
  Matrix got = c;
  gemm(2.0, a, false, b, false, 3.0, got);
  expectMatrixNear(got, expected, 1e-13);
}

TEST(Blas, ColumnHelpers) {
  Matrix a{{3, 0}, {4, 1}};
  EXPECT_DOUBLE_EQ(colNorm(a, 0), 5.0);
  EXPECT_DOUBLE_EQ(colDot(a, 0, a, 1), 4.0);
  EXPECT_DOUBLE_EQ(colNorm(Matrix(3, 2), 1), 0.0);
}

TEST(Blas, SymmetrizeHelpers) {
  Matrix a{{1, 4}, {2, 3}};
  Matrix s = a;
  symmetrize(s);
  EXPECT_TRUE(s.isSymmetric(0.0));
  expectMatrixNear(s, Matrix{{1, 3}, {3, 3}}, 0.0);
  Matrix k = a;
  skewSymmetrize(k);
  EXPECT_TRUE(k.isSkewSymmetric(0.0));
  expectMatrixNear(k, Matrix{{0, 1}, {-1, 0}}, 0.0);
}

}  // namespace
}  // namespace shhpass::linalg
