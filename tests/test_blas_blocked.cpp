// Equivalence and determinism tests for the blocked BLAS-3 kernel layer:
//
//   * gemm/gemmBlocked vs the gemmReference oracle over seeded random
//     shapes (including degenerate k = 0, 1 x n, tall/skinny, aliased
//     inputs, and shapes straddling every blocking boundary);
//   * compact-WY block reflector application vs the per-reflector loop;
//   * blocked Hessenberg / QR vs their unblocked references;
//   * bit-determinism of the threaded gemm for every thread count.
//
// Tolerance convention: blocked and reference kernels sum each element in
// a different order, so they agree to the inner-product forward-error
// bound, not bitwise. We assert |diff| <= 1e-13 * max(1, k) entrywise
// (k the inner dimension): exactly 1e-13 for small products, scaled by
// the provable error growth for long accumulations.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "linalg/blas.hpp"
#include "linalg/hessenberg.hpp"
#include "linalg/householder.hpp"
#include "linalg/qr.hpp"
#include "test_support.hpp"

namespace shhpass::linalg {
namespace {

using testing::Xorshift;

Matrix xorshiftMatrix(std::size_t r, std::size_t c, Xorshift& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.uniform(-1.0, 1.0);
  return m;
}

double maxAbsDiff(const Matrix& a, const Matrix& b) {
  EXPECT_EQ(a.rows(), b.rows());
  EXPECT_EQ(a.cols(), b.cols());
  double w = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      w = std::max(w, std::abs(a(i, j) - b(i, j)));
  return w;
}

bool bitIdentical(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         std::memcmp(a.data(), b.data(),
                     sizeof(double) * a.rows() * a.cols()) == 0;
}

// Runs one (shape, op, alpha/beta) case through gemmReference and
// gemmBlocked and asserts agreement within the scaled bound.
void expectBlockedMatchesReference(std::size_t m, std::size_t k,
                                   std::size_t n, bool ta, bool tb,
                                   double alpha, double beta, Xorshift& rng) {
  const Matrix a = ta ? xorshiftMatrix(k, m, rng) : xorshiftMatrix(m, k, rng);
  const Matrix b = tb ? xorshiftMatrix(n, k, rng) : xorshiftMatrix(k, n, rng);
  const Matrix c0 = xorshiftMatrix(m, n, rng);
  Matrix cRef = c0, cBlk = c0;
  gemmReference(alpha, a, ta, b, tb, beta, cRef);
  gemmBlocked(alpha, a, ta, b, tb, beta, cBlk);
  const double tol = 1e-13 * std::max<double>(1.0, static_cast<double>(k));
  EXPECT_LE(maxAbsDiff(cRef, cBlk), tol)
      << "m=" << m << " k=" << k << " n=" << n << " ta=" << ta
      << " tb=" << tb << " alpha=" << alpha << " beta=" << beta;
}

// Restores serial kernels even when a test fails mid-body.
struct GemmThreadsGuard {
  ~GemmThreadsGuard() { setGemmThreads(1); }
};

TEST(GemmBlocked, MatchesReferenceOnSeededRandomShapes) {
  Xorshift rng(0xb10c4ed);
  const double alphas[] = {1.0, -0.75, 2.5};
  const double betas[] = {0.0, 1.0, -0.3};
  for (int cse = 0; cse < 48; ++cse) {
    const std::size_t m = 1 + rng.pick(150);
    const std::size_t k = 1 + rng.pick(150);
    const std::size_t n = 1 + rng.pick(150);
    expectBlockedMatchesReference(m, k, n, rng.flip(), rng.flip(),
                                  alphas[rng.pick(3)], betas[rng.pick(3)],
                                  rng);
  }
}

TEST(GemmBlocked, ShapesStraddlingBlockingBoundaries) {
  // One past each tile/panel edge: MR/NR, MC, KC, NC.
  Xorshift rng(7);
  const std::size_t probes[] = {kGemmMr + 1,  kGemmNr + 1, kGemmMc - 1,
                                kGemmMc + 1,  kGemmKc + 1, kGemmNc + 1,
                                2 * kGemmMr + 3};
  for (std::size_t m : {kGemmMc - 1, kGemmMc + 1, std::size_t{70}})
    for (std::size_t k : {kGemmKc - 1, kGemmKc + 1})
      for (std::size_t n : probes)
        expectBlockedMatchesReference(m, k, n, false, false, 1.0, 0.0, rng);
}

TEST(GemmBlocked, DegenerateShapes) {
  Xorshift rng(11);
  // k = 0: the product contributes nothing; C is scaled by beta only.
  Matrix a(5, 0), b(0, 7);
  Matrix c = xorshiftMatrix(5, 7, rng);
  Matrix expected = c;
  expected *= -0.5;
  gemmBlocked(1.0, a, false, b, false, -0.5, c);
  EXPECT_TRUE(bitIdentical(c, expected));

  // Row-vector, column-vector, and empty-output shapes.
  expectBlockedMatchesReference(1, 90, 90, false, false, 1.0, 0.0, rng);
  expectBlockedMatchesReference(90, 90, 1, false, true, -1.0, 1.0, rng);
  expectBlockedMatchesReference(1, 1, 1, true, true, 2.0, 0.5, rng);
  Matrix e0(0, 4), eb(3, 0);
  Matrix ec(0, 0);
  gemmBlocked(1.0, e0, false, xorshiftMatrix(4, 0, rng), false, 0.0, ec);
  EXPECT_TRUE(ec.empty());
}

TEST(GemmBlocked, TallAndSkinnyShapes) {
  Xorshift rng(13);
  expectBlockedMatchesReference(700, 3, 5, false, false, 1.0, 0.0, rng);
  expectBlockedMatchesReference(3, 700, 5, true, false, 1.0, 1.0, rng);
  expectBlockedMatchesReference(5, 3, 700, false, false, -2.0, 0.0, rng);
  expectBlockedMatchesReference(300, 300, 9, false, true, 1.0, 0.0, rng);
}

TEST(GemmBlocked, AliasedInputsArePacked) {
  // A Gram product passes the same object as both operands; the packing
  // step must make this safe (C never aliases the inputs by contract).
  Xorshift rng(17);
  const Matrix a = xorshiftMatrix(120, 80, rng);
  Matrix cRef(80, 80), cBlk(80, 80);
  gemmReference(1.0, a, true, a, false, 0.0, cRef);
  gemmBlocked(1.0, a, true, a, false, 0.0, cBlk);
  EXPECT_LE(maxAbsDiff(cRef, cBlk), 1e-13 * 120.0);
}

TEST(GemmBlocked, DispatchedEntryPointAgreesWithBothKernels) {
  // gemm() must implement the identical contract whichever kernel it
  // picks — spot-check one shape on each side of the dispatch threshold.
  Xorshift rng(19);
  for (std::size_t n : {std::size_t{12}, std::size_t{96}}) {
    const Matrix a = xorshiftMatrix(n, n, rng);
    const Matrix b = xorshiftMatrix(n, n, rng);
    Matrix c1(n, n), c2(n, n);
    gemm(1.0, a, false, b, false, 0.0, c1);
    gemmReference(1.0, a, false, b, false, 0.0, c2);
    EXPECT_LE(maxAbsDiff(c1, c2), 1e-13 * static_cast<double>(n));
  }
}

TEST(GemmThreads, BitDeterministicUnderThreadPool) {
  // The threading contract (blas.hpp): identical bits for every thread
  // count, run-to-run. Use a size big enough to clear the threaded-fanout
  // floor so the pool is genuinely exercised.
  GemmThreadsGuard guard;
  Xorshift rng(23);
  const std::size_t n = 256;
  const Matrix a = xorshiftMatrix(n, n, rng);
  const Matrix b = xorshiftMatrix(n, n, rng);
  ASSERT_GE(n * n * n, kGemmThreadedFlopFloor);

  Matrix serial(n, n);
  setGemmThreads(1);
  gemmBlocked(1.0, a, false, b, false, 0.0, serial);
  for (std::size_t threads : {2u, 3u, 7u}) {
    setGemmThreads(threads);
    EXPECT_EQ(gemmThreads(), threads);
    Matrix run1(n, n), run2(n, n);
    gemmBlocked(1.0, a, false, b, false, 0.0, run1);
    gemmBlocked(1.0, a, false, b, false, 0.0, run2);
    EXPECT_TRUE(bitIdentical(run1, run2)) << threads << " threads, rerun";
    EXPECT_TRUE(bitIdentical(run1, serial)) << threads << " threads vs serial";
  }
}

// --------------------------------------------------------- compact-WY

// Per-reflector application oracle: C := H_{k-1} ... H_0 C (transpose) or
// C := H_0 ... H_{k-1} C, with H_j = I - tau_j v_j v_j^T.
Matrix applyReflectorsOneByOne(const Matrix& v,
                               const std::vector<double>& tau,
                               bool transpose, Matrix c) {
  const std::size_t k = v.cols(), m = v.rows();
  for (std::size_t idx = 0; idx < k; ++idx) {
    const std::size_t j = transpose ? idx : k - 1 - idx;
    if (tau[j] == 0.0) continue;
    for (std::size_t col = 0; col < c.cols(); ++col) {
      double s = 0.0;
      for (std::size_t i = 0; i < m; ++i) s += v(i, j) * c(i, col);
      s *= tau[j];
      for (std::size_t i = 0; i < m; ++i) c(i, col) -= s * v(i, j);
    }
  }
  return c;
}

// Builds a random forward-columnwise reflector block (column j supported
// on rows j.., unit leading entry), optionally forcing one tau to zero.
void randomReflectorBlock(std::size_t m, std::size_t k, Xorshift& rng,
                          bool zeroTauColumn, Matrix& v,
                          std::vector<double>& tau) {
  v = Matrix(m, k);
  tau.assign(k, 0.0);
  std::vector<double> x(m), refl(m);
  for (std::size_t j = 0; j < k; ++j) {
    const std::size_t len = m - j;
    for (std::size_t i = 0; i < len; ++i)
      x[i] = (zeroTauColumn && j == k / 2) ? (i == 0 ? 0.7 : 0.0)
                                           : rng.uniform(-1.0, 1.0);
    double beta;
    tau[j] = makeReflector(x.data(), len, refl.data(), beta);
    for (std::size_t i = 0; i < len; ++i) v(j + i, j) = refl[i];
  }
}

TEST(CompactWy, BlockLeftApplicationMatchesPerReflector) {
  Xorshift rng(29);
  for (bool zeroTau : {false, true}) {
    Matrix v;
    std::vector<double> tau;
    randomReflectorBlock(130, 17, rng, zeroTau, v, tau);
    const Matrix t = buildCompactWyT(v, tau);
    const Matrix c0 = xorshiftMatrix(130, 11, rng);
    for (bool transpose : {false, true}) {
      Matrix blocked = c0;
      applyBlockReflectorLeft(v, t, transpose, blocked);
      const Matrix oracle = applyReflectorsOneByOne(v, tau, transpose, c0);
      EXPECT_LE(maxAbsDiff(blocked, oracle), 1e-13 * 130.0)
          << "transpose=" << transpose << " zeroTau=" << zeroTau;
    }
  }
}

TEST(CompactWy, BlockRightApplicationMatchesPerReflector) {
  Xorshift rng(31);
  Matrix v;
  std::vector<double> tau;
  randomReflectorBlock(110, 13, rng, false, v, tau);
  const Matrix t = buildCompactWyT(v, tau);
  const Matrix c0 = xorshiftMatrix(9, 110, rng);
  Matrix blocked = c0;
  applyBlockReflectorRight(v, t, blocked);
  // C Q = (Q^T C^T)^T with Q^T the transposed-left application.
  const Matrix oracle =
      applyReflectorsOneByOne(v, tau, true, c0.transposed()).transposed();
  EXPECT_LE(maxAbsDiff(blocked, oracle), 1e-13 * 110.0);
}

TEST(CompactWy, ReflectorAnnihilatesAndIsOrthogonal) {
  Xorshift rng(37);
  std::vector<double> x(40), v(40);
  for (double& e : x) e = rng.uniform(-2.0, 2.0);
  double beta;
  const double tau = makeReflector(x.data(), x.size(), v.data(), beta);
  // H x = beta e1 exactly in exact arithmetic; check to roundoff.
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) s += v[i] * x[i];
  std::vector<double> hx(x);
  for (std::size_t i = 0; i < x.size(); ++i) hx[i] -= tau * s * v[i];
  EXPECT_NEAR(hx[0], beta, 1e-13);
  for (std::size_t i = 1; i < hx.size(); ++i) EXPECT_NEAR(hx[i], 0.0, 1e-13);
  // Norm preservation (orthogonality of H).
  double nx = 0.0, nhx = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    nx += x[i] * x[i];
    nhx += hx[i] * hx[i];
  }
  EXPECT_NEAR(std::sqrt(nx), std::sqrt(nhx), 1e-12);
}

// ----------------------------------------------- blocked Hessenberg / QR

TEST(HessenbergBlocked, MatchesUnblockedReferenceAboveCrossover) {
  Xorshift rng(41);
  const std::size_t n = kHessenbergCrossover + 22;
  const Matrix a = xorshiftMatrix(n, n, rng);
  const HessenbergResult blocked = hessenberg(a);
  const HessenbergResult reference = hessenbergUnblocked(a);
  // Same reflector sign convention — the two H factors agree entrywise to
  // accumulated roundoff, far below any structural difference.
  EXPECT_LE(maxAbsDiff(blocked.h, reference.h), 1e-11 * a.normFrobenius());
  // Structure: exact zeros below the first subdiagonal.
  for (std::size_t i = 2; i < n; ++i)
    for (std::size_t j = 0; j + 1 < i; ++j) EXPECT_EQ(blocked.h(i, j), 0.0);
  // Reconstruction and orthogonality.
  const Matrix rec =
      multiply(blocked.q * blocked.h, false, blocked.q, true);
  EXPECT_LE(maxAbsDiff(rec, a), 1e-12 * static_cast<double>(n));
  Matrix qtq = atb(blocked.q, blocked.q);
  for (std::size_t i = 0; i < n; ++i) qtq(i, i) -= 1.0;
  EXPECT_LE(qtq.maxAbs(), 1e-13 * static_cast<double>(n));
}

TEST(HessenbergBlocked, DispatchBelowCrossoverIsBitIdenticalToReference) {
  Xorshift rng(43);
  const std::size_t n = kHessenbergCrossover / 2;
  const Matrix a = xorshiftMatrix(n, n, rng);
  const HessenbergResult viaDispatch = hessenberg(a);
  const HessenbergResult reference = hessenbergUnblocked(a);
  EXPECT_TRUE(bitIdentical(viaDispatch.h, reference.h));
  EXPECT_TRUE(bitIdentical(viaDispatch.q, reference.q));
}

TEST(QrBlocked, BlockedFactorizationReconstructs) {
  Xorshift rng(47);
  const std::vector<std::pair<std::size_t, std::size_t>> shapes = {
      {kQrWyMinRows, 20}, {200, 200}, {260, 37}, {150, 230}};
  for (auto [m, n] : shapes) {
    const Matrix a = xorshiftMatrix(m, n, rng);
    const QR qr(a);
    const Matrix rec = qr.thinQ() * qr.r();
    EXPECT_LE(maxAbsDiff(rec, a), 1e-12 * static_cast<double>(m))
        << m << "x" << n;
    Matrix q = qr.fullQ();
    Matrix qtq = atb(q, q);
    for (std::size_t i = 0; i < m; ++i) qtq(i, i) -= 1.0;
    EXPECT_LE(qtq.maxAbs(), 1e-13 * static_cast<double>(m)) << m << "x" << n;
    // applyQ / applyQt are mutual inverses.
    const Matrix b = xorshiftMatrix(m, 5, rng);
    EXPECT_LE(maxAbsDiff(qr.applyQ(qr.applyQt(b)), b),
              1e-13 * static_cast<double>(m))
        << m << "x" << n;
  }
}

TEST(QrBlocked, RankDeficientColumnsKeepExactTauZeroSemantics) {
  // A zero column inside a blocked panel must produce tau = 0 (H = I) and
  // still factor/reconstruct exactly like the unblocked convention.
  Xorshift rng(53);
  Matrix a = xorshiftMatrix(96, 12, rng);
  for (std::size_t i = 0; i < a.rows(); ++i) a(i, 4) = 0.0;
  const QR qr(a);
  const Matrix rec = qr.thinQ() * qr.r();
  EXPECT_LE(maxAbsDiff(rec, a), 1e-12 * 96.0);
}

}  // namespace
}  // namespace shhpass::linalg
