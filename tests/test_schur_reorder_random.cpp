// Randomized eigen-verification harness for the residual-checked Schur
// reordering (tier-1, fixed seeds).
//
// Each case builds a random quasi-triangular matrix with an EXACTLY known
// spectrum — clustered, near-degenerate, or jw-axis-straddling (the
// Hamiltonian mirror-pair shape that broke the pre-residual-check
// implementation) — reorders it with the stable/antistable selector, and
// asserts the four contract properties:
//   (a) the accumulated Q stays orthogonal to 1e-12,
//   (b) the similarity residual ||Q^T A Q - T'|| stays at round-off,
//   (c) the eigenvalue multiset is preserved to a drift tolerance,
//   (d) the stable/antistable split count matches the ground truth counted
//       from the constructed spectrum BEFORE reordering.
// A rejected swap (ReorderReport::rejectedSwaps > 0) relaxes only (d) to
// "no more than the truth"; (a)-(c) are unconditional — rejection must
// never corrupt the factorization.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <limits>
#include <stdexcept>
#include <vector>

#include "linalg/blas.hpp"
#include "linalg/schur.hpp"
#include "linalg/schur_reorder.hpp"
#include "test_support.hpp"

namespace shhpass::linalg {
namespace {

using testing::Xorshift;

// A complex entry with im != 0 is the +im representative of a conjugate
// pair and contributes a 2x2 block (two spectrum members).
using Spectrum = std::vector<std::complex<double>>;

// Full multiset of eigenvalues the spectrum spec describes.
Spectrum expand(const Spectrum& spec) {
  Spectrum full;
  for (const auto& l : spec) {
    full.push_back(l);
    if (l.imag() != 0.0) full.push_back(std::conj(l));
  }
  return full;
}

// Quasi-triangular matrix with exactly the spectrum of `spec`, in shuffled
// block order, with random coupling above the blocks. Complex pairs become
// standardized 2x2 blocks with randomized off-diagonal balance; adjacent
// real eigenvalues are sometimes fused into a rotated (non-triangular) 2x2
// block with real eigenvalues, exercising the dlanv2 split path.
Matrix buildQuasiTriangular(Spectrum spec, Xorshift& rng,
                            bool fuseRealPairs) {
  for (std::size_t i = spec.size(); i > 1; --i)
    std::swap(spec[i - 1], spec[rng.pick(i)]);
  std::size_t n = 0;
  for (const auto& l : spec) n += l.imag() != 0.0 ? 2 : 1;
  Matrix t(n, n);
  std::vector<std::size_t> blockEnd(n);  // first column right of row's block
  std::size_t pos = 0, i = 0;
  while (i < spec.size()) {
    const std::complex<double> l = spec[i];
    if (l.imag() != 0.0) {
      // Standardized complex-pair block [re b; c re], b c = -im^2.
      const double s = std::exp(rng.uniform(-1.2, 1.2));
      t(pos, pos) = l.real();
      t(pos + 1, pos + 1) = l.real();
      t(pos, pos + 1) = l.imag() * s;
      t(pos + 1, pos) = -l.imag() / s;
      blockEnd[pos] = blockEnd[pos + 1] = pos + 2;
      pos += 2;
      ++i;
    } else if (fuseRealPairs && i + 1 < spec.size() &&
               spec[i + 1].imag() == 0.0 && rng.flip()) {
      // Fused real-eigenvalue block: rotate [l1 g; 0 l2] by a plane
      // rotation so the subdiagonal is nonzero but the eigenvalues stay
      // exactly l1, l2.
      const double l1 = l.real(), l2 = spec[i + 1].real();
      const double g = rng.uniform(-2.0, 2.0);
      const double th = rng.uniform(0.3, 1.2);
      const Matrix d{{l1, g}, {0.0, l2}};
      const Matrix r{{std::cos(th), -std::sin(th)},
                     {std::sin(th), std::cos(th)}};
      const Matrix m = multiply(r, true, d, false) * r;
      t(pos, pos) = m(0, 0);
      t(pos, pos + 1) = m(0, 1);
      t(pos + 1, pos) = m(1, 0);
      t(pos + 1, pos + 1) = m(1, 1);
      blockEnd[pos] = blockEnd[pos + 1] = pos + 2;
      pos += 2;
      i += 2;
    } else {
      t(pos, pos) = l.real();
      blockEnd[pos] = pos + 1;
      pos += 1;
      ++i;
    }
  }
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = blockEnd[r]; c < n; ++c)
      t(r, c) = rng.uniform(-2.5, 2.5);
  return t;
}

// --- spectrum families ---------------------------------------------------
// All families keep |Re| >= 1e-5 so the stable/antistable ground truth is
// robust against the (certified sub-1e-10) reordering drift.

double awayFromAxis(Xorshift& rng, double minAbs, double maxAbs) {
  const double mag =
      std::pow(10.0, rng.uniform(std::log10(minAbs), std::log10(maxAbs)));
  return rng.flip() ? mag : -mag;
}

// Tight clusters of real and complex eigenvalues (spread 1e-6..1e-3): the
// bubbling path repeatedly swaps nearly equal neighbors on the same side
// of the axis.
Spectrum clusteredSpectrum(Xorshift& rng) {
  Spectrum spec;
  std::size_t dims = 0;
  const std::size_t clusters = 2 + rng.pick(3);
  for (std::size_t c = 0; c < clusters && dims < 20; ++c) {
    const double re = awayFromAxis(rng, 0.05, 3.0);
    const double im = rng.flip() ? 0.0 : rng.uniform(0.5, 3.0);
    const double spread = std::pow(10.0, rng.uniform(-6.0, -3.0));
    const std::size_t members = 2 + rng.pick(3);
    for (std::size_t m = 0; m < members && dims < 20; ++m) {
      const double dre = spread * rng.uniform(-1.0, 1.0);
      if (im == 0.0) {
        spec.push_back({re + dre, 0.0});
        dims += 1;
      } else {
        spec.push_back({re + dre, im + spread * rng.uniform(-1.0, 1.0)});
        dims += 2;
      }
    }
  }
  return spec;
}

// Nearly identical eigenvalue pairs (gap down to 1e-9) plus complex pairs
// with tiny imaginary parts (the fuse/split borderline) and well-separated
// fillers.
Spectrum nearDegenerateSpectrum(Xorshift& rng) {
  Spectrum spec;
  std::size_t dims = 0;
  const std::size_t pairs = 2 + rng.pick(3);
  for (std::size_t p = 0; p < pairs && dims < 18; ++p) {
    const double re = awayFromAxis(rng, 1e-2, 2.0);
    const double gap = std::pow(10.0, rng.uniform(-9.0, -6.0));
    switch (rng.pick(3)) {
      case 0:  // two nearly equal reals
        spec.push_back({re, 0.0});
        spec.push_back({re + gap, 0.0});
        dims += 2;
        break;
      case 1:  // complex pair with a tiny imaginary part (near-real)
        spec.push_back({re, gap});
        dims += 2;
        break;
      default:  // two nearly equal complex pairs
        const double im = rng.uniform(0.5, 2.0);
        spec.push_back({re, im});
        spec.push_back({re + gap, im + gap});
        dims += 4;
        break;
    }
  }
  spec.push_back({awayFromAxis(rng, 0.1, 3.0), 0.0});
  return spec;
}

// Hamiltonian-like mirror pairs straddling the imaginary axis: for every
// stable eigenvalue there is an antistable one at -conj(lambda), with
// |Re| down to 1e-5 — exactly the Eq.-(22) shape where the pre-fix
// implementation drifted eigenvalues across the axis.
Spectrum axisStraddlingSpectrum(Xorshift& rng) {
  Spectrum spec;
  std::size_t dims = 0;
  const std::size_t pairs = 2 + rng.pick(3);
  for (std::size_t p = 0; p < pairs && dims < 20; ++p) {
    const double re =
        std::pow(10.0, rng.uniform(-5.0, -0.5));  // distance to the axis
    if (rng.flip()) {
      const double im = rng.uniform(0.3, 4.0);
      spec.push_back({-re, im});
      spec.push_back({re, im * (1.0 + 1e-7 * rng.uniform(-1.0, 1.0))});
      dims += 4;
    } else {
      spec.push_back({-re, 0.0});
      spec.push_back({re, 0.0});
      dims += 2;
    }
  }
  return spec;
}

// --- the harness ---------------------------------------------------------

bool isStable(const std::complex<double>& l) { return l.real() < 0.0; }

// Greedy nearest-neighbor multiset matching; returns the largest matched
// distance (or +inf on count mismatch, which the caller asserts against).
double multisetDistance(Spectrum a, Spectrum b) {
  if (a.size() != b.size()) return std::numeric_limits<double>::infinity();
  double worst = 0.0;
  std::vector<bool> used(b.size(), false);
  for (const auto& la : a) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t bestJ = b.size();
    for (std::size_t j = 0; j < b.size(); ++j) {
      if (used[j]) continue;
      const double d = std::abs(la - b[j]);
      if (d < best) {
        best = d;
        bestJ = j;
      }
    }
    used[bestJ] = true;
    worst = std::max(worst, best);
  }
  return worst;
}

void expectValidQuasiTriangular(const Matrix& t) {
  for (std::size_t i = 2; i < t.rows(); ++i)
    for (std::size_t j = 0; j + 1 < i; ++j)
      ASSERT_EQ(t(i, j), 0.0) << "below-quasi-diagonal at (" << i << "," << j
                              << ")";
  for (std::size_t i = 0; i + 2 < t.rows(); ++i)
    ASSERT_FALSE(t(i + 1, i) != 0.0 && t(i + 2, i + 1) != 0.0)
        << "overlapping 2x2 blocks at " << i;
}

struct HarnessTally {
  std::size_t cases = 0;
  std::size_t rejectedCases = 0;
  std::size_t totalSwaps = 0;
};

void runCase(const Spectrum& spec, Xorshift& rng, bool fuseRealPairs,
             HarnessTally& tally) {
  const Matrix a = buildQuasiTriangular(spec, rng, fuseRealPairs);
  const std::size_t n = a.rows();
  const Spectrum truth = expand(spec);
  const std::size_t stableTruth = static_cast<std::size_t>(
      std::count_if(truth.begin(), truth.end(), isStable));

  Matrix t = a;
  Matrix q = Matrix::identity(n);
  ReorderReport rep;
  const std::size_t k = reorderSchur(t, q, isStable, &rep);

  ++tally.cases;
  tally.totalSwaps += rep.swaps;
  if (!rep.clean()) ++tally.rejectedCases;

  const double scale = std::max(1.0, a.maxAbs());

  // (a) Orthogonality of the accumulated transform.
  const Matrix gram = atb(q, q);
  EXPECT_TRUE(gram.approxEqual(Matrix::identity(n), 1e-12))
      << "Q drifted from orthogonality; max dev "
      << (gram - Matrix::identity(n)).maxAbs();

  // (b) Similarity residual: T' really is Q^T A Q.
  const Matrix res = multiply(atb(q, a), false, q, false) - t;
  EXPECT_LE(res.maxAbs(), 1e-11 * scale) << "similarity residual too large";

  // Structural sanity: still a well-formed quasi-triangular matrix, and
  // the report's own residual is certified small.
  expectValidQuasiTriangular(t);
  EXPECT_LE(rep.maxResidual, 1e-10 * scale);

  // (c) Eigenvalue multiset preserved within the drift tolerance.
  const Spectrum after = quasiTriangularEigenvalues(t);
  EXPECT_LE(multisetDistance(truth, after), 1e-8 * scale)
      << "eigenvalue drift beyond tolerance";

  // (d) Stable/antistable split vs the pre-reorder ground truth.
  if (rep.clean()) {
    EXPECT_EQ(k, stableTruth) << "split miscount on a clean reorder";
    for (std::size_t i = 0; i < after.size(); ++i) {
      if (i < k)
        EXPECT_LT(after[i].real(), 0.0) << "antistable eigenvalue at " << i;
      else
        EXPECT_GE(after[i].real(), 0.0) << "stable eigenvalue left at " << i;
    }
  } else {
    // Rejected exchanges leave the ordering incomplete, never the
    // spectrum wrong: the realized leading subspace can only be smaller.
    EXPECT_LE(k, stableTruth);
  }
}

TEST(SchurReorderRandom, ClusteredSpectra) {
  HarnessTally tally;
  for (unsigned c = 0; c < 70; ++c) {
    Xorshift rng(0xC1u + 977u * c);
    runCase(clusteredSpectrum(rng), rng, /*fuseRealPairs=*/true, tally);
  }
  // Clustered-but-separated spectra must reorder exactly.
  EXPECT_EQ(tally.rejectedCases, 0u);
  EXPECT_GT(tally.totalSwaps, tally.cases);
}

TEST(SchurReorderRandom, NearDegenerateSpectra) {
  HarnessTally tally;
  for (unsigned c = 0; c < 70; ++c) {
    Xorshift rng(0xD3u + 1409u * c);
    runCase(nearDegenerateSpectrum(rng), rng, /*fuseRealPairs=*/true, tally);
  }
  // The properties (a)-(c) held unconditionally in every case; near
  // degeneracy may legitimately reject a handful of exchanges, but never
  // the majority.
  EXPECT_LE(tally.rejectedCases, tally.cases / 10);
}

TEST(SchurReorderRandom, AxisStraddlingSpectra) {
  HarnessTally tally;
  for (unsigned c = 0; c < 60; ++c) {
    Xorshift rng(0xE5u + 2003u * c);
    runCase(axisStraddlingSpectrum(rng), rng, /*fuseRealPairs=*/false,
            tally);
  }
  EXPECT_LE(tally.rejectedCases, tally.cases / 10);
}

TEST(SchurReorderRandom, IllPosedExchangeIsRejectedNotCorrupted) {
  // A stable and an antistable complex pair separated by 2e-14: the
  // exchange's Sylvester operator is numerically singular, so the swap
  // must be REJECTED, leaving the factorization bit-identical — the
  // pre-residual-check implementation force-zeroed its way through and
  // corrupted the spectrum instead.
  const double d = 1e-14;
  Matrix t{{d, 1.0, 0.7, -0.3},
           {-1.0, d, 0.2, 0.9},
           {0.0, 0.0, -d, 1.0},
           {0.0, 0.0, -1.0, -d}};
  Matrix q = Matrix::identity(4);
  const Matrix tBefore = t;
  ReorderReport rep;
  const std::size_t k = reorderSchur(
      t, q, [](std::complex<double> l) { return l.real() < 0.0; }, &rep);
  EXPECT_GE(rep.rejectedSwaps, 1u);
  EXPECT_EQ(k, 0u);
  EXPECT_TRUE(t.approxEqual(tBefore, 0.0)) << "rejection modified T";
  EXPECT_TRUE(q.approxEqual(Matrix::identity(4), 0.0))
      << "rejection modified Q";
}

TEST(SchurReorderRandom, NegligibleOverlapLeftoverIsRepaired) {
  // An eps-level subdiagonal BETWEEN two genuine 2x2 blocks (an hqr2
  // deflation leftover: its smallness test ran under shifted diagonals)
  // makes the block structure ambiguous. reorderSchur must repair it and
  // then classify/reorder the true blocks correctly.
  Matrix t{{2.0, 1.0, 0.4, -0.2},
           {-1.0, 2.0, 0.1, 0.6},
           {0.0, 1e-15, -1.0, 1.0},
           {0.0, 0.0, -1.0, -1.0}};
  Matrix q = Matrix::identity(4);
  ReorderReport rep;
  const std::size_t k = reorderSchur(
      t, q, [](std::complex<double> l) { return l.real() < 0.0; }, &rep);
  EXPECT_EQ(k, 2u);
  EXPECT_TRUE(rep.clean());
  const auto eig = quasiTriangularEigenvalues(t);
  EXPECT_LT(eig[0].real(), 0.0);
  EXPECT_LT(eig[1].real(), 0.0);
  EXPECT_GT(eig[2].real(), 0.0);
  EXPECT_GT(eig[3].real(), 0.0);
}

TEST(SchurReorderRandom, GenuinelyMalformedInputIsRefused) {
  // Two overlapping "blocks" with O(1) subdiagonals are not a real Schur
  // form; repairing by zeroing would corrupt the spectrum while reporting
  // clean(). The layer must refuse instead.
  Matrix t{{2.0, 1.0, 0.4}, {-1.0, 2.0, 0.1}, {0.0, 0.8, -1.0}};
  Matrix q = Matrix::identity(3);
  EXPECT_THROW(
      reorderSchur(t, q,
                   [](std::complex<double> l) { return l.real() < 0.0; }),
      std::invalid_argument);
}

TEST(SchurReorderRandom, ReportAccumulationAbsorb) {
  ReorderReport a, b;
  a.swaps = 3;
  a.maxResidual = 1e-14;
  a.eigenvalueDrift = 1e-13;
  b.swaps = 2;
  b.rejectedSwaps = 1;
  b.maxResidual = 5e-14;
  b.standardizations = 4;
  a.absorb(b);
  EXPECT_EQ(a.swaps, 5u);
  EXPECT_EQ(a.rejectedSwaps, 1u);
  EXPECT_DOUBLE_EQ(a.maxResidual, 5e-14);
  EXPECT_DOUBLE_EQ(a.eigenvalueDrift, 1e-13);
  EXPECT_EQ(a.standardizations, 4u);
  EXPECT_FALSE(a.clean());
}

}  // namespace
}  // namespace shhpass::linalg
