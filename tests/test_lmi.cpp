// Tests for the from-scratch SDP feasibility solver and the Freund-Jarre
// LMI passivity baseline.
#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "lmi/lmi_passivity.hpp"
#include "lmi/sdp_solver.hpp"
#include "test_support.hpp"

namespace shhpass::lmi {
namespace {

using linalg::Matrix;

TEST(SdpSolver, TrivialFeasible) {
  // S(x) = I + x * I >= 0: feasible with margin.
  SdpBlock b;
  b.a0 = Matrix::identity(2);
  b.basis = {Matrix::identity(2)};
  SdpResult r = solveSdpFeasibility({b});
  EXPECT_TRUE(r.feasible);
  EXPECT_GT(r.tStar, 0.5);
}

TEST(SdpSolver, InfeasibleBlock) {
  // S(x) = diag(-1 + x, -1 - x): max over x of min eig is -1 < 0.
  SdpBlock b;
  b.a0 = Matrix::diag({-1.0, -1.0});
  Matrix basis = Matrix::diag({1.0, -1.0});
  b.basis = {basis};
  SdpResult r = solveSdpFeasibility({b});
  EXPECT_FALSE(r.feasible);
  EXPECT_NEAR(r.tStar, -1.0, 1e-3);
}

TEST(SdpSolver, TwoVariableKnownOptimum) {
  // S(x) = [x1 0.5; 0.5 x2] - the max-t of min-eig over the unit-bounded...
  // With free x, t* is unbounded; cap behavior: solver should at least
  // certify feasibility quickly.
  SdpBlock b;
  b.a0 = Matrix{{0.0, 0.5}, {0.5, 0.0}};
  Matrix e11(2, 2), e22(2, 2);
  e11(0, 0) = 1.0;
  e22(1, 1) = 1.0;
  b.basis = {e11, e22};
  SdpResult r = solveSdpFeasibility({b});
  EXPECT_TRUE(r.feasible);
}

TEST(SdpSolver, MultipleBlocksCoupled) {
  // Block1: 1 - x >= 0, Block2: x - 0.5 >= 0: feasible iff x in [0.5, 1].
  SdpBlock b1, b2;
  b1.a0 = Matrix{{1.0}};
  b1.basis = {Matrix{{-1.0}}};
  b2.a0 = Matrix{{-0.5}};
  b2.basis = {Matrix{{1.0}}};
  SdpResult r = solveSdpFeasibility({b1, b2});
  EXPECT_TRUE(r.feasible);
  EXPECT_GE(r.x[0], 0.4);
  EXPECT_LE(r.x[0], 1.1);
}

TEST(SdpSolver, MultipleBlocksInfeasible) {
  // Block1: -1 - x^... Block1: -0.2 - x >= 0, Block2: x - 0.2 >= 0:
  // x <= -0.2 and x >= 0.2: infeasible.
  SdpBlock b1, b2;
  b1.a0 = Matrix{{-0.2}};
  b1.basis = {Matrix{{-1.0}}};
  b2.a0 = Matrix{{-0.2}};
  b2.basis = {Matrix{{1.0}}};
  SdpResult r = solveSdpFeasibility({b1, b2});
  EXPECT_FALSE(r.feasible);
  EXPECT_NEAR(r.tStar, -0.2, 1e-3);
}

TEST(SdpSolver, RejectsBadInput) {
  EXPECT_THROW(solveSdpFeasibility({}), std::invalid_argument);
  SdpBlock b1, b2;
  b1.a0 = Matrix::identity(2);
  b1.basis = {Matrix::identity(2)};
  b2.a0 = Matrix::identity(2);
  b2.basis = {Matrix::identity(2), Matrix::identity(2)};
  EXPECT_THROW(solveSdpFeasibility({b1, b2}), std::invalid_argument);
}

TEST(LmiPassivity, RegularPassiveSystem) {
  ds::DescriptorSystem g;
  g.e = Matrix{{1.0}};
  g.a = Matrix{{-1.0}};
  g.b = Matrix{{1.0}};
  g.c = Matrix{{1.0}};
  g.d = Matrix{{0.5}};
  LmiPassivityResult r = testPassivityLmi(g);
  EXPECT_TRUE(r.passive);
  EXPECT_EQ(r.variables, 1u);
}

TEST(LmiPassivity, RegularNonPassiveSystem) {
  ds::DescriptorSystem g;
  g.e = Matrix{{1.0}};
  g.a = Matrix{{-1.0}};
  g.b = Matrix{{1.0}};
  g.c = Matrix{{-1.0}};
  g.d = Matrix{{-0.4}};  // G(inf) < 0
  LmiPassivityResult r = testPassivityLmi(g);
  EXPECT_FALSE(r.passive);
}

TEST(LmiPassivity, ImpulseFreeLadderFeasible) {
  circuits::LadderOptions opt;
  opt.sections = 2;
  opt.capAtPort = true;
  LmiPassivityResult r = testPassivityLmi(circuits::makeRlcLadder(opt));
  EXPECT_TRUE(r.passive);
  EXPECT_GT(r.variables, 0u);
}

TEST(LmiPassivity, ImpulsiveLadderFeasible) {
  circuits::LadderOptions opt;
  opt.sections = 2;
  LmiPassivityResult r = testPassivityLmi(circuits::makeRlcLadder(opt));
  EXPECT_TRUE(r.passive);
}

TEST(LmiPassivity, NegativeFeedthroughInfeasible) {
  LmiPassivityResult r =
      testPassivityLmi(circuits::makeNonPassiveNegativeFeedthrough(2));
  EXPECT_FALSE(r.passive);
}

TEST(LmiPassivity, AgreesWithShhOnSmallModels) {
  for (bool impulsive : {false, true}) {
    ds::DescriptorSystem g = circuits::makeBenchmarkModel(8, impulsive);
    LmiPassivityResult lmi = testPassivityLmi(g);
    EXPECT_TRUE(lmi.passive) << "impulsive=" << impulsive;
  }
}

}  // namespace
}  // namespace shhpass::lmi
