// Shared helpers for shhpass tests: deterministic random matrices and
// common structural assertions.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>

#include "circuits/netlist.hpp"
#include "linalg/blas.hpp"
#include "linalg/matrix.hpp"

namespace shhpass::testing {

using linalg::Matrix;

/// Deterministic xorshift64* PRNG for property-based tests. Unlike
/// std::mt19937 + distributions, the full sequence (including the floating
/// point mapping) is pinned by this header, so seeded test cases are
/// bit-reproducible across platforms and standard libraries.
class Xorshift {
 public:
  explicit Xorshift(std::uint64_t seed)
      : state_(seed ? seed : 0x9e3779b97f4a7c15ull) {}

  std::uint64_t next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dull;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }
  /// Uniform integer in [0, n).
  std::size_t pick(std::size_t n) { return static_cast<std::size_t>(next() % n); }
  /// Fair coin.
  bool flip() { return (next() & 1ull) != 0; }

 private:
  std::uint64_t state_;
};

/// Deterministic uniform [-1, 1) random matrix. Draws from the pinned
/// Xorshift stream above (std::*_distribution mappings are not pinned
/// across standard libraries — enforced by tools/lint_invariants.py);
/// the golden-ratio multiply decorrelates adjacent seeds, which helpers
/// like randomRankDeficient rely on (seed, seed + 1).
inline Matrix randomMatrix(std::size_t r, std::size_t c, unsigned seed) {
  Xorshift gen((static_cast<std::uint64_t>(seed) + 1) *
               0x9e3779b97f4a7c15ull);
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) m(i, j) = gen.uniform(-1.0, 1.0);
  return m;
}

/// Random symmetric matrix.
inline Matrix randomSymmetric(std::size_t n, unsigned seed) {
  Matrix m = randomMatrix(n, n, seed);
  Matrix s = m + m.transposed();
  s *= 0.5;
  return s;
}

/// Random symmetric positive definite matrix (A^T A + I).
inline Matrix randomSpd(std::size_t n, unsigned seed) {
  Matrix m = randomMatrix(n, n, seed);
  Matrix s = linalg::atb(m, m);
  for (std::size_t i = 0; i < n; ++i) s(i, i) += 1.0 + static_cast<double>(n);
  return s;
}

/// Random matrix of exact rank r (product of n x r and r x m factors).
inline Matrix randomRankDeficient(std::size_t n, std::size_t m, std::size_t r,
                                  unsigned seed) {
  return randomMatrix(n, r, seed) * randomMatrix(r, m, seed + 1);
}

/// Random Hurwitz-stable matrix: -(A^T A) - margin*I rotated by similarity.
inline Matrix randomStable(std::size_t n, unsigned seed, double margin = 0.1) {
  Matrix m = randomMatrix(n, n, seed);
  Matrix s = linalg::atb(m, m);
  Matrix a = -1.0 * s;
  for (std::size_t i = 0; i < n; ++i) a(i, i) -= margin;
  // Mix with a skew part to get complex eigenvalues while staying stable:
  Matrix k = randomMatrix(n, n, seed + 7);
  Matrix skew = k - k.transposed();
  return a + 0.5 * skew;
}

inline void expectOrthonormalColumns(const Matrix& q, double tol = 1e-10) {
  const Matrix gram = linalg::atb(q, q);
  EXPECT_TRUE(gram.approxEqual(Matrix::identity(q.cols()), tol))
      << "columns not orthonormal; max dev "
      << (gram - Matrix::identity(q.cols())).maxAbs();
}

inline void expectMatrixNear(const Matrix& a, const Matrix& b,
                             double tol = 1e-10) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  EXPECT_TRUE(a.approxEqual(b, tol)) << "max dev " << (a - b).maxAbs();
}

/// Bit-for-bit matrix equality (shape + every entry's bit pattern) for
/// the determinism pins: approxEqual would hide a changed accumulation
/// order, and NaN/-0.0 must compare by representation, not value.
inline bool bitIdentical(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return std::memcmp(a.data(), b.data(),
                     sizeof(double) * a.rows() * a.cols()) == 0;
}

/// Deterministic random connected RLC netlist for the ingestion / sweep
/// property tests: a spanning chain guarantees every node is
/// element-connected (the parser's UnconnectedNode rule), extra R/L/C
/// branches are sprinkled across random distinct node pairs, values are
/// log-uniform across six decades, and 1-3 distinct ports are chosen.
inline circuits::Netlist randomConnectedNetlist(Xorshift& gen,
                                                int maxNodes = 8) {
  const int nodes = 2 + static_cast<int>(gen.pick(
                            static_cast<std::size_t>(maxNodes - 1)));
  circuits::Netlist net(nodes);
  auto randomValue = [&gen] {
    return std::pow(10.0, gen.uniform(-3.0, 3.0));
  };
  auto addRandom = [&](int n1, int n2) {
    switch (gen.pick(3)) {
      case 0: net.addResistor(n1, n2, randomValue()); break;
      case 1: net.addInductor(n1, n2, randomValue()); break;
      default: net.addCapacitor(n1, n2, randomValue()); break;
    }
  };
  // Spanning chain: node k attaches to a random strictly lower node.
  for (int k = 1; k <= nodes; ++k)
    addRandom(k, static_cast<int>(gen.pick(static_cast<std::size_t>(k))));
  const std::size_t extras = gen.pick(4);
  for (std::size_t e = 0; e < extras; ++e) {
    const int n1 = static_cast<int>(gen.pick(
        static_cast<std::size_t>(nodes) + 1));
    int n2 = n1;
    while (n2 == n1)
      n2 = static_cast<int>(gen.pick(static_cast<std::size_t>(nodes) + 1));
    addRandom(n1, n2);
  }
  const std::size_t numPorts = 1 + gen.pick(3);
  for (int p = 1; p <= nodes && static_cast<std::size_t>(p) <= numPorts;
       ++p)
    net.addPort(p);
  return net;
}

}  // namespace shhpass::testing
