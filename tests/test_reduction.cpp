// Tests for descriptor model order reduction on top of the SHH pipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "circuits/generators.hpp"
#include "core/passivity_test.hpp"
#include "core/markov.hpp"
#include "core/reduction.hpp"
#include "ds/impulse_tests.hpp"
#include "test_support.hpp"

namespace shhpass::core {
namespace {

using linalg::Matrix;

double worstAxisError(const ds::DescriptorSystem& a,
                      const ds::DescriptorSystem& b) {
  double worst = 0.0;
  for (double w : {0.0, 1e2, 1e4, 1e6}) {
    ds::TransferValue ga = ds::evalTransfer(a, 0.0, w);
    ds::TransferValue gb = ds::evalTransfer(b, 0.0, w);
    const double scale = std::max(1.0, ga.re.maxAbs() + ga.im.maxAbs());
    worst = std::max(worst, ((ga.re - gb.re).maxAbs() +
                             (ga.im - gb.im).maxAbs()) /
                                scale);
  }
  return worst;
}

TEST(Reduction, FullOrderReproducesTransfer) {
  circuits::LadderOptions opt;
  opt.sections = 3;
  ds::DescriptorSystem g = circuits::makeRlcLadder(opt);
  ReducedModel rom = reduceDescriptor(g, 100);  // no truncation
  ASSERT_TRUE(rom.ok);
  EXPECT_LT(worstAxisError(g, rom.sys), 1e-6);
}

TEST(Reduction, HankelValuesDescendingAndPositive) {
  circuits::LadderOptions opt;
  opt.sections = 5;
  opt.capAtPort = true;
  ReducedModel rom = reduceDescriptor(circuits::makeRlcLadder(opt), 100);
  ASSERT_TRUE(rom.ok);
  EXPECT_TRUE(std::is_sorted(rom.hankel.rbegin(), rom.hankel.rend()));
  for (double h : rom.hankel) EXPECT_GT(h, 0.0);
}

TEST(Reduction, TruncationKeepsAccuracyAndPassivity) {
  // Strongly damped RC-dominant ladder: fast Hankel decay, so a deep
  // truncation stays accurate.
  circuits::LadderOptions opt;
  opt.sections = 6;
  opt.capAtPort = true;
  opt.r = 5.0;
  opt.l = 1e-5;
  ds::DescriptorSystem g = circuits::makeRlcLadder(opt);
  ReducedModel rom = reduceDescriptor(g, 6);
  ASSERT_TRUE(rom.ok);
  EXPECT_EQ(rom.properOrder, 6u);
  EXPECT_LT(rom.sys.order(), g.order());
  EXPECT_LT(worstAxisError(g, rom.sys), 0.05);
  // The reduced model is itself a passive descriptor system.
  PassivityResult pr = testPassivityShh(rom.sys);
  EXPECT_TRUE(pr.passive) << failureStageName(pr.failure);
}

TEST(Reduction, ErrorShrinksWithRetainedOrder) {
  circuits::LadderOptions opt;
  opt.sections = 6;
  opt.capAtPort = true;
  ds::DescriptorSystem g = circuits::makeRlcLadder(opt);
  ReducedModel coarse = reduceDescriptor(g, 4);
  ReducedModel fine = reduceDescriptor(g, 11);
  ASSERT_TRUE(coarse.ok);
  ASSERT_TRUE(fine.ok);
  EXPECT_LT(worstAxisError(g, fine.sys),
            worstAxisError(g, coarse.sys) + 1e-12);
}

TEST(Reduction, ImpulsivePartPreservedExactly) {
  circuits::LadderOptions opt;
  opt.sections = 4;
  opt.l = 2.2e-3;  // port inductor: M1 = l
  ds::DescriptorSystem g = circuits::makeRlcLadder(opt);
  ReducedModel rom = reduceDescriptor(g, 4);
  ASSERT_TRUE(rom.ok);
  EXPECT_EQ(rom.impulsiveRank, 1u);
  // The reduced DS must still be impulsive with the same M1.
  M1Extraction m1 = extractM1(rom.sys);
  EXPECT_EQ(m1.chainCount, 1u);
  EXPECT_NEAR(m1.m1(0, 0), opt.l, 1e-9);
  // And at high frequency Im G ~ w * l for both models.
  const double w = 1e7;
  ds::TransferValue gv = ds::evalTransfer(g, 0.0, w);
  ds::TransferValue rv = ds::evalTransfer(rom.sys, 0.0, w);
  EXPECT_NEAR(gv.im(0, 0) / w, rv.im(0, 0) / w, 1e-6);
}

TEST(Reduction, HsvToleranceDropsStates) {
  // The damped ladder has fast HSV decay, so a mild tolerance truncates.
  circuits::LadderOptions opt;
  opt.sections = 6;
  opt.capAtPort = true;
  opt.r = 5.0;
  opt.l = 1e-5;
  ds::DescriptorSystem g = circuits::makeRlcLadder(opt);
  ReducedModel loose = reduceDescriptor(g, 100, 1e-3);
  ReducedModel full = reduceDescriptor(g, 100, 0.0);
  ASSERT_TRUE(loose.ok);
  ASSERT_TRUE(full.ok);
  EXPECT_LT(loose.properOrder, full.properOrder);
}

TEST(Reduction, FailsGracefullyOnDefectiveInput) {
  ReducedModel rom =
      reduceDescriptor(circuits::makeNonPassiveHigherOrderImpulse(), 4);
  EXPECT_FALSE(rom.ok);
}

// ------------- rank decisions at the deflation tolerance boundary

TEST(Reduction, HsvCutoffDecisionPinnedAtBoundary) {
  // The Hankel truncation is a sigma-cutoff decision like the deflation
  // rank policy: straddle one Hankel value with the relative tolerance
  // and the retained order must move by exactly that state, stably under
  // roundoff-level wobble of the cutoff.
  circuits::LadderOptions opt;
  opt.sections = 6;
  opt.capAtPort = true;
  opt.r = 5.0;
  opt.l = 1e-5;
  ds::DescriptorSystem g = circuits::makeRlcLadder(opt);
  ReducedModel full = reduceDescriptor(g, 100);
  ASSERT_TRUE(full.ok);
  ASSERT_GE(full.hankel.size(), 3u);
  // Find an interior HSV with a clean gap to its predecessor.
  std::size_t j = 0;
  for (std::size_t i = 1; i < full.hankel.size(); ++i)
    if (full.hankel[i] < 0.25 * full.hankel[i - 1]) j = i;
  ASSERT_GT(j, 0u) << "ladder HSVs decay; a gapped index must exist";
  const double ratio = full.hankel[j] / full.hankel.front();
  for (double wobble : {1.0 - 1e-12, 1.0 + 1e-12}) {
    ReducedModel keep = reduceDescriptor(g, 100, ratio * (1.0 - 1e-6) * wobble);
    ReducedModel drop = reduceDescriptor(g, 100, ratio * (1.0 + 1e-6) * wobble);
    ASSERT_TRUE(keep.ok);
    ASSERT_TRUE(drop.ok);
    EXPECT_EQ(keep.properOrder, j + 1) << "wobble " << wobble;
    EXPECT_EQ(drop.properOrder, j) << "wobble " << wobble;
  }
}

TEST(Reduction, NearRankDeficientMarkovMomentBoundary) {
  // M1 = l for the plain ladder, so shrinking the port inductance drives
  // the Markov moment toward rank deficiency. Pin both sides of the
  // boundary: down to 1e-11 H the whole chain (deflation rank decisions,
  // M1 extraction, reduction reassembly) keeps the impulsive part with
  // the exact moment; at 1e-13 H the proper-part split degenerates and
  // the pipeline CONSERVATIVELY refuses (LosslessAxisModes) instead of
  // silently mis-deflating — the reduction then reports !ok rather than
  // returning a model with a corrupted infinite-frequency behavior.
  circuits::LadderOptions opt;
  opt.sections = 4;
  for (double l : {1e-9, 1e-11}) {
    opt.l = l;
    ds::DescriptorSystem keep = circuits::makeRlcLadder(opt);
    ReducedModel rom = reduceDescriptor(keep, 100);
    ASSERT_TRUE(rom.ok) << "l=" << l;
    EXPECT_EQ(rom.impulsiveRank, 1u) << "l=" << l;
    M1Extraction m1 = extractM1(keep);
    EXPECT_EQ(m1.chainCount, 1u) << "l=" << l;
    EXPECT_NEAR(m1.m1(0, 0), l, 1e-6 * l) << "l=" << l;
  }
  opt.l = 1e-13;
  ds::DescriptorSystem degenerate = circuits::makeRlcLadder(opt);
  EXPECT_FALSE(reduceDescriptor(degenerate, 100).ok);
  PassivityResult pr = testPassivityShh(degenerate);
  EXPECT_EQ(pr.failure, FailureStage::LosslessAxisModes);
  // The structural chain census is scale-relative and still sees the
  // grade-2 chain with its (near-zero) moment.
  EXPECT_EQ(extractM1(degenerate).chainCount, 1u);
}

}  // namespace
}  // namespace shhpass::core
