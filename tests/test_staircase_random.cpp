// Seeded property harness for the one-pass staircase deflation chain
// (linalg/staircase.hpp + the core deflation stages), in the mold of
// test_svd_random.cpp for the SVD layer:
//
//   * compression-kernel unit tests (Diagonal, QrSvd, SkewTridiagonal,
//     Svd) against the full-SVD oracle on seeded planted-rank matrices,
//     including odd-order skew pencils and the degenerate shapes;
//   * basis orthogonality at 1e-12 and subspace certificates
//     (M Ker = 0, range projector reproduces M, pinv solves in-range
//     systems);
//   * rank-decision parity under roundoff wobble of the resolved cutoff;
//   * staircase-vs-SvdChain oracle parity of the three chain stages
//     (deflation counts, impulse-freeness, M1, transfer preservation)
//     on seeded RLC models, with both paths FORCED so the dispatch
//     crossover does not mask differences;
//   * gemm-thread bit-determinism of the staircase path (1/2/3/7);
//   * the rankTol plumbing regression: passivityMargin and
//     reduceDescriptor must honor a caller rankTol exactly like the
//     analyzePassivity pipeline (they historically dropped it);
//   * the "twice is enough" re-orthogonalization regression on a nearly
//     contained projection input.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "circuits/generators.hpp"
#include "core/impulse_deflation.hpp"
#include "core/margin.hpp"
#include "core/markov.hpp"
#include "core/nondynamic.hpp"
#include "core/passivity_test.hpp"
#include "core/phi_builder.hpp"
#include "core/reduction.hpp"
#include "ds/balance.hpp"
#include "ds/impulse_tests.hpp"
#include "linalg/blas.hpp"
#include "linalg/qr.hpp"
#include "linalg/staircase.hpp"
#include "linalg/svd.hpp"
#include "test_support.hpp"

namespace shhpass {
namespace {

using linalg::Compression;
using linalg::CompressionKernel;
using linalg::CompressionOptions;
using linalg::Matrix;
using linalg::StaircaseReport;
using testing::expectMatrixNear;
using testing::expectOrthonormalColumns;
using testing::randomMatrix;
using testing::Xorshift;

bool bitIdentical(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         (a.rows() * a.cols() == 0 ||
          std::memcmp(a.data(), b.data(),
                      sizeof(double) * a.rows() * a.cols()) == 0);
}

CompressionOptions wantAll(double rankTol = -1.0) {
  CompressionOptions o;
  o.rankTol = rankTol;
  o.wantRange = o.wantCorange = true;
  o.wantNullspace = o.wantLeftNullspace = true;
  return o;
}

// Certificate check of one compression against the matrix it describes
// and the full-SVD oracle: spectrum, policy rank, orthonormal bases,
// subspace residuals.
void expectValidCompression(const Matrix& m, const Compression& c,
                            const char* label) {
  SCOPED_TRACE(label);
  const std::size_t mn = std::min(m.rows(), m.cols());
  ASSERT_EQ(c.sigma.size(), mn);
  for (std::size_t i = 0; i + 1 < mn; ++i)
    EXPECT_GE(c.sigma[i], c.sigma[i + 1]) << "sigma not descending at " << i;

  // Spectrum and rank parity with the oracle (shared policy, same tol).
  linalg::SVD oracle(m);
  const double smax = mn == 0 ? 0.0 : oracle.singularValues().front();
  const double stol = 1e-12 * std::max(1.0, smax) *
                      static_cast<double>(std::max(m.rows(), m.cols()));
  for (std::size_t i = 0; i < mn; ++i)
    EXPECT_NEAR(c.sigma[i], oracle.singularValues()[i], stol) << "sigma " << i;

  // Bases: orthonormal at 1e-12 and certifying the right subspaces.
  const double rtol =
      1e-12 * std::max(1.0, smax) *
      static_cast<double>(std::max<std::size_t>(1, m.rows() + m.cols()));
  ASSERT_EQ(c.range.cols(), c.rank);
  ASSERT_EQ(c.corange.cols(), c.rank);
  ASSERT_EQ(c.nullspace.cols(), c.cols - c.rank);
  ASSERT_EQ(c.leftNullspace.cols(), c.rows - c.rank);
  expectOrthonormalColumns(c.range, 1e-12);
  expectOrthonormalColumns(c.corange, 1e-12);
  expectOrthonormalColumns(c.nullspace, 1e-12);
  expectOrthonormalColumns(c.leftNullspace, 1e-12);
  if (c.nullspace.cols() > 0)
    EXPECT_LT((m * c.nullspace).maxAbs(), rtol) << "M * Ker(M) != 0";
  if (c.leftNullspace.cols() > 0)
    EXPECT_LT(linalg::atb(c.leftNullspace, m).maxAbs(), rtol)
        << "Ker(M^T)^T * M != 0";
  // Range projector reproduces M (columns of M lie in span(range)).
  Matrix proj = m - c.range * linalg::atb(c.range, m);
  EXPECT_LT(proj.maxAbs(), rtol) << "Im(M) not within span(range)";
  Matrix mt = m.transposed();
  Matrix projT = mt - c.corange * linalg::atb(c.corange, mt);
  EXPECT_LT(projT.maxAbs(), rtol) << "Im(M^T) not within span(corange)";

  // Pseudoinverse applications: for b = M x, M M^+ b = b; and the
  // transposed variant on M^T.
  if (c.rank > 0) {
    Matrix x = randomMatrix(m.cols(), 3, 12345);
    Matrix b = m * x;
    expectMatrixNear(m * c.applyPinv(b), b,
                     1e-10 * std::max(1.0, b.maxAbs()) *
                         (smax / std::max(c.sigma[c.rank - 1], 1e-300)));
    Matrix y = randomMatrix(m.rows(), 3, 54321);
    Matrix bt = linalg::atb(m, y);
    expectMatrixNear(linalg::atb(m, c.applyPinvTranspose(bt)), bt,
                     1e-10 * std::max(1.0, bt.maxAbs()) *
                         (smax / std::max(c.sigma[c.rank - 1], 1e-300)));
  }
}

// Exactly skew matrix of rank <= 2k: W J W^T with J = blockdiag([0 1; -1 0]).
Matrix randomSkewOfRank(std::size_t n, std::size_t k, unsigned seed) {
  Matrix w = randomMatrix(n, 2 * k, seed);
  Matrix j(2 * k, 2 * k);
  for (std::size_t i = 0; i < k; ++i) {
    j(2 * i, 2 * i + 1) = 1.0;
    j(2 * i + 1, 2 * i) = -1.0;
  }
  Matrix m = w * j * w.transposed();
  linalg::skewSymmetrize(m);
  return m;
}

TEST(StaircaseCompression, DiagonalKernelMatchesSvdOracle) {
  for (unsigned seed : {1u, 2u, 3u}) {
    Xorshift rng(seed);
    const std::size_t n = 8 + rng.pick(24);
    Matrix d(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      const double v = rng.uniform(-2.0, 2.0);
      d(i, i) = rng.pick(4) == 0 ? 0.0 : v;  // sprinkle exact zeros
    }
    StaircaseReport sr;
    linalg::RankReport rr;
    Compression c = linalg::compress(d, wantAll(), &rr, &sr);
    EXPECT_EQ(c.kernelUsed, CompressionKernel::Diagonal);
    EXPECT_EQ(sr.diagonalFastPaths, 1u);
    EXPECT_EQ(rr.decisions, 1u);
    expectValidCompression(d, c, "diagonal");
  }
}

TEST(StaircaseCompression, QrSvdKernelTallAndWide) {
  for (unsigned seed : {11u, 12u}) {
    Matrix tall = testing::randomRankDeficient(64, 16, 10, seed);
    StaircaseReport sr;
    Compression ct = linalg::compress(tall, wantAll(), nullptr, &sr);
    EXPECT_EQ(ct.kernelUsed, CompressionKernel::QrSvd);
    EXPECT_EQ(sr.qrCompressions, 1u);
    EXPECT_EQ(ct.rank, 10u);
    expectValidCompression(tall, ct, "tall");

    Matrix wide = testing::randomRankDeficient(16, 64, 7, seed + 100);
    Compression cw = linalg::compress(wide, wantAll(), nullptr, &sr);
    EXPECT_EQ(cw.kernelUsed, CompressionKernel::QrSvd);
    EXPECT_EQ(cw.rank, 7u);
    expectValidCompression(wide, cw, "wide");
  }
}

TEST(StaircaseCompression, SkewTridiagonalKernelEvenAndOddOrders) {
  struct Case { std::size_t n, k; unsigned seed; };
  for (const Case& c : {Case{17, 6, 21u}, Case{32, 12, 22u},
                        Case{33, 33, 23u}, Case{48, 10, 24u}}) {
    Matrix m = randomSkewOfRank(c.n, c.k, c.seed);
    StaircaseReport sr;
    Compression cc = linalg::compress(m, wantAll(), nullptr, &sr);
    EXPECT_EQ(cc.kernelUsed, CompressionKernel::SkewTridiagonal)
        << "n=" << c.n;
    EXPECT_EQ(sr.skewTridiagonalizations, 1u);
    EXPECT_EQ(cc.rank % 2, 0u) << "skew rank must be even";
    EXPECT_LE(cc.rank, std::min(2 * c.k, c.n));
    expectValidCompression(m, cc, "skew");
  }
}

TEST(StaircaseCompression, SvdFallbackOnUnstructuredSquare) {
  Matrix m = randomMatrix(20, 20, 31);
  StaircaseReport sr;
  Compression c = linalg::compress(m, wantAll(), nullptr, &sr);
  EXPECT_EQ(c.kernelUsed, CompressionKernel::Svd);
  EXPECT_EQ(sr.svdFallbacks, 1u);
  EXPECT_EQ(sr.compressions, 1u);
  expectValidCompression(m, c, "svd-fallback");
}

TEST(StaircaseCompression, DegenerateShapes) {
  StaircaseReport sr;
  Compression e0 = linalg::compress(Matrix(0, 0), wantAll(), nullptr, &sr);
  EXPECT_EQ(e0.rank, 0u);
  Compression r1 = linalg::compress(randomMatrix(1, 9, 41), wantAll());
  expectValidCompression(randomMatrix(1, 9, 41), r1, "1x9");
  Compression z = linalg::compress(Matrix(6, 4), wantAll());
  EXPECT_EQ(z.rank, 0u);
  EXPECT_EQ(z.nullspace.cols(), 4u);
  EXPECT_EQ(z.leftNullspace.cols(), 6u);
  expectValidCompression(Matrix(6, 4), z, "zero");
}

TEST(StaircaseCompression, ForcedKernelPreconditionsThrow) {
  Matrix notDiag = randomMatrix(6, 6, 51);
  CompressionOptions o;
  o.kernel = CompressionKernel::Diagonal;
  EXPECT_THROW(linalg::compress(notDiag, o), std::invalid_argument);
  o.kernel = CompressionKernel::SkewTridiagonal;
  EXPECT_THROW(linalg::compress(randomMatrix(6, 6, 52), o),
               std::invalid_argument);
}

TEST(StaircaseCompression, RankStableUnderTolWobble) {
  const double eps = std::numeric_limits<double>::epsilon();
  for (unsigned seed : {61u, 62u, 63u}) {
    Matrix m = testing::randomRankDeficient(40, 40, 23, seed);
    Compression base = linalg::compress(m, wantAll());
    for (double f : {1.0 - 4.0 * eps, 1.0 + 4.0 * eps}) {
      Compression wob = linalg::compress(m, wantAll(base.resolvedTol * f));
      EXPECT_EQ(wob.rank, base.rank) << "rank flipped at wobble " << f;
    }
  }
}

TEST(StaircaseCompression, BitDeterministicAcrossGemmThreads) {
  Matrix skew = randomSkewOfRank(300, 120, 71);
  Matrix tall = testing::randomRankDeficient(300, 90, 60, 72);
  linalg::setGemmThreads(1);
  Compression s1 = linalg::compress(skew, wantAll());
  Compression t1 = linalg::compress(tall, wantAll());
  for (std::size_t threads : {2u, 3u, 7u}) {
    linalg::setGemmThreads(threads);
    Compression s = linalg::compress(skew, wantAll());
    Compression t = linalg::compress(tall, wantAll());
    EXPECT_EQ(s.rank, s1.rank);
    EXPECT_TRUE(bitIdentical(s.range, s1.range)) << threads;
    EXPECT_TRUE(bitIdentical(s.corange, s1.corange)) << threads;
    EXPECT_TRUE(bitIdentical(s.nullspace, s1.nullspace)) << threads;
    EXPECT_TRUE(bitIdentical(t.range, t1.range)) << threads;
    EXPECT_TRUE(bitIdentical(t.leftNullspace, t1.leftNullspace)) << threads;
    EXPECT_EQ(s.sigma, s1.sigma);
    EXPECT_EQ(t.sigma, t1.sigma);
  }
  linalg::setGemmThreads(1);
}

// ---------------------------------------------------------------------------
// Staircase chain vs the retained SVD-chain oracle, both paths FORCED.

void expectChainParity(const ds::DescriptorSystem& g, const char* label) {
  SCOPED_TRACE(label);
  shh::ShhRealization phi = core::buildPhi(g);
  core::ImpulseDeflationResult sc = core::deflateImpulseModes(
      phi, -1.0, core::DeflationPath::Staircase);
  core::ImpulseDeflationResult ora = core::deflateImpulseModes(
      phi, -1.0, core::DeflationPath::SvdChain);
  EXPECT_EQ(sc.removed, ora.removed) << "stage-1 deflation count";
  EXPECT_EQ(sc.reduced.order(), ora.reduced.order());
  EXPECT_TRUE(sc.reduced.checkStructure());
  EXPECT_GT(sc.staircase.compressions, 0u);
  EXPECT_EQ(ora.staircase.compressions, 0u);

  // Transfer preservation of the staircase reduction (same property the
  // oracle path is tested for in test_core_stages.cpp).
  ds::DescriptorSystem before = phi.toDescriptor();
  ds::DescriptorSystem after = sc.reduced.toDescriptor();
  for (double w : {0.5, 3.0, 200.0}) {
    ds::TransferValue ga = ds::evalTransfer(before, 0.0, w);
    ds::TransferValue gb = ds::evalTransfer(after, 0.0, w);
    expectMatrixNear(ga.re, gb.re, 1e-7 * (1.0 + w));
    expectMatrixNear(ga.im, gb.im, 1e-7 * (1.0 + w));
  }

  core::NondynamicRemovalResult nsc = core::removeNondynamicModes(
      sc.reduced, -1.0, core::DeflationPath::Staircase);
  core::NondynamicRemovalResult nora = core::removeNondynamicModes(
      ora.reduced, -1.0, core::DeflationPath::SvdChain);
  EXPECT_EQ(nsc.removed, nora.removed) << "stage-2 removal count";
  EXPECT_EQ(nsc.impulseFree, nora.impulseFree);
  if (nsc.impulseFree) {
    EXPECT_TRUE(nsc.shh.checkStructure());
    EXPECT_EQ(nsc.shh.order(), nora.shh.order());
  }

  core::M1Extraction msc =
      core::extractM1(g, -1.0, core::DeflationPath::Staircase);
  core::M1Extraction mora =
      core::extractM1(g, -1.0, core::DeflationPath::SvdChain);
  EXPECT_EQ(msc.chainCount, mora.chainCount) << "grade-2 chain count";
  EXPECT_EQ(msc.symmetric, mora.symmetric);
  EXPECT_EQ(msc.psd, mora.psd);
  expectMatrixNear(msc.m1, mora.m1,
                   1e-8 * std::max(1.0, mora.m1.maxAbs()));
}

TEST(StaircaseChainParity, BenchmarkModels) {
  for (std::size_t order : {25u, 64u, 100u}) {
    for (bool impulsive : {false, true}) {
      ds::DescriptorSystem g = circuits::makeBenchmarkModel(order, impulsive);
      expectChainParity(ds::balanceDescriptor(g).sys,
                        impulsive ? "bench impulsive" : "bench plain");
    }
  }
}

TEST(StaircaseChainParity, RandomRlcNetworks) {
  for (unsigned seed : {5u, 6u}) {
    for (bool sprinkle : {false, true}) {
      ds::DescriptorSystem g =
          circuits::makeRandomRlcNetwork(18 + 4 * seed, seed, sprinkle);
      expectChainParity(ds::balanceDescriptor(g).sys, "random rlc");
    }
  }
}

TEST(StaircaseChainParity, GradeThreeScreenAgreesWithVerdicts) {
  // The unified hasGradeThreeChains must keep the known verdicts, with and
  // without a reused E compression.
  ds::DescriptorSystem bad = circuits::makeNonPassiveHigherOrderImpulse();
  EXPECT_TRUE(ds::hasGradeThreeChains(bad));
  circuits::LadderOptions opt;
  opt.sections = 3;
  opt.capAtPort = false;  // impulsive but only grade 2
  ds::DescriptorSystem good = circuits::makeRlcLadder(opt);
  linalg::RankReport rr;
  StaircaseReport sr;
  EXPECT_FALSE(ds::hasGradeThreeChains(good, -1.0, &rr, &sr));
  EXPECT_GT(rr.decisions, 0u);
  Compression ce = linalg::compress(good.e, wantAll());
  StaircaseReport sr2;
  EXPECT_FALSE(ds::hasGradeThreeChains(good, -1.0, nullptr, &sr2, &ce));
  EXPECT_GT(sr2.reusedCompressions, 0u);
}

TEST(StaircaseChainParity, PipelineAboveCrossoverUsesStaircase) {
  // Above kStaircaseCrossover the Auto dispatch must engage the staircase
  // path and keep the verdict of the oracle chain.
  ds::DescriptorSystem g = circuits::makeBenchmarkModel(150, true);
  core::PassivityResult res = core::testPassivityShh(g);
  EXPECT_TRUE(res.passive) << core::failureStageName(res.failure);
  EXPECT_GT(res.staircase.compressions, 0u);
  EXPECT_GT(res.staircase.reusedCompressions, 0u);
  EXPECT_GT(res.staircase.chainLength, 0u);

  // Oracle verdict on the same model through the forced legacy stages.
  ds::DescriptorSystem bal = ds::balanceDescriptor(g).sys;
  shh::ShhRealization phi = core::buildPhi(bal);
  core::ImpulseDeflationResult s1 = core::deflateImpulseModes(
      phi, -1.0, core::DeflationPath::SvdChain);
  EXPECT_EQ(res.removedImpulsive, s1.removed);
  core::NondynamicRemovalResult s2 = core::removeNondynamicModes(
      s1.reduced, -1.0, core::DeflationPath::SvdChain);
  EXPECT_EQ(res.removedNondynamic, s2.removed);
  EXPECT_TRUE(s2.impulseFree);
}

TEST(StaircaseChainParity, StaircasePathBitDeterministicAcrossThreads) {
  ds::DescriptorSystem g = circuits::makeBenchmarkModel(120, true);
  ds::DescriptorSystem bal = ds::balanceDescriptor(g).sys;
  shh::ShhRealization phi = core::buildPhi(bal);
  linalg::setGemmThreads(1);
  core::ImpulseDeflationResult base = core::deflateImpulseModes(
      phi, -1.0, core::DeflationPath::Staircase);
  core::NondynamicRemovalResult nbase = core::removeNondynamicModes(
      base.reduced, -1.0, core::DeflationPath::Staircase);
  for (std::size_t threads : {2u, 3u, 7u}) {
    linalg::setGemmThreads(threads);
    core::ImpulseDeflationResult r = core::deflateImpulseModes(
        phi, -1.0, core::DeflationPath::Staircase);
    EXPECT_EQ(r.removed, base.removed);
    EXPECT_TRUE(bitIdentical(r.reduced.e, base.reduced.e)) << threads;
    EXPECT_TRUE(bitIdentical(r.reduced.a, base.reduced.a)) << threads;
    EXPECT_TRUE(bitIdentical(r.reduced.c, base.reduced.c)) << threads;
    EXPECT_TRUE(bitIdentical(r.vKeep, base.vKeep)) << threads;
    core::NondynamicRemovalResult nr = core::removeNondynamicModes(
        r.reduced, -1.0, core::DeflationPath::Staircase);
    EXPECT_EQ(nr.removed, nbase.removed);
    EXPECT_TRUE(bitIdentical(nr.shh.e, nbase.shh.e)) << threads;
    EXPECT_TRUE(bitIdentical(nr.shh.a, nbase.shh.a)) << threads;
  }
  linalg::setGemmThreads(1);
}

// ---------------------------------------------------------------------------
// Satellite regressions.

TEST(ReorthRegression, NearlyContainedProjectionStaysOrthogonal) {
  // m = basis * coef + tiny noise: a classical one-shot projection leaves
  // an O(eps * |m| / |residual|) relative contamination along the basis;
  // the second pass must push it to roundoff of the RESIDUAL scale.
  Matrix basis = linalg::QR(randomMatrix(80, 30, 81)).thinQ();
  Matrix m = basis * randomMatrix(30, 5, 82);
  Matrix noise = randomMatrix(80, 5, 83);
  m += 1e-13 * (noise - basis * linalg::atb(basis, noise));
  Matrix p = linalg::projectOutTwice(basis, m);
  // Contamination along the basis, relative to the surviving residual.
  const double contamination = linalg::atb(basis, p).maxAbs();
  ASSERT_GT(p.maxAbs(), 0.0);
  EXPECT_LT(contamination, 1e-3 * p.maxAbs());
  EXPECT_LT(contamination, 1e-15 * m.maxAbs());
}

TEST(RankTolPlumbing, MarginAndReductionHonorRankTol) {
  // A coarse absolute rankTol collapses every deflation decision, which
  // the pipeline reports as a structural failure. passivityMargin and
  // reduceDescriptor must see the SAME tolerance (they historically
  // dropped it on the floor and silently used the default).
  circuits::LadderOptions opt;
  opt.sections = 4;
  opt.capAtPort = true;
  ds::DescriptorSystem g = circuits::makeRlcLadder(opt);

  core::PassivityOptions defaults;
  core::PassivityResult base = core::testPassivityShh(g, defaults);
  ASSERT_TRUE(base.passive);

  core::PassivityOptions coarse;
  coarse.rankTol = 1e6;  // absolute: larger than every singular value
  core::PassivityResult broken = core::testPassivityShh(g, coarse);
  ASSERT_FALSE(broken.passive);
  ASSERT_NE(broken.removedNondynamic, base.removedNondynamic)
      << "coarse rankTol must change the deflation count on the pipeline";

  // Margin path: defined at the default tolerance, undefined (same
  // structural defect as the pipeline) at the coarse one.
  core::PassivityMargin pmDefault = core::passivityMargin(g);
  EXPECT_TRUE(pmDefault.defined);
  core::PassivityMargin pmCoarse =
      core::passivityMargin(g, 1e-6, coarse.rankTol);
  EXPECT_FALSE(pmCoarse.defined);
  EXPECT_EQ(pmCoarse.structuralDefect, broken.failure);

  // Reduction path: succeeds at the default tolerance, fails at the
  // coarse one (the A22 certificate collapses identically).
  core::ReducedModel rdDefault = core::reduceDescriptor(g, g.order());
  EXPECT_TRUE(rdDefault.ok);
  core::ReducedModel rdCoarse =
      core::reduceDescriptor(g, g.order(), 0.0, coarse.rankTol);
  EXPECT_FALSE(rdCoarse.ok);
}

}  // namespace
}  // namespace shhpass
