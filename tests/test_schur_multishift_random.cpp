// Seeded random-property harness for the multishift QR eigensolver with
// aggressive early deflation (linalg/schur_multishift.hpp, aed.hpp) —
// the production path of realSchur() above kSchurCrossover.
//
// Every case plants a known spectrum (clustered, graded, or
// jw-axis-straddling — the Hamiltonian-like shape the proper-part stage
// feeds the solver) behind a random orthogonal similarity and checks,
// for sizes straddling the dispatch crossover:
//   * Q-orthogonality at 1e-12 and the similarity residual
//     ||Q T Q^T - A|| at eps-scale;
//   * exact quasi-triangular structure with standardized 2x2 blocks and
//     zero belt-and-braces structure repairs (the deflation-time
//     zeroing regression guard);
//   * eigenvalue-multiset agreement with the schurUnblocked oracle;
//   * bit-identical dispatch below kSchurCrossover;
//   * bitwise determinism of the multishift path for 1/2/3/7 gemm
//     threads (the thread-pool contract inherited from blas.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <complex>
#include <limits>
#include <vector>

#include "linalg/blas.hpp"
#include "linalg/qr.hpp"
#include "linalg/schur.hpp"
#include "linalg/schur_multishift.hpp"
#include "test_support.hpp"

namespace shhpass::linalg {
namespace {

using testing::Xorshift;

// ------------------------------------------------------------ generators

// Random orthogonal matrix from the QR of a seeded random matrix.
Matrix randomOrthogonal(std::size_t n, Xorshift& rng) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) m(i, j) = rng.uniform(-1.0, 1.0);
  QR qr(m);
  return qr.fullQ();
}

// Assemble a block-diagonal matrix with the given planted eigenvalues
// (complex values appear as 2x2 rotation-like blocks; the conjugate is
// implied), add a random strictly-upper coupling, and hide the result
// behind an orthogonal similarity.
struct Planted {
  Matrix a;
  std::vector<std::complex<double>> eigenvalues;  // conjugates included
};

Planted assemble(const std::vector<std::complex<double>>& spec,
                 std::size_t n, Xorshift& rng) {
  Matrix d(n, n);
  std::vector<std::complex<double>> eigs;
  std::size_t i = 0, s = 0;
  while (i < n) {
    const std::complex<double> l = spec[s % spec.size()];
    ++s;
    if (l.imag() != 0.0 && i + 1 < n) {
      d(i, i) = l.real();
      d(i + 1, i + 1) = l.real();
      d(i, i + 1) = l.imag();
      d(i + 1, i) = -l.imag();
      eigs.emplace_back(l.real(), l.imag());
      eigs.emplace_back(l.real(), -l.imag());
      i += 2;
    } else {
      d(i, i) = l.real();
      eigs.emplace_back(l.real(), 0.0);
      i += 1;
    }
  }
  // Strictly-upper coupling, scaled to the local diagonal magnitude so
  // graded spectra stay CONSISTENTLY graded (uniform-scale coupling over
  // a 1e-6 eigenvalue makes the matrix pathologically non-normal, and
  // its spectrum meaninglessly sensitive for a forward comparison).
  for (std::size_t r = 0; r < n; ++r) {
    const double rowScale =
        std::max({std::abs(d(r, r)), std::abs(r + 1 < n ? d(r, r + 1) : 0.0),
                  1e-3});
    for (std::size_t c = r + 2; c < n; ++c)
      d(r, c) += 0.5 * rowScale * rng.uniform(-1.0, 1.0);
  }
  const Matrix q = randomOrthogonal(n, rng);
  Planted out;
  out.a = multiply(multiply(q, false, d, false), false, q, true);
  out.eigenvalues = std::move(eigs);
  return out;
}

// Clustered: a few tight eigenvalue clusters (the hard case for shift
// quality and for deflation thresholds).
Planted makeClustered(std::size_t n, Xorshift& rng) {
  std::vector<std::complex<double>> spec;
  // Enough multiplicity-4 clusters to cover n without recycling the
  // list (recycling would stack clusters into far higher multiplicity,
  // whose conditioning makes any forward comparison vacuous).
  const std::size_t clusters = 3 + n / 10 + rng.pick(3);
  for (std::size_t c = 0; c < clusters; ++c) {
    const double re = rng.uniform(-2.0, 2.0);
    const double im = rng.flip() ? rng.uniform(0.1, 2.0) : 0.0;
    for (int k = 0; k < 4; ++k)
      spec.emplace_back(re + 1e-5 * rng.uniform(-1.0, 1.0),
                        im == 0.0 ? 0.0 : im + 1e-5 * rng.uniform(-1.0, 1.0));
  }
  return assemble(spec, n, rng);
}

// Graded: eigenvalue magnitudes spanning many orders of magnitude (the
// hard case for the negligibility / deflation tests).
Planted makeGraded(std::size_t n, Xorshift& rng) {
  std::vector<std::complex<double>> spec;
  for (std::size_t k = 0; k < n; ++k) {
    const double mag = std::pow(10.0, -6.0 + 8.0 * rng.uniform());
    if (rng.flip())
      spec.emplace_back(mag * (rng.flip() ? 1.0 : -1.0), mag);
    else
      spec.emplace_back(mag * (rng.flip() ? 1.0 : -1.0), 0.0);
  }
  return assemble(spec, n, rng);
}

// jw-axis-straddling: eigenvalues in +/- real-part pairs hugging the
// imaginary axis — the Hamiltonian spectrum shape the Eq.-(22) split
// hands to realSchur, and the shape that historically provoked the
// deflation-leftover bug.
Planted makeAxisStraddling(std::size_t n, Xorshift& rng) {
  std::vector<std::complex<double>> spec;
  for (std::size_t k = 0; k < n / 2 + 1; ++k) {
    const double re = std::pow(10.0, -4.0 + 3.0 * rng.uniform());
    const double im = rng.uniform(0.2, 3.0);
    spec.emplace_back(re, im);
    spec.emplace_back(-re, im);
  }
  return assemble(spec, n, rng);
}

// ------------------------------------------------------------ predicates

void expectStandardQuasiTriangular(const Matrix& t) {
  const std::size_t n = t.rows();
  for (std::size_t i = 2; i < n; ++i)
    for (std::size_t j = 0; j + 1 < i; ++j)
      ASSERT_EQ(t(i, j), 0.0) << "below-quasidiagonal at " << i << "," << j;
  std::size_t i = 0;
  while (i < n) {
    if (i + 1 < n && t(i + 1, i) != 0.0) {
      ASSERT_TRUE(i + 2 >= n || t(i + 2, i + 1) == 0.0)
          << "overlapping blocks at " << i;
      // Standardized complex pair: equal diagonals, opposite-sign
      // off-diagonals.
      EXPECT_EQ(t(i, i), t(i + 1, i + 1)) << "block at " << i;
      EXPECT_LT(t(i, i + 1) * t(i + 1, i), 0.0) << "block at " << i;
      i += 2;
    } else {
      i += 1;
    }
  }
}

// Symmetric Hausdorff check: every eigenvalue of each set must have a
// near neighbor in the other. A sorted comparison would misalign cluster
// members whose ordering keys tie within roundoff, and a greedy
// consuming match cascades one wrong pairing into many; the two-sided
// nearest-neighbor distance is robust to both (multiplicities are
// separately pinned by the trace/size checks and the planted spectra).
void expectSameSpectrum(const std::vector<std::complex<double>>& a,
                        const std::vector<std::complex<double>>& b,
                        double tol) {
  ASSERT_EQ(a.size(), b.size());
  const auto check = [&](const std::vector<std::complex<double>>& from,
                         const std::vector<std::complex<double>>& to,
                         const char* dir) {
    for (std::size_t i = 0; i < from.size(); ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t j = 0; j < to.size(); ++j)
        best = std::min(best, std::abs(from[i] - to[j]));
      EXPECT_LE(best, tol) << dir << " eig " << i << " = ("
                           << from[i].real() << ", " << from[i].imag()
                           << ") has no near neighbor";
    }
  };
  check(a, b, "multishift->oracle");
  check(b, a, "oracle->multishift");
}

void expectBitIdentical(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      ASSERT_EQ(a(i, j), b(i, j)) << "entry " << i << "," << j;
}

void checkCase(const Planted& planted, bool expectMultishift,
               double eigTol) {
  const std::size_t n = planted.a.rows();
  const RealSchurResult rs = realSchur(planted.a);
  EXPECT_EQ(rs.report.multishift, expectMultishift);
  // Zero structure repairs: the QR iterations zero the subdiagonals they
  // judge negligible at deflation time (the historical leftover between
  // two 2x2 blocks is fixed at the source).
  EXPECT_EQ(rs.report.structureRepairs, 0u);
  // Orthogonality and similarity.
  const Matrix gram = atb(rs.q, rs.q);
  EXPECT_TRUE(gram.approxEqual(Matrix::identity(n), 1e-12))
      << "Q orthogonality, max dev "
      << (gram - Matrix::identity(n)).maxAbs();
  const Matrix rec =
      multiply(multiply(rs.q, false, rs.t, false), false, rs.q, true);
  const double scale = std::max(1.0, planted.a.maxAbs());
  EXPECT_TRUE(rec.approxEqual(planted.a, 1e-11 * scale))
      << "similarity residual " << (rec - planted.a).maxAbs();
  expectStandardQuasiTriangular(rs.t);
  // Multiset agreement with the oracle. Both paths are backward stable
  // (certified by the residual above), so the two spectra agree to the
  // EIGENVALUE conditioning — tight for well-separated spectra, loose
  // for the deliberately clustered / defective-leaning families, whose
  // forward error legitimately grows like a root of eps.
  const RealSchurResult oracle = schurUnblocked(planted.a);
  expectSameSpectrum(rs.eigenvalues, oracle.eigenvalues, eigTol * scale);
}

// ------------------------------------------------------------ the sweep

class MultishiftSweep
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(MultishiftSweep, PlantedSpectraFactorCorrectly) {
  const auto [family, seedBase] = GetParam();
  // Sizes straddle kSchurCrossover = 128: the small ones exercise the
  // bit-identical oracle dispatch, the large ones the multishift path.
  const std::size_t sizes[] = {40, 70, 100, 140, 200};
  for (int rep = 0; rep < 5; ++rep) {
    for (std::size_t n : sizes) {
      Xorshift rng(static_cast<std::uint64_t>(seedBase) * 7919 +
                   rep * 1031 + n);
      Planted planted;
      if (family == std::string("clustered"))
        planted = makeClustered(n, rng);
      else if (family == std::string("graded"))
        planted = makeGraded(n, rng);
      else
        planted = makeAxisStraddling(n, rng);
      SCOPED_TRACE(::testing::Message()
                   << family << " n=" << n << " rep=" << rep);
      // Spectrum-agreement tolerance tracks each family's eigenvalue
      // conditioning: multiplicity-4 clusters and +/- axis pairs are
      // ill-conditioned by construction, and the random strictly-upper
      // coupling makes the larger matrices increasingly non-normal (the
      // backward-stability certificate is the residual check above, not
      // this forward comparison).
      double eigTol = family == std::string("graded")      ? 1e-5
                      : family == std::string("clustered") ? 5e-3
                                                           : 4e-3;
      if (n > 100) eigTol *= 15.0;
      checkCase(planted, n >= kSchurCrossover, eigTol);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, MultishiftSweep,
    ::testing::Values(std::make_tuple("clustered", 1),
                      std::make_tuple("clustered", 2),
                      std::make_tuple("clustered", 3),
                      std::make_tuple("graded", 4),
                      std::make_tuple("graded", 5),
                      std::make_tuple("graded", 6),
                      std::make_tuple("jw-straddling", 7),
                      std::make_tuple("jw-straddling", 8),
                      std::make_tuple("jw-straddling", 9)));
// 9 instantiations x 5 reps x 5 sizes = 225 seeded cases.

// --------------------------------------------------- dispatch + threads

TEST(MultishiftDispatch, BitIdenticalToUnblockedBelowCrossover) {
  for (std::size_t n : {16u, 64u, 127u}) {
    Xorshift rng(4242 + n);
    const Planted planted = makeClustered(n, rng);
    const RealSchurResult a = realSchur(planted.a);
    const RealSchurResult b = schurUnblocked(planted.a);
    EXPECT_FALSE(a.report.multishift);
    expectBitIdentical(a.t, b.t);
    expectBitIdentical(a.q, b.q);
    ASSERT_EQ(a.eigenvalues.size(), b.eigenvalues.size());
    for (std::size_t i = 0; i < a.eigenvalues.size(); ++i)
      EXPECT_EQ(a.eigenvalues[i], b.eigenvalues[i]);
  }
}

TEST(MultishiftThreads, BitDeterministicUnderGemmThreadPool) {
  // The multishift path touches the thread pool only through gemm(),
  // whose column-partition contract guarantees bit-identical results for
  // every thread count (blas.hpp). n = 200 keeps several AED windows and
  // sweeps in play.
  Xorshift rng(90210);
  const Planted planted = makeAxisStraddling(200, rng);
  const RealSchurResult serial = realSchur(planted.a);
  EXPECT_TRUE(serial.report.multishift);
  for (std::size_t threads : {2u, 3u, 7u}) {
    setGemmThreads(threads);
    const RealSchurResult rs = realSchur(planted.a);
    setGemmThreads(1);
    SCOPED_TRACE(::testing::Message() << threads << " threads");
    expectBitIdentical(rs.t, serial.t);
    expectBitIdentical(rs.q, serial.q);
  }
}

// ------------------------------------------------------------ reporting

TEST(MultishiftReport, CountersReflectThePathTaken) {
  Xorshift rng(1337);
  const Planted small = makeClustered(64, rng);
  const RealSchurResult rsSmall = realSchur(small.a);
  EXPECT_FALSE(rsSmall.report.multishift);
  EXPECT_EQ(rsSmall.report.sweeps, 0u);
  EXPECT_EQ(rsSmall.report.aedWindows, 0u);
  EXPECT_GT(rsSmall.report.iterations, 0u);

  const Planted big = makeGraded(220, rng);
  const RealSchurResult rsBig = realSchur(big.a);
  EXPECT_TRUE(rsBig.report.multishift);
  EXPECT_GT(rsBig.report.aedWindows, 0u);
  EXPECT_GT(rsBig.report.iterations, 0u);

  // absorb() sums counters and ORs the path flag.
  SchurReport merged = rsSmall.report;
  merged.absorb(rsBig.report);
  EXPECT_TRUE(merged.multishift);
  EXPECT_EQ(merged.iterations,
            rsSmall.report.iterations + rsBig.report.iterations);
  EXPECT_EQ(merged.aedWindows, rsBig.report.aedWindows);
}

}  // namespace
}  // namespace shhpass::linalg
