// Property tests for the parametric sweep driver (circuits/sweep.hpp),
// seeded and bit-reproducible:
//
//  * MnaWorkspace re-stamp bit-identity — after ANY sequence of
//    setComponentValue calls the workspace descriptor is bit-for-bit
//    equal to a full stampMna of the netlist with those values (the
//    per-entry ordered-contributor replay contract);
//  * slot-exact scheduler parity — runSweep through the work-stealing
//    batch scheduler decisionEquals a sequential per-point analyze()
//    loop for worker counts {1, 2, 7}, and the three scheduled runs
//    agree with each other slot by slot;
//  * sweep expansion structure — row-major cross product, log-spaced
//    decades, typed rejections of malformed specs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/shhpass.hpp"
#include "circuits/mna.hpp"
#include "circuits/sweep.hpp"
#include "test_support.hpp"

namespace shhpass {
namespace {

using circuits::MnaWorkspace;
using circuits::Netlist;
using circuits::SweepSpec;
using testing::Xorshift;

void expectBitIdenticalSystems(const ds::DescriptorSystem& a,
                               const ds::DescriptorSystem& b,
                               const std::string& what) {
  EXPECT_TRUE(testing::bitIdentical(a.e, b.e)) << what << ": E";
  EXPECT_TRUE(testing::bitIdentical(a.a, b.a)) << what << ": A";
  EXPECT_TRUE(testing::bitIdentical(a.b, b.b)) << what << ": B";
  EXPECT_TRUE(testing::bitIdentical(a.c, b.c)) << what << ": C";
  EXPECT_TRUE(testing::bitIdentical(a.d, b.d)) << what << ": D";
}

TEST(SweepRandom, WorkspaceRestampBitIdenticalToFullStamp) {
  for (unsigned seed = 1; seed <= 30; ++seed) {
    Xorshift gen(seed * 0x2545f4914f6cdd1dull);
    Netlist net = testing::randomConnectedNetlist(gen);
    MnaWorkspace ws(net);
    // Fresh workspace == full stamp (same bits by construction).
    expectBitIdenticalSystems(ws.system(), circuits::stampMna(net),
                              "seed " + std::to_string(seed) + " initial");
    // Random value-change sequences, including repeated hits on the same
    // component and sign flips (non-passive mutants).
    Netlist shadow = net;
    const std::size_t steps = 3 + gen.pick(8);
    for (std::size_t s = 0; s < steps; ++s) {
      const std::size_t comp = gen.pick(net.components().size());
      double value = std::pow(10.0, gen.uniform(-3.0, 3.0));
      if (gen.pick(5) == 0) value = -value;
      ws.setComponentValue(comp, value);
      shadow.setComponentValue(comp, value);
      expectBitIdenticalSystems(
          ws.system(), circuits::stampMna(shadow),
          "seed " + std::to_string(seed) + " step " + std::to_string(s));
      EXPECT_EQ(ws.netlist().components()[comp].value, value);
    }
  }
}

TEST(SweepRandom, WorkspaceRejectsBadUpdates) {
  Xorshift gen(7);
  Netlist net = testing::randomConnectedNetlist(gen);
  MnaWorkspace ws(net);
  EXPECT_THROW(ws.setComponentValue(net.components().size(), 1.0),
               std::invalid_argument);
  EXPECT_THROW(ws.setComponentValue(0, 0.0), std::invalid_argument);
  // A portless netlist cannot be stamped at all.
  Netlist portless(2);
  portless.addResistor(1, 2, 1.0).addResistor(2, 0, 1.0);
  EXPECT_THROW(MnaWorkspace{portless}, std::invalid_argument);
}

TEST(SweepRandom, ExpandSweepIsRowMajorLogSpaced) {
  Netlist net(2);
  net.addResistor(1, 2, 10.0).addCapacitor(2, 0, 1.0).addPort(1);
  SweepSpec spec;
  spec.parameters.push_back({0, 1.0, 1.0, 3});  // R: 1, 10, 100
  spec.parameters.push_back({1, 2.0, 0.0, 2});  // C: 0.01, 1
  const std::vector<std::vector<double>> points =
      circuits::expandSweep(net, spec);
  ASSERT_EQ(points.size(), 6u);
  // Last parameter varies fastest (row-major).
  const double rAxis[] = {1.0, 10.0, 100.0};
  const double cAxis[] = {0.01, 1.0};
  for (std::size_t p = 0; p < points.size(); ++p) {
    EXPECT_NEAR(points[p][0], rAxis[p / 2], 1e-12) << p;
    EXPECT_NEAR(points[p][1], cAxis[p % 2], 1e-12) << p;
  }
  // A single-point axis sits exactly at the nominal value.
  SweepSpec nominal;
  nominal.parameters.push_back({1, 3.0, 3.0, 1});
  EXPECT_EQ(circuits::expandSweep(net, nominal)[0][0], 1.0);

  SweepSpec bad;
  EXPECT_THROW(circuits::expandSweep(net, bad), std::invalid_argument);
  bad.parameters.push_back({9, 1.0, 1.0, 2});
  EXPECT_THROW(circuits::expandSweep(net, bad), std::invalid_argument);
  bad.parameters[0] = {0, 1.0, 1.0, 0};
  EXPECT_THROW(circuits::expandSweep(net, bad), std::invalid_argument);
  bad.parameters[0] = {0, 1.0, 1.0, 2};
  bad.parameters.push_back({0, 1.0, 1.0, 2});
  EXPECT_THROW(circuits::expandSweep(net, bad), std::invalid_argument);
}

TEST(SweepRandom, RequestsCarryRestampedSystemsAndStableIds) {
  Xorshift gen(0x5eed);
  const Netlist net = testing::randomConnectedNetlist(gen);
  SweepSpec spec;
  spec.parameters.push_back({0, 1.0, 1.0, 3});
  spec.parameters.push_back({net.components().size() - 1, 1.0, 1.0, 3});
  const std::vector<std::vector<double>> points =
      circuits::expandSweep(net, spec);
  const std::vector<api::AnalysisRequest> requests =
      circuits::buildSweepRequests(net, spec);
  ASSERT_EQ(requests.size(), points.size());
  EXPECT_EQ(requests[0].id, "sweep-000001");
  EXPECT_EQ(requests.back().id, "sweep-000009");
  for (std::size_t p = 0; p < points.size(); ++p) {
    // Oracle: rebuild the netlist with this point's values and stamp it
    // from scratch; the workspace-re-stamped request must match bitwise.
    Netlist modified = net;
    for (std::size_t k = 0; k < spec.parameters.size(); ++k)
      modified.setComponentValue(spec.parameters[k].component,
                                 points[p][k]);
    expectBitIdenticalSystems(requests[p].system,
                              circuits::stampMna(modified),
                              "point " + std::to_string(p));
  }
}

TEST(SweepRandom, ScheduledSweepDecisionEqualsSequentialOracle) {
  for (unsigned seed = 1; seed <= 4; ++seed) {
    Xorshift gen(0xdecade0000ull + seed);
    const Netlist net = testing::randomConnectedNetlist(gen, 10);
    SweepSpec spec;
    spec.computeMargin = false;  // margins are covered separately; the
                                 // parity property is about decisions
    const std::size_t axes = 1 + gen.pick(2);
    for (std::size_t k = 0; k < axes; ++k)
      spec.parameters.push_back(
          {gen.pick(net.components().size()), gen.uniform(0.5, 2.0),
           gen.uniform(0.5, 2.0), 3 + gen.pick(2)});
    // Duplicate axes are rejected; redraw the second axis if needed.
    if (axes == 2 &&
        spec.parameters[0].component == spec.parameters[1].component)
      spec.parameters[1].component =
          (spec.parameters[1].component + 1) % net.components().size();

    std::vector<circuits::SweepResult> results;
    for (std::size_t workers : {1u, 2u, 7u}) {
      api::AnalyzerOptions options;
      options.threads = workers;
      options.stageGraph = workers == 7;  // one leg through level 1 too
      const api::PassivityAnalyzer analyzer(options);
      circuits::SweepResult result =
          circuits::runSweep(net, spec, analyzer);
      // Slot-exact sequential parity on the same analyzer.
      const std::size_t mismatches =
          circuits::verifySweepSequential(net, spec, analyzer, result);
      EXPECT_EQ(mismatches, 0u) << "seed " << seed << " workers " << workers;
      EXPECT_EQ(result.decisionMismatches, 0u);
      results.push_back(std::move(result));
    }
    // And the scheduled runs agree with each other, slot by slot.
    for (std::size_t r = 1; r < results.size(); ++r) {
      ASSERT_EQ(results[r].points.size(), results[0].points.size());
      for (std::size_t p = 0; p < results[0].points.size(); ++p) {
        const circuits::SweepPointResult& a = results[0].points[p];
        const circuits::SweepPointResult& b = results[r].points[p];
        ASSERT_EQ(a.ok, b.ok) << "seed " << seed << " point " << p;
        if (a.ok)
          EXPECT_TRUE(a.report.decisionEquals(b.report))
              << "seed " << seed << " point " << p << " leg " << r;
      }
    }
  }
}

TEST(SweepRandom, MarginMapJsonAndPassiveAccounting) {
  // A known-passive one-port: every point of a modest sweep must be
  // passive with a defined, non-negative (up to bisection tol) margin,
  // and the JSON artifact must carry the headline counters.
  Netlist net(2);
  net.addInductor(1, 2, 0.5)
      .addCapacitor(2, 0, 0.25)
      .addResistor(2, 0, 2.0)
      .addPort(1);
  SweepSpec spec;
  spec.parameters.push_back({0, 1.0, 1.0, 3});
  spec.parameters.push_back({2, 1.0, 1.0, 3});
  const api::PassivityAnalyzer analyzer;
  circuits::SweepResult result = circuits::runSweep(net, spec, analyzer);
  ASSERT_EQ(result.points.size(), 9u);
  EXPECT_EQ(result.passiveCount, 9u);
  for (const circuits::SweepPointResult& p : result.points) {
    ASSERT_TRUE(p.ok) << p.error;
    EXPECT_TRUE(p.report.passive);
    EXPECT_TRUE(p.marginDefined);
    EXPECT_GE(p.margin, -1e-4);
  }
  EXPECT_EQ(circuits::verifySweepSequential(net, spec, analyzer, result),
            0u);
  const std::string json = circuits::sweepMarginMapJson(net, spec, result);
  EXPECT_NE(json.find("\"schema\":\"shhpass-margin-map\""),
            std::string::npos);
  EXPECT_NE(json.find("\"passiveCount\":9"), std::string::npos);
  EXPECT_NE(json.find("\"decisionMismatches\":0"), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"sweep-000001\""), std::string::npos);
}

}  // namespace
}  // namespace shhpass
