// Unit tests for Householder QR, rank-revealing pivoting, and the
// orthonormal basis helpers used by the deflation pipeline.
#include <gtest/gtest.h>

#include <stdexcept>

#include "linalg/blas.hpp"
#include "linalg/qr.hpp"
#include "test_support.hpp"

namespace shhpass::linalg {
namespace {

using testing::expectMatrixNear;
using testing::expectOrthonormalColumns;
using testing::randomMatrix;
using testing::randomRankDeficient;

TEST(QRTest, ReconstructsSquare) {
  Matrix a = randomMatrix(6, 6, 51);
  QR qr(a);
  expectMatrixNear(qr.thinQ() * qr.r(), a, 1e-12);
  expectOrthonormalColumns(qr.thinQ());
}

TEST(QRTest, ReconstructsTallAndWide) {
  Matrix tall = randomMatrix(8, 3, 52);
  QR qt(tall);
  expectMatrixNear(qt.thinQ() * qt.r(), tall, 1e-12);
  expectOrthonormalColumns(qt.thinQ());

  Matrix wide = randomMatrix(3, 8, 53);
  QR qw(wide);
  expectMatrixNear(qw.thinQ() * qw.r(), wide, 1e-12);
}

TEST(QRTest, FullQIsOrthogonal) {
  Matrix a = randomMatrix(5, 2, 54);
  Matrix q = QR(a).fullQ();
  EXPECT_EQ(q.rows(), 5u);
  EXPECT_EQ(q.cols(), 5u);
  expectOrthonormalColumns(q);
}

TEST(QRTest, RUpperTriangular) {
  Matrix a = randomMatrix(5, 5, 55);
  Matrix r = QR(a).r();
  for (std::size_t i = 0; i < r.rows(); ++i)
    for (std::size_t j = 0; j < i && j < r.cols(); ++j)
      EXPECT_EQ(r(i, j), 0.0);
}

TEST(QRTest, PivotedReconstruction) {
  Matrix a = randomMatrix(6, 4, 56);
  QR qr(a, /*columnPivoting=*/true);
  Matrix qrProd = qr.thinQ() * qr.r();
  // qrProd equals A with columns permuted by perm.
  const auto& p = qr.permutation();
  for (std::size_t j = 0; j < a.cols(); ++j)
    for (std::size_t i = 0; i < a.rows(); ++i)
      EXPECT_NEAR(qrProd(i, j), a(i, p[j]), 1e-12);
}

TEST(QRTest, RankRevealing) {
  Matrix a = randomRankDeficient(8, 6, 3, 57);
  QR qr(a, true);
  EXPECT_EQ(qr.rank(1e-10), 3u);
  EXPECT_THROW(QR(a, false).rank(1e-10), std::logic_error);
}

TEST(QRTest, RankOfZeroMatrix) {
  QR qr(Matrix::zeros(4, 3), true);
  EXPECT_EQ(qr.rank(1e-12), 0u);
}

TEST(QRTest, LeastSquaresSolve) {
  Matrix a = randomMatrix(7, 3, 58);
  Matrix xTrue = randomMatrix(3, 2, 59);
  Matrix b = a * xTrue;
  Matrix x = QR(a).solve(b);
  expectMatrixNear(x, xTrue, 1e-10);
}

TEST(QRTest, PivotedSolveRestoresOrder) {
  Matrix a = randomMatrix(5, 5, 60);
  for (std::size_t i = 0; i < 5; ++i) a(i, i) += 4.0;
  Matrix xTrue = randomMatrix(5, 1, 61);
  Matrix x = QR(a, true).solve(a * xTrue);
  expectMatrixNear(x, xTrue, 1e-9);
}

TEST(QRTest, ApplyQAndQtAreInverses) {
  Matrix a = randomMatrix(6, 4, 62);
  QR qr(a);
  Matrix b = randomMatrix(6, 3, 63);
  expectMatrixNear(qr.applyQ(qr.applyQt(b)), b, 1e-12);
  expectMatrixNear(qr.applyQt(qr.applyQ(b)), b, 1e-12);
}

TEST(OrthonormalRange, SpansColumnSpace) {
  Matrix a = randomRankDeficient(7, 5, 2, 64);
  Matrix q = orthonormalRange(a, 1e-10);
  EXPECT_EQ(q.cols(), 2u);
  expectOrthonormalColumns(q);
  // Projection of A onto range(Q) equals A.
  Matrix proj = q * atb(q, a);
  expectMatrixNear(proj, a, 1e-10);
}

TEST(OrthonormalRange, EmptyInput) {
  Matrix q = orthonormalRange(Matrix(5, 0));
  EXPECT_EQ(q.rows(), 5u);
  EXPECT_EQ(q.cols(), 0u);
}

TEST(OrthonormalComplement, CompletesBasis) {
  Matrix a = randomMatrix(6, 2, 65);
  Matrix v = orthonormalRange(a);
  Matrix w = orthonormalComplement(v);
  EXPECT_EQ(w.cols(), 4u);
  Matrix full = hcat(v, w);
  expectOrthonormalColumns(full);
}

TEST(OrthonormalComplement, FullBasisGivesEmpty) {
  Matrix v = QR(randomMatrix(4, 4, 66)).thinQ();
  EXPECT_EQ(orthonormalComplement(v).cols(), 0u);
}

TEST(OrthonormalComplement, EmptyGivesIdentity) {
  expectMatrixNear(orthonormalComplement(Matrix(3, 0)), Matrix::identity(3),
                   0.0);
}

}  // namespace
}  // namespace shhpass::linalg
