// End-to-end tests of the proposed SHH passivity test (Fig. 1) on passive
// and non-passive descriptor systems, plus agreement with the Weierstrass
// baseline.
#include <gtest/gtest.h>

#include "circuits/generators.hpp"
#include "core/passivity_test.hpp"
#include "ds/weierstrass.hpp"
#include "test_support.hpp"

namespace shhpass::core {
namespace {

using linalg::Matrix;

TEST(ShhPassivity, ImpulseFreeLadderIsPassive) {
  circuits::LadderOptions opt;
  opt.sections = 4;
  opt.capAtPort = true;
  PassivityResult r = testPassivityShh(circuits::makeRlcLadder(opt));
  EXPECT_TRUE(r.passive) << failureStageName(r.failure);
  EXPECT_EQ(r.removedImpulsive, 0u);
  EXPECT_GT(r.removedNondynamic, 0u);
  EXPECT_EQ(r.impulsiveChains, 0u);
}

TEST(ShhPassivity, ImpulsiveLadderIsPassive) {
  circuits::LadderOptions opt;
  opt.sections = 4;
  opt.capAtPort = false;
  PassivityResult r = testPassivityShh(circuits::makeRlcLadder(opt));
  EXPECT_TRUE(r.passive) << failureStageName(r.failure);
  EXPECT_GT(r.removedImpulsive, 0u);
  EXPECT_GE(r.impulsiveChains, 1u);
  // M1 equals the port inductance.
  EXPECT_NEAR(r.m1(0, 0), opt.l, 1e-9);
}

TEST(ShhPassivity, LLSectionsStillPassive) {
  circuits::LadderOptions opt;
  opt.sections = 6;
  opt.impulsiveEvery = 2;
  PassivityResult r = testPassivityShh(circuits::makeRlcLadder(opt));
  EXPECT_TRUE(r.passive) << failureStageName(r.failure);
}

TEST(ShhPassivity, SevenSectionCapAtPortLadderPassive) {
  // Regression: this configuration used to be falsely declared non-passive
  // (LosslessAxisModes). During Schur reordering of the proper-part
  // Hamiltonian, a near-degenerate complex pair drifted onto the real axis
  // as a fused 2x2 block straddling zero; the stable/antistable split then
  // miscounted (13 vs 15) and the extraction gave up. reorderSchur now
  // splits real-eigenvalue 2x2 blocks before selecting.
  circuits::LadderOptions opt;
  opt.sections = 7;
  opt.capAtPort = true;
  PassivityResult r = testPassivityShh(circuits::makeRlcLadder(opt));
  EXPECT_TRUE(r.passive) << failureStageName(r.failure);
}

TEST(ShhPassivity, TwoPortLadderPassive) {
  circuits::LadderOptions opt;
  opt.sections = 3;
  opt.twoPort = true;
  opt.capAtPort = true;
  PassivityResult r = testPassivityShh(circuits::makeRlcLadder(opt));
  EXPECT_TRUE(r.passive) << failureStageName(r.failure);
}

TEST(ShhPassivity, RandomRlcNetworksPassive) {
  for (unsigned seed : {11u, 12u, 13u}) {
    PassivityResult r =
        testPassivityShh(circuits::makeRandomRlcNetwork(7, seed));
    EXPECT_TRUE(r.passive)
        << "seed=" << seed << ": " << failureStageName(r.failure);
  }
}

TEST(ShhPassivity, RegularStateSpacePassive) {
  // Nonsingular E: the pipeline reduces to a proper-part test only.
  ds::DescriptorSystem g;
  g.e = Matrix{{2.0}};
  g.a = Matrix{{-3.0}};
  g.b = Matrix{{1.0}};
  g.c = Matrix{{1.0}};
  g.d = Matrix{{0.25}};
  PassivityResult r = testPassivityShh(g);
  EXPECT_TRUE(r.passive) << failureStageName(r.failure);
  EXPECT_EQ(r.removedImpulsive, 0u);
  EXPECT_EQ(r.removedNondynamic, 0u);
}

TEST(ShhPassivity, NegativeResistorFails) {
  // The strongly negative leak resistor destabilizes the network, so the
  // stability screen (or, in milder variants, the proper-part stage)
  // rejects it.
  PassivityResult r =
      testPassivityShh(circuits::makeNonPassiveNegativeResistor(4));
  EXPECT_FALSE(r.passive);
  EXPECT_TRUE(r.failure == FailureStage::UnstableFiniteModes ||
              r.failure == FailureStage::ProperPartNotPr)
      << failureStageName(r.failure);
}

TEST(ShhPassivity, NegativeFeedthroughFailsInProperPart) {
  PassivityResult r =
      testPassivityShh(circuits::makeNonPassiveNegativeFeedthrough(4));
  EXPECT_FALSE(r.passive);
  EXPECT_EQ(r.failure, FailureStage::ProperPartNotPr);
}

TEST(ShhPassivity, IndefiniteM1Fails) {
  PassivityResult r =
      testPassivityShh(circuits::makeNonPassiveIndefiniteM1());
  EXPECT_FALSE(r.passive);
  EXPECT_EQ(r.failure, FailureStage::M1NotPsd);
}

TEST(ShhPassivity, HigherOrderImpulseFails) {
  PassivityResult r =
      testPassivityShh(circuits::makeNonPassiveHigherOrderImpulse());
  EXPECT_FALSE(r.passive);
  // Symmetric M2 does not cancel in Phi: caught as residual impulses (or,
  // if it cancels structurally, by the index check).
  EXPECT_TRUE(r.failure == FailureStage::ResidualImpulses ||
              r.failure == FailureStage::HigherOrderImpulse)
      << failureStageName(r.failure);
}

TEST(ShhPassivity, AsymmetricM1FailsAsResidualImpulse) {
  // G(s) = I + [0 0; s 0]: M1 asymmetric, no cancellation in Phi.
  ds::DescriptorSystem g;
  g.e = Matrix::zeros(2, 2);
  g.e(0, 1) = 1.0;
  g.a = Matrix::identity(2);
  g.b = Matrix{{0.0, 0.0}, {1.0, 0.0}};
  g.c = Matrix{{0.0, 0.0}, {-1.0, 0.0}};
  g.d = Matrix::identity(2);
  PassivityResult r = testPassivityShh(g);
  EXPECT_FALSE(r.passive);
  EXPECT_EQ(r.failure, FailureStage::ResidualImpulses);
}

TEST(ShhPassivity, SkewM1CancelsButFailsM1Check) {
  // M1 = [0 1; -1 0] (skew): cancels inside Phi (M1 + M1^T = 0) yet is not
  // a valid residue matrix. The M1 extraction must catch it.
  ds::DescriptorSystem g;
  const std::size_t n = 4;
  g.e = Matrix::zeros(n, n);
  g.a = Matrix::zeros(n, n);
  g.b = Matrix::zeros(n, 2);
  g.c = Matrix::zeros(2, n);
  g.d = Matrix::identity(2);
  auto addBlock = [&](std::size_t at, std::size_t inPort, std::size_t outPort,
                      double m1) {
    g.e(at, at + 1) = 1.0;
    g.a(at, at) = 1.0;
    g.a(at + 1, at + 1) = 1.0;
    g.b(at + 1, inPort) = 1.0;
    g.c(outPort, at) = -m1;
  };
  addBlock(0, 1, 0, 1.0);   // contributes +s at (0,1)
  addBlock(2, 0, 1, -1.0);  // contributes -s at (1,0)
  PassivityResult r = testPassivityShh(g);
  EXPECT_FALSE(r.passive);
  EXPECT_EQ(r.failure, FailureStage::M1NotPsd);
}

TEST(ShhPassivity, UnstableSystemScreened) {
  ds::DescriptorSystem g;
  g.e = Matrix{{1.0}};
  g.a = Matrix{{0.5}};
  g.b = Matrix{{1.0}};
  g.c = Matrix{{1.0}};
  g.d = Matrix{{1.0}};
  PassivityResult r = testPassivityShh(g);
  EXPECT_FALSE(r.passive);
  EXPECT_EQ(r.failure, FailureStage::UnstableFiniteModes);
}

TEST(ShhPassivity, SingularPencilScreened) {
  ds::DescriptorSystem g;
  g.e = Matrix::zeros(2, 2);
  g.a = Matrix::zeros(2, 2);
  g.b = Matrix(2, 1);
  g.c = Matrix(1, 2);
  g.d = Matrix(1, 1);
  PassivityResult r = testPassivityShh(g);
  EXPECT_EQ(r.failure, FailureStage::SingularPencil);
}

TEST(ShhPassivity, NonSquareScreened) {
  ds::DescriptorSystem g;
  g.e = Matrix::identity(2);
  g.a = -1.0 * Matrix::identity(2);
  g.b = Matrix(2, 1, 1.0);
  g.c = Matrix(2, 2, 0.5);
  g.d = Matrix(2, 1);
  PassivityResult r = testPassivityShh(g);
  EXPECT_EQ(r.failure, FailureStage::NotSquare);
}

// Agreement with the Weierstrass baseline across a model sweep.
class AgreementSweep
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(AgreementSweep, ShhAgreesWithWeierstrass) {
  const auto [order, impulsive] = GetParam();
  ds::DescriptorSystem g = circuits::makeBenchmarkModel(order, impulsive);
  PassivityResult shh = testPassivityShh(g);
  ds::WeierstrassPassivityResult wei = ds::testPassivityWeierstrass(g);
  EXPECT_TRUE(shh.passive) << failureStageName(shh.failure);
  EXPECT_EQ(shh.passive, wei.passive);
}

INSTANTIATE_TEST_SUITE_P(
    BenchModels, AgreementSweep,
    ::testing::Combine(::testing::Values(12, 20, 33, 40),
                       ::testing::Bool()));

}  // namespace
}  // namespace shhpass::core
