// Tests for pencil balancing: exactness of the transfer-function
// relationship and its effect on the dynamic range of physical-unit models.
#include <gtest/gtest.h>

#include <cmath>

#include "circuits/generators.hpp"
#include "core/passivity_test.hpp"
#include "ds/balance.hpp"
#include "test_support.hpp"

namespace shhpass::ds {
namespace {

using linalg::Matrix;
using testing::expectMatrixNear;

TEST(Balance, FrequencyScalingRelationHolds) {
  circuits::LadderOptions opt;
  opt.sections = 3;
  opt.capAtPort = true;
  DescriptorSystem g = circuits::makeRlcLadder(opt);
  BalancedSystem bal = balanceDescriptor(g);
  // G_bal(s) = G(tau * s): compare at several frequencies.
  for (double w : {0.5, 3.0, 1e3}) {
    TransferValue gb = evalTransfer(bal.sys, 0.0, w);
    TransferValue go = evalTransfer(g, 0.0, w * bal.freqScale);
    expectMatrixNear(gb.re, go.re, 1e-9 * (1.0 + go.re.maxAbs()));
    expectMatrixNear(gb.im, go.im, 1e-9 * (1.0 + go.im.maxAbs()));
  }
}

TEST(Balance, ReducesDynamicRange) {
  circuits::LadderOptions opt;
  opt.sections = 5;
  // Physical units: C ~ 1e-6, L ~ 1e-3, R ~ 1.
  DescriptorSystem g = circuits::makeRlcLadder(opt);
  BalancedSystem bal = balanceDescriptor(g);
  auto spread = [](const Matrix& e, const Matrix& a) {
    double lo = 1e300, hi = 0.0;
    for (const Matrix* m : {&e, &a})
      for (std::size_t i = 0; i < m->rows(); ++i)
        for (std::size_t j = 0; j < m->cols(); ++j) {
          const double v = std::abs((*m)(i, j));
          if (v > 0) {
            lo = std::min(lo, v);
            hi = std::max(hi, v);
          }
        }
    return hi / lo;
  };
  EXPECT_LT(spread(bal.sys.e, bal.sys.a), spread(g.e, g.a));
  // All row/col maxima of the balanced pencil are within a couple of
  // binades of 1.
  for (std::size_t i = 0; i < bal.sys.order(); ++i) {
    double rmax = 0.0;
    for (std::size_t j = 0; j < bal.sys.order(); ++j)
      rmax = std::max({rmax, std::abs(bal.sys.e(i, j)),
                       std::abs(bal.sys.a(i, j))});
    EXPECT_GT(rmax, 0.24);
    EXPECT_LT(rmax, 4.1);
  }
}

TEST(Balance, PreservesRegularityAndModeStructure) {
  circuits::LadderOptions opt;
  opt.sections = 4;
  DescriptorSystem g = circuits::makeRlcLadder(opt);
  BalancedSystem bal = balanceDescriptor(g);
  EXPECT_TRUE(isRegular(bal.sys));
  EXPECT_EQ(hasStableFiniteModes(g), hasStableFiniteModes(bal.sys));
}

TEST(Balance, IdentityOnEmptySystem) {
  DescriptorSystem g;
  g.e = Matrix();
  g.a = Matrix();
  g.b = Matrix(0, 1);
  g.c = Matrix(1, 0);
  g.d = Matrix(1, 1);
  BalancedSystem bal = balanceDescriptor(g);
  EXPECT_EQ(bal.freqScale, 1.0);
  EXPECT_EQ(bal.sys.order(), 0u);
}

TEST(Balance, VerdictInvariance) {
  // The passivity verdict must be identical with and without balancing on
  // a well-scaled model.
  circuits::LadderOptions opt;
  opt.sections = 3;
  opt.l = 0.5;
  opt.c = 0.25;
  opt.capAtPort = true;
  DescriptorSystem g = circuits::makeRlcLadder(opt);
  core::PassivityOptions with, without;
  without.balance = false;
  EXPECT_EQ(core::testPassivityShh(g, with).passive,
            core::testPassivityShh(g, without).passive);
}

TEST(Balance, M1ReportedInOriginalUnits) {
  circuits::LadderOptions opt;
  opt.sections = 3;
  opt.l = 3.7e-3;
  core::PassivityResult r =
      core::testPassivityShh(circuits::makeRlcLadder(opt));
  ASSERT_TRUE(r.passive);
  EXPECT_NEAR(r.m1(0, 0), opt.l, 1e-8);
}

}  // namespace
}  // namespace shhpass::ds
