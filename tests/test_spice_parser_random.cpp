// Property tests for the SPICE-subset netlist parser/writer
// (circuits/spice_parser.hpp), seeded and bit-reproducible:
//
//  * round-trip fidelity — writeSpice -> parseSpice -> writeSpice is a
//    byte-stable fixed point, the parsed netlist reproduces every
//    component (kind, nodes, value bits) and port, and it stamps an MNA
//    descriptor bit-identical to the builder-constructed original;
//  * decoration invariance — comments, inline comments, '+'
//    continuations, and ragged whitespace never change what is parsed;
//  * malformed corpus — every defect class reports its typed,
//    line-numbered SpiceError, never a crash and never a silent accept
//    (the partial netlist is withheld);
//  * mutation fuzz — randomly corrupted netlist text never crashes the
//    parser (the ASan/UBSan job runs this suite).
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "circuits/mna.hpp"
#include "circuits/netlist.hpp"
#include "circuits/spice_parser.hpp"
#include "test_support.hpp"

namespace shhpass {
namespace {

using circuits::Netlist;
using circuits::ParsedNetlist;
using circuits::SpiceErrorKind;
using testing::Xorshift;

/// Exact netlist equality: every component field (value bitwise) + ports.
void expectSameNetlist(const Netlist& a, const Netlist& b) {
  ASSERT_EQ(a.numNodes(), b.numNodes());
  ASSERT_EQ(a.components().size(), b.components().size());
  for (std::size_t k = 0; k < a.components().size(); ++k) {
    const circuits::Component& x = a.components()[k];
    const circuits::Component& y = b.components()[k];
    EXPECT_EQ(x.kind, y.kind) << "component " << k;
    EXPECT_EQ(x.n1, y.n1) << "component " << k;
    EXPECT_EQ(x.n2, y.n2) << "component " << k;
    // Bitwise: the writer's shortest-round-trip decimals must come back
    // as the same doubles, or re-stamped MNA bits would drift.
    EXPECT_EQ(x.value, y.value) << "component " << k;
  }
  EXPECT_EQ(a.ports(), b.ports());
}

void expectSameStampedSystem(const Netlist& a, const Netlist& b) {
  const ds::DescriptorSystem ga = circuits::stampMna(a);
  const ds::DescriptorSystem gb = circuits::stampMna(b);
  EXPECT_TRUE(testing::bitIdentical(ga.e, gb.e));
  EXPECT_TRUE(testing::bitIdentical(ga.a, gb.a));
  EXPECT_TRUE(testing::bitIdentical(ga.b, gb.b));
  EXPECT_TRUE(testing::bitIdentical(ga.c, gb.c));
  EXPECT_TRUE(testing::bitIdentical(ga.d, gb.d));
}

TEST(SpiceParserRandom, RoundTripIsByteStableAndStampsIdentically) {
  for (unsigned seed = 1; seed <= 40; ++seed) {
    Xorshift gen(seed * 0x9e3779b97f4a7c15ull);
    const Netlist net = testing::randomConnectedNetlist(gen);
    const std::string emitted = circuits::writeSpice(net);
    ParsedNetlist parsed = circuits::parseSpice(emitted);
    ASSERT_TRUE(parsed.ok())
        << "seed " << seed << ": " << parsed.errors.front().toString()
        << "\n" << emitted;
    expectSameNetlist(net, parsed.netlist);
    // Byte-stable fixed point.
    EXPECT_EQ(circuits::writeSpice(parsed.netlist), emitted) << "seed "
                                                             << seed;
    // Bit-identical decision input.
    expectSameStampedSystem(net, parsed.netlist);
    // Numeric node names are the identity mapping.
    ASSERT_EQ(parsed.nodeNames.size(),
              static_cast<std::size_t>(net.numNodes()) + 1);
    for (std::size_t i = 0; i < parsed.nodeNames.size(); ++i)
      EXPECT_EQ(parsed.nodeNames[i], std::to_string(i));
  }
}

/// Re-emit canonical text with random decorations: comment lines, inline
/// comments, extra whitespace, and '+' continuations after the first
/// token. None of it may change the parse.
std::string decorate(const std::string& canonical, Xorshift& gen) {
  std::string out;
  std::size_t pos = 0;
  while (pos < canonical.size()) {
    const std::size_t eol = canonical.find('\n', pos);
    std::string line = canonical.substr(pos, eol - pos);
    pos = eol + 1;
    if (gen.pick(3) == 0) out += "* a comment line\n";
    if (gen.pick(2) == 0) out += "\t ";  // leading whitespace
    if (!line.empty() && line[0] != '.' && line[0] != '*' &&
        gen.pick(2) == 0) {
      // Split the card after its first token into a continuation line.
      const std::size_t space = line.find(' ');
      if (space != std::string::npos) {
        out += line.substr(0, space);
        out += "\n+ ";
        line = line.substr(space + 1);
      }
    }
    out += line;
    if (gen.pick(3) == 0) out += " ; trailing comment";
    out += "\n";
    if (gen.pick(4) == 0) out += "\n";  // blank line
  }
  return out;
}

TEST(SpiceParserRandom, DecorationsNeverChangeTheParse) {
  for (unsigned seed = 1; seed <= 25; ++seed) {
    Xorshift gen(0xabcddcba0000ull + seed);
    const Netlist net = testing::randomConnectedNetlist(gen);
    const std::string canonical = circuits::writeSpice(net);
    const std::string decorated = decorate(canonical, gen);
    ParsedNetlist parsed = circuits::parseSpice(decorated);
    ASSERT_TRUE(parsed.ok())
        << "seed " << seed << ": " << parsed.errors.front().toString()
        << "\n" << decorated;
    expectSameNetlist(net, parsed.netlist);
  }
}

TEST(SpiceParserRandom, EngineeringSuffixesAndUnits) {
  const ParsedNetlist parsed = circuits::parseSpice(
      "R1 1 0 2.2k\n"
      "R2 1 2 1meg\n"
      "C1 2 0 10uF\n"
      "L1 1 2 3nH\n"
      "C2 1 0 5pf\n"
      "R3 2 0 1.5MegOhm\n"
      "L2 2 0 2mH\n"
      "C3 1 2 4f\n"
      ".port 1\n");
  ASSERT_TRUE(parsed.ok()) << parsed.errors.front().toString();
  const std::vector<double> expected = {2.2e3, 1e6,  10e-6, 3e-9,
                                        5e-12, 1.5e6, 2e-3,  4e-15};
  ASSERT_EQ(parsed.netlist.components().size(), expected.size());
  for (std::size_t k = 0; k < expected.size(); ++k)
    EXPECT_DOUBLE_EQ(parsed.netlist.components()[k].value, expected[k])
        << "component " << k;
}

struct MalformedCase {
  const char* name;
  const char* text;
  SpiceErrorKind kind;
  std::size_t line;
};

TEST(SpiceParserRandom, MalformedCorpusReportsTypedLineNumberedErrors) {
  const MalformedCase corpus[] = {
      {"bad node symbol", "R1 1 no$de 5\n.port 1\n",
       SpiceErrorKind::BadNodeName, 1},
      {"negative node", "R1 -1 2 5\nR2 1 2 4\n.port 1\n",
       SpiceErrorKind::BadNodeName, 1},
      {"oversized node index", "R1 1 99999999999 5\n.port 1\n",
       SpiceErrorKind::BadNodeName, 1},
      {"zero value", "R1 1 0 0\n.port 1\n",
       SpiceErrorKind::NonPositiveValue, 1},
      {"negative value without mutant flag", "L1 1 0 5\nR1 1 0 -2\n",
       SpiceErrorKind::NonPositiveValue, 2},
      {"garbled value", "R1 1 0 5x3\n.port 1\n", SpiceErrorKind::BadValue,
       1},
      {"overflowing value", "C1 1 0 1e999\n.port 1\n",
       SpiceErrorKind::BadValue, 1},
      {"truncated element", "R1 1 2\nR2 1 0 4\n.port 1\n",
       SpiceErrorKind::TruncatedCard, 1},
      {"truncated directive", "R1 1 0 5\n.port\n",
       SpiceErrorKind::TruncatedCard, 2},
      {"trailing element field", "R1 1 0 5 extra\n",
       SpiceErrorKind::TrailingField, 1},
      {"trailing port field", "R1 1 0 5\n.port 1 2\n",
       SpiceErrorKind::TrailingField, 2},
      {"unknown element", "V1 1 0 5\nR1 1 0 2\n.port 1\n",
       SpiceErrorKind::UnknownCard, 1},
      {"unknown directive", "R1 1 0 5\n.tran 1n\n.port 1\n",
       SpiceErrorKind::UnknownCard, 2},
      {"orphan continuation", "+ 1 0 5\nR1 1 0 2\n.port 1\n",
       SpiceErrorKind::UnknownCard, 1},
      {"shorted element", "R1 2 2 5\nR2 1 2 3\n.port 1\n",
       SpiceErrorKind::ShortedElement, 1},
      {"shorted through ground alias", "R1 gnd 0 5\nR2 1 0 3\n.port 1\n",
       SpiceErrorKind::ShortedElement, 1},
      {"dangling numeric port", "R1 1 2 5\n.port 3\n",
       SpiceErrorKind::DanglingPort, 2},
      {"dangling symbolic port", "R1 1 2 5\n.port nowhere\n",
       SpiceErrorKind::DanglingPort, 2},
      {"port at ground", "R1 1 0 5\n.port 0\n",
       SpiceErrorKind::PortAtGround, 2},
      {"port at ground alias", "R1 1 0 5\n.port GND\n",
       SpiceErrorKind::PortAtGround, 2},
      {"numeric node gap", "R1 1 3 5\n.port 1\n",
       SpiceErrorKind::UnconnectedNode, 1},
      {"empty netlist", "* only comments here\n\n",
       SpiceErrorKind::EmptyNetlist, 0},
      {"everything after .end ignored", "* lead\n.end\nR1 1 0 5\n",
       SpiceErrorKind::EmptyNetlist, 0},
  };
  for (const MalformedCase& c : corpus) {
    const ParsedNetlist parsed = circuits::parseSpice(c.text);
    ASSERT_FALSE(parsed.ok()) << c.name;
    // The partial netlist is withheld — a malformed file can never be
    // silently analyzed.
    EXPECT_TRUE(parsed.netlist.components().empty()) << c.name;
    EXPECT_TRUE(parsed.nodeNames.empty()) << c.name;
    bool found = false;
    for (const circuits::SpiceError& e : parsed.errors)
      if (e.kind == c.kind && e.line == c.line) found = true;
    EXPECT_TRUE(found) << c.name << ": expected ["
                       << circuits::spiceErrorKindName(c.kind) << "] at line "
                       << c.line << ", got "
                       << parsed.errors.front().toString();
  }
}

TEST(SpiceParserRandom, ErrorToStringCarriesLineAndKind) {
  const ParsedNetlist parsed =
      circuits::parseSpice("R1 1 0 5\nC7 1 0 bogus\n.port 1\n");
  ASSERT_FALSE(parsed.ok());
  ASSERT_EQ(parsed.errors.size(), 1u);
  const std::string s = parsed.errors[0].toString();
  EXPECT_NE(s.find("line 2"), std::string::npos) << s;
  EXPECT_NE(s.find("[BAD_VALUE]"), std::string::npos) << s;
}

TEST(SpiceParserRandom, UnreadableFileIsTypedNotThrown) {
  const ParsedNetlist parsed =
      circuits::parseSpiceFile("/nonexistent/shhpass/netlist.cir");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.errors[0].kind, SpiceErrorKind::FileError);
  EXPECT_EQ(parsed.errors[0].line, 0u);
}

TEST(SpiceParserRandom, MutationFuzzNeverCrashes) {
  // Corrupt valid netlists with random splices, character flips, and
  // truncations; the parser must always return (typed errors or a
  // legitimately reparseable accept), never crash — the sanitizer jobs
  // give this teeth.
  const char kNoise[] = "RLCrlc.port+*;0123456789 \t\n-ex$#\"";
  for (unsigned seed = 1; seed <= 120; ++seed) {
    Xorshift gen(0xfeedface0000ull + seed);
    const Netlist net = testing::randomConnectedNetlist(gen);
    std::string text = circuits::writeSpice(net);
    const std::size_t edits = 1 + gen.pick(6);
    for (std::size_t e = 0; e < edits && !text.empty(); ++e) {
      const std::size_t at = gen.pick(text.size());
      switch (gen.pick(3)) {
        case 0:  // flip a character
          text[at] = kNoise[gen.pick(sizeof(kNoise) - 1)];
          break;
        case 1:  // insert noise
          text.insert(at, 1, kNoise[gen.pick(sizeof(kNoise) - 1)]);
          break;
        default:  // truncate (the "cut off mid-card" class)
          text.resize(at);
          break;
      }
    }
    const ParsedNetlist parsed = circuits::parseSpice(text);
    if (parsed.ok()) {
      // A mutation that still parses must round-trip like any accept.
      const std::string emitted = circuits::writeSpice(parsed.netlist);
      const ParsedNetlist again = circuits::parseSpice(emitted);
      ASSERT_TRUE(again.ok()) << "seed " << seed;
      EXPECT_EQ(circuits::writeSpice(again.netlist), emitted)
          << "seed " << seed;
    } else {
      EXPECT_TRUE(parsed.netlist.components().empty()) << "seed " << seed;
      for (const circuits::SpiceError& e : parsed.errors)
        EXPECT_NE(std::string(circuits::spiceErrorKindName(e.kind)),
                  "UNKNOWN")
            << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace shhpass
